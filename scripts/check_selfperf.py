#!/usr/bin/env python3
"""Self-performance regression gate (CI).

Compares a freshly generated BENCH_selfperf.json against the checked-in
baseline and fails the build when the simulator itself regressed.

Sections are gated independently, and only when present in BOTH files
(the selfperf and pdes-scale experiments each write their own section;
a CI job regenerates only the one it runs). Pass --require SECTION to
fail when the fresh file is missing a section the job was supposed to
produce.

"sequential" (the selfperf experiment):
  * sequential events/s more than --max-slowdown (default 15%) below
    the baseline's — wall-clock throughput of the event loop;
  * sequential minor words per event above --words-budget (default 128)
    — the zero-allocation dispatch budget (DESIGN.md section 13), an
    absolute cap so allocation creep cannot ratchet the baseline up.

"pdes_scale" (the herd connection-scaling sweep, DESIGN.md section 16):
  * bytes/connection at each sweep point matched by connection count:
    within 1.5x of baseline, and under the 4096-byte absolute cap
    at the points where per-connection state dominates (>= 10^5);
  * the flat stream-pair probe within 1.25x of baseline (and <= 256 B);
  * adaptive round counts (deterministic) within 1.1x of baseline;
  * events/s and fixed-mode rounds/s within --max-slowdown-pdes
    (default 35%, wall-clock on shared runners is noisy);
  * the idle-heavy ablation keeps a >= 2x round-count reduction
    (deterministic) and a >= 1.5x wall-clock speedup over the
    fixed-lookahead baseline.

Usage: check_selfperf.py BASELINE.json FRESH.json [options]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "remon-selfperf/1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def gate_sequential(base, fresh, args, failures):
    if base["quick"] != fresh["quick"]:
        sys.exit("baseline and fresh run disagree on quick mode; "
                 "throughput is not comparable")

    b_eps = base["sequential"]["events_per_sec"]
    f_eps = fresh["sequential"]["events_per_sec"]
    floor = b_eps * (1.0 - args.max_slowdown)
    print(f"events/s: baseline {b_eps:,.0f}  fresh {f_eps:,.0f}  "
          f"floor {floor:,.0f}")
    if f_eps < floor:
        failures.append(
            f"events/s {f_eps:,.0f} is more than "
            f"{args.max_slowdown:.0%} below baseline {b_eps:,.0f}")

    words = fresh["sequential"]["minor_words_per_event"]
    print(f"minor words/event: fresh {words:.2f}  budget "
          f"{args.words_budget:.2f}  "
          f"(baseline {base['sequential']['minor_words_per_event']:.2f})")
    if words > args.words_budget:
        failures.append(
            f"minor words/event {words:.2f} exceeds budget "
            f"{args.words_budget:.2f}")

    # per-workload allocation is deterministic: flag any backend whose
    # allocation/event grew, as an early pointer to *where* it crept in
    base_rows = {(w["name"], w["backend"]): w for w in base["workloads"]}
    for w in fresh["workloads"]:
        b = base_rows.get((w["name"], w["backend"]))
        if b and w["minor_words_per_event"] > b["minor_words_per_event"] * 1.05:
            failures.append(
                f"{w['name']}/{w['backend']}: minor words/event "
                f"{w['minor_words_per_event']:.2f} vs baseline "
                f"{b['minor_words_per_event']:.2f} (+5% band)")


def gate_pdes_scale(base, fresh, args, failures):
    bs, fs = base["pdes_scale"], fresh["pdes_scale"]
    base_rows = {r["connections"]: r for r in bs["sweep"]}
    matched = [(base_rows[r["connections"]], r)
               for r in fs["sweep"] if r["connections"] in base_rows]
    if not matched:
        failures.append("pdes_scale: no sweep point matches the baseline "
                        "(connection counts changed? regenerate the baseline)")
        return
    for b, f in matched:
        n = f["connections"]
        bpc, b_bpc = f["bytes_per_connection"], b["bytes_per_connection"]
        print(f"pdes {n:>8} conns: bytes/conn {bpc} "
              f"(baseline {b_bpc}), events/s {f['events_per_sec']:,.0f} "
              f"(baseline {b['events_per_sec']:,.0f})")
        # the absolute cap only means something once per-connection state
        # dominates the world's fixed overhead (kernels, link queues)
        if n >= 100_000 and bpc > args.bytes_per_conn_cap:
            failures.append(
                f"pdes_scale[{n}]: bytes/connection {bpc} exceeds the "
                f"absolute cap {args.bytes_per_conn_cap}")
        # peak heap under multiple domains has real GC variance: wide band
        if bpc > b_bpc * 1.5:
            failures.append(
                f"pdes_scale[{n}]: bytes/connection {bpc} vs baseline "
                f"{b_bpc} (+50% band)")
        # round counts are deterministic for a fixed herd shape
        if f["rounds_adaptive"] > b["rounds_adaptive"] * 1.1:
            failures.append(
                f"pdes_scale[{n}]: adaptive rounds {f['rounds_adaptive']} vs "
                f"baseline {b['rounds_adaptive']} (+10% band)")
        if f["events_per_sec"] < b["events_per_sec"] * (1 - args.max_slowdown_pdes):
            failures.append(
                f"pdes_scale[{n}]: events/s {f['events_per_sec']:,.0f} is more "
                f"than {args.max_slowdown_pdes:.0%} below baseline "
                f"{b['events_per_sec']:,.0f}")
        if f["rounds_per_sec_fixed"] < b["rounds_per_sec_fixed"] * (
                1 - args.max_slowdown_pdes):
            failures.append(
                f"pdes_scale[{n}]: fixed-mode rounds/s "
                f"{f['rounds_per_sec_fixed']:,.0f} is more than "
                f"{args.max_slowdown_pdes:.0%} below baseline "
                f"{b['rounds_per_sec_fixed']:,.0f}")

    pair = fs["stream_pair_cost_bytes"]
    b_pair = bs["stream_pair_cost_bytes"]
    print(f"stream pair cost: fresh {pair} B (baseline {b_pair} B)")
    if pair > 256:
        failures.append(
            f"pdes_scale: stream pair cost {pair} B exceeds the 256 B cap "
            "(flat connection state regressed)")
    if pair > b_pair * 1.25:
        failures.append(
            f"pdes_scale: stream pair cost {pair} B vs baseline {b_pair} B "
            "(+25% band)")

    ih = fs["idle_heavy"]
    ratio = ih["rounds_fixed"] / max(1, ih["rounds_adaptive"])
    print(f"idle-heavy: {ih['rounds_adaptive']} adaptive vs "
          f"{ih['rounds_fixed']} fixed rounds ({ratio:.0f}x), "
          f"wall speedup {ih['speedup_vs_fixed']:.2f}x")
    if ratio < 2.0:
        failures.append(
            f"pdes_scale: idle-heavy round reduction {ratio:.2f}x < 2x "
            "(adaptive lookahead stopped adapting)")
    if ih["speedup_vs_fixed"] < 1.5:
        failures.append(
            f"pdes_scale: idle-heavy wall speedup "
            f"{ih['speedup_vs_fixed']:.2f}x < 1.5x floor")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--max-slowdown", type=float, default=0.15,
                    help="allowed fractional events/s drop vs baseline")
    ap.add_argument("--words-budget", type=float, default=128.0,
                    help="max sequential minor words per event")
    ap.add_argument("--max-slowdown-pdes", type=float, default=0.35,
                    help="allowed fractional throughput drop on the "
                         "pdes_scale sweep")
    ap.add_argument("--bytes-per-conn-cap", type=int, default=4096,
                    help="absolute end-to-end bytes/connection cap")
    ap.add_argument("--require", action="append", default=[],
                    metavar="SECTION",
                    help="fail if the fresh file lacks this section "
                         "(sequential, pdes_scale); repeatable")
    args = ap.parse_args()

    base, fresh = load(args.baseline), load(args.fresh)
    failures = []

    for section in args.require:
        if section not in fresh:
            sys.exit(f"{args.fresh}: required section {section!r} missing")

    if "sequential" in base and "sequential" in fresh:
        gate_sequential(base, fresh, args, failures)
    elif "sequential" in args.require:
        pass  # absence already fatal above
    else:
        print("sequential section not in both files; skipping")

    if "pdes_scale" in base and "pdes_scale" in fresh:
        gate_pdes_scale(base, fresh, args, failures)
    else:
        print("pdes_scale section not in both files; skipping")

    if failures:
        print("\nSELFPERF GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("selfperf gate passed")


if __name__ == "__main__":
    main()
