#!/usr/bin/env python3
"""Self-performance regression gate (CI).

Compares a freshly generated BENCH_selfperf.json against the checked-in
baseline and fails the build when the simulator itself regressed:

  * sequential events/s more than --max-slowdown (default 15%) below
    the baseline's — wall-clock throughput of the event loop;
  * sequential minor words per event above --words-budget (default 128)
    — the zero-allocation dispatch budget (DESIGN.md section 13), an
    absolute cap so allocation creep cannot ratchet the baseline up.

Throughput is wall-clock and CI runners are noisy, hence the generous
relative band; the allocation gate is exact (minor words per event is
deterministic for a fixed workload) and carries most of the signal.

Usage: check_selfperf.py BASELINE.json FRESH.json [options]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "remon-selfperf/1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--max-slowdown", type=float, default=0.15,
                    help="allowed fractional events/s drop vs baseline")
    ap.add_argument("--words-budget", type=float, default=128.0,
                    help="max sequential minor words per event")
    args = ap.parse_args()

    base, fresh = load(args.baseline), load(args.fresh)
    if base["quick"] != fresh["quick"]:
        sys.exit("baseline and fresh run disagree on quick mode; "
                 "throughput is not comparable")

    failures = []

    b_eps = base["sequential"]["events_per_sec"]
    f_eps = fresh["sequential"]["events_per_sec"]
    floor = b_eps * (1.0 - args.max_slowdown)
    print(f"events/s: baseline {b_eps:,.0f}  fresh {f_eps:,.0f}  "
          f"floor {floor:,.0f}")
    if f_eps < floor:
        failures.append(
            f"events/s {f_eps:,.0f} is more than "
            f"{args.max_slowdown:.0%} below baseline {b_eps:,.0f}")

    words = fresh["sequential"]["minor_words_per_event"]
    print(f"minor words/event: fresh {words:.2f}  budget "
          f"{args.words_budget:.2f}  "
          f"(baseline {base['sequential']['minor_words_per_event']:.2f})")
    if words > args.words_budget:
        failures.append(
            f"minor words/event {words:.2f} exceeds budget "
            f"{args.words_budget:.2f}")

    # per-workload allocation is deterministic: flag any backend whose
    # allocation/event grew, as an early pointer to *where* it crept in
    base_rows = {(w["name"], w["backend"]): w for w in base["workloads"]}
    for w in fresh["workloads"]:
        b = base_rows.get((w["name"], w["backend"]))
        if b and w["minor_words_per_event"] > b["minor_words_per_event"] * 1.05:
            failures.append(
                f"{w['name']}/{w['backend']}: minor words/event "
                f"{w['minor_words_per_event']:.2f} vs baseline "
                f"{b['minor_words_per_event']:.2f} (+5% band)")

    if failures:
        print("\nSELFPERF GATE FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("selfperf gate passed")


if __name__ == "__main__":
    main()
