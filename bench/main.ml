(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation, plus design-choice ablations and microbenchmarks.

     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- fig3          # one experiment
     dune exec bench/main.exe -- quick         # everything, smaller sweeps
     dune exec bench/main.exe -- --domains 4   # fan runs out over 4 domains
     dune exec bench/main.exe -- fig3 --trace DIR   # + dump per-run traces

   Experiments: table1 fig3 fig4 fig5 table2 dense ablations micro faults
   saturation chaos selfperf ring pdes

   Simulation runs are independent (own kernel, clock, seeded RNG), so the
   drivers fan them out across OCaml 5 domains via [Pool.map] and print the
   collected results in order: stdout is byte-identical for any --domains
   value. Wall-time reporting goes to stderr so stdout stays diffable. *)

let experiments =
  [
    ("table1", fun ~quick:_ ~domains () -> Table1.run ~domains ());
    ("fig3", fun ~quick:_ ~domains () -> Fig3.run ~domains ());
    ("fig4", fun ~quick:_ ~domains () -> Fig4.run ~domains ());
    ("fig5", fun ~quick ~domains () -> Fig5.run ~quick ~domains ());
    ("table2", fun ~quick:_ ~domains () -> Table2.run ~domains ());
    ("dense", fun ~quick:_ ~domains () -> Dense.run ~domains ());
    ("ablations", fun ~quick:_ ~domains () -> Ablations.run ~domains ());
    ("micro", fun ~quick:_ ~domains:_ () -> Micro.run ());
    ("faults", fun ~quick ~domains () -> Faults.run ~quick ~domains ());
    ("saturation", fun ~quick ~domains () -> Saturation.run ~quick ~domains ());
    ("chaos", fun ~quick ~domains () -> Chaos.run ~quick ~domains ());
    ("selfperf", fun ~quick ~domains () -> Selfperf.run ~quick ~domains ());
    ("ring", fun ~quick ~domains () -> Ring.run ~quick ~domains ());
    ("pdes", fun ~quick ~domains () -> Pdes.run ~quick ~domains ());
    ("pdes-scale", fun ~quick ~domains () -> Pdes.run_scaling ~quick ~domains ());
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let rec parse_domains = function
    | "--domains" :: n :: _ -> (
      match int_of_string_opt n with
      | Some d when d >= 1 -> Some d
      | _ ->
        Printf.eprintf "--domains expects a positive integer, got %S\n" n;
        exit 2)
    | _ :: rest -> parse_domains rest
    | [] -> None
  in
  let domains =
    match parse_domains args with
    | Some d -> d
    | None -> Remon_util.Pool.default_domains ()
  in
  let rec parse_trace = function
    | "--trace" :: dir :: _ -> Some dir
    | _ :: rest -> parse_trace rest
    | [] -> None
  in
  let rec parse_connections = function
    | "--connections" :: n :: _ -> (
      match int_of_string_opt n with
      | Some c when c >= 1 -> Some c
      | _ ->
        Printf.eprintf "--connections expects a positive integer, got %S\n" n;
        exit 2)
    | _ :: rest -> parse_connections rest
    | [] -> None
  in
  (match parse_connections args with
  | Some c -> Pdes.connections_override := Some c
  | None -> ());
  (match parse_trace args with
  | Some dir ->
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    Remon_workloads.Runner.trace_dir := Some dir
  | None -> ());
  let rec strip = function
    | "--domains" :: _ :: rest -> strip rest
    | "--trace" :: _ :: rest -> strip rest
    | "--connections" :: _ :: rest -> strip rest
    | "quick" :: rest -> strip rest
    | a :: rest -> a :: strip rest
    | [] -> []
  in
  let selected = strip args in
  let to_run =
    if selected = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S; known: %s\n" name
              (String.concat ", " (List.map fst experiments));
            exit 2)
        selected
  in
  print_endline "ReMon reproduction benchmark harness";
  print_endline "paper: Secure and Efficient Application Monitoring and Replication";
  print_endline "       (Volckaert et al., USENIX ATC 2016)\n";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      let te = Unix.gettimeofday () in
      f ~quick ~domains ();
      Printf.eprintf "[%s] wall time: %.2f s\n%!" name (Unix.gettimeofday () -. te))
    to_run;
  Printf.eprintf "total harness wall time: %.1f s (domains=%d)\n%!"
    (Unix.gettimeofday () -. t0)
    domains
