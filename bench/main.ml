(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation, plus design-choice ablations and microbenchmarks.

     dune exec bench/main.exe             # everything
     dune exec bench/main.exe -- fig3     # one experiment
     dune exec bench/main.exe -- quick    # everything, smaller fig5 sweep

   Experiments: table1 fig3 fig4 fig5 table2 dense ablations micro faults *)

let experiments =
  [
    ("table1", fun ~quick:_ () -> Table1.run ());
    ("fig3", fun ~quick:_ () -> Fig3.run ());
    ("fig4", fun ~quick:_ () -> Fig4.run ());
    ("fig5", fun ~quick () -> Fig5.run ~quick ());
    ("table2", fun ~quick:_ () -> Table2.run ());
    ("dense", fun ~quick:_ () -> Dense.run ());
    ("ablations", fun ~quick:_ () -> Ablations.run ());
    ("micro", fun ~quick:_ () -> Micro.run ());
    ("faults", fun ~quick () -> Faults.run ~quick ());
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let selected = List.filter (fun a -> a <> "quick") args in
  let to_run =
    if selected = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S; known: %s\n" name
              (String.concat ", " (List.map fst experiments));
            exit 2)
        selected
  in
  print_endline "ReMon reproduction benchmark harness";
  print_endline "paper: Secure and Efficient Application Monitoring and Replication";
  print_endline "       (Volckaert et al., USENIX ATC 2016)\n";
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, f) -> f ~quick ()) to_run;
  Printf.printf "total harness wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
