(* Figure 4: the Phoronix suite under all five spatial relaxation levels
   (plus GHUMVEE alone), 2 replicas. *)

open Remon_util
open Remon_workloads

let run ?domains () =
  print_endline "=== Figure 4: Phoronix suite, spatial policy sweep, 2 replicas ===\n";
  let header =
    [ "benchmark"; "series"; "no-IPMON"; "BASE"; "NS_RO"; "NS_RW"; "SOCK_RO"; "SOCK_RW" ]
  in
  let t =
    Table.create ~title:"normalized execution time (paper / simulated)" ~header
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right ]
      ()
  in
  (* geomean accumulators: index 0 = no-IPMON, 1..5 = levels *)
  let sims = Array.make 6 [] in
  let papers = Array.make 6 [] in
  (* one job per benchmark: the six policy runs of an entry stay ordered
     inside it, and results are collected in entry order *)
  let series =
    Pool.map ?domains
      (fun (e : Phoronix.entry) ->
        let sim_no = Runner.normalized_time e.profile (Runner.cfg_ghumvee ()) in
        let sim_levels =
          List.map
            (fun lvl -> Runner.normalized_time e.profile (Runner.cfg_remon lvl))
            Phoronix.levels
        in
        sim_no :: sim_levels)
      Phoronix.all
  in
  List.iter2
    (fun (e : Phoronix.entry) sim_series ->
      List.iteri (fun i v -> sims.(i) <- v :: sims.(i)) sim_series;
      Array.iteri (fun i v -> papers.(i) <- v :: papers.(i)) e.paper;
      Table.add_row t
        (e.bench :: "paper" :: List.map Table.fmt_ratio (Array.to_list e.paper));
      Table.add_row t ("" :: "sim" :: List.map Table.fmt_ratio sim_series))
    Phoronix.all series;
  Table.add_separator t;
  Table.add_row t
    ("GEOMEAN" :: "paper"
    :: List.map (fun l -> Table.fmt_ratio (Stats.geomean l)) (Array.to_list papers));
  Table.add_row t
    ("" :: "sim"
    :: List.map (fun l -> Table.fmt_ratio (Stats.geomean l)) (Array.to_list sims));
  Table.print t;
  Printf.printf
    "\nPaper: Phoronix geomean overhead drops 146.4%% -> 41.2%% at SOCKET_RW;\n";
  Printf.printf "       network-loopback drops 2446%% -> 200%%.\n";
  Printf.printf "Sim:   geomean %s -> %s; loopback %s -> %s.\n\n"
    (Table.fmt_pct (Stats.geomean sims.(0) -. 1.))
    (Table.fmt_pct (Stats.geomean sims.(5) -. 1.))
    (Table.fmt_pct (List.nth (List.rev sims.(0)) 6 -. 1.))
    (Table.fmt_pct (List.nth (List.rev sims.(5)) 6 -. 1.))
