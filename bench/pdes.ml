(* Sharded-simulation (PDES) scaling sweep (DESIGN.md section 15).

   A saturation-grade multi-host scenario — four MVEE server hosts plus a
   client host, cross-host traffic only — is run at increasing shard
   counts on OCaml 5 domains. Two things are reported:

   - the determinism contract, checked bit-for-bit: every shard count must
     reproduce the shards=1 outcome digest and RMRC recordings exactly
     (this is the hard invariant; a speedup that perturbs outcomes is a
     bug, not a feature);
   - the scaling curve: wall-clock per shard count and the conservative
     round count (the synchronization overhead the link-latency lookahead
     has to amortize). Wall times go to stderr so stdout stays diffable
     across machines and core counts. *)

open Remon_core
open Remon_sim
open Remon_util
open Remon_workloads

let scenario ~quick =
  {
    Topology.id = 0;
    seed = 0xBEEF;
    server_hosts = 4;
    nreplicas = 3;
    backend = Mvee.Remon;
    arch = Servers.Epoll_loop;
    requests_per_server = (if quick then 60 else 240);
    concurrency = 4;
    requests_per_conn = 4;
    link_latency = Vtime.us 200;
    faults = "";
    record = true;
  }

let run ?(quick = false) ?domains:_ () =
  print_endline "=== Sharded simulation (conservative PDES) ===\n";
  let sc = scenario ~quick in
  print_endline (Topology.render sc);
  Printf.printf "host shards run on OCaml domains; lookahead = link latency\n\n";
  let shard_counts = [ 1; 2; 4; 5 ] in
  let t =
    Table.create ~title:"shard scaling (5 hosts: 4 server + 1 client)"
      ~header:
        [ "shards"; "digest"; "recordings"; "rounds"; "responses"; "errors" ]
      ()
  in
  let reference = ref None in
  List.iter
    (fun shards ->
      let w0 = Unix.gettimeofday () in
      let r = Topology.run ~shards sc in
      let wall = Unix.gettimeofday () -. w0 in
      let digest_ok, recordings_ok =
        match !reference with
        | None ->
          reference := Some (r, wall);
          (true, true)
        | Some (ref_r, ref_wall) ->
          Printf.eprintf "  shards=%d wall %.3f s (%.2fx vs shards=1)\n%!"
            shards wall
            (ref_wall /. wall);
          ( r.Topology.digest = ref_r.Topology.digest,
            List.for_all2
              (fun (h1, r1) (h2, r2) ->
                h1 = h2
                && Recording.to_string r1 = Recording.to_string r2)
              r.Topology.recordings ref_r.Topology.recordings )
      in
      if shards = 1 then
        Printf.eprintf "  shards=1 wall %.3f s (reference)\n%!"
          (match !reference with Some (_, w) -> w | None -> 0.);
      Table.add_row t
        [
          string_of_int shards;
          (if digest_ok then "identical" else "DIVERGED");
          (if recordings_ok then "identical" else "DIVERGED");
          string_of_int r.Topology.rounds;
          string_of_int r.Topology.responses;
          string_of_int r.Topology.transport_errors;
        ];
      if not (digest_ok && recordings_ok) then
        failwith
          (Printf.sprintf
             "PDES determinism violation at shards=%d: outcomes diverged \
              from the sequential reference"
             shards))
    shard_counts;
  Table.print t;
  print_newline ();
  (* chaos variant: fault injection on one host must not change the story *)
  let sc_chaos = { sc with Topology.faults = "delay@15:1=1500us"; id = 1 } in
  let r1 = Topology.run ~shards:1 sc_chaos in
  let r4 = Topology.run ~shards:4 sc_chaos in
  Printf.printf "chaos variant (%s): shards 1 vs 4 digests %s\n"
    sc_chaos.Topology.faults
    (if r1.Topology.digest = r4.Topology.digest then "identical" else "DIVERGED");
  if r1.Topology.digest <> r4.Topology.digest then
    failwith "PDES determinism violation under fault injection";
  print_newline ()
