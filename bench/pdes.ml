(* Sharded-simulation (PDES) scaling sweep (DESIGN.md section 15).

   A saturation-grade multi-host scenario — four MVEE server hosts plus a
   client host, cross-host traffic only — is run at increasing shard
   counts on OCaml 5 domains. Two things are reported:

   - the determinism contract, checked bit-for-bit: every shard count must
     reproduce the shards=1 outcome digest and RMRC recordings exactly
     (this is the hard invariant; a speedup that perturbs outcomes is a
     bug, not a feature);
   - the scaling curve: wall-clock per shard count and the conservative
     round count (the synchronization overhead the link-latency lookahead
     has to amortize). Wall times go to stderr so stdout stays diffable
     across machines and core counts. *)

open Remon_core
open Remon_sim
open Remon_util
open Remon_workloads

let scenario ~quick =
  {
    Topology.id = 0;
    seed = 0xBEEF;
    server_hosts = 4;
    nreplicas = 3;
    backend = Mvee.Remon;
    arch = Servers.Epoll_loop;
    requests_per_server = (if quick then 60 else 240);
    concurrency = 4;
    requests_per_conn = 4;
    link_latency = Vtime.us 200;
    faults = "";
    record = true;
  }

let run_matrix ?(quick = false) () =
  print_endline "=== Sharded simulation (conservative PDES) ===\n";
  let sc = scenario ~quick in
  print_endline (Topology.render sc);
  Printf.printf "host shards run on OCaml domains; lookahead = link latency\n\n";
  let shard_counts = [ 1; 2; 4; 5 ] in
  let t =
    Table.create ~title:"shard scaling (5 hosts: 4 server + 1 client)"
      ~header:
        [ "shards"; "digest"; "recordings"; "rounds"; "responses"; "errors" ]
      ()
  in
  let reference = ref None in
  List.iter
    (fun shards ->
      let w0 = Unix.gettimeofday () in
      let r = Topology.run ~shards sc in
      let wall = Unix.gettimeofday () -. w0 in
      let digest_ok, recordings_ok =
        match !reference with
        | None ->
          reference := Some (r, wall);
          (true, true)
        | Some (ref_r, ref_wall) ->
          Printf.eprintf "  shards=%d wall %.3f s (%.2fx vs shards=1)\n%!"
            shards wall
            (ref_wall /. wall);
          ( r.Topology.digest = ref_r.Topology.digest,
            List.for_all2
              (fun (h1, r1) (h2, r2) ->
                h1 = h2
                && Recording.to_string r1 = Recording.to_string r2)
              r.Topology.recordings ref_r.Topology.recordings )
      in
      if shards = 1 then
        Printf.eprintf "  shards=1 wall %.3f s (reference)\n%!"
          (match !reference with Some (_, w) -> w | None -> 0.);
      Table.add_row t
        [
          string_of_int shards;
          (if digest_ok then "identical" else "DIVERGED");
          (if recordings_ok then "identical" else "DIVERGED");
          string_of_int r.Topology.rounds;
          string_of_int r.Topology.responses;
          string_of_int r.Topology.transport_errors;
        ];
      if not (digest_ok && recordings_ok) then
        failwith
          (Printf.sprintf
             "PDES determinism violation at shards=%d: outcomes diverged \
              from the sequential reference"
             shards))
    shard_counts;
  Table.print t;
  print_newline ();
  (* chaos variant: fault injection on one host must not change the story *)
  let sc_chaos = { sc with Topology.faults = "delay@15:1=1500us"; id = 1 } in
  let r1 = Topology.run ~shards:1 sc_chaos in
  let r4 = Topology.run ~shards:4 sc_chaos in
  Printf.printf "chaos variant (%s): shards 1 vs 4 digests %s\n"
    sc_chaos.Topology.faults
    (if r1.Topology.digest = r4.Topology.digest then "identical" else "DIVERGED");
  if r1.Topology.digest <> r4.Topology.digest then
    failwith "PDES determinism violation under fault injection";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Connection-scaling sweep (DESIGN.md section 16): the herd tier at
   10^3..10^6 simulated connections.

   Stdout carries only deterministic quantities (digest identity, round
   and event counts) so it stays byte-identical for any --domains value;
   wall clocks, throughput and heap figures go to stderr and into the
   "pdes_scale" section of BENCH_selfperf.json, which
   scripts/check_selfperf.py gates against the committed baseline. *)

let connections_override : int option ref = ref None

type sweep_row = {
  sw_connections : int;
  sw_cells : int;
  sw_rounds_adaptive : int;
  sw_rounds_fixed : int;
  sw_events : int;
  sw_wall_seq : float;
  sw_wall_par : float;
  sw_wall_fixed : float;
  sw_peak_heap_words : int;
  sw_bytes_per_conn : int;
}

let time_run f =
  let w0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. w0)

let sweep_point ~domains connections =
  let herd = Topology.herd_of_connections ~seed:42 connections in
  (* Gc.top_heap_words is a process-global high-water mark, so the
     sharded adaptive run — the configuration whose memory we report —
     goes first, peak snapshotted before the 1-shard and fixed-mode
     digest cross-checks can push the mark higher (the 1-shard run
     holds every host's garbage in one domain heap; the fixed run burns
     orders of magnitude more rounds). compact first so an earlier
     point's garbage is not sitting under this one's live set. *)
  Gc.compact ();
  let par, wall_par =
    time_run (fun () -> Topology.run_herd ~shards:domains herd)
  in
  let peak = (Gc.quick_stat ()).Gc.top_heap_words in
  let seq, wall_seq = time_run (fun () -> Topology.run_herd ~shards:1 herd) in
  let fixed, wall_fixed =
    time_run (fun () ->
        Topology.run_herd ~shards:domains ~mode:World.Fixed herd)
  in
  if par.Topology.hr_digest <> seq.Topology.hr_digest then
    failwith
      (Printf.sprintf
         "PDES determinism violation: herd digest diverged at %d \
          connections, shards %d vs 1"
         connections domains);
  if fixed.Topology.hr_digest <> seq.Topology.hr_digest then
    failwith
      (Printf.sprintf
         "PDES determinism violation: herd digest diverged at %d \
          connections, fixed vs adaptive lookahead"
         connections);
  Printf.eprintf
    "  %8d conns: seq %.2f s, par %.2f s, fixed %.2f s, peak heap %d words\n%!"
    connections wall_seq wall_par wall_fixed peak;
  {
    sw_connections = connections;
    sw_cells = herd.Topology.cells;
    sw_rounds_adaptive = par.Topology.hr_rounds;
    sw_rounds_fixed = fixed.Topology.hr_rounds;
    sw_events = par.Topology.hr_events;
    sw_wall_seq = wall_seq;
    sw_wall_par = wall_par;
    sw_wall_fixed = wall_fixed;
    sw_peak_heap_words = peak;
    sw_bytes_per_conn = peak * (Sys.word_size / 8) / connections;
  }

(* The ablation point the adaptive lookahead exists for: few connections,
   long think times — virtual time is almost all idle, so the fixed
   synchronizer burns rounds stepping one link latency at a time while
   the adaptive one jumps straight to the next real work. *)
let idle_heavy_ablation ~domains =
  let herd =
    {
      Topology.h_seed = 43;
      cells = 200;
      conns_per_cell = 5;
      rounds_per_conn = 3;
      payload = 64;
      think_ns = 500_000_000;
      stagger_ns = 2_000_000;
      h_link_latency = Vtime.us 200;
    }
  in
  let ad, wall_ad =
    time_run (fun () -> Topology.run_herd ~shards:domains herd)
  in
  let fx, wall_fx =
    time_run (fun () ->
        Topology.run_herd ~shards:domains ~mode:World.Fixed herd)
  in
  if ad.Topology.hr_digest <> fx.Topology.hr_digest then
    failwith
      "PDES determinism violation: idle-heavy digest diverged, fixed vs \
       adaptive lookahead";
  let speedup = wall_fx /. wall_ad in
  Printf.eprintf
    "  idle-heavy: adaptive %.3f s (%d rounds) vs fixed %.3f s (%d rounds) \
     = %.2fx\n%!"
    wall_ad ad.Topology.hr_rounds wall_fx fx.Topology.hr_rounds speedup;
  (ad, fx, wall_ad, wall_fx, speedup)

(* Text-level merge: replace or append the "pdes_scale" key of
   BENCH_selfperf.json without disturbing whatever the selfperf
   experiment wrote. The key is always written last, so merging is a
   truncate-at-marker (or strip the closing brace) plus append. *)
let merge_json ~path section =
  let marker = ",\n  \"pdes_scale\":" in
  let prefix =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      let cut =
        let rec find i =
          if i + String.length marker > String.length body then None
          else if String.sub body i (String.length marker) = marker then
            Some i
          else find (i + 1)
        in
        find 0
      in
      match cut with
      | Some i -> String.sub body 0 i
      | None ->
        let body = String.trim body in
        if String.length body > 0 && body.[String.length body - 1] = '}' then
          String.sub body 0 (String.length body - 1) |> String.trim
        else body
    end
    else "{\n  \"schema\": \"remon-selfperf/1\""
  in
  let oc = open_out_bin path in
  output_string oc prefix;
  output_string oc marker;
  output_string oc section;
  output_string oc "\n}\n";
  close_out oc

let write_json ~quick ~domains rows pair_cost (ih_ad, ih_fx, ih_wall_ad, ih_wall_fx, ih_speedup) =
  let b = Buffer.create 2048 in
  Buffer.add_string b " {\n";
  Buffer.add_string b (Printf.sprintf "    \"quick\": %b,\n" quick);
  Buffer.add_string b (Printf.sprintf "    \"domains\": %d,\n" domains);
  Buffer.add_string b "    \"sweep\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "      {\"connections\": %d, \"cells\": %d, \
            \"rounds_adaptive\": %d, \"rounds_fixed\": %d, \"events\": %d, \
            \"wall_s_seq\": %.4f, \"wall_s_par\": %.4f, \"wall_s_fixed\": \
            %.4f, \"events_per_sec\": %.0f, \"rounds_per_sec_fixed\": %.0f, \
            \"peak_heap_words\": %d, \"bytes_per_connection\": %d}%s\n"
           r.sw_connections r.sw_cells r.sw_rounds_adaptive r.sw_rounds_fixed
           r.sw_events r.sw_wall_seq r.sw_wall_par r.sw_wall_fixed
           (float_of_int r.sw_events /. r.sw_wall_par)
           (float_of_int r.sw_rounds_fixed /. r.sw_wall_fixed)
           r.sw_peak_heap_words r.sw_bytes_per_conn
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "    ],\n";
  Buffer.add_string b
    (Printf.sprintf "    \"stream_pair_cost_bytes\": %d,\n" pair_cost);
  Buffer.add_string b
    (Printf.sprintf
       "    \"idle_heavy\": {\"connections\": %d, \"rounds_adaptive\": %d, \
        \"rounds_fixed\": %d, \"wall_s_adaptive\": %.4f, \"wall_s_fixed\": \
        %.4f, \"speedup_vs_fixed\": %.2f}\n"
       ih_ad.Topology.hr_connections ih_ad.Topology.hr_rounds
       ih_fx.Topology.hr_rounds ih_wall_ad ih_wall_fx ih_speedup);
  Buffer.add_string b "  }";
  merge_json ~path:"BENCH_selfperf.json" (Buffer.contents b)

let run_scaling ~quick ~domains () =
  print_endline "=== Connection scaling (herd tier) ===\n";
  let points =
    match !connections_override with
    | Some n -> [ n ]
    | None ->
      if quick then [ 1_000; 10_000; 100_000 ]
      else [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let t =
    Table.create ~title:"herd sweep (2 hosts per cell)"
      ~header:
        [ "connections"; "cells"; "digest"; "rounds ad"; "rounds fx";
          "events" ]
      ()
  in
  let rows =
    List.map
      (fun n ->
        let r = sweep_point ~domains n in
        Table.add_row t
          [
            string_of_int r.sw_connections;
            string_of_int r.sw_cells;
            "identical";
            string_of_int r.sw_rounds_adaptive;
            string_of_int r.sw_rounds_fixed;
            string_of_int r.sw_events;
          ];
        r)
      points
  in
  Table.print t;
  print_newline ();
  let pair_cost = Topology.stream_pair_cost_bytes () in
  Printf.printf "flat stream pair cost: %d bytes (pooled, packed fields)\n"
    pair_cost;
  let ih = idle_heavy_ablation ~domains in
  let ih_ad, ih_fx, _, _, speedup = ih in
  (* stdout stays deterministic: the round counts are exact, the wall-clock
     speedup goes to stderr and the gated JSON *)
  Printf.printf
    "idle-heavy ablation: adaptive %d rounds vs fixed %d rounds\n"
    ih_ad.Topology.hr_rounds ih_fx.Topology.hr_rounds;
  if ih_fx.Topology.hr_rounds <= ih_ad.Topology.hr_rounds then
    failwith
      "adaptive lookahead failed to reduce rounds on the idle-heavy corpus";
  Printf.eprintf "  idle-heavy wall-clock speedup vs fixed: %.2fx\n%!" speedup;
  write_json ~quick ~domains rows pair_cost ih;
  print_newline ()

let run ?(quick = false) ?domains:_ () = run_matrix ~quick ()
