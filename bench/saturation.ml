(* Saturation sweep: latency-vs-load curves for the server benchmarks.

   Ramps the closed-loop client concurrency against one server config per
   backend and reports virtual-time throughput plus the per-request latency
   distribution at each step. Past the saturation point the throughput
   curve flattens (the server's request pipeline is the bottleneck) while
   queueing pushes p99 latency up monotonically — the shape the paper's
   Figure 5 saturated-server columns summarize in a single number.

   Jobs (backend x concurrency step) are independent simulations, fanned
   out via Pool.map and printed in order: stdout is byte-identical for any
   --domains value. *)

open Remon_core
open Remon_sim
open Remon_util
open Remon_workloads

let server = Servers.redis
let net_latency = Vtime.us 100
let requests_per_conn = 30

let backends =
  [
    ("native", fun () -> Runner.cfg_native ());
    ("ghumvee", fun () -> Runner.cfg_ghumvee ());
    ("varan", fun () -> Runner.cfg_varan ());
    ("remon", fun () -> Runner.cfg_remon Classification.Socket_rw_level);
  ]

(* The epoll server resolves diversified pointers back to fds by scanning
   candidates 0..63, so the sweep stays below ~56 concurrent connections. *)
let steps ~quick = if quick then [ 4; 16 ] else [ 2; 4; 8; 16; 24; 32; 48 ]

let ms v = Vtime.to_float_ns v /. 1e6

let run ?(quick = false) ?domains () =
  print_endline "=== Saturation sweep: latency vs. offered load ===\n";
  Printf.printf
    "server %s (%d B req / %d B resp, %.1f us work), link %s, keep-alive x%d\n\n"
    server.Servers.name server.Servers.request_bytes
    server.Servers.response_bytes
    (float_of_int server.Servers.work_ns /. 1e3)
    (Vtime.to_string net_latency) requests_per_conn;
  let steps = steps ~quick in
  let jobs =
    List.concat_map
      (fun (bname, cfg) -> List.map (fun conc -> (bname, cfg, conc)) steps)
      backends
  in
  let rows =
    Pool.map ?domains
      (fun (_bname, cfg, conc) ->
        let client =
          {
            (Clients.wrk ()) with
            Clients.concurrency = conc;
            total_requests = conc * requests_per_conn;
            requests_per_conn;
          }
        in
        let r =
          Runner.run_server_bench ~latency:net_latency ~server ~client (cfg ())
        in
        let dur_s = Vtime.to_float_s r.Runner.client_duration in
        let throughput =
          if dur_s > 0. then float_of_int r.Runner.responses /. dur_s else 0.
        in
        let l = r.Runner.latency in
        [
          string_of_int conc;
          string_of_int r.Runner.responses;
          Printf.sprintf "%.0f" throughput;
          Printf.sprintf "%.3f" (ms l.Latency.p50);
          Printf.sprintf "%.3f" (ms l.Latency.p90);
          Printf.sprintf "%.3f" (ms l.Latency.p99);
          Printf.sprintf "%.3f" (ms l.Latency.max);
          string_of_int (r.Runner.transport_errors + r.Runner.truncated_requests);
        ])
      jobs
  in
  let nsteps = List.length steps in
  List.iteri
    (fun bi (bname, _) ->
      let t =
        Table.create
          ~title:(Printf.sprintf "%s: latency vs. concurrency" bname)
          ~header:
            [
              "conns"; "responses"; "req/s"; "p50 ms"; "p90 ms"; "p99 ms";
              "max ms"; "errs";
            ]
          ~aligns:
            [
              Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
              Table.Right; Table.Right; Table.Right;
            ]
          ()
      in
      List.iteri (fun i row -> if i / nsteps = bi then Table.add_row t row) rows;
      Table.print t;
      print_newline ())
    backends;
  print_endline
    "Throughput flattens once the server's request pipeline saturates; past\n\
     that point additional connections only deepen the queue, so p99 latency\n\
     rises monotonically with offered load. The MVEE backends saturate\n\
     earlier than native in proportion to their per-syscall overhead.\n"
