(* Figure 3: PARSEC 2.1 and SPLASH-2x normalized execution times for two
   replicas, GHUMVEE alone ("no IP-MON") vs ReMon with IP-MON at
   NONSOCKET_RW_LEVEL. *)

open Remon_core
open Remon_util
open Remon_workloads

let run_suite ?domains title (entries : (string * float * float * Profile.t) list) =
  let t =
    Table.create ~title
      ~header:
        [ "benchmark"; "paper no-IPMON"; "sim no-IPMON"; "paper IP-MON"; "sim IP-MON" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  (* each entry's two runs are one independent job; results come back in
     entry order, so the printed table is identical for any domain count *)
  let results =
    Pool.map ?domains
      (fun (_, _, _, profile) ->
        let sim_no = Runner.normalized_time profile (Runner.cfg_ghumvee ()) in
        let sim_ip =
          Runner.normalized_time profile
            (Runner.cfg_remon Classification.Nonsocket_rw_level)
        in
        (sim_no, sim_ip))
      entries
  in
  let sims_no = ref [] and sims_ip = ref [] in
  let papers_no = ref [] and papers_ip = ref [] in
  List.iter2
    (fun (name, paper_no, paper_ip, _) (sim_no, sim_ip) ->
      sims_no := sim_no :: !sims_no;
      sims_ip := sim_ip :: !sims_ip;
      papers_no := paper_no :: !papers_no;
      papers_ip := paper_ip :: !papers_ip;
      Table.add_row t
        [
          name;
          Table.fmt_ratio paper_no;
          Table.fmt_ratio sim_no;
          Table.fmt_ratio paper_ip;
          Table.fmt_ratio sim_ip;
        ])
    entries results;
  Table.add_separator t;
  Table.add_row t
    [
      "GEOMEAN";
      Table.fmt_ratio (Stats.geomean !papers_no);
      Table.fmt_ratio (Stats.geomean !sims_no);
      Table.fmt_ratio (Stats.geomean !papers_ip);
      Table.fmt_ratio (Stats.geomean !sims_ip);
    ];
  Table.print t;
  print_newline ();
  (Stats.geomean !sims_no, Stats.geomean !sims_ip)

let run ?domains () =
  print_endline
    "=== Figure 3: PARSEC 2.1 + SPLASH-2x, 2 replicas, 4 worker threads ===\n";
  let parsec =
    List.map
      (fun (e : Parsec.entry) ->
        (e.bench, e.paper_no_ipmon, e.paper_ipmon, e.profile))
      Parsec.all
  in
  let gp_no, gp_ip = run_suite ?domains "PARSEC 2.1" parsec in
  let splash =
    List.map
      (fun (e : Splash.entry) ->
        (e.bench, e.paper_no_ipmon, e.paper_ipmon, e.profile))
      Splash.all
  in
  let gs_no, gs_ip = run_suite ?domains "SPLASH-2x" splash in
  Printf.printf
    "Paper: PARSEC overhead 21.9%% -> 11.2%% with IP-MON; SPLASH 29.2%% -> 10.4%%.\n";
  Printf.printf "Sim:   PARSEC overhead %s -> %s with IP-MON; SPLASH %s -> %s.\n\n"
    (Table.fmt_pct (gp_no -. 1.))
    (Table.fmt_pct (gp_ip -. 1.))
    (Table.fmt_pct (gs_no -. 1.))
    (Table.fmt_pct (gs_ip -. 1.))
