(* Deep dive on the three syscall-densest benchmarks the paper singles out
   (Section 5.1): dedup, water_spatial and network-loopback, all with
   >60k syscall invocations per second. *)

open Remon_core
open Remon_util
open Remon_workloads

let run ?domains () =
  print_endline "=== Dense-benchmark deep dive (Section 5.1) ===\n";
  let cases =
    [
      ( "dedup",
        (List.find (fun (e : Parsec.entry) -> e.bench = "dedup") Parsec.all).profile,
        (3.53, 1.69) );
      ( "water_spatial",
        (List.find (fun (e : Splash.entry) -> e.bench = "water_spatial") Splash.all)
          .profile,
        (4.20, 1.21) );
      ( "network-loopback",
        (List.find (fun (e : Phoronix.entry) -> e.bench = "network-loopback")
           Phoronix.all)
          .profile,
        (25.46, 3.00) );
    ]
  in
  let t =
    Table.create ~title:"per-route syscall accounting (2 replicas)"
      ~header:
        [ "benchmark"; "density/thr"; "paper CP"; "sim CP"; "paper IP"; "sim IP";
          "ipmon calls"; "monitored"; "rb resets"; "wakes skipped" ]
      ()
  in
  let rows =
    Pool.map ?domains
      (fun (name, (profile : Profile.t), (paper_cp, paper_ip)) ->
        let cp = Runner.normalized_time profile (Runner.cfg_ghumvee ()) in
        let level =
          if name = "network-loopback" then Classification.Socket_rw_level
          else Classification.Nonsocket_rw_level
        in
        let native = Runner.run_profile profile (Runner.cfg_native ()) in
        let under = Runner.run_profile profile (Runner.cfg_remon level) in
        let ip =
          Remon_sim.Vtime.to_float_ns under.Runner.duration
          /. Remon_sim.Vtime.to_float_ns native.Runner.duration
        in
        let o = under.Runner.outcome in
        [
          name;
          Printf.sprintf "%.0f Hz" profile.Profile.density_hz;
          Table.fmt_ratio paper_cp;
          Table.fmt_ratio cp;
          Table.fmt_ratio paper_ip;
          Table.fmt_ratio ip;
          string_of_int o.Mvee.ipmon_fastpath;
          string_of_int o.Mvee.monitored;
          string_of_int o.Mvee.rb_resets;
          "-";
        ])
      cases
  in
  List.iter (Table.add_row t) rows;
  Table.print t;
  print_newline ()
