(* Batched syscall-ring ablation (DESIGN.md section 13).

   Policy-exempt syscalls are staged in a submission ring and drained into
   the replication buffer in one rendezvous per batch: one pair of RB
   header writes, one FUTEX_WAKE and one set of cache-line bounces are
   amortized over the whole drain. The sweeps below measure the overhead
   curve against batch size and against the flush deadline — the two knobs
   of [Context.mode] — and report how the drains actually clustered.

   Determinism contract: the ring only re-schedules *when* record bytes
   are published, never their order or content, so verdicts and replica-
   visible results are identical at every point of both sweeps; only the
   virtual-time axis moves. [test/test_ring.ml] enforces this bit-for-bit;
   here we plot the time axis. *)

open Remon_core
open Remon_sim
open Remon_util
open Remon_workloads

let dense_profile =
  Profile.make ~name:"ring.dense" ~threads:4 ~density_hz:120_000. ~calls:3000
    ~mix:Profile.mix_file_rw ~description:"syscall-dense ring workload" ()

let mode_for backend =
  match backend with
  | Mvee.Varan -> Context.varan_mode
  | _ -> Context.remon_mode

let cfg_for backend =
  match backend with
  | Mvee.Varan -> Runner.cfg_varan ()
  | _ -> Runner.cfg_remon Classification.Nonsocket_rw_level

let run ?(quick = false) ?domains () =
  print_endline "=== Syscall ring (batched IP-MON submission) ===\n";

  (* (a) batch-size sweep: amortization curve for both in-process engines.
     batch=1 is the unbatched seed path (the ring is not even created). *)
  let batches = if quick then [ 1; 8; 64 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  let backends = [ (Mvee.Remon, "ReMon"); (Mvee.Varan, "VARAN") ] in
  let t =
    Table.create
      ~title:"(a) batch size vs. normalized time (flush deadline 50 us)"
      ~header:
        [ "engine"; "batch"; "normalized time"; "drains"; "records"; "max drain" ]
      ()
  in
  let jobs =
    List.concat_map
      (fun (backend, label) ->
        List.map (fun batch -> (backend, label, batch)) batches)
      backends
  in
  let rows =
    Pool.map ?domains
      (fun (backend, _, batch) ->
        let mode = { (mode_for backend) with Context.ring_batch = batch } in
        let config = { (cfg_for backend) with Mvee.mode_override = Some mode } in
        let native = Runner.run_profile dense_profile (Runner.cfg_native ()) in
        let under = Runner.run_profile dense_profile config in
        let v =
          Vtime.to_float_ns under.Runner.duration
          /. Vtime.to_float_ns native.Runner.duration
        in
        (v, under.Runner.outcome))
      jobs
  in
  List.iter2
    (fun (_, label, batch) (v, o) ->
      Table.add_row t
        [
          label;
          string_of_int batch;
          Printf.sprintf "%.3f" v;
          string_of_int o.Mvee.ring_flushes;
          string_of_int o.Mvee.ring_records;
          string_of_int o.Mvee.ring_max_batch;
        ])
    jobs rows;
  Table.print t;
  print_newline ();

  (* (b) flush-deadline sweep at a fixed batch: shorter deadlines drain
     partial batches (latency bound), longer ones let batches fill. *)
  let deadlines_us = if quick then [ 5; 500 ] else [ 1; 5; 20; 50; 200; 1000 ] in
  let batch = 32 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "(b) flush deadline vs. drain clustering (ReMon, batch %d)" batch)
      ~header:
        [ "deadline"; "normalized time"; "drains"; "avg drain"; "max drain" ]
      ()
  in
  let deadline_rows =
    Pool.map ?domains
      (fun us ->
        let mode =
          {
            Context.remon_mode with
            Context.ring_batch = batch;
            ring_flush_ns = Vtime.us us;
          }
        in
        let config =
          {
            (Runner.cfg_remon Classification.Nonsocket_rw_level) with
            Mvee.mode_override = Some mode;
          }
        in
        let native = Runner.run_profile dense_profile (Runner.cfg_native ()) in
        let under = Runner.run_profile dense_profile config in
        let v =
          Vtime.to_float_ns under.Runner.duration
          /. Vtime.to_float_ns native.Runner.duration
        in
        (v, under.Runner.outcome))
      deadlines_us
  in
  List.iter2
    (fun us (v, o) ->
      Table.add_row t
        [
          Printf.sprintf "%d us" us;
          Printf.sprintf "%.3f" v;
          string_of_int o.Mvee.ring_flushes;
          (if o.Mvee.ring_flushes = 0 then "-"
           else
             Printf.sprintf "%.1f"
               (float_of_int o.Mvee.ring_records
               /. float_of_int o.Mvee.ring_flushes));
          string_of_int o.Mvee.ring_max_batch;
        ])
    deadlines_us deadline_rows;
  Table.print t;
  print_newline ()
