(* Self-performance benchmark: measures the simulator itself, not the
   simulated system. Runs a fixed workload matrix, reports host-side
   throughput (simulated events/sec and syscalls/sec), peak heap, and the
   sequential-vs-parallel harness speedup, and writes everything to
   BENCH_selfperf.json so CI can track regressions across commits.

   The same matrix runs twice — once with one domain, once with the
   requested domain count — so the reported speedup is a like-for-like
   wall-clock ratio on identical work. *)

open Remon_core
open Remon_kernel
open Remon_util
open Remon_workloads

type job = { wname : string; backend : string; profile : Profile.t; config : Mvee.config }

type sample = {
  job : job;
  sim_ns : float; (* simulated master lifetime *)
  events : int; (* scheduler events processed *)
  syscalls : int; (* simulated syscall invocations *)
  wall_s : float; (* host wall time for this cell *)
  minor_words : float; (* minor-heap words allocated during this cell *)
}

let profiles ~quick =
  let calls = if quick then 800 else 3000 in
  [
    Profile.make ~name:"selfperf.dense" ~threads:4 ~density_hz:120_000. ~calls
      ~mix:Profile.mix_file_rw ~description:"syscall-dense self-benchmark" ();
    Profile.make ~name:"selfperf.compute" ~threads:2 ~density_hz:10_000.
      ~calls:(calls / 2) ~mix:Profile.mix_file_rw
      ~description:"compute-heavy self-benchmark" ();
  ]

let backends =
  [
    ("native", fun () -> Runner.cfg_native ());
    ("ghumvee", fun () -> Runner.cfg_ghumvee ());
    ("varan", fun () -> Runner.cfg_varan ());
    ("remon", fun () -> Runner.cfg_remon Classification.Nonsocket_rw_level);
  ]

let matrix ~quick =
  List.concat_map
    (fun profile ->
      List.map
        (fun (backend, cfg) ->
          { wname = profile.Profile.name; backend; profile; config = cfg () })
        backends)
    (profiles ~quick)

(* One matrix cell: a fresh kernel so the scheduler's event counter and the
   kernel's syscall counter cover exactly this run. *)
let run_job job =
  let kernel = Kernel.create ~seed:job.config.Mvee.seed ~net_latency:(Remon_sim.Vtime.us 50) () in
  let h =
    Mvee.launch kernel job.config ~name:job.wname ~body:(Profile.body job.profile)
  in
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Kernel.run kernel;
  let wall_s = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. mw0 in
  let outcome = Mvee.finish h in
  {
    job;
    sim_ns = Remon_sim.Vtime.to_float_ns outcome.Mvee.duration;
    events = (Kernel.sched kernel).Sched.events_processed;
    syscalls = (Kernel.stats kernel).Kstate.syscalls;
    wall_s;
    minor_words;
  }

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let run ?(quick = false) ?domains () =
  print_endline "=== Self-performance: simulator throughput and harness speedup ===\n";
  let domains = match domains with Some d -> max 1 d | None -> Pool.default_domains () in
  let jobs = matrix ~quick in
  (* warm-up: fault in code paths and grow the heap once, outside timing *)
  ignore (run_job (List.hd jobs));
  let seq_samples, seq_wall = timed (fun () -> Pool.map ~domains:1 run_job jobs) in
  let _, par_wall = timed (fun () -> Pool.map ~domains run_job jobs) in
  let gc = Gc.quick_stat () in
  let total_events =
    List.fold_left (fun acc s -> acc + s.events) 0 seq_samples
  in
  let total_syscalls =
    List.fold_left (fun acc s -> acc + s.syscalls) 0 seq_samples
  in
  let events_per_sec = float_of_int total_events /. seq_wall in
  let syscalls_per_sec = float_of_int total_syscalls /. seq_wall in
  let total_minor_words =
    List.fold_left (fun acc s -> acc +. s.minor_words) 0. seq_samples
  in
  let minor_words_per_event =
    total_minor_words /. float_of_int (max 1 total_events)
  in
  let speedup = seq_wall /. Float.max 1e-9 par_wall in
  let t =
    Table.create ~title:"workload matrix (sequential pass)"
      ~header:
        [ "workload"; "backend"; "sim time"; "events"; "syscalls"; "wall"; "minor w/ev" ]
      ~aligns:
        [
          Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right;
        ]
      ()
  in
  List.iter
    (fun s ->
      Table.add_row t
        [
          s.job.wname;
          s.job.backend;
          Printf.sprintf "%.1f ms" (s.sim_ns /. 1e6);
          string_of_int s.events;
          string_of_int s.syscalls;
          Printf.sprintf "%.1f ms" (s.wall_s *. 1e3);
          Printf.sprintf "%.1f" (s.minor_words /. float_of_int (max 1 s.events));
        ])
    seq_samples;
  Table.print t;
  Printf.printf
    "\nsequential: %.2f s wall, %.0f events/s, %.0f syscalls/s, %.1f minor words/event\n\
     parallel (%d domains): %.2f s wall, speedup %.2fx\n\
     peak heap: %d words\n\n"
    seq_wall events_per_sec syscalls_per_sec minor_words_per_event domains
    par_wall speedup gc.Gc.top_heap_words;
  let oc = open_out "BENCH_selfperf.json" in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"remon-selfperf/1\",\n");
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string b (Printf.sprintf "  \"domains\": %d,\n" domains);
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"backend\": \"%s\", \"sim_ns\": %.0f, \
            \"events\": %d, \"syscalls\": %d, \"wall_s\": %.4f, \
            \"minor_words_per_event\": %.2f}%s\n"
           (json_escape s.job.wname) (json_escape s.job.backend) s.sim_ns
           s.events s.syscalls s.wall_s
           (s.minor_words /. float_of_int (max 1 s.events))
           (if i = List.length seq_samples - 1 then "" else ",")))
    seq_samples;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"sequential\": {\"wall_s\": %.4f, \"events_per_sec\": %.0f, \
        \"syscalls_per_sec\": %.0f, \"minor_words_per_event\": %.2f},\n"
       seq_wall events_per_sec syscalls_per_sec minor_words_per_event);
  Buffer.add_string b
    (Printf.sprintf
       "  \"parallel\": {\"domains\": %d, \"wall_s\": %.4f, \"speedup\": %.3f},\n"
       domains par_wall speedup);
  Buffer.add_string b
    (Printf.sprintf "  \"peak_live_words\": %d\n" gc.Gc.top_heap_words);
  Buffer.add_string b "}\n";
  output_string oc (Buffer.contents b);
  close_out oc;
  print_endline "wrote BENCH_selfperf.json\n"
