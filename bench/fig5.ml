(* Figure 5: server benchmarks in two network scenarios for 2-7 replicas
   with IP-MON (SOCKET_RW) and 2 replicas without IP-MON. *)

open Remon_core
open Remon_sim
open Remon_util
open Remon_workloads

let benches =
  [
    (Servers.beanstalkd, Clients.wrk ~concurrency:32 ~total_requests:640 ());
    (Servers.lighttpd_wrk, Clients.wrk ~concurrency:32 ~total_requests:640 ());
    (Servers.memcached, Clients.wrk ~concurrency:32 ~total_requests:640 ());
    (Servers.nginx_wrk, Clients.wrk ~concurrency:32 ~total_requests:640 ());
    (Servers.redis, Clients.wrk ~concurrency:32 ~total_requests:640 ());
    (Servers.apache_ab, Clients.ab ~concurrency:8 ~total_requests:240 ());
    (Servers.thttpd_ab, Clients.ab ~concurrency:8 ~total_requests:240 ());
    (Servers.lighttpd_ab, Clients.ab ~concurrency:8 ~total_requests:240 ());
    (Servers.lighttpd_http_load, Clients.http_load ~concurrency:16 ~total_requests:320 ());
  ]

let scenarios =
  [ ("worst-case gigabit (~0.1ms)", Vtime.us 100); ("realistic (2ms)", Vtime.ms 2) ]

let replica_counts = [ 2; 3; 4; 5; 6; 7 ]

let run ?(quick = false) ?domains () =
  print_endline
    "=== Figure 5: server benchmarks, 2 latency scenarios, 2-7 replicas ===\n";
  let replica_counts = if quick then [ 2; 4; 7 ] else replica_counts in
  (* flatten both scenarios into one job list (a job = all replica counts of
     one bench under one latency) so the pool sees the full sweep at once *)
  let jobs =
    List.concat_map
      (fun (_, latency) -> List.map (fun bench -> (latency, bench)) benches)
      scenarios
  in
  let rows =
    Pool.map ?domains
      (fun (latency, (server, client)) ->
        let native =
          Runner.run_server_bench ~latency ~server ~client (Runner.cfg_native ())
        in
        let base = Vtime.to_float_ns native.Runner.client_duration in
        let overhead config =
          let r = Runner.run_server_bench ~latency ~server ~client config in
          (Vtime.to_float_ns r.Runner.client_duration /. base) -. 1.
        in
        let no_ipmon = overhead (Runner.cfg_ghumvee ()) in
        let with_ipmon =
          List.map
            (fun n ->
              overhead (Runner.cfg_remon ~nreplicas:n Classification.Socket_rw_level))
            replica_counts
        in
        server.Servers.name :: Table.fmt_pct no_ipmon
        :: List.map Table.fmt_pct with_ipmon)
      jobs
  in
  let nbenches = List.length benches in
  List.iteri
    (fun si (scenario, _) ->
      let t =
        Table.create
          ~title:(Printf.sprintf "normalized runtime overhead, %s" scenario)
          ~header:
            ("benchmark" :: "2 (no IP-MON)"
            :: List.map (fun n -> Printf.sprintf "%d repl" n) replica_counts)
          ~aligns:
            (Table.Left :: Table.Right
            :: List.map (fun _ -> Table.Right) replica_counts)
          ()
      in
      List.iteri
        (fun i row -> if i / nbenches = si then Table.add_row t row)
        rows;
      Table.print t;
      print_newline ())
    scenarios;
  print_endline
    "Paper: with IP-MON at SOCKET_RW, overheads are near-zero in the realistic\n\
     scenario (0-3.5%) and far below the no-IP-MON configuration at gigabit\n\
     latencies; overhead grows slowly with the replica count.\n"
