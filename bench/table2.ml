(* Table 2: comparison with other MVEEs. The numbers for VARAN, Orchestra,
   Tachyon and Mx are the values those papers reported (reproduced here as
   published, with their very different network setups); the ReMon columns
   are re-measured by this simulator at ~0.1ms and 5ms link latency, plus
   our in-process VARAN baseline for a like-for-like comparison. *)

open Remon_core
open Remon_sim
open Remon_util
open Remon_workloads

type row = {
  bench : string;
  server : Servers.spec option;
  client : Clients.spec option;
  reported : string list; (* Tachyon; Mx; VARAN; Orchestra; ReMon gig; ReMon 5ms *)
}

let rows =
  [
    {
      bench = "apache (ab)";
      server = Some Servers.apache_ab;
      client = Some (Clients.ab ());
      reported = [ "-"; "-"; "-"; "50%"; "34%"; "2.4%" ];
    };
    {
      bench = "lighttpd (ab)";
      server = Some Servers.lighttpd_ab;
      client = Some (Clients.ab ());
      reported = [ "790%/272%/30%"; "-"; "-"; "-"; "55%"; "0.0%" ];
    };
    {
      bench = "thttpd (ab)";
      server = Some Servers.thttpd_ab;
      client = Some (Clients.ab ());
      reported = [ "1320%/17%/0%"; "-"; "-"; "-"; "73%"; "2.7%" ];
    };
    {
      bench = "lighttpd (http_load)";
      server = Some Servers.lighttpd_http_load;
      client = Some (Clients.http_load ());
      reported = [ "-"; "249%/4%"; "1.0%"; "-"; "45%"; "3.5%" ];
    };
    {
      bench = "redis";
      server = Some Servers.redis;
      client = Some (Clients.wrk ~concurrency:32 ~total_requests:640 ());
      reported = [ "-"; "1572%/5%"; "6%"; "-"; "45%"; "0.1%" ];
    };
    {
      bench = "beanstalkd";
      server = Some Servers.beanstalkd;
      client = Some (Clients.wrk ~concurrency:32 ~total_requests:640 ());
      reported = [ "-"; "-"; "52%"; "-"; "45%"; "0.6%" ];
    };
    {
      bench = "memcached";
      server = Some Servers.memcached;
      client = Some (Clients.wrk ~concurrency:32 ~total_requests:640 ());
      reported = [ "-"; "-"; "14%"; "-"; "8.4%"; "0.3%" ];
    };
    {
      bench = "nginx (wrk)";
      server = Some Servers.nginx_wrk;
      client = Some (Clients.wrk ~concurrency:32 ~total_requests:640 ());
      reported = [ "-"; "-"; "28%"; "-"; "194%"; "0.8%" ];
    };
    {
      bench = "lighttpd (wrk)";
      server = Some Servers.lighttpd_wrk;
      client = Some (Clients.wrk ~concurrency:32 ~total_requests:640 ());
      reported = [ "-"; "-"; "12%"; "-"; "169%"; "0.7%" ];
    };
  ]

let measure_server server client latency config =
  let native = Runner.run_server_bench ~latency ~server ~client (Runner.cfg_native ()) in
  let r = Runner.run_server_bench ~latency ~server ~client config in
  Vtime.to_float_ns r.Runner.client_duration
  /. Vtime.to_float_ns native.Runner.client_duration
  -. 1.

let spec_overheads config =
  List.map
    (fun (e : Spec.entry) -> Runner.normalized_time e.profile config)
    Spec.all
  |> Stats.geomean

let run ?domains () =
  print_endline "=== Table 2: comparison with other MVEEs (2 replicas) ===\n";
  let t =
    Table.create
      ~title:
        "reported overheads (as published) vs. this reproduction's measurements"
      ~header:
        [ "benchmark"; "Tachyon"; "Mx"; "VARAN"; "Orchestra"; "ReMon gig";
          "ReMon 5ms"; "sim VARAN"; "sim ReMon gig"; "sim ReMon 5ms" ]
      ()
  in
  let sims =
    Pool.map ?domains
      (fun row ->
        match (row.server, row.client) with
        | Some server, Some client ->
          let sim_varan =
            measure_server server client (Vtime.us 100) (Runner.cfg_varan ())
          in
          let sim_gig =
            measure_server server client (Vtime.us 100)
              (Runner.cfg_remon Classification.Socket_rw_level)
          in
          let sim_5ms =
            measure_server server client (Vtime.ms 5)
              (Runner.cfg_remon Classification.Socket_rw_level)
          in
          Some (sim_varan, sim_gig, sim_5ms)
        | _ -> None)
      rows
  in
  List.iter2
    (fun row sim ->
      match sim with
      | Some (sim_varan, sim_gig, sim_5ms) ->
        Table.add_row t
          (row.bench :: row.reported
          @ [ Table.fmt_pct sim_varan; Table.fmt_pct sim_gig; Table.fmt_pct sim_5ms ])
      | None -> Table.add_row t ((row.bench :: row.reported) @ [ "-"; "-"; "-" ]))
    rows sims;
  Table.add_separator t;
  let spec =
    Pool.map ?domains spec_overheads
      [
        Runner.cfg_remon Classification.Socket_rw_level; Runner.cfg_ghumvee ();
      ]
  in
  let spec_remon, spec_ghumvee =
    match spec with [ a; b ] -> (a, b) | _ -> assert false
  in
  let si g = Table.fmt_pct (g -. 1.) in
  Table.add_row t
    [ "SPEC CPU2006"; "-"; "-"; "14.2%"; "17.6%"; "3.1%"; "-"; "-"; si spec_remon;
      si spec_ghumvee ^ " (CP)" ];
  Table.print t;
  print_endline
    "\nNote: each MVEE was evaluated on its authors' own testbed; the Tachyon/Mx\n\
     columns list their localhost/remote scenarios. The \"sim\" columns are this\n\
     reproduction's measurements under equivalent latency settings.\n"
