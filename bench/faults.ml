(* Resilience extension (beyond the paper): availability under random
   fault injection, per backend and recovery policy.

   For each fault rate we scatter a deterministic random plan over the
   replica group and score availability as

     (master iterations completed / total)
       x (fraction of the master's lifetime with full replication)

   so a killed group loses the rest of the run and a quarantined group
   pays for the time it ran without a cross-checking partner. Kill-group
   is the paper's posture: any replica fault takes the whole group down.
   Quarantine keeps the master serving but stays degraded; respawn
   closes the window once the journal follower catches up. Native has no
   redundancy at all, so only an outright crash hurts it — and nothing
   detects the corruptions. *)

open Remon_core
open Remon_sim
open Remon_util

let rates = [ 0.0; 0.001; 0.003; 0.01 ]
let horizon = 700
let iters = 300

let backends =
  [
    ("native", Mvee.Native, 1);
    ("ghumvee", Mvee.Ghumvee_only, 2);
    ("varan", Mvee.Varan, 2);
    ("remon", Mvee.Remon, 2);
  ]

let policies =
  [
    ("kill-group", Mvee.Kill_group);
    ("quarantine", Mvee.Quarantine);
    ("respawn:2", Mvee.Respawn { max_respawns = 2; backoff_ns = Vtime.us 200 });
  ]

(* Light compute with a monitored open/close rendezvous every other
   iteration: enough lockstep traffic that a respawned follower can
   outpace the master's monitoring overhead and catch up. *)
let body progress (env : Mvee.env) =
  for i = 1 to iters do
    ignore (Remon_kernel.Sched.syscall Remon_kernel.Syscall.Gettimeofday);
    Remon_kernel.Sched.compute (Vtime.us 2);
    if i mod 2 = 0 then begin
      match
        Remon_kernel.Sched.syscall
          (Remon_kernel.Syscall.Open
             ("/tmp/avail.txt", { Remon_kernel.Syscall.o_rdwr with create = true }))
      with
      | Remon_kernel.Syscall.Ok_int fd ->
        ignore (Remon_kernel.Sched.syscall (Remon_kernel.Syscall.Close fd))
      | _ -> ()
    end;
    if env.Mvee.variant = 0 then progress := i
  done

let config backend nreplicas ~seed ~faults ~on_failure =
  {
    Mvee.default_config with
    Mvee.backend;
    nreplicas;
    policy = Policy.spatial Classification.Socket_rw_level;
    seed;
    faults;
    on_failure;
    (* injected stalls should resolve on the bench's ms scale, not the
       10s production default *)
    watchdog_ns = Vtime.ms 5;
  }

let availability cfg =
  let progress = ref 0 in
  let o = Mvee.run_program cfg ~name:"avail" ~body:(body progress) in
  let frac = float_of_int !progress /. float_of_int iters in
  let healthy =
    1.0
    -. (Vtime.to_float_ns o.Mvee.degraded_ns /. Vtime.to_float_ns o.Mvee.duration)
  in
  frac *. max 0.0 healthy

let run ?(quick = false) ?domains () =
  print_endline "=== Resilience: availability vs fault rate (extension) ===\n";
  let trials = if quick then 2 else 5 in
  let rates = if quick then [ 0.0; 0.003; 0.01 ] else rates in
  (* a job = all trials of one (policy, rate, backend) cell; seeds depend
     only on the trial number, so cells are independent of execution order *)
  let jobs =
    List.concat_map
      (fun (_, policy) ->
        List.concat_map
          (fun rate ->
            List.map
              (fun (_, backend, nreplicas) -> (policy, rate, backend, nreplicas))
              backends)
          rates)
      policies
  in
  let cells =
    Pool.map ?domains
      (fun (policy, rate, backend, nreplicas) ->
        let total = ref 0.0 in
        for trial = 1 to trials do
          let seed = 1000 + (137 * trial) in
          let faults =
            Fault.random_plan ~seed:(seed + 7) ~rate ~horizon ~nreplicas
          in
          total :=
            !total
            +. availability (config backend nreplicas ~seed ~faults ~on_failure:policy)
        done;
        Printf.sprintf "%.1f%%" (100.0 *. !total /. float_of_int trials))
      jobs
  in
  let cells = ref cells in
  let next_cell () =
    match !cells with
    | c :: rest ->
      cells := rest;
      c
    | [] -> assert false
  in
  List.iter
    (fun (pname, _) ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf "mean availability over %d trials, policy %s"
               trials pname)
          ~header:("fault rate" :: List.map (fun (n, _, _) -> n) backends)
          ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) backends)
          ()
      in
      List.iter
        (fun rate ->
          let row = List.map (fun _ -> next_cell ()) backends in
          Table.add_row t (Printf.sprintf "%.3f" rate :: row))
        rates;
      Table.print t;
      print_newline ())
    policies;
  print_endline
    "Reading: under kill-group any injected replica fault costs the rest of\n\
     the run (the paper's attack-centric posture). Quarantine keeps the\n\
     master serving but runs un-cross-checked from the fault onward; respawn\n\
     replays the journal into a fresh replica and recovers full replication\n\
     once the follower catches up. Native only loses work to outright\n\
     crashes — and detects none of the corruptions the monitors would."
