(* Table 1: the spatial exemption levels, regenerated from the
   classification code itself. *)

open Remon_kernel
open Remon_core
open Remon_util

let wrap width names =
  let rec go line acc = function
    | [] -> List.rev (if line = "" then acc else line :: acc)
    | name :: rest ->
      let candidate = if line = "" then name else line ^ ", " ^ name in
      if String.length candidate > width then go name (line :: acc) rest
      else go candidate acc rest
  in
  go "" [] names

let run ?domains () =
  print_endline "=== Table 1: monitor levels for spatial system call exemption ===";
  print_endline "(regenerated from Classification.classify)\n";
  (* no simulation here, but the per-level blocks are still rendered as an
     explicit job list: each job returns its text, printed in level order *)
  let blocks =
    Pool.map ?domains
      (fun (lvl, uncond, cond) ->
        let buf = Buffer.create 256 in
        Buffer.add_string buf (Classification.level_to_string lvl);
        Buffer.add_char buf '\n';
        let show label calls =
          if calls <> [] then begin
            Buffer.add_string buf (Printf.sprintf "  %s:\n" label);
            List.iter
              (fun line -> Buffer.add_string buf (Printf.sprintf "    %s\n" line))
              (wrap 68 (List.map Sysno.to_string calls))
          end
        in
        show "unconditionally allowed" uncond;
        show "conditionally allowed (file type / op type)" cond;
        Buffer.contents buf)
      (Classification.table1 ())
  in
  List.iter
    (fun block ->
      print_string block;
      print_newline ())
    blocks;
  let monitored =
    List.filter
      (fun no -> Classification.classify no = Classification.Always_monitored)
      Sysno.all
  in
  Printf.printf "Always monitored by GHUMVEE (%d calls):\n" (List.length monitored);
  List.iter
    (fun line -> Printf.printf "  %s\n" line)
    (wrap 70 (List.map Sysno.to_string monitored));
  Printf.printf "\nIP-MON fast path covers %d of %d supported system calls.\n\n"
    (List.length Classification.ipmon_supported)
    (List.length Sysno.all);
  ignore (Table.create ~title:"" ~header:[ "" ] ())
