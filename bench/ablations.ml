(* Ablations of ReMon's design choices (DESIGN.md section 4):

   a) context-switch cost sensitivity — the CP/IP gap tracks the cost of a
      ptrace round trip, the paper's core motivation;
   b) per-record condition variables vs. a single one (Section 3.7);
   c) spin-wait vs. futex slave waits (Section 3.7);
   d) IK-B token verification cost (Section 3.1);
   e) temporal-exemption probability sweep (Section 3.4). *)

open Remon_core
open Remon_sim
open Remon_util
open Remon_workloads

let dense_profile =
  Profile.make ~name:"ablation.dense" ~threads:4 ~density_hz:120_000. ~calls:3000
    ~mix:Profile.mix_file_rw ~description:"syscall-dense ablation workload" ()

let run ?domains () =
  print_endline "=== Ablations ===\n";

  (* a) context-switch cost sensitivity *)
  let t =
    Table.create
      ~title:"(a) context-switch cost: normalized time of a dense workload"
      ~header:[ "machine"; "ptrace stop"; "GHUMVEE (CP)"; "ReMon (hybrid)"; "CP/hybrid gap" ]
      ()
  in
  let machines =
    [ ("paper testbed", Cost_model.default); ("cheap switches", Cost_model.cheap_switches) ]
  in
  let pairs =
    Pool.map ?domains
      (fun (_, cost) ->
        let cp = Runner.normalized_time ~cost dense_profile (Runner.cfg_ghumvee ()) in
        let hy =
          Runner.normalized_time ~cost dense_profile
            (Runner.cfg_remon Classification.Nonsocket_rw_level)
        in
        (cp, hy))
      machines
  in
  List.iter2
    (fun (label, cost) (cp, hy) ->
      Table.add_row t
        [
          label;
          Printf.sprintf "%.1f us" (float_of_int (Cost_model.ptrace_stop_ns cost) /. 1e3);
          Table.fmt_ratio cp;
          Table.fmt_ratio hy;
          Printf.sprintf "%.1fx" ((cp -. 1.) /. Float.max 0.001 (hy -. 1.));
        ])
    machines pairs;
  Table.print t;
  print_newline ();

  (* b) per-record condvars; c) spin vs futex *)
  let t =
    Table.create ~title:"(b,c) slave wakeup strategy (Section 3.7)"
      ~header:[ "strategy"; "normalized time"; "notes" ]
      ()
  in
  let strategies =
    [
      ( Context.remon_mode,
        "per-record condvar + auto spin (ReMon)",
        "wakes skipped when nobody waits" );
      ( { Context.remon_mode with Context.per_call_condvar = false },
        "single condition variable",
        "every publish pays a FUTEX_WAKE" );
      ( { Context.remon_mode with Context.slave_wait = Context.Wait_futex_only },
        "condvar always",
        "futex wait even for non-blocking calls" );
      ( { Context.remon_mode with Context.slave_wait = Context.Wait_spin_only },
        "spin always",
        "lowest latency; burns slave CPU (not modeled)" );
    ]
  in
  let times =
    Pool.map ?domains
      (fun (mode, _, _) ->
        let config =
          {
            (Runner.cfg_remon Classification.Nonsocket_rw_level) with
            Mvee.mode_override = Some mode;
          }
        in
        Runner.normalized_time dense_profile config)
      strategies
  in
  List.iter2
    (fun (_, label, notes) v -> Table.add_row t [ label; Table.fmt_ratio v; notes ])
    strategies times;
  Table.print t;
  print_newline ();

  (* d) token cost *)
  let under = Runner.run_profile dense_profile (Runner.cfg_remon Classification.Nonsocket_rw_level) in
  let o = under.Runner.outcome in
  Printf.printf
    "(d) IK-B authorization: %d tokens granted, %d rejected; verification cost\n\
    \    %d ns/call = %s total (%.4f%% of the run) - security is essentially free.\n\n"
    o.Mvee.tokens_granted o.Mvee.tokens_rejected
    Cost_model.default.Cost_model.token_check_ns
    (Table.fmt_ns
       (o.Mvee.tokens_granted * Cost_model.default.Cost_model.token_check_ns))
    (100.
    *. float_of_int (o.Mvee.tokens_granted * Cost_model.default.Cost_model.token_check_ns)
    /. Vtime.to_float_ns under.Runner.duration);

  (* f) VARAN run-ahead window sweep: the paper notes it is "unclear what
     the impact on performance would be" of shrinking VARAN's buffer; we
     measure it, together with the residual attack window. *)
  let t =
    Table.create
      ~title:"(f) bounded run-ahead for the in-process baseline (VARAN)"
      ~header:[ "window (records)"; "normalized time"; "unchecked calls at detection" ]
      ()
  in
  let windows = [ Some 1; Some 4; Some 16; Some 64; None ] in
  let window_rows =
    Pool.map ?domains
      (fun window ->
        let mode = { Context.varan_mode with Context.runahead_window = window } in
        let config = { (Runner.cfg_varan ()) with Mvee.mode_override = Some mode } in
        let v = Runner.normalized_time dense_profile config in
        let attack = Attack.divergent_syscall ~config () in
        (v, attack.Attack.notes))
      windows
  in
  List.iter2
    (fun window (v, notes) ->
      Table.add_row t
        [
          (match window with None -> "unbounded" | Some w -> string_of_int w);
          Table.fmt_ratio v;
          notes;
        ])
    windows window_rows;
  Table.print t;
  print_newline ();

  (* e) temporal exemption sweep *)
  let t =
    Table.create
      ~title:
        "(e) temporal exemption at BASE_LEVEL (probabilistic, per Section 3.4)"
      ~header:[ "exempt probability"; "normalized time"; "ipmon calls"; "monitored" ]
      ()
  in
  let probs = [ 0.0; 0.25; 0.5; 0.75; 0.95 ] in
  let prob_rows =
    Pool.map ?domains
      (fun prob ->
        let policy =
          if prob <= 0. then Policy.spatial Classification.Base_level
          else
            Policy.with_temporal
              (Policy.spatial Classification.Base_level)
              { Policy.default_temporal with Policy.exempt_probability = prob }
        in
        let config = { (Runner.cfg_remon Classification.Base_level) with Mvee.policy } in
        let native = Runner.run_profile dense_profile (Runner.cfg_native ()) in
        let under = Runner.run_profile dense_profile config in
        let v =
          Vtime.to_float_ns under.Runner.duration
          /. Vtime.to_float_ns native.Runner.duration
        in
        ( v,
          under.Runner.outcome.Mvee.ipmon_fastpath,
          under.Runner.outcome.Mvee.monitored ))
      probs
  in
  List.iter2
    (fun prob (v, fastpath, monitored) ->
      Table.add_row t
        [
          Printf.sprintf "%.0f%%" (prob *. 100.);
          Table.fmt_ratio v;
          string_of_int fastpath;
          string_of_int monitored;
        ])
    probs prob_rows;
  Table.print t;
  print_newline ()
