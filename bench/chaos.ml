(* Fleet chaos sweep: availability and tail latency vs. injected fault
   rate, with the recovery ladder (intra-instance respawn + fleet respawn)
   on and off, plus a rolling-restart exercise under live traffic.

   Each cell is one self-contained simulation (fleet + LB + open-loop
   clients in a single kernel), fanned out via Pool.map and printed in
   order: stdout is byte-identical for any --domains value. *)

open Remon_sim
open Remon_util
open Remon_workloads
module Fchaos = Remon_fleet.Chaos
module Lb = Remon_fleet.Lb

let rates ~quick =
  if quick then [ 0.0; 0.004 ] else [ 0.0; 0.001; 0.002; 0.004; 0.008 ]

let ms v = Vtime.to_float_ns v /. 1e6

let availability_row cfg (r : Fchaos.report) =
  [
    Printf.sprintf "%.4f" cfg.Fchaos.fault_rate;
    (if cfg.Fchaos.recovery then "on" else "off");
    Printf.sprintf "%.3f" r.Fchaos.availability;
    Printf.sprintf "%d/%d" r.Fchaos.succeeded r.Fchaos.attempted;
    string_of_int r.Fchaos.connect_retries;
    string_of_int r.Fchaos.failovers;
    string_of_int r.Fchaos.ejections;
    string_of_int r.Fchaos.readmissions;
    string_of_int r.Fchaos.instance_failures;
    string_of_int r.Fchaos.fleet_respawns;
    string_of_int r.Fchaos.quarantines;
    string_of_int r.Fchaos.respawns;
    Printf.sprintf "%.3f" (ms r.Fchaos.client_latency.Latency.p50);
    Printf.sprintf "%.3f" (ms r.Fchaos.client_latency.Latency.p99);
  ]

let header =
  [
    "rate"; "rec"; "avail"; "ok"; "retry"; "fo"; "eject"; "readmit"; "down";
    "fresp"; "q"; "r"; "p50 ms"; "p99 ms";
  ]

let aligns = List.map (fun _ -> Table.Right) header

let run ?(quick = false) ?domains () =
  print_endline "=== Fleet chaos: availability vs. injected fault rate ===\n";
  (* REMON_RECORD_DIR: dump a replayable recording for every instance
     generation that ends with a divergence verdict (reproducer artifacts;
     feed them to `remon replay`) *)
  let d =
    {
      Fchaos.default_cfg with
      Fchaos.record_dir = Sys.getenv_opt "REMON_RECORD_DIR";
    }
  in
  Printf.printf
    "%d instances x %d replicas (%s), %d requests over %d open-loop workers,\n\
     LB %s probes every %s\n\n"
    d.Fchaos.instances d.Fchaos.nreplicas "remon" d.Fchaos.requests
    d.Fchaos.workers "round-robin" "2 ms";
  let cells =
    List.concat_map
      (fun rate ->
        List.map
          (fun recovery -> { d with Fchaos.fault_rate = rate; recovery })
          [ true; false ])
      (rates ~quick)
  in
  let reports = Pool.map ?domains Fchaos.run_scenario cells in
  let t =
    Table.create ~title:"availability vs. fault rate (recovery on/off)"
      ~header ~aligns ()
  in
  List.iter2 (fun cfg r -> Table.add_row t (availability_row cfg r)) cells
    reports;
  Table.print t;
  print_newline ();
  (match
     List.concat_map (fun (r : Fchaos.report) -> r.Fchaos.recordings) reports
   with
  | [] -> ()
  | paths ->
    Printf.printf "reproducer recordings (replay with `remon replay FILE`):\n";
    List.iter (fun p -> Printf.printf "  %s\n" p) paths;
    print_newline ());
  (* rolling restart under live traffic, no injected faults *)
  let rolling_cells =
    List.concat_map
      (fun policy ->
        List.map
          (fun mu ->
            { d with Fchaos.rolling = Some mu; policy; fault_rate = 0.0 })
          (if quick then [ 1 ] else [ 1; 2 ]))
      [ Lb.Round_robin; Lb.Least_conns ]
  in
  let rolling_reports = Pool.map ?domains Fchaos.run_scenario rolling_cells in
  let rt =
    Table.create ~title:"rolling restart under live traffic"
      ~header:
        [
          "policy"; "max-unavail"; "avail"; "ok"; "retry"; "fo"; "drops";
          "p50 ms"; "p99 ms";
        ]
      ~aligns:
        [
          Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right;
        ]
      ()
  in
  List.iter2
    (fun cfg (r : Fchaos.report) ->
      Table.add_row rt
        [
          (match cfg.Fchaos.policy with
          | Lb.Round_robin -> "round-robin"
          | Lb.Least_conns -> "least-conns");
          (match cfg.Fchaos.rolling with Some n -> string_of_int n | None -> "-");
          Printf.sprintf "%.3f" r.Fchaos.availability;
          Printf.sprintf "%d/%d" r.Fchaos.succeeded r.Fchaos.attempted;
          string_of_int r.Fchaos.connect_retries;
          string_of_int r.Fchaos.failovers;
          string_of_int r.Fchaos.lb_errors;
          Printf.sprintf "%.3f" (ms r.Fchaos.client_latency.Latency.p50);
          Printf.sprintf "%.3f" (ms r.Fchaos.client_latency.Latency.p99);
        ])
    rolling_cells rolling_reports;
  Table.print rt;
  print_newline ();
  print_endline
    "With recovery on, ejected instances respawn behind the balancer and\n\
     availability stays near 1.0 as the fault rate rises; with recovery off\n\
     every master crash permanently removes an instance, so availability\n\
     falls with the fault rate. Rolling restarts drain connections first:\n\
     clients see backoff latency, not errors.\n"
