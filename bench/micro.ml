(* Host-time microbenchmarks of the MVEE's hot primitives, via bechamel. *)

open Bechamel
open Toolkit
open Remon_kernel
open Remon_core

let test_rb_roundtrip =
  let rb = Replication_buffer.create ~size_bytes:(1 lsl 24) ~nreplicas:2 in
  Test.make ~name:"rb append+publish+consume"
    (Staged.stage (fun () ->
         let e =
           Replication_buffer.master_append rb ~rank:0
             ~call:(Syscall.Read (4, 512))
             ~expect_block:false ~forwarded:false
         in
         ignore (Replication_buffer.master_publish rb e (Syscall.Ok_data "x"));
         ignore (Replication_buffer.slave_lookup rb ~rank:0 ~variant:1);
         Replication_buffer.slave_advance rb ~rank:0 ~variant:1;
         if rb.Replication_buffer.used_bytes > (1 lsl 23) then
           Replication_buffer.reset rb))

let test_classification =
  Test.make ~name:"policy lookup (required_level)"
    (Staged.stage (fun () ->
         ignore (Classification.required_level Sysno.Read ~on_socket:false);
         ignore (Classification.required_level Sysno.Sendto ~on_socket:true);
         ignore (Classification.required_level Sysno.Mmap ~on_socket:false)))

let test_deep_compare =
  let a = Syscall.Writev (7, [ String.make 256 'a'; String.make 256 'b' ]) in
  let b = Syscall.Writev (7, [ String.make 256 'a'; String.make 256 'b' ]) in
  Test.make ~name:"deep argument comparison"
    (Staged.stage (fun () -> ignore (Callinfo.equal_normalized a b)))

let test_token =
  let rng = Remon_util.Rng.make 99 in
  Test.make ~name:"token generate+compare"
    (Staged.stage (fun () ->
         let tok = Remon_util.Rng.int64 rng in
         ignore (Int64.equal tok 0L)))

let test_event_queue =
  let q = Remon_sim.Event_queue.create () in
  let i = ref 0 in
  Test.make ~name:"event queue add+pop"
    (Staged.stage (fun () ->
         incr i;
         ignore (Remon_sim.Event_queue.add q ~time:!i ());
         ignore (Remon_sim.Event_queue.pop q)))

(* Same add+pop cost, but against a heap holding a million live events —
   pins the hot path the million-connection herd leans on (geometric pool
   refill, no per-entry allocation once warm). A thunk, not a top-level
   binding: the million-event prefill must not sit live under every other
   experiment's heap measurements. *)
let test_event_queue_1m () =
  let q = Remon_sim.Event_queue.create () in
  let n = 1_000_000 in
  for j = 1 to n do
    Remon_sim.Event_queue.add_ q ~time:j ()
  done;
  let i = ref n in
  Test.make ~name:"event queue add+pop at 1M live"
    (Staged.stage (fun () ->
         incr i;
         Remon_sim.Event_queue.add_ q ~time:!i ();
         ignore (Remon_sim.Event_queue.pop q)))

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"remon" tests) in
  Analyze.all ols Instance.monotonic_clock raw

let run () =
  print_endline "=== Microbenchmarks (host time, via bechamel) ===\n";
  let results =
    benchmark
      [ test_rb_roundtrip; test_classification; test_deep_compare; test_token;
        test_event_queue; test_event_queue_1m () ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) -> Printf.printf "  %-40s %8.1f ns/iter\n" name ns)
    (List.sort compare !rows);
  print_newline ()
