(* Tests for lib/obs: exact Chrome trace-event bytes, metric aggregation,
   and the trace-as-oracle determinism contract — identical seeds must
   yield byte-identical exports across consecutive runs, across domain
   counts, and with or without faults. *)

open Remon_core
open Remon_obs
open Remon_util
open Remon_workloads

(* ------------------------------------------------------------------ *)
(* Trace: exact export bytes *)

let test_export_empty () =
  let t = Trace.create () in
  Alcotest.(check string) "empty trace"
    "{\"traceEvents\":[\n\n],\n\"displayTimeUnit\":\"ns\"}\n"
    (Trace.export_string t)

let test_export_single_instant () =
  let t = Trace.create () in
  Trace.instant t ~ts:1500 ~cat:"sys" ~name:"entry" ~pid:3 ~tid:7 [];
  Alcotest.(check string) "ns rendered as us.nnn, instant gets scope"
    "{\"traceEvents\":[\n\
     {\"name\":\"entry\",\"cat\":\"sys\",\"ph\":\"i\",\"ts\":1.500,\"pid\":3,\"tid\":7,\"s\":\"t\"}\n\
     ],\n\"displayTimeUnit\":\"ns\"}\n"
    (Trace.export_string t)

let test_export_span_pair_and_args () =
  let t = Trace.create () in
  Trace.span_begin t ~ts:0 ~cat:"c" ~name:"s" ~pid:1 ~tid:1
    [ ("n", Trace.Int 42); ("big", Trace.I64 5_000_000_000L); ("w", Trace.Str "x") ];
  Trace.span_end t ~ts:2_000 ~cat:"c" ~name:"s" ~pid:1 ~tid:1 [];
  Alcotest.(check string) "B/E phases, args object, comma-newline join"
    ("{\"traceEvents\":[\n"
   ^ "{\"name\":\"s\",\"cat\":\"c\",\"ph\":\"B\",\"ts\":0.000,\"pid\":1,\"tid\":1,"
   ^ "\"args\":{\"n\":42,\"big\":5000000000,\"w\":\"x\"}},\n"
   ^ "{\"name\":\"s\",\"cat\":\"c\",\"ph\":\"E\",\"ts\":2.000,\"pid\":1,\"tid\":1}\n"
   ^ "],\n\"displayTimeUnit\":\"ns\"}\n")
    (Trace.export_string t)

let test_export_escaping () =
  let t = Trace.create () in
  Trace.instant t ~ts:0 ~cat:"c" ~name:"q\"b\\s\nnl\tt\x01u" ~pid:0 ~tid:0 [];
  let s = Trace.export_string t in
  let expected = "\"name\":\"q\\\"b\\\\s\\nnl\\tt\\u0001u\"" in
  let contains hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "quotes, backslash, newline, tab, control escaped" true
    (contains s expected)

let test_export_metrics_block () =
  let t = Trace.create () in
  Alcotest.(check string) "metrics rendered as a string map"
    ("{\"traceEvents\":[\n\n],\n\"displayTimeUnit\":\"ns\",\n"
   ^ "\"metrics\":{\n  \"a\":\"1\",\n  \"b\":\"2\"\n}}\n")
    (Trace.export_string ~metrics:[ ("a", "1"); ("b", "2") ] t)

let test_export_is_json () =
  (* structural sanity independent of the byte-level assertions *)
  let t = Trace.create () in
  Trace.instant t ~ts:123_456 ~cat:"c" ~name:"n" ~pid:0 ~tid:0
    [ ("s", Trace.Str "v\"w") ];
  let s = Trace.export_string ~metrics:[ ("k", "v") ] t in
  (* count balanced braces as a cheap well-formedness proxy *)
  let depth = ref 0 and min_depth = ref 0 and in_str = ref false in
  String.iteri
    (fun i c ->
      if !in_str then begin
        if c = '"' && s.[i - 1] <> '\\' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' -> incr depth
        | '}' ->
          decr depth;
          if !depth < !min_depth then min_depth := !depth
        | _ -> ())
    s;
  Alcotest.(check int) "braces balance" 0 !depth;
  Alcotest.(check int) "never negative" 0 !min_depth

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_buckets () =
  List.iter
    (fun (ns, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket(%dns)" ns) b
        (Metrics.bucket_of_ns ns))
    [ (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3);
      (1024, 10); (1025, 10); (max_int, 61) ]

let test_metrics_counters_and_hwm () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.add m "a" 4;
  Metrics.hwm m "q" 7;
  Metrics.hwm m "q" 3;
  (* lower value must not regress the mark *)
  Alcotest.(check int) "counter accumulates" 5 (Metrics.counter_value m "a");
  Alcotest.(check int) "missing counter is zero" 0 (Metrics.counter_value m "zz");
  Alcotest.(check (list (pair string string))) "summary sorted, hwm suffixed"
    [ ("a", "5"); ("q.hwm", "7") ]
    (Metrics.summary m)

let test_metrics_histogram_summary () =
  let m = Metrics.create () in
  Metrics.observe_ns m "lat" 5;
  (* bucket 2 *)
  Metrics.observe_ns m "lat" 11;
  (* bucket 3 *)
  Metrics.observe_ns m "lat" 11;
  Alcotest.(check int) "hist count" 3 (Metrics.hist_count m "lat");
  Alcotest.(check (list (pair string string))) "derived rows, key-sorted"
    [ ("lat.count", "3"); ("lat.max_ns", "11"); ("lat.mean_ns", "9");
      ("lat.p99_le_ns", "16") (* p99 lands in bucket 3 -> upper bound 2^4 *) ]
    (Metrics.summary m)

(* ------------------------------------------------------------------ *)
(* Determinism oracle: real runs *)

let tiny_profile =
  Profile.make ~name:"obs.tiny" ~threads:2 ~density_hz:20_000.0 ~calls:40
    ~mix:
      [ (0.3, Profile.Op_gettime); (0.25, Profile.Op_sock_rw 64);
        (0.25, Profile.Op_write_file 128); (0.1, Profile.Op_open_close);
        (0.1, Profile.Op_lock) ]
    ~description:"tiny mixed profile for trace-oracle tests" ()

let traced_profile_run cfg =
  let obs = Obs.create () in
  let r = Runner.run_profile ~obs tiny_profile cfg in
  (Obs.export_string obs, r)

(* fig3-style: spatially-exempted ReMon run, two consecutive in-process
   runs must export byte-identical traces *)
let test_trace_repeat_identical () =
  let cfg = Runner.cfg_remon ~nreplicas:3 ~seed:11 Classification.Socket_rw_level in
  let s1, r1 = traced_profile_run cfg in
  let s2, r2 = traced_profile_run cfg in
  Alcotest.(check bool) "some events recorded" true (String.length s1 > 200);
  Alcotest.(check string) "byte-identical across consecutive runs" s1 s2;
  Alcotest.(check (list (pair string string))) "metrics summaries agree"
    r1.Runner.outcome.Mvee.metrics r2.Runner.outcome.Mvee.metrics

let test_trace_backends_differ () =
  (* sanity: the oracle is not vacuous — different backends trace
     different event streams for the same seed *)
  let s_remon, _ =
    traced_profile_run (Runner.cfg_remon ~nreplicas:2 ~seed:11 Classification.Socket_rw_level)
  in
  let s_ghumvee, _ = traced_profile_run (Runner.cfg_ghumvee ~nreplicas:2 ~seed:11 ()) in
  Alcotest.(check bool) "backends yield distinct traces" false
    (String.equal s_remon s_ghumvee)

(* faults-style: a crash + delay plan; run twice (check_verdict off since
   the crash produces a verdict by design) *)
let test_trace_faulted_repeat_identical () =
  let run () =
    (* parse the plan afresh per run: specs carry a mutable [fired] flag *)
    let faults =
      match Fault.of_string "delay@5:0=200us,crash@25:1" with
      | Ok p -> p
      | Error e -> Alcotest.fail e
    in
    let cfg =
      { (Runner.cfg_remon ~nreplicas:2 ~seed:77 Classification.Nonsocket_rw_level) with
        Mvee.faults }
    in
    let obs = Obs.create () in
    let r =
      Runner.run_body ~check_verdict:false ~obs cfg ~name:"obs.faulted"
        ~body:(fun _env ->
          for i = 0 to 59 do
            Api.compute_us 3;
            if i mod 2 = 0 then Api.gettimeofday () |> ignore
            else
              Api.pwrite
                (Api.open_file
                   ~flags:
                     { Remon_kernel.Syscall.o_rdwr with
                       Remon_kernel.Syscall.create = true }
                   "/t")
                "x" i
              |> ignore
          done)
    in
    (Obs.export_string obs, r.Runner.outcome)
  in
  let s1, o1 = run () in
  let s2, o2 = run () in
  Alcotest.(check bool) "fault actually fired" true (o1.Mvee.faults_injected > 0);
  Alcotest.(check bool) "crash detected" true (o1.Mvee.verdict <> None);
  Alcotest.(check bool) "verdicts agree" true (o1.Mvee.verdict = o2.Mvee.verdict);
  Alcotest.(check string) "faulted trace byte-identical" s1 s2

(* parallel fan-out: each job runs the same traced profile under its own
   kernel and obs; exports must not depend on the domain count *)
let test_trace_domains_identical () =
  let job seed =
    let cfg = Runner.cfg_remon ~nreplicas:2 ~seed Classification.Socket_rw_level in
    fst (traced_profile_run cfg)
  in
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let sequential = Pool.map ~domains:1 job seeds in
  let parallel = Pool.map ~domains:4 job seeds in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d identical at domains 1 vs 4" (List.nth seeds i))
        a b)
    (List.combine sequential parallel)

(* enabling tracing must not perturb the simulation *)
let test_tracing_does_not_perturb () =
  let cfg = Runner.cfg_remon ~nreplicas:3 ~seed:42 Classification.Socket_rw_level in
  let obs = Obs.create () in
  let traced = Runner.run_profile ~obs tiny_profile cfg in
  let plain = Runner.run_profile tiny_profile cfg in
  Alcotest.(check (list (pair string string))) "no metrics when disabled" []
    plain.Runner.outcome.Mvee.metrics;
  Alcotest.(check bool) "identical outcome modulo metrics" true
    ({ traced.Runner.outcome with Mvee.metrics = [] } = plain.Runner.outcome);
  Alcotest.(check int) "identical virtual duration" traced.Runner.duration
    plain.Runner.duration;
  Alcotest.(check bool) "metrics populated when enabled" true
    (List.length traced.Runner.outcome.Mvee.metrics > 0)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "trace-format",
        [
          tc "empty export" test_export_empty;
          tc "single instant" test_export_single_instant;
          tc "span pair + args" test_export_span_pair_and_args;
          tc "escaping" test_export_escaping;
          tc "metrics block" test_export_metrics_block;
          tc "balanced json" test_export_is_json;
        ] );
      ( "metrics",
        [
          tc "log2 buckets" test_metrics_buckets;
          tc "counters + hwm" test_metrics_counters_and_hwm;
          tc "histogram summary" test_metrics_histogram_summary;
        ] );
      ( "determinism-oracle",
        [
          tc "repeat run byte-identical" test_trace_repeat_identical;
          tc "backends differ" test_trace_backends_differ;
          tc "faulted run byte-identical" test_trace_faulted_repeat_identical;
          tc "domains 1 vs 4 identical" test_trace_domains_identical;
          tc "tracing does not perturb" test_tracing_does_not_perturb;
        ] );
    ]
