(* Second kernel substrate suite: timers, vectored I/O, fd lifecycle
   corners, socket corners, VFS operations, VM/ASLR properties. *)

open Remon_kernel
open Remon_sim

let sys = Sched.syscall
let vnow = Sched.vnow

let expect_int label r =
  match (r : Syscall.result) with
  | Syscall.Ok_int n -> n
  | other ->
    Alcotest.failf "%s: expected Ok_int, got %s" label
      (Format.asprintf "%a" Syscall.pp_result other)

let expect_data label r =
  match (r : Syscall.result) with
  | Syscall.Ok_data s -> s
  | other ->
    Alcotest.failf "%s: expected Ok_data, got %s" label
      (Format.asprintf "%a" Syscall.pp_result other)

let expect_err label e r =
  match (r : Syscall.result) with
  | Syscall.Error e' when e = e' -> ()
  | other ->
    Alcotest.failf "%s: expected %s, got %s" label (Errno.to_string e)
      (Format.asprintf "%a" Syscall.pp_result other)

let run_in_kernel ?(seed = 11) body =
  let k = Kernel.create ~seed () in
  let result = ref None in
  ignore (Kernel.spawn_process k ~name:"t2" ~vm_seed:3 (fun () -> result := Some (body k)));
  Kernel.run k;
  match !result with Some v -> v | None -> Alcotest.fail "body did not complete"

(* ---- timers ---- *)

let test_timerfd () =
  run_in_kernel (fun _ ->
      let tfd = expect_int "timerfd_create" (sys Syscall.Timerfd_create) in
      let t0 = vnow () in
      ignore
        (expect_int "settime"
           (sys
              (Syscall.Timerfd_settime
                 (tfd, { Syscall.value_ns = Vtime.ms 2; interval_ns = Vtime.ms 1 }))));
      (match sys (Syscall.Read (tfd, 8)) with
      | Syscall.Ok_int64 n -> Alcotest.(check bool) "at least one expiration" true (Int64.compare n 1L >= 0)
      | r -> Alcotest.failf "timerfd read: %s" (Format.asprintf "%a" Syscall.pp_result r));
      Alcotest.(check bool) "blocked until first expiry" true
        Vtime.(vnow () - t0 >= Vtime.ms 2);
      (* interval keeps firing *)
      match sys (Syscall.Read (tfd, 8)) with
      | Syscall.Ok_int64 _ -> ()
      | r -> Alcotest.failf "second read: %s" (Format.asprintf "%a" Syscall.pp_result r))

let test_timerfd_gettime () =
  run_in_kernel (fun _ ->
      let tfd = expect_int "timerfd_create" (sys Syscall.Timerfd_create) in
      (match sys (Syscall.Timerfd_gettime tfd) with
      | Syscall.Ok_itimer s ->
        Alcotest.(check bool) "disarmed" true (s.Syscall.value_ns = 0)
      | _ -> Alcotest.fail "gettime");
      ignore
        (sys
           (Syscall.Timerfd_settime
              (tfd, { Syscall.value_ns = Vtime.s 5; interval_ns = 0 })));
      match sys (Syscall.Timerfd_gettime tfd) with
      | Syscall.Ok_itimer s ->
        Alcotest.(check bool) "armed" true (s.Syscall.value_ns > 0)
      | _ -> Alcotest.fail "gettime 2")

let test_setitimer_interval () =
  run_in_kernel (fun _ ->
      ignore (sys (Syscall.Rt_sigaction (Sigdefs.sigalrm, Syscall.Sig_handler 3)));
      ignore
        (sys
           (Syscall.Setitimer { Syscall.value_ns = Vtime.ms 1; interval_ns = Vtime.ms 1 }));
      (* two ticks interrupt two sleeps *)
      let hits = ref 0 in
      for _ = 1 to 2 do
        (match sys (Syscall.Nanosleep (Vtime.ms 10)) with
        | Syscall.Error Errno.EINTR -> incr hits
        | _ -> ());
        Queue.clear (Sched.self ()).Proc.pending_delivery
      done;
      (* disarm *)
      ignore (sys (Syscall.Setitimer { Syscall.value_ns = 0; interval_ns = 0 }));
      Alcotest.(check int) "both sleeps interrupted" 2 !hits)

(* ---- vectored and positional I/O ---- *)

let test_writev_readv () =
  run_in_kernel (fun _ ->
      let fd = expect_int "open" (sys (Syscall.Open ("/tmp/v.bin", { Syscall.o_rdwr with create = true }))) in
      let n = expect_int "writev" (sys (Syscall.Writev (fd, [ "ab"; "cd"; "ef" ]))) in
      Alcotest.(check int) "writev total" 6 n;
      ignore (sys (Syscall.Lseek (fd, 0, Syscall.Seek_set)));
      let d = expect_data "readv" (sys (Syscall.Readv (fd, [ 2; 4 ]))) in
      Alcotest.(check string) "readv gathers" "abcdef" d)

let test_pwritev_preadv () =
  run_in_kernel (fun _ ->
      let fd = expect_int "open" (sys (Syscall.Open ("/tmp/pv.bin", { Syscall.o_rdwr with create = true }))) in
      ignore (expect_int "pwritev" (sys (Syscall.Pwritev (fd, [ "xx"; "yy" ], 3))));
      let d = expect_data "preadv" (sys (Syscall.Preadv (fd, [ 4 ], 3))) in
      Alcotest.(check string) "positional vectored" "xxyy" d;
      Alcotest.(check int) "offset untouched" 0
        (expect_int "lseek" (sys (Syscall.Lseek (fd, 0, Syscall.Seek_cur)))))

let test_sendfile () =
  run_in_kernel (fun _ ->
      let src = expect_int "open" (sys (Syscall.Open ("/tmp/sf.txt", { Syscall.o_rdwr with create = true }))) in
      ignore (sys (Syscall.Pwrite64 (src, "sendfile-payload", 0)));
      ignore (sys (Syscall.Lseek (src, 0, Syscall.Seek_set)));
      match sys (Syscall.Socketpair (Syscall.Af_unix, Syscall.Sock_stream)) with
      | Syscall.Ok_pair (a, b) ->
        let n = expect_int "sendfile" (sys (Syscall.Sendfile { out_fd = a; in_fd = src; count = 16 })) in
        Alcotest.(check int) "bytes moved" 16 n;
        let d = expect_data "recv" (sys (Syscall.Recvfrom (b, 32))) in
        Alcotest.(check string) "payload arrived" "sendfile-payload" d
      | _ -> Alcotest.fail "socketpair")

let test_recvmmsg_sendmmsg () =
  run_in_kernel (fun _ ->
      match sys (Syscall.Socketpair (Syscall.Af_unix, Syscall.Sock_stream)) with
      | Syscall.Ok_pair (a, b) ->
        ignore (expect_int "sendmmsg" (sys (Syscall.Sendmmsg (a, [ "111"; "222" ]))));
        let d = expect_data "recvmmsg" (sys (Syscall.Recvmmsg (b, 2, 3))) in
        Alcotest.(check string) "batched data" "111222" d
      | _ -> Alcotest.fail "socketpair")

(* ---- fd lifecycle corners ---- *)

let test_dup2_replaces () =
  run_in_kernel (fun _ ->
      let fd1 = expect_int "open1" (sys (Syscall.Creat "/tmp/a.txt")) in
      let fd2 = expect_int "open2" (sys (Syscall.Creat "/tmp/b.txt")) in
      ignore (expect_int "dup2" (sys (Syscall.Dup2 (fd1, fd2))));
      (* fd2 now refers to a.txt *)
      ignore (expect_int "write" (sys (Syscall.Write (fd2, "via-dup2"))));
      ignore (sys (Syscall.Close fd1));
      ignore (sys (Syscall.Close fd2));
      let fd = expect_int "reopen" (sys (Syscall.Open ("/tmp/a.txt", Syscall.o_rdonly))) in
      let d = expect_data "read" (sys (Syscall.Read (fd, 64))) in
      Alcotest.(check string) "write went to a.txt" "via-dup2" d)

let test_dup2_same_fd () =
  run_in_kernel (fun _ ->
      let fd = expect_int "open" (sys (Syscall.Creat "/tmp/same.txt")) in
      Alcotest.(check int) "dup2(fd,fd) is identity" fd
        (expect_int "dup2" (sys (Syscall.Dup2 (fd, fd))));
      ignore (expect_int "still usable" (sys (Syscall.Write (fd, "x")))))

let test_fcntl_dupfd () =
  run_in_kernel (fun _ ->
      let fd = expect_int "open" (sys (Syscall.Creat "/tmp/dupfd.txt")) in
      let fd2 = expect_int "f_dupfd" (sys (Syscall.Fcntl (fd, Syscall.F_dupfd 0))) in
      Alcotest.(check bool) "new fd" true (fd2 <> fd);
      ignore (expect_int "write via dup" (sys (Syscall.Write (fd2, "y")))))

let test_lowest_free_fd () =
  run_in_kernel (fun _ ->
      let a = expect_int "a" (sys (Syscall.Creat "/tmp/f1")) in
      let b = expect_int "b" (sys (Syscall.Creat "/tmp/f2")) in
      Alcotest.(check int) "sequential" (a + 1) b;
      ignore (sys (Syscall.Close a));
      let c = expect_int "c" (sys (Syscall.Creat "/tmp/f3")) in
      Alcotest.(check int) "lowest free fd reused" a c)

(* ---- VFS operations ---- *)

let test_rename_unlink () =
  run_in_kernel (fun k ->
      ignore (expect_int "creat" (sys (Syscall.Creat "/tmp/old.txt")));
      ignore (expect_int "rename" (sys (Syscall.Rename ("/tmp/old.txt", "/tmp/new.txt"))));
      expect_err "old gone" Errno.ENOENT (sys (Syscall.Stat "/tmp/old.txt"));
      ignore (expect_int "unlink" (sys (Syscall.Unlink "/tmp/new.txt")));
      expect_err "new gone" Errno.ENOENT (sys (Syscall.Stat "/tmp/new.txt"));
      ignore k)

let test_rmdir_nonempty () =
  run_in_kernel (fun _ ->
      ignore (expect_int "mkdir" (sys (Syscall.Mkdir "/tmp/dir")));
      ignore (expect_int "creat" (sys (Syscall.Creat "/tmp/dir/f")));
      expect_err "not empty" Errno.ENOTEMPTY (sys (Syscall.Rmdir "/tmp/dir"));
      ignore (sys (Syscall.Unlink "/tmp/dir/f"));
      ignore (expect_int "rmdir ok" (sys (Syscall.Rmdir "/tmp/dir"))))

let test_truncate () =
  run_in_kernel (fun _ ->
      let fd = expect_int "open" (sys (Syscall.Open ("/tmp/tr.bin", { Syscall.o_rdwr with create = true }))) in
      ignore (sys (Syscall.Write (fd, "0123456789")));
      ignore (expect_int "ftruncate shrink" (sys (Syscall.Ftruncate (fd, 4))));
      (match sys (Syscall.Fstat fd) with
      | Syscall.Ok_stat s -> Alcotest.(check int) "shrunk" 4 s.Syscall.st_size
      | _ -> Alcotest.fail "fstat");
      ignore (expect_int "truncate grow" (sys (Syscall.Truncate ("/tmp/tr.bin", 8))));
      match sys (Syscall.Stat "/tmp/tr.bin") with
      | Syscall.Ok_stat s -> Alcotest.(check int) "zero-extended" 8 s.Syscall.st_size
      | _ -> Alcotest.fail "stat")

let test_symlink_readlink () =
  let k = Kernel.create () in
  ignore (Vfs.create_file (Kernel.vfs k) "/tmp/target.txt" |> Result.get_ok);
  ignore (Vfs.symlink (Kernel.vfs k) ~target:"/tmp/target.txt" ~path:"/tmp/link" |> Result.get_ok);
  let got = ref "" in
  ignore
    (Kernel.spawn_process k ~name:"sym" ~vm_seed:4 (fun () ->
         (match sys (Syscall.Readlink "/tmp/link") with
         | Syscall.Ok_str s -> got := s
         | _ -> ());
         (* stat follows the link *)
         match sys (Syscall.Stat "/tmp/link") with
         | Syscall.Ok_stat _ -> ()
         | _ -> got := "stat-failed"));
  Kernel.run k;
  Alcotest.(check string) "readlink returns target" "/tmp/target.txt" !got

let test_xattr () =
  let k = Kernel.create () in
  let node = Vfs.create_file (Kernel.vfs k) "/tmp/x.txt" |> Result.get_ok in
  node.Vfs.xattrs <- [ ("user.tag", "blue") ];
  let got = ref "" in
  ignore
    (Kernel.spawn_process k ~name:"xattr" ~vm_seed:5 (fun () ->
         (match sys (Syscall.Getxattr ("/tmp/x.txt", "user.tag")) with
         | Syscall.Ok_str v -> got := v
         | _ -> ());
         match sys (Syscall.Getxattr ("/tmp/x.txt", "user.nope")) with
         | Syscall.Error Errno.ENOENT -> ()
         | _ -> got := "missing-should-fail"));
  Kernel.run k;
  Alcotest.(check string) "xattr value" "blue" !got

(* ---- socket corners ---- *)

let test_nonblock_accept () =
  run_in_kernel (fun _ ->
      let sfd = expect_int "socket" (sys (Syscall.Socket (Syscall.Af_inet, Syscall.Sock_stream))) in
      ignore (expect_int "bind" (sys (Syscall.Bind (sfd, 7100))));
      ignore (expect_int "listen" (sys (Syscall.Listen (sfd, 8))));
      ignore (expect_int "fcntl" (sys (Syscall.Fcntl (sfd, Syscall.F_setfl { nonblock = true }))));
      expect_err "empty queue" Errno.EAGAIN (sys (Syscall.Accept sfd)))

let test_getsockname_peername () =
  run_in_kernel (fun _ ->
      let self = Sched.self () in
      self.Proc.proc.Proc.entry_table <-
        [|
          (fun () ->
            let sfd = expect_int "socket" (sys (Syscall.Socket (Syscall.Af_inet, Syscall.Sock_stream))) in
            ignore (sys (Syscall.Bind (sfd, 7200)));
            ignore (sys (Syscall.Listen (sfd, 8)));
            match sys (Syscall.Accept sfd) with
            | Syscall.Ok_accept { conn_fd; _ } ->
              ignore (sys (Syscall.Read (conn_fd, 1)))
            | _ -> ());
        |];
      ignore (expect_int "clone" (sys (Syscall.Clone 0)));
      Sched.compute (Vtime.ms 1);
      let cfd = expect_int "socket" (sys (Syscall.Socket (Syscall.Af_inet, Syscall.Sock_stream))) in
      ignore (expect_int "connect" (sys (Syscall.Connect (cfd, 7200))));
      Alcotest.(check int) "peer port" 7200
        (expect_int "getpeername" (sys (Syscall.Getpeername cfd)));
      Alcotest.(check bool) "local ephemeral port" true
        (expect_int "getsockname" (sys (Syscall.Getsockname cfd)) >= 32768);
      ignore (sys (Syscall.Sendto (cfd, "!"))))

let test_shutdown_wr_gives_peer_eof () =
  run_in_kernel (fun _ ->
      match sys (Syscall.Socketpair (Syscall.Af_unix, Syscall.Sock_stream)) with
      | Syscall.Ok_pair (a, b) ->
        ignore (sys (Syscall.Sendto (a, "last")));
        ignore (expect_int "shutdown" (sys (Syscall.Shutdown (a, Syscall.Shut_wr))));
        let d1 = expect_data "drain" (sys (Syscall.Recvfrom (b, 16))) in
        Alcotest.(check string) "buffered data first" "last" d1;
        let d2 = expect_data "eof" (sys (Syscall.Recvfrom (b, 16))) in
        Alcotest.(check string) "then EOF" "" d2
      | _ -> Alcotest.fail "socketpair")

let test_write_to_closed_socket () =
  run_in_kernel (fun _ ->
      ignore (sys (Syscall.Rt_sigaction (Sigdefs.sigpipe, Syscall.Sig_ignore)));
      match sys (Syscall.Socketpair (Syscall.Af_unix, Syscall.Sock_stream)) with
      | Syscall.Ok_pair (a, b) ->
        ignore (sys (Syscall.Close b));
        expect_err "epipe" Errno.EPIPE (sys (Syscall.Sendto (a, "x")))
      | _ -> Alcotest.fail "socketpair")

(* ---- poll with timeout ---- *)

let test_poll_timeout () =
  run_in_kernel (fun _ ->
      match sys Syscall.Pipe with
      | Syscall.Ok_pair (rfd, _) -> (
        let t0 = vnow () in
        match
          sys
            (Syscall.Poll
               { fds = [ (rfd, Syscall.ev_in) ]; timeout_ns = Some (Vtime.ms 3) })
        with
        | Syscall.Ok_poll [] ->
          Alcotest.(check bool) "waited for the timeout" true
            Vtime.(vnow () - t0 >= Vtime.ms 3)
        | _ -> Alcotest.fail "expected empty poll")
      | _ -> Alcotest.fail "pipe")

(* ---- VM / ASLR properties ---- *)

let prop_aslr_layouts_distinct =
  QCheck2.Test.make ~name:"different seeds give different mmap placements" ~count:50
    QCheck2.Gen.(pair small_int small_int)
    (fun (s1, s2) ->
      QCheck2.assume (s1 <> s2);
      let place seed =
        let vm = Vm.create ~rng:(Remon_util.Rng.make seed) in
        match
          Vm.map vm ~len:4096
            ~prot:{ Syscall.pr = true; pw = true; px = false }
            ~backing:Vm.Anon ~tag:"probe"
        with
        | Ok r -> r.Vm.start
        | Error _ -> 0L
      in
      not (Int64.equal (place s1) (place s2)))

let prop_vm_no_overlap =
  QCheck2.Test.make ~name:"mapped regions never overlap" ~count:50
    QCheck2.Gen.(list_size (int_range 2 20) (int_range 1 64))
    (fun sizes ->
      let vm = Vm.create ~rng:(Remon_util.Rng.make 7) in
      List.iter
        (fun pages ->
          ignore
            (Vm.map vm ~len:(pages * 4096)
               ~prot:{ Syscall.pr = true; pw = true; px = false }
               ~backing:Vm.Anon ~tag:"r"))
        sizes;
      let rec check = function
        | [] | [ _ ] -> true
        | (a : Vm.region) :: (b :: _ as rest) ->
          Int64.compare (Int64.add a.Vm.start (Int64.of_int a.Vm.len)) b.Vm.start <= 0
          && check rest
      in
      check vm.Vm.regions)

let prop_futex_key_shared_segments =
  QCheck2.Test.make ~name:"futex keys: shm words shared, private words not"
    ~count:30 QCheck2.Gen.(int_range 0 1000)
    (fun offset_words ->
      let offset = offset_words * 8 in
      let seg =
        match
          Shm.get (Shm.create ()) ~key:9 ~size:65536 ~create:true
        with
        | Ok s -> s
        | Error _ -> assert false
      in
      let mk seed =
        let vm = Vm.create ~rng:(Remon_util.Rng.make seed) in
        match
          Vm.map vm ~len:65536
            ~prot:{ Syscall.pr = true; pw = true; px = false }
            ~backing:(Vm.Shm_seg seg) ~tag:"shm"
        with
        | Ok r -> (vm, r.Vm.start)
        | Error _ -> assert false
      in
      let vm1, base1 = mk 1 and vm2, base2 = mk 2 in
      if offset >= 65536 then true
      else begin
        let k1 =
          Vm.futex_key vm1 ~space_id:100 (Int64.add base1 (Int64.of_int offset))
        in
        let k2 =
          Vm.futex_key vm2 ~space_id:200 (Int64.add base2 (Int64.of_int offset))
        in
        (* same physical word in both spaces -> same key; private words in
           different spaces -> different keys *)
        k1 = k2
        && Vm.futex_key vm1 ~space_id:100 0x1234L
           <> Vm.futex_key vm2 ~space_id:200 0x1234L
      end)

let tc = Alcotest.test_case

let () =
  Alcotest.run "kernel2"
    [
      ( "timers",
        [
          tc "timerfd blocking read + interval" `Quick test_timerfd;
          tc "timerfd_gettime" `Quick test_timerfd_gettime;
          tc "setitimer interval" `Quick test_setitimer_interval;
        ] );
      ( "vectored-io",
        [
          tc "writev/readv" `Quick test_writev_readv;
          tc "pwritev/preadv" `Quick test_pwritev_preadv;
          tc "sendfile" `Quick test_sendfile;
          tc "sendmmsg/recvmmsg" `Quick test_recvmmsg_sendmmsg;
        ] );
      ( "fd-lifecycle",
        [
          tc "dup2 replaces target" `Quick test_dup2_replaces;
          tc "dup2 same fd" `Quick test_dup2_same_fd;
          tc "fcntl F_DUPFD" `Quick test_fcntl_dupfd;
          tc "lowest free fd" `Quick test_lowest_free_fd;
        ] );
      ( "vfs",
        [
          tc "rename + unlink" `Quick test_rename_unlink;
          tc "rmdir nonempty" `Quick test_rmdir_nonempty;
          tc "truncate" `Quick test_truncate;
          tc "symlink/readlink" `Quick test_symlink_readlink;
          tc "xattr" `Quick test_xattr;
        ] );
      ( "sockets",
        [
          tc "nonblocking accept" `Quick test_nonblock_accept;
          tc "getsockname/getpeername" `Quick test_getsockname_peername;
          tc "shutdown(WR) -> peer EOF" `Quick test_shutdown_wr_gives_peer_eof;
          tc "EPIPE on closed peer" `Quick test_write_to_closed_socket;
          tc "poll timeout" `Quick test_poll_timeout;
        ] );
      ( "vm",
        [
          QCheck_alcotest.to_alcotest prop_aslr_layouts_distinct;
          QCheck_alcotest.to_alcotest prop_vm_no_overlap;
          QCheck_alcotest.to_alcotest prop_futex_key_shared_segments;
        ] );
    ]
