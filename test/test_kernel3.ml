(* Tests for the extended syscall surface: eventfd, flock, getrandom,
   hard/symbolic links, pipe2/dup3, pselect/ppoll, limits, statfs — plus
   the MVEE-level behaviours they enable (consistent entropy across
   replicas). *)

open Remon_kernel
open Remon_core
open Remon_sim

let sys = Sched.syscall

let expect_int label r =
  match (r : Syscall.result) with
  | Syscall.Ok_int n -> n
  | other ->
    Alcotest.failf "%s: expected Ok_int, got %s" label
      (Format.asprintf "%a" Syscall.pp_result other)

let expect_pair label r =
  match (r : Syscall.result) with
  | Syscall.Ok_pair (a, b) -> (a, b)
  | _ -> Alcotest.failf "%s: expected pair" label

let expect_data label r =
  match (r : Syscall.result) with
  | Syscall.Ok_data s -> s
  | other ->
    Alcotest.failf "%s: expected Ok_data, got %s" label
      (Format.asprintf "%a" Syscall.pp_result other)

let run_in_kernel body =
  let k = Kernel.create () in
  let done_ = ref false in
  ignore
    (Kernel.spawn_process k ~name:"t3" ~vm_seed:3 (fun () ->
         body k;
         done_ := true));
  Kernel.run k;
  if not !done_ then Alcotest.fail "body did not complete"

(* ---- eventfd ---- *)

let test_eventfd_basic () =
  run_in_kernel (fun _ ->
      let efd = expect_int "eventfd" (sys (Syscall.Eventfd 3)) in
      (match sys (Syscall.Read (efd, 8)) with
      | Syscall.Ok_int64 3L -> ()
      | r -> Alcotest.failf "read: %s" (Format.asprintf "%a" Syscall.pp_result r));
      (* counter reset: next read blocks; use nonblocking to observe *)
      ignore (sys (Syscall.Fcntl (efd, Syscall.F_setfl { nonblock = true })));
      match sys (Syscall.Read (efd, 8)) with
      | Syscall.Error Errno.EAGAIN -> ()
      | _ -> Alcotest.fail "expected EAGAIN after reset")

let test_eventfd_signal_wakeup () =
  run_in_kernel (fun _ ->
      let efd = expect_int "eventfd" (sys (Syscall.Eventfd 0)) in
      let self = Sched.self () in
      self.Proc.proc.Proc.entry_table <-
        [|
          (fun () ->
            Sched.compute (Vtime.ms 1);
            ignore (sys (Syscall.Write (efd, String.make 5 'e'))));
        |];
      ignore (expect_int "clone" (sys (Syscall.Clone 0)));
      let t0 = Sched.vnow () in
      (match sys (Syscall.Read (efd, 8)) with
      | Syscall.Ok_int64 5L -> ()
      | r -> Alcotest.failf "read: %s" (Format.asprintf "%a" Syscall.pp_result r));
      Alcotest.(check bool) "blocked until signalled" true
        Vtime.(Sched.vnow () - t0 >= Vtime.ms 1))

let test_eventfd_epoll () =
  run_in_kernel (fun _ ->
      let efd = expect_int "eventfd" (sys (Syscall.Eventfd 0)) in
      let epfd = expect_int "epoll_create" (sys Syscall.Epoll_create) in
      (match
         sys
           (Syscall.Epoll_ctl
              { epfd; op = Syscall.Epoll_add; fd = efd; events = Syscall.ev_in;
                user_data = 9L })
       with
      | Syscall.Ok_int 0 -> ()
      | _ -> Alcotest.fail "epoll_ctl");
      (match sys (Syscall.Epoll_wait { epfd; max_events = 4; timeout_ns = Some 0 }) with
      | Syscall.Ok_epoll [] -> ()
      | _ -> Alcotest.fail "not ready yet");
      ignore (sys (Syscall.Write (efd, "e")));
      match sys (Syscall.Epoll_wait { epfd; max_events = 4; timeout_ns = Some 0 }) with
      | Syscall.Ok_epoll [ (9L, _) ] -> ()
      | _ -> Alcotest.fail "eventfd should be epoll-readable")

(* ---- flock ---- *)

let test_flock_exclusion () =
  run_in_kernel (fun _ ->
      let fd = expect_int "creat" (sys (Syscall.Creat "/tmp/lk.txt")) in
      ignore (expect_int "lock" (sys (Syscall.Flock (fd, Syscall.Lock_ex))));
      (* re-acquiring our own lock succeeds *)
      ignore (expect_int "relock" (sys (Syscall.Flock (fd, Syscall.Lock_ex))));
      ignore (expect_int "unlock" (sys (Syscall.Flock (fd, Syscall.Lock_un)))))

let test_flock_blocks_other_process () =
  let k = Kernel.create () in
  let release_time = ref Vtime.zero in
  let acquire_time = ref Vtime.zero in
  let _p1 =
    Kernel.spawn_process k ~name:"holder" ~vm_seed:1 (fun () ->
        let fd = expect_int "creat" (sys (Syscall.Creat "/tmp/contended")) in
        ignore (sys (Syscall.Flock (fd, Syscall.Lock_ex)));
        Sched.compute (Vtime.ms 3);
        release_time := Sched.vnow ();
        ignore (sys (Syscall.Flock (fd, Syscall.Lock_un))))
  in
  let _p2 =
    Kernel.spawn_process k ~name:"waiter" ~vm_seed:2 (fun () ->
        Sched.compute (Vtime.ms 1);
        let fd = expect_int "open" (sys (Syscall.Open ("/tmp/contended", Syscall.o_rdwr))) in
        ignore (sys (Syscall.Flock (fd, Syscall.Lock_ex)));
        acquire_time := Sched.vnow ())
  in
  Kernel.run k;
  Alcotest.(check bool) "waiter blocked until the holder released" true
    Vtime.(!acquire_time >= !release_time && !release_time > Vtime.ms 2)

(* ---- getrandom ---- *)

let test_getrandom_length () =
  run_in_kernel (fun _ ->
      let d = expect_data "getrandom" (sys (Syscall.Getrandom 32)) in
      Alcotest.(check int) "requested bytes" 32 (String.length d);
      let d2 = expect_data "getrandom2" (sys (Syscall.Getrandom 32)) in
      Alcotest.(check bool) "successive draws differ" true (d <> d2))

(* The flagship consistency test: under an MVEE, every replica must receive
   the *same* random bytes, or diversified replicas would immediately
   diverge on anything keyed by entropy. *)
let test_getrandom_replicated backend () =
  let kernel = Kernel.create () in
  let drawn = Array.make 2 "" in
  let body (env : Mvee.env) =
    drawn.(env.Mvee.variant) <- expect_data "getrandom" (sys (Syscall.Getrandom 64))
  in
  let config = { Mvee.default_config with Mvee.backend } in
  let h = Mvee.launch kernel config ~name:"entropy" ~body in
  Kernel.run kernel;
  let o = Mvee.finish h in
  Alcotest.(check bool) "clean" true (o.Mvee.verdict = None);
  Alcotest.(check int) "64 bytes" 64 (String.length drawn.(0));
  Alcotest.(check string) "replicas share one entropy stream" drawn.(0) drawn.(1)

(* ---- links ---- *)

let test_hard_link () =
  run_in_kernel (fun _ ->
      let fd = expect_int "creat" (sys (Syscall.Creat "/tmp/orig.txt")) in
      ignore (sys (Syscall.Write (fd, "linked-content")));
      ignore (sys (Syscall.Close fd));
      ignore (expect_int "link" (sys (Syscall.Link ("/tmp/orig.txt", "/tmp/alias.txt"))));
      let fd2 = expect_int "open alias" (sys (Syscall.Open ("/tmp/alias.txt", Syscall.o_rdonly))) in
      Alcotest.(check string) "same inode content" "linked-content"
        (expect_data "read" (sys (Syscall.Read (fd2, 64))));
      (* writing through one name is visible through the other *)
      ignore (sys (Syscall.Close fd2));
      ignore (expect_int "unlink orig" (sys (Syscall.Unlink "/tmp/orig.txt")));
      (match sys (Syscall.Stat "/tmp/alias.txt") with
      | Syscall.Ok_stat s -> Alcotest.(check int) "alias survives" 14 s.Syscall.st_size
      | _ -> Alcotest.fail "alias should survive unlink of the original"))

let test_link_eexist () =
  run_in_kernel (fun _ ->
      ignore (expect_int "creat a" (sys (Syscall.Creat "/tmp/la")));
      ignore (expect_int "creat b" (sys (Syscall.Creat "/tmp/lb")));
      match sys (Syscall.Link ("/tmp/la", "/tmp/lb")) with
      | Syscall.Error Errno.EEXIST -> ()
      | _ -> Alcotest.fail "expected EEXIST")

let test_symlink_syscall () =
  run_in_kernel (fun _ ->
      ignore (expect_int "creat" (sys (Syscall.Creat "/tmp/tgt")));
      ignore (expect_int "symlink" (sys (Syscall.Symlink ("/tmp/tgt", "/tmp/sl"))));
      match sys (Syscall.Readlink "/tmp/sl") with
      | Syscall.Ok_str "/tmp/tgt" -> ()
      | _ -> Alcotest.fail "readlink")

(* ---- pipe2 / dup3 ---- *)

let test_pipe2_nonblock () =
  run_in_kernel (fun _ ->
      let rfd, _wfd = expect_pair "pipe2" (sys (Syscall.Pipe2 { nonblock = true })) in
      match sys (Syscall.Read (rfd, 4)) with
      | Syscall.Error Errno.EAGAIN -> ()
      | _ -> Alcotest.fail "pipe2 O_NONBLOCK should give EAGAIN")

let test_dup3 () =
  run_in_kernel (fun _ ->
      let fd = expect_int "creat" (sys (Syscall.Creat "/tmp/d3")) in
      let spare = expect_int "creat2" (sys (Syscall.Creat "/tmp/d3b")) in
      ignore (expect_int "dup3" (sys (Syscall.Dup3 (fd, spare))));
      ignore (expect_int "write" (sys (Syscall.Write (spare, "x")))))

(* ---- pselect6 / ppoll ---- *)

let test_pselect_ppoll () =
  run_in_kernel (fun _ ->
      let rfd, wfd = expect_pair "pipe" (sys Syscall.Pipe) in
      ignore (sys (Syscall.Write (wfd, "!")));
      (match
         sys (Syscall.Pselect6 { readfds = [ rfd ]; writefds = []; timeout_ns = Some 0 })
       with
      | Syscall.Ok_poll [ (fd, _) ] -> Alcotest.(check int) "pselect ready" rfd fd
      | _ -> Alcotest.fail "pselect6");
      match
        sys (Syscall.Ppoll { fds = [ (rfd, Syscall.ev_in) ]; timeout_ns = Some 0 })
      with
      | Syscall.Ok_poll [ (fd, _) ] -> Alcotest.(check int) "ppoll ready" rfd fd
      | _ -> Alcotest.fail "ppoll")

(* ---- misc ---- *)

let test_limits_affinity_ids () =
  run_in_kernel (fun _ ->
      (match sys (Syscall.Getrlimit 7) with
      | Syscall.Ok_int64 _ -> ()
      | _ -> Alcotest.fail "getrlimit");
      ignore (expect_int "setrlimit" (sys (Syscall.Setrlimit (7, 1024))));
      ignore (expect_int "prlimit" (sys (Syscall.Prlimit64 (7, 2048))));
      Alcotest.(check bool) "affinity mask" true
        (expect_int "sched_getaffinity" (sys Syscall.Sched_getaffinity) > 0);
      ignore (expect_int "sched_setaffinity" (sys (Syscall.Sched_setaffinity 0x3)));
      Alcotest.(check int) "umask returns previous" 0o022
        (expect_int "umask" (sys (Syscall.Umask 0o077)));
      let pid = expect_int "getpid" (sys Syscall.Getpid) in
      Alcotest.(check int) "getpgid" pid (expect_int "getpgid" (sys Syscall.Getpgid));
      Alcotest.(check int) "setsid" pid (expect_int "setsid" (sys Syscall.Setsid)))

let test_statfs_chmod () =
  run_in_kernel (fun _ ->
      ignore (expect_int "creat" (sys (Syscall.Creat "/tmp/meta")));
      (match sys (Syscall.Statfs "/tmp") with
      | Syscall.Ok_int64 free -> Alcotest.(check bool) "free space" true (Int64.compare free 0L > 0)
      | _ -> Alcotest.fail "statfs");
      ignore (expect_int "chmod" (sys (Syscall.Chmod ("/tmp/meta", 0o600))));
      ignore (expect_int "chown" (sys (Syscall.Chown ("/tmp/meta", 0, 0))));
      ignore (expect_int "utimensat" (sys (Syscall.Utimensat "/tmp/meta")));
      match sys (Syscall.Chmod ("/tmp/nope", 0o600)) with
      | Syscall.Error Errno.ENOENT -> ()
      | _ -> Alcotest.fail "chmod on missing file")

(* classification sanity for the additions *)
let test_new_classification () =
  Alcotest.(check bool) "getrandom exempt at BASE" true
    (Classification.classify Sysno.Getrandom
    = Classification.Unconditional Classification.Base_level);
  Alcotest.(check bool) "flock at NONSOCKET_RW" true
    (Classification.classify Sysno.Flock
    = Classification.Unconditional Classification.Nonsocket_rw_level);
  Alcotest.(check bool) "eventfd always monitored" true
    (Classification.classify Sysno.Eventfd = Classification.Always_monitored);
  Alcotest.(check bool) "link always monitored" true
    (Classification.classify Sysno.Link = Classification.Always_monitored);
  Alcotest.(check bool) "ppoll escalates on sockets" true
    (Classification.required_level Sysno.Ppoll ~on_socket:true
    = Some Classification.Socket_ro_level);
  Alcotest.(check bool) "syscall surface grew past 150" true
    (List.length Sysno.all >= 150)

(* The trace facility records one line per syscall with its route. *)
let test_trace_facility () =
  let kernel = Kernel.create () in
  Kernel.enable_tracing kernel;
  let body (_ : Mvee.env) =
    ignore (sys Syscall.Gettimeofday);
    ignore (sys Syscall.Getpid)
  in
  let h =
    Mvee.launch kernel
      { Mvee.default_config with Mvee.backend = Mvee.Remon }
      ~name:"traced" ~body
  in
  Kernel.run kernel;
  ignore (Mvee.finish h);
  let trace = Kernel.trace kernel in
  let contains needle hay =
    let n = String.length needle and hl = String.length hay in
    let rec scan i = i + n <= hl && (String.sub hay i n = needle || scan (i + 1)) in
    n > 0 && scan 0
  in
  Alcotest.(check bool) "trace recorded" true (List.length trace > 4);
  Alcotest.(check bool) "ipmon route visible" true
    (List.exists (contains "gettimeofday -> ipmon") trace);
  Alcotest.(check bool) "monitored route visible" true
    (List.exists (contains "-> monitored") trace)

let tc = Alcotest.test_case

let () =
  Alcotest.run "kernel3"
    [
      ( "eventfd",
        [
          tc "counter semantics" `Quick test_eventfd_basic;
          tc "blocking wakeup" `Quick test_eventfd_signal_wakeup;
          tc "epoll integration" `Quick test_eventfd_epoll;
        ] );
      ( "flock",
        [
          tc "exclusion + reentrancy" `Quick test_flock_exclusion;
          tc "blocks across processes" `Quick test_flock_blocks_other_process;
        ] );
      ( "getrandom",
        [
          tc "lengths + freshness" `Quick test_getrandom_length;
          tc "replicated under remon" `Quick (test_getrandom_replicated Mvee.Remon);
          tc "replicated under ghumvee" `Quick
            (test_getrandom_replicated Mvee.Ghumvee_only);
          tc "replicated under varan" `Quick (test_getrandom_replicated Mvee.Varan);
        ] );
      ( "links",
        [
          tc "hard link shares inode" `Quick test_hard_link;
          tc "link EEXIST" `Quick test_link_eexist;
          tc "symlink syscall" `Quick test_symlink_syscall;
        ] );
      ( "fd-factories",
        [
          tc "pipe2 nonblock" `Quick test_pipe2_nonblock;
          tc "dup3" `Quick test_dup3;
        ] );
      ( "poll-variants",
        [ tc "pselect6 + ppoll" `Quick test_pselect_ppoll ] );
      ( "misc",
        [
          tc "limits/affinity/ids" `Quick test_limits_affinity_ids;
          tc "statfs/chmod/chown" `Quick test_statfs_chmod;
          tc "classification of additions" `Quick test_new_classification;
          tc "trace facility" `Quick test_trace_facility;
        ] );
    ]
