(* Deployable record/replay: record -> offline replay identity on every
   backend, replay-under-a-different-backend verdict agreement, divergence
   bisection (binary search must match a linear scan exactly), and the
   double-respawn recovery regression. *)

open Remon_kernel
open Remon_core
open Remon_sim

let sys = Sched.syscall

let all_backends = [ Mvee.Native; Mvee.Ghumvee_only; Mvee.Varan; Mvee.Remon ]

let config ?(backend = Mvee.Remon) ?(faults = [])
    ?(on_failure = Mvee.Kill_group) () =
  {
    Mvee.default_config with
    backend;
    policy = Policy.spatial Classification.Socket_rw_level;
    faults;
    on_failure;
    record = true;
  }

(* Mixed stream: exempt fast-path calls plus a monitored open/write/close
   rendezvous every few iterations, so recordings carry both kinds. *)
let mixed_body ?(iters = 60) () (_env : Mvee.env) =
  for i = 1 to iters do
    ignore (sys Syscall.Gettimeofday);
    Sched.compute (Vtime.us 40);
    if i mod 5 = 0 then begin
      match
        sys
          (Syscall.Open
             ("/tmp/replay.txt", { Syscall.o_rdwr with create = true }))
      with
      | Syscall.Ok_int fd ->
        ignore (sys (Syscall.Write (fd, "x")));
        ignore (sys (Syscall.Close fd))
      | _ -> ()
    end
  done

let record cfg body =
  let o = Mvee.run_program cfg ~name:"rec" ~body in
  match o.Mvee.recording with
  | Some r -> r
  | None -> Alcotest.fail "run captured no recording"

let replay_exn ?backend recorded ~body =
  match Replayer.replay ?backend recorded ~body with
  | Ok rep -> rep
  | Error msg -> Alcotest.failf "replay failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Same-backend replay is byte-identical, on every backend. *)

let test_replay_identity backend () =
  let body = mixed_body () in
  let recorded = record (config ~backend ()) body in
  (* Native is the unmonitored baseline: no replicated stream exists, so
     its recording is the empty stream — identity must hold regardless. *)
  if backend <> Mvee.Native then
    Alcotest.(check bool)
      "recorded something" true
      (Array.length recorded.Recording.events > 0);
  let rep = replay_exn recorded ~body in
  Alcotest.(check bool) "byte-identical" true rep.Replayer.identical;
  Alcotest.(check string) "stream digest"
    (Recording.stream_digest recorded)
    (Recording.stream_digest rep.Replayer.replayed);
  Alcotest.(check bool) "verdict class agrees" true
    rep.Replayer.verdict_class_agrees;
  Alcotest.(check bool) "no divergence" true (rep.Replayer.divergence = None)

(* A violating run replays byte-identically too, verdict included: the
   recording is the reproducer for the very failure it captured. *)
let test_replay_violation_identity () =
  let body = mixed_body () in
  let faults = [ Fault.spec ~kind:Fault.Corrupt_args ~variant:1 ~at:25 ] in
  let recorded = record (config ~backend:Mvee.Ghumvee_only ~faults ()) body in
  Alcotest.(check bool)
    "run has a verdict" true
    (recorded.Recording.verdict <> None);
  let rep = replay_exn recorded ~body in
  Alcotest.(check bool) "byte-identical" true rep.Replayer.identical;
  Alcotest.(check bool) "verdict class agrees" true
    rep.Replayer.verdict_class_agrees

(* ------------------------------------------------------------------ *)
(* Replay under a different backend: verdict classes must agree even
   though the streams legitimately differ. *)

let test_cross_backend target () =
  let body = mixed_body () in
  let recorded = record (config ~backend:Mvee.Remon ()) body in
  let rep = replay_exn ~backend:target recorded ~body in
  Alcotest.(check string)
    "replayed under the requested backend"
    (Mvee.backend_to_string target)
    rep.Replayer.replayed.Recording.header.Recording.backend;
  Alcotest.(check bool) "verdict classes agree" true
    rep.Replayer.verdict_class_agrees;
  if target <> Mvee.Remon then
    Alcotest.(check bool)
      "cross-backend replay never claims byte identity" false
      rep.Replayer.identical

(* ------------------------------------------------------------------ *)
(* Bisection *)

let tamper recording k =
  let events = Array.copy recording.Recording.events in
  events.(k) <-
    (match events.(k) with
    | Recording.Call c -> Recording.Call { c with rank = c.rank + 1 }
    | Recording.Lock l -> Recording.Lock { l with lock_id = l.lock_id + 1 }
    | Recording.Signal s -> Recording.Signal { s with signo = s.signo + 1 }
    | Recording.Flush f -> Recording.Flush { f with count = f.count + 1 });
  { recording with Recording.events }

(* Ground truth by linear scan, for checking the binary search against. *)
let linear_fork (a : Recording.t) (b : Recording.t) =
  let na = Array.length a.Recording.events in
  let nb = Array.length b.Recording.events in
  let n = min na nb in
  let rec go i =
    if i >= n then if na = nb then None else Some n
    else if
      Recording.equal_event a.Recording.events.(i) b.Recording.events.(i)
    then go (i + 1)
    else Some i
  in
  go 0

let test_bisect_pinpoints () =
  let recorded = record (config ()) (mixed_body ()) in
  let n = Array.length recorded.Recording.events in
  Alcotest.(check bool) "enough events to bisect" true (n > 20);
  List.iter
    (fun k ->
      let tampered = tamper recorded k in
      match Replayer.bisect ~recorded ~replayed:tampered () with
      | None -> Alcotest.failf "tamper@%d: no divergence reported" k
      | Some d ->
        Alcotest.(check int)
          (Printf.sprintf "tamper@%d: exact rank" k)
          k d.Divergence.first_rank;
        Alcotest.(check bool) "recorded event rendered" true
          (d.Divergence.recorded_ev <> None);
        Alcotest.(check bool) "replayed event rendered" true
          (d.Divergence.replayed_ev <> None);
        Alcotest.(check bool) "context window non-empty" true
          (d.Divergence.context <> []))
    [ 0; 1; n / 2; n - 1 ];
  Alcotest.(check bool)
    "identical streams: no divergence" true
    (Replayer.bisect ~recorded ~replayed:recorded () = None)

let test_bisect_truncation () =
  let recorded = record (config ()) (mixed_body ()) in
  let n = Array.length recorded.Recording.events in
  let m = n / 3 in
  let truncated =
    {
      recorded with
      Recording.events = Array.sub recorded.Recording.events 0 m;
    }
  in
  match Replayer.bisect ~recorded ~replayed:truncated () with
  | None -> Alcotest.fail "truncated stream: no divergence reported"
  | Some d ->
    Alcotest.(check int) "fork at the truncation point" m
      d.Divergence.first_rank;
    Alcotest.(check int) "totals" n d.Divergence.total_recorded;
    Alcotest.(check int) "totals" m d.Divergence.total_replayed

(* Clean vs fault-injected run of the same configuration: the bisection's
   binary search must land exactly where a linear scan does. *)
let test_bisect_matches_linear_scan () =
  let body = mixed_body () in
  let clean = record (config ~backend:Mvee.Ghumvee_only ()) body in
  let faults = [ Fault.spec ~kind:Fault.Corrupt_args ~variant:1 ~at:25 ] in
  let faulted = record (config ~backend:Mvee.Ghumvee_only ~faults ()) body in
  let expected = linear_fork clean faulted in
  Alcotest.(check bool) "the fault forked the stream" true (expected <> None);
  match (Replayer.bisect ~recorded:clean ~replayed:faulted (), expected) with
  | Some d, Some k ->
    Alcotest.(check int) "binary search = linear scan" k
      d.Divergence.first_rank
  | None, _ -> Alcotest.fail "bisect reported no divergence"
  | _, None -> assert false

(* ------------------------------------------------------------------ *)
(* Double respawn: two injected slave crashes under a Respawn budget of 3
   must both recover (journal catch-up after reset_variant), leaving a
   clean verdict and the twice-respawned slave exiting 0. *)

let test_double_respawn () =
  let faults =
    [
      Fault.spec ~kind:(Fault.Crash Sigdefs.sigsegv) ~variant:1 ~at:12;
      Fault.spec ~kind:(Fault.Crash Sigdefs.sigsegv) ~variant:1 ~at:20;
    ]
  in
  let cfg =
    config
      ~on_failure:(Mvee.Respawn { max_respawns = 3; backoff_ns = Vtime.us 200 })
      ~faults ()
  in
  let o = Mvee.run_program cfg ~name:"respawn2" ~body:(mixed_body ~iters:200 ()) in
  Alcotest.(check int) "both crashes recovered" 2 o.Mvee.respawns;
  Alcotest.(check int) "both faults fired" 2 o.Mvee.faults_injected;
  Alcotest.(check bool) "clean verdict" true (o.Mvee.verdict = None);
  Alcotest.(check bool)
    "twice-respawned slave finished cleanly" true
    (List.mem (1, 0) o.Mvee.exit_codes)

let () =
  Alcotest.run "replay"
    [
      ( "identity",
        List.map
          (fun b ->
            Alcotest.test_case
              (Printf.sprintf "record/replay identical (%s)"
                 (Mvee.backend_to_string b))
              `Quick (test_replay_identity b))
          all_backends
        @ [
            Alcotest.test_case "violating run replays identically" `Quick
              test_replay_violation_identity;
          ] );
      ( "cross-backend",
        List.map
          (fun b ->
            Alcotest.test_case
              (Printf.sprintf "verdict agreement under %s"
                 (Mvee.backend_to_string b))
              `Quick (test_cross_backend b))
          all_backends );
      ( "bisection",
        [
          Alcotest.test_case "pinpoints a tampered record" `Quick
            test_bisect_pinpoints;
          Alcotest.test_case "fork at truncation point" `Quick
            test_bisect_truncation;
          Alcotest.test_case "matches a linear scan on injected faults" `Quick
            test_bisect_matches_linear_scan;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "double respawn recovers twice" `Quick
            test_double_respawn;
        ] );
    ]
