(* Monitor-level behaviours: GHUMVEE signal deferral, maps filtering,
   exit-code divergence, epoll pointer translation under lockstep, the
   rendezvous watchdog, IK-B token mechanics and RB overflow handling
   end-to-end. *)

open Remon_kernel
open Remon_core
open Remon_sim

let sys = Sched.syscall

let remon ?(nreplicas = 2) ?(policy = Policy.spatial Classification.Socket_rw_level) () =
  { Mvee.default_config with Mvee.backend = Mvee.Remon; nreplicas; policy }

let ghumvee () =
  {
    Mvee.default_config with
    Mvee.backend = Mvee.Ghumvee_only;
    policy = Policy.monitor_everything;
  }

(* Asynchronous signals are deferred and injected at a rendezvous: every
   replica must observe the handler at the same syscall index. *)
let test_signal_deferral_consistency backend_cfg () =
  let kernel = Kernel.create () in
  let observed = Array.make 2 (-1) in
  let body (env : Mvee.env) =
    ignore (sys (Syscall.Rt_sigaction (Sigdefs.sigusr1, Syscall.Sig_handler 1)));
    for _ = 1 to 40 do
      ignore (sys Syscall.Gettimeofday);
      Sched.compute (Vtime.us 30);
      let th = Sched.self () in
      if not (Queue.is_empty th.Proc.pending_delivery) then begin
        Queue.clear th.Proc.pending_delivery;
        if observed.(env.Mvee.variant) < 0 then
          observed.(env.Mvee.variant) <- th.Proc.syscall_index
      end
    done
  in
  let h = Mvee.launch kernel backend_cfg ~name:"sigdefer" ~body in
  (* deliver SIGUSR1 to the master while it is mid-run *)
  Kernel.schedule kernel ~time:(Vtime.us 400) (fun () ->
      Kernel.post_signal kernel h.Mvee.group.Context.replicas.(0) Sigdefs.sigusr1);
  Kernel.run kernel;
  let o = Mvee.finish h in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "verdict: %s" (Divergence.to_string v));
  Alcotest.(check bool) "master observed the signal" true (observed.(0) > 0);
  Alcotest.(check int) "all replicas at the same syscall index" observed.(0)
    observed.(1)

(* The master's blocked call is aborted so the deferred signal can be
   delivered (Section 3.8): here the master sits in a blocking read on a
   pipe when the signal arrives. *)
let test_signal_aborts_blocked_call () =
  let kernel = Kernel.create () in
  let saw_handler = Array.make 2 false in
  let body (env : Mvee.env) =
    ignore (sys (Syscall.Rt_sigaction (Sigdefs.sigusr1, Syscall.Sig_handler 9)));
    match sys Syscall.Pipe with
    | Syscall.Ok_pair (rfd, _wfd) ->
      (* blocks forever until the signal interrupts it *)
      let r = sys (Syscall.Read (rfd, 16)) in
      let th = Sched.self () in
      if r = Syscall.Error Errno.EINTR || not (Queue.is_empty th.Proc.pending_delivery)
      then
        saw_handler.(env.Mvee.variant) <- true
    | _ -> Alcotest.fail "pipe"
  in
  let h = Mvee.launch kernel (remon ()) ~name:"sigabort" ~body in
  Kernel.schedule kernel ~time:(Vtime.ms 2) (fun () ->
      Kernel.post_signal kernel h.Mvee.group.Context.replicas.(0) Sigdefs.sigusr1);
  Kernel.run kernel;
  ignore (Mvee.finish h);
  Alcotest.(check bool) "master unblocked and saw the signal" true saw_handler.(0);
  Alcotest.(check bool) "slave saw it too" true saw_handler.(1)

(* Exit-code divergence is a verdict. *)
let test_exit_code_mismatch () =
  let kernel = Kernel.create () in
  let body (env : Mvee.env) =
    ignore (sys Syscall.Getpid);
    ignore (sys (Syscall.Exit_group (if env.Mvee.variant = 0 then 0 else 3)))
  in
  let h = Mvee.launch kernel (ghumvee ()) ~name:"exitdiv" ~body in
  Kernel.run kernel;
  match (Mvee.finish h).Mvee.verdict with
  (* the divergent exit codes are the exit_group arguments, so lockstep
     comparison catches this before either replica actually exits *)
  | Some (Divergence.Exit_mismatch _) | Some (Divergence.Args_mismatch _) -> ()
  | Some v -> Alcotest.failf "wrong verdict: %s" (Divergence.to_string v)
  | None -> Alcotest.fail "exit mismatch undetected"

(* epoll user-data translation under full monitoring: each replica gets its
   own diversified pointer back, never the master's. *)
let test_epoll_translation_lockstep backend_cfg () =
  let kernel = Kernel.create () in
  let got = Array.make 2 0L in
  let body (env : Mvee.env) =
    let my_ptr = env.Mvee.diversified_ptr 1 in
    match sys Syscall.Pipe with
    | Syscall.Ok_pair (rfd, wfd) -> (
      let epfd =
        match sys Syscall.Epoll_create with
        | Syscall.Ok_int fd -> fd
        | _ -> Alcotest.fail "epoll_create"
      in
      (match
         sys
           (Syscall.Epoll_ctl
              { epfd; op = Syscall.Epoll_add; fd = rfd; events = Syscall.ev_in;
                user_data = my_ptr })
       with
      | Syscall.Ok_int 0 -> ()
      | _ -> Alcotest.fail "epoll_ctl");
      ignore (sys (Syscall.Write (wfd, "!")));
      match sys (Syscall.Epoll_wait { epfd; max_events = 4; timeout_ns = None }) with
      | Syscall.Ok_epoll [ (ud, _) ] -> got.(env.Mvee.variant) <- ud
      | _ -> Alcotest.fail "epoll_wait")
    | _ -> Alcotest.fail "pipe"
  in
  let h = Mvee.launch kernel backend_cfg ~name:"epolltrans" ~body in
  Kernel.run kernel;
  let o = Mvee.finish h in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "verdict: %s" (Divergence.to_string v));
  Alcotest.(check bool) "pointers differ across replicas (diversified)" true
    (not (Int64.equal got.(0) got.(1)));
  Alcotest.(check bool) "both non-zero" true
    (Int64.compare got.(0) 0L > 0 && Int64.compare got.(1) 0L > 0)

(* A replica that silently stops making syscalls trips the watchdog. *)
let test_rendezvous_watchdog () =
  let kernel = Kernel.create () in
  let config = { (ghumvee ()) with Mvee.watchdog_ns = Vtime.ms 50 } in
  let body (env : Mvee.env) =
    ignore (sys Syscall.Getpid);
    if env.Mvee.variant = 1 then
      (* compromised replica spins forever in userspace *)
      Sched.compute (Vtime.s 3600)
    else ignore (sys Syscall.Gettimeofday)
  in
  let h = Mvee.launch kernel config ~name:"watchdog" ~body in
  Kernel.run ~until:(Vtime.s 7200) kernel;
  match (Mvee.finish h).Mvee.verdict with
  | Some (Divergence.Rendezvous_timeout { missing; _ }) ->
    Alcotest.(check (list int)) "variant 1 missing" [ 1 ] missing
  | Some v -> Alcotest.failf "wrong verdict: %s" (Divergence.to_string v)
  | None -> Alcotest.fail "watchdog did not fire"

(* RB overflow: a tiny buffer forces GHUMVEE-arbitrated resets, and the
   run still completes correctly. *)
let test_rb_overflow_end_to_end () =
  let kernel = Kernel.create () in
  let config =
    { (remon ~policy:(Policy.spatial Classification.Nonsocket_rw_level) ()) with
      Mvee.rb_size = 2048 }
  in
  let body (_ : Mvee.env) =
    let fd =
      match sys (Syscall.Open ("/tmp/ovf.bin", { Syscall.o_rdwr with create = true })) with
      | Syscall.Ok_int fd -> fd
      | _ -> Alcotest.fail "open"
    in
    for _ = 1 to 100 do
      ignore (sys (Syscall.Pwrite64 (fd, String.make 64 'x', 0)))
    done;
    ignore (sys (Syscall.Close fd))
  in
  let h = Mvee.launch kernel config ~name:"rbovf" ~body in
  Kernel.run kernel;
  let o = Mvee.finish h in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "verdict: %s" (Divergence.to_string v));
  Alcotest.(check bool) "buffer was reset at least once" true (o.Mvee.rb_resets > 0);
  Alcotest.(check bool) "fast path still used" true (o.Mvee.ipmon_fastpath > 100)

(* IK-B token mechanics at the unit level. *)
let test_token_single_use () =
  let kernel = Kernel.create () in
  let ikb = Ikb.create ~kernel ~policy:(Policy.spatial Classification.Socket_rw_level) ~seed:5 in
  let p = Kernel.make_process kernel ~name:"tok" ~vm_seed:1 () in
  let th = Kernel.add_thread kernel p ~start_clock:Vtime.zero in
  th.Proc.in_ipmon <- true;
  let call = Syscall.Gettimeofday in
  Hashtbl.replace ikb.Ikb.tokens th.Proc.tid
    { Ikb.value = 77L; granted_for = call; live = true; temporal = false };
  Alcotest.(check bool) "valid token accepted once" true
    (Ikb.verify ikb th ~token:77L ~call);
  Alcotest.(check bool) "second use rejected (single-shot)" false
    (Ikb.verify ikb th ~token:77L ~call)

let test_token_wrong_call () =
  let kernel = Kernel.create () in
  let ikb = Ikb.create ~kernel ~policy:(Policy.spatial Classification.Socket_rw_level) ~seed:6 in
  let p = Kernel.make_process kernel ~name:"tok2" ~vm_seed:1 () in
  let th = Kernel.add_thread kernel p ~start_clock:Vtime.zero in
  th.Proc.in_ipmon <- true;
  Hashtbl.replace ikb.Ikb.tokens th.Proc.tid
    { Ikb.value = 88L; granted_for = Syscall.Gettimeofday; live = true; temporal = false };
  Alcotest.(check bool) "different call rejected" false
    (Ikb.verify ikb th ~token:88L ~call:(Syscall.Read (0, 16)));
  Alcotest.(check bool) "token revoked by the failed attempt" false
    (Ikb.verify ikb th ~token:88L ~call:Syscall.Gettimeofday)

let test_token_requires_ipmon_context () =
  let kernel = Kernel.create () in
  let ikb = Ikb.create ~kernel ~policy:(Policy.spatial Classification.Socket_rw_level) ~seed:7 in
  let p = Kernel.make_process kernel ~name:"tok3" ~vm_seed:1 () in
  let th = Kernel.add_thread kernel p ~start_clock:Vtime.zero in
  th.Proc.in_ipmon <- false (* attacker jumped over IP-MON's entry point *);
  Hashtbl.replace ikb.Ikb.tokens th.Proc.tid
    { Ikb.value = 99L; granted_for = Syscall.Gettimeofday; live = true; temporal = false };
  Alcotest.(check bool) "call from outside IP-MON rejected" false
    (Ikb.verify ikb th ~token:99L ~call:Syscall.Gettimeofday)

(* Section 4 extension: IK-B periodically migrates the RB to fresh
   addresses; IP-MON keeps working because its pointer is register-held. *)
let test_rb_migration () =
  let kernel = Kernel.create () in
  let config =
    {
      (remon ~policy:(Policy.spatial Classification.Nonsocket_rw_level) ()) with
      Mvee.rb_migration_interval = Some (Vtime.ms 1);
    }
  in
  let addresses = ref [] in
  let body (_ : Mvee.env) =
    let fd =
      match sys (Syscall.Open ("/tmp/mig.bin", { Syscall.o_rdwr with create = true })) with
      | Syscall.Ok_int fd -> fd
      | _ -> Alcotest.fail "open"
    in
    for _ = 1 to 40 do
      Sched.compute (Vtime.us 200);
      ignore (sys (Syscall.Pwrite64 (fd, "m", 0)));
      let th = Sched.self () in
      (match th.Proc.proc.Proc.ipmon_registered with
      | Some reg ->
        if not (List.mem reg.Proc.rb_addr !addresses) then
          addresses := reg.Proc.rb_addr :: !addresses
      | None -> ())
    done;
    ignore (sys (Syscall.Close fd))
  in
  let h = Mvee.launch kernel config ~name:"rbmig" ~body in
  Kernel.run kernel;
  let o = Mvee.finish h in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "verdict: %s" (Divergence.to_string v));
  Alcotest.(check bool)
    (Printf.sprintf "RB observed at %d addresses" (List.length !addresses))
    true
    (List.length !addresses >= 3);
  Alcotest.(check bool) "fast path survived migrations" true
    (o.Mvee.ipmon_fastpath > 50)

let prop_tokens_unique =
  QCheck2.Test.make ~name:"token stream has no collisions" ~count:20
    QCheck2.Gen.small_int
    (fun seed ->
      let rng = Remon_util.Rng.make seed in
      let seen = Hashtbl.create 4096 in
      let ok = ref true in
      for _ = 1 to 2000 do
        let tok = Remon_util.Rng.int64 rng in
        if Hashtbl.mem seen tok then ok := false;
        Hashtbl.replace seen tok ()
      done;
      !ok)

let tc = Alcotest.test_case

let () =
  Alcotest.run "monitor"
    [
      ( "signals",
        [
          tc "deferral consistency (remon)" `Quick
            (test_signal_deferral_consistency (remon ()));
          tc "deferral consistency (ghumvee)" `Quick
            (test_signal_deferral_consistency (ghumvee ()));
          tc "blocked call aborted for delivery" `Quick
            test_signal_aborts_blocked_call;
        ] );
      ( "verdicts",
        [
          tc "exit code mismatch" `Quick test_exit_code_mismatch;
          tc "rendezvous watchdog" `Quick test_rendezvous_watchdog;
        ] );
      ( "epoll",
        [
          tc "pointer translation (lockstep)" `Quick
            (test_epoll_translation_lockstep (ghumvee ()));
          tc "pointer translation (ipmon)" `Quick
            (test_epoll_translation_lockstep (remon ()));
        ] );
      ( "rb",
        [
          tc "overflow handled end-to-end" `Quick test_rb_overflow_end_to_end;
          tc "periodic migration (Section 4 extension)" `Quick test_rb_migration;
        ] );
      ( "tokens",
        [
          tc "single use" `Quick test_token_single_use;
          tc "wrong call rejected + revoked" `Quick test_token_wrong_call;
          tc "requires IP-MON context" `Quick test_token_requires_ipmon_context;
          QCheck_alcotest.to_alcotest prop_tokens_unique;
        ] );
    ]
