(* Fleet-level orchestration: load balancer + health probes, fleet
   quarantine/respawn under chaos, rolling restarts, and the degraded-time
   accounting fix (the window closes at journal drain, not lockstep
   rejoin). *)

open Remon_kernel
open Remon_core
open Remon_sim
open Remon_workloads
module Fchaos = Remon_fleet.Chaos
module Lb = Remon_fleet.Lb

let sys = Sched.syscall

(* ------------------------------------------------------------------ *)
(* degraded_ns regression: the drain instant closes the window *)

(* Dense monitored phase (the journal the respawn replays), then a stretch
   of master-only compute — a monitored silence during which the journal
   does not grow. The respawned replica drains the journal and parks at
   its head near the start of that silence, but can only rejoin lockstep
   at the master's *next* monitored call, [gap_ms] later. Before the fix
   the degraded window was held open until that rejoin; now it closes at
   the drain instant. *)
let gap_ms = 5

let gapped_body () (env : Mvee.env) =
  for _ = 1 to 30 do
    (match
       sys (Syscall.Open ("/tmp/fleet.txt", { Syscall.o_rdwr with create = true }))
     with
    | Syscall.Ok_int fd ->
      ignore (sys (Syscall.Write (fd, "x")));
      ignore (sys (Syscall.Close fd))
    | _ -> ());
    Sched.compute (Vtime.us 20)
  done;
  if env.Mvee.variant = 0 then Sched.compute (Vtime.ms gap_ms);
  (* monitored tail: the rendezvous the respawned replica rejoins at *)
  for _ = 1 to 3 do
    match
      sys (Syscall.Open ("/tmp/fleet.txt", { Syscall.o_rdwr with create = true }))
    with
    | Syscall.Ok_int fd -> ignore (sys (Syscall.Close fd))
    | _ -> ()
  done

let first_instant o name =
  let found = ref None in
  Remon_util.Vec.iter
    (fun (e : Remon_obs.Trace.event) ->
      if e.Remon_obs.Trace.name = name && !found = None then
        found := Some e.Remon_obs.Trace.ts)
    o.Remon_obs.Obs.trace.Remon_obs.Trace.events;
  match !found with
  | Some ts -> ts
  | None -> Alcotest.failf "no %S instant in the trace" name

let test_degraded_window_closes_at_drain () =
  let cfg =
    {
      Mvee.default_config with
      backend = Mvee.Remon;
      nreplicas = 2;
      policy = Policy.spatial Classification.Socket_rw_level;
      faults = [ Fault.spec ~kind:(Fault.Crash Sigdefs.sigsegv) ~variant:1 ~at:12 ];
      on_failure = Mvee.Respawn { max_respawns = 2; backoff_ns = Vtime.ms 1 };
    }
  in
  let kernel = Kernel.create ~seed:cfg.Mvee.seed () in
  let o = Remon_obs.Obs.create () in
  Kernel.set_obs kernel o;
  let h = Mvee.launch kernel cfg ~name:"degraded" ~body:(gapped_body ()) in
  Kernel.run kernel;
  let outcome = Mvee.finish h in
  (match outcome.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected verdict: %s" (Divergence.to_string v));
  Alcotest.(check int) "one respawn" 1 outcome.Mvee.respawns;
  (* exact window: the accounted time must equal the span between the
     quarantine instant and the (drain-stamped) rejoin instant *)
  let t_q = first_instant o "quarantine" in
  let t_r = first_instant o "rejoin" in
  Alcotest.(check int)
    "degraded_ns = rejoin(ts) - quarantine(ts)"
    (t_r - t_q) outcome.Mvee.degraded_ns;
  (* regression pin: the window must exclude the monitored-silence gap.
     With the drain accounted at lockstep rejoin, degraded_ns would be
     >= gap_ms here. *)
  Alcotest.(check bool)
    (Printf.sprintf "window excludes the %d ms rejoin gap" gap_ms)
    true
    (Vtime.compare outcome.Mvee.degraded_ns (Vtime.ms gap_ms) < 0)

(* ------------------------------------------------------------------ *)
(* connect_retry: deterministic parameterized backoff *)

let retry_run () =
  let retries = ref [] in
  let elapsed = ref Vtime.zero in
  let exhausted = ref false in
  let kernel = Kernel.create ~seed:7 ~net_latency:(Vtime.us 50) () in
  ignore
    (Kernel.spawn_process kernel ~name:"dialer" ~vm_seed:3 (fun () ->
         let fd = Api.socket () in
         let t0 = Sched.vnow () in
         (match
            Api.connect_retry ~attempts:4 ~base_backoff_ns:1_000_000
              ~cap_backoff_ns:8_000_000
              ~on_retry:(fun n -> retries := n :: !retries)
              fd 9999
          with
         | exception Api.Connect_retries_exhausted _ -> exhausted := true
         | () -> ());
         elapsed := Vtime.sub (Sched.vnow ()) t0));
  Kernel.run kernel;
  (List.rev !retries, !elapsed, !exhausted)

let test_connect_retry_backoff () =
  let retries, elapsed, exhausted = retry_run () in
  Alcotest.(check bool) "budget exhausted" true exhausted;
  Alcotest.(check (list int)) "one on_retry call per retry, 1-based"
    [ 1; 2; 3; 4 ] retries;
  (* backoff sleeps alone are 1+2+4+8 ms; refused connects add RTTs *)
  Alcotest.(check bool) "elapsed covers the backoff schedule" true
    (Vtime.compare elapsed (Vtime.ms 15) >= 0);
  let _, elapsed2, _ = retry_run () in
  Alcotest.(check int) "deterministic elapsed time" elapsed elapsed2

(* ------------------------------------------------------------------ *)
(* Chaos scenarios *)

let chaos_cfg = { Fchaos.default_cfg with Fchaos.fault_rate = 0.004 }

(* Masters die mid-burst; the LB fails affected requests over and the
   fleet respawns the downed instances. With the recovery ladder off,
   every master crash permanently removes an instance. *)
let test_chaos_failover_and_availability () =
  let on = Fchaos.run_scenario chaos_cfg in
  let off = Fchaos.run_scenario { chaos_cfg with Fchaos.recovery = false } in
  Alcotest.(check int) "all requests attempted (recovery on)"
    chaos_cfg.Fchaos.requests on.Fchaos.attempted;
  Alcotest.(check int) "all requests attempted (recovery off)"
    chaos_cfg.Fchaos.requests off.Fchaos.attempted;
  Alcotest.(check bool) "masters actually died" true
    (on.Fchaos.instance_failures >= 1);
  Alcotest.(check bool) "failover engaged" true (on.Fchaos.failovers > 0);
  Alcotest.(check bool) "fleet respawned" true (on.Fchaos.fleet_respawns >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "availability SLO met with recovery (%.3f)"
       on.Fchaos.availability)
    true
    (on.Fchaos.availability > 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "strictly worse without recovery (%.3f < %.3f)"
       off.Fchaos.availability on.Fchaos.availability)
    true
    (off.Fchaos.availability < on.Fchaos.availability)

(* The same fault plan classifies identically on every replicated
   backend: chaos must not depend on which monitor caught the crash. *)
let test_verdict_classes_agree () =
  let classes b =
    (Fchaos.run_scenario { chaos_cfg with Fchaos.backend = b }).Fchaos
      .verdict_classes
  in
  let ghumvee = classes Mvee.Ghumvee_only in
  let varan = classes Mvee.Varan in
  let remon = classes Mvee.Remon in
  Alcotest.(check (list string)) "ghumvee vs varan" ghumvee varan;
  Alcotest.(check (list string)) "varan vs remon" varan remon

(* Rolling restart under live traffic: connection draining means clients
   see backoff latency, never errors. *)
let test_rolling_restart_clean () =
  List.iter
    (fun policy ->
      let r =
        Fchaos.run_scenario
          { chaos_cfg with Fchaos.fault_rate = 0.0; rolling = Some 1; policy }
      in
      Alcotest.(check int) "all requests attempted" chaos_cfg.Fchaos.requests
        r.Fchaos.attempted;
      Alcotest.(check int) "no dropped requests" 0 r.Fchaos.lb_errors;
      Alcotest.(check bool) "full availability" true
        (r.Fchaos.availability = 1.0))
    [ Lb.Round_robin; Lb.Least_conns ]

(* Stdout contract: the per-cell summary lines are byte-identical for any
   --domains fan-out. *)
let test_domains_identity () =
  let cells =
    [
      chaos_cfg;
      { chaos_cfg with Fchaos.recovery = false };
      { chaos_cfg with Fchaos.fault_rate = 0.0; rolling = Some 1 };
    ]
  in
  let lines domains =
    Remon_util.Pool.map ~domains
      (fun c -> Fchaos.summary_line c (Fchaos.run_scenario c))
      cells
  in
  Alcotest.(check (list string)) "domains 1 vs 4" (lines 1) (lines 4)

(* The recovery and fleet counters surface in the metrics summary. *)
let test_metrics_surface () =
  let r = Fchaos.run_scenario { chaos_cfg with Fchaos.trace = true } in
  let keys = List.map fst r.Fchaos.metrics in
  List.iter
    (fun k ->
      Alcotest.(check bool) (Printf.sprintf "metric %S present" k) true
        (List.mem k keys))
    [
      "recovery.quarantines";
      "recovery.respawns";
      "recovery.watchdog_retries";
      "fleet.lb.proxied";
      "fleet.lb.probes";
      "fleet.instance_down";
      "fleet.instance_respawn";
    ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fleet"
    [
      ( "degraded-window",
        [
          Alcotest.test_case "closes at journal drain" `Quick
            test_degraded_window_closes_at_drain;
        ] );
      ( "connect-retry",
        [
          Alcotest.test_case "parameterized deterministic backoff" `Quick
            test_connect_retry_backoff;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "failover + availability SLO" `Quick
            test_chaos_failover_and_availability;
          Alcotest.test_case "verdict classes agree across backends" `Quick
            test_verdict_classes_agree;
          Alcotest.test_case "rolling restart is invisible to clients" `Quick
            test_rolling_restart_clean;
          Alcotest.test_case "summary byte-identical domains 1 vs 4" `Quick
            test_domains_identity;
          Alcotest.test_case "fleet counters in metrics summary" `Quick
            test_metrics_surface;
        ] );
    ]
