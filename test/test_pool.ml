(* Tests for the Domain-based work pool and for the determinism of the
   experiment harness when runs fan out across domains.

   Every simulation run owns its kernel, virtual clock and seeded RNG, so
   fanning a job list across domains must produce byte-identical results
   to the sequential path. The determinism tests here run the same job
   matrices the benchmarks use — a fig3-style normalized-time sweep and a
   faults-style availability matrix — at [~domains:1] and [~domains:4]
   and require identical outcome records. *)

open Remon_util
open Remon_core
open Remon_sim
open Remon_workloads

(* --- pool semantics ------------------------------------------------- *)

let test_ordered_results () =
  let jobs = List.init 257 (fun i -> i) in
  let expect = List.map (fun i -> i * i) jobs in
  Alcotest.(check (list int)) "domains=1 matches List.map" expect
    (Pool.map ~domains:1 (fun i -> i * i) jobs);
  Alcotest.(check (list int)) "domains=4 preserves job order" expect
    (Pool.map ~domains:4 (fun i -> i * i) jobs)

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty job list" []
    (Pool.map ~domains:4 (fun i -> i) []);
  Alcotest.(check (list string)) "single job" [ "7" ]
    (Pool.map ~domains:4 string_of_int [ 7 ])

exception Boom of int

let test_exception_capture () =
  (* the first failing job in submission order wins, even if a later job
     fails first in wall-clock time on another domain *)
  let run domains =
    try
      ignore
        (Pool.map ~domains
           (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
           (List.init 20 (fun i -> i)));
      Alcotest.fail "expected Boom"
    with Boom i -> Alcotest.(check int) "earliest failing job" 2 i
  in
  run 1;
  run 4

(* Proof of actual parallelism: 4 jobs each wait at a barrier that only
   opens once all 4 have started. A sequential pool would never finish
   job 1; with 4 workers (3 spawned domains + the caller) every job gets
   its own domain and the barrier opens. *)
let test_parallel_execution () =
  let started = Atomic.make 0 in
  let ids =
    Pool.map ~domains:4
      (fun _ ->
        Atomic.incr started;
        while Atomic.get started < 4 do
          Domain.cpu_relax ()
        done;
        (Domain.self () :> int))
      [ 0; 1; 2; 3 ]
  in
  let distinct = List.sort_uniq compare ids in
  Alcotest.(check bool)
    (Printf.sprintf "jobs ran on %d distinct domains" (List.length distinct))
    true
    (List.length distinct > 1)

(* --- determinism under parallelism ---------------------------------- *)

(* fig3-style matrix: normalized times for a small benchmark list under
   GHUMVEE and ReMon. Floats must be bit-identical, not approximately
   equal — the parallel harness reruns the exact same simulations. *)
let fig3_style_matrix ~domains =
  let profiles =
    [
      Profile.make ~name:"pool.dense" ~threads:2 ~density_hz:80_000. ~calls:400
        ~mix:Profile.mix_file_rw ~description:"pool determinism dense" ();
      Profile.make ~name:"pool.sparse" ~threads:2 ~density_hz:5_000. ~calls:200
        ~mix:Profile.mix_file_rw ~description:"pool determinism sparse" ();
    ]
  in
  Pool.map ~domains
    (fun profile ->
      let no_ipmon = Runner.normalized_time profile (Runner.cfg_ghumvee ()) in
      let ipmon =
        Runner.normalized_time profile
          (Runner.cfg_remon Classification.Nonsocket_rw_level)
      in
      (profile.Profile.name, no_ipmon, ipmon))
    profiles

let test_fig3_style_determinism () =
  let seq = fig3_style_matrix ~domains:1 in
  let par = fig3_style_matrix ~domains:4 in
  List.iter2
    (fun (name, s_no, s_ip) (name', p_no, p_ip) ->
      Alcotest.(check string) "same row order" name name';
      Alcotest.(check bool)
        (Printf.sprintf "%s no-IPMON identical (%.17g vs %.17g)" name s_no p_no)
        true (s_no = p_no);
      Alcotest.(check bool)
        (Printf.sprintf "%s IP-MON identical (%.17g vs %.17g)" name s_ip p_ip)
        true (s_ip = p_ip))
    seq par

(* faults-style matrix: availability runs with fault injection across
   (policy, rate) cells. The full outcome record — including
   faults_injected and the divergence verdict — must match between the
   sequential and the 4-domain harness. *)
let faults_style_matrix ~domains =
  let iters = 120 in
  let body progress (env : Mvee.env) =
    for i = 1 to iters do
      ignore (Remon_kernel.Sched.syscall Remon_kernel.Syscall.Gettimeofday);
      Remon_kernel.Sched.compute (Vtime.us 2);
      if env.Mvee.variant = 0 then progress := i
    done
  in
  let jobs =
    List.concat_map
      (fun policy ->
        List.map (fun rate -> (policy, rate)) [ 0.0; 0.003; 0.01 ])
      [
        Mvee.Kill_group;
        Mvee.Quarantine;
        Mvee.Respawn { max_respawns = 2; backoff_ns = Vtime.us 200 };
      ]
  in
  Pool.map ~domains
    (fun (policy, rate) ->
      let seed = 1137 in
      let faults =
        Fault.random_plan ~seed:(seed + 7) ~rate ~horizon:400 ~nreplicas:2
      in
      let config =
        {
          Mvee.default_config with
          Mvee.backend = Mvee.Remon;
          nreplicas = 2;
          policy = Policy.spatial Classification.Socket_rw_level;
          seed;
          faults;
          on_failure = policy;
          watchdog_ns = Vtime.ms 5;
        }
      in
      let progress = ref 0 in
      let o = Mvee.run_program config ~name:"pool.avail" ~body:(body progress) in
      (!progress, o))
    jobs

let test_faults_style_determinism () =
  let seq = faults_style_matrix ~domains:1 in
  let par = faults_style_matrix ~domains:4 in
  List.iteri
    (fun i ((s_prog, (s : Mvee.outcome)), (p_prog, (p : Mvee.outcome))) ->
      let cell = Printf.sprintf "cell %d" i in
      Alcotest.(check int) (cell ^ " progress") s_prog p_prog;
      Alcotest.(check int)
        (cell ^ " faults_injected")
        s.Mvee.faults_injected p.Mvee.faults_injected;
      Alcotest.(check (option string))
        (cell ^ " verdict")
        (Option.map Divergence.to_string s.Mvee.verdict)
        (Option.map Divergence.to_string p.Mvee.verdict);
      Alcotest.(check bool)
        (cell ^ " full outcome record identical")
        true (s = p))
    (List.combine seq par)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "pool"
    [
      ( "semantics",
        [
          tc "ordered results" test_ordered_results;
          tc "empty and singleton" test_empty_and_singleton;
          tc "exception capture" test_exception_capture;
          tc "parallel execution" test_parallel_execution;
        ] );
      ( "determinism",
        [
          tc "fig3-style matrix" test_fig3_style_determinism;
          tc "faults-style matrix" test_faults_style_determinism;
        ] );
    ]
