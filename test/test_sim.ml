(* Tests for the simulation core: virtual time, event queue, cost model. *)

open Remon_sim

let test_vtime_units () =
  Alcotest.(check int) "us" 1_000 (Vtime.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Vtime.ms 1);
  Alcotest.(check int) "s" 1_000_000_000 (Vtime.s 1);
  Alcotest.(check int) "add" 3 Vtime.(ns 1 + ns 2);
  Alcotest.(check bool) "ordering" true Vtime.(ms 1 < s 1)

let test_vtime_scale () =
  Alcotest.(check int) "scale" 1_500 (Vtime.scale (Vtime.us 1) 1.5)

let test_event_queue_order () =
  let q = Event_queue.create () in
  let order = ref [] in
  let add time tag = ignore (Event_queue.add q ~time (fun () -> order := tag :: !order)) in
  add (Vtime.ms 3) "c";
  add (Vtime.ms 1) "a";
  add (Vtime.ms 2) "b";
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, f) ->
      f ();
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order)

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Event_queue.add q ~time:(Vtime.ms 1) (fun () -> order := i :: !order))
  done;
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, f) ->
      f ();
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_event_queue_cancel () =
  let q = Event_queue.create () in
  let fired = ref false in
  let h = Event_queue.add q ~time:(Vtime.ms 1) (fun () -> fired := true) in
  Event_queue.cancel h;
  Alcotest.(check int) "no live events" 0 (Event_queue.length q);
  (match Event_queue.pop q with
  | None -> ()
  | Some _ -> Alcotest.fail "cancelled event popped");
  Alcotest.(check bool) "never fired" false !fired

let test_event_queue_peek () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:(Vtime.ms 9) ());
  let h = Event_queue.add q ~time:(Vtime.ms 2) () in
  Alcotest.(check (option int)) "peek earliest" (Some (Vtime.ms 2))
    (Event_queue.peek_time q);
  Event_queue.cancel h;
  Alcotest.(check (option int)) "peek skips cancelled" (Some (Vtime.ms 9))
    (Event_queue.peek_time q)

(* length/is_empty are backed by a live counter, so they must stay exact
   through any interleaving of add, cancel (including double-cancel and
   cancel-after-pop) and pop. *)
let test_event_queue_live_counter () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "fresh queue empty" true (Event_queue.is_empty q);
  let handles =
    List.init 100 (fun i -> Event_queue.add q ~time:(Vtime.us i) i)
  in
  Alcotest.(check int) "after adds" 100 (Event_queue.length q);
  List.iteri (fun i h -> if i mod 2 = 0 then Event_queue.cancel h) handles;
  Alcotest.(check int) "after cancelling half" 50 (Event_queue.length q);
  (* cancelling again must not decrement twice *)
  List.iteri (fun i h -> if i mod 2 = 0 then Event_queue.cancel h) handles;
  Alcotest.(check int) "double cancel is a no-op" 50 (Event_queue.length q);
  (match Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check int) "first live payload" 1 v
  | None -> Alcotest.fail "expected a live event");
  Alcotest.(check int) "after pop" 49 (Event_queue.length q);
  (* cancelling a handle whose event already fired must also be a no-op *)
  Event_queue.cancel (List.nth handles 1);
  Alcotest.(check int) "cancel after pop is a no-op" 49 (Event_queue.length q);
  let rec drain n =
    match Event_queue.pop q with None -> n | Some _ -> drain (n + 1)
  in
  Alcotest.(check int) "remaining live events pop" 49 (drain 0);
  Alcotest.(check bool) "empty again" true (Event_queue.is_empty q);
  Alcotest.(check int) "length zero" 0 (Event_queue.length q)

(* Mass cancellation must not leave the heap full of dead entries: once
   dead outnumber live, the queue compacts in place. *)
let test_event_queue_compaction () =
  let q = Event_queue.create () in
  let handles =
    List.init 1024 (fun i -> Event_queue.add q ~time:(Vtime.us i) i)
  in
  Alcotest.(check int) "physical matches logical" 1024
    (Event_queue.physical_size q);
  List.iteri (fun i h -> if i mod 8 <> 0 then Event_queue.cancel h) handles;
  Alcotest.(check int) "live survivors" 128 (Event_queue.length q);
  Alcotest.(check bool)
    (Printf.sprintf "dead entries reclaimed (physical %d)"
       (Event_queue.physical_size q))
    true
    (Event_queue.physical_size q <= 2 * Event_queue.length q);
  (* compaction must preserve order of the survivors *)
  let rec drain acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "survivors in time order"
    (List.init 128 (fun i -> i * 8))
    (drain [])

(* Regression: cancelling a handle whose entry was already popped must stay
   a no-op even when the cancel lands at the compaction threshold — the
   dead entry was physically removed by the pop, so a naive implementation
   that re-counted it would drive the live counter negative or compact away
   live entries. *)
let test_event_queue_cancel_after_pop_compaction () =
  let q = Event_queue.create () in
  let handles =
    Array.init 64 (fun i -> Event_queue.add q ~time:(Vtime.us i) i)
  in
  (* pop the first 16 entries, keeping their handles *)
  for i = 0 to 15 do
    match Event_queue.pop q with
    | Some (_, v) -> Alcotest.(check int) "pop order" i v
    | None -> Alcotest.fail "expected a live event"
  done;
  Alcotest.(check int) "48 live after pops" 48 (Event_queue.length q);
  (* cancel every popped handle: all no-ops *)
  for i = 0 to 15 do
    Event_queue.cancel handles.(i)
  done;
  Alcotest.(check int) "cancel-after-pop never decrements" 48
    (Event_queue.length q);
  (* now cancel live entries until dead outnumber live: compaction fires
     while the popped handles are still reachable *)
  for i = 16 to 48 do
    Event_queue.cancel handles.(i)
  done;
  let len = Event_queue.length q in
  Alcotest.(check int) "live count exact" 15 len;
  Alcotest.(check bool) "live counter non-negative" true (len >= 0);
  Alcotest.(check bool) "physical >= logical" true
    (Event_queue.physical_size q >= len);
  (* cancel the popped handles again, post-compaction: still no-ops *)
  Array.iter Event_queue.cancel handles;
  Alcotest.(check int) "all cancels idempotent" 0 (Event_queue.length q);
  Alcotest.(check (option int)) "nothing left to pop" None
    (match Event_queue.pop q with Some (t, _) -> Some t | None -> None);
  let st = Event_queue.stats q in
  Alcotest.(check int) "adds tallied" 64 st.Event_queue.adds;
  Alcotest.(check int) "pops tallied" 16 st.Event_queue.pops;
  Alcotest.(check int) "cancels count only live kills" 48 st.Event_queue.cancels;
  Alcotest.(check bool) "compaction actually ran" true
    (st.Event_queue.compactions > 0)

(* Model-based property: random add/cancel/pop interleavings (including
   cancels of popped and already-cancelled handles) keep the live counter
   exact and pop exactly the surviving events in (time, insertion) order. *)
let prop_event_queue_model =
  QCheck2.Test.make ~name:"add/cancel/pop interleavings match a model"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 300) (pair (int_range 0 2) (int_range 0 5_000)))
    (fun ops ->
      let q = Event_queue.create () in
      (* model: (id, time, alive) in insertion order; handles by id *)
      let handles = ref [||] in
      let alive = ref [] in
      let popped = ref [] in
      let ok = ref true in
      let nadds = ref 0 in
      List.iter
        (fun (op, x) ->
          (match op with
          | 0 ->
            let id = !nadds in
            incr nadds;
            let h = Event_queue.add q ~time:(Vtime.ns x) id in
            handles := Array.append !handles [| h |];
            alive := (id, x) :: !alive
          | 1 ->
            if !nadds > 0 then begin
              let id = x mod !nadds in
              Event_queue.cancel !handles.(id);
              alive := List.filter (fun (i, _) -> i <> id) !alive
            end
          | _ -> (
            match Event_queue.pop q with
            | None -> if !alive <> [] then ok := false
            | Some (_, id) ->
              popped := id :: !popped;
              alive := List.filter (fun (i, _) -> i <> id) !alive));
          if Event_queue.length q <> List.length !alive then ok := false;
          if Event_queue.physical_size q < Event_queue.length q then ok := false)
        ops;
      (* drain: the survivors must come out in (time, insertion id) order *)
      let expected =
        List.sort
          (fun (i1, t1) (i2, t2) -> compare (t1, i1) (t2, i2))
          (List.rev !alive)
        |> List.map fst
      in
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (_, id) -> drain (id :: acc)
      in
      !ok && drain [] = expected && Event_queue.is_empty q)

(* The recycled-entry pool and the allocation-free pop path together: a
   handle taken before its entry is popped and recycled into a *new*
   event must stay inert — cancelling it afterwards must not kill the
   recycled occupant — and a single [pop_into] slot reused for every pop
   must always carry the latest (time, payload), including across failed
   pops on an empty queue (which must leave the slot untouched). *)
let prop_event_queue_recycling =
  QCheck2.Test.make
    ~name:"handle safety across entry recycling + pop_into slot aliasing"
    ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 300) (pair (int_range 0 3) (int_range 0 5_000)))
    (fun ops ->
      let q = Event_queue.create () in
      let slot = Event_queue.make_slot (-1) in
      let handles = ref [||] in
      let alive = ref [] in
      let ok = ref true in
      let nadds = ref 0 in
      let fresh_id () =
        let id = !nadds in
        incr nadds;
        id
      in
      List.iter
        (fun (op, x) ->
          (match op with
          | 0 ->
            (* handled add: cancellable later, even after recycling *)
            let id = fresh_id () in
            let h = Event_queue.add q ~time:(Vtime.ns x) id in
            handles := Array.append !handles [| (id, h) |];
            alive := (id, x) :: !alive
          | 1 ->
            (* handle-free add: comes straight from the recycle pool *)
            let id = fresh_id () in
            Event_queue.add_ q ~time:(Vtime.ns x) id;
            alive := (id, x) :: !alive
          | 2 ->
            (* cancel an arbitrary earlier handle: must only kill its own
               event, never a recycled successor in the same entry *)
            if Array.length !handles > 0 then begin
              let victim, h = !handles.(x mod Array.length !handles) in
              Event_queue.cancel h;
              alive := List.filter (fun (id, _) -> id <> victim) !alive
            end
          | _ ->
            let before = Event_queue.slot_payload slot in
            (* ids are assigned in insertion order, so (time, id) is the
               queue's (time, insertion) tie-break *)
            let expected_id =
              match
                List.sort
                  (fun (i1, t1) (i2, t2) -> compare (t1, i1) (t2, i2))
                  !alive
              with
              | (i, _) :: _ -> Some i
              | [] -> None
            in
            if Event_queue.pop_into q slot then begin
              let id = Event_queue.slot_payload slot in
              (match expected_id with
              | Some e -> if id <> e then ok := false
              | None -> ok := false);
              alive := List.filter (fun (i, _) -> i <> id) !alive
            end
            else begin
              if !alive <> [] then ok := false;
              (* failed pop must not scribble on the caller's slot *)
              if Event_queue.slot_payload slot <> before then ok := false
            end);
          if Event_queue.length q <> List.length !alive then ok := false)
        ops;
      (* drain through the same aliased slot; (time, id) order must hold *)
      let expected =
        List.sort
          (fun (i1, t1) (i2, t2) -> compare (t1, i1) (t2, i2))
          (List.rev !alive)
        |> List.map fst
      in
      let rec drain acc =
        if Event_queue.pop_into q slot then
          drain (Event_queue.slot_payload slot :: acc)
        else List.rev acc
      in
      !ok && drain [] = expected && Event_queue.is_empty q)

(* Cancelling via a stale handle after its event was popped and its entry
   recycled by a fresh [add_] must be a no-op for the new occupant. *)
let test_event_queue_stale_handle_after_recycle () =
  let q = Event_queue.create () in
  let h = Event_queue.add q ~time:(Vtime.ns 1) 1 in
  (match Event_queue.pop q with
  | Some (_, 1) -> ()
  | _ -> Alcotest.fail "expected the first event");
  (* the popped entry returns to the pool; this add_ recycles it *)
  Event_queue.add_ q ~time:(Vtime.ns 2) 2;
  Event_queue.cancel h;
  Alcotest.(check int) "recycled occupant survives stale cancel" 1
    (Event_queue.length q);
  match Event_queue.pop q with
  | Some (_, 2) -> ()
  | _ -> Alcotest.fail "recycled event must still pop"

let test_cost_model_orderings () =
  let c = Cost_model.default in
  Alcotest.(check bool) "ptrace stop is microseconds" true
    (Cost_model.ptrace_stop_ns c > 1_000);
  Alcotest.(check bool) "RB ops are far cheaper than ptrace" true
    (c.rb_write_fixed_ns * 10 < Cost_model.ptrace_stop_ns c);
  Alcotest.(check bool) "token check is nanoseconds" true (c.token_check_ns < 100);
  Alcotest.(check bool) "copy grows with size" true
    (Cost_model.copy_ns c ~bytes:65536 > Cost_model.copy_ns c ~bytes:64)

let test_cost_model_ablation_preset () =
  Alcotest.(check bool) "cheap switches narrow the gap" true
    (Cost_model.ptrace_stop_ns Cost_model.cheap_switches
    < Cost_model.ptrace_stop_ns Cost_model.default)

let prop_event_queue_sorted =
  QCheck2.Test.make ~name:"pop yields nondecreasing times" ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 10_000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.add q ~time:(Vtime.ns t) ())) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> Vtime.(t >= last) && drain t
      in
      drain Vtime.zero)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sim"
    [
      ("vtime", [ tc "units" test_vtime_units; tc "scale" test_vtime_scale ]);
      ( "event-queue",
        [
          tc "order" test_event_queue_order;
          tc "fifo ties" test_event_queue_fifo_ties;
          tc "cancel" test_event_queue_cancel;
          tc "peek" test_event_queue_peek;
          tc "live counter" test_event_queue_live_counter;
          tc "compaction" test_event_queue_compaction;
          tc "cancel-after-pop vs compaction"
            test_event_queue_cancel_after_pop_compaction;
          tc "stale handle after recycle"
            test_event_queue_stale_handle_after_recycle;
          QCheck_alcotest.to_alcotest prop_event_queue_sorted;
          QCheck_alcotest.to_alcotest prop_event_queue_model;
          QCheck_alcotest.to_alcotest prop_event_queue_recycling;
        ] );
      ( "cost-model",
        [
          tc "structural orderings" test_cost_model_orderings;
          tc "ablation preset" test_cost_model_ablation_preset;
        ] );
    ]
