(* Tests for the Table 1 classification and the policy logic built on it. *)

open Remon_kernel
open Remon_core

let check_level = Alcotest.(check bool)

(* -- membership spot checks straight from Table 1 -- *)

let test_base_unconditional () =
  List.iter
    (fun no ->
      Alcotest.(check bool)
        (Sysno.to_string no ^ " is BASE unconditional")
        true
        (Classification.classify no = Classification.Unconditional Classification.Base_level))
    Sysno.[ Gettimeofday; Clock_gettime; Time; Getpid; Gettid; Getpgrp; Getppid;
            Getgid; Getegid; Getuid; Geteuid; Getcwd; Getpriority; Getrusage;
            Times; Capget; Getitimer; Sysinfo; Uname; Sched_yield; Nanosleep ]

let test_base_conditional () =
  List.iter
    (fun no ->
      Alcotest.(check bool)
        (Sysno.to_string no ^ " is BASE conditional")
        true
        (Classification.classify no = Classification.Conditional Classification.Base_level))
    Sysno.[ Futex; Ioctl; Fcntl ]

let test_nonsocket_ro () =
  List.iter
    (fun no ->
      check_level
        (Sysno.to_string no ^ " at NONSOCKET_RO")
        true
        (Classification.classify no
        = Classification.Unconditional Classification.Nonsocket_ro_level))
    Sysno.[ Access; Faccessat; Lseek; Stat; Lstat; Fstat; Fstatat; Getdents;
            Readlink; Readlinkat; Getxattr; Lgetxattr; Fgetxattr; Alarm;
            Setitimer; Timerfd_gettime; Madvise; Fadvise64 ]

let test_read_family_conditional () =
  List.iter
    (fun no ->
      check_level
        (Sysno.to_string no ^ " read-family conditional")
        true
        (Classification.classify no
        = Classification.Conditional Classification.Nonsocket_ro_level))
    Sysno.[ Read; Readv; Pread64; Preadv; Select; Poll ]

let test_socket_levels () =
  List.iter
    (fun no ->
      check_level (Sysno.to_string no ^ " at SOCKET_RO") true
        (Classification.classify no
        = Classification.Unconditional Classification.Socket_ro_level))
    Sysno.[ Epoll_wait; Recvfrom; Recvmsg; Recvmmsg; Getsockname; Getpeername; Getsockopt ];
  List.iter
    (fun no ->
      check_level (Sysno.to_string no ^ " at SOCKET_RW") true
        (Classification.classify no
        = Classification.Unconditional Classification.Socket_rw_level))
    Sysno.[ Sendto; Sendmsg; Sendmmsg; Sendfile; Epoll_ctl; Setsockopt; Shutdown ]

let test_always_monitored () =
  (* the paper: fd allocation, memory mapping, thread/process control and
     signal handling are always monitored *)
  List.iter
    (fun no ->
      check_level (Sysno.to_string no ^ " always monitored") true
        (Classification.classify no = Classification.Always_monitored))
    Sysno.[ Open; Close; Dup; Pipe; Socket; Accept; Connect; Mmap; Munmap;
            Mprotect; Mremap; Brk; Clone; Fork; Execve; Exit; Kill;
            Rt_sigaction; Rt_sigprocmask; Shmget; Shmat; Ipmon_register ]

(* -- required_level: the socket escalation of the read/write families -- *)

let lvl = Alcotest.testable (Fmt.of_to_string (function
  | None -> "monitored"
  | Some l -> Classification.level_to_string l))
  ( = )

let test_read_escalation () =
  Alcotest.check lvl "read on a file" (Some Classification.Nonsocket_ro_level)
    (Classification.required_level Sysno.Read ~on_socket:false);
  Alcotest.check lvl "read on a socket" (Some Classification.Socket_ro_level)
    (Classification.required_level Sysno.Read ~on_socket:true);
  Alcotest.check lvl "write on a file" (Some Classification.Nonsocket_rw_level)
    (Classification.required_level Sysno.Write ~on_socket:false);
  Alcotest.check lvl "write on a socket" (Some Classification.Socket_rw_level)
    (Classification.required_level Sysno.Write ~on_socket:true);
  Alcotest.check lvl "open is always monitored" None
    (Classification.required_level Sysno.Open ~on_socket:false)

let test_level_ordering () =
  let ranks = List.map Classification.level_rank Classification.all_levels in
  Alcotest.(check (list int)) "ranks are 0..4" [ 0; 1; 2; 3; 4 ] ranks;
  Alcotest.(check bool) "socket_rw >= base" true
    (Classification.level_geq Classification.Socket_rw_level Classification.Base_level);
  Alcotest.(check bool) "base < nonsocket_ro" false
    (Classification.level_geq Classification.Base_level Classification.Nonsocket_ro_level)

let test_ipmon_supported_set () =
  (* the fast-path set and the always-monitored set partition all calls *)
  let supported = Classification.ipmon_supported in
  List.iter
    (fun no ->
      Alcotest.(check bool)
        (Sysno.to_string no ^ " not both supported and monitored")
        true
        (Classification.classify no <> Classification.Always_monitored))
    supported;
  let monitored_count =
    List.length
      (List.filter
         (fun no -> Classification.classify no = Classification.Always_monitored)
         Sysno.all)
  in
  Alcotest.(check int) "partition covers all calls"
    (List.length Sysno.all)
    (List.length supported + monitored_count)

let test_table1_reconstruction () =
  let rows = Classification.table1 () in
  Alcotest.(check int) "five levels" 5 (List.length rows);
  (* every non-always-monitored call appears exactly once across the rows *)
  let mentioned =
    List.concat_map (fun (_, u, c) -> u @ c) rows |> List.sort_uniq compare
  in
  Alcotest.(check int) "each exempt call classified once"
    (List.length Classification.ipmon_supported)
    (List.length mentioned)

(* -- policy -- *)

let test_spatial_allows () =
  let p = Policy.spatial Classification.Nonsocket_rw_level in
  Alcotest.(check bool) "file write allowed at NS_RW" true
    (Policy.spatial_allows p (Syscall.Write (3, "x")) ~on_socket:false);
  Alcotest.(check bool) "socket write denied at NS_RW" false
    (Policy.spatial_allows p (Syscall.Write (3, "x")) ~on_socket:true);
  Alcotest.(check bool) "gettimeofday allowed everywhere" true
    (Policy.spatial_allows p Syscall.Gettimeofday ~on_socket:false);
  Alcotest.(check bool) "open never allowed" false
    (Policy.spatial_allows p (Syscall.Open ("/x", Syscall.o_rdonly)) ~on_socket:false);
  Alcotest.(check bool) "monitor-everything denies all" false
    (Policy.spatial_allows Policy.monitor_everything Syscall.Gettimeofday
       ~on_socket:false)

let test_op_type_conditions () =
  let p = Policy.spatial Classification.Socket_rw_level in
  Alcotest.(check bool) "F_SETFL allowed" true
    (Policy.spatial_allows p
       (Syscall.Fcntl (3, Syscall.F_setfl { nonblock = true }))
       ~on_socket:false);
  Alcotest.(check bool) "F_DUPFD denied (allocates an fd)" false
    (Policy.spatial_allows p (Syscall.Fcntl (3, Syscall.F_dupfd 10)) ~on_socket:false)

let test_temporal_needs_approvals () =
  let st = Policy.make_temporal_state ~seed:1 in
  let cfg = { Policy.default_temporal with Policy.exempt_probability = 1.0 } in
  Alcotest.(check bool) "no approvals: no exemption" false
    (Policy.temporal_exempts st ~now:0 Sysno.Read ~cfg);
  for _ = 1 to cfg.Policy.min_approvals do
    Policy.record_approval st ~now:0 Sysno.Read ~cfg
  done;
  Alcotest.(check bool) "enough approvals + p=1: exempted" true
    (Policy.temporal_exempts st ~now:1 Sysno.Read ~cfg);
  Alcotest.(check bool) "different sysno unaffected" false
    (Policy.temporal_exempts st ~now:1 Sysno.Write ~cfg)

let test_temporal_window_expiry () =
  let st = Policy.make_temporal_state ~seed:2 in
  let cfg =
    { Policy.min_approvals = 4; exempt_probability = 1.0; window_ns = 1000 }
  in
  for _ = 1 to 4 do
    Policy.record_approval st ~now:0 Sysno.Read ~cfg
  done;
  Alcotest.(check bool) "within window: exempt" true
    (Policy.temporal_exempts st ~now:500 Sysno.Read ~cfg);
  Alcotest.(check bool) "after window: approvals forgotten" false
    (Policy.temporal_exempts st ~now:5000 Sysno.Read ~cfg)

let test_temporal_probability_zero () =
  let st = Policy.make_temporal_state ~seed:3 in
  let cfg =
    { Policy.min_approvals = 1; exempt_probability = 0.0; window_ns = 1_000_000 }
  in
  Policy.record_approval st ~now:0 Sysno.Read ~cfg;
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never exempts" false
      (Policy.temporal_exempts st ~now:1 Sysno.Read ~cfg)
  done

let prop_required_level_consistent =
  (* classification and required_level agree: a call is monitored iff its
     classification is Always_monitored *)
  QCheck2.Test.make ~name:"required_level total and consistent" ~count:500
    QCheck2.Gen.(
      pair (int_range 0 (List.length Sysno.all - 1)) bool)
    (fun (i, on_socket) ->
      let no = List.nth Sysno.all i in
      match (Classification.classify no, Classification.required_level no ~on_socket) with
      | Classification.Always_monitored, None -> true
      | Classification.Always_monitored, Some _ -> false
      | _, None -> false
      | _, Some _ -> true)

let prop_levels_cumulative =
  (* anything allowed at level L is allowed at every higher level *)
  QCheck2.Test.make ~name:"levels are cumulative" ~count:500
    QCheck2.Gen.(
      triple
        (int_range 0 (List.length Sysno.all - 1))
        (int_range 0 4) bool)
    (fun (i, lvl_idx, on_socket) ->
      let no = List.nth Sysno.all i in
      let lvl = List.nth Classification.all_levels lvl_idx in
      match Classification.required_level no ~on_socket with
      | None -> true
      | Some needed ->
        let allowed_here = Classification.level_geq lvl needed in
        (* if allowed here, allowed at every higher level *)
        List.for_all
          (fun l' ->
            if Classification.level_geq l' lvl then
              (not allowed_here) || Classification.level_geq l' needed
            else true)
          Classification.all_levels)

let tc = Alcotest.test_case

let () =
  Alcotest.run "classification"
    [
      ( "table1",
        [
          tc "BASE unconditional" `Quick test_base_unconditional;
          tc "BASE conditional" `Quick test_base_conditional;
          tc "NONSOCKET_RO" `Quick test_nonsocket_ro;
          tc "read family conditional" `Quick test_read_family_conditional;
          tc "socket levels" `Quick test_socket_levels;
          tc "always monitored" `Quick test_always_monitored;
          tc "table reconstruction" `Quick test_table1_reconstruction;
        ] );
      ( "required-level",
        [
          tc "read/write escalation" `Quick test_read_escalation;
          tc "level ordering" `Quick test_level_ordering;
          tc "ipmon fast-path set" `Quick test_ipmon_supported_set;
          QCheck_alcotest.to_alcotest prop_required_level_consistent;
          QCheck_alcotest.to_alcotest prop_levels_cumulative;
        ] );
      ( "policy",
        [
          tc "spatial allows" `Quick test_spatial_allows;
          tc "op-type conditions" `Quick test_op_type_conditions;
          tc "temporal needs approvals" `Quick test_temporal_needs_approvals;
          tc "temporal window expiry" `Quick test_temporal_window_expiry;
          tc "temporal p=0" `Quick test_temporal_probability_zero;
        ] );
    ]
