(* Socket backpressure tests: bounded send/receive buffers (partial writes,
   EAGAIN, blocking senders woken as the peer drains), listener backlog
   enforcement, epoll writability edges, the epoll shadow map's
   untranslatable-event handling, and latency-reservoir determinism. *)

open Remon_kernel
open Remon_core
open Remon_sim
open Remon_workloads

let sys = Sched.syscall

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let expect_int label r =
  match (r : Syscall.result) with
  | Syscall.Ok_int n -> n
  | other ->
    Alcotest.failf "%s: expected Ok_int, got %s" label
      (Format.asprintf "%a" Syscall.pp_result other)

let expect_data label r =
  match (r : Syscall.result) with
  | Syscall.Ok_data s -> s
  | other ->
    Alcotest.failf "%s: expected Ok_data, got %s" label
      (Format.asprintf "%a" Syscall.pp_result other)

let expect_pair label r =
  match (r : Syscall.result) with
  | Syscall.Ok_pair (a, b) -> (a, b)
  | _ -> Alcotest.failf "%s: expected Ok_pair" label

let expect_err label e r =
  match (r : Syscall.result) with
  | Syscall.Error e' when e = e' -> ()
  | other ->
    Alcotest.failf "%s: expected error %s, got %s" label (Errno.to_string e)
      (Format.asprintf "%a" Syscall.pp_result other)

let run_in_kernel ?seed ?sock_buf body =
  let k = Kernel.create ?seed ?sock_buf () in
  let result = ref None in
  let _p =
    Kernel.spawn_process k ~name:"test" ~vm_seed:7 (fun () ->
        result := Some (body k))
  in
  Kernel.run k;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "test body did not complete"

(* The stream behind an fd of the current process. *)
let stream_of_fd fd =
  let p = (Sched.self ()).Proc.proc in
  match Hashtbl.find_opt p.Proc.fds fd with
  | Some { Proc.kind = Proc.Stream s; _ } -> s
  | _ -> Alcotest.fail "expected a stream fd"

let set_nonblock fd =
  ignore
    (expect_int "fcntl"
       (sys (Syscall.Fcntl (fd, Syscall.F_setfl { nonblock = true }))))

(* ------------------------------------------------------------------ *)
(* Backlog enforcement *)

let test_backlog_refusal () =
  run_in_kernel (fun _k ->
      let self = Sched.self () in
      self.Proc.proc.Proc.entry_table <-
        [|
          (fun () ->
            let sfd =
              expect_int "socket"
                (sys (Syscall.Socket (Syscall.Af_inet, Syscall.Sock_stream)))
            in
            ignore (expect_int "bind" (sys (Syscall.Bind (sfd, 7000))));
            ignore (expect_int "listen" (sys (Syscall.Listen (sfd, 1))));
            (* never accepts: the single backlog slot stays occupied *)
            Sched.compute (Vtime.ms 50));
        |];
      ignore (expect_int "clone" (sys (Syscall.Clone 0)));
      Sched.compute (Vtime.ms 1);
      let c1 =
        expect_int "socket"
          (sys (Syscall.Socket (Syscall.Af_inet, Syscall.Sock_stream)))
      in
      ignore (expect_int "first connect" (sys (Syscall.Connect (c1, 7000))));
      let c2 =
        expect_int "socket"
          (sys (Syscall.Socket (Syscall.Af_inet, Syscall.Sock_stream)))
      in
      expect_err "backlog full refuses" Errno.ECONNREFUSED
        (sys (Syscall.Connect (c2, 7000))))

let test_backlog_recovery_via_retry () =
  (* connect_retry rides out ECONNREFUSED: once the server drains the
     backlog with accept, a retried connect succeeds. *)
  run_in_kernel (fun _k ->
      let self = Sched.self () in
      self.Proc.proc.Proc.entry_table <-
        [|
          (fun () ->
            let sfd =
              expect_int "socket"
                (sys (Syscall.Socket (Syscall.Af_inet, Syscall.Sock_stream)))
            in
            ignore (expect_int "bind" (sys (Syscall.Bind (sfd, 7001))));
            ignore (expect_int "listen" (sys (Syscall.Listen (sfd, 1))));
            (* hold the backlog full for a while, then drain it *)
            Sched.compute (Vtime.ms 2);
            ignore (sys (Syscall.Accept sfd));
            ignore (sys (Syscall.Accept sfd)));
        |];
      ignore (expect_int "clone" (sys (Syscall.Clone 0)));
      Sched.compute (Vtime.ms 1);
      let c1 = Api.socket () in
      Api.connect_retry c1 7001;
      let c2 = Api.socket () in
      (* fills only after the first pending connection is accepted *)
      Api.connect_retry c2 7001;
      check_bool "both connected" true true)

(* ------------------------------------------------------------------ *)
(* Send-buffer caps: EAGAIN, partial writes, blocking, wakeups *)

let test_nonblock_partial_and_eagain () =
  run_in_kernel (fun _k ->
      let a, b =
        expect_pair "socketpair"
          (sys (Syscall.Socketpair (Syscall.Af_unix, Syscall.Sock_stream)))
      in
      (* shrink b's receive buffer to the 256-byte floor *)
      ignore (expect_int "setsockopt" (sys (Syscall.Setsockopt (b, Net.so_rcvbuf, 1))));
      check_int "getsockopt reads floor" Net.min_bufcap
        (expect_int "getsockopt" (sys (Syscall.Getsockopt (b, Net.so_rcvbuf))));
      set_nonblock a;
      let n = expect_int "first write" (sys (Syscall.Write (a, String.make 300 'x'))) in
      check_int "partial write up to the cap" Net.min_bufcap n;
      expect_err "buffer full" Errno.EAGAIN (sys (Syscall.Write (a, "y")));
      (* cap invariant on the receiving stream *)
      let sb = stream_of_fd b in
      check_bool "buffered <= cap" true (Net.buffered sb <= Net.stream_cap sb);
      (* drain and the writer has space again *)
      let got = expect_data "drain" (sys (Syscall.Read (b, 4096))) in
      check_int "drained what was accepted" Net.min_bufcap (String.length got);
      let n2 = expect_int "write after drain" (sys (Syscall.Write (a, String.make 100 'z'))) in
      check_int "accepted after drain" 100 n2;
      check_bool "hwm never exceeded cap" true
        (Net.buffered_hwm sb <= Net.stream_cap sb))

let test_blocking_send_wakes_on_drain () =
  run_in_kernel (fun _k ->
      let self = Sched.self () in
      let total = 1000 in
      let received = ref 0 in
      self.Proc.proc.Proc.entry_table <- [||];
      let a, b =
        expect_pair "socketpair"
          (sys (Syscall.Socketpair (Syscall.Af_unix, Syscall.Sock_stream)))
      in
      ignore (expect_int "setsockopt" (sys (Syscall.Setsockopt (b, Net.so_rcvbuf, 1))));
      self.Proc.proc.Proc.entry_table <-
        [|
          (fun () ->
            (* reader thread: drain slowly until everything arrived *)
            while !received < total do
              Sched.compute (Vtime.us 50);
              let d = expect_data "read" (sys (Syscall.Read (b, 128))) in
              received := !received + String.length d
            done);
        |];
      ignore (expect_int "clone" (sys (Syscall.Clone 0)));
      (* blocking write of 4x the receive cap: must complete in full *)
      let n = expect_int "blocking write" (sys (Syscall.Write (a, String.make total 'w'))) in
      check_int "full count after blocking" total n;
      let sb = stream_of_fd b in
      check_bool "hwm stayed within cap" true
        (Net.buffered_hwm sb <= Net.stream_cap sb);
      (* let the reader finish *)
      while !received < total do
        Sched.compute (Vtime.us 200)
      done;
      check_int "reader got every byte" total !received)

let test_epoll_writability_edge () =
  run_in_kernel (fun _k ->
      let a, b =
        expect_pair "socketpair"
          (sys (Syscall.Socketpair (Syscall.Af_unix, Syscall.Sock_stream)))
      in
      ignore (expect_int "setsockopt" (sys (Syscall.Setsockopt (b, Net.so_rcvbuf, 1))));
      set_nonblock a;
      let epfd = expect_int "epoll_create" (sys Syscall.Epoll_create) in
      ignore
        (expect_int "epoll_ctl"
           (sys
              (Syscall.Epoll_ctl
                 {
                   epfd;
                   op = Syscall.Epoll_add;
                   fd = a;
                   events = Syscall.ev_out;
                   user_data = 0xF00L;
                 })));
      (* writable while there is space *)
      (match sys (Syscall.Epoll_wait { epfd; max_events = 8; timeout_ns = Some 0 }) with
      | Syscall.Ok_epoll [ (ud, ev) ] ->
        check_bool "pollout before fill" true (Int64.equal ud 0xF00L && ev.Syscall.pollout)
      | _ -> Alcotest.fail "expected writable before fill");
      (* fill the peer's receive buffer: no longer writable *)
      ignore (expect_int "fill" (sys (Syscall.Write (a, String.make 256 'x'))));
      (match sys (Syscall.Epoll_wait { epfd; max_events = 8; timeout_ns = Some 0 }) with
      | Syscall.Ok_epoll [] -> ()
      | _ -> Alcotest.fail "expected not writable when full");
      (* drain in another thread; a blocking epoll_wait reports the edge *)
      let self = Sched.self () in
      self.Proc.proc.Proc.entry_table <-
        [|
          (fun () ->
            Sched.compute (Vtime.ms 1);
            ignore (expect_data "drain" (sys (Syscall.Read (b, 4096)))));
        |];
      ignore (expect_int "clone" (sys (Syscall.Clone 0)));
      match sys (Syscall.Epoll_wait { epfd; max_events = 8; timeout_ns = None }) with
      | Syscall.Ok_epoll [ (ud, ev) ] ->
        check_bool "pollout after drain" true (Int64.equal ud 0xF00L && ev.Syscall.pollout)
      | _ -> Alcotest.fail "expected writable after drain")

(* ------------------------------------------------------------------ *)
(* Cap invariant under a replicated server workload *)

let test_cap_invariant_under_load () =
  (* run a real server bench with a tiny socket buffer and assert, while
     the simulation runs, that no live stream ever exceeds its cap *)
  let sock_buf = 1024 in
  let kernel = Kernel.create ~seed:42 ~net_latency:(Vtime.us 100) ~sock_buf () in
  let config =
    { Mvee.default_config with Mvee.backend = Mvee.Remon; nreplicas = 2;
      policy = Policy.spatial Classification.Socket_rw_level }
  in
  let server = Servers.redis in
  let client = Clients.wrk ~concurrency:8 ~total_requests:80 () in
  let h =
    Mvee.launch kernel config ~name:"capcheck" ~body:(Servers.body server)
  in
  let meas = Clients.launch kernel server client in
  let violations = ref 0 in
  let checks = ref 0 in
  let rec audit () =
    incr checks;
    Hashtbl.iter
      (fun _pid (p : Proc.process) ->
        Hashtbl.iter
          (fun _fd (d : Proc.desc) ->
            match d.Proc.kind with
            | Proc.Stream s ->
              if Net.buffered s > Net.stream_cap s
                 || Net.buffered_hwm s > Net.stream_cap s
              then incr violations
            | _ -> ())
          p.Proc.fds)
      (Kernel.state kernel).Kstate.procs;
    if !checks < 2000 then
      Kernel.schedule kernel
        ~time:(Vtime.add (Kernel.now kernel) (Vtime.us 20))
        audit
  in
  Kernel.schedule kernel ~time:(Vtime.us 100) audit;
  Kernel.run kernel;
  ignore (Mvee.finish h);
  check_bool "many audits ran" true (!checks > 100);
  check_int "no stream ever exceeded its cap" 0 !violations;
  check_int "all responses still served under tiny buffers"
    client.Clients.total_requests meas.Clients.responses

(* ------------------------------------------------------------------ *)
(* Epoll shadow map: untranslatable events *)

let test_epoll_map_untranslatable () =
  let em = Epoll_map.create ~nreplicas:2 in
  Epoll_map.register em ~variant:0 ~fd:5 ~user_data:0xA5L;
  Epoll_map.register em ~variant:1 ~fd:5 ~user_data:0xB5L;
  (* one registered event, one the master never registered *)
  let events = [ (0xA5L, Syscall.ev_in); (0x5005L, Syscall.ev_in) ] in
  let logical = Epoll_map.to_logical em events in
  check_int "both survive to_logical" 2 (List.length logical);
  (match logical with
  | [ (Epoll_map.Lfd 5, _); (Epoll_map.Lopaque raw, _) ] ->
    check_bool "original cookie preserved" true (Int64.equal raw 0x5005L)
  | _ -> Alcotest.fail "unexpected logical shape");
  (* round-trip through the RB's int64 wire encoding *)
  List.iter
    (fun (l, _) ->
      check_bool "encode/decode round-trips" true (Epoll_map.decode (Epoll_map.encode l) = l))
    logical;
  (* slave view: translated fd becomes its own cookie, opaque passes through *)
  (match Epoll_map.to_variant em ~variant:1 logical with
  | [ (ud1, _); (ud2, _) ] ->
    check_bool "slave cookie" true (Int64.equal ud1 0xB5L);
    check_bool "opaque passed through verbatim" true (Int64.equal ud2 0x5005L)
  | _ -> Alcotest.fail "unexpected slave view");
  check_int "nothing dropped so far" 0 (Epoll_map.untranslatable em);
  (* an fd the slave never registered is dropped and counted, not invented *)
  let slave_view =
    Epoll_map.to_variant em ~variant:1 [ (Epoll_map.Lfd 9, Syscall.ev_in) ]
  in
  check_int "unregistered fd dropped" 0 (List.length slave_view);
  check_int "drop counted" 1 (Epoll_map.untranslatable em);
  (* negative unregistered cookies cannot travel the wire: dropped+counted *)
  let logical' = Epoll_map.to_logical em [ (-7L, Syscall.ev_in) ] in
  check_int "negative cookie dropped" 0 (List.length logical');
  check_int "negative drop counted" 2 (Epoll_map.untranslatable em)

(* ------------------------------------------------------------------ *)
(* Latency reservoir *)

let test_reservoir_exact_and_decimated () =
  let r = Latency.create ~cap:8 () in
  for i = 1 to 1000 do
    Latency.record r (Vtime.us i)
  done;
  check_int "exact count survives decimation" 1000 (Latency.count r);
  check_bool "exact max" true (Latency.max_sample r = Vtime.us 1000);
  let sm = Latency.summary r in
  check_bool "mean exact" true
    (abs_float (sm.Latency.mean_ns -. 500_500.0) < 1.0);
  check_bool "p50 in range" true
    (Vtime.compare sm.Latency.p50 (Vtime.us 1) >= 0
    && Vtime.compare sm.Latency.p50 (Vtime.us 1000) <= 0);
  check_bool "p99 >= p50" true (Vtime.compare sm.Latency.p99 sm.Latency.p50 >= 0)

let test_reservoir_percentiles () =
  let r = Latency.create () in
  for i = 1 to 100 do
    Latency.record r (Vtime.ms i)
  done;
  let sm = Latency.summary r in
  check_bool "p50" true (sm.Latency.p50 = Vtime.ms 50);
  check_bool "p90" true (sm.Latency.p90 = Vtime.ms 90);
  check_bool "p99" true (sm.Latency.p99 = Vtime.ms 99);
  check_bool "max" true (sm.Latency.max = Vtime.ms 100)

let bench_summary () =
  let config =
    { Mvee.default_config with Mvee.backend = Mvee.Remon; nreplicas = 2;
      policy = Policy.spatial Classification.Socket_rw_level }
  in
  let r =
    Runner.run_server_bench ~latency:(Vtime.us 100) ~server:Servers.redis
      ~client:(Clients.wrk ~concurrency:8 ~total_requests:80 ())
      config
  in
  Latency.summary_to_string r.Runner.latency

let test_reservoir_determinism_across_domains () =
  (* identical simulations fanned over 1 vs 4 domains must produce
     byte-identical latency summaries *)
  let jobs = [ (); (); (); () ] in
  let one = Remon_util.Pool.map ~domains:1 (fun () -> bench_summary ()) jobs in
  let four = Remon_util.Pool.map ~domains:4 (fun () -> bench_summary ()) jobs in
  List.iter2 (Alcotest.(check string) "domains 1 vs 4 summary") one four;
  match one with
  | first :: rest ->
    List.iter (Alcotest.(check string) "all jobs identical" first) rest
  | [] -> Alcotest.fail "no results"

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "backpressure"
    [
      ( "backlog",
        [
          tc "refusal when full" `Quick test_backlog_refusal;
          tc "connect_retry recovers" `Quick test_backlog_recovery_via_retry;
        ] );
      ( "buffers",
        [
          tc "nonblock partial + EAGAIN" `Quick test_nonblock_partial_and_eagain;
          tc "blocking send wakes on drain" `Quick test_blocking_send_wakes_on_drain;
          tc "epoll writability edge" `Quick test_epoll_writability_edge;
          tc "cap invariant under load" `Quick test_cap_invariant_under_load;
        ] );
      ( "epoll-map",
        [ tc "untranslatable events" `Quick test_epoll_map_untranslatable ] );
      ( "latency",
        [
          tc "exact stats + decimation" `Quick test_reservoir_exact_and_decimated;
          tc "percentiles" `Quick test_reservoir_percentiles;
          tc "determinism domains 1 vs 4" `Quick test_reservoir_determinism_across_domains;
        ] );
    ]
