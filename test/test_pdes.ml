(* Sharded (PDES) runs: cross-host gateway socket semantics, and the
   determinism contract — the same scenario run with any shard count must
   produce byte-identical digests, recordings and trace exports. *)

open Remon_kernel
open Remon_core
open Remon_sim
open Remon_workloads

let sys = Sched.syscall

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Harness: a small world with hand-written process bodies per host. *)

let make_world ?(latency = Vtime.us 200) n =
  World.create ~link_latency:latency ~n
    ~mk:(fun i -> Kernel.create ~seed:(41 + i) ())
    ()

let spawn w i name body =
  ignore
    (Kernel.spawn_process (World.kernel w i) ~name ~vm_seed:(17 + i) (fun () ->
         body ()))

(* ------------------------------------------------------------------ *)
(* Cross-host socket semantics *)

let test_cross_host_echo () =
  let w = make_world 2 in
  World.route w ~port:7000 ~host:0;
  let got = ref "" and eof = ref false and reply = ref "" in
  spawn w 0 "server" (fun () ->
      let sfd = Api.socket () in
      Api.bind sfd 7000;
      Api.listen sfd 8;
      let a = Api.accept sfd in
      got := Api.recv_exactly a.Syscall.conn_fd 5;
      ignore (Api.send a.Syscall.conn_fd "world!");
      Api.close a.Syscall.conn_fd);
  spawn w 1 "client" (fun () ->
      let fd = Api.socket () in
      Api.connect_retry fd 7000;
      ignore (Api.send fd "hello");
      reply := Api.recv_exactly fd 6;
      (* server closed: FIN arrives, reads hit EOF after the drain *)
      eof := String.length (Api.recv fd 64) = 0;
      Api.close fd);
  World.run w;
  check_string "request" "hello" !got;
  check_string "reply" "world!" !reply;
  check_bool "eof after fin" true !eof

let test_cross_host_refused () =
  let w = make_world 2 in
  (* routed to host 0, but nothing ever listens there *)
  World.route w ~port:7999 ~host:0;
  let refused = ref false and exhausted = ref false in
  spawn w 1 "client" (fun () ->
      let fd = Api.socket () in
      (match sys (Syscall.Connect (fd, 7999)) with
      | Syscall.Error Errno.ECONNREFUSED -> refused := true
      | _ -> ());
      (try Api.connect_retry ~attempts:3 fd 7999
       with Api.Connect_retries_exhausted _ -> exhausted := true));
  World.run w;
  check_bool "blocking connect refused" true !refused;
  check_bool "retry budget exhausted" true !exhausted

let test_cross_host_bulk_backpressure () =
  (* Far more data than any buffer: the credit window must throttle the
     sender and every byte must arrive, in order. *)
  let total = 1_000_000 in
  let chunk = String.init 4096 (fun i -> Char.chr (i land 0xff)) in
  let w = make_world 2 in
  World.route w ~port:7000 ~host:0;
  let received = Buffer.create total in
  spawn w 0 "sink" (fun () ->
      let sfd = Api.socket () in
      Api.bind sfd 7000;
      Api.listen sfd 8;
      let a = Api.accept sfd in
      let rec drain () =
        let d = Api.recv a.Syscall.conn_fd 65536 in
        if String.length d > 0 then begin
          Buffer.add_string received d;
          (* a slow consumer: forces the window to close periodically *)
          Api.compute 20_000;
          drain ()
        end
      in
      drain ();
      Api.close a.Syscall.conn_fd);
  spawn w 1 "source" (fun () ->
      let fd = Api.socket () in
      Api.connect_retry fd 7000;
      let sent = ref 0 in
      while !sent < total do
        let n = min (String.length chunk) (total - !sent) in
        let wrote = Api.send fd (String.sub chunk 0 n) in
        sent := !sent + wrote
      done;
      Api.close fd);
  World.run w;
  check_int "bytes delivered" total (Buffer.length received);
  (* spot-check content integrity at a few offsets *)
  let all = Buffer.contents received in
  List.iter
    (fun off ->
      check_int
        (Printf.sprintf "byte at %d" off)
        (off mod 4096 land 0xff)
        (Char.code all.[off]))
    [ 0; 4095; 40960; 999_999 ]

let test_cross_host_half_close () =
  (* shutdown(SHUT_WR) then read the response: the classic pattern that
     breaks if FIN tears down both directions *)
  let w = make_world 2 in
  World.route w ~port:7000 ~host:0;
  let request = ref "" and response = ref "" in
  spawn w 0 "server" (fun () ->
      let sfd = Api.socket () in
      Api.bind sfd 7000;
      Api.listen sfd 8;
      let a = Api.accept sfd in
      (* read until EOF — only the client's half-close ends this *)
      let buf = Buffer.create 64 in
      let rec drain () =
        let d = Api.recv a.Syscall.conn_fd 64 in
        if String.length d > 0 then begin
          Buffer.add_string buf d;
          drain ()
        end
      in
      drain ();
      request := Buffer.contents buf;
      ignore (Api.send a.Syscall.conn_fd ("ack:" ^ Buffer.contents buf));
      Api.close a.Syscall.conn_fd);
  spawn w 1 "client" (fun () ->
      let fd = Api.socket () in
      Api.connect_retry fd 7000;
      ignore (Api.send fd "GET /");
      ignore (Api.retrying "shutdown" (Syscall.Shutdown (fd, Syscall.Shut_wr)));
      response := Api.recv_exactly fd 9;
      Api.close fd);
  World.run w;
  check_string "request survives half-close" "GET /" !request;
  check_string "response flows after half-close" "ack:GET /" !response

let test_cross_host_reset_on_closed_peer () =
  (* data racing a peer close: the remote stack answers RST and the local
     writer observes EPIPE instead of blocking on exhausted credit *)
  let w = make_world 2 in
  World.route w ~port:7000 ~host:0;
  let epipe = ref false in
  spawn w 0 "slammer" (fun () ->
      let sfd = Api.socket () in
      Api.bind sfd 7000;
      Api.listen sfd 8;
      let a = Api.accept sfd in
      Api.close a.Syscall.conn_fd);
  spawn w 1 "writer" (fun () ->
      let fd = Api.socket () in
      (* like any real network writer: EPIPE, not death by SIGPIPE *)
      Api.sigaction Sigdefs.sigpipe Syscall.Sig_ignore;
      Api.connect_retry fd 7000;
      (try
         for _ = 1 to 500 do
           ignore (Api.send fd (String.make 1024 'x'));
           Api.nanosleep 100_000
         done
       with Api.Sys_error (Errno.EPIPE, _) -> epipe := true);
      Api.close fd);
  World.run w;
  check_bool "writer sees EPIPE after RST" true !epipe;
  let _, _, resets = Hostnet.stats (World.hostnet w 0) in
  check_bool "server gateway sent a reset" true (resets > 0)

let test_three_host_fan_in () =
  (* two client hosts hammer one server host concurrently; conn ids must
     not collide and every request must be answered *)
  let w = make_world 3 in
  World.route w ~port:7000 ~host:0;
  let answered = Array.make 2 0 in
  spawn w 0 "server" (fun () ->
      let sfd = Api.socket () in
      Api.bind sfd 7000;
      Api.listen sfd 16;
      for _ = 1 to 10 do
        let a = Api.accept sfd in
        let q = Api.recv_exactly a.Syscall.conn_fd 4 in
        ignore (Api.send a.Syscall.conn_fd ("re:" ^ q));
        Api.close a.Syscall.conn_fd
      done);
  for c = 0 to 1 do
    spawn w (c + 1)
      (Printf.sprintf "client%d" c)
      (fun () ->
        for r = 1 to 5 do
          let fd = Api.socket () in
          Api.connect_retry fd 7000;
          ignore (Api.send fd (Printf.sprintf "%d-%02d" c r));
          let rep = Api.recv_exactly fd 7 in
          if String.length rep = 7 && String.sub rep 0 3 = "re:" then
            answered.(c) <- answered.(c) + 1;
          Api.close fd
        done)
  done;
  World.run w;
  check_int "client 0 answered" 5 answered.(0);
  check_int "client 1 answered" 5 answered.(1)

(* ------------------------------------------------------------------ *)
(* The determinism contract *)

let compare_results label (a : Topology.result) (b : Topology.result) =
  check_string (label ^ ": digest") a.Topology.digest b.Topology.digest;
  check_int (label ^ ": recording count")
    (List.length a.Topology.recordings)
    (List.length b.Topology.recordings);
  List.iter2
    (fun (h1, r1) (h2, r2) ->
      check_int (label ^ ": recording host") h1 h2;
      check_string
        (Printf.sprintf "%s: recording bytes (host %d)" label h1)
        (Recording.to_string r1) (Recording.to_string r2))
    a.Topology.recordings b.Topology.recordings;
  List.iter2
    (fun (h1, t1) (h2, t2) ->
      check_int (label ^ ": trace host") h1 h2;
      check_string (Printf.sprintf "%s: trace (host %d)" label h1) t1 t2)
    a.Topology.traces b.Topology.traces

let test_shard_invariance_corpus () =
  List.iter
    (fun sc ->
      let label = Printf.sprintf "scenario %d" sc.Topology.id in
      let r1 = Topology.run ~shards:1 ~with_obs:true sc in
      (* the runs must do real work, or the comparison is vacuous *)
      check_bool (label ^ ": responses flowed") true (r1.Topology.responses > 0);
      check_bool (label ^ ": multiple rounds") true (r1.Topology.rounds > 1);
      let r2 = Topology.run ~shards:2 ~with_obs:true sc in
      compare_results (label ^ " 1v2") r1 r2;
      let rn =
        Topology.run ~shards:(sc.Topology.server_hosts + 1) ~with_obs:true sc
      in
      compare_results (label ^ " 1vN") r1 rn)
    (Topology.corpus ~n:4)

let test_shard_invariance_with_faults () =
  (* chaos on host 0 (delay or crash) must not perturb shard invariance *)
  let base =
    {
      Topology.id = 900;
      seed = 424_242;
      server_hosts = 3;
      nreplicas = 2;
      backend = Mvee.Remon;
      arch = Servers.Epoll_loop;
      requests_per_server = 10;
      concurrency = 2;
      requests_per_conn = 2;
      link_latency = Vtime.us 250;
      faults = "delay@9:1=800us";
      record = true;
    }
  in
  List.iter
    (fun faults ->
      let sc = { base with Topology.faults } in
      let r1 = Topology.run ~shards:1 sc in
      let r4 = Topology.run ~shards:4 sc in
      compare_results ("faults=" ^ faults) r1 r4)
    [ "delay@9:1=800us"; "crash@15:1" ]

let test_digest_independent_of_obs () =
  let sc = List.hd (Topology.corpus ~n:1) in
  let bare = Topology.run ~shards:1 sc in
  let traced = Topology.run ~shards:1 ~with_obs:true sc in
  check_string "digest ignores tracing" bare.Topology.digest
    traced.Topology.digest;
  check_bool "traces collected when asked" true
    (List.length traced.Topology.traces > 0)

let test_oversubscribed_shards () =
  (* more shards than hosts: clamped, still identical *)
  let sc = List.hd (Topology.corpus ~n:1) in
  let r1 = Topology.run ~shards:1 sc in
  let r9 = Topology.run ~shards:9 sc in
  compare_results "oversubscribed" r1 r9

(* ------------------------------------------------------------------ *)
(* Adaptive lookahead: conservative safety and mode invariance.

   The fixed (single-latency) mode is the reference CMB algorithm, so it
   doubles as the conservative-safety oracle: if the adaptive bounds ever
   let a cross-host message act earlier than the single-latency bound
   would allow, some delivery interleaving changes and the digest
   diverges. On top of that, World.drain_round fail-stops outright if a
   drained message's delivery time is already in a shard's past — the
   direct "never delivered early" check, always on, in every run below. *)

let test_mode_invariance_corpus () =
  List.iter
    (fun sc ->
      let label = Printf.sprintf "scenario %d" sc.Topology.id in
      let ad = Topology.run ~shards:1 sc in
      let fx1 = Topology.run ~shards:1 ~mode:World.Fixed sc in
      compare_results (label ^ " adaptive v fixed") ad fx1;
      let fx2 = Topology.run ~shards:2 ~mode:World.Fixed sc in
      compare_results (label ^ " adaptive v fixed s2") ad fx2)
    (Topology.corpus ~n:2)

let test_herd_invariance () =
  let herd =
    {
      Topology.h_seed = 7;
      cells = 3;
      conns_per_cell = 5;
      rounds_per_conn = 2;
      payload = 32;
      think_ns = 1_000_000;
      stagger_ns = 200_000;
      h_link_latency = Vtime.us 150;
    }
  in
  let r1 = Topology.run_herd ~shards:1 herd in
  check_int "every request served" (3 * 5 * 2) r1.Topology.hr_served;
  check_int "every response arrived" (3 * 5 * 2) r1.Topology.hr_responses;
  check_int "no errors" 0 r1.Topology.hr_errors;
  check_bool "multiple rounds" true (r1.Topology.hr_rounds > 1);
  let r2 = Topology.run_herd ~shards:2 herd in
  let rn = Topology.run_herd ~shards:6 herd in
  let fx = Topology.run_herd ~shards:2 ~mode:World.Fixed herd in
  check_string "herd digest 1v2" r1.Topology.hr_digest r2.Topology.hr_digest;
  check_string "herd digest 1vN" r1.Topology.hr_digest rn.Topology.hr_digest;
  check_string "herd digest adaptive v fixed" r1.Topology.hr_digest
    fx.Topology.hr_digest;
  check_bool "adaptive needs no more rounds than fixed" true
    (r1.Topology.hr_rounds <= fx.Topology.hr_rounds)

let gen_herd =
  QCheck2.Gen.(
    map
      (fun ((cells, conns, rounds), (payload, think_us, stagger_us), lat_us, seed) ->
        {
          Topology.h_seed = seed;
          cells;
          conns_per_cell = conns;
          rounds_per_conn = rounds;
          payload;
          think_ns = think_us * 1_000;
          stagger_ns = stagger_us * 1_000;
          h_link_latency = Vtime.us lat_us;
        })
      (quad
         (triple (int_range 1 4) (int_range 1 6) (int_range 1 3))
         (triple (int_range 1 96) (int_range 0 1500) (int_range 10 800))
         (int_range 50 400) (int_range 0 10_000)))

let prop_adaptive_conservative =
  QCheck2.Test.make
    ~name:"adaptive lookahead never beats the single-latency oracle" ~count:25
    gen_herd
    (fun herd ->
      (* sharded adaptive vs sequential fixed: one digest check covers
         both axes at once, and each run re-verifies the in-kernel
         delivered-in-the-past fail-stop *)
      let ad = Topology.run_herd ~shards:2 herd in
      let fx = Topology.run_herd ~shards:1 ~mode:World.Fixed herd in
      if ad.Topology.hr_digest <> fx.Topology.hr_digest then
        QCheck2.Test.fail_reportf
          "digest diverged for %s:\nadaptive(s2): %s\nfixed(s1):    %s"
          (Topology.render_herd herd) ad.Topology.hr_digest
          fx.Topology.hr_digest;
      true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "pdes"
    [
      ( "gateway",
        [
          Alcotest.test_case "cross-host echo + EOF" `Quick
            test_cross_host_echo;
          Alcotest.test_case "connect refused over the wire" `Quick
            test_cross_host_refused;
          Alcotest.test_case "bulk transfer under credit backpressure" `Quick
            test_cross_host_bulk_backpressure;
          Alcotest.test_case "half-close keeps the reverse path" `Quick
            test_cross_host_half_close;
          Alcotest.test_case "reset on data-after-close" `Quick
            test_cross_host_reset_on_closed_peer;
          Alcotest.test_case "three-host fan-in" `Quick test_three_host_fan_in;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "corpus: shards 1 = 2 = N" `Slow
            test_shard_invariance_corpus;
          Alcotest.test_case "fault chaos is shard-invariant" `Slow
            test_shard_invariance_with_faults;
          Alcotest.test_case "digest independent of tracing" `Quick
            test_digest_independent_of_obs;
          Alcotest.test_case "shards clamp to host count" `Quick
            test_oversubscribed_shards;
        ] );
      ( "adaptive lookahead",
        [
          Alcotest.test_case "corpus: adaptive = fixed" `Slow
            test_mode_invariance_corpus;
          Alcotest.test_case "herd: shards and modes agree" `Quick
            test_herd_invariance;
          QCheck_alcotest.to_alcotest prop_adaptive_conservative;
        ] );
    ]
