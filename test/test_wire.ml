(* Property tests for the binary wire codec (Syswire) and the recording
   container (Recording): encode/decode round-trip identity over randomized
   calls, results and event streams, and totality on malformed input —
   truncated or bit-flipped recordings must fail with a typed error, never
   an escaping exception or an out-of-bounds read. *)

open Remon_kernel
open Remon_core

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_small = QCheck2.Gen.int_range 0 4096
let gen_fd = QCheck2.Gen.int_range 0 255
let gen_i64 = QCheck2.Gen.(map Int64.of_int int)
let gen_str = QCheck2.Gen.(string_size ~gen:printable (int_range 0 40))

let gen_flags =
  QCheck2.Gen.(
    map
      (fun (read, write, create, (trunc, append, nonblock)) ->
        { Syscall.read; write; create; trunc; append; nonblock })
      (quad bool bool bool (triple bool bool bool)))

let gen_events =
  QCheck2.Gen.(
    map
      (fun (pollin, pollout, pollhup, pollerr) ->
        { Syscall.pollin; pollout; pollhup; pollerr })
      (quad bool bool bool bool))

let gen_prot =
  QCheck2.Gen.(
    map (fun (pr, pw, px) -> { Syscall.pr; pw; px }) (triple bool bool bool))

let gen_timeout = QCheck2.Gen.(option (int_range 0 1_000_000))

let gen_itimer =
  QCheck2.Gen.(
    map
      (fun (interval_ns, value_ns) -> { Syscall.interval_ns; value_ns })
      (pair gen_small gen_small))

(* One generator case per payload shape the codec distinguishes; every
   field that feeds [W.uint] stays non-negative by construction. *)
let gen_call : Syscall.call QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [
      oneofl
        [
          Syscall.Gettimeofday; Syscall.Time; Syscall.Getpid; Syscall.Gettid;
          Syscall.Getcwd; Syscall.Uname; Syscall.Sched_yield; Syscall.Sync;
          Syscall.Pipe; Syscall.Epoll_create; Syscall.Fork;
          Syscall.Rt_sigreturn; Syscall.Pause; Syscall.Setsid;
        ];
      map (fun c -> Syscall.Clock_gettime c) (oneofl [ `Realtime; `Monotonic ]);
      map (fun n -> Syscall.Nanosleep n) gen_small;
      map (fun n -> Syscall.Getrandom n) gen_small;
      map
        (fun (addr, expected, timeout_ns) ->
          Syscall.Futex (Syscall.Futex_wait { addr; expected; timeout_ns }))
        (triple gen_i64 gen_small gen_timeout);
      map
        (fun (addr, count) ->
          Syscall.Futex (Syscall.Futex_wake { addr; count }))
        (pair gen_i64 gen_small);
      map
        (fun (fd, op) -> Syscall.Ioctl (fd, op))
        (pair gen_fd
           (oneofl
              [
                Syscall.Fionread; Syscall.Fionbio true; Syscall.Fionbio false;
                Syscall.Tiocgwinsz;
              ]));
      map
        (fun (fd, op) -> Syscall.Fcntl (fd, op))
        (pair gen_fd
           (oneof
              [
                return Syscall.F_getfl;
                map (fun nonblock -> Syscall.F_setfl { nonblock }) bool;
                map (fun n -> Syscall.F_dupfd n) gen_fd;
              ]));
      map (fun p -> Syscall.Stat p) gen_str;
      map (fun fd -> Syscall.Fstat fd) gen_fd;
      map
        (fun (fd, off, whence) -> Syscall.Lseek (fd, off, whence))
        (triple gen_fd (int_range (-4096) 4096)
           (oneofl [ Syscall.Seek_set; Syscall.Seek_cur; Syscall.Seek_end ]));
      map (fun (p, a) -> Syscall.Getxattr (p, a)) (pair gen_str gen_str);
      map
        (fun (addr, len) -> Syscall.Madvise { addr; len })
        (pair gen_i64 gen_small);
      map (fun (fd, n) -> Syscall.Read (fd, n)) (pair gen_fd gen_small);
      map
        (fun (fd, lens) -> Syscall.Readv (fd, lens))
        (pair gen_fd (list_size (int_range 0 6) gen_small));
      map
        (fun (fd, n, off) -> Syscall.Pread64 (fd, n, off))
        (triple gen_fd gen_small gen_small);
      map
        (fun (readfds, writefds, timeout_ns) ->
          Syscall.Select { readfds; writefds; timeout_ns })
        (triple
           (list_size (int_range 0 5) gen_fd)
           (list_size (int_range 0 5) gen_fd)
           gen_timeout);
      map
        (fun (fds, timeout_ns) -> Syscall.Poll { fds; timeout_ns })
        (pair (list_size (int_range 0 5) (pair gen_fd gen_events)) gen_timeout);
      map (fun (fd, s) -> Syscall.Write (fd, s)) (pair gen_fd gen_str);
      map
        (fun (fd, ss) -> Syscall.Writev (fd, ss))
        (pair gen_fd (list_size (int_range 0 4) gen_str));
      map
        (fun (fd, s, off) -> Syscall.Pwrite64 (fd, s, off))
        (triple gen_fd gen_str gen_small);
      map
        (fun (epfd, max_events, timeout_ns) ->
          Syscall.Epoll_wait { epfd; max_events; timeout_ns })
        (triple gen_fd (int_range 1 64) gen_timeout);
      map
        (fun ((epfd, op, fd), (events, user_data)) ->
          Syscall.Epoll_ctl { epfd; op; fd; events; user_data })
        (pair
           (triple gen_fd
              (oneofl [ Syscall.Epoll_add; Syscall.Epoll_mod; Syscall.Epoll_del ])
              gen_fd)
           (pair gen_events gen_i64));
      map (fun (fd, s) -> Syscall.Sendto (fd, s)) (pair gen_fd gen_str);
      map
        (fun (out_fd, in_fd, count) -> Syscall.Sendfile { out_fd; in_fd; count })
        (triple gen_fd gen_fd gen_small);
      map (fun (p, f) -> Syscall.Open (p, f)) (pair gen_str gen_flags);
      map (fun fd -> Syscall.Close fd) gen_fd;
      map
        (fun (d, t) -> Syscall.Socket (d, t))
        (pair
           (oneofl [ Syscall.Af_inet; Syscall.Af_unix ])
           (oneofl [ Syscall.Sock_stream; Syscall.Sock_dgram ]));
      map (fun (fd, port) -> Syscall.Bind (fd, port)) (pair gen_fd gen_small);
      map
        (fun (fd, nonblock) -> Syscall.Accept4 { fd; nonblock })
        (pair gen_fd bool);
      map (fun (a, b) -> Syscall.Rename (a, b)) (pair gen_str gen_str);
      map
        (fun (len, prot, kind) -> Syscall.Mmap { len; prot; kind })
        (triple gen_small gen_prot
           (oneof
              [
                return Syscall.Map_anon;
                return Syscall.Map_shared_anon;
                map (fun fd -> Syscall.Map_file fd) gen_fd;
              ]));
      map
        (fun (addr, len) -> Syscall.Munmap { addr; len })
        (pair gen_i64 gen_small);
      map
        (fun (addr, old_len, new_len) -> Syscall.Mremap { addr; old_len; new_len })
        (triple gen_i64 gen_small gen_small);
      map (fun n -> Syscall.Brk n) gen_small;
      map (fun n -> Syscall.Exit n) (int_range 0 255);
      map (fun (pid, sg) -> Syscall.Kill (pid, sg)) (pair gen_small (int_range 1 31));
      map
        (fun (sg, act) -> Syscall.Rt_sigaction (sg, act))
        (pair (int_range 1 31)
           (oneof
              [
                return Syscall.Sig_default;
                return Syscall.Sig_ignore;
                map (fun id -> Syscall.Sig_handler id) gen_small;
              ]));
      map
        (fun (how, sigs) -> Syscall.Rt_sigprocmask (how, sigs))
        (pair
           (oneofl [ Syscall.Sig_block; Syscall.Sig_unblock; Syscall.Sig_setmask ])
           (list_size (int_range 0 5) (int_range 1 31)));
      map
        (fun (key, size, create) -> Syscall.Shmget { key; size; create })
        (triple gen_small gen_small bool);
      map
        (fun (shmid, readonly) -> Syscall.Shmat { shmid; readonly })
        (pair gen_small bool);
      map (fun addr -> Syscall.Shmdt { addr }) gen_i64;
      map
        (fun (calls, rb_addr, entry_addr) ->
          Syscall.Ipmon_register { calls; rb_addr; entry_addr })
        (triple
           (map
              (fun n -> List.filteri (fun i _ -> i mod (n + 1) = 0) Sysno.all)
              (int_range 0 7))
           gen_i64 gen_i64);
      map (fun i -> Syscall.Setitimer i) gen_itimer;
    ]

let gen_errno =
  QCheck2.Gen.oneofl
    [
      Errno.EPERM; Errno.ENOENT; Errno.EINTR; Errno.EIO; Errno.EBADF;
      Errno.EAGAIN; Errno.ENOMEM; Errno.EACCES; Errno.EFAULT; Errno.EEXIST;
      Errno.EINVAL; Errno.ENFILE; Errno.EMFILE; Errno.ENOSPC; Errno.EPIPE;
      Errno.ECONNRESET; Errno.ECONNREFUSED; Errno.ETIMEDOUT; Errno.ENOSYS;
    ]

let gen_stat =
  QCheck2.Gen.(
    map
      (fun ((st_ino, st_size), (st_kind, st_mtime_ns)) ->
        { Syscall.st_ino; st_size; st_kind; st_mtime_ns })
      (pair (pair gen_small gen_small)
         (pair (oneofl [ `Reg; `Dir; `Fifo; `Sock; `Special ]) gen_small)))

let gen_result : Syscall.result QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [
      return Syscall.Ok_unit;
      map (fun n -> Syscall.Ok_int n) int;
      map (fun n -> Syscall.Ok_int64 n) gen_i64;
      map (fun s -> Syscall.Ok_data s) gen_str;
      map (fun s -> Syscall.Ok_str s) gen_str;
      map (fun s -> Syscall.Ok_stat s) gen_stat;
      map (fun (a, b) -> Syscall.Ok_pair (a, b)) (pair gen_fd gen_fd);
      map
        (fun l -> Syscall.Ok_poll l)
        (list_size (int_range 0 5) (pair gen_fd gen_events));
      map
        (fun l -> Syscall.Ok_epoll l)
        (list_size (int_range 0 5) (pair gen_i64 gen_events));
      map
        (fun (conn_fd, peer_port) -> Syscall.Ok_accept { conn_fd; peer_port })
        (pair gen_fd gen_small);
      map (fun l -> Syscall.Ok_dents l) (list_size (int_range 0 5) gen_str);
      map (fun i -> Syscall.Ok_itimer i) gen_itimer;
      map (fun e -> Syscall.Error e) gen_errno;
    ]

let gen_event : Recording.event QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [
      map
        (fun ((rank, call), result) -> Recording.Call { rank; call; result })
        (pair (pair (int_range 0 7) gen_call) gen_result);
      map
        (fun (lock_id, thread_rank) -> Recording.Lock { lock_id; thread_rank })
        (pair gen_small (int_range 0 7));
      map
        (fun (rank, signo) -> Recording.Signal { rank; signo })
        (pair (int_range 0 7) (int_range 1 31));
      map
        (fun (reason, count) -> Recording.Flush { reason; count })
        (pair (oneofl [ "full"; "deadline"; "barrier"; "overflow"; "demand" ])
           gen_small);
    ]

let gen_recording : Recording.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  map
    (fun ((backend, seed, workload), (events, verdict)) ->
      {
        Recording.header =
          {
            Recording.backend;
            nreplicas = 2;
            seed;
            level = "SOCKET_RW_LEVEL";
            on_failure = "kill-group";
            faults = "";
            workload;
            shm_key = 0;
          };
        events = Array.of_list events;
        verdict;
      })
    (pair
       (triple
          (oneofl [ "native"; "ghumvee"; "varan"; "remon" ])
          gen_small gen_str)
       (pair
          (list_size (int_range 0 40) gen_event)
          (option (pair gen_str gen_str))))

(* ------------------------------------------------------------------ *)
(* Round-trip identity *)

let prop_call_roundtrip =
  QCheck2.Test.make ~name:"call encode/decode round-trips" ~count:2000 gen_call
    (fun call ->
      let w = Syswire.W.create () in
      Syswire.write_call w call;
      let r = Syswire.R.of_string (Syswire.W.contents w) in
      let back = Syswire.read_call r in
      Syscall.equal_call call back && Syswire.R.remaining r = 0)

let prop_result_roundtrip =
  QCheck2.Test.make ~name:"result encode/decode round-trips" ~count:2000
    gen_result (fun result ->
      let w = Syswire.W.create () in
      Syswire.write_result w result;
      let r = Syswire.R.of_string (Syswire.W.contents w) in
      let back = Syswire.read_result r in
      Syscall.equal_result result back && Syswire.R.remaining r = 0)

let equal_recording (a : Recording.t) (b : Recording.t) =
  a.Recording.header = b.Recording.header
  && a.Recording.verdict = b.Recording.verdict
  && Array.length a.Recording.events = Array.length b.Recording.events
  && Array.for_all2 Recording.equal_event a.Recording.events b.Recording.events

let prop_recording_roundtrip =
  QCheck2.Test.make ~name:"recording serialize/parse round-trips" ~count:300
    gen_recording (fun t ->
      match Recording.of_string (Recording.to_string t) with
      | Ok back -> equal_recording t back
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Totality on malformed input: typed error, never an exception *)

let decodes_with_typed_error s =
  match Recording.of_string s with
  | Ok _ -> false (* malformed input must not parse *)
  | Error (Syswire.Truncated | Syswire.Corrupt _) -> true
  | exception _ -> false

let prop_truncation_is_typed =
  QCheck2.Test.make ~name:"every strict prefix fails with a typed error"
    ~count:60
    QCheck2.Gen.(pair gen_recording (int_range 0 1_000_000))
    (fun (t, cut) ->
      let s = Recording.to_string t in
      let cut = cut mod String.length s in
      decodes_with_typed_error (String.sub s 0 cut))

let prop_bitflip_is_typed =
  QCheck2.Test.make ~name:"any single bit flip fails with a typed error"
    ~count:200
    QCheck2.Gen.(triple gen_recording (int_range 0 1_000_000) (int_range 0 7))
    (fun (t, pos, bit) ->
      let s = Bytes.of_string (Recording.to_string t) in
      let pos = pos mod Bytes.length s in
      Bytes.set s pos
        (Char.chr (Char.code (Bytes.get s pos) lxor (1 lsl bit)));
      decodes_with_typed_error (Bytes.to_string s))

let prop_trailing_bytes_rejected =
  QCheck2.Test.make ~name:"trailing bytes are rejected" ~count:60 gen_recording
    (fun t -> decodes_with_typed_error (Recording.to_string t ^ "\x00"))

let test_bad_magic () =
  match Recording.of_string "NOPE\x01rest" with
  | Error (Syswire.Corrupt _) -> ()
  | Error Syswire.Truncated -> Alcotest.fail "expected Corrupt, got Truncated"
  | Ok _ -> Alcotest.fail "bad magic parsed"

let test_unknown_version () =
  (* valid magic, version from the future: must fail typed, not raise *)
  let s = Recording.to_string (QCheck2.Gen.generate1 gen_recording) in
  let s = Bytes.of_string s in
  Bytes.set s 4 '\x63';
  match Recording.of_string (Bytes.to_string s) with
  | Error (Syswire.Corrupt msg) ->
    Alcotest.(check bool) "mentions version" true
      (String.length msg > 0)
  | Error Syswire.Truncated -> Alcotest.fail "expected Corrupt, got Truncated"
  | Ok _ -> Alcotest.fail "unknown version parsed"

let test_empty_and_garbage () =
  List.iter
    (fun s ->
      match Recording.of_string s with
      | Ok _ -> Alcotest.failf "garbage %S parsed" s
      | Error _ -> ())
    [ ""; "R"; "RMRC"; "RMRC\x01"; String.make 64 '\xff'; String.make 3 '\x00' ]

(* Varint edge cases straight through the W/R modules. *)
let test_varint_edges () =
  let round_int n =
    let w = Syswire.W.create () in
    Syswire.W.int w n;
    let r = Syswire.R.of_string (Syswire.W.contents w) in
    Alcotest.(check int) (Printf.sprintf "int %d" n) n (Syswire.R.int r)
  in
  List.iter round_int [ 0; 1; -1; 63; 64; -64; -65; max_int; min_int + 1 ];
  let round_i64 n =
    let w = Syswire.W.create () in
    Syswire.W.i64 w n;
    let r = Syswire.R.of_string (Syswire.W.contents w) in
    Alcotest.(check int64) (Int64.to_string n) n (Syswire.R.i64 r)
  in
  List.iter round_i64 [ 0L; 1L; -1L; Int64.max_int; Int64.min_int ];
  (* overlong/unterminated varints must fail typed *)
  (match Syswire.R.uint (Syswire.R.of_string (String.make 12 '\xff')) with
  | _ -> Alcotest.fail "overlong varint decoded"
  | exception Syswire.Fail _ -> ());
  match Syswire.R.uint (Syswire.R.of_string "\xff") with
  | _ -> Alcotest.fail "unterminated varint decoded"
  | exception Syswire.Fail _ -> ()

let () =
  Alcotest.run "wire"
    [
      ( "roundtrip",
        [
          QCheck_alcotest.to_alcotest prop_call_roundtrip;
          QCheck_alcotest.to_alcotest prop_result_roundtrip;
          QCheck_alcotest.to_alcotest prop_recording_roundtrip;
        ] );
      ( "malformed",
        [
          QCheck_alcotest.to_alcotest prop_truncation_is_typed;
          QCheck_alcotest.to_alcotest prop_bitflip_is_typed;
          QCheck_alcotest.to_alcotest prop_trailing_bytes_rejected;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "unknown version" `Quick test_unknown_version;
          Alcotest.test_case "empty and garbage" `Quick test_empty_and_garbage;
          Alcotest.test_case "varint edges" `Quick test_varint_edges;
        ] );
    ]
