(* Kernel substrate tests: scheduler, VFS, pipes, sockets, futexes, epoll,
   signals, timers, shared memory, /proc/self/maps. *)

open Remon_kernel
open Remon_sim

let sys = Sched.syscall
let vnow = Sched.vnow

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let expect_int label r =
  match (r : Syscall.result) with
  | Syscall.Ok_int n -> n
  | other ->
    Alcotest.failf "%s: expected Ok_int, got %s" label
      (Format.asprintf "%a" Syscall.pp_result other)

let expect_data label r =
  match (r : Syscall.result) with
  | Syscall.Ok_data s -> s
  | other ->
    Alcotest.failf "%s: expected Ok_data, got %s" label
      (Format.asprintf "%a" Syscall.pp_result other)

let expect_pair label r =
  match (r : Syscall.result) with
  | Syscall.Ok_pair (a, b) -> (a, b)
  | _ -> Alcotest.failf "%s: expected Ok_pair" label

let expect_err label e r =
  match (r : Syscall.result) with
  | Syscall.Error e' when e = e' -> ()
  | other ->
    Alcotest.failf "%s: expected error %s, got %s" label (Errno.to_string e)
      (Format.asprintf "%a" Syscall.pp_result other)

(* Runs [body] as the sole process of a fresh kernel and returns a value the
   body stored. *)
let run_in_kernel ?seed body =
  let k = Kernel.create ?seed () in
  let result = ref None in
  let _p =
    Kernel.spawn_process k ~name:"test" ~vm_seed:7 (fun () ->
        result := Some (body k))
  in
  Kernel.run k;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "test body did not complete"

(* ------------------------------------------------------------------ *)

let test_getpid_and_time () =
  run_in_kernel (fun _k ->
      let pid = expect_int "getpid" (sys Syscall.Getpid) in
      check_bool "pid is assigned" true (pid >= 1000);
      (match sys (Syscall.Clock_gettime `Monotonic) with
      | Syscall.Ok_int64 t0 ->
        Sched.compute (Vtime.us 500);
        let t1 =
          match sys (Syscall.Clock_gettime `Monotonic) with
          | Syscall.Ok_int64 t -> t
          | _ -> Alcotest.fail "clock_gettime"
        in
        check_bool "time advances across compute" true
          (Int64.compare t1 (Int64.add t0 (Int64.of_int (Vtime.us 500))) >= 0)
      | _ -> Alcotest.fail "clock_gettime failed"))

let test_file_roundtrip () =
  run_in_kernel (fun _k ->
      let flags = { Syscall.o_rdwr with create = true } in
      let fd = expect_int "open" (sys (Syscall.Open ("/tmp/data.txt", flags))) in
      let n = expect_int "write" (sys (Syscall.Write (fd, "hello world"))) in
      check_int "write length" 11 n;
      ignore (expect_int "lseek" (sys (Syscall.Lseek (fd, 0, Syscall.Seek_set))));
      let data = expect_data "read" (sys (Syscall.Read (fd, 64))) in
      check_str "read back" "hello world" data;
      let stat =
        match sys (Syscall.Fstat fd) with
        | Syscall.Ok_stat s -> s
        | _ -> Alcotest.fail "fstat"
      in
      check_int "size" 11 stat.st_size;
      ignore (expect_int "close" (sys (Syscall.Close fd)));
      expect_err "read after close" Errno.EBADF (sys (Syscall.Read (fd, 1))))

let test_pread_pwrite () =
  run_in_kernel (fun _k ->
      let flags = { Syscall.o_rdwr with create = true } in
      let fd = expect_int "open" (sys (Syscall.Open ("/tmp/pp.bin", flags))) in
      ignore (expect_int "pwrite" (sys (Syscall.Pwrite64 (fd, "abcdef", 4))));
      let d = expect_data "pread" (sys (Syscall.Pread64 (fd, 3, 5))) in
      check_str "pread content" "bcd" d;
      (* offset must be untouched by positional I/O *)
      let whole = expect_data "read" (sys (Syscall.Read (fd, 64))) in
      check_int "file size" 10 (String.length whole))

let test_pipe_blocking () =
  (* Reader blocks until the writer thread produces data. *)
  run_in_kernel (fun _k ->
      let rfd, wfd = expect_pair "pipe" (sys Syscall.Pipe) in
      let self = Sched.self () in
      let p = self.Proc.proc in
      p.Proc.entry_table <-
        [|
          (fun () ->
            Sched.compute (Vtime.ms 2);
            ignore (sys (Syscall.Write (wfd, "ping"))));
        |];
      ignore (expect_int "clone" (sys (Syscall.Clone 0)));
      let t0 = vnow () in
      let data = expect_data "read" (sys (Syscall.Read (rfd, 16))) in
      check_str "pipe data" "ping" data;
      check_bool "reader waited for writer" true Vtime.(vnow () - t0 >= Vtime.ms 2))

let test_pipe_eof_and_epipe () =
  run_in_kernel (fun k ->
      let rfd, wfd = expect_pair "pipe" (sys Syscall.Pipe) in
      ignore (sys (Syscall.Write (wfd, "x")));
      ignore (sys (Syscall.Close wfd));
      let d1 = expect_data "read data" (sys (Syscall.Read (rfd, 4))) in
      check_str "buffered data" "x" d1;
      let d2 = expect_data "read eof" (sys (Syscall.Read (rfd, 4))) in
      check_str "eof" "" d2;
      (* writing to a reader-less pipe: EPIPE + SIGPIPE (ignored here) *)
      let rfd2, wfd2 = expect_pair "pipe2" (sys Syscall.Pipe) in
      ignore (sys (Syscall.Rt_sigaction (Sigdefs.sigpipe, Syscall.Sig_ignore)));
      ignore (sys (Syscall.Close rfd2));
      expect_err "epipe" Errno.EPIPE (sys (Syscall.Write (wfd2, "y")));
      ignore k)

let test_nonblock_read () =
  run_in_kernel (fun _k ->
      let rfd, wfd = expect_pair "pipe" (sys Syscall.Pipe) in
      ignore
        (expect_int "fcntl"
           (sys (Syscall.Fcntl (rfd, Syscall.F_setfl { nonblock = true }))));
      expect_err "eagain" Errno.EAGAIN (sys (Syscall.Read (rfd, 4)));
      ignore (sys (Syscall.Write (wfd, "data")));
      let d = expect_data "read" (sys (Syscall.Read (rfd, 4))) in
      check_str "nonblocking read succeeds when ready" "data" d)

let test_socket_roundtrip () =
  (* Server thread accepts one connection and echoes; main connects. *)
  run_in_kernel (fun k ->
      let self = Sched.self () in
      let p = self.Proc.proc in
      let port = 8080 in
      p.Proc.entry_table <-
        [|
          (fun () ->
            let sfd = expect_int "socket" (sys (Syscall.Socket (Syscall.Af_inet, Syscall.Sock_stream))) in
            ignore (expect_int "bind" (sys (Syscall.Bind (sfd, port))));
            ignore (expect_int "listen" (sys (Syscall.Listen (sfd, 16))));
            match sys (Syscall.Accept sfd) with
            | Syscall.Ok_accept { conn_fd; _ } ->
              let req = expect_data "server read" (sys (Syscall.Read (conn_fd, 64))) in
              ignore (sys (Syscall.Write (conn_fd, "echo:" ^ req)));
              ignore (sys (Syscall.Close conn_fd))
            | _ -> Alcotest.fail "accept");
        |];
      ignore (expect_int "clone" (sys (Syscall.Clone 0)));
      Sched.compute (Vtime.ms 1) (* give the server time to listen *);
      let cfd = expect_int "socket" (sys (Syscall.Socket (Syscall.Af_inet, Syscall.Sock_stream))) in
      let t0 = vnow () in
      ignore (expect_int "connect" (sys (Syscall.Connect (cfd, port))));
      let handshake = Vtime.sub (vnow ()) t0 in
      check_bool "connect paid at least 2x one-way latency" true
        Vtime.(handshake >= Vtime.scale (Kernel.net k).Net.latency 2.);
      ignore (sys (Syscall.Write (cfd, "hi")));
      let resp = expect_data "client read" (sys (Syscall.Read (cfd, 64))) in
      check_str "echoed" "echo:hi" resp)

let test_connect_refused () =
  run_in_kernel (fun _k ->
      let cfd = expect_int "socket" (sys (Syscall.Socket (Syscall.Af_inet, Syscall.Sock_stream))) in
      expect_err "refused" Errno.ECONNREFUSED (sys (Syscall.Connect (cfd, 9999))))

let test_socketpair () =
  run_in_kernel (fun _k ->
      let a, b = expect_pair "socketpair" (sys (Syscall.Socketpair (Syscall.Af_unix, Syscall.Sock_stream))) in
      ignore (sys (Syscall.Write (a, "m1")));
      let d = expect_data "read" (sys (Syscall.Read (b, 8))) in
      check_str "socketpair data" "m1" d)

let test_futex_wait_wake () =
  run_in_kernel (fun _k ->
      let self = Sched.self () in
      let p = self.Proc.proc in
      let addr = 0x7000_0000_0000L in
      Vm.write_word p.Proc.vm addr 1;
      p.Proc.entry_table <-
        [|
          (fun () ->
            Sched.compute (Vtime.ms 1);
            Vm.write_word p.Proc.vm addr 0;
            ignore
              (sys (Syscall.Futex (Syscall.Futex_wake { addr; count = 1 }))));
        |];
      ignore (expect_int "clone" (sys (Syscall.Clone 0)));
      let r =
        sys
          (Syscall.Futex
             (Syscall.Futex_wait { addr; expected = 1; timeout_ns = None }))
      in
      check_int "futex woke" 0 (expect_int "futex_wait" r);
      check_int "word updated" 0 (Vm.read_word p.Proc.vm addr))

let test_futex_wrong_value () =
  run_in_kernel (fun _k ->
      let addr = 0x7000_0000_1000L in
      expect_err "eagain" Errno.EAGAIN
        (sys
           (Syscall.Futex
              (Syscall.Futex_wait { addr; expected = 5; timeout_ns = None }))))

let test_futex_timeout () =
  run_in_kernel (fun _k ->
      let addr = 0x7000_0000_2000L in
      let t0 = vnow () in
      expect_err "timeout" Errno.ETIMEDOUT
        (sys
           (Syscall.Futex
              (Syscall.Futex_wait
                 { addr; expected = 0; timeout_ns = Some (Vtime.ms 3) })));
      check_bool "waited" true Vtime.(vnow () - t0 >= Vtime.ms 3))

let test_epoll () =
  run_in_kernel (fun _k ->
      let rfd, wfd = expect_pair "pipe" (sys Syscall.Pipe) in
      let epfd = expect_int "epoll_create" (sys Syscall.Epoll_create) in
      ignore
        (expect_int "epoll_ctl"
           (sys
              (Syscall.Epoll_ctl
                 {
                   epfd;
                   op = Syscall.Epoll_add;
                   fd = rfd;
                   events = Syscall.ev_in;
                   user_data = 0xDEADBEEFL;
                 })));
      (* not ready: zero timeout returns empty *)
      (match sys (Syscall.Epoll_wait { epfd; max_events = 8; timeout_ns = Some 0 }) with
      | Syscall.Ok_epoll [] -> ()
      | _ -> Alcotest.fail "expected no events");
      let self = Sched.self () in
      self.Proc.proc.Proc.entry_table <-
        [|
          (fun () ->
            Sched.compute (Vtime.ms 1);
            ignore (sys (Syscall.Write (wfd, "!"))));
        |];
      ignore (expect_int "clone" (sys (Syscall.Clone 0)));
      match sys (Syscall.Epoll_wait { epfd; max_events = 8; timeout_ns = None }) with
      | Syscall.Ok_epoll [ (ud, ev) ] ->
        check_bool "user data preserved" true (Int64.equal ud 0xDEADBEEFL);
        check_bool "readable" true ev.Syscall.pollin
      | _ -> Alcotest.fail "expected one epoll event")

let test_epoll_timeout () =
  run_in_kernel (fun _k ->
      let epfd = expect_int "epoll_create" (sys Syscall.Epoll_create) in
      let t0 = vnow () in
      (match
         sys
           (Syscall.Epoll_wait
              { epfd; max_events = 4; timeout_ns = Some (Vtime.ms 2) })
       with
      | Syscall.Ok_epoll [] -> ()
      | _ -> Alcotest.fail "expected timeout with no events");
      check_bool "timeout elapsed" true Vtime.(vnow () - t0 >= Vtime.ms 2))

let test_signal_default_kill () =
  let k = Kernel.create () in
  let reached_end = ref false in
  let p =
    Kernel.spawn_process k ~name:"victim" ~vm_seed:3 (fun () ->
        (* SIGTERM arrives mid-nanosleep; default action terminates *)
        ignore (sys (Syscall.Nanosleep (Vtime.ms 10)));
        reached_end := true)
  in
  Kernel.schedule k ~time:(Vtime.ms 1) (fun () -> Kernel.post_signal k p Sigdefs.sigterm);
  Kernel.run k;
  Alcotest.(check bool) "process killed before completing" false !reached_end;
  Alcotest.(check bool) "process dead" false p.Proc.alive;
  Alcotest.(check int) "exit code 128+15" 143 p.Proc.exit_code

let test_signal_eintr_and_handler () =
  let k = Kernel.create () in
  let observed = ref [] in
  let p =
    Kernel.spawn_process k ~name:"handler" ~vm_seed:4 (fun () ->
        ignore (sys (Syscall.Rt_sigaction (Sigdefs.sigusr1, Syscall.Sig_handler 7)));
        let r = sys (Syscall.Nanosleep (Vtime.ms 50)) in
        observed := [ r ];
        let self = Sched.self () in
        (* the kernel queued the handler id for the program runtime *)
        if List.of_seq (Queue.to_seq self.Proc.pending_delivery) <> [ Sigdefs.sigusr1 ]
        then
          observed := Syscall.Error Errno.EINVAL :: !observed)
  in
  Kernel.schedule k ~time:(Vtime.ms 2) (fun () -> Kernel.post_signal k p Sigdefs.sigusr1);
  Kernel.run k;
  match !observed with
  | [ Syscall.Error Errno.EINTR ] -> ()
  | _ -> Alcotest.fail "expected EINTR with queued handler"

let test_alarm () =
  let k = Kernel.create () in
  let fired = ref false in
  let _p =
    Kernel.spawn_process k ~name:"alarm" ~vm_seed:5 (fun () ->
        ignore (sys (Syscall.Rt_sigaction (Sigdefs.sigalrm, Syscall.Sig_handler 1)));
        ignore (sys (Syscall.Alarm 1));
        let r = sys (Syscall.Nanosleep (Vtime.s 5)) in
        (match r with
        | Syscall.Error Errno.EINTR -> fired := true
        | _ -> ());
        ())
  in
  Kernel.run k;
  Alcotest.(check bool) "alarm interrupted the sleep" true !fired

let test_shm_share_words () =
  (* Two processes attach the same segment and see each other's writes. *)
  let k = Kernel.create () in
  let observed = ref (-1) in
  let _writer =
    Kernel.spawn_process k ~name:"writer" ~vm_seed:6 (fun () ->
        let shmid =
          expect_int "shmget"
            (sys (Syscall.Shmget { key = 77; size = 4096; create = true }))
        in
        match sys (Syscall.Shmat { shmid; readonly = false }) with
        | Syscall.Ok_int64 addr ->
          let self = Sched.self () in
          Vm.write_word self.Proc.proc.Proc.vm addr 4242
        | _ -> Alcotest.fail "shmat")
  in
  let _reader =
    Kernel.spawn_process k ~name:"reader" ~vm_seed:7 (fun () ->
        Sched.compute (Vtime.ms 1);
        let shmid =
          expect_int "shmget2"
            (sys (Syscall.Shmget { key = 77; size = 4096; create = true }))
        in
        match sys (Syscall.Shmat { shmid; readonly = false }) with
        | Syscall.Ok_int64 addr ->
          let self = Sched.self () in
          observed := Vm.read_word self.Proc.proc.Proc.vm addr
        | _ -> Alcotest.fail "shmat2")
  in
  Kernel.run k;
  Alcotest.(check int) "shared word visible across processes" 4242 !observed

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_proc_maps () =
  run_in_kernel (fun _k ->
      let self = Sched.self () in
      let p = self.Proc.proc in
      ignore
        (Vm.map p.Proc.vm ~len:8192
           ~prot:{ Syscall.pr = true; pw = true; px = false }
           ~backing:Vm.Anon ~tag:"test-region");
      let fd = expect_int "open maps" (sys (Syscall.Open ("/proc/self/maps", Syscall.o_rdonly))) in
      let content = expect_data "read maps" (sys (Syscall.Read (fd, 65536))) in
      check_bool "contains our region" true (contains content "test-region"))

let test_dents_and_dirs () =
  run_in_kernel (fun _k ->
      ignore (expect_int "mkdir" (sys (Syscall.Mkdir "/tmp/d1")));
      ignore
        (expect_int "creat" (sys (Syscall.Creat "/tmp/d1/f1")));
      ignore
        (expect_int "creat2" (sys (Syscall.Creat "/tmp/d1/f2")));
      let fd = expect_int "open dir" (sys (Syscall.Open ("/tmp/d1", Syscall.o_rdonly))) in
      match sys (Syscall.Getdents fd) with
      | Syscall.Ok_dents names ->
        Alcotest.(check (list string)) "entries" [ "f1"; "f2" ] names
      | _ -> Alcotest.fail "getdents")

let test_select () =
  run_in_kernel (fun _k ->
      let rfd, wfd = expect_pair "pipe" (sys Syscall.Pipe) in
      (match
         sys
           (Syscall.Select
              { readfds = [ rfd ]; writefds = [ wfd ]; timeout_ns = Some 0 })
       with
      | Syscall.Ok_poll ready ->
        check_int "only writer ready" 1 (List.length ready);
        check_int "writer fd" wfd (fst (List.hd ready))
      | _ -> Alcotest.fail "select");
      ignore (sys (Syscall.Write (wfd, "z")));
      match
        sys (Syscall.Select { readfds = [ rfd ]; writefds = []; timeout_ns = None })
      with
      | Syscall.Ok_poll [ (fd, ev) ] ->
        check_int "reader ready" rfd fd;
        check_bool "pollin" true ev.Syscall.pollin
      | _ -> Alcotest.fail "select 2")

let test_nanosleep_duration () =
  run_in_kernel (fun _k ->
      let t0 = vnow () in
      (match sys (Syscall.Nanosleep (Vtime.ms 7)) with
      | Syscall.Ok_unit -> ()
      | _ -> Alcotest.fail "nanosleep");
      check_bool "slept >= 7ms" true Vtime.(vnow () - t0 >= Vtime.ms 7))

let test_dup_shares_offset () =
  run_in_kernel (fun _k ->
      let flags = { Syscall.o_rdwr with create = true } in
      let fd = expect_int "open" (sys (Syscall.Open ("/tmp/dup.txt", flags))) in
      ignore (sys (Syscall.Write (fd, "abcdef")));
      let fd2 = expect_int "dup" (sys (Syscall.Dup fd)) in
      ignore (expect_int "lseek via dup" (sys (Syscall.Lseek (fd2, 1, Syscall.Seek_set))));
      let d = expect_data "read via original" (sys (Syscall.Read (fd, 2))) in
      check_str "offset shared" "bc" d)

let test_wait4 () =
  let k = Kernel.create () in
  let waited = ref (-1) in
  let parent = ref None in
  let child =
    Kernel.spawn_process k ~name:"child" ~vm_seed:8 (fun () ->
        Sched.compute (Vtime.ms 3);
        ignore (sys (Syscall.Exit_group 0)))
  in
  let p =
    Kernel.spawn_process k ~name:"parent" ~vm_seed:9 (fun () ->
        waited := expect_int "wait4" (sys (Syscall.Wait4 (-1))))
  in
  child.Proc.parent_pid <- p.Proc.pid;
  parent := Some p;
  Kernel.run k;
  Alcotest.(check int) "reaped child pid" child.Proc.pid !waited

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "kernel"
    [
      ( "basics",
        [
          tc "getpid and virtual time" test_getpid_and_time;
          tc "file round trip" test_file_roundtrip;
          tc "pread/pwrite" test_pread_pwrite;
          tc "getdents" test_dents_and_dirs;
          tc "dup shares offset" test_dup_shares_offset;
          tc "nanosleep" test_nanosleep_duration;
        ] );
      ( "pipes",
        [
          tc "blocking read" test_pipe_blocking;
          tc "eof and epipe" test_pipe_eof_and_epipe;
          tc "nonblocking read" test_nonblock_read;
        ] );
      ( "sockets",
        [
          tc "connect/accept/echo" test_socket_roundtrip;
          tc "connection refused" test_connect_refused;
          tc "socketpair" test_socketpair;
        ] );
      ( "futex",
        [
          tc "wait/wake" test_futex_wait_wake;
          tc "wrong value" test_futex_wrong_value;
          tc "timeout" test_futex_timeout;
        ] );
      ( "epoll+select",
        [
          tc "epoll readiness" test_epoll;
          tc "epoll timeout" test_epoll_timeout;
          tc "select" test_select;
        ] );
      ( "signals",
        [
          tc "default kill" test_signal_default_kill;
          tc "eintr + handler queue" test_signal_eintr_and_handler;
          tc "alarm" test_alarm;
        ] );
      ( "memory",
        [ tc "shm words shared" test_shm_share_words; tc "/proc/self/maps" test_proc_maps ] );
      ("processes", [ tc "wait4" test_wait4 ]);
    ]
