(* The batched syscall ring (lib/core/syscall_ring.ml).

   The determinism contract under test: the ring re-schedules *when*
   records reach the replication buffer, never their order or content, so
   verdicts and replica-visible digests are invariant under the batch
   size and the flush deadline — only virtual time moves. Plus the
   arbitration corner the ring must not break: an RB overflow/reset while
   part of a batch is still in flight (a blocked call holding an unfilled
   slot while other threads keep submitting). *)

open Remon_kernel
open Remon_core
open Remon_sim
open Remon_util
open Remon_workloads

(* ------------------------------------------------------------------ *)
(* Deterministic digest workloads (test_fuzz's observable-result rules:
   byte counts, read data, errnos — never virtual time) *)

type op =
  | File_rw of string * int
  | Pipe_rw of string
  | Sock_rw of string
  | Open_close
  | Compute of int (* microseconds *)

let digest_result buf tag (r : Syscall.result) =
  Buffer.add_string buf tag;
  Buffer.add_string buf
    (match r with
    | Syscall.Ok_unit -> "u"
    | Syscall.Ok_int n -> string_of_int n
    | Syscall.Ok_data s -> "d:" ^ s
    | Syscall.Error e -> "e:" ^ Errno.to_string e
    | _ -> "?");
  Buffer.add_char buf '|'

let gen_ops ~seed ~nops =
  let rng = Rng.make (0x12164 + (seed * 0x9E3779B1)) in
  List.init nops (fun j ->
      let payload =
        Printf.sprintf "r%d.%d.%s" seed j
          (String.init
             (1 + Rng.int_in_range rng ~lo:0 ~hi:23)
             (fun _ ->
               Char.chr (Char.code 'a' + Rng.int_in_range rng ~lo:0 ~hi:25)))
      in
      match Rng.int_in_range rng ~lo:0 ~hi:7 with
      | 0 | 1 | 2 -> File_rw (payload, Rng.int_in_range rng ~lo:0 ~hi:4096)
      | 3 | 4 -> Pipe_rw payload
      | 5 -> Sock_rw payload
      | 6 -> Open_close
      | _ -> Compute (Rng.int_in_range rng ~lo:5 ~hi:120))

let body ops (digests : string array) (env : Mvee.env) =
  let sys = Sched.syscall in
  let buf = Buffer.create 512 in
  let data_fd =
    Api.open_file ~flags:{ Syscall.o_rdwr with create = true } "/tmp/ring-data"
  in
  let pipe_r, pipe_w = Api.pipe () in
  let sock_a, sock_b = Api.socketpair () in
  List.iter
    (fun op ->
      match op with
      | File_rw (s, off) ->
        digest_result buf "w" (sys (Syscall.Pwrite64 (data_fd, s, off)));
        digest_result buf "r"
          (sys (Syscall.Pread64 (data_fd, String.length s, off)))
      | Pipe_rw s ->
        digest_result buf "pw" (sys (Syscall.Write (pipe_w, s)));
        digest_result buf "pr" (sys (Syscall.Read (pipe_r, String.length s)))
      | Sock_rw s ->
        digest_result buf "ss" (sys (Syscall.Sendto (sock_a, s)));
        digest_result buf "sr" (sys (Syscall.Recvfrom (sock_b, String.length s)))
      | Open_close -> (
        match
          sys
            (Syscall.Open
               ("/tmp/ring-scratch", { Syscall.o_rdwr with create = true }))
        with
        | Syscall.Ok_int fd -> digest_result buf "c" (sys (Syscall.Close fd))
        | r -> digest_result buf "o" r)
      | Compute us -> Sched.compute (Vtime.us us))
    ops;
  digests.(env.Mvee.variant) <- Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Running one workload under one backend at one ring setting *)

let run ?(nreplicas = 3) ?(seed = 7) ?(flush_us = 50) ?rb_size
    ?(level = Classification.Nonsocket_rw_level) ~backend ~batch body =
  let mode_override =
    (* only the in-process engines consult the ring; leave GHUMVEE-only
       and native runs on their backend-default modes *)
    match backend with
    | Mvee.Varan ->
      Some
        {
          Context.varan_mode with
          Context.ring_batch = batch;
          ring_flush_ns = Vtime.us flush_us;
        }
    | Mvee.Remon ->
      Some
        {
          Context.remon_mode with
          Context.ring_batch = batch;
          ring_flush_ns = Vtime.us flush_us;
        }
    | _ -> None
  in
  let nreplicas = match backend with Mvee.Native -> 1 | _ -> nreplicas in
  let policy =
    match backend with
    | Mvee.Ghumvee_only -> Policy.monitor_everything
    | _ -> Policy.spatial level
  in
  let config =
    {
      Mvee.default_config with
      Mvee.backend;
      nreplicas;
      seed;
      policy;
      mode_override;
      rb_size =
        (match rb_size with
        | Some b -> b
        | None -> Replication_buffer.default_size);
    }
  in
  let digests = Array.make nreplicas "<unfinished>" in
  let kernel = Kernel.create ~seed () in
  let h = Mvee.launch kernel config ~name:"ring-test" ~body:(body digests) in
  Kernel.run kernel;
  (Mvee.finish h, digests)

let verdict_str (o : Mvee.outcome) =
  match o.Mvee.verdict with
  | None -> "clean"
  | Some v -> Divergence.to_string v

(* One comparable line per run: everything that must be batch-invariant. *)
let summary (o : Mvee.outcome) (digests : string array) =
  Printf.sprintf "%s / %s" (verdict_str o)
    (String.concat " ; " (Array.to_list digests))

(* ------------------------------------------------------------------ *)
(* 1. Digests and verdicts are invariant under the batch size *)

let batch_backends = [ Mvee.Ghumvee_only; Mvee.Varan; Mvee.Remon ]

let test_batch_invariance () =
  let ops = gen_ops ~seed:3 ~nops:40 in
  List.iter
    (fun backend ->
      let name = Mvee.backend_to_string backend in
      let o1, d1 = run ~backend ~batch:1 (body ops) in
      Alcotest.(check string) (name ^ " batch 1 clean") "clean" (verdict_str o1);
      List.iter
        (fun batch ->
          let ob, db = run ~backend ~batch (body ops) in
          Alcotest.(check string)
            (Printf.sprintf "%s batch %d = batch 1" name batch)
            (summary o1 d1) (summary ob db))
        [ 8; 64 ])
    batch_backends

(* The sanity companion: at batch > 1 the in-process engines really did
   route records through the ring, within the declared batch bound. *)
let test_ring_stats_sane () =
  let ops = gen_ops ~seed:5 ~nops:60 in
  List.iter
    (fun backend ->
      let name = Mvee.backend_to_string backend in
      let o, _ = run ~backend ~batch:8 (body ops) in
      Alcotest.(check bool) (name ^ " flushed") true (o.Mvee.ring_flushes > 0);
      Alcotest.(check bool)
        (name ^ " records flowed") true
        (o.Mvee.ring_records > 0);
      Alcotest.(check bool)
        (name ^ " records within rb total") true
        (o.Mvee.ring_records <= o.Mvee.rb_records);
      Alcotest.(check bool)
        (name ^ " batch bound") true
        (o.Mvee.ring_max_batch <= 8))
    [ Mvee.Varan; Mvee.Remon ];
  (* batch=1 must not even create the ring *)
  let o, _ = run ~backend:Mvee.Remon ~batch:1 (body ops) in
  Alcotest.(check int) "no ring at batch 1" 0 o.Mvee.ring_flushes

(* ------------------------------------------------------------------ *)
(* 2. RB overflow/reset arbitration with a partial batch in flight.

   A helper thread parks a blocking pipe read in the ring (an unfilled
   slot) while the main thread's writes overflow a deliberately tiny RB:
   the reset must drain around the in-flight slot, and once the main
   thread feeds the pipe, the parked record must still reach the slaves
   with its payload intact. The helper works on its own file and fds, so
   every digested result is scheduling-invariant and the digests can be
   compared across batch sizes and backends. *)

let overflow_body (digests : string array) (env : Mvee.env) =
  let sys = Sched.syscall in
  let main_buf = Buffer.create 512 in
  let helper_buf = Buffer.create 512 in
  let helper_done = ref false in
  let pipe_r, pipe_w = Api.pipe () in
  let helper_fd =
    Api.open_file ~flags:{ Syscall.o_rdwr with create = true } "/tmp/ring-ovf-h"
  in
  ignore
    (env.Mvee.spawn_thread (fun () ->
         (* blocks until the main thread has overflowed the RB: this
            call's ring slot stays in flight across the reset *)
         digest_result helper_buf "hr" (sys (Syscall.Read (pipe_r, 9)));
         for j = 0 to 11 do
           let s = Printf.sprintf "helper-%02d-%s" j (String.make 80 'h') in
           digest_result helper_buf "hw"
             (sys (Syscall.Pwrite64 (helper_fd, s, j * 128)));
           digest_result helper_buf "hrd"
             (sys (Syscall.Pread64 (helper_fd, String.length s, j * 128)))
         done;
         helper_done := true));
  let main_fd =
    Api.open_file ~flags:{ Syscall.o_rdwr with create = true } "/tmp/ring-ovf-m"
  in
  let main_rw j =
    let s = Printf.sprintf "main-%02d-%s" j (String.make 200 'm') in
    digest_result main_buf "mw" (sys (Syscall.Pwrite64 (main_fd, s, j * 256)));
    digest_result main_buf "mr"
      (sys (Syscall.Pread64 (main_fd, String.length s, j * 256)))
  in
  (* a few records while the helper's read is parked in flight — then feed
     the pipe BEFORE the buffer can overflow: an overflow wait needs the
     slaves fully drained, and they cannot drain past a blocked call's
     unresulted record, so the blocking window must not overlap the waits *)
  for j = 0 to 3 do
    main_rw j
  done;
  digest_result main_buf "mp" (sys (Syscall.Write (pipe_w, "unblocked")));
  (* now overflow the tiny RB several times over, concurrently with the
     helper's stream, so drains and resets hit in-flight slots *)
  for j = 4 to 59 do
    main_rw j
  done;
  Sched.wait_user (fun () -> !helper_done);
  digests.(env.Mvee.variant) <-
    Buffer.contents main_buf ^ "##" ^ Buffer.contents helper_buf

let overflow_backends =
  [ Mvee.Native; Mvee.Ghumvee_only; Mvee.Varan; Mvee.Remon ]

let test_overflow_partial_batch () =
  (* ~360 bytes per record against a 4 KiB buffer *)
  let rb_size = 4096 in
  let reference = ref None in
  List.iter
    (fun backend ->
      let name = Mvee.backend_to_string backend in
      let o1, d1 = run ~backend ~batch:1 ~rb_size overflow_body in
      Alcotest.(check string) (name ^ " clean") "clean" (verdict_str o1);
      (* master digests agree across backends (timing-invariant body) *)
      (match !reference with
      | None -> reference := Some d1.(0)
      | Some r ->
        Alcotest.(check string) (name ^ " master digest vs reference") r d1.(0));
      List.iter
        (fun batch ->
          let ob, db = run ~backend ~batch ~rb_size overflow_body in
          Alcotest.(check string)
            (Printf.sprintf "%s batch %d = batch 1" name batch)
            (summary o1 d1) (summary ob db);
          match backend with
          | Mvee.Varan | Mvee.Remon ->
            Alcotest.(check bool)
              (Printf.sprintf "%s batch %d hit the reset path" name batch)
              true (ob.Mvee.rb_resets > 0);
            Alcotest.(check bool)
              (Printf.sprintf "%s batch %d used the ring" name batch)
              true
              (ob.Mvee.ring_records > 0)
          | _ -> ())
        [ 16; 64 ])
    overflow_backends

(* ------------------------------------------------------------------ *)
(* 3. Determinism across worker domains: the whole batch sweep, fanned
   out over 1 vs. 4 domains, must produce identical summaries *)

let test_domains_invariance () =
  let ops = gen_ops ~seed:11 ~nops:25 in
  let jobs =
    List.concat_map
      (fun backend -> List.map (fun b -> (backend, b)) [ 1; 8; 64 ])
      [ Mvee.Varan; Mvee.Remon ]
  in
  let sweep domains =
    Pool.map ~domains
      (fun (backend, batch) ->
        let o, d = run ~backend ~batch (body ops) in
        Printf.sprintf "%s b%d %s f%d" (Mvee.backend_to_string backend) batch
          (summary o d) o.Mvee.ring_flushes)
      jobs
  in
  List.iter2
    (Alcotest.(check string) "domains 1 vs 4")
    (sweep 1) (sweep 4)

(* ------------------------------------------------------------------ *)
(* 4. QCheck property: any (batch, flush deadline, scenario) triple is
   digest- and verdict-equivalent to the unbatched run on every engine *)

let prop_ring_invariant =
  QCheck.Test.make ~count:25 ~name:"random batch/deadline = batch 1"
    QCheck.(
      triple (int_range 1 64) (int_range 1 500) (int_range 0 1000))
    (fun (batch, flush_us, seed) ->
      let ops = gen_ops ~seed ~nops:(8 + (seed mod 23)) in
      List.for_all
        (fun backend ->
          let o1, d1 = run ~backend ~batch:1 (body ops) in
          let ob, db = run ~backend ~batch ~flush_us (body ops) in
          String.equal (summary o1 d1) (summary ob db))
        batch_backends)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ring"
    [
      ( "determinism",
        [
          Alcotest.test_case "batch sweep invariant" `Quick
            test_batch_invariance;
          Alcotest.test_case "ring stats sane" `Quick test_ring_stats_sane;
          Alcotest.test_case "domains 1 vs 4" `Quick test_domains_invariance;
          QCheck_alcotest.to_alcotest prop_ring_invariant;
        ] );
      ( "arbitration",
        [
          Alcotest.test_case "rb overflow with partial batch" `Quick
            test_overflow_partial_batch;
        ] );
    ]
