(* Fault injection and recovery: deterministic replay of fault plans,
   quarantine / kill-group / respawn policies, master-crash containment
   and the connect-retry budget. *)

open Remon_kernel
open Remon_core
open Remon_sim
open Remon_workloads

let sys = Sched.syscall

let config ?(backend = Mvee.Remon) ?(nreplicas = 2) ?(faults = [])
    ?(on_failure = Mvee.Kill_group) () =
  {
    Mvee.default_config with
    backend;
    nreplicas;
    policy = Policy.spatial Classification.Socket_rw_level;
    faults;
    on_failure;
  }

let all_backends =
  [ Mvee.Native; Mvee.Ghumvee_only; Mvee.Varan; Mvee.Remon ]

(* A mixed workload: mostly exempt calls (gettimeofday) with a monitored
   open/close rendezvous every few iterations, so the master's syscall
   stream contains both fast-path records and lockstep entries. *)
let mixed_body ?(iters = 60) ?(compute_us = 40) () (_env : Mvee.env) =
  for i = 1 to iters do
    ignore (sys Syscall.Gettimeofday);
    Sched.compute (Vtime.us compute_us);
    if i mod 5 = 0 then begin
      match sys (Syscall.Open ("/tmp/faults.txt", { Syscall.o_rdwr with create = true })) with
      | Syscall.Ok_int fd ->
        ignore (sys (Syscall.Write (fd, "x")));
        ignore (sys (Syscall.Close fd))
      | _ -> ()
    end
  done

let run_once cfg body =
  let kernel = Kernel.create ~seed:cfg.Mvee.seed () in
  let h = Mvee.launch kernel cfg ~name:"faulted" ~body in
  Kernel.run kernel;
  Mvee.finish h

(* The spec list carries mutable [fired] flags, so each run needs a fresh
   plan — this is also what [Mvee.launch] expects from [of_string]. *)
let crash_slave_plan () =
  [ Fault.spec ~kind:(Fault.Crash Sigdefs.sigsegv) ~variant:1 ~at:12 ]

let noisy_plan () =
  [
    Fault.spec ~kind:(Fault.Crash Sigdefs.sigsegv) ~variant:1 ~at:14;
    Fault.spec ~kind:(Fault.Delay (Vtime.us 300)) ~variant:1 ~at:7;
    Fault.spec ~kind:(Fault.Sock_err Errno.EAGAIN) ~variant:0 ~at:22;
  ]

(* ------------------------------------------------------------------ *)
(* Determinism: identical seed + plan => structurally identical outcome,
   on every backend. *)

let test_determinism backend () =
  let run () =
    run_once
      (config ~backend ~faults:(noisy_plan ()) ~on_failure:Mvee.Quarantine ())
      (mixed_body ())
  in
  let o1 = run () and o2 = run () in
  Alcotest.(check bool)
    (Printf.sprintf "%s: identical outcomes" (Mvee.backend_to_string backend))
    true (o1 = o2)

(* ------------------------------------------------------------------ *)
(* Quarantine: an injected slave crash detaches the replica; the group
   finishes degraded with no verdict and the master's exit preserved. *)

let test_quarantine_slave_crash () =
  let o =
    run_once
      (config ~faults:(crash_slave_plan ()) ~on_failure:Mvee.Quarantine ())
      (mixed_body ())
  in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected verdict: %s" (Divergence.to_string v));
  Alcotest.(check int) "fault fired" 1 o.Mvee.faults_injected;
  Alcotest.(check int) "one quarantine" 1 o.Mvee.quarantines;
  Alcotest.(check int) "no respawn" 0 o.Mvee.respawns;
  Alcotest.(check bool) "degraded time accrued" true
    (Vtime.compare o.Mvee.degraded_ns Vtime.zero > 0);
  Alcotest.(check (option int))
    "master exit preserved" (Some 0)
    (List.assoc_opt 0 o.Mvee.exit_codes)

(* Kill-group (the paper's policy): the same plan is a fatal verdict. *)
let test_kill_group_fatal () =
  let o =
    run_once
      (config ~faults:(crash_slave_plan ()) ~on_failure:Mvee.Kill_group ())
      (mixed_body ())
  in
  match o.Mvee.verdict with
  | Some (Divergence.Replica_crash { variant = 1; signal }) ->
    Alcotest.(check int) "SIGSEGV" Sigdefs.sigsegv signal
  | Some v -> Alcotest.failf "wrong verdict: %s" (Divergence.to_string v)
  | None -> Alcotest.fail "expected a fatal verdict under kill-group"

(* Respawn: the crashed slave is relaunched, replays the master journal
   and rejoins lockstep — so the degraded window closes before the run
   ends. *)
let test_respawn_rejoins () =
  let o =
    run_once
      (config ~faults:(crash_slave_plan ())
         ~on_failure:
           (Mvee.Respawn { max_respawns = 2; backoff_ns = Vtime.us 200 })
         ())
      (mixed_body ~iters:200 ~compute_us:5 ())
  in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected verdict: %s" (Divergence.to_string v));
  Alcotest.(check int) "one quarantine" 1 o.Mvee.quarantines;
  Alcotest.(check int) "one respawn" 1 o.Mvee.respawns;
  Alcotest.(check bool) "was degraded for a while" true
    (Vtime.compare o.Mvee.degraded_ns Vtime.zero > 0);
  (* the window must really close mid-run: a follower that never caught up
     would stay degraded until master exit (almost the whole duration) *)
  Alcotest.(check bool) "rejoined well before the end" true
    (Vtime.compare
       (Vtime.add o.Mvee.degraded_ns o.Mvee.degraded_ns)
       o.Mvee.duration
    < 0)

(* ------------------------------------------------------------------ *)
(* Master crash containment: a crash of variant 0 mid-run must tear the
   group down with a [Replica_crash] verdict — pending I/O drained, no
   rendezvous-watchdog hang — on every backend. *)

let test_master_crash backend () =
  let o =
    run_once
      (config ~backend
         ~faults:
           [ Fault.spec ~kind:(Fault.Crash Sigdefs.sigsegv) ~variant:0 ~at:10 ]
         ())
      (mixed_body ())
  in
  match o.Mvee.verdict with
  | Some (Divergence.Replica_crash { variant = 0; signal }) ->
    Alcotest.(check int) "SIGSEGV" Sigdefs.sigsegv signal;
    Alcotest.(check bool) "finite duration" true
      (Vtime.compare o.Mvee.duration Vtime.zero > 0)
  | Some v -> Alcotest.failf "wrong verdict: %s" (Divergence.to_string v)
  | None -> Alcotest.fail "expected a master-crash verdict"

(* ------------------------------------------------------------------ *)
(* connect_retry: budget exhaustion raises the dedicated exception
   instead of looping forever or reporting a generic refusal. *)

let test_connect_retry_exhausted () =
  let outcome = ref `Nothing in
  let body (_env : Mvee.env) =
    let fd = Api.socket () in
    (try
       Api.connect_retry ~attempts:3 fd 9999;
       outcome := `Connected
     with
    | Api.Connect_retries_exhausted { port; attempts } ->
      outcome := `Exhausted (port, attempts)
    | Api.Sys_error (e, _) -> outcome := `Error e);
    Api.close fd
  in
  let o = run_once (config ~backend:Mvee.Native ~nreplicas:1 ()) body in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected verdict: %s" (Divergence.to_string v));
  match !outcome with
  | `Exhausted (9999, 3) -> ()
  | `Exhausted (p, a) -> Alcotest.failf "wrong payload: port %d attempts %d" p a
  | `Connected -> Alcotest.fail "connect unexpectedly succeeded"
  | `Error e -> Alcotest.failf "generic error instead: %s" (Errno.to_string e)
  | `Nothing -> Alcotest.fail "no outcome recorded"

(* And the success path still works after a listener shows up late. *)
let test_connect_retry_eventual_success () =
  let connected = ref false in
  let body (env : Mvee.env) =
    if env.Mvee.variant = 0 then begin
      let tid =
        env.Mvee.spawn_thread (fun () ->
            (* server comes up only after the client's first refusals *)
            Api.nanosleep 2_000_000;
            let s = Api.socket () in
            Api.bind s 7777;
            Api.listen s 8;
            let a = Api.accept s in
            Api.close a.Syscall.conn_fd;
            Api.close s)
      in
      ignore tid;
      let fd = Api.socket () in
      Api.connect_retry ~attempts:20 fd 7777;
      connected := true;
      Api.close fd
    end
  in
  let o = run_once (config ~backend:Mvee.Native ~nreplicas:1 ()) body in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected verdict: %s" (Divergence.to_string v));
  Alcotest.(check bool) "eventually connected" true !connected

(* ------------------------------------------------------------------ *)
(* --faults plan syntax: print/parse round-trip and error reporting *)

(* Only representable plans round-trip: the printer renders delays in
   whole microseconds and drops the variant of RB faults (the parser
   forces it to 0), so the generator stays inside that set. *)
let gen_plan =
  let open QCheck2.Gen in
  let gen_spec =
    let* at = int_range 1 500 in
    let* variant = int_range 0 4 in
    let* k = int_range 0 7 in
    return
      (match k with
      | 0 -> Fault.spec ~kind:(Fault.Crash Sigdefs.sigsegv) ~variant ~at
      | 1 -> Fault.spec ~kind:(Fault.Crash Sigdefs.sigkill) ~variant ~at
      | 2 -> Fault.spec ~kind:Fault.Corrupt_args ~variant ~at
      | 3 -> Fault.spec ~kind:(Fault.Delay (Vtime.us (1 + (at * 37)))) ~variant ~at
      | 4 -> Fault.spec ~kind:(Fault.Sock_err Errno.ECONNRESET) ~variant ~at
      | 5 -> Fault.spec ~kind:(Fault.Sock_err Errno.EAGAIN) ~variant ~at
      | 6 -> Fault.spec ~kind:Fault.Drop_rb ~variant:0 ~at
      | _ -> Fault.spec ~kind:Fault.Corrupt_rb ~variant:0 ~at)
  in
  list_size (int_range 0 8) gen_spec

let prop_fault_plan_roundtrip =
  QCheck2.Test.make ~name:"fault plan print/parse round-trip" ~count:300
    gen_plan
    (fun plan ->
      match Fault.of_string (Fault.to_string plan) with
      | Ok plan' -> plan' = plan
      | Error _ -> false)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  m = 0 || go 0

let test_fault_parse_errors () =
  let expect_error input fragment =
    match Fault.of_string input with
    | Ok _ -> Alcotest.failf "%S parsed but should not" input
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S -> %S mentions %S" input msg fragment)
        true (contains msg fragment)
  in
  expect_error "crash@" "bad trigger index";
  expect_error "crash" "expected KIND@AT[:VARIANT][=PARAM]";
  expect_error "crash@5:x" "bad variant";
  expect_error "crash@5:-1" "bad variant";
  expect_error "delay@30:1" "delay needs =DURATION";
  expect_error "delay@30:1=" "bad delay duration";
  expect_error "delay@30:1=fast" "bad delay duration";
  expect_error "explode@3" "unknown fault kind \"explode\"";
  (* a bad spec anywhere in the list poisons the whole plan *)
  expect_error "crash@12:1,explode@3" "unknown fault kind";
  (* and the error names the offending spec, not the whole input *)
  (match Fault.of_string "crash@12:1,explode@3" with
  | Error msg ->
    Alcotest.(check bool) "error names the bad spec" true
      (String.length msg >= 10 && String.sub msg 0 10 = "fault spec")
  | Ok _ -> Alcotest.fail "parsed but should not")

let test_fault_parse_defaults () =
  (* no :VARIANT defaults to replica 1; RB faults always normalize to 0 *)
  (match Fault.of_string "crash@12" with
  | Ok [ s ] -> Alcotest.(check int) "default variant" 1 s.Fault.variant
  | _ -> Alcotest.fail "crash@12 should parse to one spec");
  (match Fault.of_string "droprb@5:3" with
  | Ok [ s ] -> Alcotest.(check int) "rb variant forced to 0" 0 s.Fault.variant
  | _ -> Alcotest.fail "droprb@5:3 should parse");
  (* the three duration unit suffixes *)
  match Fault.of_string "delay@1:1=2ms,delay@2:1=30us,delay@3:1=400" with
  | Ok [ a; b; c ] ->
    let d = function
      | { Fault.kind = Fault.Delay ns; _ } -> ns
      | _ -> Alcotest.fail "expected a delay spec"
    in
    Alcotest.(check int) "ms" (Vtime.ms 2) (d a);
    Alcotest.(check int) "us" (Vtime.us 30) (d b);
    Alcotest.(check int) "ns" (Vtime.ns 400) (d c)
  | _ -> Alcotest.fail "delay list should parse"

let () =
  Alcotest.run "faults"
    [
      ( "determinism",
        List.map
          (fun b ->
            Alcotest.test_case
              (Printf.sprintf "same seed+plan, %s" (Mvee.backend_to_string b))
              `Quick (test_determinism b))
          all_backends );
      ( "plan-syntax",
        [
          QCheck_alcotest.to_alcotest prop_fault_plan_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_fault_parse_errors;
          Alcotest.test_case "defaults and units" `Quick
            test_fault_parse_defaults;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "quarantine detaches slave" `Quick
            test_quarantine_slave_crash;
          Alcotest.test_case "kill-group is fatal" `Quick test_kill_group_fatal;
          Alcotest.test_case "respawn replays and rejoins" `Quick
            test_respawn_rejoins;
        ] );
      ( "master-crash",
        List.map
          (fun b ->
            Alcotest.test_case
              (Printf.sprintf "contained on %s" (Mvee.backend_to_string b))
              `Quick (test_master_crash b))
          all_backends );
      ( "connect-retry",
        [
          Alcotest.test_case "budget exhaustion" `Quick
            test_connect_retry_exhausted;
          Alcotest.test_case "eventual success" `Quick
            test_connect_retry_eventual_success;
        ] );
    ]
