(* Fault injection and recovery: deterministic replay of fault plans,
   quarantine / kill-group / respawn policies, master-crash containment
   and the connect-retry budget. *)

open Remon_kernel
open Remon_core
open Remon_sim
open Remon_workloads

let sys = Sched.syscall

let config ?(backend = Mvee.Remon) ?(nreplicas = 2) ?(faults = [])
    ?(on_failure = Mvee.Kill_group) () =
  {
    Mvee.default_config with
    backend;
    nreplicas;
    policy = Policy.spatial Classification.Socket_rw_level;
    faults;
    on_failure;
  }

let all_backends =
  [ Mvee.Native; Mvee.Ghumvee_only; Mvee.Varan; Mvee.Remon ]

(* A mixed workload: mostly exempt calls (gettimeofday) with a monitored
   open/close rendezvous every few iterations, so the master's syscall
   stream contains both fast-path records and lockstep entries. *)
let mixed_body ?(iters = 60) ?(compute_us = 40) () (_env : Mvee.env) =
  for i = 1 to iters do
    ignore (sys Syscall.Gettimeofday);
    Sched.compute (Vtime.us compute_us);
    if i mod 5 = 0 then begin
      match sys (Syscall.Open ("/tmp/faults.txt", { Syscall.o_rdwr with create = true })) with
      | Syscall.Ok_int fd ->
        ignore (sys (Syscall.Write (fd, "x")));
        ignore (sys (Syscall.Close fd))
      | _ -> ()
    end
  done

let run_once cfg body =
  let kernel = Kernel.create ~seed:cfg.Mvee.seed () in
  let h = Mvee.launch kernel cfg ~name:"faulted" ~body in
  Kernel.run kernel;
  Mvee.finish h

(* The spec list carries mutable [fired] flags, so each run needs a fresh
   plan — this is also what [Mvee.launch] expects from [of_string]. *)
let crash_slave_plan () =
  [ Fault.spec ~kind:(Fault.Crash Sigdefs.sigsegv) ~variant:1 ~at:12 ]

let noisy_plan () =
  [
    Fault.spec ~kind:(Fault.Crash Sigdefs.sigsegv) ~variant:1 ~at:14;
    Fault.spec ~kind:(Fault.Delay (Vtime.us 300)) ~variant:1 ~at:7;
    Fault.spec ~kind:(Fault.Sock_err Errno.EAGAIN) ~variant:0 ~at:22;
  ]

(* ------------------------------------------------------------------ *)
(* Determinism: identical seed + plan => structurally identical outcome,
   on every backend. *)

let test_determinism backend () =
  let run () =
    run_once
      (config ~backend ~faults:(noisy_plan ()) ~on_failure:Mvee.Quarantine ())
      (mixed_body ())
  in
  let o1 = run () and o2 = run () in
  Alcotest.(check bool)
    (Printf.sprintf "%s: identical outcomes" (Mvee.backend_to_string backend))
    true (o1 = o2)

(* ------------------------------------------------------------------ *)
(* Quarantine: an injected slave crash detaches the replica; the group
   finishes degraded with no verdict and the master's exit preserved. *)

let test_quarantine_slave_crash () =
  let o =
    run_once
      (config ~faults:(crash_slave_plan ()) ~on_failure:Mvee.Quarantine ())
      (mixed_body ())
  in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected verdict: %s" (Divergence.to_string v));
  Alcotest.(check int) "fault fired" 1 o.Mvee.faults_injected;
  Alcotest.(check int) "one quarantine" 1 o.Mvee.quarantines;
  Alcotest.(check int) "no respawn" 0 o.Mvee.respawns;
  Alcotest.(check bool) "degraded time accrued" true
    (Vtime.compare o.Mvee.degraded_ns Vtime.zero > 0);
  Alcotest.(check (option int))
    "master exit preserved" (Some 0)
    (List.assoc_opt 0 o.Mvee.exit_codes)

(* Kill-group (the paper's policy): the same plan is a fatal verdict. *)
let test_kill_group_fatal () =
  let o =
    run_once
      (config ~faults:(crash_slave_plan ()) ~on_failure:Mvee.Kill_group ())
      (mixed_body ())
  in
  match o.Mvee.verdict with
  | Some (Divergence.Replica_crash { variant = 1; signal }) ->
    Alcotest.(check int) "SIGSEGV" Sigdefs.sigsegv signal
  | Some v -> Alcotest.failf "wrong verdict: %s" (Divergence.to_string v)
  | None -> Alcotest.fail "expected a fatal verdict under kill-group"

(* Respawn: the crashed slave is relaunched, replays the master journal
   and rejoins lockstep — so the degraded window closes before the run
   ends. *)
let test_respawn_rejoins () =
  let o =
    run_once
      (config ~faults:(crash_slave_plan ())
         ~on_failure:
           (Mvee.Respawn { max_respawns = 2; backoff_ns = Vtime.us 200 })
         ())
      (mixed_body ~iters:200 ~compute_us:5 ())
  in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected verdict: %s" (Divergence.to_string v));
  Alcotest.(check int) "one quarantine" 1 o.Mvee.quarantines;
  Alcotest.(check int) "one respawn" 1 o.Mvee.respawns;
  Alcotest.(check bool) "was degraded for a while" true
    (Vtime.compare o.Mvee.degraded_ns Vtime.zero > 0);
  (* the window must really close mid-run: a follower that never caught up
     would stay degraded until master exit (almost the whole duration) *)
  Alcotest.(check bool) "rejoined well before the end" true
    (Vtime.compare
       (Vtime.add o.Mvee.degraded_ns o.Mvee.degraded_ns)
       o.Mvee.duration
    < 0)

(* ------------------------------------------------------------------ *)
(* Master crash containment: a crash of variant 0 mid-run must tear the
   group down with a [Replica_crash] verdict — pending I/O drained, no
   rendezvous-watchdog hang — on every backend. *)

let test_master_crash backend () =
  let o =
    run_once
      (config ~backend
         ~faults:
           [ Fault.spec ~kind:(Fault.Crash Sigdefs.sigsegv) ~variant:0 ~at:10 ]
         ())
      (mixed_body ())
  in
  match o.Mvee.verdict with
  | Some (Divergence.Replica_crash { variant = 0; signal }) ->
    Alcotest.(check int) "SIGSEGV" Sigdefs.sigsegv signal;
    Alcotest.(check bool) "finite duration" true
      (Vtime.compare o.Mvee.duration Vtime.zero > 0)
  | Some v -> Alcotest.failf "wrong verdict: %s" (Divergence.to_string v)
  | None -> Alcotest.fail "expected a master-crash verdict"

(* ------------------------------------------------------------------ *)
(* connect_retry: budget exhaustion raises the dedicated exception
   instead of looping forever or reporting a generic refusal. *)

let test_connect_retry_exhausted () =
  let outcome = ref `Nothing in
  let body (_env : Mvee.env) =
    let fd = Api.socket () in
    (try
       Api.connect_retry ~attempts:3 fd 9999;
       outcome := `Connected
     with
    | Api.Connect_retries_exhausted { port; attempts } ->
      outcome := `Exhausted (port, attempts)
    | Api.Sys_error (e, _) -> outcome := `Error e);
    Api.close fd
  in
  let o = run_once (config ~backend:Mvee.Native ~nreplicas:1 ()) body in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected verdict: %s" (Divergence.to_string v));
  match !outcome with
  | `Exhausted (9999, 3) -> ()
  | `Exhausted (p, a) -> Alcotest.failf "wrong payload: port %d attempts %d" p a
  | `Connected -> Alcotest.fail "connect unexpectedly succeeded"
  | `Error e -> Alcotest.failf "generic error instead: %s" (Errno.to_string e)
  | `Nothing -> Alcotest.fail "no outcome recorded"

(* And the success path still works after a listener shows up late. *)
let test_connect_retry_eventual_success () =
  let connected = ref false in
  let body (env : Mvee.env) =
    if env.Mvee.variant = 0 then begin
      let tid =
        env.Mvee.spawn_thread (fun () ->
            (* server comes up only after the client's first refusals *)
            Api.nanosleep 2_000_000;
            let s = Api.socket () in
            Api.bind s 7777;
            Api.listen s 8;
            let a = Api.accept s in
            Api.close a.Syscall.conn_fd;
            Api.close s)
      in
      ignore tid;
      let fd = Api.socket () in
      Api.connect_retry ~attempts:20 fd 7777;
      connected := true;
      Api.close fd
    end
  in
  let o = run_once (config ~backend:Mvee.Native ~nreplicas:1 ()) body in
  (match o.Mvee.verdict with
  | None -> ()
  | Some v -> Alcotest.failf "unexpected verdict: %s" (Divergence.to_string v));
  Alcotest.(check bool) "eventually connected" true !connected

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "determinism",
        List.map
          (fun b ->
            Alcotest.test_case
              (Printf.sprintf "same seed+plan, %s" (Mvee.backend_to_string b))
              `Quick (test_determinism b))
          all_backends );
      ( "recovery",
        [
          Alcotest.test_case "quarantine detaches slave" `Quick
            test_quarantine_slave_crash;
          Alcotest.test_case "kill-group is fatal" `Quick test_kill_group_fatal;
          Alcotest.test_case "respawn replays and rejoins" `Quick
            test_respawn_rejoins;
        ] );
      ( "master-crash",
        List.map
          (fun b ->
            Alcotest.test_case
              (Printf.sprintf "contained on %s" (Mvee.backend_to_string b))
              `Quick (test_master_crash b))
          all_backends );
      ( "connect-retry",
        [
          Alcotest.test_case "budget exhaustion" `Quick
            test_connect_retry_exhausted;
          Alcotest.test_case "eventual success" `Quick
            test_connect_retry_eventual_success;
        ] );
    ]
