(* Randomized cross-backend conformance fuzzer.

   Each scenario is a seeded random single-threaded workload (file, pipe
   and socket traffic with deterministic payloads), a random exemption
   level, a random replica count and a random fault plan. The scenario
   runs under all three routing regimes — GHUMVEE-only lockstep, IP-MON
   route-all (the VARAN baseline) and the IK-B hybrid (ReMon) — and the
   backends must agree:

   - verdict class: either every backend flags a divergence or none does
     (the detectors differ — rendezvous args compare vs. RB record
     compare — but detection itself is a conformance property);
   - replica-visible results: when every backend is verdict-free, the
     digest of everything the program could observe (byte counts, read
     data, errnos — never virtual time or fd-table internals) must be
     identical across variants within a run and across backends.

   Fault plans only use kinds whose observable class is routing-invariant:
   crashes (detected by every backend's exit watcher), slave argument
   corruption (every call is compared somewhere: lockstep rendezvous or
   RB record), and small delays (benign everywhere). Result-injection
   faults are excluded on purpose: the per-thread syscall index they
   anchor to counts setup calls, which differ per backend, so the faulted
   call — and with it the program-visible result — would not line up.

   On a conformance violation the scenario is greedily shrunk (dropping
   fault specs and workload ops while the violation persists) and the
   minimal reproducer is printed together with per-backend trace dumps.

   Scenario count defaults to 200; override with FUZZ_SCENARIOS (the CI
   smoke job runs a 30-scenario slice). *)

open Remon_kernel
open Remon_core
open Remon_sim
open Remon_util
open Remon_workloads

let scenarios =
  match Sys.getenv_opt "FUZZ_SCENARIOS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> 200)
  | None -> 200

(* ------------------------------------------------------------------ *)
(* Scenario generation *)

type op =
  | File_rw of string * int (* pwrite payload at offset, pread it back *)
  | Pipe_rw of string
  | Sock_rw of string
  | Open_close
  | Gettime (* undigested: virtual time legitimately differs per backend *)
  | Compute of int (* microseconds *)

type scenario = {
  id : int;
  sim_seed : int;
  nreplicas : int;
  level : Classification.level;
  ops : op list;
  faults : string;
      (* --faults syntax; parsed fresh per run because specs carry a
         mutable [fired] flag *)
}

let payload rng id j =
  let n = 1 + Rng.int_in_range rng ~lo:0 ~hi:47 in
  let b = Buffer.create n in
  Buffer.add_string b (Printf.sprintf "s%d.%d:" id j);
  while Buffer.length b < n do
    Buffer.add_char b
      (Char.chr (Char.code 'a' + Rng.int_in_range rng ~lo:0 ~hi:25))
  done;
  Buffer.contents b

let gen_ops rng id =
  let nops = Rng.int_in_range rng ~lo:5 ~hi:30 in
  List.init nops (fun j ->
      match Rng.int_in_range rng ~lo:0 ~hi:9 with
      | 0 | 1 | 2 -> File_rw (payload rng id j, Rng.int_in_range rng ~lo:0 ~hi:4096)
      | 3 | 4 -> Pipe_rw (payload rng id j)
      | 5 | 6 -> Sock_rw (payload rng id j)
      | 7 -> Open_close
      | 8 -> Gettime
      | _ -> Compute (Rng.int_in_range rng ~lo:5 ~hi:200))

let op_syscalls = function
  | File_rw _ | Pipe_rw _ | Sock_rw _ | Open_close -> 2
  | Gettime -> 1
  | Compute _ -> 0

(* The per-thread syscall index a fault anchors to counts setup calls,
   and setup differs by backend: the body issues 3 fixture calls (open,
   pipe, socketpair) everywhere, while Varan/Remon slaves additionally
   run IP-MON init (5 calls: 2x shmget/shmat + register) before the body.
   A kind that must be *detected* (crash/kill/args) therefore needs an
   index landing inside the op stream under every backend:
   [3 + 5 + 1, 3 + S] where S is the op stream's syscall count — nonempty
   only when S >= 6. Delays are benign wherever they land, so they are
   unconstrained.

   Argument corruption has one further requirement: the rewritten capture
   is a nonsocket write, so if the policy exempts nonsocket writes the
   corrupted call can land on the opposite side of IK-B's routing
   boundary from the call the master issues, and neither the rendezvous
   nor the RB comparator is guaranteed to line the two up. Corruption is
   therefore only generated at levels where nonsocket writes stay
   monitored (BASE, NONSOCKET_RO); other levels degrade to a crash. *)
let gen_faults rng ~nreplicas ~level ~ops =
  let s_ops = List.fold_left (fun a op -> a + op_syscalls op) 0 ops in
  let specs = ref [] in
  let n = Rng.int_in_range rng ~lo:0 ~hi:2 in
  for _ = 1 to n do
    let slave =
      if nreplicas > 1 then Rng.int_in_range rng ~lo:1 ~hi:(nreplicas - 1)
      else 0
    in
    let kind = Rng.int_in_range rng ~lo:0 ~hi:3 in
    if kind = 3 then
      specs :=
        Printf.sprintf "delay@%d:%d=%dus"
          (Rng.int_in_range rng ~lo:2 ~hi:(8 + max 1 s_ops))
          (Rng.int_in_range rng ~lo:0 ~hi:(nreplicas - 1))
          (Rng.int_in_range rng ~lo:50 ~hi:3000)
        :: !specs
    else if s_ops >= 6 then begin
      let at = Rng.int_in_range rng ~lo:9 ~hi:(3 + s_ops) in
      let args_safe =
        match level with
        | Classification.Base_level | Classification.Nonsocket_ro_level -> true
        | _ -> false
      in
      let s =
        match kind with
        | 0 -> Printf.sprintf "crash@%d:%d" at slave
        | 1 -> Printf.sprintf "kill@%d:%d" at slave
        | _ when args_safe -> Printf.sprintf "args@%d:%d" at slave
        | _ -> Printf.sprintf "crash@%d:%d" at slave
      in
      specs := s :: !specs
    end
  done;
  String.concat "," !specs

let gen_scenario id =
  let rng = Rng.make (0x5EED + (id * 0x9E3779B1)) in
  let nreplicas = 2 + Rng.int_in_range rng ~lo:0 ~hi:1 in
  let level =
    List.nth Classification.all_levels
      (Rng.int_in_range rng ~lo:0
         ~hi:(List.length Classification.all_levels - 1))
  in
  let ops = gen_ops rng id in
  let faults = gen_faults rng ~nreplicas ~level ~ops in
  { id; sim_seed = 1000 + id; nreplicas; level; ops; faults }

(* ------------------------------------------------------------------ *)
(* The workload body: digest everything program-visible *)

let digest_result buf tag (r : Syscall.result) =
  Buffer.add_string buf tag;
  Buffer.add_string buf
    (match r with
    | Syscall.Ok_unit -> "u"
    | Syscall.Ok_int n -> string_of_int n
    | Syscall.Ok_data s -> "d:" ^ s
    | Syscall.Error e -> "e:" ^ Errno.to_string e
    | _ -> "?");
  Buffer.add_char buf '|'

let body sc (digests : string array) (env : Mvee.env) =
  let sys = Sched.syscall in
  let buf = Buffer.create 512 in
  let data_fd =
    Api.open_file ~flags:{ Syscall.o_rdwr with create = true } "/tmp/fuzz-data"
  in
  let pipe_r, pipe_w = Api.pipe () in
  let sock_a, sock_b = Api.socketpair () in
  List.iter
    (fun op ->
      match op with
      | File_rw (s, off) ->
        digest_result buf "w" (sys (Syscall.Pwrite64 (data_fd, s, off)));
        digest_result buf "r" (sys (Syscall.Pread64 (data_fd, String.length s, off)))
      | Pipe_rw s ->
        digest_result buf "pw" (sys (Syscall.Write (pipe_w, s)));
        digest_result buf "pr" (sys (Syscall.Read (pipe_r, String.length s)))
      | Sock_rw s ->
        digest_result buf "ss" (sys (Syscall.Sendto (sock_a, s)));
        digest_result buf "sr" (sys (Syscall.Recvfrom (sock_b, String.length s)))
      | Open_close -> (
        match sys (Syscall.Open ("/tmp/fuzz-scratch", { Syscall.o_rdwr with create = true })) with
        | Syscall.Ok_int fd ->
          digest_result buf "c" (sys (Syscall.Close fd))
        | r -> digest_result buf "o" r)
      | Gettime -> ignore (sys Syscall.Gettimeofday)
      | Compute us -> Sched.compute (Vtime.us us))
    sc.ops;
  digests.(env.Mvee.variant) <- Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Running one scenario under one backend *)

let backends = [ Mvee.Ghumvee_only; Mvee.Varan; Mvee.Remon ]

let config_of sc backend =
  let policy =
    (* GHUMVEE standalone is by definition monitor-everything *)
    match backend with
    | Mvee.Ghumvee_only -> Policy.monitor_everything
    | _ -> Policy.spatial sc.level
  in
  let faults =
    match Fault.of_string sc.faults with
    | Ok p -> p
    | Error e -> failwith ("fuzz plan failed to reparse: " ^ e)
  in
  {
    Mvee.default_config with
    Mvee.backend;
    nreplicas = sc.nreplicas;
    seed = sc.sim_seed;
    policy;
    faults;
  }

let run_backend ?obs ?(record = false) sc backend =
  let digests = Array.make sc.nreplicas "<unfinished>" in
  let kernel = Kernel.create ~seed:sc.sim_seed () in
  (match obs with Some o -> Kernel.set_obs kernel o | None -> ());
  let config = { (config_of sc backend) with Mvee.record } in
  let h =
    Mvee.launch kernel config
      ~name:(Printf.sprintf "fuzz%d" sc.id)
      ~body:(body sc digests)
  in
  Kernel.run kernel;
  (Mvee.finish h, digests)

(* ------------------------------------------------------------------ *)
(* Conformance check *)

let render_op = function
  | File_rw (s, off) -> Printf.sprintf "file(%S@%d)" s off
  | Pipe_rw s -> Printf.sprintf "pipe(%S)" s
  | Sock_rw s -> Printf.sprintf "sock(%S)" s
  | Open_close -> "open_close"
  | Gettime -> "gettime"
  | Compute us -> Printf.sprintf "compute(%dus)" us

let render_scenario sc =
  Printf.sprintf
    "scenario %d: seed=%d nreplicas=%d level=%s faults=%S\n  ops: %s" sc.id
    sc.sim_seed sc.nreplicas
    (Classification.level_to_string sc.level)
    sc.faults
    (String.concat "; " (List.map render_op sc.ops))

(* None = conforms; Some msg = the violation found. *)
let check_scenario sc =
  let results = List.map (fun b -> (b, run_backend sc b)) backends in
  let flagged (o : Mvee.outcome) = o.Mvee.verdict <> None in
  let verdict_str (o : Mvee.outcome) =
    match o.Mvee.verdict with
    | None -> "clean"
    | Some v -> Divergence.to_string v
  in
  let classes = List.map (fun (_, (o, _)) -> flagged o) results in
  match classes with
  | [] -> None
  | c0 :: rest when not (List.for_all (Bool.equal c0) rest) ->
    Some
      (Printf.sprintf "verdict classes disagree: %s"
         (String.concat ", "
            (List.map
               (fun (b, (o, _)) ->
                 Printf.sprintf "%s=%s" (Mvee.backend_to_string b)
                   (verdict_str o))
               results)))
  | c0 :: _ when c0 -> None (* all flagged: conforming detection *)
  | _ ->
    (* all clean: replica-visible digests must agree, both within each
       run (across variants) and across backends *)
    let violation = ref None in
    List.iter
      (fun (b, (_, digests)) ->
        Array.iteri
          (fun v d ->
            if !violation = None && not (String.equal d digests.(0)) then
              violation :=
                Some
                  (Printf.sprintf
                     "%s: variant %d digest differs from master\n  v0: %s\n  v%d: %s"
                     (Mvee.backend_to_string b) v digests.(0) v d))
          digests)
      results;
    (match (!violation, results) with
    | None, (b0, (_, d0)) :: rest ->
      List.iter
        (fun (b, (_, d)) ->
          if !violation = None && not (String.equal d.(0) d0.(0)) then
            violation :=
              Some
                (Printf.sprintf
                   "master digests disagree across backends\n  %s: %s\n  %s: %s"
                   (Mvee.backend_to_string b0) d0.(0)
                   (Mvee.backend_to_string b) d.(0)))
        rest
    | _ -> ());
    !violation

(* ------------------------------------------------------------------ *)
(* Shrinking: greedily drop fault specs and ops while the scenario still
   violates conformance, so the reproducer printed is minimal. *)

let drop_nth n l = List.filteri (fun i _ -> i <> n) l

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let rec drop n = function
  | _ :: rest when n > 0 -> drop (n - 1) rest
  | l -> l

let shrink_candidates sc =
  let fault_specs =
    if sc.faults = "" then []
    else String.split_on_char ',' sc.faults
  in
  let without_fault =
    List.init (List.length fault_specs) (fun i ->
        { sc with faults = String.concat "," (drop_nth i fault_specs) })
  in
  let nops = List.length sc.ops in
  let op_halves =
    if nops > 1 then
      [
        { sc with ops = take (nops / 2) sc.ops };
        { sc with ops = drop (nops / 2) sc.ops };
      ]
    else []
  in
  let op_drops =
    if nops > 1 && nops <= 12 then
      List.init nops (fun i -> { sc with ops = drop_nth i sc.ops })
    else []
  in
  without_fault @ op_halves @ op_drops

let minimize sc =
  let budget = ref 30 in
  let rec go sc =
    if !budget <= 0 then sc
    else begin
      decr budget;
      match
        List.find_opt (fun c -> check_scenario c <> None) (shrink_candidates sc)
      with
      | Some smaller -> go smaller
      | None -> sc
    end
  in
  go sc

let dump_dir () =
  match Sys.getenv_opt "FUZZ_DUMP_DIR" with
  | Some d ->
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    d
  | None -> Filename.get_temp_dir_name ()

let dump_traces sc =
  List.map
    (fun b ->
      let obs = Remon_obs.Obs.create () in
      ignore (run_backend ~obs sc b);
      let path =
        Filename.concat (dump_dir ())
          (Printf.sprintf "fuzz-failure-%d-%s.json" sc.id
             (Mvee.backend_to_string b))
      in
      let oc = open_out_bin path in
      output_string oc (Remon_obs.Obs.export_string obs);
      close_out oc;
      path)
    backends

(* The minimal scenario's recorded streams, one per backend: versioned
   binary reproducers a later session can diff and bisect offline. *)
let dump_recordings sc =
  List.filter_map
    (fun b ->
      let o, _ = run_backend ~record:true sc b in
      match o.Mvee.recording with
      | None -> None
      | Some r ->
        let r =
          Recording.with_workload r (Printf.sprintf "fuzz:%d" sc.id)
        in
        let path =
          Filename.concat (dump_dir ())
            (Printf.sprintf "fuzz-failure-%d-%s.rmrc" sc.id
               (Mvee.backend_to_string b))
        in
        Recording.to_file r path;
        Some path)
    backends

(* ------------------------------------------------------------------ *)

let test_conformance () =
  let failures = ref 0 in
  for id = 0 to scenarios - 1 do
    let sc = gen_scenario id in
    match check_scenario sc with
    | None -> ()
    | Some msg ->
      incr failures;
      let minimal = minimize sc in
      let why =
        match check_scenario minimal with Some m -> m | None -> msg
      in
      let traces = dump_traces minimal in
      let recordings = dump_recordings minimal in
      Printf.printf
        "conformance violation (original scenario %d):\n%s\nminimal reproducer:\n%s\ntraces: %s\nrecordings: %s\n%!"
        sc.id msg (render_scenario minimal)
        (String.concat ", " traces)
        (String.concat ", " recordings);
      Printf.printf "violation: %s\n%!" why
  done;
  if !failures > 0 then
    Alcotest.failf "%d/%d scenarios violated cross-backend conformance"
      !failures scenarios

(* A canary with a known-flagged plan: slave argument corruption must be
   detected under every backend, so the harness itself cannot rot into
   vacuously passing. *)
let test_known_divergence_flagged_everywhere () =
  let sc =
    {
      id = 999_999;
      sim_seed = 4242;
      nreplicas = 2;
      level = Classification.Socket_rw_level;
      ops =
        [ File_rw ("canary-payload", 64); Sock_rw ("canary");
          Pipe_rw ("canary2"); File_rw ("more", 256); Gettime ];
      faults = "args@9:1";
      (* index 9 lands inside the op stream on every backend: past the
         3 fixture calls + 5 IP-MON init calls, before call 3 + S = 12 *)
    }
  in
  List.iter
    (fun b ->
      let o, _ = run_backend sc b in
      Alcotest.(check bool)
        (Printf.sprintf "%s flags slave corruption" (Mvee.backend_to_string b))
        true
        (o.Mvee.verdict <> None))
    backends

(* And the clean counterpart: no faults, every backend verdict-free with
   agreeing digests (exercised through the same checker the fuzzer uses). *)
let test_known_clean_conforms () =
  let sc = { (gen_scenario 31337) with faults = "" } in
  match check_scenario sc with
  | None -> ()
  | Some msg -> Alcotest.failf "clean scenario violated conformance: %s" msg

let () =
  Alcotest.run "fuzz"
    [
      ( "cross-backend",
        [
          Alcotest.test_case "known divergence flagged" `Quick
            test_known_divergence_flagged_everywhere;
          Alcotest.test_case "known clean conforms" `Quick
            test_known_clean_conforms;
          Alcotest.test_case
            (Printf.sprintf "conformance (%d scenarios)" scenarios)
            `Slow test_conformance;
        ] );
    ]
