(* Unit + property tests for the utility library. *)

open Remon_util

let test_rng_determinism () =
  let a = Rng.make 7 and b = Rng.make 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.bits a) (Rng.bits b)
  done

let test_rng_split_independence () =
  let parent = Rng.make 7 in
  let child = Rng.split parent in
  (* drawing from the child must not affect the parent's future draws *)
  let parent2 = Rng.make 7 in
  ignore (Rng.split parent2);
  ignore (Rng.bits child);
  Alcotest.(check int) "parent unaffected by child draws" (Rng.bits parent2)
    (Rng.bits parent)

let test_rng_bounds () =
  let rng = Rng.make 1 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of range"
  done

let test_rng_weighted () =
  let rng = Rng.make 3 in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Rng.weighted rng [| 1.0; 0.0; 3.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight bucket never drawn" 0 counts.(1);
  Alcotest.(check bool) "heavier bucket drawn more" true (counts.(2) > counts.(0))

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ]);
  Alcotest.(check (float 1e-9)) "geomean singleton" 3. (Stats.geomean [ 3. ])

let test_stats_percentile () =
  let xs = [ 5.; 1.; 3.; 2.; 4. ] in
  Alcotest.(check (float 1e-9)) "median" 3. (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p100 = max" 5. (Stats.percentile xs 100.)

let test_stats_overhead () =
  Alcotest.(check (float 1e-9)) "10% overhead" 0.1
    (Stats.overhead ~baseline:100. ~measured:110.);
  Alcotest.(check (float 1e-9)) "ratio" 1.1
    (Stats.ratio ~baseline:100. ~measured:110.)

let test_table_render () =
  let t =
    Table.create ~title:"demo" ~header:[ "name"; "value" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  Table.add_row t [ "alpha"; "1.00" ];
  Table.add_separator t;
  Table.add_row t [ "geomean"; "2.00" ];
  let s = Table.render t in
  Alcotest.(check bool) "mentions rows" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> l <> ""))

let test_table_mismatch () =
  let t = Table.create ~title:"" ~header:[ "a"; "b" ] () in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "only-one" ])

let test_fmt_helpers () =
  Alcotest.(check string) "pct" "11.2%" (Table.fmt_pct 0.112);
  Alcotest.(check string) "ratio" "1.09" (Table.fmt_ratio 1.09);
  Alcotest.(check string) "ns" "1.500 us" (Table.fmt_ns 1500)

(* property tests *)
let prop_geomean_scale =
  QCheck2.Test.make ~name:"geomean scales linearly" ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) (float_range 0.1 100.))
    (fun xs ->
      let g = Stats.geomean xs in
      let g2 = Stats.geomean (List.map (fun x -> 2. *. x) xs) in
      abs_float (g2 -. (2. *. g)) < 1e-6 *. (1. +. g))

let prop_percentile_bounds =
  QCheck2.Test.make ~name:"percentile within min/max" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) (float_range (-50.) 50.))
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let p = Stats.percentile xs 37. in
      p >= lo && p <= hi)

let prop_rng_int_range =
  QCheck2.Test.make ~name:"int_in_range inclusive bounds" ~count:500
    QCheck2.Gen.(pair small_int (int_range 0 100))
    (fun (seed, width) ->
      let rng = Rng.make seed in
      let v = Rng.int_in_range rng ~lo:5 ~hi:(5 + width) in
      v >= 5 && v <= 5 + width)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "util"
    [
      ( "rng",
        [
          tc "determinism" test_rng_determinism;
          tc "split independence" test_rng_split_independence;
          tc "bounds" test_rng_bounds;
          tc "weighted" test_rng_weighted;
          QCheck_alcotest.to_alcotest prop_rng_int_range;
        ] );
      ( "stats",
        [
          tc "geomean" test_stats_geomean;
          tc "percentile" test_stats_percentile;
          tc "overhead" test_stats_overhead;
          QCheck_alcotest.to_alcotest prop_geomean_scale;
          QCheck_alcotest.to_alcotest prop_percentile_bounds;
        ] );
      ( "table",
        [
          tc "render" test_table_render;
          tc "arity check" test_table_mismatch;
          tc "formatters" test_fmt_helpers;
        ] );
    ]
