(* Differential fuzzing: generated random programs must observe exactly the
   same data-bearing results under Native execution and under every MVEE
   backend. This is the transparency property of Section 2.1, checked on
   arbitrary call sequences rather than hand-written scenarios.

   Only virtual-time-independent observations are compared (read data,
   sizes, offsets, poll readiness) — timestamps and pids legitimately
   differ between separate kernel instances. *)

open Remon_kernel
open Remon_core
open Remon_util
open Remon_workloads

(* A tiny safe op language over a fixture of one file, one pipe and one
   socketpair. *)
type fop =
  | F_pwrite of int * int (* offset bucket, length bucket *)
  | F_pread of int * int
  | F_lseek_read of int
  | F_append of int
  | F_fstat
  | F_pipe_roundtrip of int
  | F_sock_roundtrip of int
  | F_poll_pipe
  | F_stat_path
  | F_getdents

let gen_op =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun a b -> F_pwrite (a, b)) (int_range 0 7) (int_range 1 6);
        map2 (fun a b -> F_pread (a, b)) (int_range 0 7) (int_range 1 6);
        map (fun a -> F_lseek_read a) (int_range 0 7);
        map (fun a -> F_append a) (int_range 1 6);
        return F_fstat;
        map (fun a -> F_pipe_roundtrip a) (int_range 1 6);
        map (fun a -> F_sock_roundtrip a) (int_range 1 6);
        return F_poll_pipe;
        return F_stat_path;
        return F_getdents;
      ])

let payload seed len_bucket =
  let len = len_bucket * 17 in
  String.init len (fun i -> Char.chr (97 + ((seed + i) mod 26)))

(* Executes the op sequence and returns the observation log. *)
let observe ops (_ : Mvee.env) (log : string list ref) =
  let file = Api.create_file "/tmp/diff.bin" in
  let pipe_r, pipe_w = Api.pipe () in
  let sock_a, sock_b = Api.socketpair () in
  let record fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in
  List.iteri
    (fun i op ->
      match op with
      | F_pwrite (ob, lb) ->
        let n = Api.pwrite file (payload i lb) (ob * 64) in
        record "pwrite=%d" n
      | F_pread (ob, lb) ->
        let d = Api.pread file (lb * 17) (ob * 64) in
        record "pread=%S" d
      | F_lseek_read ob ->
        ignore (Api.lseek file (ob * 32));
        record "read=%S" (Api.read file 48)
      | F_append lb ->
        ignore (Api.lseek file 0);
        let st = Api.fstat file in
        let n = Api.pwrite file (payload i lb) st.Syscall.st_size in
        record "append=%d" n
      | F_fstat ->
        let st = Api.fstat file in
        record "size=%d" st.Syscall.st_size
      | F_pipe_roundtrip lb ->
        ignore (Api.write pipe_w (payload i lb));
        record "pipe=%S" (Api.read pipe_r (lb * 17))
      | F_sock_roundtrip lb ->
        ignore (Api.send sock_a (payload i lb));
        record "sock=%S" (Api.recv_exactly sock_b (lb * 17))
      | F_poll_pipe -> (
        match
          Remon_kernel.Sched.syscall
            (Syscall.Poll
               { fds = [ (pipe_r, Syscall.ev_in) ]; timeout_ns = Some 0 })
        with
        | Syscall.Ok_poll ready -> record "poll=%d" (List.length ready)
        | _ -> record "poll=err")
      | F_stat_path ->
        let st = Api.stat "/tmp/diff.bin" in
        record "stat=%d" st.Syscall.st_size
      | F_getdents -> (
        let fd = Api.open_file "/tmp" in
        (match Remon_kernel.Sched.syscall (Syscall.Getdents fd) with
        | Syscall.Ok_dents names -> record "dents=%d" (List.length names)
        | _ -> record "dents=err");
        Api.close fd))
    ops;
  Api.close file;
  Api.close pipe_r;
  Api.close pipe_w;
  Api.close sock_a;
  Api.close sock_b

let run_under (config : Mvee.config) ops =
  (* one log per replica: return the master's *)
  let logs = Array.make (max 1 config.Mvee.nreplicas) [] in
  let kernel = Kernel.create ~seed:config.Mvee.seed () in
  let h =
    Mvee.launch kernel config ~name:"diff" ~body:(fun env ->
        let log = ref [] in
        observe ops env log;
        logs.(env.Mvee.variant) <- List.rev !log)
  in
  Kernel.run kernel;
  let o = Mvee.finish h in
  (match o.Mvee.verdict with
  | Some v -> failwith ("unexpected verdict: " ^ Divergence.to_string v)
  | None -> ());
  logs.(0)

let differential backend_name config =
  QCheck2.Test.make
    ~name:(Printf.sprintf "random programs: %s == native" backend_name)
    ~count:30
    QCheck2.Gen.(list_size (int_range 1 25) gen_op)
    (fun ops ->
      let native = run_under (Runner.cfg_native ()) ops in
      let under = run_under config ops in
      if native <> under then
        QCheck2.Test.fail_reportf "observation mismatch:\nnative: %s\nmvee:   %s"
          (String.concat "; " native) (String.concat "; " under)
      else true)

(* The same property within one MVEE run: what the master observes, every
   slave observes (checked by construction for 3 replicas under lockstep,
   where any mismatch already aborts — here we assert the outputs). *)
let replica_agreement =
  QCheck2.Test.make ~name:"random programs: replicas observe identical logs"
    ~count:20
    QCheck2.Gen.(list_size (int_range 1 20) gen_op)
    (fun ops ->
      let logs = Array.make 3 [] in
      let kernel = Kernel.create () in
      let config =
        { Mvee.default_config with Mvee.nreplicas = 3;
          policy = Policy.spatial Classification.Nonsocket_rw_level }
      in
      let h =
        Mvee.launch kernel config ~name:"agree" ~body:(fun env ->
            let log = ref [] in
            observe ops env log;
            logs.(env.Mvee.variant) <- List.rev !log)
      in
      Kernel.run kernel;
      (match (Mvee.finish h).Mvee.verdict with
      | Some v -> QCheck2.Test.fail_reportf "verdict: %s" (Divergence.to_string v)
      | None -> ());
      logs.(0) <> [] && logs.(0) = logs.(1) && logs.(1) = logs.(2))

(* Bytestream model check: a random push/pull sequence behaves like a
   reference queue of characters. *)
let bytestream_model =
  QCheck2.Test.make ~name:"bytestream matches a reference queue" ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) (pair bool (int_range 0 20)))
    (fun script ->
      let bs = Bytestream.create () in
      let model = Buffer.create 64 in
      let consumed = ref 0 in
      let ok = ref true in
      List.iteri
        (fun i (is_push, n) ->
          if is_push then begin
            let s = String.init n (fun j -> Char.chr (65 + ((i + j) mod 26))) in
            Bytestream.push bs s;
            Buffer.add_string model s
          end
          else begin
            let got = Bytestream.pull bs n in
            let avail = Buffer.length model - !consumed in
            let want_n = min n avail in
            let want = Buffer.sub model !consumed want_n in
            consumed := !consumed + want_n;
            if got <> want then ok := false
          end)
        script;
      !ok && Bytestream.length bs = Buffer.length model - !consumed)

(* Normalization is idempotent and erases diversified fields. *)
let normalize_idempotent =
  QCheck2.Test.make ~name:"Callinfo.normalize is idempotent" ~count:200
    QCheck2.Gen.(
      oneof
        [
          map2 (fun fd n -> Syscall.Read (fd, n)) (int_range 0 64) (int_range 0 4096);
          map (fun s -> Syscall.Write (3, s)) (string_size (int_range 0 64));
          map (fun ud ->
              Syscall.Epoll_ctl
                { epfd = 4; op = Syscall.Epoll_add; fd = 5; events = Syscall.ev_in;
                  user_data = Int64.of_int ud })
            (int_range 0 1_000_000);
          map (fun a ->
              Syscall.Futex
                (Syscall.Futex_wait
                   { addr = Int64.of_int a; expected = 0; timeout_ns = None }))
            (int_range 0 1_000_000);
          map (fun a -> Syscall.Munmap { addr = Int64.of_int a; len = 4096 })
            (int_range 0 1_000_000);
        ])
    (fun call ->
      let n1 = Callinfo.normalize call in
      let n2 = Callinfo.normalize n1 in
      Syscall.equal_call n1 n2)

let normalize_erases_pointers =
  QCheck2.Test.make ~name:"diversified twins compare equal after normalize"
    ~count:200
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 1 1_000_000))
    (fun (p1, p2) ->
      let mk ud =
        Syscall.Epoll_ctl
          { epfd = 4; op = Syscall.Epoll_add; fd = 5; events = Syscall.ev_in;
            user_data = Int64.of_int ud }
      in
      Callinfo.equal_normalized (mk p1) (mk p2))

let arg_bytes_sane =
  QCheck2.Test.make ~name:"arg_bytes positive and monotone in payload" ~count:200
    QCheck2.Gen.(pair (int_range 0 1024) (int_range 0 1024))
    (fun (a, b) ->
      let small = min a b and big = max a b in
      let ba = Syscall.arg_bytes (Syscall.Write (1, String.make small 'x')) in
      let bb = Syscall.arg_bytes (Syscall.Write (1, String.make big 'x')) in
      ba > 0 && bb >= ba
      && Syscall.arg_bytes (Syscall.Read (1, big)) >= Syscall.arg_bytes (Syscall.Read (1, small)))

(* VFS model check: random create/write/read/unlink scripts against a
   reference map of path -> contents. *)
let vfs_model =
  QCheck2.Test.make ~name:"vfs matches a reference map" ~count:100
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (pair (int_range 0 4) (pair (int_range 0 5) (int_range 0 64))))
    (fun script ->
      let vfs = Vfs.create () in
      ignore (Vfs.mkdir_p vfs "/m");
      let model : (string, string) Hashtbl.t = Hashtbl.create 8 in
      let path i = Printf.sprintf "/m/f%d" i in
      let ok = ref true in
      List.iter
        (fun (op, (fi, len)) ->
          let p = path fi in
          match op with
          | 0 (* create *) -> (
            match Vfs.create_file vfs p with
            | Ok _ ->
              if not (Hashtbl.mem model p) then Hashtbl.replace model p ""
            | Error _ -> ok := false)
          | 1 (* overwrite *) -> (
            let data = String.make len 'v' in
            match Vfs.resolve vfs p with
            | Ok node ->
              if not (Hashtbl.mem model p) then ok := false
              else begin
                ignore (Vfs.truncate node ~size:0 ~now_ns:0);
                ignore (Vfs.write_at node ~offset:0 ~data ~now_ns:0);
                Hashtbl.replace model p data
              end
            | Error _ -> if Hashtbl.mem model p then ok := false)
          | 2 (* read *) -> (
            match (Vfs.resolve vfs p, Hashtbl.find_opt model p) with
            | Ok node, Some expected -> (
              match Vfs.read_at node ~offset:0 ~count:10_000 with
              | Ok got -> if got <> expected then ok := false
              | Error _ -> ok := false)
            | Error _, None -> ()
            | _ -> ok := false)
          | 3 (* unlink *) -> (
            match (Vfs.unlink vfs p, Hashtbl.mem model p) with
            | Ok (), true -> Hashtbl.remove model p
            | Error _, false -> ()
            | Ok (), false | Error _, true -> ok := false)
          | _ (* size check *) -> (
            match (Vfs.resolve vfs p, Hashtbl.find_opt model p) with
            | Ok node, Some expected ->
              if Vfs.file_size node <> String.length expected then ok := false
            | Error _, None -> ()
            | _ -> ok := false))
        script;
      !ok)

(* Pipe model check: writes and reads behave like a bounded queue. *)
let pipe_model =
  QCheck2.Test.make ~name:"pipe matches a bounded queue" ~count:100
    QCheck2.Gen.(list_size (int_range 1 50) (pair bool (int_range 0 200)))
    (fun script ->
      let pi = Pipe.create ~capacity:512 () in
      let model = Buffer.create 64 in
      let consumed = ref 0 in
      let pending () = Buffer.length model - !consumed in
      let ok = ref true in
      List.iteri
        (fun i (is_write, n) ->
          if is_write then begin
            let data = String.init n (fun j -> Char.chr (48 + ((i + j) mod 60))) in
            let accepted = Pipe.write pi data in
            (* the pipe accepts exactly up to its free space *)
            let expect = min n (512 - pending ()) in
            if accepted <> expect then ok := false;
            Buffer.add_string model (String.sub data 0 accepted)
          end
          else begin
            let got = Pipe.read pi n in
            let expect_n = min n (pending ()) in
            let expect = Buffer.sub model !consumed expect_n in
            consumed := !consumed + expect_n;
            if got <> expect then ok := false
          end)
        script;
      !ok && Pipe.bytes_available pi = pending ())

let () =
  ignore Rng.bool;
  Alcotest.run "differential"
    [
      ( "transparency",
        [
          QCheck_alcotest.to_alcotest
            (differential "remon/socket_rw" (Runner.cfg_remon Classification.Socket_rw_level));
          QCheck_alcotest.to_alcotest
            (differential "remon/base" (Runner.cfg_remon Classification.Base_level));
          QCheck_alcotest.to_alcotest
            (differential "ghumvee" (Runner.cfg_ghumvee ()));
          QCheck_alcotest.to_alcotest (differential "varan" (Runner.cfg_varan ()));
          QCheck_alcotest.to_alcotest replica_agreement;
        ] );
      ( "models",
        [
          QCheck_alcotest.to_alcotest bytestream_model;
          QCheck_alcotest.to_alcotest vfs_model;
          QCheck_alcotest.to_alcotest pipe_model;
          QCheck_alcotest.to_alcotest normalize_idempotent;
          QCheck_alcotest.to_alcotest normalize_erases_pointers;
          QCheck_alcotest.to_alcotest arg_bytes_sane;
        ] );
    ]
