(* Tests for the replication buffer, the file map, the epoll shadow map and
   the record/replay log — the shared-memory substrate of IP-MON. *)

open Remon_kernel
open Remon_core
module Rb = Replication_buffer

let mk ?(size = 4096) ?(nreplicas = 2) () = Rb.create ~size_bytes:size ~nreplicas

let read_call = Syscall.Read (4, 64)

let test_rb_basic_flow () =
  let rb = mk () in
  let e = Rb.master_append rb ~rank:0 ~call:read_call ~expect_block:false ~forwarded:false in
  Alcotest.(check int) "seq starts at 0" 0 e.Rb.seq;
  (* slave sees the record, but no result yet *)
  (match Rb.slave_lookup rb ~rank:0 ~variant:1 with
  | Some e' ->
    Alcotest.(check bool) "same record" true (e == e');
    Alcotest.(check bool) "no result yet" true (e'.Rb.result = None)
  | None -> Alcotest.fail "slave should see the record");
  let need_wake = Rb.master_publish rb e (Syscall.Ok_data "abc") in
  Alcotest.(check bool) "no waiters: wake skipped" false need_wake;
  Alcotest.(check int) "wakes skipped counted" 1 rb.Rb.wakes_skipped;
  Rb.slave_advance rb ~rank:0 ~variant:1;
  Alcotest.(check bool) "record consumed" true
    (Rb.slave_lookup rb ~rank:0 ~variant:1 = None)

let test_rb_wake_only_with_waiters () =
  let rb = mk () in
  let e = Rb.master_append rb ~rank:0 ~call:read_call ~expect_block:true ~forwarded:false in
  e.Rb.waiters <- 1;
  let need_wake = Rb.master_publish rb e (Syscall.Ok_data "x") in
  Alcotest.(check bool) "waiter present: wake issued" true need_wake;
  Alcotest.(check int) "wakes issued counted" 1 rb.Rb.wakes_issued

let test_rb_overflow_and_reset () =
  let rb = mk ~size:600 () in
  let big = Syscall.Read (4, 256) in
  Alcotest.(check bool) "record fits at all" true
    (Rb.fits_at_all rb ~bytes:(Rb.record_bytes big));
  let e1 = Rb.master_append rb ~rank:0 ~call:big ~expect_block:false ~forwarded:false in
  ignore (Rb.master_publish rb e1 (Syscall.Ok_data (String.make 256 'a')));
  Alcotest.(check bool) "second record would overflow" true
    (Rb.would_overflow rb ~bytes:(Rb.record_bytes big));
  Alcotest.(check bool) "not drained while slave lags" false (Rb.fully_drained rb);
  Rb.slave_advance rb ~rank:0 ~variant:1;
  Alcotest.(check bool) "drained after slave consumes" true (Rb.fully_drained rb);
  Rb.reset rb;
  Alcotest.(check int) "space reclaimed" 0 rb.Rb.used_bytes;
  Alcotest.(check int) "reset counted" 1 rb.Rb.resets;
  Alcotest.(check bool) "no more overflow" false
    (Rb.would_overflow rb ~bytes:(Rb.record_bytes big));
  (* positions keep increasing across resets *)
  let e2 = Rb.master_append rb ~rank:0 ~call:big ~expect_block:false ~forwarded:false in
  Alcotest.(check int) "seq continues after reset" 1 e2.Rb.seq

let test_rb_too_large_record () =
  let rb = mk ~size:128 () in
  Alcotest.(check bool) "oversized record rejected by CALCSIZE" false
    (Rb.fits_at_all rb ~bytes:(Rb.record_bytes (Syscall.Read (4, 4096))))

let test_rb_streams_independent () =
  let rb = mk ~nreplicas:3 () in
  let e0 = Rb.master_append rb ~rank:0 ~call:read_call ~expect_block:false ~forwarded:false in
  let e1 = Rb.master_append rb ~rank:1 ~call:read_call ~expect_block:false ~forwarded:false in
  Alcotest.(check int) "per-rank sequences independent" 0 e1.Rb.seq;
  ignore (Rb.master_publish rb e0 (Syscall.Ok_int 1));
  ignore (Rb.master_publish rb e1 (Syscall.Ok_int 2));
  (* variants consume independently *)
  Rb.slave_advance rb ~rank:0 ~variant:1;
  Alcotest.(check bool) "variant 2 still sees rank-0 record" true
    (Rb.slave_lookup rb ~rank:0 ~variant:2 <> None);
  Alcotest.(check bool) "variant 1 done with rank 0" true
    (Rb.slave_lookup rb ~rank:0 ~variant:1 = None)

let prop_rb_fifo =
  (* slaves always observe records in append order with matching payloads *)
  QCheck2.Test.make ~name:"rb preserves per-rank fifo order" ~count:100
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 1 64))
    (fun sizes ->
      let rb = Rb.create ~size_bytes:(1 lsl 20) ~nreplicas:2 in
      let expected =
        List.mapi
          (fun i n ->
            let call = Syscall.Read (i, n) in
            let e =
              Rb.master_append rb ~rank:0 ~call ~expect_block:false ~forwarded:false
            in
            ignore (Rb.master_publish rb e (Syscall.Ok_int n));
            call)
          sizes
      in
      List.for_all
        (fun call ->
          match Rb.slave_lookup rb ~rank:0 ~variant:1 with
          | Some e ->
            let ok = e.Rb.call = Some call in
            Rb.slave_advance rb ~rank:0 ~variant:1;
            ok
          | None -> false)
        expected)

let prop_rb_used_bytes =
  QCheck2.Test.make ~name:"used_bytes grows monotonically until reset" ~count:100
    QCheck2.Gen.(list_size (int_range 1 30) (int_range 0 128))
    (fun sizes ->
      let rb = Rb.create ~size_bytes:(1 lsl 22) ~nreplicas:2 in
      let ok = ref true in
      let prev = ref 0 in
      List.iter
        (fun n ->
          let e =
            Rb.master_append rb ~rank:0 ~call:(Syscall.Read (3, n))
              ~expect_block:false ~forwarded:false
          in
          ignore (Rb.master_publish rb e (Syscall.Ok_data (String.make n 'x')));
          if rb.Rb.used_bytes < !prev then ok := false;
          prev := rb.Rb.used_bytes)
        sizes;
      !ok)

(* ---- file map ---- *)

let test_file_map_basic () =
  let fm = File_map.create () in
  Alcotest.(check bool) "unknown fd has no class" true (File_map.class_of fm ~fd:5 = None);
  File_map.set fm ~fd:5 ~cls:Proc.Fd_socket ~nonblocking:false;
  Alcotest.(check bool) "socket classified" true (File_map.is_socket fm ~fd:5);
  Alcotest.(check bool) "blocking socket may block" true (File_map.may_block fm ~fd:5);
  File_map.set_nonblocking fm ~fd:5 true;
  Alcotest.(check bool) "nonblocking fd never blocks" false (File_map.may_block fm ~fd:5);
  File_map.clear fm ~fd:5;
  Alcotest.(check bool) "cleared" true (File_map.class_of fm ~fd:5 = None)

let test_file_map_bounds () =
  let fm = File_map.create () in
  (* out-of-range fds must not crash and never block *)
  File_map.set fm ~fd:99999 ~cls:Proc.Fd_regular ~nonblocking:false;
  Alcotest.(check bool) "oob fd ignored" true (File_map.class_of fm ~fd:99999 = None);
  Alcotest.(check bool) "negative fd" true (File_map.class_of fm ~fd:(-1) = None)

(* ---- epoll shadow map ---- *)

let test_epoll_map_roundtrip () =
  let em = Epoll_map.create ~nreplicas:2 in
  Epoll_map.register em ~variant:0 ~fd:7 ~user_data:0xAAAAL;
  Epoll_map.register em ~variant:1 ~fd:7 ~user_data:0xBBBBL;
  let master_events = [ (0xAAAAL, Syscall.ev_in) ] in
  let logical = Epoll_map.to_logical em master_events in
  Alcotest.(check bool) "translated to fd" true
    (fst (List.hd logical) = Epoll_map.Lfd 7);
  let slave_view = Epoll_map.to_variant em ~variant:1 logical in
  Alcotest.(check bool) "slave sees its own pointer" true
    (Int64.equal (fst (List.hd slave_view)) 0xBBBBL)

let test_epoll_map_reregister () =
  let em = Epoll_map.create ~nreplicas:2 in
  Epoll_map.register em ~variant:0 ~fd:3 ~user_data:1L;
  Epoll_map.register em ~variant:0 ~fd:3 ~user_data:2L;
  Alcotest.(check bool) "stale reverse binding dropped" true
    (Epoll_map.fd_of em ~variant:0 ~user_data:1L = None);
  Alcotest.(check bool) "new binding live" true
    (Epoll_map.fd_of em ~variant:0 ~user_data:2L = Some 3);
  Epoll_map.unregister em ~variant:0 ~fd:3;
  Alcotest.(check bool) "unregistered" true
    (Epoll_map.user_data_of em ~variant:0 ~fd:3 = None)

let prop_epoll_map_translation =
  QCheck2.Test.make ~name:"epoll translation is a bijection on registered fds"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 20) (int_range 0 100))
    (fun fds ->
      let fds = List.sort_uniq compare fds in
      let em = Epoll_map.create ~nreplicas:2 in
      List.iter
        (fun fd ->
          Epoll_map.register em ~variant:0 ~fd
            ~user_data:(Int64.of_int (0x1000 + fd));
          Epoll_map.register em ~variant:1 ~fd
            ~user_data:(Int64.of_int (0x2000 + fd)))
        fds;
      let master = List.map (fun fd -> (Int64.of_int (0x1000 + fd), Syscall.ev_in)) fds in
      let logical = Epoll_map.to_logical em master in
      let slave = Epoll_map.to_variant em ~variant:1 logical in
      List.for_all2
        (fun fd (ud, _) -> Int64.equal ud (Int64.of_int (0x2000 + fd)))
        fds slave)

(* ---- record/replay log ---- *)

let test_record_log_order () =
  let log = Record_log.create ~nreplicas:2 in
  Record_log.append log ~lock_id:1 ~thread_rank:2;
  Record_log.append log ~lock_id:1 ~thread_rank:1;
  (match Record_log.peek log ~variant:1 with
  | Some ev -> Alcotest.(check int) "first event rank" 2 ev.Record_log.thread_rank
  | None -> Alcotest.fail "expected event");
  Record_log.advance log ~variant:1;
  (match Record_log.peek log ~variant:1 with
  | Some ev -> Alcotest.(check int) "second event rank" 1 ev.Record_log.thread_rank
  | None -> Alcotest.fail "expected second event");
  Record_log.advance log ~variant:1;
  Alcotest.(check bool) "log drained" true (Record_log.peek log ~variant:1 = None)

let prop_record_log_growth =
  QCheck2.Test.make ~name:"record log grows without losing events" ~count:50
    QCheck2.Gen.(int_range 1 500)
    (fun n ->
      let log = Record_log.create ~nreplicas:2 in
      for i = 0 to n - 1 do
        Record_log.append log ~lock_id:(i mod 7) ~thread_rank:(i mod 3)
      done;
      let ok = ref true in
      for i = 0 to n - 1 do
        (match Record_log.peek log ~variant:1 with
        | Some ev ->
          if ev.Record_log.lock_id <> i mod 7 || ev.thread_rank <> i mod 3 then
            ok := false
        | None -> ok := false);
        Record_log.advance log ~variant:1
      done;
      !ok && Record_log.length log = n)

let tc = Alcotest.test_case

let () =
  Alcotest.run "replication-substrate"
    [
      ( "replication-buffer",
        [
          tc "basic master/slave flow" `Quick test_rb_basic_flow;
          tc "wake only with waiters" `Quick test_rb_wake_only_with_waiters;
          tc "overflow + arbitrated reset" `Quick test_rb_overflow_and_reset;
          tc "oversized record rejected" `Quick test_rb_too_large_record;
          tc "per-rank streams independent" `Quick test_rb_streams_independent;
          QCheck_alcotest.to_alcotest prop_rb_fifo;
          QCheck_alcotest.to_alcotest prop_rb_used_bytes;
        ] );
      ( "file-map",
        [
          tc "classify + blocking prediction" `Quick test_file_map_basic;
          tc "bounds" `Quick test_file_map_bounds;
        ] );
      ( "epoll-map",
        [
          tc "pointer translation round trip" `Quick test_epoll_map_roundtrip;
          tc "re-registration" `Quick test_epoll_map_reregister;
          QCheck_alcotest.to_alcotest prop_epoll_map_translation;
        ] );
      ( "record-log",
        [
          tc "fifo order per variant" `Quick test_record_log_order;
          QCheck_alcotest.to_alcotest prop_record_log_growth;
        ] );
    ]
