(* remon: command-line front end to the ReMon reproduction.

     remon list                          enumerate registered workloads
     remon run -w parsec.dedup           run a workload under an MVEE config
     remon attack [-b varan]             stage the Section 4 attack scenarios
     remon fleet --rate 0.004            chaos a fleet behind a load balancer
     remon pdes --shards 4 --verify      sharded multi-host run + determinism check
     remon policy                        print the Table 1 classification *)

open Cmdliner
open Remon_core
open Remon_sim
open Remon_workloads

(* ------------------------------------------------------------------ *)
(* Shared options *)

let backend_conv =
  let parse = function
    | "native" -> Ok Mvee.Native
    | "ghumvee" -> Ok Mvee.Ghumvee_only
    | "varan" -> Ok Mvee.Varan
    | "remon" -> Ok Mvee.Remon
    | s -> Error (`Msg (Printf.sprintf "unknown backend %S" s))
  in
  let print fmt b = Format.pp_print_string fmt (Mvee.backend_to_string b) in
  Arg.conv (parse, print)

let level_conv =
  let parse s =
    match Classification.level_of_string s with
    | Some l -> Ok (Some l)
    | None ->
      if s = "all" || s = "monitor-all" then Ok None
      else Error (`Msg (Printf.sprintf "unknown level %S" s))
  in
  let print fmt = function
    | Some l -> Format.pp_print_string fmt (Classification.level_to_string l)
    | None -> Format.pp_print_string fmt "monitor-all"
  in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(
    value
    & opt backend_conv Mvee.Remon
    & info [ "b"; "backend" ] ~docv:"BACKEND"
        ~doc:"MVEE backend: native, ghumvee, varan or remon.")

let replicas_arg =
  Arg.(
    value & opt int 2
    & info [ "n"; "replicas" ] ~docv:"N" ~doc:"Number of replicas.")

let level_arg =
  Arg.(
    value
    & opt level_conv (Some Classification.Socket_rw_level)
    & info [ "l"; "level" ] ~docv:"LEVEL"
        ~doc:
          "Spatial exemption level: base, nonsocket_ro, nonsocket_rw, \
           socket_ro, socket_rw, or monitor-all.")

let latency_arg =
  Arg.(
    value & opt float 0.1
    & info [ "latency" ] ~docv:"MS" ~doc:"One-way network latency in ms.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let faults_conv =
  let parse s =
    match Fault.of_string s with Ok p -> Ok p | Error msg -> Error (`Msg msg)
  in
  let print fmt p = Format.pp_print_string fmt (Fault.to_string p) in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt faults_conv []
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Deterministic fault-injection plan: comma-separated \
           KIND@AT[:VARIANT][=PARAM] specs, e.g. \
           'crash@12:1,delay@30:1=5ms,droprb@5'. Kinds: crash, kill, args, \
           delay, sockerr, again, droprb, corruptrb.")

let on_failure_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "kill-group" ] | [ "kill" ] -> Ok Mvee.Kill_group
    | [ "quarantine" ] -> Ok Mvee.Quarantine
    | "respawn" :: rest -> (
      let max_respawns =
        match rest with
        | [] -> Some 3
        | [ n ] -> int_of_string_opt n
        | _ -> None
      in
      match max_respawns with
      | Some max_respawns ->
        Ok (Mvee.Respawn { max_respawns; backoff_ns = Vtime.ms 1 })
      | None -> Error (`Msg (Printf.sprintf "bad respawn budget in %S" s)))
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown failure policy %S (kill-group, quarantine, respawn[:N])"
              s))
  in
  let print fmt = function
    | Mvee.Kill_group -> Format.pp_print_string fmt "kill-group"
    | Mvee.Quarantine -> Format.pp_print_string fmt "quarantine"
    | Mvee.Respawn { max_respawns; _ } ->
      Format.fprintf fmt "respawn:%d" max_respawns
  in
  Arg.conv (parse, print)

let on_failure_arg =
  Arg.(
    value
    & opt on_failure_conv Mvee.Kill_group
    & info [ "on-failure" ] ~docv:"POLICY"
        ~doc:
          "Recovery policy for non-master replica faults: kill-group (the \
           paper's behavior), quarantine (detach and continue degraded), or \
           respawn[:N] (quarantine, then replay the journal to bring a fresh \
           replica back; at most N respawns, default 3).")

let config_of backend nreplicas level seed faults on_failure =
  {
    Mvee.default_config with
    Mvee.backend;
    nreplicas;
    seed;
    policy =
      (match level with
      | Some l -> Policy.spatial l
      | None -> Policy.monitor_everything);
    faults;
    on_failure;
  }

(* ------------------------------------------------------------------ *)
(* Observability plumbing *)

module Obs = Remon_obs.Obs

(* Traces are test oracles: the write must be atomic so a concurrent
   reader (or an interrupted run) never sees a torn file. *)
let write_file_atomic path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc data;
  close_out oc;
  Sys.rename tmp path

let print_metrics rows =
  Printf.printf "\nmetrics:\n";
  List.iter (fun (k, v) -> Printf.printf "  %-44s %s\n" k v) rows

(* Dump the trace and/or print the metrics summary collected in [o]. *)
let finalize_obs ~trace_file ~metrics o =
  (match trace_file with
  | Some path ->
    write_file_atomic path (Obs.export_string o);
    Printf.printf "\ntrace written      : %s (%d events)\n" path
      (Remon_util.Vec.length o.Obs.trace.Remon_obs.Trace.events)
  | None -> ());
  if metrics then print_metrics (Obs.summary (Some o))

(* ------------------------------------------------------------------ *)
(* Commands *)

let list_cmd =
  let run () =
    List.iter
      (fun (name, w) -> Printf.printf "%-28s %s\n" name (Registry.describe w))
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List registered workloads.") Term.(const run $ const ())

(* --repeat mode: fan consecutive seeds out over the domain pool and print
   one summary row per seed, in seed order. When tracing is requested the
   base seed's run carries the sink; each job allocates its own [Obs.t]
   inside its own domain, so the exported bytes cannot depend on the
   domain count — that is the determinism contract the CI diff checks. *)
let run_repeated workload config latency ~repeat ~domains ~trace_file ~metrics =
  let seeds = List.init repeat (fun i -> config.Mvee.seed + i) in
  Printf.printf "running %d seeds (%d..%d) over %d domain(s)\n\n" repeat
    config.Mvee.seed
    (config.Mvee.seed + repeat - 1)
    domains;
  let want_obs seed =
    if (trace_file <> None || metrics) && seed = config.Mvee.seed then
      Some (Obs.create ())
    else None
  in
  let rows =
    match workload with
    | Registry.Profile_workload profile ->
      Remon_util.Pool.map ~domains
        (fun seed ->
          let config = { config with Mvee.seed = seed } in
          let obs = want_obs seed in
          let row =
            try
              let native =
                Runner.run_profile profile { config with Mvee.backend = Mvee.Native }
              in
              let under = Runner.run_profile ?obs profile config in
              let o = under.Runner.outcome in
              Printf.sprintf "seed %-6d normalized %.3f  syscalls %-7d faults %-3d verdict %s"
                seed
                (Vtime.to_float_ns under.Runner.duration
                /. Vtime.to_float_ns native.Runner.duration)
                o.Mvee.syscalls o.Mvee.faults_injected
                (match o.Mvee.verdict with
                | None -> "clean"
                | Some v -> Divergence.to_string v)
            with Runner.Mvee_terminated v ->
              Printf.sprintf "seed %-6d terminated: %s" seed (Divergence.to_string v)
          in
          (row, obs))
        seeds
    | Registry.Server_workload (server, client) ->
      Remon_util.Pool.map ~domains
        (fun seed ->
          let config = { config with Mvee.seed = seed } in
          let obs = want_obs seed in
          let row =
            try
              let native =
                Runner.run_server_bench ~latency ~server ~client
                  { config with Mvee.backend = Mvee.Native }
              in
              let under =
                Runner.run_server_bench ~latency ?obs ~server ~client config
              in
              Printf.sprintf "seed %-6d overhead %-8s responses %d  %s" seed
                (Remon_util.Table.fmt_pct
                   (Vtime.to_float_ns under.Runner.client_duration
                    /. Vtime.to_float_ns native.Runner.client_duration
                   -. 1.))
                under.Runner.responses
                (Latency.summary_to_string under.Runner.latency)
            with Runner.Mvee_terminated v ->
              Printf.sprintf "seed %-6d terminated: %s" seed (Divergence.to_string v)
          in
          (row, obs))
        seeds
  in
  List.iter (fun (row, _) -> print_endline row) rows;
  List.iter
    (fun (_, obs) ->
      match obs with
      | Some o -> finalize_obs ~trace_file ~metrics o
      | None -> ())
    rows

(* Publish the recording a run captured ([--record FILE]); the workload
   name is patched in so `remon replay` can resolve the body again. *)
let dump_recording ~record ~workload_name (outcome : Mvee.outcome option) =
  match (record, outcome) with
  | Some path, Some { Mvee.recording = Some r; _ } ->
    let r = Recording.with_workload r workload_name in
    Recording.to_file r path;
    Printf.printf "recording written  : %s (%d events, digest %s)\n" path
      (Array.length r.Recording.events)
      (Recording.stream_digest r)
  | Some path, _ ->
    Printf.eprintf "recording NOT written to %s: no stream captured\n" path
  | None, _ -> ()

let run_workload name backend nreplicas level latency seed faults on_failure
    trace_lines trace_file metrics repeat domains record =
  match Registry.find name with
  | None ->
    Printf.eprintf "unknown workload %S; try `remon list`\n" name;
    exit 2
  | Some workload -> (
    if record <> None && repeat > 1 then begin
      Printf.eprintf "--record needs a single run (drop --repeat)\n";
      exit 2
    end;
    let config = config_of backend nreplicas level seed faults on_failure in
    let config = { config with Mvee.record = record <> None } in
    let latency = Vtime.of_float_ns (latency *. 1e6) in
    if repeat > 1 then begin
      Printf.printf "workload : %s\n" (Registry.describe workload);
      Printf.printf "backend  : %s, %d replica(s), policy %s\n\n"
        (Mvee.backend_to_string backend)
        nreplicas
        (Policy.to_string config.Mvee.policy);
      run_repeated workload config latency ~repeat ~domains ~trace_file ~metrics
    end
    else
    let obs = if trace_file <> None || metrics then Some (Obs.create ()) else None in
    let dump_trace kernel =
      if trace_lines > 0 then begin
        Printf.printf "\nsyscall trace (first %d lines):\n" trace_lines;
        List.iteri
          (fun i line -> if i < trace_lines then Printf.printf "  %s\n" line)
          (Remon_kernel.Kernel.trace kernel)
      end
    in
    Printf.printf "workload : %s\n" (Registry.describe workload);
    Printf.printf "backend  : %s, %d replica(s), policy %s\n\n"
      (Mvee.backend_to_string backend)
      nreplicas
      (Policy.to_string config.Mvee.policy);
    try match workload with
    | Registry.Profile_workload profile ->
      let native = Runner.run_profile profile { config with Mvee.backend = Mvee.Native } in
      let under =
        if trace_lines > 0 then begin
          let kernel = Remon_kernel.Kernel.create ~seed:config.Mvee.seed () in
          Remon_kernel.Kernel.enable_tracing kernel;
          (match obs with
          | Some o -> Remon_kernel.Kernel.set_obs kernel o
          | None -> ());
          let h = Mvee.launch kernel config ~name ~body:(Profile.body profile) in
          Remon_kernel.Kernel.run kernel;
          let outcome = Mvee.finish h in
          dump_trace kernel;
          { Runner.duration = outcome.Mvee.duration; outcome }
        end
        else Runner.run_profile ?obs profile config
      in
      let o = under.Runner.outcome in
      Printf.printf "native runtime     : %s\n" (Vtime.to_string native.Runner.duration);
      Printf.printf "mvee runtime       : %s (normalized %.2f)\n"
        (Vtime.to_string under.Runner.duration)
        (Vtime.to_float_ns under.Runner.duration
        /. Vtime.to_float_ns native.Runner.duration);
      Printf.printf "syscalls           : %d (monitored %d, fast-path %d)\n"
        o.Mvee.syscalls o.Mvee.monitored o.Mvee.ipmon_fastpath;
      Printf.printf "ptrace stops       : %d, rendezvous %d\n" o.Mvee.ptrace_stops
        o.Mvee.rendezvous;
      Printf.printf "rb records/resets  : %d/%d\n" o.Mvee.rb_records o.Mvee.rb_resets;
      (match o.Mvee.verdict with
      | Some v -> Printf.printf "verdict            : %s\n" (Divergence.to_string v)
      | None -> ());
      if faults <> [] || o.Mvee.faults_injected > 0 then begin
        Printf.printf "faults injected    : %d (plan: %s)\n" o.Mvee.faults_injected
          (Fault.to_string faults);
        Printf.printf "quarantines        : %d, respawns %d, watchdog retries %d\n"
          o.Mvee.quarantines o.Mvee.respawns o.Mvee.watchdog_retries;
        Printf.printf "degraded time      : %s\n" (Vtime.to_string o.Mvee.degraded_ns)
      end;
      dump_recording ~record ~workload_name:name (Some o);
      (match obs with Some o -> finalize_obs ~trace_file ~metrics o | None -> ())
    | Registry.Server_workload (server, client) ->
      let native =
        Runner.run_server_bench ~latency ~server ~client
          { config with Mvee.backend = Mvee.Native }
      in
      let under = Runner.run_server_bench ~latency ?obs ~server ~client config in
      Printf.printf "native client time : %s\n"
        (Vtime.to_string native.Runner.client_duration);
      Printf.printf "mvee client time   : %s (overhead %s)\n"
        (Vtime.to_string under.Runner.client_duration)
        (Remon_util.Table.fmt_pct
           (Vtime.to_float_ns under.Runner.client_duration
            /. Vtime.to_float_ns native.Runner.client_duration
           -. 1.));
      Printf.printf "responses          : %d (transport errors %d, truncated %d)\n"
        under.Runner.responses under.Runner.transport_errors
        under.Runner.truncated_requests;
      Printf.printf "request latency    : %s\n"
        (Latency.summary_to_string under.Runner.latency);
      Printf.printf "  (native          : %s)\n"
        (Latency.summary_to_string native.Runner.latency);
      dump_recording ~record ~workload_name:name
        (Some under.Runner.server_outcome);
      (match obs with Some o -> finalize_obs ~trace_file ~metrics o | None -> ())
    with Runner.Mvee_terminated v ->
      (* a fatal verdict (e.g. under --faults with the kill-group policy)
         is a legitimate outcome, not a crash — dump what was collected
         before exiting, it is exactly what a failure wants looked at.
         The recording especially: it reproduces this very verdict. *)
      Printf.printf "mvee terminated    : %s\n" (Divergence.to_string v);
      dump_recording ~record ~workload_name:name !Runner.last_outcome;
      (match obs with Some o -> finalize_obs ~trace_file ~metrics o | None -> ());
      exit 1)

let run_cmd =
  let name_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload name (see `remon list`).")
  in
  let trace_lines_arg =
    Arg.(
      value & opt int 0
      & info [ "trace-lines" ] ~docv:"N"
          ~doc:"Print the first N human-readable syscall-trace lines.")
  in
  let trace_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a structured trace of the MVEE run to FILE in Chrome \
             trace-event JSON (load it in Perfetto / chrome://tracing). \
             Identical seeds produce byte-identical files, independent of \
             --domains. With --repeat, the base seed's run is traced.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the metrics summary: per-syscall latency histograms, \
             rendezvous and route counts, RB occupancy high-water marks, \
             ptrace round-trips.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Run the workload N times with consecutive seeds (seed, seed+1, \
             ...) and print one summary row per seed.")
  in
  let domains_arg =
    Arg.(
      value
      & opt int (Remon_util.Pool.default_domains ())
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Fan --repeat runs out over D domains (default: \
             REMON_DOMAINS or the machine's core count minus one).")
  in
  let record_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:
            "Capture the master's full replicated stream (syscalls, \
             lock-order decisions, signal deliveries, ring flushes) into \
             FILE as a versioned binary recording; replay it offline with \
             `remon replay FILE`. Written even when the run is killed by a \
             verdict — the recording reproduces that verdict.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload under an MVEE configuration.")
    Term.(
      const run_workload $ name_arg $ backend_arg $ replicas_arg $ level_arg
      $ latency_arg $ seed_arg $ faults_arg $ on_failure_arg $ trace_lines_arg
      $ trace_file_arg $ metrics_arg $ repeat_arg $ domains_arg $ record_arg)

(* ------------------------------------------------------------------ *)
(* remon replay FILE: offline replay + divergence bisection *)

let print_header (h : Recording.header) =
  Printf.printf "format    : v%d\n" Recording.version;
  Printf.printf "backend   : %s, %d replica(s)\n" h.Recording.backend
    h.Recording.nreplicas;
  Printf.printf "workload  : %s\n"
    (if h.Recording.workload = "" then "<unnamed>" else h.Recording.workload);
  Printf.printf "seed      : %d, level %s, on-failure %s\n" h.Recording.seed
    h.Recording.level h.Recording.on_failure;
  if h.Recording.faults <> "" then
    Printf.printf "faults    : %s\n" h.Recording.faults

let replay_recording file backend context show_events trace_file metrics =
  match Recording.of_file file with
  | Error e ->
    Printf.eprintf "cannot load %s: %s\n" file (Remon_kernel.Syswire.error_to_string e);
    exit 2
  | Ok recorded -> (
    let h = recorded.Recording.header in
    print_header h;
    Printf.printf "events    : %d (stream digest %s)\n"
      (Array.length recorded.Recording.events)
      (Recording.stream_digest recorded);
    (match recorded.Recording.verdict with
    | Some (_, rendered) -> Printf.printf "verdict   : %s\n" rendered
    | None -> Printf.printf "verdict   : clean\n");
    if show_events > 0 then begin
      Printf.printf "\nfirst %d records:\n" show_events;
      Array.iteri
        (fun i ev ->
          if i < show_events then
            Printf.printf "  %6d  %s\n" i (Recording.event_to_string ev))
        recorded.Recording.events
    end;
    match Registry.find h.Recording.workload with
    | None ->
      Printf.eprintf
        "\nworkload %S is not in the registry (a test-harness recording?); \
         cannot re-execute it here. The header, digest and records above \
         are still authoritative.\n"
        h.Recording.workload;
      exit 2
    | Some (Registry.Server_workload _) ->
      Printf.eprintf
        "\nserver workloads need a live client fleet; offline replay \
         re-executes profile workloads only.\n";
      exit 2
    | Some (Registry.Profile_workload profile) -> (
      let obs =
        if trace_file <> None || metrics then Some (Obs.create ()) else None
      in
      Printf.printf "\nreplaying under %s...\n"
        (match backend with
        | Some b -> Mvee.backend_to_string b
        | None -> h.Recording.backend);
      match
        Replayer.replay ?backend ?context ?obs recorded
          ~body:(Profile.body profile)
      with
      | Error msg ->
        Printf.eprintf "replay failed: %s\n" msg;
        exit 2
      | Ok report ->
        let cross = backend <> None && Some h.Recording.backend <> Option.map Mvee.backend_to_string backend in
        Printf.printf "replayed  : %d events (stream digest %s)\n"
          (Array.length report.Replayer.replayed.Recording.events)
          (Recording.stream_digest report.Replayer.replayed);
        (match report.Replayer.replayed.Recording.verdict with
        | Some (_, rendered) -> Printf.printf "verdict   : %s\n" rendered
        | None -> Printf.printf "verdict   : clean\n");
        Printf.printf "identical : %s\n"
          (if report.Replayer.identical then "yes (byte-identical recording)"
           else "no");
        Printf.printf "verdicts  : %s\n"
          (if report.Replayer.verdict_class_agrees then "same class"
           else "DIFFERENT class");
        (match report.Replayer.divergence with
        | Some d ->
          Printf.printf "\n%s\n" (Divergence.replay_divergence_to_string d)
        | None -> ());
        (match obs with
        | Some o -> finalize_obs ~trace_file ~metrics o
        | None -> ());
        (* exit 0 = replay agrees with the recording: byte-identical on
           the same backend, verdict-class agreement across backends *)
        let ok =
          if cross then report.Replayer.verdict_class_agrees
          else report.Replayer.identical
        in
        exit (if ok then 0 else 1)))

let replay_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Recording written by `remon run --record`.")
  in
  let backend_override_arg =
    Arg.(
      value
      & opt (some backend_conv) None
      & info [ "b"; "backend" ] ~docv:"BACKEND"
          ~doc:
            "Replay under this backend instead of the recorded one \
             (cross-backend replay compares verdict classes, not bytes).")
  in
  let context_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "context" ] ~docv:"K"
          ~doc:
            "Half-width of the record window printed around the first \
             divergence (default 3).")
  in
  let show_events_arg =
    Arg.(
      value & opt int 0
      & info [ "show-events" ] ~docv:"N"
          ~doc:"Print the first N decoded records before replaying.")
  in
  let trace_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write the replay run's structured trace to FILE.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Print the replay run's metrics summary.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a recording offline: re-execute its configuration, check \
          the replayed stream against the recorded one byte for byte, and \
          on a fork binary-search for the first divergent record.")
    Term.(
      const replay_recording $ file_arg $ backend_override_arg $ context_arg
      $ show_events_arg $ trace_file_arg $ metrics_arg)

let attack_cmd =
  let run backend nreplicas level seed =
    let config = config_of backend nreplicas level seed [] Mvee.Kill_group in
    List.iter
      (fun r -> Format.printf "%a@." Attack.pp_report r)
      (Attack.all_scenarios ~config ())
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Stage the Section 4 attack scenarios.")
    Term.(const run $ backend_arg $ replicas_arg $ level_arg $ seed_arg)

let fleet_cmd =
  let module Fchaos = Remon_fleet.Chaos in
  let module Lb = Remon_fleet.Lb in
  let instances_arg =
    Arg.(
      value & opt int 3
      & info [ "i"; "instances" ] ~docv:"N"
          ~doc:"MVEE instances behind the load balancer.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"P"
          ~doc:
            "Chaos fault rate: per-syscall-index probability of an injected \
             fault (crash, delay or transient socket error) in each \
             instance's plan. Masters are fair game.")
  in
  let requests_arg =
    Arg.(
      value & opt int 150
      & info [ "requests" ] ~docv:"N" ~doc:"Total client requests.")
  in
  let workers_arg =
    Arg.(
      value & opt int 6
      & info [ "workers" ] ~docv:"N" ~doc:"Open-loop client workers.")
  in
  let no_recovery_arg =
    Arg.(
      value & flag
      & info [ "no-recovery" ]
          ~doc:
            "Disable the recovery ladder (intra-instance respawn and fleet \
             respawn): the availability-floor baseline.")
  in
  let policy_arg =
    let policy_conv =
      let parse = function
        | "round-robin" | "rr" -> Ok Lb.Round_robin
        | "least-conns" | "lc" -> Ok Lb.Least_conns
        | s -> Error (`Msg (Printf.sprintf "unknown LB policy %S" s))
      in
      let print fmt = function
        | Lb.Round_robin -> Format.pp_print_string fmt "round-robin"
        | Lb.Least_conns -> Format.pp_print_string fmt "least-conns"
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt policy_conv Lb.Round_robin
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Load-balancing policy: round-robin or least-conns.")
  in
  let rolling_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "rolling" ] ~docv:"MAX_UNAVAILABLE"
          ~doc:
            "Run a rolling restart of the whole fleet under the live \
             traffic, at most MAX_UNAVAILABLE instances out at once.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the metrics summary (fleet probe/eject/respawn counters \
             included).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a structured trace of the chaos scenario to FILE in \
             Chrome trace-event JSON (instance_down/instance_respawn and \
             recovery instants included).")
  in
  let run backend nreplicas instances rate requests workers no_recovery policy
      rolling seed metrics trace_file =
    let cfg =
      {
        Fchaos.default_cfg with
        Fchaos.backend;
        nreplicas;
        instances;
        fault_rate = rate;
        requests;
        workers;
        recovery = not no_recovery;
        policy;
        rolling;
        seed;
        trace = metrics;
      }
    in
    let obs =
      if trace_file <> None then Some (Remon_obs.Obs.create ()) else None
    in
    Printf.printf "fleet    : %d x %s (%d replicas), LB %s\n" instances
      (Mvee.backend_to_string backend)
      nreplicas
      (match policy with
      | Lb.Round_robin -> "round-robin"
      | Lb.Least_conns -> "least-conns");
    Printf.printf "traffic  : %d requests over %d open-loop workers\n" requests
      workers;
    Printf.printf "chaos    : rate %.4f, recovery %s%s\n\n" rate
      (if no_recovery then "off" else "on")
      (match rolling with
      | Some mu -> Printf.sprintf ", rolling restart (max-unavailable %d)" mu
      | None -> "");
    let r = Fchaos.run_scenario ?obs cfg in
    Printf.printf "availability       : %.3f (%d/%d, %d dropped)\n"
      r.Fchaos.availability r.Fchaos.succeeded r.Fchaos.attempted
      r.Fchaos.failed;
    Printf.printf "client latency     : %s\n"
      (Latency.summary_to_string r.Fchaos.client_latency);
    Printf.printf "lb                 : %d proxied, %d failovers, %d errors\n"
      r.Fchaos.lb_proxied r.Fchaos.failovers r.Fchaos.lb_errors;
    Printf.printf "health             : %d ejections, %d readmissions\n"
      r.Fchaos.ejections r.Fchaos.readmissions;
    Printf.printf "fleet recovery     : %d instances down, %d fleet respawns\n"
      r.Fchaos.instance_failures r.Fchaos.fleet_respawns;
    Printf.printf "intra-instance     : %d quarantines, %d respawns, %d \
                   watchdog retries\n"
      r.Fchaos.quarantines r.Fchaos.respawns r.Fchaos.watchdog_retries;
    Printf.printf "faults injected    : %d\n" r.Fchaos.faults_injected;
    Printf.printf "connect retries    : %d\n" r.Fchaos.connect_retries;
    if r.Fchaos.verdict_classes <> [] then
      Printf.printf "verdicts           : %s\n"
        (String.concat ", " r.Fchaos.verdict_classes);
    if metrics then print_metrics r.Fchaos.metrics;
    match obs with
    | Some o -> finalize_obs ~trace_file ~metrics:false o
    | None -> ()
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run an MVEE fleet behind a load balancer under chaos: injected \
          faults, health-probe ejection, fleet respawn and rolling restarts.")
    Term.(
      const run $ backend_arg $ replicas_arg $ instances_arg $ rate_arg
      $ requests_arg $ workers_arg $ no_recovery_arg $ policy_arg
      $ rolling_arg $ seed_arg $ metrics_arg $ trace_arg)

let pdes_cmd =
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ]
          ~docv:"N"
          ~doc:
            "Host shards run on OCaml domains (1 = sequential reference; \
             clamped to the host count). Outcomes are byte-identical at \
             every value.")
  in
  let hosts_arg =
    Arg.(
      value & opt int 4
      & info [ "hosts" ] ~docv:"N"
          ~doc:
            "Simulated server hosts, one MVEE group each; a client host is \
             added on top.")
  in
  let requests_arg =
    Arg.(
      value & opt int 60
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per server group.")
  in
  let latency_arg =
    Arg.(
      value & opt int 200
      & info [ "link-latency-us" ] ~docv:"US"
          ~doc:
            "Inter-host link latency in microseconds — also the \
             conservative synchronizer's lookahead.")
  in
  let pdes_faults_arg =
    Arg.(
      value & opt string ""
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:"Fault plan for the host-0 group (same syntax as run).")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Re-run sequentially (shards=1) and fail unless digests and \
             recordings match byte-for-byte.")
  in
  let connections_arg =
    Arg.(
      value & opt int 0
      & info [ "connections" ] ~docv:"N"
          ~doc:
            "Run the herd tier instead of the MVEE topology: N simulated \
             connections spread over many echo cells (two hosts each). \
             Scales to ~10^6.")
  in
  let fixed_arg =
    Arg.(
      value & flag
      & info [ "fixed-lookahead" ]
          ~doc:
            "Use the single-latency (fixed) lookahead instead of adaptive \
             per-pair bounds. Outcomes are byte-identical either way; only \
             round counts and wall clock differ.")
  in
  let report_memory ~connections =
    (* stderr only: stdout must stay byte-identical across shard counts,
       and GC numbers never are *)
    let heap_words = (Gc.quick_stat ()).Gc.top_heap_words in
    Printf.eprintf "peak heap          : %d words (%d MiB)\n" heap_words
      (heap_words * (Sys.word_size / 8) / (1024 * 1024));
    if connections > 0 then
      Printf.eprintf "bytes/connection   : %d (end-to-end peak)\n"
        (heap_words * (Sys.word_size / 8) / connections);
    Printf.eprintf "stream pair cost   : %d bytes (flat-state probe)\n%!"
      (Topology.stream_pair_cost_bytes ())
  in
  let run backend nreplicas shards hosts requests latency_us faults seed
      verify connections fixed =
    let mode = if fixed then World.Fixed else World.Adaptive in
    if connections > 0 then begin
      let herd = Topology.herd_of_connections ~seed connections in
      Printf.eprintf "shards   : %d\n%!" shards;
      let r = Topology.run_herd ~shards ~mode herd in
      print_string r.Topology.hr_digest;
      Printf.eprintf "rounds             : %d\n" r.Topology.hr_rounds;
      Printf.eprintf "events             : %d\n" r.Topology.hr_events;
      report_memory ~connections:r.Topology.hr_connections;
      if verify then begin
        let ref_r = Topology.run_herd ~shards:1 herd in
        let ok = r.Topology.hr_digest = ref_r.Topology.hr_digest in
        Printf.printf "\nverify vs shards=1: %s\n"
          (if ok then "identical" else "DIVERGED");
        if not ok then exit 1
      end
    end
    else begin
      let sc =
        {
          Topology.id = 0;
          seed;
          server_hosts = hosts;
          nreplicas;
          backend;
          arch = Servers.Epoll_loop;
          requests_per_server = requests;
          concurrency = 4;
          requests_per_conn = 4;
          link_latency = Vtime.us latency_us;
          faults;
          record = true;
        }
      in
      (* the shard count goes to stderr: stdout must be byte-identical for
         every --shards value, so CI can diff it directly *)
      Printf.printf "%s\n\n" (Topology.render sc);
      Printf.eprintf "shards   : %d\n%!" shards;
      let r = Topology.run ~shards ~mode sc in
      print_string r.Topology.digest;
      Printf.eprintf "rounds             : %d\n" r.Topology.rounds;
      report_memory ~connections:0;
      if verify then begin
        let ref_r = Topology.run ~shards:1 sc in
        let ok =
          r.Topology.digest = ref_r.Topology.digest
          && List.length r.Topology.recordings
             = List.length ref_r.Topology.recordings
          && List.for_all2
               (fun (h1, a) (h2, b) ->
                 h1 = h2 && Recording.to_string a = Recording.to_string b)
               r.Topology.recordings ref_r.Topology.recordings
        in
        Printf.printf "\nverify vs shards=1: %s\n"
          (if ok then "identical" else "DIVERGED");
        if not ok then exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "pdes"
       ~doc:
         "Run a multi-host MVEE topology under the sharded \
          conservative-parallel simulator; outcomes are byte-identical at \
          every shard count.")
    Term.(
      const run $ backend_arg $ replicas_arg $ shards_arg $ hosts_arg
      $ requests_arg $ latency_arg $ pdes_faults_arg $ seed_arg $ verify_arg
      $ connections_arg $ fixed_arg)

let policy_cmd =
  let run () =
    List.iter
      (fun (lvl, uncond, cond) ->
        Printf.printf "%s\n" (Classification.level_to_string lvl);
        Printf.printf "  unconditional: %s\n"
          (String.concat ", " (List.map Remon_kernel.Sysno.to_string uncond));
        if cond <> [] then
          Printf.printf "  conditional  : %s\n"
            (String.concat ", " (List.map Remon_kernel.Sysno.to_string cond)))
      (Classification.table1 ())
  in
  Cmd.v
    (Cmd.info "policy" ~doc:"Print the Table 1 syscall classification.")
    Term.(const run $ const ())

let () =
  let doc = "ReMon MVEE reproduction: secure and efficient application monitoring" in
  let info = Cmd.info "remon" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            replay_cmd;
            attack_cmd;
            fleet_cmd;
            pdes_cmd;
            policy_cmd;
          ]))
