(* remon: command-line front end to the ReMon reproduction.

     remon list                          enumerate registered workloads
     remon run -w parsec.dedup           run a workload under an MVEE config
     remon attack [-b varan]             stage the Section 4 attack scenarios
     remon fleet --rate 0.004            chaos a fleet behind a load balancer
     remon policy                        print the Table 1 classification *)

open Cmdliner
open Remon_core
open Remon_sim
open Remon_workloads

(* ------------------------------------------------------------------ *)
(* Shared options *)

let backend_conv =
  let parse = function
    | "native" -> Ok Mvee.Native
    | "ghumvee" -> Ok Mvee.Ghumvee_only
    | "varan" -> Ok Mvee.Varan
    | "remon" -> Ok Mvee.Remon
    | s -> Error (`Msg (Printf.sprintf "unknown backend %S" s))
  in
  let print fmt b = Format.pp_print_string fmt (Mvee.backend_to_string b) in
  Arg.conv (parse, print)

let level_conv =
  let parse s =
    match Classification.level_of_string s with
    | Some l -> Ok (Some l)
    | None ->
      if s = "all" || s = "monitor-all" then Ok None
      else Error (`Msg (Printf.sprintf "unknown level %S" s))
  in
  let print fmt = function
    | Some l -> Format.pp_print_string fmt (Classification.level_to_string l)
    | None -> Format.pp_print_string fmt "monitor-all"
  in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(
    value
    & opt backend_conv Mvee.Remon
    & info [ "b"; "backend" ] ~docv:"BACKEND"
        ~doc:"MVEE backend: native, ghumvee, varan or remon.")

let replicas_arg =
  Arg.(
    value & opt int 2
    & info [ "n"; "replicas" ] ~docv:"N" ~doc:"Number of replicas.")

let level_arg =
  Arg.(
    value
    & opt level_conv (Some Classification.Socket_rw_level)
    & info [ "l"; "level" ] ~docv:"LEVEL"
        ~doc:
          "Spatial exemption level: base, nonsocket_ro, nonsocket_rw, \
           socket_ro, socket_rw, or monitor-all.")

let latency_arg =
  Arg.(
    value & opt float 0.1
    & info [ "latency" ] ~docv:"MS" ~doc:"One-way network latency in ms.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let faults_conv =
  let parse s =
    match Fault.of_string s with Ok p -> Ok p | Error msg -> Error (`Msg msg)
  in
  let print fmt p = Format.pp_print_string fmt (Fault.to_string p) in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt faults_conv []
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Deterministic fault-injection plan: comma-separated \
           KIND@AT[:VARIANT][=PARAM] specs, e.g. \
           'crash@12:1,delay@30:1=5ms,droprb@5'. Kinds: crash, kill, args, \
           delay, sockerr, again, droprb, corruptrb.")

let on_failure_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "kill-group" ] | [ "kill" ] -> Ok Mvee.Kill_group
    | [ "quarantine" ] -> Ok Mvee.Quarantine
    | "respawn" :: rest -> (
      let max_respawns =
        match rest with
        | [] -> Some 3
        | [ n ] -> int_of_string_opt n
        | _ -> None
      in
      match max_respawns with
      | Some max_respawns ->
        Ok (Mvee.Respawn { max_respawns; backoff_ns = Vtime.ms 1 })
      | None -> Error (`Msg (Printf.sprintf "bad respawn budget in %S" s)))
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown failure policy %S (kill-group, quarantine, respawn[:N])"
              s))
  in
  let print fmt = function
    | Mvee.Kill_group -> Format.pp_print_string fmt "kill-group"
    | Mvee.Quarantine -> Format.pp_print_string fmt "quarantine"
    | Mvee.Respawn { max_respawns; _ } ->
      Format.fprintf fmt "respawn:%d" max_respawns
  in
  Arg.conv (parse, print)

let on_failure_arg =
  Arg.(
    value
    & opt on_failure_conv Mvee.Kill_group
    & info [ "on-failure" ] ~docv:"POLICY"
        ~doc:
          "Recovery policy for non-master replica faults: kill-group (the \
           paper's behavior), quarantine (detach and continue degraded), or \
           respawn[:N] (quarantine, then replay the journal to bring a fresh \
           replica back; at most N respawns, default 3).")

let config_of backend nreplicas level seed faults on_failure =
  {
    Mvee.default_config with
    Mvee.backend;
    nreplicas;
    seed;
    policy =
      (match level with
      | Some l -> Policy.spatial l
      | None -> Policy.monitor_everything);
    faults;
    on_failure;
  }

(* ------------------------------------------------------------------ *)
(* Observability plumbing *)

module Obs = Remon_obs.Obs

(* Traces are test oracles: the write must be atomic so a concurrent
   reader (or an interrupted run) never sees a torn file. *)
let write_file_atomic path data =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc data;
  close_out oc;
  Sys.rename tmp path

let print_metrics rows =
  Printf.printf "\nmetrics:\n";
  List.iter (fun (k, v) -> Printf.printf "  %-44s %s\n" k v) rows

(* Dump the trace and/or print the metrics summary collected in [o]. *)
let finalize_obs ~trace_file ~metrics o =
  (match trace_file with
  | Some path ->
    write_file_atomic path (Obs.export_string o);
    Printf.printf "\ntrace written      : %s (%d events)\n" path
      (Remon_util.Vec.length o.Obs.trace.Remon_obs.Trace.events)
  | None -> ());
  if metrics then print_metrics (Obs.summary (Some o))

(* ------------------------------------------------------------------ *)
(* Commands *)

let list_cmd =
  let run () =
    List.iter
      (fun (name, w) -> Printf.printf "%-28s %s\n" name (Registry.describe w))
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List registered workloads.") Term.(const run $ const ())

(* --repeat mode: fan consecutive seeds out over the domain pool and print
   one summary row per seed, in seed order. When tracing is requested the
   base seed's run carries the sink; each job allocates its own [Obs.t]
   inside its own domain, so the exported bytes cannot depend on the
   domain count — that is the determinism contract the CI diff checks. *)
let run_repeated workload config latency ~repeat ~domains ~trace_file ~metrics =
  let seeds = List.init repeat (fun i -> config.Mvee.seed + i) in
  Printf.printf "running %d seeds (%d..%d) over %d domain(s)\n\n" repeat
    config.Mvee.seed
    (config.Mvee.seed + repeat - 1)
    domains;
  let want_obs seed =
    if (trace_file <> None || metrics) && seed = config.Mvee.seed then
      Some (Obs.create ())
    else None
  in
  let rows =
    match workload with
    | Registry.Profile_workload profile ->
      Remon_util.Pool.map ~domains
        (fun seed ->
          let config = { config with Mvee.seed = seed } in
          let obs = want_obs seed in
          let row =
            try
              let native =
                Runner.run_profile profile { config with Mvee.backend = Mvee.Native }
              in
              let under = Runner.run_profile ?obs profile config in
              let o = under.Runner.outcome in
              Printf.sprintf "seed %-6d normalized %.3f  syscalls %-7d faults %-3d verdict %s"
                seed
                (Vtime.to_float_ns under.Runner.duration
                /. Vtime.to_float_ns native.Runner.duration)
                o.Mvee.syscalls o.Mvee.faults_injected
                (match o.Mvee.verdict with
                | None -> "clean"
                | Some v -> Divergence.to_string v)
            with Runner.Mvee_terminated v ->
              Printf.sprintf "seed %-6d terminated: %s" seed (Divergence.to_string v)
          in
          (row, obs))
        seeds
    | Registry.Server_workload (server, client) ->
      Remon_util.Pool.map ~domains
        (fun seed ->
          let config = { config with Mvee.seed = seed } in
          let obs = want_obs seed in
          let row =
            try
              let native =
                Runner.run_server_bench ~latency ~server ~client
                  { config with Mvee.backend = Mvee.Native }
              in
              let under =
                Runner.run_server_bench ~latency ?obs ~server ~client config
              in
              Printf.sprintf "seed %-6d overhead %-8s responses %d  %s" seed
                (Remon_util.Table.fmt_pct
                   (Vtime.to_float_ns under.Runner.client_duration
                    /. Vtime.to_float_ns native.Runner.client_duration
                   -. 1.))
                under.Runner.responses
                (Latency.summary_to_string under.Runner.latency)
            with Runner.Mvee_terminated v ->
              Printf.sprintf "seed %-6d terminated: %s" seed (Divergence.to_string v)
          in
          (row, obs))
        seeds
  in
  List.iter (fun (row, _) -> print_endline row) rows;
  List.iter
    (fun (_, obs) ->
      match obs with
      | Some o -> finalize_obs ~trace_file ~metrics o
      | None -> ())
    rows

let run_workload name backend nreplicas level latency seed faults on_failure
    trace_lines trace_file metrics repeat domains =
  match Registry.find name with
  | None ->
    Printf.eprintf "unknown workload %S; try `remon list`\n" name;
    exit 2
  | Some workload -> (
    let config = config_of backend nreplicas level seed faults on_failure in
    let latency = Vtime.of_float_ns (latency *. 1e6) in
    if repeat > 1 then begin
      Printf.printf "workload : %s\n" (Registry.describe workload);
      Printf.printf "backend  : %s, %d replica(s), policy %s\n\n"
        (Mvee.backend_to_string backend)
        nreplicas
        (Policy.to_string config.Mvee.policy);
      run_repeated workload config latency ~repeat ~domains ~trace_file ~metrics
    end
    else
    let obs = if trace_file <> None || metrics then Some (Obs.create ()) else None in
    let dump_trace kernel =
      if trace_lines > 0 then begin
        Printf.printf "\nsyscall trace (first %d lines):\n" trace_lines;
        List.iteri
          (fun i line -> if i < trace_lines then Printf.printf "  %s\n" line)
          (Remon_kernel.Kernel.trace kernel)
      end
    in
    Printf.printf "workload : %s\n" (Registry.describe workload);
    Printf.printf "backend  : %s, %d replica(s), policy %s\n\n"
      (Mvee.backend_to_string backend)
      nreplicas
      (Policy.to_string config.Mvee.policy);
    try match workload with
    | Registry.Profile_workload profile ->
      let native = Runner.run_profile profile { config with Mvee.backend = Mvee.Native } in
      let under =
        if trace_lines > 0 then begin
          let kernel = Remon_kernel.Kernel.create ~seed:config.Mvee.seed () in
          Remon_kernel.Kernel.enable_tracing kernel;
          (match obs with
          | Some o -> Remon_kernel.Kernel.set_obs kernel o
          | None -> ());
          let h = Mvee.launch kernel config ~name ~body:(Profile.body profile) in
          Remon_kernel.Kernel.run kernel;
          let outcome = Mvee.finish h in
          dump_trace kernel;
          { Runner.duration = outcome.Mvee.duration; outcome }
        end
        else Runner.run_profile ?obs profile config
      in
      let o = under.Runner.outcome in
      Printf.printf "native runtime     : %s\n" (Vtime.to_string native.Runner.duration);
      Printf.printf "mvee runtime       : %s (normalized %.2f)\n"
        (Vtime.to_string under.Runner.duration)
        (Vtime.to_float_ns under.Runner.duration
        /. Vtime.to_float_ns native.Runner.duration);
      Printf.printf "syscalls           : %d (monitored %d, fast-path %d)\n"
        o.Mvee.syscalls o.Mvee.monitored o.Mvee.ipmon_fastpath;
      Printf.printf "ptrace stops       : %d, rendezvous %d\n" o.Mvee.ptrace_stops
        o.Mvee.rendezvous;
      Printf.printf "rb records/resets  : %d/%d\n" o.Mvee.rb_records o.Mvee.rb_resets;
      (match o.Mvee.verdict with
      | Some v -> Printf.printf "verdict            : %s\n" (Divergence.to_string v)
      | None -> ());
      if faults <> [] || o.Mvee.faults_injected > 0 then begin
        Printf.printf "faults injected    : %d (plan: %s)\n" o.Mvee.faults_injected
          (Fault.to_string faults);
        Printf.printf "quarantines        : %d, respawns %d, watchdog retries %d\n"
          o.Mvee.quarantines o.Mvee.respawns o.Mvee.watchdog_retries;
        Printf.printf "degraded time      : %s\n" (Vtime.to_string o.Mvee.degraded_ns)
      end;
      (match obs with Some o -> finalize_obs ~trace_file ~metrics o | None -> ())
    | Registry.Server_workload (server, client) ->
      let native =
        Runner.run_server_bench ~latency ~server ~client
          { config with Mvee.backend = Mvee.Native }
      in
      let under = Runner.run_server_bench ~latency ?obs ~server ~client config in
      Printf.printf "native client time : %s\n"
        (Vtime.to_string native.Runner.client_duration);
      Printf.printf "mvee client time   : %s (overhead %s)\n"
        (Vtime.to_string under.Runner.client_duration)
        (Remon_util.Table.fmt_pct
           (Vtime.to_float_ns under.Runner.client_duration
            /. Vtime.to_float_ns native.Runner.client_duration
           -. 1.));
      Printf.printf "responses          : %d (transport errors %d, truncated %d)\n"
        under.Runner.responses under.Runner.transport_errors
        under.Runner.truncated_requests;
      Printf.printf "request latency    : %s\n"
        (Latency.summary_to_string under.Runner.latency);
      Printf.printf "  (native          : %s)\n"
        (Latency.summary_to_string native.Runner.latency);
      (match obs with Some o -> finalize_obs ~trace_file ~metrics o | None -> ())
    with Runner.Mvee_terminated v ->
      (* a fatal verdict (e.g. under --faults with the kill-group policy)
         is a legitimate outcome, not a crash — dump what was collected
         before exiting, it is exactly what a failure wants looked at *)
      Printf.printf "mvee terminated    : %s\n" (Divergence.to_string v);
      (match obs with Some o -> finalize_obs ~trace_file ~metrics o | None -> ());
      exit 1)

let run_cmd =
  let name_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload name (see `remon list`).")
  in
  let trace_lines_arg =
    Arg.(
      value & opt int 0
      & info [ "trace-lines" ] ~docv:"N"
          ~doc:"Print the first N human-readable syscall-trace lines.")
  in
  let trace_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a structured trace of the MVEE run to FILE in Chrome \
             trace-event JSON (load it in Perfetto / chrome://tracing). \
             Identical seeds produce byte-identical files, independent of \
             --domains. With --repeat, the base seed's run is traced.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the metrics summary: per-syscall latency histograms, \
             rendezvous and route counts, RB occupancy high-water marks, \
             ptrace round-trips.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Run the workload N times with consecutive seeds (seed, seed+1, \
             ...) and print one summary row per seed.")
  in
  let domains_arg =
    Arg.(
      value
      & opt int (Remon_util.Pool.default_domains ())
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Fan --repeat runs out over D domains (default: \
             REMON_DOMAINS or the machine's core count minus one).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload under an MVEE configuration.")
    Term.(
      const run_workload $ name_arg $ backend_arg $ replicas_arg $ level_arg
      $ latency_arg $ seed_arg $ faults_arg $ on_failure_arg $ trace_lines_arg
      $ trace_file_arg $ metrics_arg $ repeat_arg $ domains_arg)

let attack_cmd =
  let run backend nreplicas level seed =
    let config = config_of backend nreplicas level seed [] Mvee.Kill_group in
    List.iter
      (fun r -> Format.printf "%a@." Attack.pp_report r)
      (Attack.all_scenarios ~config ())
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Stage the Section 4 attack scenarios.")
    Term.(const run $ backend_arg $ replicas_arg $ level_arg $ seed_arg)

let fleet_cmd =
  let module Fchaos = Remon_fleet.Chaos in
  let module Lb = Remon_fleet.Lb in
  let instances_arg =
    Arg.(
      value & opt int 3
      & info [ "i"; "instances" ] ~docv:"N"
          ~doc:"MVEE instances behind the load balancer.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"P"
          ~doc:
            "Chaos fault rate: per-syscall-index probability of an injected \
             fault (crash, delay or transient socket error) in each \
             instance's plan. Masters are fair game.")
  in
  let requests_arg =
    Arg.(
      value & opt int 150
      & info [ "requests" ] ~docv:"N" ~doc:"Total client requests.")
  in
  let workers_arg =
    Arg.(
      value & opt int 6
      & info [ "workers" ] ~docv:"N" ~doc:"Open-loop client workers.")
  in
  let no_recovery_arg =
    Arg.(
      value & flag
      & info [ "no-recovery" ]
          ~doc:
            "Disable the recovery ladder (intra-instance respawn and fleet \
             respawn): the availability-floor baseline.")
  in
  let policy_arg =
    let policy_conv =
      let parse = function
        | "round-robin" | "rr" -> Ok Lb.Round_robin
        | "least-conns" | "lc" -> Ok Lb.Least_conns
        | s -> Error (`Msg (Printf.sprintf "unknown LB policy %S" s))
      in
      let print fmt = function
        | Lb.Round_robin -> Format.pp_print_string fmt "round-robin"
        | Lb.Least_conns -> Format.pp_print_string fmt "least-conns"
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt policy_conv Lb.Round_robin
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Load-balancing policy: round-robin or least-conns.")
  in
  let rolling_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "rolling" ] ~docv:"MAX_UNAVAILABLE"
          ~doc:
            "Run a rolling restart of the whole fleet under the live \
             traffic, at most MAX_UNAVAILABLE instances out at once.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the metrics summary (fleet probe/eject/respawn counters \
             included).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a structured trace of the chaos scenario to FILE in \
             Chrome trace-event JSON (instance_down/instance_respawn and \
             recovery instants included).")
  in
  let run backend nreplicas instances rate requests workers no_recovery policy
      rolling seed metrics trace_file =
    let cfg =
      {
        Fchaos.default_cfg with
        Fchaos.backend;
        nreplicas;
        instances;
        fault_rate = rate;
        requests;
        workers;
        recovery = not no_recovery;
        policy;
        rolling;
        seed;
        trace = metrics;
      }
    in
    let obs =
      if trace_file <> None then Some (Remon_obs.Obs.create ()) else None
    in
    Printf.printf "fleet    : %d x %s (%d replicas), LB %s\n" instances
      (Mvee.backend_to_string backend)
      nreplicas
      (match policy with
      | Lb.Round_robin -> "round-robin"
      | Lb.Least_conns -> "least-conns");
    Printf.printf "traffic  : %d requests over %d open-loop workers\n" requests
      workers;
    Printf.printf "chaos    : rate %.4f, recovery %s%s\n\n" rate
      (if no_recovery then "off" else "on")
      (match rolling with
      | Some mu -> Printf.sprintf ", rolling restart (max-unavailable %d)" mu
      | None -> "");
    let r = Fchaos.run_scenario ?obs cfg in
    Printf.printf "availability       : %.3f (%d/%d, %d dropped)\n"
      r.Fchaos.availability r.Fchaos.succeeded r.Fchaos.attempted
      r.Fchaos.failed;
    Printf.printf "client latency     : %s\n"
      (Latency.summary_to_string r.Fchaos.client_latency);
    Printf.printf "lb                 : %d proxied, %d failovers, %d errors\n"
      r.Fchaos.lb_proxied r.Fchaos.failovers r.Fchaos.lb_errors;
    Printf.printf "health             : %d ejections, %d readmissions\n"
      r.Fchaos.ejections r.Fchaos.readmissions;
    Printf.printf "fleet recovery     : %d instances down, %d fleet respawns\n"
      r.Fchaos.instance_failures r.Fchaos.fleet_respawns;
    Printf.printf "intra-instance     : %d quarantines, %d respawns, %d \
                   watchdog retries\n"
      r.Fchaos.quarantines r.Fchaos.respawns r.Fchaos.watchdog_retries;
    Printf.printf "faults injected    : %d\n" r.Fchaos.faults_injected;
    Printf.printf "connect retries    : %d\n" r.Fchaos.connect_retries;
    if r.Fchaos.verdict_classes <> [] then
      Printf.printf "verdicts           : %s\n"
        (String.concat ", " r.Fchaos.verdict_classes);
    if metrics then print_metrics r.Fchaos.metrics;
    match obs with
    | Some o -> finalize_obs ~trace_file ~metrics:false o
    | None -> ()
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run an MVEE fleet behind a load balancer under chaos: injected \
          faults, health-probe ejection, fleet respawn and rolling restarts.")
    Term.(
      const run $ backend_arg $ replicas_arg $ instances_arg $ rate_arg
      $ requests_arg $ workers_arg $ no_recovery_arg $ policy_arg
      $ rolling_arg $ seed_arg $ metrics_arg $ trace_arg)

let policy_cmd =
  let run () =
    List.iter
      (fun (lvl, uncond, cond) ->
        Printf.printf "%s\n" (Classification.level_to_string lvl);
        Printf.printf "  unconditional: %s\n"
          (String.concat ", " (List.map Remon_kernel.Sysno.to_string uncond));
        if cond <> [] then
          Printf.printf "  conditional  : %s\n"
            (String.concat ", " (List.map Remon_kernel.Sysno.to_string cond)))
      (Classification.table1 ())
  in
  Cmd.v
    (Cmd.info "policy" ~doc:"Print the Table 1 syscall classification.")
    Term.(const run $ const ())

let () =
  let doc = "ReMon MVEE reproduction: secure and efficient application monitoring" in
  let info = Cmd.info "remon" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ list_cmd; run_cmd; attack_cmd; fleet_cmd; policy_cmd ]))
