(* Structured trace recorder, exported in Chrome trace-event format.

   Events are stamped with *virtual* time only — never wall-clock, host
   pids, shm keys or any other per-process value — so the exported JSON is
   a pure function of the simulation seed. Identical seeds therefore yield
   byte-identical trace files, which the test suite exploits as an oracle
   for cross-domain-count and repeated-run determinism.

   Timestamps are raw int nanoseconds of virtual time (this library
   sits below lib/sim, so it does not depend on Vtime; Vtime.t is itself
   an int of ns). Chrome's "ts" field is microseconds; we render ns as a
   fixed-format "us.nnn" decimal to keep full resolution without floating
   point. *)

type phase = Begin | End | Instant | Counter

type arg = Int of int | I64 of int64 | Str of string

type event = {
  ts : int; (* virtual ns *)
  ph : phase;
  cat : string;
  name : string;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

type t = { events : event Remon_util.Vec.t }

let create () = { events = Remon_util.Vec.create () }

let length t = Remon_util.Vec.length t.events

let emit t ~ts ~ph ~cat ~name ~pid ~tid args =
  Remon_util.Vec.push t.events { ts; ph; cat; name; pid; tid; args }

let span_begin t ~ts ~cat ~name ~pid ~tid args =
  emit t ~ts ~ph:Begin ~cat ~name ~pid ~tid args

let span_end t ~ts ~cat ~name ~pid ~tid args =
  emit t ~ts ~ph:End ~cat ~name ~pid ~tid args

let instant t ~ts ~cat ~name ~pid ~tid args =
  emit t ~ts ~ph:Instant ~cat ~name ~pid ~tid args

let counter t ~ts ~cat ~name ~pid ~tid args =
  emit t ~ts ~ph:Counter ~cat ~name ~pid ~tid args

let phase_letter = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "i"
  | Counter -> "C"

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* ns -> "us.nnn" with all digits, no float rounding *)
let add_ts buf ts =
  Buffer.add_string buf (string_of_int (ts / 1000));
  Buffer.add_char buf '.';
  Buffer.add_string buf (Printf.sprintf "%03d" (ts mod 1000))

let add_arg buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | I64 i -> Buffer.add_string buf (Int64.to_string i)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'

let add_event buf e =
  Buffer.add_string buf "{\"name\":\"";
  escape buf e.name;
  Buffer.add_string buf "\",\"cat\":\"";
  escape buf e.cat;
  Buffer.add_string buf "\",\"ph\":\"";
  Buffer.add_string buf (phase_letter e.ph);
  Buffer.add_string buf "\",\"ts\":";
  add_ts buf e.ts;
  Buffer.add_string buf ",\"pid\":";
  Buffer.add_string buf (string_of_int e.pid);
  Buffer.add_string buf ",\"tid\":";
  Buffer.add_string buf (string_of_int e.tid);
  (match e.ph with
  | Instant -> Buffer.add_string buf ",\"s\":\"t\""
  | _ -> ());
  (match e.args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          add_arg buf v)
        args;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}'

(* Chrome trace "JSON object format": traceEvents array plus optional
   metadata. No export timestamp or host information is ever written —
   byte-identity across runs is part of the format contract. *)
let export_string ?(metrics = []) t =
  let buf = Buffer.create (4096 + (128 * length t)) in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  Remon_util.Vec.iter
    (fun e ->
      if Buffer.length buf > 17 then Buffer.add_string buf ",\n";
      add_event buf e)
    t.events;
  Buffer.add_string buf "\n],\n\"displayTimeUnit\":\"ns\"";
  (match metrics with
  | [] -> ()
  | kvs ->
      Buffer.add_string buf ",\n\"metrics\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf "\n  \"";
          escape buf k;
          Buffer.add_string buf "\":\"";
          escape buf v;
          Buffer.add_char buf '"')
        kvs;
      Buffer.add_string buf "\n}");
  Buffer.add_string buf "}\n";
  Buffer.contents buf
