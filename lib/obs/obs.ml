(* Observability bundle: one tracer + one metrics aggregator per MVEE run.

   Call sites hold an [Obs.t option]; [None] is the fully-disabled path —
   a single pattern match per emission point and nothing else, which is
   what keeps the tracing layer zero-cost when off (selfperf guards the
   budget). Helpers below take the option so emission points stay
   one-liners. *)

type t = { trace : Trace.t; metrics : Metrics.t }

let create () = { trace = Trace.create (); metrics = Metrics.create () }

let span_begin o ~ts ~cat ~name ~pid ~tid args =
  match o with
  | None -> ()
  | Some o -> Trace.span_begin o.trace ~ts ~cat ~name ~pid ~tid args

let span_end o ~ts ~cat ~name ~pid ~tid args =
  match o with
  | None -> ()
  | Some o -> Trace.span_end o.trace ~ts ~cat ~name ~pid ~tid args

let instant o ~ts ~cat ~name ~pid ~tid args =
  match o with
  | None -> ()
  | Some o -> Trace.instant o.trace ~ts ~cat ~name ~pid ~tid args

let counter o ~ts ~cat ~name ~pid ~tid args =
  match o with
  | None -> ()
  | Some o -> Trace.counter o.trace ~ts ~cat ~name ~pid ~tid args

let observe_ns o name ns =
  match o with None -> () | Some o -> Metrics.observe_ns o.metrics name ns

let metric_add o name n =
  match o with None -> () | Some o -> Metrics.add o.metrics name n

let metric_incr o name =
  match o with None -> () | Some o -> Metrics.incr o.metrics name

let metric_hwm o name v =
  match o with None -> () | Some o -> Metrics.hwm o.metrics name v

let summary = function None -> [] | Some o -> Metrics.summary o.metrics

let export_string o =
  Trace.export_string ~metrics:(Metrics.summary o.metrics) o.trace
