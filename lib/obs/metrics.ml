(* Deterministic metric aggregation: named counters, high-water marks and
   log2-bucketed latency histograms over virtual-time durations.

   The summary is rendered as a key-sorted (name, value-string) assoc
   list so it can be merged into `Mvee.outcome` and compared
   structurally by the determinism tests. *)

type hist = {
  mutable count : int;
  mutable sum_ns : int;
  mutable max_ns : int;
  buckets : int array; (* bucket i counts durations in [2^i, 2^(i+1)) ns *)
}

type t = {
  hists : (string, hist) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  hwms : (string, int ref) Hashtbl.t;
}

let create () =
  { hists = Hashtbl.create 32; counters = Hashtbl.create 32; hwms = Hashtbl.create 16 }

let hist_find t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = { count = 0; sum_ns = 0; max_ns = 0; buckets = Array.make 64 0 } in
      Hashtbl.add t.hists name h;
      h

let bucket_of_ns ns =
  if ns <= 1 then 0
  else
    let rec go i v = if v <= 1 then i else go (i + 1) (v lsr 1) in
    min 63 (go 0 ns)

let observe_ns t name ns =
  let h = hist_find t name in
  h.count <- h.count + 1;
  h.sum_ns <- h.sum_ns + ns;
  if ns > h.max_ns then h.max_ns <- ns;
  let b = bucket_of_ns ns in
  h.buckets.(b) <- h.buckets.(b) + 1

let add t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.counters name (ref n)

let incr t name = add t name 1

let hwm t name v =
  match Hashtbl.find_opt t.hwms name with
  | Some r -> if v > !r then r := v
  | None -> Hashtbl.add t.hwms name (ref v)

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let hist_count t name =
  match Hashtbl.find_opt t.hists name with Some h -> h.count | None -> 0

(* p-quantile from the log2 buckets: returns the upper bound (2^(i+1) ns)
   of the bucket holding the q-th observation — coarse but deterministic. *)
let hist_quantile_ns h q =
  if h.count = 0 then 0
  else begin
    let target = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let acc = ref 0 and b = ref 0 in
    (try
       for i = 0 to 63 do
         acc := !acc + h.buckets.(i);
         if !acc >= target then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    1 lsl min 62 (!b + 1)
  end

let summary t =
  let rows = ref [] in
  Hashtbl.iter (fun name r -> rows := (name, string_of_int !r) :: !rows) t.counters;
  Hashtbl.iter (fun name r -> rows := (name ^ ".hwm", string_of_int !r) :: !rows) t.hwms;
  Hashtbl.iter
    (fun name h ->
      let mean = if h.count = 0 then 0 else h.sum_ns / h.count in
      rows := (name ^ ".count", string_of_int h.count) :: !rows;
      rows := (name ^ ".mean_ns", string_of_int mean) :: !rows;
      rows := (name ^ ".max_ns", string_of_int h.max_ns) :: !rows;
      rows :=
        (name ^ ".p99_le_ns", string_of_int (hist_quantile_ns h 0.99)) :: !rows)
    t.hists;
  List.sort (fun (a, _) (b, _) -> compare a b) !rows
