(* Simulated L4 load balancer over the socket stack.

   An ordinary unreplicated process in the same kernel as the MVEE fleet:
   it listens on a front port, proxies fixed-size request/response pairs to
   backend instances (round-robin or least-connections), and runs an active
   health prober against every backend port. A backend whose probes fail
   [unhealthy_threshold] times in a row is ejected — existing proxied
   connections drain naturally (they are never cut), new picks route around
   it — and readmitted after [healthy_threshold] consecutive successes.

   Dead instances signal through the socket layer itself: killing a process
   releases its descriptors, so its listener unbinds (probes and backend
   connects see ECONNREFUSED) and established streams EOF. Per-request
   failover rides on exactly those signals. *)

open Remon_kernel
open Remon_sim
open Remon_workloads

type policy = Round_robin | Least_conns

type state = Up | Draining | Ejected

let state_to_string = function
  | Up -> "up"
  | Draining -> "draining"
  | Ejected -> "ejected"

type backend = {
  id : int;
  port : int;
  mutable state : state;
  mutable active_conns : int; (* proxied client conns pinned to it *)
  mutable consec_failures : int;
  mutable consec_successes : int;
  mutable picked : int; (* routing decisions that landed here *)
  mutable probes : int;
  mutable probe_failures : int;
}

type config = {
  front_port : int;
  policy : policy;
  probe_interval : Vtime.t;
  probe_timeout : Vtime.t; (* a slower probe counts as a failure *)
  unhealthy_threshold : int; (* consecutive failures before eject *)
  healthy_threshold : int; (* consecutive successes before readmit *)
  failover_budget : int; (* distinct backends tried per request *)
  request_bytes : int;
  response_bytes : int;
}

let default_config ~front_port ~request_bytes ~response_bytes =
  {
    front_port;
    policy = Round_robin;
    probe_interval = Vtime.ms 2;
    probe_timeout = Vtime.ms 1;
    unhealthy_threshold = 2;
    healthy_threshold = 2;
    failover_budget = 3;
    request_bytes;
    response_bytes;
  }

type t = {
  kernel : Kernel.t;
  config : config;
  backends : backend array;
  deadline : Vtime.t; (* the prober stops here, so the run can drain *)
  mutable rr_cursor : int;
  mutable proxied : int; (* requests answered end to end *)
  mutable failovers : int; (* backend switches forced mid-request *)
  mutable lb_errors : int; (* requests dropped: no responsive backend *)
  mutable ejections : int;
  mutable readmissions : int;
  latency : Latency.t; (* pick-to-response proxy latency *)
}

let obs_instant lb ~name args =
  match Kernel.obs lb.kernel with
  | None -> ()
  | Some o ->
    Remon_obs.Trace.instant o.Remon_obs.Obs.trace ~ts:(Kernel.now lb.kernel)
      ~cat:"fleet" ~name ~pid:0 ~tid:0 args;
    Remon_obs.Metrics.incr o.Remon_obs.Obs.metrics
      (match name with
      | "eject" -> "fleet.eject"
      | "readmit" -> "fleet.readmit"
      | "drain" -> "fleet.drain"
      | n -> "fleet." ^ n)

let backend_for lb ~port =
  match Array.find_opt (fun b -> b.port = port) lb.backends with
  | Some b -> b
  | None -> invalid_arg "Lb.backend_for: unknown port"

(* ------------------------------------------------------------------ *)
(* Routing *)

(* Deterministic pick among Up backends, [excluding] ids already tried for
   this request. Round-robin advances a cursor; least-conns takes the
   emptiest (lowest id on ties). *)
let pick lb ~excluding =
  let eligible b = b.state = Up && not (List.mem b.id excluding) in
  let n = Array.length lb.backends in
  let chosen =
    match lb.config.policy with
    | Round_robin ->
      let rec scan k =
        if k >= n then None
        else
          let b = lb.backends.((lb.rr_cursor + k) mod n) in
          if eligible b then begin
            lb.rr_cursor <- (lb.rr_cursor + k + 1) mod n;
            Some b
          end
          else scan (k + 1)
      in
      scan 0
    | Least_conns ->
      Array.fold_left
        (fun best b ->
          if not (eligible b) then best
          else
            match best with
            | Some c when c.active_conns <= b.active_conns -> best
            | _ -> Some b)
        None lb.backends
  in
  (match chosen with Some b -> b.picked <- b.picked + 1 | None -> ());
  chosen

(* ------------------------------------------------------------------ *)
(* Health probes *)

let probe_failure lb b =
  b.probe_failures <- b.probe_failures + 1;
  b.consec_successes <- 0;
  b.consec_failures <- b.consec_failures + 1;
  if b.state = Up && b.consec_failures >= lb.config.unhealthy_threshold then begin
    b.state <- Ejected;
    lb.ejections <- lb.ejections + 1;
    obs_instant lb ~name:"eject" [ ("backend", Remon_obs.Trace.Int b.id) ]
  end

let probe_success lb b =
  b.consec_failures <- 0;
  b.consec_successes <- b.consec_successes + 1;
  if b.state = Ejected && b.consec_successes >= lb.config.healthy_threshold
  then begin
    b.state <- Up;
    lb.readmissions <- lb.readmissions + 1;
    obs_instant lb ~name:"readmit" [ ("backend", Remon_obs.Trace.Int b.id) ]
  end

(* One L4 probe: a bare TCP connect, closed immediately. ECONNREFUSED (the
   instance's listener is gone) and slow accepts (backlog pressure past
   [probe_timeout]) both count as failures. *)
let probe lb b =
  b.probes <- b.probes + 1;
  let t0 = Sched.vnow () in
  let fd = Api.socket () in
  (match Sched.syscall (Syscall.Connect (fd, b.port)) with
  | Syscall.Ok_int _ | Syscall.Ok_unit ->
    if Vtime.(sub (Sched.vnow ()) t0 > lb.config.probe_timeout) then
      probe_failure lb b
    else probe_success lb b
  | _ -> probe_failure lb b);
  try Api.close fd with Api.Sys_error _ -> ()

let prober lb () =
  while Vtime.(Sched.vnow () < lb.deadline) do
    Api.nanosleep lb.config.probe_interval;
    (* draining backends keep their health state frozen: the operator owns
       the transition back to Up *)
    Array.iter (fun b -> if b.state <> Draining then probe lb b) lb.backends
  done

(* ------------------------------------------------------------------ *)
(* Proxying *)

(* Threads in a plain (unreplicated) process: same Clone mechanism the MVEE
   env exposes to replicas. *)
let spawn_thread body =
  let th = Sched.self () in
  let proc = th.Proc.proc in
  let idx = Array.length proc.Proc.entry_table in
  proc.Proc.entry_table <- Array.append proc.Proc.entry_table [| body |];
  ignore (Sched.syscall (Syscall.Clone idx))

(* Forward one request on an established backend connection. [None] covers
   every way the backend can fail us: EPIPE on send, EOF/short response. *)
let try_forward lb bfd req =
  match Api.send bfd req with
  | exception Api.Sys_error _ -> None
  | _ -> (
    (* bounded wait: a backend that accepted the connection but wedged
       (e.g. stalled in a rendezvous) must trigger failover, not park the
       proxied connection forever *)
    match Api.recv_within bfd lb.config.response_bytes ~timeout_ns:5_000_000 with
    | exception Api.Sys_error _ -> None
    | resp ->
      if String.length resp = lb.config.response_bytes then Some resp
      else None)

(* One proxied client connection, pinned to a backend connection that is
   re-established on the next healthy backend when it dies (failover). *)
let serve_conn lb client_fd () =
  let backend = ref None in
  let disconnect () =
    match !backend with
    | Some (b, fd) ->
      (try Api.close fd with Api.Sys_error _ -> ());
      b.active_conns <- b.active_conns - 1;
      backend := None
    | None -> ()
  in
  let connect_to b =
    let fd = Api.socket () in
    match
      (* the port can refuse transiently while an instance restarts: a
         short, fast backoff — anything longer is the prober's job *)
      Api.connect_retry ~attempts:2 ~base_backoff_ns:100_000
        ~cap_backoff_ns:200_000 fd b.port
    with
    | exception Api.Connect_retries_exhausted _ ->
      (try Api.close fd with Api.Sys_error _ -> ());
      false
    | exception Api.Sys_error _ ->
      (try Api.close fd with Api.Sys_error _ -> ());
      false
    | () ->
      b.active_conns <- b.active_conns + 1;
      backend := Some (b, fd);
      true
  in
  (* Serve one request, switching backends up to [failover_budget] times.
     Each failed backend is excluded from re-picking for this request. *)
  let rec attempt req ~tried budget =
    if budget <= 0 then None
    else
      match !backend with
      | Some (b, fd) -> (
        match try_forward lb fd req with
        | Some resp -> Some resp
        | None ->
          lb.failovers <- lb.failovers + 1;
          disconnect ();
          attempt req ~tried:(b.id :: tried) (budget - 1))
      | None -> (
        match pick lb ~excluding:tried with
        | None -> None
        | Some b ->
          if connect_to b then attempt req ~tried budget
          else begin
            lb.failovers <- lb.failovers + 1;
            attempt req ~tried:(b.id :: tried) (budget - 1)
          end)
  in
  let rec request_loop () =
    match Api.recv_exactly client_fd lb.config.request_bytes with
    | exception Api.Sys_error _ -> ()
    | req when String.length req < lb.config.request_bytes ->
      () (* client closed (or died) between requests *)
    | req -> (
      let t0 = Sched.vnow () in
      match attempt req ~tried:[] lb.config.failover_budget with
      | Some resp -> (
        lb.proxied <- lb.proxied + 1;
        Latency.record lb.latency (Vtime.sub (Sched.vnow ()) t0);
        match Api.send client_fd resp with
        | exception Api.Sys_error _ -> ()
        | _ -> request_loop ())
      | None ->
        (* no responsive backend inside the budget: drop the connection so
           the client sees a short read *)
        lb.lb_errors <- lb.lb_errors + 1)
  in
  request_loop ();
  disconnect ();
  try Api.close client_fd with Api.Sys_error _ -> ()

let body lb () =
  (* proxies write into connections that die under them all the time: take
     EPIPE as an error return, not a process-fatal signal *)
  Api.sigaction Sigdefs.sigpipe Syscall.Sig_ignore;
  let listener = Api.socket () in
  Api.bind listener lb.config.front_port;
  Api.listen listener 256;
  spawn_thread (prober lb);
  let rec accept_loop () =
    match Sched.syscall (Syscall.Accept listener) with
    | Syscall.Ok_accept { Syscall.conn_fd; _ } ->
      spawn_thread (serve_conn lb conn_fd);
      accept_loop ()
    | _ -> () (* listener torn down: stop accepting *)
  in
  accept_loop ()

let launch kernel config ~backend_ports ~deadline =
  let backends =
    Array.of_list
      (List.mapi
         (fun id port ->
           {
             id;
             port;
             state = Up;
             active_conns = 0;
             consec_failures = 0;
             consec_successes = 0;
             picked = 0;
             probes = 0;
             probe_failures = 0;
           })
         backend_ports)
  in
  let lb =
    {
      kernel;
      config;
      backends;
      deadline;
      rr_cursor = 0;
      proxied = 0;
      failovers = 0;
      lb_errors = 0;
      ejections = 0;
      readmissions = 0;
      latency = Latency.create ();
    }
  in
  ignore (Kernel.spawn_process kernel ~name:"lb" ~vm_seed:0x1b (body lb));
  lb

(* Operator-driven state changes (rolling restarts). *)

let set_draining lb b =
  if b.state <> Draining then begin
    b.state <- Draining;
    obs_instant lb ~name:"drain" [ ("backend", Remon_obs.Trace.Int b.id) ]
  end

let readmit lb b =
  b.consec_failures <- 0;
  b.consec_successes <- 0;
  if b.state <> Up then begin
    b.state <- Up;
    obs_instant lb ~name:"readmit" [ ("backend", Remon_obs.Trace.Int b.id) ]
  end

(* Prober/LB counters folded into the metrics summary at scenario end. *)
let flush_metrics lb =
  match Kernel.obs lb.kernel with
  | None -> ()
  | Some o ->
    let m = o.Remon_obs.Obs.metrics in
    Remon_obs.Metrics.add m "fleet.lb.proxied" lb.proxied;
    Remon_obs.Metrics.add m "fleet.lb.failovers" lb.failovers;
    Remon_obs.Metrics.add m "fleet.lb.errors" lb.lb_errors;
    Array.iter
      (fun b ->
        Remon_obs.Metrics.add m "fleet.lb.probes" b.probes;
        Remon_obs.Metrics.add m "fleet.lb.probe_failures" b.probe_failures)
      lb.backends
