(** Simulated L4 load balancer: an unreplicated process that proxies
    fixed-size request/response pairs from a front port to a set of MVEE
    backend instances, with active health probes, eject/readmit hysteresis,
    connection draining and bounded per-request failover. Dead instances
    signal through the socket layer: their listener unbinds (ECONNREFUSED)
    and established streams EOF, because the kernel releases a process's
    descriptors when it dies. *)

open Remon_kernel
open Remon_sim
open Remon_workloads

type policy = Round_robin | Least_conns

type state =
  | Up
  | Draining  (** operator-held: no new picks, health state frozen *)
  | Ejected  (** failed the probe hysteresis; routed around *)

val state_to_string : state -> string

type backend = {
  id : int;
  port : int;
  mutable state : state;
  mutable active_conns : int;  (** proxied client conns pinned to it *)
  mutable consec_failures : int;
  mutable consec_successes : int;
  mutable picked : int;  (** routing decisions that landed here *)
  mutable probes : int;
  mutable probe_failures : int;
}

type config = {
  front_port : int;
  policy : policy;
  probe_interval : Vtime.t;
  probe_timeout : Vtime.t;  (** a slower connect counts as a failure *)
  unhealthy_threshold : int;  (** consecutive failures before eject *)
  healthy_threshold : int;  (** consecutive successes before readmit *)
  failover_budget : int;  (** distinct backends tried per request *)
  request_bytes : int;
  response_bytes : int;
}

val default_config :
  front_port:int -> request_bytes:int -> response_bytes:int -> config
(** Round-robin, 2 ms probes with 1 ms timeout, 2/2 hysteresis, failover
    budget 3. *)

type t = {
  kernel : Kernel.t;
  config : config;
  backends : backend array;
  deadline : Vtime.t;  (** the prober stops here, so the run can drain *)
  mutable rr_cursor : int;
  mutable proxied : int;  (** requests answered end to end *)
  mutable failovers : int;  (** backend switches forced mid-request *)
  mutable lb_errors : int;  (** requests dropped: no responsive backend *)
  mutable ejections : int;
  mutable readmissions : int;
  latency : Latency.t;  (** pick-to-response proxy latency *)
}

val launch :
  Kernel.t -> config -> backend_ports:int list -> deadline:Vtime.t -> t
(** Spawns the balancer process (listener + prober) into the kernel. *)

val backend_for : t -> port:int -> backend
(** Raises [Invalid_argument] on an unknown port. *)

val pick : t -> excluding:int list -> backend option
(** One routing decision (exposed for tests; the proxy path uses it). *)

val set_draining : t -> backend -> unit
(** Operator hold: stop picking the backend, let its connections drain. *)

val readmit : t -> backend -> unit
(** Operator release: back to [Up] with hysteresis counters reset. *)

val flush_metrics : t -> unit
(** Fold LB/prober counters into the kernel's metrics sink, if any. *)
