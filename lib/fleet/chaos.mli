(** Chaos driver: one kernel hosting an MVEE fleet, its load balancer and
    an open-loop client swarm, with deterministic fault plans killing
    replicas (masters included) while the traffic runs. Latency is measured
    from the scheduled arrival, so outage queueing is part of the number —
    the availability and tail-latency figures an SLO would see. *)

open Remon_core
open Remon_workloads

type cfg = {
  backend : Mvee.backend;
  instances : int;
  nreplicas : int;
  recovery : bool;
      (** true: intra-instance Respawn + fleet respawn; false: Kill_group
          and no fleet recovery — the availability-floor baseline *)
  fault_rate : float;  (** per-syscall-index probability in the chaos plan *)
  fault_horizon : int;
  requests : int;
  workers : int;
  interarrival_ns : int;  (** open-loop gap between scheduled arrivals *)
  policy : Lb.policy;
  rolling : int option;  (** [Some max_unavailable] runs a rolling restart *)
  seed : int;
  trace : bool;
  record_dir : string option;
      (** dump a {!Recording} for every instance generation that ends with
          a divergence verdict — the sweep's offline-replayable reproducer
          artifacts *)
}

val default_cfg : cfg
(** ReMon, 3 instances x 2 replicas, recovery on, no faults, 150 requests
    over 6 workers at 40 us interarrival. *)

type report = {
  attempted : int;
  succeeded : int;
  failed : int;
  availability : float;  (** succeeded / attempted *)
  connect_retries : int;
  client_latency : Latency.summary;  (** scheduled-arrival to response *)
  lb_latency : Latency.summary;
  lb_proxied : int;
  failovers : int;
  lb_errors : int;
  ejections : int;
  readmissions : int;
  instance_failures : int;
  fleet_respawns : int;
  quarantines : int;
  respawns : int;
  watchdog_retries : int;
  faults_injected : int;
  served : int;
  verdict_classes : string list;  (** sorted, deduplicated *)
  recordings : string list;
      (** reproducer recordings written to [cfg.record_dir] *)
  metrics : (string * string) list;  (** [[]] when [trace] is off *)
}

val verdict_class : Divergence.t -> string

val run_scenario : ?obs:Remon_obs.Obs.t -> cfg -> report
(** One deterministic simulation: fresh kernel, fleet + LB + traffic,
    run to completion. [?obs] attaches a caller-owned observability sink
    (the caller can then export the trace); otherwise [cfg.trace] decides
    whether an internal one is created for the metrics summary. *)

val summary_line : cfg -> report -> string
(** One deterministic line per sweep cell; bench tables and the domains
    identity test both consume it. *)
