(** Fleet controller: many MVEE instances behind one load balancer. Lifts
    the intra-instance recovery ladder to fleet scope — whole-instance
    quarantine (the LB routes around the dead port), respawn of a fresh
    generation with exponential backoff, and operator-driven rolling
    restarts under a [max_unavailable] budget. *)

open Remon_kernel
open Remon_sim
open Remon_core
open Remon_workloads

type recovery =
  | No_fleet_recovery
  | Fleet_respawn of { max_respawns : int; backoff_ns : Vtime.t }
      (** per-instance relaunch budget and base backoff (doubled per
          attempt), mirroring the intra-instance [Mvee.Respawn] shape *)

type instance_state = Serving | Down | Restarting

val instance_state_to_string : instance_state -> string

type instance = {
  idx : int;
  port : int;  (** stable across generations *)
  mutable generation : int;
  mutable handle : Mvee.handle option;
  mutable state : instance_state;
  mutable respawns_used : int;
}

type t = {
  kernel : Kernel.t;
  base_config : Mvee.config;
  server : Servers.spec;  (** template; the port is overridden per instance *)
  stats : Servers.stats;  (** shared: fleet-wide served/truncated totals *)
  recovery : recovery;
  faults_for : idx:int -> generation:int -> Fault.plan;
  instances : instance array;
  mutable handles : Mvee.handle list;  (** every generation, for totals *)
  mutable instance_failures : int;
  mutable fleet_respawns : int;
  mutable closed : bool;
}

val create :
  Kernel.t ->
  Mvee.config ->
  server:Servers.spec ->
  base_port:int ->
  instances:int ->
  recovery:recovery ->
  ?faults_for:(idx:int -> generation:int -> Fault.plan) ->
  unit ->
  t
(** Launches [instances] MVEE instances on ports [base_port + idx]. Each
    generation of each instance gets a distinct seed and a fresh fault plan
    from [faults_for] (default: none). *)

val ports : t -> int list

val close : t -> unit
(** Scenario over: stop reacting to instance exits. *)

val restart_instance : t -> instance -> unit
(** Graceful stop (exit 0, no verdict) + relaunch of the next generation
    on the same port. *)

val rolling_restart :
  t ->
  lb:Lb.t ->
  ?max_unavailable:int ->
  ?pause_ns:int ->
  ?start_at:Vtime.t ->
  unit ->
  unit
(** Spawn operator processes that restart the whole fleet, at most
    [max_unavailable] instances out at a time: drain at the LB, wait for
    pinned connections, restart, wait for the new listener, readmit.
    Call before [Kernel.run]. *)

type totals = {
  quarantines : int;  (** intra-instance replica quarantines *)
  respawns : int;  (** intra-instance journal-replay respawns *)
  watchdog_retries : int;
  faults_injected : int;
  verdicts : Divergence.t list;
}

val totals : t -> totals
(** Summed over every generation of every instance. *)

val flush_metrics : t -> totals -> unit
(** Folds the fleet-scope recovery counters into the kernel's metrics
    summary ([Mvee.finish] does this for standalone instances, but fleet
    handles are never finished). No-op without an observability sink. *)
