(* Fleet controller: many MVEE instances behind one load balancer.

   Lifts the PR-1 recovery ladder (Kill_group / Quarantine / Respawn, which
   operate *inside* one replica set) to fleet scope: when a whole instance
   goes down — its master crashed, or the group was torn down on a
   divergence verdict — the controller quarantines the instance (the LB's
   probes route around its dead port) and relaunches a fresh generation on
   the same port after exponential backoff, up to a bounded budget. The
   per-instance Respawn policy still handles single-replica faults with the
   record-log journal replay; the two layers compose.

   Rolling restarts are operator processes inside the simulation: drain the
   backend at the LB, wait for its proxied connections to finish, stop the
   instance gracefully (exit 0, no verdict), relaunch the next generation,
   wait until its port answers, readmit. [max_unavailable] operators run
   concurrently, so at most that many instances are out at once. *)

open Remon_kernel
open Remon_sim
open Remon_core
open Remon_workloads

type recovery =
  | No_fleet_recovery
  | Fleet_respawn of { max_respawns : int; backoff_ns : Vtime.t }

type instance_state = Serving | Down | Restarting

let instance_state_to_string = function
  | Serving -> "serving"
  | Down -> "down"
  | Restarting -> "restarting"

type instance = {
  idx : int;
  port : int;
  mutable generation : int;
  mutable handle : Mvee.handle option; (* set by [launch_instance] *)
  mutable state : instance_state;
  mutable respawns_used : int;
}

type t = {
  kernel : Kernel.t;
  base_config : Mvee.config;
  server : Servers.spec; (* template; the port is overridden per instance *)
  stats : Servers.stats; (* shared: fleet-wide served/truncated totals *)
  recovery : recovery;
  faults_for : idx:int -> generation:int -> Fault.plan;
  instances : instance array;
  mutable handles : Mvee.handle list; (* every generation, for totals *)
  mutable instance_failures : int;
  mutable fleet_respawns : int;
  mutable closed : bool; (* scenario over: stop reacting to exits *)
}

let obs_instant t ~name args =
  match Kernel.obs t.kernel with
  | None -> ()
  | Some o ->
    Remon_obs.Trace.instant o.Remon_obs.Obs.trace ~ts:(Kernel.now t.kernel)
      ~cat:"fleet" ~name ~pid:0 ~tid:0 args;
    Remon_obs.Metrics.incr o.Remon_obs.Obs.metrics
      (match name with
      | "instance_down" -> "fleet.instance_down"
      | "instance_respawn" -> "fleet.instance_respawn"
      | "rolling_step" -> "fleet.rolling_step"
      | n -> "fleet." ^ n)

(* Per-generation config: a distinct seed (diversity layouts, RNG streams)
   and a fresh fault plan, so a respawned generation is not fated to die at
   the same syscall index. *)
let instance_config t inst =
  let seed =
    t.base_config.Mvee.seed + (inst.idx * 7907) + (inst.generation * 104651)
  in
  {
    t.base_config with
    Mvee.seed;
    faults = t.faults_for ~idx:inst.idx ~generation:inst.generation;
    (* pin the group's SysV key to a function of (instance, generation)
       rather than the process-global counter: fleet cells fanned out over
       a domain pool would otherwise allocate keys in pool-schedule order,
       and the keys leak into recorded Shmget events — recordings must be
       byte-identical for any --domains value *)
    shm_key =
      Some
        (Context.mvee_shm_key_base
        + ((inst.idx + 1) * 0x10000)
        + (inst.generation * 16));
  }

let rec launch_instance t inst =
  let spec = { t.server with Servers.port = inst.port } in
  let cfg = instance_config t inst in
  let name =
    Printf.sprintf "%s-i%d-g%d" t.server.Servers.name inst.idx inst.generation
  in
  let handle =
    Mvee.launch t.kernel cfg ~name ~body:(Servers.body ~stats:t.stats spec)
  in
  inst.handle <- Some handle;
  inst.state <- Serving;
  t.handles <- handle :: t.handles;
  watch_instance t inst handle

(* React to the master dying abnormally (crash fault, or the group torn
   down on a verdict): the instance is down. The LB discovers the same
   fact independently through its probes — the freed port refuses. *)
and watch_instance t inst handle =
  let generation = inst.generation in
  Kernel.on_process_exit (Mvee.master_process handle) (fun code ->
      if
        (not t.closed)
        && inst.generation = generation
        && inst.state = Serving
        && code <> 0
      then begin
        inst.state <- Down;
        t.instance_failures <- t.instance_failures + 1;
        obs_instant t ~name:"instance_down"
          [
            ("instance", Remon_obs.Trace.Int inst.idx);
            ("generation", Remon_obs.Trace.Int generation);
          ];
        match t.recovery with
        | No_fleet_recovery -> ()
        | Fleet_respawn { max_respawns; backoff_ns } ->
          if inst.respawns_used < max_respawns then begin
            let attempt = inst.respawns_used in
            inst.respawns_used <- attempt + 1;
            (* exponential backoff, like the intra-instance Respawn *)
            let delay = Vtime.scale backoff_ns (2. ** float_of_int attempt) in
            Kernel.schedule t.kernel
              ~time:(Vtime.add (Kernel.now t.kernel) delay)
              (fun () ->
                if (not t.closed) && inst.state = Down then begin
                  t.fleet_respawns <- t.fleet_respawns + 1;
                  inst.generation <- inst.generation + 1;
                  obs_instant t ~name:"instance_respawn"
                    [
                      ("instance", Remon_obs.Trace.Int inst.idx);
                      ("generation", Remon_obs.Trace.Int inst.generation);
                    ];
                  launch_instance t inst
                end)
          end
      end)

let no_faults ~idx:_ ~generation:_ = []

let create kernel base_config ~server ~base_port ~instances:n ~recovery
    ?(faults_for = no_faults) () =
  let t =
    {
      kernel;
      base_config;
      server;
      stats = Servers.make_stats ();
      recovery;
      faults_for;
      instances =
        Array.init n (fun idx ->
            {
              idx;
              port = base_port + idx;
              generation = 0;
              handle = None;
              state = Serving;
              respawns_used = 0;
            });
      handles = [];
      instance_failures = 0;
      fleet_respawns = 0;
      closed = false;
    }
  in
  Array.iter (fun inst -> launch_instance t inst) t.instances;
  t

let ports t = Array.to_list (Array.map (fun i -> i.port) t.instances)

let close t = t.closed <- true

(* ------------------------------------------------------------------ *)
(* Rolling restart *)

(* Graceful single-instance restart: stop (exit 0, no verdict), bump the
   generation, relaunch on the same port. *)
let restart_instance t inst =
  (match inst.handle with
  | Some h when inst.state = Serving ->
    inst.state <- Restarting;
    Mvee.stop h
  | _ -> ());
  inst.generation <- inst.generation + 1;
  launch_instance t inst

(* Spawned by the operator processes: [pause_ns] is the poll interval for
   the drain / readiness waits. *)
let rolling_operator t ~(lb : Lb.t) ~next ~pause_ns () =
  let n = Array.length t.instances in
  let rec step () =
    if (not t.closed) && !next < n then begin
      let inst = t.instances.(!next) in
      incr next;
      let b = Lb.backend_for lb ~port:inst.port in
      Lb.set_draining lb b;
      (* connection draining: no new picks land here; pinned conns finish.
         Both waits are bounded so a wedged instance cannot park the
         operator forever and keep the event queue alive. *)
      let budget = ref 10_000 in
      while b.Lb.active_conns > 0 && !budget > 0 do
        decr budget;
        Api.nanosleep pause_ns
      done;
      if inst.state = Serving then begin
        restart_instance t inst;
        (* wait until the fresh generation's listener answers *)
        let rec wait_ready tries =
          if tries > 0 then begin
            let fd = Api.socket () in
            let ok =
              match Sched.syscall (Syscall.Connect (fd, inst.port)) with
              | Syscall.Ok_int _ | Syscall.Ok_unit -> true
              | _ -> false
            in
            (try Api.close fd with Api.Sys_error _ -> ());
            if not ok then begin
              Api.nanosleep pause_ns;
              wait_ready (tries - 1)
            end
          end
        in
        wait_ready 10_000
      end;
      Lb.readmit lb b;
      obs_instant t ~name:"rolling_step"
        [ ("instance", Remon_obs.Trace.Int inst.idx) ];
      step ()
    end
  in
  step ()

(* Restart the whole fleet, [max_unavailable] instances at a time. The
   operators are simulation processes; call before [Kernel.run]. *)
let rolling_restart t ~lb ?(max_unavailable = 1) ?(pause_ns = 200_000)
    ?(start_at = Vtime.ms 2) () =
  let next = ref 0 in
  for w = 1 to max 1 max_unavailable do
    ignore
      (Kernel.spawn_process t.kernel
         ~name:(Printf.sprintf "operator-%d" w)
         ~vm_seed:(0x0b + w) ~start_clock:start_at
         (rolling_operator t ~lb ~next ~pause_ns))
  done

(* ------------------------------------------------------------------ *)
(* Totals across every generation of every instance *)

type totals = {
  quarantines : int; (* intra-instance replica quarantines *)
  respawns : int; (* intra-instance journal-replay respawns *)
  watchdog_retries : int;
  faults_injected : int;
  verdicts : Divergence.t list; (* newest first *)
}

(* Fleet-scope recovery counters folded into the metrics summary at
   scenario end — [Mvee.finish] does the same for standalone instances,
   but fleet handles are never [finish]ed. *)
let flush_metrics t totals =
  match Kernel.obs t.kernel with
  | None -> ()
  | Some o ->
    let m = o.Remon_obs.Obs.metrics in
    Remon_obs.Metrics.add m "recovery.quarantines" totals.quarantines;
    Remon_obs.Metrics.add m "recovery.respawns" totals.respawns;
    Remon_obs.Metrics.add m "recovery.watchdog_retries" totals.watchdog_retries;
    (* the event-time instants already incremented these; adding 0 just
       materializes the keys for runs where nothing went down *)
    Remon_obs.Metrics.add m "fleet.instance_down" 0;
    Remon_obs.Metrics.add m "fleet.instance_respawn" 0

let totals t =
  List.fold_left
    (fun acc (h : Mvee.handle) ->
      let g = h.Mvee.group in
      {
        quarantines = acc.quarantines + g.Context.quarantines;
        respawns = acc.respawns + g.Context.respawns;
        watchdog_retries = acc.watchdog_retries + g.Context.watchdog_retries;
        faults_injected =
          (acc.faults_injected
          + match h.Mvee.fault with Some f -> Fault.injected f | None -> 0);
        verdicts =
          (match g.Context.divergence with
          | Some v -> v :: acc.verdicts
          | None -> acc.verdicts);
      })
    {
      quarantines = 0;
      respawns = 0;
      watchdog_retries = 0;
      faults_injected = 0;
      verdicts = [];
    }
    t.handles
