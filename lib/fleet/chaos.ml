(* Chaos driver: one kernel hosting an MVEE fleet, its load balancer, and
   an open-loop client swarm, with deterministic fault plans killing
   replicas (masters included) while the traffic runs.

   Open-loop means every request has a scheduled arrival instant (k times
   the interarrival gap); a worker that falls behind keeps issuing without
   waiting, and latency is measured from the *scheduled* arrival, so queue
   delay during an outage is part of the number — the availability and
   tail-latency figures an SLO would see.

   Everything lives in a single simulated kernel (one event queue), so a
   scenario is one deterministic simulation; sweeps fan independent
   scenarios across domains. *)

open Remon_kernel
open Remon_sim
open Remon_core
open Remon_workloads

type cfg = {
  backend : Mvee.backend;
  instances : int;
  nreplicas : int;
  recovery : bool;
      (* true: intra-instance Respawn + fleet respawn; false: Kill_group
         and no fleet recovery — the availability-floor baseline *)
  fault_rate : float; (* per-syscall-index probability in the chaos plan *)
  fault_horizon : int; (* syscall indices the plan covers *)
  requests : int;
  workers : int;
  interarrival_ns : int; (* open-loop gap between scheduled arrivals *)
  policy : Lb.policy;
  rolling : int option; (* [Some max_unavailable] runs a rolling restart *)
  seed : int;
  trace : bool; (* attach an observability sink *)
  record_dir : string option;
      (* dump a recording for every instance generation that ends with a
         divergence verdict: the chaos sweep's reproducer artifacts *)
}

let default_cfg =
  {
    backend = Mvee.Remon;
    instances = 3;
    nreplicas = 2;
    recovery = true;
    fault_rate = 0.0;
    fault_horizon = 400;
    requests = 150;
    workers = 6;
    interarrival_ns = 40_000;
    policy = Lb.Round_robin;
    rolling = None;
    seed = 42;
    trace = false;
    record_dir = None;
  }

type report = {
  attempted : int;
  succeeded : int;
  failed : int;
  availability : float; (* succeeded / attempted *)
  connect_retries : int;
  client_latency : Latency.summary; (* scheduled-arrival to response *)
  lb_latency : Latency.summary; (* pick-to-response inside the LB *)
  lb_proxied : int;
  failovers : int;
  lb_errors : int;
  ejections : int;
  readmissions : int;
  instance_failures : int;
  fleet_respawns : int;
  quarantines : int; (* intra-instance, summed over generations *)
  respawns : int;
  watchdog_retries : int;
  faults_injected : int;
  served : int; (* server-side successful requests (masters only) *)
  verdict_classes : string list; (* sorted, deduplicated *)
  recordings : string list; (* reproducer files written to [record_dir] *)
  metrics : (string * string) list; (* [] when [trace] is off *)
}

let verdict_class = function
  | Divergence.Args_mismatch _ -> "args_mismatch"
  | Divergence.Sequence_mismatch _ -> "sequence_mismatch"
  | Divergence.Rendezvous_timeout _ -> "rendezvous_timeout"
  | Divergence.Replica_crash _ -> "replica_crash"
  | Divergence.Exit_mismatch _ -> "exit_mismatch"
  | Divergence.Token_violation _ -> "token_violation"
  | Divergence.Shared_memory_rejected _ -> "shared_memory_rejected"

(* ------------------------------------------------------------------ *)

let base_port = 9100
let front_port = 7100
let traffic_epoch = Vtime.ms 1

let server_spec = Servers.kv "chaos-kv" 0 ~work_ns:2_000 ~msg:64

let mvee_config cfg =
  let base =
    match cfg.backend with
    | Mvee.Native -> Runner.cfg_native ~seed:cfg.seed ()
    | Mvee.Ghumvee_only ->
      Runner.cfg_ghumvee ~nreplicas:cfg.nreplicas ~seed:cfg.seed ()
    | Mvee.Varan -> Runner.cfg_varan ~nreplicas:cfg.nreplicas ~seed:cfg.seed ()
    | Mvee.Remon ->
      Runner.cfg_remon ~nreplicas:cfg.nreplicas ~seed:cfg.seed
        Classification.Socket_rw_level
  in
  {
    base with
    Mvee.on_failure =
      (if cfg.recovery then
         Mvee.Respawn { max_respawns = 2; backoff_ns = Vtime.ms 1 }
       else Mvee.Kill_group);
    record = cfg.record_dir <> None;
  }

let faults_for cfg ~nreplicas ~idx ~generation =
  if cfg.fault_rate <= 0. then []
  else
    Fault.chaos_plan
      ~seed:(cfg.seed + (idx * 613) + (generation * 7919))
      ~rate:cfg.fault_rate ~horizon:cfg.fault_horizon ~nreplicas

(* ------------------------------------------------------------------ *)
(* Open-loop traffic *)

type traffic = {
  mutable attempted : int;
  mutable succeeded : int;
  mutable failed : int;
  mutable retries : int;
  latency : Latency.t;
}

(* Worker [w] owns requests w, w+W, w+2W, ... Each is issued at its
   scheduled arrival (or immediately when the worker is already late) on a
   fresh connection to the LB front port. *)
let traffic_worker cfg traffic w () =
  let k = ref w in
  while !k < cfg.requests do
    let at =
      Vtime.add traffic_epoch (Vtime.ns (!k * cfg.interarrival_ns))
    in
    let now = Sched.vnow () in
    if Vtime.(now < at) then Api.nanosleep (Vtime.sub at now);
    traffic.attempted <- traffic.attempted + 1;
    let fd = Api.socket () in
    (match
       Api.connect_retry ~attempts:8 ~base_backoff_ns:100_000
         ~on_retry:(fun _ -> traffic.retries <- traffic.retries + 1)
         fd front_port
     with
    | exception Api.Connect_retries_exhausted _ ->
      traffic.failed <- traffic.failed + 1;
      Latency.record traffic.latency (Vtime.sub (Sched.vnow ()) at)
    | exception Api.Sys_error _ ->
      traffic.failed <- traffic.failed + 1;
      Latency.record traffic.latency (Vtime.sub (Sched.vnow ()) at)
    | () ->
      let ok =
        match Api.send fd (String.make server_spec.Servers.request_bytes 'q')
        with
        | exception Api.Sys_error _ -> false
        | _ -> (
          (* client-side request timeout: an SLO clock keeps ticking while
             the fleet is wedged, and the worker must move on to its next
             scheduled arrival rather than block forever *)
          match
            Api.recv_within fd server_spec.Servers.response_bytes
              ~timeout_ns:10_000_000
          with
          | exception Api.Sys_error _ -> false
          | resp -> String.length resp = server_spec.Servers.response_bytes)
      in
      Latency.record traffic.latency (Vtime.sub (Sched.vnow ()) at);
      if ok then traffic.succeeded <- traffic.succeeded + 1
      else traffic.failed <- traffic.failed + 1);
    (try Api.close fd with Api.Sys_error _ -> ());
    k := !k + cfg.workers
  done

(* ------------------------------------------------------------------ *)

let run_scenario ?obs cfg : report =
  let kernel = Kernel.create ~seed:cfg.seed ~net_latency:(Vtime.us 50) () in
  let obs =
    match obs with
    | Some _ -> obs (* caller-owned sink (e.g. the CLI's trace dump) *)
    | None -> if cfg.trace then Some (Remon_obs.Obs.create ()) else None
  in
  (match obs with Some o -> Kernel.set_obs kernel o | None -> ());
  let mcfg = mvee_config cfg in
  let fleet =
    Fleet.create kernel mcfg ~server:server_spec ~base_port
      ~instances:cfg.instances
      ~recovery:
        (if cfg.recovery then
           Fleet.Fleet_respawn { max_respawns = 3; backoff_ns = Vtime.ms 2 }
         else Fleet.No_fleet_recovery)
      ~faults_for:(faults_for cfg ~nreplicas:mcfg.Mvee.nreplicas)
      ()
  in
  let traffic_end =
    Vtime.add traffic_epoch (Vtime.ns (cfg.requests * cfg.interarrival_ns))
  in
  let deadline = Vtime.add traffic_end (Vtime.ms 20) in
  let lb_cfg =
    {
      (Lb.default_config ~front_port
         ~request_bytes:server_spec.Servers.request_bytes
         ~response_bytes:server_spec.Servers.response_bytes)
      with
      Lb.policy = cfg.policy;
    }
  in
  let lb = Lb.launch kernel lb_cfg ~backend_ports:(Fleet.ports fleet) ~deadline in
  let traffic =
    {
      attempted = 0;
      succeeded = 0;
      failed = 0;
      retries = 0;
      latency = Latency.create ();
    }
  in
  for w = 0 to cfg.workers - 1 do
    ignore
      (Kernel.spawn_process kernel
         ~name:(Printf.sprintf "chaos-client-%d" w)
         ~vm_seed:(17_000 + w) ~start_clock:(Vtime.us 500)
         (traffic_worker cfg traffic w))
  done;
  (match cfg.rolling with
  | Some max_unavailable ->
    Fleet.rolling_restart fleet ~lb ~max_unavailable ()
  | None -> ());
  Kernel.run kernel;
  Fleet.close fleet;
  Lb.flush_metrics lb;
  let totals = Fleet.totals fleet in
  Fleet.flush_metrics fleet totals;
  let availability =
    if traffic.attempted = 0 then 1.0
    else float_of_int traffic.succeeded /. float_of_int traffic.attempted
  in
  (* reproducer dump: one recording per instance generation that ended
     with a verdict — replayable offline with `remon replay` *)
  let recordings =
    match cfg.record_dir with
    | None -> []
    | Some dir ->
      (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
      List.rev fleet.Fleet.handles
      |> List.mapi (fun i (h : Mvee.handle) -> (i, h))
      |> List.filter_map (fun (i, (h : Mvee.handle)) ->
             match (h.Mvee.group.Context.divergence, h.Mvee.recorder) with
             | Some v, Some b ->
               let log =
                 h.Mvee.group.Context.rb.Replication_buffer.sync_log
               in
               Recording.detach b log;
               let r =
                 Recording.finish b
                   ~verdict:(Some (Divergence.class_of v, Divergence.to_string v))
               in
               let r = Recording.with_workload r "chaos-kv" in
               let path =
                 Filename.concat dir
                   (Printf.sprintf "chaos-seed%d-rate%.4f-rec%s-gen%d.rmrc"
                      cfg.seed cfg.fault_rate
                      (if cfg.recovery then "on" else "off")
                      i)
               in
               Recording.to_file r path;
               Some path
             | _ -> None)
  in
  {
    attempted = traffic.attempted;
    succeeded = traffic.succeeded;
    failed = traffic.failed;
    availability;
    connect_retries = traffic.retries;
    client_latency = Latency.summary traffic.latency;
    lb_latency = Latency.summary lb.Lb.latency;
    lb_proxied = lb.Lb.proxied;
    failovers = lb.Lb.failovers;
    lb_errors = lb.Lb.lb_errors;
    ejections = lb.Lb.ejections;
    readmissions = lb.Lb.readmissions;
    instance_failures = fleet.Fleet.instance_failures;
    fleet_respawns = fleet.Fleet.fleet_respawns;
    quarantines = totals.Fleet.quarantines;
    respawns = totals.Fleet.respawns;
    watchdog_retries = totals.Fleet.watchdog_retries;
    faults_injected = totals.Fleet.faults_injected;
    served = fleet.Fleet.stats.Servers.served;
    verdict_classes =
      List.sort_uniq compare (List.map verdict_class totals.Fleet.verdicts);
    recordings;
    metrics = Remon_obs.Obs.summary obs;
  }

(* One deterministic line per sweep cell; bench tables and the domains
   identity test both consume it. *)
let summary_line cfg r =
  let ms v = Vtime.to_float_ns v /. 1e6 in
  Printf.sprintf
    "%s rate=%.4f rec=%s | avail=%.3f ok=%d/%d err=%d retry=%d | fo=%d \
     eject=%d readmit=%d down=%d fresp=%d q=%d r=%d | p50=%.3fms p99=%.3fms"
    (Mvee.backend_to_string cfg.backend)
    cfg.fault_rate
    (if cfg.recovery then "on" else "off")
    r.availability r.succeeded r.attempted r.failed r.connect_retries
    r.failovers r.ejections r.readmissions r.instance_failures
    r.fleet_respawns r.quarantines r.respawns
    (ms r.client_latency.Latency.p50)
    (ms r.client_latency.Latency.p99)
