(** Calibrated cost model for the simulated machine.

    Defaults approximate the paper's dual-Xeon E5-2660 testbed. The model's
    purpose is structural fidelity: ptrace round trips cost microseconds,
    replication-buffer operations cost nanoseconds, and network latency can
    hide server-side overhead. *)

type t = {
  syscall_trap_ns : int;
  context_switch_ns : int;
  monitor_work_ns : int;
  copy_fixed_ns : int;
  copy_ns_per_byte : float;
  local_copy_ns_per_byte : float;
  rb_write_fixed_ns : int;
  rb_read_fixed_ns : int;
  arg_compare_ns_per_byte : float;
  futex_wake_ns : int;
  futex_wait_ns : int;
  spin_poll_ns : int;
  token_check_ns : int;
  ipmon_forward_ns : int;
  ipmon_restart_ns : int;
  signal_delivery_ns : int;
  nic_overhead_ns : int;
  wire_ns_per_byte : float;
  cacheline_bounce_ns : int;
  respawn_spawn_ns : int;
      (** monitor-side cost of forking + attaching a replacement replica *)
  replay_record_ns : int;
      (** per-record cost of journal-driven resynchronization replay *)
  link_latency_ns : int;
      (** one-way inter-host propagation delay; doubles as the
          conservative-synchronization lookahead of sharded runs *)
}

val default : t
(** The paper-testbed preset. *)

val cheap_switches : t
(** Ablation preset with 6x cheaper context switches. *)

val ptrace_stop_ns : t -> int
(** Cost of one ptrace stop from the tracee's perspective. *)

val copy_ns : t -> bytes:int -> int
(** Cross-process copy cost ([process_vm_readv]-style). *)

val local_copy_ns : t -> bytes:int -> int
(** Same-address-space copy cost (replication-buffer payloads). *)

val compare_ns : t -> bytes:int -> int
(** Deep argument-comparison cost. *)

val wire_ns : t -> bytes:int -> int
(** Per-message network processing + serialization cost (excludes
    propagation latency, which is a property of the link). *)

val link_latency : t -> int
(** The [link_latency_ns] field, as the default per-link latency (and
    lookahead) of multi-host topologies. *)
