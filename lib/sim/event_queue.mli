(** Binary min-heap of timestamped events with deterministic tie-breaking
    (insertion order), O(1) cancellation, and an allocation-free hot path
    (recycled entry pool, [add_]/[pop_into]). *)

type 'a t

type stats = {
  adds : int;
  cancels : int;
  pops : int;
  compactions : int;
  lazy_drops : int;  (** dead entries discarded by [peek_time]'s lazy sweep *)
}

type handle

type 'a slot
(** A caller-owned landing pad for [pop_into]: holds the time and payload
    of the most recently popped event without allocating per pop. *)

val make_slot : 'a -> 'a slot
(** [make_slot dummy] creates a slot primed with a placeholder payload. *)

val create : unit -> 'a t

val length : 'a t -> int
(** Number of live (non-cancelled) events. O(1): maintained as a counter,
    not a heap scan. *)

val is_empty : 'a t -> bool
(** O(1). *)

val physical_size : 'a t -> int
(** Heap slots currently occupied, live plus not-yet-compacted dead
    entries. Exposed so tests can assert that cancellation-heavy loads
    are compacted; always [>= length]. *)

val add : 'a t -> time:Vtime.t -> 'a -> handle
(** Schedules a payload; the returned handle can cancel it. *)

val add_ : 'a t -> time:Vtime.t -> 'a -> unit
(** [add] without the handle: allocation-free in steady state (the entry
    comes from the recycle pool). For events that are never cancelled. *)

val add_pre_ : 'a t -> time:Vtime.t -> 'a -> unit
(** Like [add_], but the event lands in the pre-lane: among events at the
    same time, every pre-lane event pops before every normally-added
    event, while pre-lane events keep their own relative insertion order.
    The shard coordinator delivers cross-host messages through this lane
    so that pop order at a time tie does not depend on which
    synchronization round performed the insertion. *)

val cancel : handle -> unit
(** Marks an event dead; it will be skipped on pop. Idempotent, and a
    no-op once the event was popped (even if its entry was recycled). *)

val pop : 'a t -> (Vtime.t * 'a) option
(** Removes and returns the earliest live event. *)

val pop_into : 'a t -> 'a slot -> bool
(** [pop_into t slot] pops the earliest live event into [slot] and
    returns true, or returns false on an empty queue. Allocation-free. *)

val slot_time : 'a slot -> Vtime.t
val slot_payload : 'a slot -> 'a

val peek_time : 'a t -> Vtime.t option
(** Time of the earliest live event without removing it. *)

val stats : 'a t -> stats
(** Lifetime add/cancel/pop/compaction/lazy-drop tallies, for the
    observability metrics scrape. Always maintained; plain int increments
    per queue operation. *)
