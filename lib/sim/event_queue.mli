(** Binary min-heap of timestamped events with deterministic tie-breaking
    (insertion order) and O(1) cancellation. *)

type 'a t

type stats = { adds : int; cancels : int; pops : int; compactions : int }

type handle

val create : unit -> 'a t

val length : 'a t -> int
(** Number of live (non-cancelled) events. O(1): maintained as a counter,
    not a heap scan. *)

val is_empty : 'a t -> bool
(** O(1). *)

val physical_size : 'a t -> int
(** Heap slots currently occupied, live plus not-yet-compacted dead
    entries. Exposed so tests can assert that cancellation-heavy loads
    are compacted; always [>= length]. *)

val add : 'a t -> time:Vtime.t -> 'a -> handle
(** Schedules a payload; the returned handle can cancel it. *)

val cancel : handle -> unit
(** Marks an event dead; it will be skipped on pop. Idempotent. *)

val pop : 'a t -> (Vtime.t * 'a) option
(** Removes and returns the earliest live event. *)

val peek_time : 'a t -> Vtime.t option
(** Time of the earliest live event without removing it. *)

val stats : 'a t -> stats
(** Lifetime add/cancel/pop/compaction tallies, for the observability
    metrics scrape. Always maintained; four int increments per queue
    operation. *)
