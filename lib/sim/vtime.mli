(** Virtual time: nanoseconds since simulation start, carried as an
    immediate [int]. 63-bit ns covers ~146 years of virtual time, and
    keeping the representation unboxed means time arithmetic on the
    scheduler hot path allocates nothing (an [int64] would box on every
    add/max/charge). *)

type t = int

val zero : t

val infinity : t
(** Later than any reachable event time; the identity of [min]. Used as
    the horizon of an idle shard in conservative-parallel runs. *)

val is_finite : t -> bool
(** [is_finite t] is [false] only for {!infinity}. *)

val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t

val of_float_ns : float -> t
val to_float_ns : t -> float
val of_float_s : float -> t
val to_float_s : t -> float

val to_int_ns : t -> int
val of_int_ns : int -> t

val add : t -> t -> t
val sub : t -> t -> t
val compare : t -> t -> int

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val max : t -> t -> t
val min : t -> t -> t

val scale : t -> float -> t
(** [scale t f] multiplies a duration by a float factor. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
