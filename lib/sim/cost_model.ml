(* Calibrated cost model for the simulated machine.

   The defaults approximate the paper's testbed (dual 8-core Xeon E5-2660,
   Linux 3.13): the absolute values matter less than the orderings the
   paper's argument rests on — a ptrace round trip costs microseconds
   (context switches + TLB/cache effects) while IP-MON's replication-buffer
   work costs tens to hundreds of nanoseconds. *)

type t = {
  syscall_trap_ns : int;
      (* user->kernel->user transition for an untraced syscall *)
  context_switch_ns : int;
      (* one context switch including TLB/cache refill effects *)
  monitor_work_ns : int;
      (* GHUMVEE per-stop bookkeeping (decode, compare dispatch) *)
  copy_fixed_ns : int;
      (* fixed cost of one cross-process copy (process_vm_readv) *)
  copy_ns_per_byte : float;
      (* marginal cross-process copy cost *)
  local_copy_ns_per_byte : float;
      (* marginal same-address-space memcpy cost (RB reads/writes) *)
  rb_write_fixed_ns : int;
      (* IP-MON: append a record header to the replication buffer *)
  rb_read_fixed_ns : int;
      (* IP-MON: locate + validate a record in the replication buffer *)
  arg_compare_ns_per_byte : float;
      (* deep comparison of syscall arguments *)
  futex_wake_ns : int;  (* FUTEX_WAKE syscall incl. target wakeup *)
  futex_wait_ns : int;  (* FUTEX_WAIT syscall setup (not the wait itself) *)
  spin_poll_ns : int;   (* one iteration of a spin-read loop *)
  token_check_ns : int; (* IK-B verifier: authorization-token comparison *)
  ipmon_forward_ns : int;
      (* IK-B interceptor: rewrite PC, load token+RB registers, return to
         IP-MON's syscall entry point *)
  ipmon_restart_ns : int;
      (* IP-MON restarting the forwarded call (second kernel entry) *)
  signal_delivery_ns : int; (* kernel signal frame setup *)
  nic_overhead_ns : int;    (* per-message NIC + stack processing *)
  wire_ns_per_byte : float; (* serialization on a gigabit link: 8 ns/byte *)
  cacheline_bounce_ns : int;
      (* one cross-core cache-line transfer; the master pays one per slave
         per published RB record (the slaves' reads steal the lines) *)
  respawn_spawn_ns : int;
      (* monitor-side cost of forking + attaching a replacement replica
         under the Respawn recovery policy *)
  replay_record_ns : int;
      (* per-record cost of satisfying a respawned replica's syscall from
         the master's journal during resynchronization *)
  link_latency_ns : int;
      (* one-way propagation delay of an inter-host link (LAN-scale
         default). In sharded runs this is also the conservative
         synchronization lookahead: a shard may run ahead of its peers by
         exactly this much, so it bounds both fidelity and parallelism. *)
}

let default =
  {
    syscall_trap_ns = 120;
    context_switch_ns = 1_800;
    monitor_work_ns = 650;
    copy_fixed_ns = 480;
    copy_ns_per_byte = 0.12;
    local_copy_ns_per_byte = 0.05;
    rb_write_fixed_ns = 90;
    rb_read_fixed_ns = 70;
    arg_compare_ns_per_byte = 0.06;
    futex_wake_ns = 1_100;
    futex_wait_ns = 900;
    spin_poll_ns = 24;
    token_check_ns = 18;
    ipmon_forward_ns = 160;
    ipmon_restart_ns = 130;
    signal_delivery_ns = 950;
    nic_overhead_ns = 4_500;
    wire_ns_per_byte = 8.0;
    cacheline_bounce_ns = 45;
    respawn_spawn_ns = 450_000;
    replay_record_ns = 400;
    link_latency_ns = 200_000;
  }

(* A hypothetical machine with very cheap context switches: used by the
   ablation benches to show how the CP/IP gap tracks the switch cost. *)
let cheap_switches = { default with context_switch_ns = 300 }

(* One full ptrace stop as seen by the stopped tracee: trap into the kernel,
   switch to the monitor, monitor work, switch back, resume. *)
let ptrace_stop_ns t =
  t.syscall_trap_ns + (2 * t.context_switch_ns) + t.monitor_work_ns

let copy_ns t ~bytes =
  float_of_int t.copy_fixed_ns +. (t.copy_ns_per_byte *. float_of_int bytes)
  |> int_of_float

let local_copy_ns t ~bytes =
  int_of_float (t.local_copy_ns_per_byte *. float_of_int bytes)

let compare_ns t ~bytes =
  int_of_float (t.arg_compare_ns_per_byte *. float_of_int bytes)

let wire_ns t ~bytes =
  t.nic_overhead_ns + int_of_float (t.wire_ns_per_byte *. float_of_int bytes)

let link_latency t = t.link_latency_ns
