(* Virtual time: nanoseconds since simulation start, as an immediate int.

   The representation is deliberately unboxed: thread clocks are bumped on
   every simulated syscall stage, so a boxed int64 here would allocate
   three words per charge. A native 63-bit int still spans ~146 years of
   virtual nanoseconds. *)

type t = int

let zero = 0

(* Horizon sentinel for conservative-parallel synchronization: later than
   any reachable event time, absorbing under [min]. *)
let infinity = max_int

let is_finite t = t <> max_int

let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000

let of_float_ns f = int_of_float f
let to_float_ns t = float_of_int t

let of_float_s f = int_of_float (f *. 1e9)
let to_float_s t = float_of_int t /. 1e9

let to_int_ns t = t
let of_int_ns n = n

let add = ( + )
let sub = ( - )
let compare = Int.compare
let ( + ) = Stdlib.( + )
let ( - ) = Stdlib.( - )
let ( < ) (a : int) b = Stdlib.( < ) a b
let ( <= ) (a : int) b = Stdlib.( <= ) a b
let ( > ) (a : int) b = Stdlib.( > ) a b
let ( >= ) (a : int) b = Stdlib.( >= ) a b
let max (a : int) b = if Stdlib.( >= ) a b then a else b
let min (a : int) b = if Stdlib.( <= ) a b then a else b

let scale t f = int_of_float (float_of_int t *. f)

let pp fmt t = Format.fprintf fmt "%s" (Remon_util.Table.fmt_ns t)
let to_string t = Remon_util.Table.fmt_ns t
