(* Binary min-heap of timestamped events.

   Ties are broken by insertion sequence so that simulation runs are fully
   deterministic regardless of heap internals.

   Hot-path properties:
   - [length]/[is_empty] are O(1): a live-entry counter is maintained by
     add/cancel/pop instead of scanning the heap (these are called inside
     run loops).
   - [add] is amortized O(1) for the common monotone-time insertion
     pattern: a new entry that is not earlier than its parent needs a
     single comparison and no sift.
   - Cancelled entries are compacted away once they outnumber the live
     ones, so a workload that schedules-and-cancels (timeouts, watchdogs)
     cannot grow the heap without bound. Compaction rebuilds the heap by
     (time, seq), a total order, so pop order is unaffected. *)

type 'a entry = {
  time : Vtime.t;
  seq : int;
  payload : 'a;
  mutable live : bool;
  owner : 'a t; (* for cancel to maintain the owner's live counter *)
}

and 'a t = {
  mutable heap : 'a entry array;
  mutable size : int; (* physical entries, live + dead *)
  mutable lives : int; (* live (non-cancelled, non-popped) entries *)
  mutable next_seq : int;
  (* lifetime tallies, scraped into the observability metrics at run end;
     plain int increments, cheap enough to keep unconditionally *)
  mutable adds : int;
  mutable cancels : int;
  mutable pops : int;
  mutable compactions : int;
}

type stats = { adds : int; cancels : int; pops : int; compactions : int }

type handle = H : 'a entry -> handle

let create () =
  {
    heap = [||];
    size = 0;
    lives = 0;
    next_seq = 0;
    adds = 0;
    cancels = 0;
    pops = 0;
    compactions = 0;
  }

let stats (t : _ t) : stats =
  { adds = t.adds; cancels = t.cancels; pops = t.pops; compactions = t.compactions }

let length t = t.lives

let is_empty t = t.lives = 0

let physical_size t = t.size

let before a b =
  match Vtime.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let dummy = t.heap.(0) in
    let bigger = Array.make (max 16 (2 * cap)) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

(* Drop dead entries and re-establish the heap property bottom-up
   (Floyd heapify, O(size)). Run when dead entries outnumber live ones,
   which amortizes to O(1) per cancellation. *)
let compact (t : _ t) =
  t.compactions <- t.compactions + 1;
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    if t.heap.(i).live then begin
      t.heap.(!j) <- t.heap.(i);
      incr j
    end
  done;
  t.size <- !j;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

let add t ~time payload =
  let entry = { time; seq = t.next_seq; payload; live = true; owner = t } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
  grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  t.lives <- t.lives + 1;
  t.adds <- t.adds + 1;
  (* fast path: events scheduled at non-decreasing times stay put *)
  let i = t.size - 1 in
  if i > 0 && before entry t.heap.((i - 1) / 2) then sift_up t i;
  H entry

let cancel (H entry) =
  if entry.live then begin
    let t = entry.owner in
    entry.live <- false;
    t.lives <- t.lives - 1;
    t.cancels <- t.cancels + 1;
    if t.size >= 32 && t.size - t.lives > t.lives then compact t
  end

let rec pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    if top.live then begin
      (* mark popped so a late cancel of its handle is a no-op *)
      top.live <- false;
      t.lives <- t.lives - 1;
      t.pops <- t.pops + 1;
      Some (top.time, top.payload)
    end
    else pop t
  end

let peek_time t =
  let rec scan () =
    if t.size = 0 then None
    else if t.heap.(0).live then Some t.heap.(0).time
    else begin
      (* Drop dead entries lazily. *)
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.heap.(0) <- t.heap.(t.size);
        sift_down t 0
      end;
      scan ()
    end
  in
  scan ()
