(* Binary min-heap of timestamped events.

   Ties are broken by insertion sequence so that simulation runs are fully
   deterministic regardless of heap internals.

   Hot-path properties:
   - [length]/[is_empty] are O(1): a live-entry counter is maintained by
     add/cancel/pop instead of scanning the heap (these are called inside
     run loops).
   - [add]/[add_] are amortized O(1) for the common monotone-time insertion
     pattern: a new entry that is not earlier than its parent needs a
     single comparison and no sift.
   - Steady-state operation allocates nothing: entries are mutable records
     recycled through a free pool, [add_] returns no handle, and
     [pop_into] writes the popped event into a caller-owned slot instead
     of building a tuple. The allocating [add]/[pop] remain for callers
     that need cancellation handles or do not care.
   - Cancelled entries are compacted away once they outnumber the live
     ones, so a workload that schedules-and-cancels (timeouts, watchdogs)
     cannot grow the heap without bound. Compaction rebuilds the heap by
     (time, seq), a total order, so pop order is unaffected. *)

type 'a entry = {
  mutable time : Vtime.t;
  mutable seq : int;
  mutable payload : 'a;
  mutable live : bool;
}

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int; (* physical entries, live + dead *)
  mutable lives : int; (* live (non-cancelled, non-popped) entries *)
  mutable next_seq : int;
  (* pre-lane sequence counter: starts at [min_int] and counts up, so every
     pre-lane event compares before every normally-added event at the same
     time while pre-lane insertions keep their own relative order. The shard
     coordinator uses this to deliver cross-host messages ahead of any
     locally-scheduled event at the same instant, making pop order at a tie
     independent of which synchronization round performed the insertion. *)
  mutable next_pre_seq : int;
  (* recycled entries: popped/compacted-away records come back here so the
     steady state allocates no entry per event *)
  mutable pool : 'a entry array;
  mutable pooled : int;
  (* lifetime tallies, scraped into the observability metrics at run end;
     plain int increments, cheap enough to keep unconditionally *)
  mutable adds : int;
  mutable cancels : int;
  mutable pops : int;
  mutable compactions : int;
  mutable lazy_drops : int;
      (* dead entries discarded by [peek_time]'s lazy sweep: without this
         tally the metrics scrape undercounts queue work under
         cancellation-heavy loads (the drops appear in no other stat) *)
}

type stats = {
  adds : int;
  cancels : int;
  pops : int;
  compactions : int;
  lazy_drops : int;
}

(* The seq snapshot distinguishes the scheduled event from later reuses of
   the same (recycled) entry record: cancel is a no-op once they differ. *)
type handle = H : 'a t * 'a entry * int -> handle

type 'a slot = { mutable s_time : Vtime.t; mutable s_payload : 'a }

let make_slot payload = { s_time = Vtime.zero; s_payload = payload }

let slot_time slot = slot.s_time
let slot_payload slot = slot.s_payload

let create () =
  {
    heap = [||];
    size = 0;
    lives = 0;
    next_seq = 0;
    next_pre_seq = min_int;
    pool = [||];
    pooled = 0;
    adds = 0;
    cancels = 0;
    pops = 0;
    compactions = 0;
    lazy_drops = 0;
  }

let stats (t : _ t) : stats =
  {
    adds = t.adds;
    cancels = t.cancels;
    pops = t.pops;
    compactions = t.compactions;
    lazy_drops = t.lazy_drops;
  }

let length t = t.lives

let is_empty t = t.lives = 0

let physical_size t = t.size

let before a b =
  if a.time = b.time then a.seq < b.seq else Vtime.(a.time < b.time)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let dummy = t.heap.(0) in
    let bigger = Array.make (max 16 (2 * cap)) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end

(* Return a recycled entry to the pool. The payload reference is kept (the
   slot is overwritten on reuse); the heap array retained popped entries
   before this change too, so the retention window is unchanged. *)
let release t e =
  e.live <- false;
  let cap = Array.length t.pool in
  if t.pooled >= cap then begin
    let bigger = Array.make (max 16 (2 * cap)) e in
    Array.blit t.pool 0 bigger 0 t.pooled;
    t.pool <- bigger
  end;
  t.pool.(t.pooled) <- e;
  t.pooled <- t.pooled + 1

(* Drop dead entries and re-establish the heap property bottom-up
   (Floyd heapify, O(size)). Run when dead entries outnumber live ones,
   which amortizes to O(1) per cancellation. *)
let compact (t : _ t) =
  t.compactions <- t.compactions + 1;
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    let e = t.heap.(i) in
    if e.live then begin
      t.heap.(!j) <- t.heap.(i);
      incr j
    end
    else release t e
  done;
  t.size <- !j;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done

(* Burst arrival refill: when an insert finds the pool dry, allocate a
   geometric batch of spare entries (proportional to the live heap size,
   capped) instead of one record per insert. A connection storm that
   schedules 10^6 events then allocates O(log n) batches rather than 10^6
   individual records, and the GC sees large young blocks instead of a
   stream of 5-word ones. *)
let refill_pool t payload =
  let n = max 15 (min 1023 t.size) in
  let cap = Array.length t.pool in
  if n > cap then begin
    let dummy = { time = Vtime.zero; seq = 0; payload; live = false } in
    let bigger = Array.make (max 16 (max n (2 * cap))) dummy in
    Array.blit t.pool 0 bigger 0 t.pooled;
    t.pool <- bigger
  end;
  for i = t.pooled to t.pooled + n - 1 do
    t.pool.(i) <- { time = Vtime.zero; seq = 0; payload; live = false }
  done;
  t.pooled <- t.pooled + n

let insert t ~seq ~time payload =
  if t.pooled = 0 then refill_pool t payload;
  t.pooled <- t.pooled - 1;
  let entry = t.pool.(t.pooled) in
  entry.time <- time;
  entry.seq <- seq;
  entry.payload <- payload;
  entry.live <- true;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
  grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  t.lives <- t.lives + 1;
  t.adds <- t.adds + 1;
  (* fast path: events scheduled at non-decreasing times stay put *)
  let i = t.size - 1 in
  if i > 0 && before entry t.heap.((i - 1) / 2) then sift_up t i;
  entry

let take_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let add t ~time payload =
  let entry = insert t ~seq:(take_seq t) ~time payload in
  H (t, entry, entry.seq)

let add_ t ~time payload =
  ignore (insert t ~seq:(take_seq t) ~time payload : _ entry)

let add_pre_ t ~time payload =
  let s = t.next_pre_seq in
  t.next_pre_seq <- s + 1;
  ignore (insert t ~seq:s ~time payload : _ entry)

let cancel (H (t, entry, seq)) =
  if entry.live && entry.seq = seq then begin
    entry.live <- false;
    t.lives <- t.lives - 1;
    t.cancels <- t.cancels + 1;
    if t.size >= 32 && t.size - t.lives > t.lives then compact t
  end

(* Remove the heap top and hand the entry back; caller must read the
   fields it needs before anything else touches the queue. *)
let rec pop_entry t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    if top.live then begin
      (* mark popped so a late cancel of its handle is a no-op *)
      top.live <- false;
      t.lives <- t.lives - 1;
      t.pops <- t.pops + 1;
      Some top
    end
    else begin
      release t top;
      pop_entry t
    end
  end

let pop t =
  match pop_entry t with
  | None -> None
  | Some e ->
    let r = Some (e.time, e.payload) in
    release t e;
    r

(* Non-allocating pop used by the scheduler run loop. *)
let pop_into t slot =
  match pop_entry t with
  | None -> false
  | Some e ->
    slot.s_time <- e.time;
    slot.s_payload <- e.payload;
    release t e;
    true

let peek_time t =
  let rec scan () =
    if t.size = 0 then None
    else begin
      let top = t.heap.(0) in
      if top.live then Some top.time
      else begin
        (* Drop dead entries lazily. *)
        t.lazy_drops <- t.lazy_drops + 1;
        t.size <- t.size - 1;
        if t.size > 0 then begin
          t.heap.(0) <- t.heap.(t.size);
          sift_down t 0
        end;
        release t top;
        scan ()
      end
    end
  in
  scan ()
