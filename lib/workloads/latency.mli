(** Per-request latency reservoir (virtual-time durations) with
    deterministic stride decimation: no RNG, so percentile tables are
    byte-identical under any [--domains] value. Exact count, mean and max
    are tracked undecimated. *)

open Remon_sim

type t

val default_cap : int

val create : ?cap:int -> unit -> t
val record : t -> Vtime.t -> unit

val count : t -> int
(** Exact number of observations (not the stored-sample count). *)

val max_sample : t -> Vtime.t
val mean_ns : t -> float

val percentile : t -> float -> Vtime.t
(** Nearest-rank percentile (argument in percent, e.g. [99.0]) over the
    stored — possibly decimated — samples. *)

type summary = {
  count : int;
  mean_ns : float;
  p50 : Vtime.t;
  p90 : Vtime.t;
  p99 : Vtime.t;
  max : Vtime.t;
}

val summary : t -> summary
val summary_to_string : summary -> string
