(* Per-request latency reservoir for the server benchmarks.

   Samples are virtual-time durations, recorded in arrival order by the
   closed-loop client workers. The reservoir is deterministic: when it
   fills, it decimates by keeping every other stored sample and doubling
   the stride between kept observations — no RNG — so a given simulation
   produces the same percentile table under any --domains value. Exact
   count, sum and max are tracked separately and never decimated. *)

open Remon_sim

type t = {
  mutable samples : Vtime.t array;
  mutable n : int; (* stored samples *)
  mutable stride : int; (* keep every stride-th observation *)
  mutable next_keep : int; (* observation index of the next kept sample *)
  cap : int;
  mutable count : int; (* exact observations *)
  mutable sum_ns : int; (* exact sum *)
  mutable max : Vtime.t; (* exact max *)
}

let default_cap = 1 lsl 16

let create ?(cap = default_cap) () =
  {
    samples = Array.make (max 2 cap) Vtime.zero;
    n = 0;
    stride = 1;
    next_keep = 0;
    cap = max 2 cap;
    count = 0;
    sum_ns = 0;
    max = Vtime.zero;
  }

(* Keep stored indices 0, 2, 4, ...: the survivors stay evenly spaced over
   the observation history, and the stride doubles accordingly. *)
let decimate t =
  let kept = ref 0 in
  let i = ref 0 in
  while !i < t.n do
    t.samples.(!kept) <- t.samples.(!i);
    incr kept;
    i := !i + 2
  done;
  t.n <- !kept;
  t.stride <- t.stride * 2

let record t v =
  t.count <- t.count + 1;
  t.sum_ns <- t.sum_ns + v;
  if Vtime.(t.max < v) then t.max <- v;
  if t.count - 1 = t.next_keep then begin
    if t.n = t.cap then decimate t;
    t.samples.(t.n) <- v;
    t.n <- t.n + 1;
    t.next_keep <- t.next_keep + t.stride
  end

let count t = t.count
let max_sample t = t.max

let mean_ns t =
  if t.count = 0 then 0.0 else float_of_int t.sum_ns /. float_of_int t.count

(* Nearest-rank percentile over the stored (possibly decimated) samples. *)
let percentile t q =
  if t.n = 0 then Vtime.zero
  else begin
    let sorted = Array.sub t.samples 0 t.n in
    Array.sort Vtime.compare sorted;
    let rank =
      int_of_float (ceil (q /. 100.0 *. float_of_int t.n)) - 1
    in
    sorted.(max 0 (min (t.n - 1) rank))
  end

type summary = {
  count : int;
  mean_ns : float;
  p50 : Vtime.t;
  p90 : Vtime.t;
  p99 : Vtime.t;
  max : Vtime.t;
}

let summary t =
  (* one sort for all three percentiles *)
  let sorted = Array.sub t.samples 0 t.n in
  Array.sort Vtime.compare sorted;
  let pct q =
    if t.n = 0 then Vtime.zero
    else
      let rank = int_of_float (ceil (q /. 100.0 *. float_of_int t.n)) - 1 in
      sorted.(max 0 (min (t.n - 1) rank))
  in
  {
    count = t.count;
    mean_ns = mean_ns t;
    p50 = pct 50.0;
    p90 = pct 90.0;
    p99 = pct 99.0;
    max = t.max;
  }

let ms v = Vtime.to_float_ns v /. 1e6

let summary_to_string s =
  Printf.sprintf "n=%d mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms"
    s.count (s.mean_ns /. 1e6) (ms s.p50) (ms s.p90) (ms s.p99) (ms s.max)
