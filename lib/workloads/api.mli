(** Convenience layer for writing simulated programs: typed wrappers around
    the syscall effect with EINTR retry and result unwrapping. Programs
    written against it look like ordinary POSIX code; the MVEE underneath
    is invisible — which is the transparency property the monitors must
    preserve. *)

open Remon_kernel

exception Sys_error of Errno.t * string

val retrying : string -> Syscall.call -> Syscall.result
(** Issue a call, transparently retrying on EINTR. *)

(** {1 Compute} *)

val compute : int -> unit (** burn [ns] of virtual CPU time *)

val compute_us : int -> unit
val now : unit -> Remon_sim.Vtime.t

(** {1 Files} *)

val open_file : ?flags:Syscall.open_flags -> string -> int
val create_file : string -> int (** O_RDWR | O_CREAT | O_TRUNC *)

val close : int -> unit
val read : int -> int -> string
val write : int -> string -> int
val pread : int -> int -> int -> string
val pwrite : int -> string -> int -> int
val lseek : int -> int -> int
val stat : string -> Syscall.stat_info
val fstat : int -> Syscall.stat_info
val fsync : int -> unit
val unlink : string -> unit

(** {1 Time / identity} *)

val gettimeofday : unit -> int64
val getpid : unit -> int
val sched_yield : unit -> unit
val nanosleep : int -> unit

(** {1 Pipes and sockets} *)

val pipe : unit -> int * int
val socket : unit -> int
val socketpair : unit -> int * int
val bind : int -> int -> unit
val listen : int -> int -> unit
val accept : int -> Syscall.accept_info

exception Connect_retries_exhausted of { port : int; attempts : int }
(** [connect_retry] ran out of attempts while the port still refused. *)

val connect_retry :
  ?attempts:int ->
  ?base_backoff_ns:int ->
  ?cap_backoff_ns:int ->
  ?on_retry:(int -> unit) ->
  int ->
  int ->
  unit
(** Blocking connect, retrying while the port refuses, with deterministic
    exponential backoff: [base_backoff_ns] (default 200us) doubling up to
    [cap_backoff_ns] (default 50ms), [attempts] tries (default 50).
    [on_retry] fires before each backoff sleep with the 1-based retry
    number, so callers can count retries into their metrics. Raises
    {!Connect_retries_exhausted} when the budget runs out. *)

val send : int -> string -> int
val recv : int -> int -> string

val read_exactly : int -> int -> string -> string
val recv_exactly : int -> int -> string
(** Reads exactly [n] bytes or until EOF. *)

val recv_within : int -> int -> timeout_ns:int -> string
(** Like {!recv_exactly} with a deadline [timeout_ns] from now: polls for
    readability before each read and returns what arrived so far (short on
    timeout or EOF) instead of blocking indefinitely on a wedged peer. *)

(** {1 epoll} *)

val epoll_create : unit -> int
val epoll_add : int -> int -> events:Syscall.poll_events -> user_data:int64 -> unit
val epoll_del : int -> int -> unit

val epoll_wait :
  ?timeout_ns:int -> int -> max_events:int -> (int64 * Syscall.poll_events) list

val set_nonblocking : int -> bool -> unit

(** {1 Signals} *)

val sigaction : int -> Syscall.sig_action -> unit
val alarm : int -> int
val exit_group : int -> unit

val take_pending_signals : unit -> int list
(** Handler ids the kernel queued for this thread since the last call. *)
