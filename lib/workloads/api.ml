(* Convenience layer for writing simulated programs: thin typed wrappers
   around the syscall effect, with EINTR retry and result unwrapping.

   Programs written against this API look like ordinary POSIX code; the
   MVEE underneath is invisible to them, which is the transparency property
   the monitors must preserve. *)

open Remon_kernel
open Remon_sim

exception Sys_error of Errno.t * string

let fail name e = raise (Sys_error (e, name))

let rec retrying name call =
  match Sched.syscall call with
  | Syscall.Error Errno.EINTR -> retrying name call
  | r -> r

let int_of name r =
  match (r : Syscall.result) with
  | Syscall.Ok_int n -> n
  | Syscall.Error e -> fail name e
  | _ -> fail name Errno.EINVAL

let unit_of name r =
  match (r : Syscall.result) with
  | Syscall.Ok_unit | Syscall.Ok_int _ -> ()
  | Syscall.Error e -> fail name e
  | _ -> fail name Errno.EINVAL

let data_of name r =
  match (r : Syscall.result) with
  | Syscall.Ok_data s -> s
  | Syscall.Error e -> fail name e
  | _ -> fail name Errno.EINVAL

(* ---- compute ---- *)

let compute ns = Sched.compute (Vtime.ns ns)
let compute_us us = Sched.compute (Vtime.us us)
let now () = Sched.vnow ()

(* ---- files ---- *)

let open_file ?(flags = Syscall.o_rdonly) path =
  int_of "open" (retrying "open" (Syscall.Open (path, flags)))

let create_file path =
  open_file ~flags:{ Syscall.o_rdwr with create = true; trunc = true } path

let close fd = unit_of "close" (retrying "close" (Syscall.Close fd))

let read fd count = data_of "read" (retrying "read" (Syscall.Read (fd, count)))

let write fd data = int_of "write" (retrying "write" (Syscall.Write (fd, data)))

let pread fd count offset =
  data_of "pread" (retrying "pread" (Syscall.Pread64 (fd, count, offset)))

let pwrite fd data offset =
  int_of "pwrite" (retrying "pwrite" (Syscall.Pwrite64 (fd, data, offset)))

let lseek fd pos = int_of "lseek" (retrying "lseek" (Syscall.Lseek (fd, pos, Syscall.Seek_set)))

let stat path =
  match retrying "stat" (Syscall.Stat path) with
  | Syscall.Ok_stat s -> s
  | Syscall.Error e -> fail "stat" e
  | _ -> fail "stat" Errno.EINVAL

let fstat fd =
  match retrying "fstat" (Syscall.Fstat fd) with
  | Syscall.Ok_stat s -> s
  | Syscall.Error e -> fail "fstat" e
  | _ -> fail "fstat" Errno.EINVAL

let fsync fd = unit_of "fsync" (retrying "fsync" (Syscall.Fsync fd))

let unlink path = unit_of "unlink" (retrying "unlink" (Syscall.Unlink path))

(* ---- time / identity ---- *)

let gettimeofday () =
  match retrying "gettimeofday" Syscall.Gettimeofday with
  | Syscall.Ok_int64 t -> t
  | _ -> fail "gettimeofday" Errno.EINVAL

let getpid () = int_of "getpid" (retrying "getpid" Syscall.Getpid)
let sched_yield () = unit_of "sched_yield" (retrying "sched_yield" Syscall.Sched_yield)

let nanosleep ns =
  unit_of "nanosleep" (retrying "nanosleep" (Syscall.Nanosleep (Vtime.ns ns)))

(* ---- pipes ---- *)

let pipe () =
  match retrying "pipe" Syscall.Pipe with
  | Syscall.Ok_pair (r, w) -> (r, w)
  | Syscall.Error e -> fail "pipe" e
  | _ -> fail "pipe" Errno.EINVAL

(* ---- sockets ---- *)

let socket () =
  int_of "socket" (retrying "socket" (Syscall.Socket (Syscall.Af_inet, Syscall.Sock_stream)))

let socketpair () =
  match retrying "socketpair" (Syscall.Socketpair (Syscall.Af_unix, Syscall.Sock_stream)) with
  | Syscall.Ok_pair (a, b) -> (a, b)
  | Syscall.Error e -> fail "socketpair" e
  | _ -> fail "socketpair" Errno.EINVAL

let bind fd port = unit_of "bind" (retrying "bind" (Syscall.Bind (fd, port)))
let listen fd backlog = unit_of "listen" (retrying "listen" (Syscall.Listen (fd, backlog)))

let accept fd =
  match retrying "accept" (Syscall.Accept fd) with
  | Syscall.Ok_accept a -> a
  | Syscall.Error e -> fail "accept" e
  | _ -> fail "accept" Errno.EINVAL

exception Connect_retries_exhausted of { port : int; attempts : int }

(* Blocking connect with retry while the server is not yet listening:
   exponential backoff from [base_backoff_ns], doubling up to the
   [cap_backoff_ns] cap. Exhausting the budget raises
   [Connect_retries_exhausted] — distinguishable from an outright refusal
   ([Sys_error ECONNREFUSED] on a non-transient error). The schedule is
   fully deterministic (no jitter): simulated virtual time already decouples
   concurrent retriers, and determinism is the repo-wide contract. *)
let connect_retry ?(attempts = 50) ?(base_backoff_ns = 200_000)
    ?(cap_backoff_ns = 50_000_000) ?(on_retry = fun (_ : int) -> ()) fd port =
  let rec go ~left ~delay_ns =
    match Sched.syscall (Syscall.Connect (fd, port)) with
    | Syscall.Ok_int _ | Syscall.Ok_unit -> ()
    | Syscall.Error (Errno.ECONNREFUSED | Errno.EINTR) ->
      if left <= 0 then raise (Connect_retries_exhausted { port; attempts })
      else begin
        on_retry (attempts - left + 1);
        nanosleep delay_ns;
        go ~left:(left - 1) ~delay_ns:(min cap_backoff_ns (2 * delay_ns))
      end
    | Syscall.Error e -> fail "connect" e
    | _ -> fail "connect" Errno.EINVAL
  in
  go ~left:attempts ~delay_ns:base_backoff_ns

let send fd data = int_of "send" (retrying "send" (Syscall.Sendto (fd, data)))
let recv fd count = data_of "recv" (retrying "recv" (Syscall.Recvfrom (fd, count)))

(* Reads exactly [n] bytes (or until EOF). *)
let rec read_exactly fd n acc =
  if n <= 0 then acc
  else
    let chunk = read fd n in
    if chunk = "" then acc
    else read_exactly fd (n - String.length chunk) (acc ^ chunk)

let recv_exactly fd n = read_exactly fd n ""

(* Receives up to [n] bytes with a deadline [timeout_ns] from now: polls for
   readability before each read and gives up when the deadline passes.
   Returns what arrived — short on timeout or EOF — so callers treat a short
   string exactly like a truncated connection. *)
let recv_within fd n ~timeout_ns =
  let deadline = Vtime.add (Sched.vnow ()) (Vtime.ns timeout_ns) in
  let rec go acc need =
    if need <= 0 then acc
    else
      let remaining = Vtime.sub deadline (Sched.vnow ()) in
      if Vtime.(remaining <= Vtime.zero) then acc
      else
        match
          retrying "poll"
            (Syscall.Poll
               { fds = [ (fd, Syscall.ev_in) ]; timeout_ns = Some remaining })
        with
        | Syscall.Ok_poll [] -> acc (* deadline passed with nothing readable *)
        | Syscall.Ok_poll _ -> (
          match retrying "recv" (Syscall.Recvfrom (fd, need)) with
          | Syscall.Ok_data "" -> acc
          | Syscall.Ok_data s -> go (acc ^ s) (need - String.length s)
          | Syscall.Error e -> fail "recv" e
          | _ -> fail "recv" Errno.EINVAL)
        | Syscall.Error e -> fail "poll" e
        | _ -> fail "poll" Errno.EINVAL
  in
  go "" n

(* ---- epoll ---- *)

let epoll_create () = int_of "epoll_create" (retrying "epoll_create" Syscall.Epoll_create)

let epoll_add epfd fd ~events ~user_data =
  unit_of "epoll_ctl"
    (retrying "epoll_ctl"
       (Syscall.Epoll_ctl { epfd; op = Syscall.Epoll_add; fd; events; user_data }))

let epoll_del epfd fd =
  unit_of "epoll_ctl(del)"
    (retrying "epoll_ctl"
       (Syscall.Epoll_ctl
          { epfd; op = Syscall.Epoll_del; fd; events = Syscall.ev_none; user_data = 0L }))

let epoll_wait ?timeout_ns epfd ~max_events =
  match retrying "epoll_wait" (Syscall.Epoll_wait { epfd; max_events; timeout_ns }) with
  | Syscall.Ok_epoll evs -> evs
  | Syscall.Error e -> fail "epoll_wait" e
  | _ -> fail "epoll_wait" Errno.EINVAL

let set_nonblocking fd v =
  unit_of "fcntl" (retrying "fcntl" (Syscall.Fcntl (fd, Syscall.F_setfl { nonblock = v })))

(* ---- signals ---- *)

let sigaction sg action =
  unit_of "rt_sigaction" (retrying "rt_sigaction" (Syscall.Rt_sigaction (sg, action)))

let alarm seconds = int_of "alarm" (retrying "alarm" (Syscall.Alarm seconds))

let exit_group code = ignore (Sched.syscall (Syscall.Exit_group code))

(* Handlers queued by the kernel for this thread (ids registered via
   [Sig_handler]); programs poll this after interesting calls. *)
let take_pending_signals () =
  let th = Sched.self () in
  let pending = List.of_seq (Queue.to_seq th.Proc.pending_delivery) in
  Queue.clear th.Proc.pending_delivery;
  pending
