(* Multi-host topologies: the workload layer of sharded (PDES) runs.

   A scenario places one MVEE-monitored server group on each of
   [server_hosts] simulated hosts and a client fleet on one more host; the
   clients reach the servers only through the inter-host links behind the
   per-host gateways. The same scenario can be driven with any shard
   count, and everything the run reports — the outcome digest, the RMRC
   recordings, the trace exports — must be byte-identical across shard
   counts. That invariant is what the determinism corpus (test_pdes and
   the CI pdes-smoke job) checks.

   Determinism notes baked in here:
   - every MVEE group pins its SysV shm key ([config.shm_key]); the
     process-global key counter depends on how many launches preceded
     this one, which is exactly the kind of cross-run state a digest
     must not observe;
   - per-host kernel seeds are derived from the scenario seed and the
     host index, never from global state;
   - the digest contains only virtual-time quantities (no wall clock,
     no Hashtbl iteration order). *)

open Remon_kernel
open Remon_core
open Remon_sim
open Remon_util

type scenario = {
  id : int;
  seed : int;
  server_hosts : int; (* one MVEE server group per host *)
  nreplicas : int;
  backend : Mvee.backend;
  arch : Servers.arch;
  requests_per_server : int;
  concurrency : int; (* client workers per server *)
  requests_per_conn : int; (* 1 = ab-like, >1 = keep-alive *)
  link_latency : Vtime.t;
  faults : string; (* --faults syntax, applied to the host-0 group *)
  record : bool;
}

type server_report = {
  host : int;
  port : int;
  outcome : Mvee.outcome;
  served : int;
  truncated : int;
}

type result = {
  digest : string;
      (* canonical text rendering of every shard-invariant observable *)
  recordings : (int * Recording.t) list; (* per recording server host *)
  traces : (int * string) list; (* per-host structured trace exports *)
  servers : server_report list;
  responses : int;
  transport_errors : int;
  connect_retries : int;
  client_latency : Latency.summary list; (* one per server fleet *)
  rounds : int;
}

let base_port = 7100

let spec_for sc i : Servers.spec =
  Servers.web ~arch:sc.arch ~work_ns:3_000 ~response_bytes:512
    (Printf.sprintf "pdes-srv%d" i)
    (base_port + i)

let render (sc : scenario) =
  Printf.sprintf
    "scenario %d: seed=%d hosts=%d+1 backend=%s nreplicas=%d arch=%s \
     req=%dx%d conn=%d lat=%s faults=%S"
    sc.id sc.seed sc.server_hosts
    (Mvee.backend_to_string sc.backend)
    sc.nreplicas
    (match sc.arch with
    | Servers.Epoll_loop -> "epoll"
    | Servers.Thread_per_conn -> "threads"
    | Servers.Iterative -> "iterative")
    sc.requests_per_server sc.server_hosts sc.concurrency
    (Vtime.to_string sc.link_latency)
    sc.faults

(* ------------------------------------------------------------------ *)
(* Running *)

let digest_outcome buf (r : server_report) =
  let o = r.outcome in
  Printf.bprintf buf
    "host%d port=%d dur=%s verdict=%s exits=%s syscalls=%d monitored=%d \
     fastpath=%d rendezvous=%d rb=%d tokens=%d/%d faults=%d quarantines=%d \
     respawns=%d served=%d truncated=%d rec=%s\n"
    r.host r.port
    (Vtime.to_string o.Mvee.duration)
    (match o.Mvee.verdict with
    | None -> "clean"
    | Some v -> Divergence.to_string v)
    (String.concat ","
       (List.map
          (fun (v, c) -> Printf.sprintf "%d:%d" v c)
          o.Mvee.exit_codes))
    o.Mvee.syscalls o.Mvee.monitored o.Mvee.ipmon_fastpath o.Mvee.rendezvous
    o.Mvee.rb_records o.Mvee.tokens_granted o.Mvee.tokens_rejected
    o.Mvee.faults_injected o.Mvee.quarantines o.Mvee.respawns r.served
    r.truncated
    (match o.Mvee.recording with
    | Some rec_ -> Recording.stream_digest rec_
    | None -> "-")

let run ?(shards = 1) ?(mode = World.Adaptive) ?(with_obs = false)
    (sc : scenario) : result =
  let n = sc.server_hosts + 1 in
  let client_host = sc.server_hosts in
  let world =
    World.create ~link_latency:sc.link_latency ~n
      ~mk:(fun i -> Kernel.create ~seed:(sc.seed + (i * 101)) ())
      ()
  in
  let obs =
    Array.init n (fun i ->
        if with_obs then begin
          let o = Remon_obs.Obs.create () in
          Kernel.set_obs (World.kernel world i) o;
          Some o
        end
        else None)
  in
  let specs = List.init sc.server_hosts (spec_for sc) in
  List.iteri
    (fun i (spec : Servers.spec) ->
      (* only the client host ever initiates connects; declaring that lets
         adaptive lookahead decouple server hosts from each other *)
      World.route world ~port:spec.Servers.port ~host:i
        ~initiators:[ client_host ])
    specs;
  let faults =
    match Fault.of_string sc.faults with
    | Ok p -> p
    | Error e -> invalid_arg ("Topology.run: bad fault plan: " ^ e)
  in
  let launches =
    List.mapi
      (fun i (spec : Servers.spec) ->
        let stats = Servers.make_stats () in
        let config =
          {
            Mvee.default_config with
            Mvee.backend = sc.backend;
            nreplicas = sc.nreplicas;
            seed = sc.seed + i;
            record = sc.record;
            faults = (if i = 0 then faults else Mvee.default_config.Mvee.faults);
            (* pinned: the process-global key counter must not leak into
               recordings (its value depends on prior launches) *)
            shm_key = Some (Context.mvee_shm_key_base + ((i + 1) * 0x40));
          }
        in
        let h =
          Mvee.launch (World.kernel world i) config ~name:spec.Servers.name
            ~body:(Servers.body ~stats spec)
        in
        (i, spec, stats, h))
      specs
  in
  let client_spec =
    {
      Clients.name = "pdes-client";
      concurrency = sc.concurrency;
      total_requests = sc.requests_per_server;
      requests_per_conn = sc.requests_per_conn;
    }
  in
  let measurements =
    List.map
      (fun (spec : Servers.spec) ->
        Clients.launch (World.kernel world client_host) spec client_spec)
      specs
  in
  World.run ~shards ~mode world;
  let reports =
    List.map
      (fun (i, (spec : Servers.spec), (stats : Servers.stats), h) ->
        {
          host = i;
          port = spec.Servers.port;
          outcome = Mvee.finish h;
          served = stats.Servers.served;
          truncated = stats.Servers.truncated;
        })
      launches
  in
  let responses =
    List.fold_left (fun a m -> a + m.Clients.responses) 0 measurements
  in
  let transport_errors =
    List.fold_left (fun a m -> a + m.Clients.transport_errors) 0 measurements
  in
  let connect_retries =
    List.fold_left (fun a m -> a + m.Clients.connect_retries) 0 measurements
  in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "%s\n" (render sc);
  List.iter (digest_outcome buf) reports;
  List.iteri
    (fun i (m : Clients.measurement) ->
      Printf.bprintf buf
        "client%d responses=%d errors=%d retries=%d dur=%s latency=[%s]\n" i
        m.Clients.responses m.Clients.transport_errors
        m.Clients.connect_retries
        (Vtime.to_string (Clients.duration m))
        (Latency.summary_to_string (Latency.summary m.Clients.latency)))
    measurements;
  List.iter
    (fun (src, dst, msgs, bytes) ->
      Printf.bprintf buf "link %d->%d msgs=%d bytes=%d\n" src dst msgs bytes)
    (World.link_stats world);
  List.iteri
    (fun i _ ->
      let opened, refused, resets = Hostnet.stats (World.hostnet world i) in
      Printf.bprintf buf "gw%d opened=%d refused=%d resets=%d\n" i opened
        refused resets)
    (Array.to_list (Array.make n ()));
  (* the round count is a synchronizer diagnostic, not an observable: it
     depends on the lookahead mode, so it must stay out of the digest *)
  {
    digest = Buffer.contents buf;
    recordings =
      List.filter_map
        (fun r ->
          match r.outcome.Mvee.recording with
          | Some rec_ -> Some (r.host, rec_)
          | None -> None)
        reports;
    traces =
      List.filter_map
        (fun i ->
          match obs.(i) with
          | Some o -> Some (i, Remon_obs.Obs.export_string o)
          | None -> None)
        (List.init n Fun.id);
    servers = reports;
    responses;
    transport_errors;
    connect_retries;
    client_latency =
      List.map (fun m -> Latency.summary m.Clients.latency) measurements;
    rounds = World.rounds world;
  }

(* ------------------------------------------------------------------ *)
(* The determinism corpus: seeded scenarios spanning backends, server
   architectures, replica counts, link latencies, keep-alive vs one-shot
   clients, and fault chaos. *)

let corpus ~n =
  List.init n (fun id ->
      let rng = Rng.make (Rng.stable_seed "pdes-corpus" id) in
      let backend =
        match Rng.int_in_range rng ~lo:0 ~hi:2 with
        | 0 -> Mvee.Remon
        | 1 -> Mvee.Varan
        | _ -> Mvee.Ghumvee_only
      in
      let arch =
        match Rng.int_in_range rng ~lo:0 ~hi:2 with
        | 0 -> Servers.Epoll_loop
        | 1 -> Servers.Thread_per_conn
        | _ -> Servers.Iterative
      in
      let nreplicas = 2 + Rng.int_in_range rng ~lo:0 ~hi:1 in
      let faults =
        match Rng.int_in_range rng ~lo:0 ~hi:3 with
        | 0 ->
          Printf.sprintf "delay@%d:%d=%dus"
            (Rng.int_in_range rng ~lo:6 ~hi:30)
            (Rng.int_in_range rng ~lo:0 ~hi:(nreplicas - 1))
            (Rng.int_in_range rng ~lo:100 ~hi:2000)
        | 1 ->
          (* slave crash: the group dies under the default policy, the
             clients fail over / exhaust retries — chaos on purpose *)
          Printf.sprintf "crash@%d:%d"
            (Rng.int_in_range rng ~lo:12 ~hi:40)
            (max 1 (nreplicas - 1))
        | _ -> ""
      in
      {
        id;
        seed = 0x9DE5 + (id * 7919);
        server_hosts = 2 + Rng.int_in_range rng ~lo:0 ~hi:2;
        nreplicas;
        backend;
        arch;
        requests_per_server = 12 + (4 * Rng.int_in_range rng ~lo:0 ~hi:5);
        concurrency = 2 + Rng.int_in_range rng ~lo:0 ~hi:2;
        requests_per_conn =
          (if Rng.int_in_range rng ~lo:0 ~hi:1 = 0 then 1 else 4);
        link_latency = Vtime.us (150 + (50 * Rng.int_in_range rng ~lo:0 ~hi:5));
        faults;
        record = true;
      })

(* ------------------------------------------------------------------ *)
(* The herd tier: many tiny echo cells for memory/scaling runs.

   A herd is [cells] independent (server host, client host) pairs; the
   client opens [conns_per_cell] connections in one non-blocking burst,
   then drives [rounds_per_conn] closed-loop echo rounds over all of
   them. The bodies are deliberately epoll-free single fibers with
   blocking round-robin I/O: a parked thread's retry is O(1), so the
   whole herd costs O(events) regardless of connection count — the shape
   that lets the shard runner reach ~10^6 simulated connections.

   Cells never talk to each other, and [World.route ~initiators] tells
   the synchronizer so: under adaptive lookahead each cell advances at
   its own pace instead of lock-stepping the whole world one link
   latency at a time. The digest is a counter rendering plus a per-cell
   hash — O(1) size at any scale, and mode/shard invariant (no round
   counts, no wall clock, no iteration order). *)

type herd = {
  h_seed : int;
  cells : int;
  conns_per_cell : int;
  rounds_per_conn : int;
  payload : int;
  think_ns : int; (* whole-cell idle time between echo rounds *)
  stagger_ns : int; (* per-cell start offset: cells are phase-shifted *)
  h_link_latency : Vtime.t;
}

type cell_stats = {
  mutable accepted : int;
  mutable served : int;
  mutable closed : int;
  mutable responses : int;
  mutable connect_errors : int;
  mutable transport_errors : int;
}

type herd_result = {
  hr_digest : string;
  hr_connections : int;
  hr_responses : int;
  hr_served : int;
  hr_errors : int;
  hr_rounds : int;
  hr_events : int;
}

let herd_port cell = 10_000 + cell

let render_herd (h : herd) =
  Printf.sprintf
    "herd: seed=%d cells=%d conns/cell=%d rounds=%d payload=%d think=%s \
     stagger=%s lat=%s"
    h.h_seed h.cells h.conns_per_cell h.rounds_per_conn h.payload
    (Vtime.to_string (Vtime.ns h.think_ns))
    (Vtime.to_string (Vtime.ns h.stagger_ns))
    (Vtime.to_string h.h_link_latency)

let send_all fd data =
  let len = String.length data in
  let rec go off =
    if off < len then begin
      let n = Api.send fd (String.sub data off (len - off)) in
      if n <= 0 then raise (Api.Sys_error (Errno.EPIPE, "send"))
      else go (off + n)
    end
  in
  go 0

(* Single-fiber iterative echo server: accept everything, then serve the
   rounds in connection order. The blocking round-robin order is safe
   because the client is closed-loop in the same order, and it keeps every
   park O(1) to retry. *)
let herd_server ~(h : herd) ~port ~(st : cell_stats) () =
  let lfd = Api.socket () in
  Api.bind lfd port;
  Api.listen lfd h.conns_per_cell;
  let fds =
    Array.init h.conns_per_cell (fun _ ->
        let a = Api.accept lfd in
        st.accepted <- st.accepted + 1;
        a.Syscall.conn_fd)
  in
  for _round = 1 to h.rounds_per_conn do
    Array.iter
      (fun fd ->
        try
          let req = Api.recv_exactly fd h.payload in
          if String.length req = h.payload then begin
            send_all fd req;
            st.served <- st.served + 1
          end
        with Api.Sys_error _ ->
          st.transport_errors <- st.transport_errors + 1)
      fds
  done;
  Array.iter
    (fun fd ->
      (try if Api.recv fd 1 = "" then st.closed <- st.closed + 1
       with Api.Sys_error _ -> st.transport_errors <- st.transport_errors + 1);
      Api.close fd)
    fds;
  Api.close lfd;
  Api.exit_group 0

(* The client opens its whole burst with non-blocking connects; every SYN
   is answered (accepted into the backlog or refused) exactly two link
   latencies after it was sent, so one sleep resolves them all without a
   single poll — no O(interest-list) scans during the storm. *)
let herd_client ~(h : herd) ~cell ~port ~(st : cell_stats) () =
  Api.nanosleep ((cell + 1) * h.stagger_ns);
  let fds =
    Array.init h.conns_per_cell (fun _ ->
        let fd = Api.socket () in
        Api.set_nonblocking fd true;
        (match Api.retrying "connect" (Syscall.Connect (fd, port)) with
        | Syscall.Ok_int _ | Syscall.Ok_unit -> ()
        | Syscall.Error Errno.EINPROGRESS -> ()
        | _ -> st.connect_errors <- st.connect_errors + 1);
        fd)
  in
  Api.nanosleep (3 * Vtime.to_int_ns h.h_link_latency);
  Array.iter (fun fd -> Api.set_nonblocking fd false) fds;
  let req = String.make h.payload 'q' in
  for _round = 1 to h.rounds_per_conn do
    Array.iter
      (fun fd ->
        try send_all fd req
        with Api.Sys_error _ ->
          st.transport_errors <- st.transport_errors + 1)
      fds;
    Array.iter
      (fun fd ->
        try
          if String.length (Api.recv_exactly fd h.payload) = h.payload then
            st.responses <- st.responses + 1
          else st.transport_errors <- st.transport_errors + 1
        with Api.Sys_error _ ->
          st.transport_errors <- st.transport_errors + 1)
      fds;
    Api.nanosleep h.think_ns
  done;
  Array.iter (fun fd -> try Api.close fd with Api.Sys_error _ -> ()) fds;
  Api.exit_group 0

(* 63-bit FNV-style fold over the per-cell counters: catches any per-cell
   divergence while keeping the digest O(1) at a million connections. *)
let cell_hash stats =
  let mix h v = (h * 0x100000001B3) + v + 1 in
  Array.fold_left
    (fun h st ->
      let h = mix h st.accepted in
      let h = mix h st.served in
      let h = mix h st.closed in
      let h = mix h st.responses in
      let h = mix h st.connect_errors in
      mix h st.transport_errors)
    0x1099511628211 stats
  land max_int

let run_herd ?(shards = 1) ?(mode = World.Adaptive) (h : herd) : herd_result =
  if h.cells <= 0 then invalid_arg "Topology.run_herd: cells must be positive";
  let n = 2 * h.cells in
  let world =
    World.create ~link_latency:h.h_link_latency ~n
      ~mk:(fun i -> Kernel.create ~seed:(h.h_seed + (i * 101)) ())
      ()
  in
  let stats =
    Array.init h.cells (fun _ ->
        {
          accepted = 0;
          served = 0;
          closed = 0;
          responses = 0;
          connect_errors = 0;
          transport_errors = 0;
        })
  in
  for c = 0 to h.cells - 1 do
    let server_host = 2 * c and client_host = (2 * c) + 1 in
    let port = herd_port c in
    World.route world ~port ~host:server_host ~initiators:[ client_host ];
    let st = stats.(c) in
    ignore
      (Kernel.spawn_process
         (World.kernel world server_host)
         ~name:(Printf.sprintf "herd-srv%d" c)
         ~vm_seed:(h.h_seed + (c * 13))
         (herd_server ~h ~port ~st)
        : Proc.process);
    ignore
      (Kernel.spawn_process
         (World.kernel world client_host)
         ~name:(Printf.sprintf "herd-cli%d" c)
         ~vm_seed:(h.h_seed + (c * 13) + 7)
         (herd_client ~h ~cell:c ~port ~st)
        : Proc.process)
  done;
  World.run ~shards ~mode world;
  let total f = Array.fold_left (fun a st -> a + f st) 0 stats in
  let opened = ref 0 and refused = ref 0 and resets = ref 0 in
  for i = 0 to n - 1 do
    let o, rf, rs = Hostnet.stats (World.hostnet world i) in
    opened := !opened + o;
    refused := !refused + rf;
    resets := !resets + rs
  done;
  let link_msgs = ref 0 and link_bytes = ref 0 in
  List.iter
    (fun (_, _, msgs, bytes) ->
      link_msgs := !link_msgs + msgs;
      link_bytes := !link_bytes + bytes)
    (World.link_stats world);
  let events = ref 0 in
  for i = 0 to n - 1 do
    events :=
      !events + (Kernel.sched (World.kernel world i)).Sched.events_processed
  done;
  let buf = Buffer.create 512 in
  Printf.bprintf buf "%s\n" (render_herd h);
  Printf.bprintf buf
    "connections=%d accepted=%d served=%d responses=%d closed=%d \
     conn_errors=%d transport_errors=%d\n"
    (h.cells * h.conns_per_cell)
    (total (fun st -> st.accepted))
    (total (fun st -> st.served))
    (total (fun st -> st.responses))
    (total (fun st -> st.closed))
    (total (fun st -> st.connect_errors))
    (total (fun st -> st.transport_errors))
  ;
  Printf.bprintf buf "gw opened=%d refused=%d resets=%d\n" !opened !refused
    !resets;
  Printf.bprintf buf "links msgs=%d bytes=%d\n" !link_msgs !link_bytes;
  Printf.bprintf buf "cellhash=%016x\n" (cell_hash stats);
  {
    hr_digest = Buffer.contents buf;
    hr_connections = h.cells * h.conns_per_cell;
    hr_responses = total (fun st -> st.responses);
    hr_served = total (fun st -> st.served);
    hr_errors =
      total (fun st -> st.connect_errors + st.transport_errors);
    hr_rounds = World.rounds world;
    hr_events = !events;
  }

(* Shapes a total connection budget into (cells, conns_per_cell): cells
   grow first (more hosts exercises the synchronizer), then connections
   per cell grow once the host count would get silly. *)
let herd_of_connections ?(think_ns = 5_000_000) ?(rounds_per_conn = 1)
    ~seed connections =
  if connections <= 0 then
    invalid_arg "Topology.herd_of_connections: connections must be positive";
  let cells = max 1 (min 1000 (connections / 40)) in
  let conns_per_cell = max 1 ((connections + cells - 1) / cells) in
  {
    h_seed = seed;
    cells;
    conns_per_cell;
    rounds_per_conn;
    payload = 64;
    think_ns;
    stagger_ns = 500_000;
    h_link_latency = Vtime.us 200;
  }

(* Structural memory probe for the flat connection state: bytes of live
   heap per connected stream pair in a fresh kernel. Reported to stderr /
   bench JSON only — wall-clock and GC numbers must never reach a digest
   or stdout. *)
let stream_pair_cost_bytes ?(n = 10_000) () =
  let k = Kernel.create ~seed:1 () in
  let net = Kernel.net k in
  Gc.full_major ();
  let live0 = (Gc.stat ()).Gc.live_words in
  let keep =
    Array.init n (fun i ->
        Net.make_pair net ~client_port:(40_000 + i) ~server_port:80)
  in
  Gc.full_major ();
  let live1 = (Gc.stat ()).Gc.live_words in
  ignore (Sys.opaque_identity keep);
  (live1 - live0) * (Sys.word_size / 8) / n
