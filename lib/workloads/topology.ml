(* Multi-host topologies: the workload layer of sharded (PDES) runs.

   A scenario places one MVEE-monitored server group on each of
   [server_hosts] simulated hosts and a client fleet on one more host; the
   clients reach the servers only through the inter-host links behind the
   per-host gateways. The same scenario can be driven with any shard
   count, and everything the run reports — the outcome digest, the RMRC
   recordings, the trace exports — must be byte-identical across shard
   counts. That invariant is what the determinism corpus (test_pdes and
   the CI pdes-smoke job) checks.

   Determinism notes baked in here:
   - every MVEE group pins its SysV shm key ([config.shm_key]); the
     process-global key counter depends on how many launches preceded
     this one, which is exactly the kind of cross-run state a digest
     must not observe;
   - per-host kernel seeds are derived from the scenario seed and the
     host index, never from global state;
   - the digest contains only virtual-time quantities (no wall clock,
     no Hashtbl iteration order). *)

open Remon_kernel
open Remon_core
open Remon_sim
open Remon_util

type scenario = {
  id : int;
  seed : int;
  server_hosts : int; (* one MVEE server group per host *)
  nreplicas : int;
  backend : Mvee.backend;
  arch : Servers.arch;
  requests_per_server : int;
  concurrency : int; (* client workers per server *)
  requests_per_conn : int; (* 1 = ab-like, >1 = keep-alive *)
  link_latency : Vtime.t;
  faults : string; (* --faults syntax, applied to the host-0 group *)
  record : bool;
}

type server_report = {
  host : int;
  port : int;
  outcome : Mvee.outcome;
  served : int;
  truncated : int;
}

type result = {
  digest : string;
      (* canonical text rendering of every shard-invariant observable *)
  recordings : (int * Recording.t) list; (* per recording server host *)
  traces : (int * string) list; (* per-host structured trace exports *)
  servers : server_report list;
  responses : int;
  transport_errors : int;
  connect_retries : int;
  client_latency : Latency.summary list; (* one per server fleet *)
  rounds : int;
}

let base_port = 7100

let spec_for sc i : Servers.spec =
  Servers.web ~arch:sc.arch ~work_ns:3_000 ~response_bytes:512
    (Printf.sprintf "pdes-srv%d" i)
    (base_port + i)

let render (sc : scenario) =
  Printf.sprintf
    "scenario %d: seed=%d hosts=%d+1 backend=%s nreplicas=%d arch=%s \
     req=%dx%d conn=%d lat=%s faults=%S"
    sc.id sc.seed sc.server_hosts
    (Mvee.backend_to_string sc.backend)
    sc.nreplicas
    (match sc.arch with
    | Servers.Epoll_loop -> "epoll"
    | Servers.Thread_per_conn -> "threads"
    | Servers.Iterative -> "iterative")
    sc.requests_per_server sc.server_hosts sc.concurrency
    (Vtime.to_string sc.link_latency)
    sc.faults

(* ------------------------------------------------------------------ *)
(* Running *)

let digest_outcome buf (r : server_report) =
  let o = r.outcome in
  Printf.bprintf buf
    "host%d port=%d dur=%s verdict=%s exits=%s syscalls=%d monitored=%d \
     fastpath=%d rendezvous=%d rb=%d tokens=%d/%d faults=%d quarantines=%d \
     respawns=%d served=%d truncated=%d rec=%s\n"
    r.host r.port
    (Vtime.to_string o.Mvee.duration)
    (match o.Mvee.verdict with
    | None -> "clean"
    | Some v -> Divergence.to_string v)
    (String.concat ","
       (List.map
          (fun (v, c) -> Printf.sprintf "%d:%d" v c)
          o.Mvee.exit_codes))
    o.Mvee.syscalls o.Mvee.monitored o.Mvee.ipmon_fastpath o.Mvee.rendezvous
    o.Mvee.rb_records o.Mvee.tokens_granted o.Mvee.tokens_rejected
    o.Mvee.faults_injected o.Mvee.quarantines o.Mvee.respawns r.served
    r.truncated
    (match o.Mvee.recording with
    | Some rec_ -> Recording.stream_digest rec_
    | None -> "-")

let run ?(shards = 1) ?(with_obs = false) (sc : scenario) : result =
  let n = sc.server_hosts + 1 in
  let client_host = sc.server_hosts in
  let world =
    World.create ~link_latency:sc.link_latency ~n
      ~mk:(fun i -> Kernel.create ~seed:(sc.seed + (i * 101)) ())
      ()
  in
  let obs =
    Array.init n (fun i ->
        if with_obs then begin
          let o = Remon_obs.Obs.create () in
          Kernel.set_obs (World.kernel world i) o;
          Some o
        end
        else None)
  in
  let specs = List.init sc.server_hosts (spec_for sc) in
  List.iteri
    (fun i (spec : Servers.spec) ->
      World.route world ~port:spec.Servers.port ~host:i)
    specs;
  let faults =
    match Fault.of_string sc.faults with
    | Ok p -> p
    | Error e -> invalid_arg ("Topology.run: bad fault plan: " ^ e)
  in
  let launches =
    List.mapi
      (fun i (spec : Servers.spec) ->
        let stats = Servers.make_stats () in
        let config =
          {
            Mvee.default_config with
            Mvee.backend = sc.backend;
            nreplicas = sc.nreplicas;
            seed = sc.seed + i;
            record = sc.record;
            faults = (if i = 0 then faults else Mvee.default_config.Mvee.faults);
            (* pinned: the process-global key counter must not leak into
               recordings (its value depends on prior launches) *)
            shm_key = Some (Context.mvee_shm_key_base + ((i + 1) * 0x40));
          }
        in
        let h =
          Mvee.launch (World.kernel world i) config ~name:spec.Servers.name
            ~body:(Servers.body ~stats spec)
        in
        (i, spec, stats, h))
      specs
  in
  let client_spec =
    {
      Clients.name = "pdes-client";
      concurrency = sc.concurrency;
      total_requests = sc.requests_per_server;
      requests_per_conn = sc.requests_per_conn;
    }
  in
  let measurements =
    List.map
      (fun (spec : Servers.spec) ->
        Clients.launch (World.kernel world client_host) spec client_spec)
      specs
  in
  World.run ~shards world;
  let reports =
    List.map
      (fun (i, (spec : Servers.spec), (stats : Servers.stats), h) ->
        {
          host = i;
          port = spec.Servers.port;
          outcome = Mvee.finish h;
          served = stats.Servers.served;
          truncated = stats.Servers.truncated;
        })
      launches
  in
  let responses =
    List.fold_left (fun a m -> a + m.Clients.responses) 0 measurements
  in
  let transport_errors =
    List.fold_left (fun a m -> a + m.Clients.transport_errors) 0 measurements
  in
  let connect_retries =
    List.fold_left (fun a m -> a + m.Clients.connect_retries) 0 measurements
  in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "%s\n" (render sc);
  List.iter (digest_outcome buf) reports;
  List.iteri
    (fun i (m : Clients.measurement) ->
      Printf.bprintf buf
        "client%d responses=%d errors=%d retries=%d dur=%s latency=[%s]\n" i
        m.Clients.responses m.Clients.transport_errors
        m.Clients.connect_retries
        (Vtime.to_string (Clients.duration m))
        (Latency.summary_to_string (Latency.summary m.Clients.latency)))
    measurements;
  List.iter
    (fun (src, dst, msgs, bytes) ->
      Printf.bprintf buf "link %d->%d msgs=%d bytes=%d\n" src dst msgs bytes)
    (World.link_stats world);
  List.iteri
    (fun i _ ->
      let opened, refused, resets = Hostnet.stats (World.hostnet world i) in
      Printf.bprintf buf "gw%d opened=%d refused=%d resets=%d\n" i opened
        refused resets)
    (Array.to_list (Array.make n ()));
  Printf.bprintf buf "rounds=%d\n" (World.rounds world);
  {
    digest = Buffer.contents buf;
    recordings =
      List.filter_map
        (fun r ->
          match r.outcome.Mvee.recording with
          | Some rec_ -> Some (r.host, rec_)
          | None -> None)
        reports;
    traces =
      List.filter_map
        (fun i ->
          match obs.(i) with
          | Some o -> Some (i, Remon_obs.Obs.export_string o)
          | None -> None)
        (List.init n Fun.id);
    servers = reports;
    responses;
    transport_errors;
    connect_retries;
    client_latency =
      List.map (fun m -> Latency.summary m.Clients.latency) measurements;
    rounds = World.rounds world;
  }

(* ------------------------------------------------------------------ *)
(* The determinism corpus: seeded scenarios spanning backends, server
   architectures, replica counts, link latencies, keep-alive vs one-shot
   clients, and fault chaos. *)

let corpus ~n =
  List.init n (fun id ->
      let rng = Rng.make (Rng.stable_seed "pdes-corpus" id) in
      let backend =
        match Rng.int_in_range rng ~lo:0 ~hi:2 with
        | 0 -> Mvee.Remon
        | 1 -> Mvee.Varan
        | _ -> Mvee.Ghumvee_only
      in
      let arch =
        match Rng.int_in_range rng ~lo:0 ~hi:2 with
        | 0 -> Servers.Epoll_loop
        | 1 -> Servers.Thread_per_conn
        | _ -> Servers.Iterative
      in
      let nreplicas = 2 + Rng.int_in_range rng ~lo:0 ~hi:1 in
      let faults =
        match Rng.int_in_range rng ~lo:0 ~hi:3 with
        | 0 ->
          Printf.sprintf "delay@%d:%d=%dus"
            (Rng.int_in_range rng ~lo:6 ~hi:30)
            (Rng.int_in_range rng ~lo:0 ~hi:(nreplicas - 1))
            (Rng.int_in_range rng ~lo:100 ~hi:2000)
        | 1 ->
          (* slave crash: the group dies under the default policy, the
             clients fail over / exhaust retries — chaos on purpose *)
          Printf.sprintf "crash@%d:%d"
            (Rng.int_in_range rng ~lo:12 ~hi:40)
            (max 1 (nreplicas - 1))
        | _ -> ""
      in
      {
        id;
        seed = 0x9DE5 + (id * 7919);
        server_hosts = 2 + Rng.int_in_range rng ~lo:0 ~hi:2;
        nreplicas;
        backend;
        arch;
        requests_per_server = 12 + (4 * Rng.int_in_range rng ~lo:0 ~hi:5);
        concurrency = 2 + Rng.int_in_range rng ~lo:0 ~hi:2;
        requests_per_conn =
          (if Rng.int_in_range rng ~lo:0 ~hi:1 = 0 then 1 else 4);
        link_latency = Vtime.us (150 + (50 * Rng.int_in_range rng ~lo:0 ~hi:5));
        faults;
        record = true;
      })
