(** Orchestration: runs workloads under MVEE configurations in fresh
    kernels and reports virtual-time durations and overheads. *)

open Remon_core
open Remon_sim

exception Mvee_terminated of Divergence.t
(** Raised when a run that should have been benign was killed. *)

type run_result = { duration : Vtime.t; outcome : Mvee.outcome }

val trace_dir : string option ref
(** When set (the bench harness's [--trace DIR] flag), every run dumps its
    structured trace into the directory as
    [NAME-BACKEND-nN-seedS.json] (atomic tmp+rename publish). *)

val last_outcome : Mvee.outcome option ref
(** The most recent run's outcome, stashed before the verdict check so a
    caller that catches {!Mvee_terminated} can still reach
    [outcome.recording] — the reproducer of the failure that raised.
    Single-run callers only (not [Pool.map] sweeps). *)

val run_body :
  ?cost:Cost_model.t ->
  ?net_latency:Vtime.t ->
  ?check_verdict:bool ->
  ?obs:Remon_obs.Obs.t ->
  Mvee.config ->
  name:string ->
  body:(Mvee.env -> unit) ->
  run_result
(** [?obs] installs a structured trace/metrics sink into the fresh kernel
    before launch; export it afterwards with {!Remon_obs.Obs.export_string}.
    Identical seeds yield byte-identical exports. *)

val run_profile :
  ?cost:Cost_model.t -> ?obs:Remon_obs.Obs.t -> Profile.t -> Mvee.config ->
  run_result

val normalized_time : ?cost:Cost_model.t -> Profile.t -> Mvee.config -> float
(** MVEE duration / native duration: the y-axis of Figures 3 and 4. *)

(** {1 Standard configurations} *)

val cfg_ghumvee : ?nreplicas:int -> ?seed:int -> unit -> Mvee.config
(** GHUMVEE standalone, monitor-everything: the "no IP-MON" bars. *)

val cfg_remon : ?nreplicas:int -> ?seed:int -> Classification.level -> Mvee.config
val cfg_varan : ?nreplicas:int -> ?seed:int -> unit -> Mvee.config
val cfg_native : ?seed:int -> unit -> Mvee.config

(** {1 Server benchmarks (Figure 5 / Table 2)} *)

type server_run = {
  client_duration : Vtime.t; (** client-observed wall time *)
  responses : int;
  latency : Latency.summary; (** per-request client-observed latency *)
  transport_errors : int; (** client-side short reads *)
  truncated_requests : int; (** server-side partial requests *)
  server_outcome : Mvee.outcome;
}

val run_server_bench :
  ?latency:Vtime.t ->
  ?sock_buf:int ->
  ?obs:Remon_obs.Obs.t ->
  ?check_responses:bool ->
  server:Servers.spec ->
  client:Clients.spec ->
  Mvee.config ->
  server_run
(** Launches the (replicated) server and the client fleet over a link of
    the given latency; fails if any request goes unanswered (unless
    [~check_responses:false], for saturation sweeps where refused
    connections are part of the measurement). [?sock_buf] sets the
    kernel's default socket buffer cap. *)

val server_overhead :
  ?latency:Vtime.t ->
  server:Servers.spec ->
  client:Clients.spec ->
  Mvee.config ->
  float
(** Client-observed overhead vs. a native run: Figure 5's y-axis. *)
