(* Orchestration: runs workloads under MVEE configurations in fresh kernels
   and reports virtual-time durations and overheads. *)

open Remon_kernel
open Remon_core
open Remon_sim

exception Mvee_terminated of Divergence.t

type run_result = {
  duration : Vtime.t;
  outcome : Mvee.outcome;
}

(* When set (the bench harness's --trace DIR flag), every run dumps its
   structured trace into the directory, one file per run, named from the
   run's identity. Identical identities are identical runs, so concurrent
   sweep domains re-writing a name produce byte-identical content. *)
let trace_dir : string option ref = ref None

(* The most recent run's outcome, stashed before the verdict check so a
   caller that catches [Mvee_terminated] can still reach the outcome —
   in particular [outcome.recording], which IS the reproducer of the very
   failure that raised. Domain-local discipline: only meaningful for
   single-run callers (the CLI), not for Pool.map sweeps. *)
let last_outcome : Mvee.outcome option ref = ref None

let dump_trace ~dir ~name (config : Mvee.config) o =
  let sanitized =
    String.map (fun c -> if c = '/' || c = ' ' then '_' else c) name
  in
  let path =
    Filename.concat dir
      (Printf.sprintf "%s-%s-n%d-seed%d.json" sanitized
         (Mvee.backend_to_string config.Mvee.backend)
         config.Mvee.nreplicas config.Mvee.seed)
  in
  (* atomic publish; the tmp name carries the domain id so concurrent
     writers of the same path never interleave into one tmp file *)
  let tmp = Printf.sprintf "%s.%d.tmp" path (Domain.self () :> int) in
  let oc = open_out_bin tmp in
  output_string oc (Remon_obs.Obs.export_string o);
  close_out oc;
  Sys.rename tmp path

let run_body ?cost ?(net_latency = Vtime.us 50) ?(check_verdict = true) ?obs
    (config : Mvee.config) ~name ~(body : Mvee.env -> unit) : run_result =
  let obs =
    match (obs, !trace_dir) with
    | None, Some _ -> Some (Remon_obs.Obs.create ())
    | _ -> obs
  in
  let kernel = Kernel.create ?cost ~seed:config.Mvee.seed ~net_latency () in
  (match obs with Some o -> Kernel.set_obs kernel o | None -> ());
  let h = Mvee.launch kernel config ~name ~body in
  Kernel.run kernel;
  let outcome = Mvee.finish h in
  last_outcome := Some outcome;
  (match (obs, !trace_dir) with
  | Some o, Some dir -> dump_trace ~dir ~name config o
  | _ -> ());
  (match outcome.Mvee.verdict with
  | Some v when check_verdict -> raise (Mvee_terminated v)
  | _ -> ());
  { duration = outcome.Mvee.duration; outcome }

let run_profile ?cost ?obs (profile : Profile.t) (config : Mvee.config) :
    run_result =
  run_body ?cost ?obs config ~name:profile.Profile.name
    ~body:(Profile.body profile)

(* Normalized execution time of [config] vs. a native run of the same
   profile — the y-axis of Figures 3 and 4. *)
let normalized_time ?cost (profile : Profile.t) (config : Mvee.config) : float =
  let native =
    run_profile ?cost profile { config with Mvee.backend = Mvee.Native }
  in
  let under = run_profile ?cost profile config in
  Vtime.to_float_ns under.duration /. Vtime.to_float_ns native.duration

(* Standard configurations used throughout the evaluation. *)
let cfg_ghumvee ?(nreplicas = 2) ?(seed = 42) () =
  {
    Mvee.default_config with
    Mvee.backend = Mvee.Ghumvee_only;
    nreplicas;
    seed;
    policy = Policy.monitor_everything;
  }

let cfg_remon ?(nreplicas = 2) ?(seed = 42) level =
  {
    Mvee.default_config with
    Mvee.backend = Mvee.Remon;
    nreplicas;
    seed;
    policy = Policy.spatial level;
  }

let cfg_varan ?(nreplicas = 2) ?(seed = 42) () =
  {
    Mvee.default_config with
    Mvee.backend = Mvee.Varan;
    nreplicas;
    seed;
    policy = Policy.spatial Classification.Socket_rw_level;
  }

let cfg_native ?(seed = 42) () =
  { Mvee.default_config with Mvee.backend = Mvee.Native; nreplicas = 1; seed }

(* ------------------------------------------------------------------ *)
(* Server benchmarks (Figure 5 / Table 2) *)

type server_run = {
  client_duration : Vtime.t;
  responses : int;
  latency : Latency.summary; (* per-request client-observed latency *)
  transport_errors : int; (* client-side short reads *)
  truncated_requests : int; (* server-side partial requests *)
  server_outcome : Mvee.outcome;
}

let run_server_bench ?(latency = Vtime.us 100) ?sock_buf ?obs
    ?(check_responses = true) ~(server : Servers.spec)
    ~(client : Clients.spec) (config : Mvee.config) : server_run =
  let obs =
    match (obs, !trace_dir) with
    | None, Some _ -> Some (Remon_obs.Obs.create ())
    | _ -> obs
  in
  let kernel =
    Kernel.create ~seed:config.Mvee.seed ~net_latency:latency ?sock_buf ()
  in
  (match obs with Some o -> Kernel.set_obs kernel o | None -> ());
  let stats = Servers.make_stats () in
  let h =
    Mvee.launch kernel config ~name:server.Servers.name
      ~body:(Servers.body ~stats server)
  in
  let meas = Clients.launch kernel server client in
  Kernel.run kernel;
  let outcome = Mvee.finish h in
  last_outcome := Some outcome;
  (match (obs, !trace_dir) with
  | Some o, Some dir -> dump_trace ~dir ~name:server.Servers.name config o
  | _ -> ());
  (match outcome.Mvee.verdict with
  | Some v -> raise (Mvee_terminated v)
  | None -> ());
  if check_responses && meas.Clients.responses < client.Clients.total_requests
  then
    failwith
      (Printf.sprintf "server bench %s: only %d/%d responses" server.Servers.name
         meas.Clients.responses client.Clients.total_requests);
  {
    client_duration = Clients.duration meas;
    responses = meas.Clients.responses;
    latency = Latency.summary meas.Clients.latency;
    transport_errors = meas.Clients.transport_errors;
    truncated_requests = stats.Servers.truncated;
    server_outcome = outcome;
  }

(* Normalized runtime overhead of the client-observed duration, the y-axis
   of Figure 5. *)
let server_overhead ?latency ~server ~client (config : Mvee.config) : float =
  let native =
    run_server_bench ?latency ~server ~client
      { config with Mvee.backend = Mvee.Native }
  in
  let under = run_server_bench ?latency ~server ~client config in
  Vtime.to_float_ns under.client_duration
  /. Vtime.to_float_ns native.client_duration
  -. 1.0
