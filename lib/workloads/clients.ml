(* Client load generators for the server benchmarks: ab-like (one request
   per connection), wrk-like (keep-alive, many requests per connection),
   and http_load-like (non-keep-alive at higher concurrency).

   Clients are ordinary unreplicated processes on the "other machine": the
   link latency between them and the server is the kernel's network
   latency, set per scenario (0.1 ms / 2 ms / 5 ms as in the paper).

   Each request is timed in virtual time (send start to full response) and
   recorded into the measurement's latency reservoir; responses that come
   back short are transport errors, counted separately rather than
   silently dropped. *)

open Remon_kernel
open Remon_sim

type spec = {
  name : string;
  concurrency : int; (* parallel closed-loop connections *)
  total_requests : int;
  requests_per_conn : int; (* 1 = ab-like; >1 = keep-alive *)
}

let ab ?(concurrency = 8) ?(total_requests = 240) () =
  { name = "ab"; concurrency; total_requests; requests_per_conn = 1 }

let wrk ?(concurrency = 24) ?(total_requests = 720) () =
  { name = "wrk"; concurrency; total_requests; requests_per_conn = 30 }

let http_load ?(concurrency = 16) ?(total_requests = 320) () =
  { name = "http_load"; concurrency; total_requests; requests_per_conn = 1 }

type measurement = {
  mutable started_at : Vtime.t option;
  mutable finished : int; (* client workers done *)
  mutable finished_at : Vtime.t;
  mutable responses : int;
  mutable transport_errors : int; (* short reads / dead connections *)
  mutable connect_retries : int; (* backoff rounds inside connect_retry *)
  latency : Latency.t; (* per-request virtual-time latency *)
}

(* Workers start at the same nominal clock but may be scheduled in any
   order; the measurement start is explicitly the minimum across them. *)
let note_start meas now =
  match meas.started_at with
  | None -> meas.started_at <- Some now
  | Some t0 -> if Vtime.(now < t0) then meas.started_at <- Some now

(* One closed-loop worker: opens connections against [port] and issues its
   share of the requests. A connection dying mid-request (the server was
   killed) costs that request as a transport error; the rest of the share
   fails over to a fresh connection through [connect_retry]. Only when the
   retry schedule itself exhausts do the unserved requests of that
   connection count as failed — so a fleet respawn inside the backoff
   window is invisible except as latency. *)
let worker (server : Servers.spec) spec meas ~obs ~requests () =
  note_start meas (Sched.vnow ());
  let remaining = ref requests in
  while !remaining > 0 do
    let fd = Api.socket () in
    let conn_t0 = Sched.vnow () in
    let in_this_conn = min spec.requests_per_conn !remaining in
    (match
       Api.connect_retry
         ~on_retry:(fun _ -> meas.connect_retries <- meas.connect_retries + 1)
         fd server.Servers.port
     with
    | exception Api.Connect_retries_exhausted _ ->
      (* the port refused past the whole backoff schedule: this
         connection's share fails, and the client-observed cost of the
         schedule lands in the latency reservoir *)
      meas.transport_errors <- meas.transport_errors + in_this_conn;
      let dt = Vtime.sub (Sched.vnow ()) conn_t0 in
      Latency.record meas.latency dt;
      Remon_obs.Obs.observe_ns obs "client.request" dt;
      remaining := !remaining - in_this_conn
    | () ->
      let done_in_conn = ref 0 in
      (try
         for k = 1 to in_this_conn do
           (* the first request of a connection is timed from before the
              connect, so setup (and any failover backoff) is charged to
              the latency a client would actually observe *)
           let t0 = if k = 1 then conn_t0 else Sched.vnow () in
           ignore (Api.send fd (String.make server.Servers.request_bytes 'q'));
           let resp = Api.recv_exactly fd server.Servers.response_bytes in
           incr done_in_conn;
           let dt = Vtime.sub (Sched.vnow ()) t0 in
           if String.length resp = server.Servers.response_bytes then begin
             meas.responses <- meas.responses + 1;
             Latency.record meas.latency dt;
             Remon_obs.Obs.observe_ns obs "client.request" dt
           end
           else meas.transport_errors <- meas.transport_errors + 1
         done
       with Api.Sys_error _ ->
         (* connection died under the in-flight request *)
         incr done_in_conn;
         meas.transport_errors <- meas.transport_errors + 1);
      remaining := !remaining - !done_in_conn);
    Api.close fd
  done;
  meas.finished <- meas.finished + 1;
  meas.finished_at <- Vtime.max meas.finished_at (Sched.vnow ())

(* Spawns the client fleet as separate processes. Returns the measurement
   record, filled in as the simulation runs. *)
let launch (kernel : Kernel.t) (server : Servers.spec) (spec : spec) : measurement =
  let meas =
    {
      started_at = None;
      finished = 0;
      finished_at = Vtime.zero;
      responses = 0;
      transport_errors = 0;
      connect_retries = 0;
      latency = Latency.create ();
    }
  in
  let obs = Kernel.obs kernel in
  let per_worker = spec.total_requests / spec.concurrency in
  for i = 1 to spec.concurrency do
    let requests =
      if i = spec.concurrency then
        spec.total_requests - (per_worker * (spec.concurrency - 1))
      else per_worker
    in
    ignore
      (Kernel.spawn_process kernel
         ~name:(Printf.sprintf "client-%s-%d" spec.name i)
         ~vm_seed:(9000 + i)
         ~start_clock:(Vtime.ms 1) (* give the server time to listen *)
         (worker server spec meas ~obs ~requests))
  done;
  meas

let duration meas =
  match meas.started_at with
  | Some t0 when meas.finished > 0 -> Vtime.sub meas.finished_at t0
  | _ -> Vtime.zero
