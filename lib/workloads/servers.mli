(** Server applications for the Figure 5 / Table 2 experiments: one
    parameterized request/response server covering epoll event loops,
    thread-per-connection, and iterative accept loops. *)

open Remon_core

type arch = Epoll_loop | Thread_per_conn | Iterative

type spec = {
  name : string;
  arch : arch;
  port : int;
  request_bytes : int;
  response_bytes : int;
  work_ns : int; (** application processing per request *)
  touch_file : bool; (** stat+read static content per request *)
}

val web :
  ?arch:arch -> ?work_ns:int -> ?response_bytes:int -> string -> int -> spec

val kv : ?work_ns:int -> ?msg:int -> string -> int -> spec

(** {1 The nine servers of Figure 5} *)

val beanstalkd : spec
val lighttpd_wrk : spec
val memcached : spec
val nginx_wrk : spec
val redis : spec
val apache_ab : spec
val thttpd_ab : spec
val lighttpd_ab : spec
val lighttpd_http_load : spec

(** {1 Server-side statistics} *)

type stats = {
  mutable served : int;
  mutable truncated : int;
      (** requests that died mid-read (a partial request), distinguished
          from a clean peer close; fault-injection runs surface these *)
}

val make_stats : unit -> stats

type serve_result =
  | Served
  | Closed  (** clean close: 0 bytes before the next request *)
  | Truncated  (** connection died mid-request *)

val body : ?stats:stats -> spec -> Mvee.env -> unit
(** The server program (runs forever; clients drive it). With [?stats],
    the master replica counts served/truncated requests into it. *)
