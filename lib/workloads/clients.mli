(** Client load generators: ab-like (one request per connection), wrk-like
    (keep-alive) and http_load-like, running as unreplicated processes on
    the "other machine" across the simulated link. *)

open Remon_kernel
open Remon_sim

type spec = {
  name : string;
  concurrency : int;
  total_requests : int;
  requests_per_conn : int; (** 1 = ab-like; >1 = keep-alive *)
}

val ab : ?concurrency:int -> ?total_requests:int -> unit -> spec
val wrk : ?concurrency:int -> ?total_requests:int -> unit -> spec
val http_load : ?concurrency:int -> ?total_requests:int -> unit -> spec

type measurement = {
  mutable started_at : Vtime.t option;
      (** min start across workers (explicitly minimized) *)
  mutable finished : int;
  mutable finished_at : Vtime.t;
  mutable responses : int;  (** full responses only *)
  mutable transport_errors : int;
      (** short reads, dead connections and exhausted connect budgets,
          counted instead of dropped *)
  mutable connect_retries : int;
      (** backoff rounds spent inside {!Api.connect_retry} (failover) *)
  latency : Latency.t;  (** per-request virtual-time latency reservoir *)
}

val launch : Kernel.t -> Servers.spec -> spec -> measurement
(** Spawns the client fleet; the measurement fills in as the simulation
    runs. *)

val duration : measurement -> Vtime.t
(** First-connect to last-response client-observed wall time. *)
