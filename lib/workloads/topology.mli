(** Multi-host topologies for sharded (PDES) runs.

    A scenario places one MVEE-monitored server group on each of
    [server_hosts] simulated hosts and a client fleet on one extra host;
    clients reach servers only over the inter-host links. The contract that
    the determinism corpus enforces: running the same scenario with any
    shard count yields a byte-identical {!result.digest}, byte-identical
    RMRC recordings, and byte-identical trace exports. *)

open Remon_sim
open Remon_core

type scenario = {
  id : int;
  seed : int;
  server_hosts : int;  (** one MVEE server group per host *)
  nreplicas : int;
  backend : Mvee.backend;
  arch : Servers.arch;
  requests_per_server : int;
  concurrency : int;  (** client workers per server *)
  requests_per_conn : int;  (** 1 = ab-like, >1 = keep-alive *)
  link_latency : Vtime.t;
  faults : string;  (** [--faults] syntax, applied to the host-0 group *)
  record : bool;
}

type server_report = {
  host : int;
  port : int;
  outcome : Mvee.outcome;
  served : int;
  truncated : int;
}

type result = {
  digest : string;
      (** canonical text rendering of every shard-invariant observable *)
  recordings : (int * Recording.t) list;
  traces : (int * string) list;
  servers : server_report list;
  responses : int;
  transport_errors : int;
  connect_retries : int;
  client_latency : Latency.summary list;
  rounds : int;
}

val render : scenario -> string
(** One-line human description of a scenario. *)

val run : ?shards:int -> ?with_obs:bool -> scenario -> result
(** Builds the world, runs it with [shards] (default 1), and collects the
    digest and artifacts. [with_obs] attaches a trace collector to every
    host and fills {!result.traces}; the digest itself never depends on
    [with_obs]. *)

val corpus : n:int -> scenario list
(** [n] seeded scenarios spanning backends, server architectures, replica
    counts, link latencies, keep-alive vs one-shot clients and fault
    chaos. Stable across runs (seeded from {!Remon_util.Rng.stable_seed}). *)
