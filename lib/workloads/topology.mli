(** Multi-host topologies for sharded (PDES) runs.

    A scenario places one MVEE-monitored server group on each of
    [server_hosts] simulated hosts and a client fleet on one extra host;
    clients reach servers only over the inter-host links. The contract that
    the determinism corpus enforces: running the same scenario with any
    shard count yields a byte-identical {!result.digest}, byte-identical
    RMRC recordings, and byte-identical trace exports. *)

open Remon_sim
open Remon_core

type scenario = {
  id : int;
  seed : int;
  server_hosts : int;  (** one MVEE server group per host *)
  nreplicas : int;
  backend : Mvee.backend;
  arch : Servers.arch;
  requests_per_server : int;
  concurrency : int;  (** client workers per server *)
  requests_per_conn : int;  (** 1 = ab-like, >1 = keep-alive *)
  link_latency : Vtime.t;
  faults : string;  (** [--faults] syntax, applied to the host-0 group *)
  record : bool;
}

type server_report = {
  host : int;
  port : int;
  outcome : Mvee.outcome;
  served : int;
  truncated : int;
}

type result = {
  digest : string;
      (** canonical text rendering of every shard-invariant observable *)
  recordings : (int * Recording.t) list;
  traces : (int * string) list;
  servers : server_report list;
  responses : int;
  transport_errors : int;
  connect_retries : int;
  client_latency : Latency.summary list;
  rounds : int;
}

val render : scenario -> string
(** One-line human description of a scenario. *)

val run :
  ?shards:int -> ?mode:World.mode -> ?with_obs:bool -> scenario -> result
(** Builds the world, runs it with [shards] (default 1) and the given
    lookahead [mode] (default {!World.Adaptive}), and collects the digest
    and artifacts. The digest is byte-identical across shard counts and
    lookahead modes. [with_obs] attaches a trace collector to every host
    and fills {!result.traces}; the digest itself never depends on
    [with_obs]. *)

val corpus : n:int -> scenario list
(** [n] seeded scenarios spanning backends, server architectures, replica
    counts, link latencies, keep-alive vs one-shot clients and fault
    chaos. Stable across runs (seeded from {!Remon_util.Rng.stable_seed}). *)

(** {1 The herd tier}

    Many tiny echo cells — a (server host, client host) pair per cell —
    for memory and scaling runs up to ~10^6 simulated connections. Cells
    never talk to each other, which is what lets adaptive lookahead run
    each cell at its own pace. *)

type herd = {
  h_seed : int;
  cells : int;  (** independent (server host, client host) pairs *)
  conns_per_cell : int;
  rounds_per_conn : int;  (** closed-loop echo rounds per connection *)
  payload : int;  (** request/echo size in bytes *)
  think_ns : int;  (** whole-cell idle time between echo rounds *)
  stagger_ns : int;  (** per-cell start offset *)
  h_link_latency : Vtime.t;
}

type herd_result = {
  hr_digest : string;
      (** counters + per-cell hash; O(1) size, shard- and mode-invariant *)
  hr_connections : int;
  hr_responses : int;
  hr_served : int;
  hr_errors : int;
  hr_rounds : int;  (** synchronizer rounds (diagnostic, mode-dependent) *)
  hr_events : int;  (** total scheduler events across all hosts *)
}

val render_herd : herd -> string

val run_herd : ?shards:int -> ?mode:World.mode -> herd -> herd_result
(** Runs the herd to completion; {!herd_result.hr_digest} must be
    byte-identical at any shard count and in either lookahead mode. *)

val herd_of_connections :
  ?think_ns:int -> ?rounds_per_conn:int -> seed:int -> int -> herd
(** Shapes a total connection budget into a herd: cells grow first (up to
    1000, i.e. 2000 hosts), then connections per cell. *)

val stream_pair_cost_bytes : ?n:int -> unit -> int
(** Live-heap bytes per connected stream pair, measured with a GC probe
    over [n] pairs in a fresh kernel. Diagnostic only — never part of a
    digest or of shard-invariant stdout. *)
