(* Server applications for the Figure 5 / Table 2 experiments.

   One parameterized request/response server covers the architectural
   variants the paper benchmarks: epoll event loops (nginx, lighttpd,
   memcached, redis, beanstalkd), thread-per-connection (Apache 1.3), and
   iterative accept loops (thttpd). Requests and responses are fixed-size;
   the per-request [work_ns] models application processing. *)

open Remon_kernel
open Remon_core

type arch =
  | Epoll_loop
  | Thread_per_conn
  | Iterative

type spec = {
  name : string;
  arch : arch;
  port : int;
  request_bytes : int;
  response_bytes : int;
  work_ns : int; (* application processing per request *)
  touch_file : bool; (* static-content servers stat+read a file per request *)
}

let web ?(arch = Epoll_loop) ?(work_ns = 9_000) ?(response_bytes = 4096) name port =
  {
    name;
    arch;
    port;
    request_bytes = 160; (* a minimal HTTP GET *)
    response_bytes;
    work_ns;
    touch_file = true;
  }

let kv ?(work_ns = 2_500) ?(msg = 96) name port =
  {
    name;
    arch = Epoll_loop;
    port;
    request_bytes = msg;
    response_bytes = msg;
    work_ns;
    touch_file = false;
  }

(* The nine server configurations of Figure 5. *)
let beanstalkd = kv "beanstalkd" 11300 ~work_ns:4_000 ~msg:128
let lighttpd_wrk = web "lighttpd(wrk)" 8081 ~work_ns:8_000
let memcached = kv "memcached" 11211 ~work_ns:2_000 ~msg:100
let nginx_wrk = web "nginx(wrk)" 8082 ~work_ns:6_500
let redis = kv "redis" 6379 ~work_ns:1_800 ~msg:64
let apache_ab = web "apache(ab)" 8083 ~arch:Thread_per_conn ~work_ns:16_000 ~response_bytes:8192
let thttpd_ab = web "thttpd(ab)" 8084 ~arch:Iterative ~work_ns:11_000
let lighttpd_ab = web "lighttpd(ab)" 8085 ~work_ns:8_000
let lighttpd_http_load = web "lighttpd(http_load)" 8086 ~work_ns:8_000

(* ------------------------------------------------------------------ *)
(* Server program bodies *)

(* Per-run server statistics. Only the master replica (variant 0) counts,
   so replicated runs report each event once. *)
type stats = { mutable served : int; mutable truncated : int }

let make_stats () = { served = 0; truncated = 0 }

type serve_result =
  | Served
  | Closed (* clean close: 0 bytes before the next request *)
  | Truncated (* connection died mid-request: a partial read *)

let serve_request ?stats spec ~(env : Mvee.env) ~content_fd conn_fd =
  let note f =
    match stats with
    | Some s when env.Mvee.variant = 0 -> f s
    | _ -> ()
  in
  let request = Api.recv_exactly conn_fd spec.request_bytes in
  let got = String.length request in
  if got = 0 then Closed
  else if got < spec.request_bytes then begin
    note (fun s -> s.truncated <- s.truncated + 1);
    Truncated
  end
  else begin
    if spec.touch_file then begin
      ignore (Api.stat "/var/www/index.html");
      ignore (Api.pread content_fd spec.response_bytes 0)
    end;
    Api.compute spec.work_ns;
    match Api.send conn_fd (String.make spec.response_bytes 'r') with
    | exception Api.Sys_error _ ->
      (* client (or proxy) went away mid-response: drop the connection *)
      note (fun s -> s.truncated <- s.truncated + 1);
      Truncated
    | _ ->
      note (fun s -> s.served <- s.served + 1);
      Served
  end

(* Static content fixture: the site file, opened once at startup. *)
let setup_content () =
  let fd =
    Api.open_file ~flags:{ Syscall.o_rdwr with create = true } "/var/www/index.html"
  in
  ignore (Api.pwrite fd (String.make 4096 'c') 0);
  fd

let epoll_server ?stats spec (env : Mvee.env) =
  let content_fd = setup_content () in
  let listener = Api.socket () in
  Api.bind listener spec.port;
  Api.listen listener 128;
  Api.set_nonblocking listener true;
  let epfd = Api.epoll_create () in
  (* user data carries diversified pointers, as real applications do *)
  Api.epoll_add epfd listener ~events:Syscall.ev_in
    ~user_data:(env.Mvee.diversified_ptr 0);
  let rec loop () =
    let events = Api.epoll_wait epfd ~max_events:64 in
    List.iter
      (fun (user_data, _ev) ->
        if Int64.equal user_data (env.Mvee.diversified_ptr 0) then begin
          (* listener ready: accept and register the connection *)
          match Sched.syscall (Syscall.Accept listener) with
          | Syscall.Ok_accept { conn_fd; _ } ->
            Api.epoll_add epfd conn_fd ~events:Syscall.ev_in
              ~user_data:(env.Mvee.diversified_ptr conn_fd)
          | _ -> ()
        end
        else begin
          (* find the fd back from our diversified pointer *)
          let fd = ref (-1) in
          for candidate = 0 to 63 do
            if Int64.equal (env.Mvee.diversified_ptr candidate) user_data then
              fd := candidate
          done;
          if !fd >= 0 then
            match serve_request ?stats spec ~env ~content_fd !fd with
            | Served -> ()
            | Closed | Truncated ->
              Api.epoll_del epfd !fd;
              Api.close !fd
        end)
      events;
    loop ()
  in
  loop ()

let iterative_server ?stats spec (env : Mvee.env) =
  let content_fd = setup_content () in
  let listener = Api.socket () in
  Api.bind listener spec.port;
  Api.listen listener 128;
  let rec loop () =
    let { Syscall.conn_fd; _ } = Api.accept listener in
    let rec serve () =
      if serve_request ?stats spec ~env ~content_fd conn_fd = Served then
        serve ()
    in
    serve ();
    Api.close conn_fd;
    loop ()
  in
  loop ()

let threaded_server ?stats spec (env : Mvee.env) =
  let content_fd = setup_content () in
  let listener = Api.socket () in
  Api.bind listener spec.port;
  Api.listen listener 128;
  let rec loop () =
    let { Syscall.conn_fd; _ } = Api.accept listener in
    ignore
      (env.Mvee.spawn_thread (fun () ->
           let rec serve () =
             if serve_request ?stats spec ~env ~content_fd conn_fd = Served
             then serve ()
           in
           serve ();
           Api.close conn_fd));
    loop ()
  in
  loop ()

(* An error the server loop does not handle (e.g. an injected transient
   error on epoll_ctl or close) kills the process the way abort() would,
   instead of unwinding out of the simulation: the monitor sees an
   abnormal exit and the recovery ladder takes over. *)
let body ?stats spec (env : Mvee.env) =
  try
    (* network servers ignore SIGPIPE and deal with EPIPE per connection,
       as nginx and lighttpd do *)
    Api.sigaction Sigdefs.sigpipe Syscall.Sig_ignore;
    match spec.arch with
    | Epoll_loop -> epoll_server ?stats spec env
    | Iterative -> iterative_server ?stats spec env
    | Thread_per_conn -> threaded_server ?stats spec env
  with Api.Sys_error _ -> Api.exit_group 134
