(* Profile-driven synthetic workloads.

   Each benchmark from the paper's suites is modeled as a *syscall profile*:
   worker-thread count, per-thread syscall density, and a mix of operation
   kinds. The mix controls which spatial exemption level unlocks which
   fraction of the stream — e.g. socket traffic only becomes unmonitored at
   the SOCKET levels, mirroring Figure 4's staircase.

   Determinism across replicas is essential: every random choice (op
   selection, compute jitter) draws from a generator seeded by the profile
   name and thread rank — never by the replica index — so all replicas
   issue identical sequences, as diversified-but-equivalent binaries do. *)

open Remon_kernel
open Remon_core
open Remon_util

type op =
  | Op_gettime (* BASE unconditional *)
  | Op_getpid (* BASE unconditional *)
  | Op_yield (* BASE unconditional *)
  | Op_stat (* NONSOCKET_RO unconditional *)
  | Op_read_file of int (* NONSOCKET_RO conditional (pread) *)
  | Op_write_file of int (* NONSOCKET_RW conditional (pwrite) *)
  | Op_pipe_rw of int (* write+read on a pipe: NONSOCKET_RO/RW *)
  | Op_sock_rw of int (* send+recv on a socketpair: SOCKET_RO/RW *)
  | Op_poll_sock (* poll on a socket: SOCKET_RO *)
  | Op_lock (* user-space lock/unlock: no syscall, exercises the agent *)
  | Op_open_close (* always monitored: fd lifecycle *)

(* Number of syscalls one op issues (for density accounting). *)
let op_calls = function
  | Op_gettime | Op_getpid | Op_yield | Op_stat | Op_read_file _
  | Op_write_file _ | Op_poll_sock ->
    1
  | Op_pipe_rw _ | Op_sock_rw _ | Op_open_close -> 2
  | Op_lock -> 0

type t = {
  name : string;
  threads : int; (* worker threads (the paper ran 4) *)
  density_hz : float; (* syscalls per second per worker thread *)
  total_calls_per_thread : int;
  mix : (float * op) list; (* weight, op *)
  jitter : float; (* relative jitter on compute slices *)
  mem_pressure : float;
      (* relative compute slowdown per co-running replica, modeling the
         cache/memory-bandwidth pressure the paper identifies as the
         residual cost of replication ("only the additional pressure on
         the memory subsystem ... cause performance degradation") *)
  description : string;
}

let make ~name ?(threads = 4) ~density_hz ?(calls = 2000) ?(jitter = 0.2)
    ?(mem_pressure = 0.) ~mix ~description () =
  {
    name;
    threads;
    density_hz;
    total_calls_per_thread = calls;
    mix;
    jitter;
    mem_pressure;
    description;
  }

(* Native syscall service time is subtracted from the compute slice so the
   requested density is approximately the *native* call rate. *)
let native_service_ns = 400.

let compute_slice_ns t ncalls =
  let per_call = 1e9 /. t.density_hz in
  let slice = (per_call -. native_service_ns) *. float_of_int ncalls in
  int_of_float (max 100. slice)

(* ------------------------------------------------------------------ *)
(* Program body *)

type worker_ctx = {
  data_fd : int;
  pipe_r : int;
  pipe_w : int;
  sock_a : int;
  sock_b : int;
}

let run_op (env : Mvee.env) ctx rng op =
  match op with
  | Op_gettime -> ignore (Api.gettimeofday ())
  | Op_getpid -> ignore (Api.getpid ())
  | Op_yield -> Api.sched_yield ()
  | Op_stat -> ignore (Api.fstat ctx.data_fd)
  | Op_read_file n -> ignore (Api.pread ctx.data_fd n (Rng.int rng 4096))
  | Op_write_file n ->
    ignore (Api.pwrite ctx.data_fd (String.make n 'w') (Rng.int rng 4096))
  | Op_pipe_rw n ->
    ignore (Api.write ctx.pipe_w (String.make n 'p'));
    ignore (Api.read ctx.pipe_r n)
  | Op_sock_rw n ->
    ignore (Api.send ctx.sock_a (String.make n 's'));
    ignore (Api.recv ctx.sock_b n)
  | Op_poll_sock ->
    ignore
      (Sched.syscall
         (Syscall.Poll
            { fds = [ (ctx.sock_a, Syscall.ev_out) ]; timeout_ns = Some 0 }))
  | Op_lock ->
    env.Mvee.lock 7;
    env.Mvee.unlock 7
  | Op_open_close ->
    let fd = Api.open_file ~flags:{ Syscall.o_rdwr with create = true } "/tmp/scratch.bin" in
    Api.close fd

(* The body every replica runs. *)
let body t (env : Mvee.env) =
  (* per-replica setup: one shared data file plus per-worker pipes and
     socket pairs (fd numbering is identical across replicas) *)
  let data_fd =
    Api.open_file ~flags:{ Syscall.o_rdwr with create = true } ("/tmp/" ^ t.name ^ ".dat")
  in
  ignore (Api.pwrite data_fd (String.make 8192 'd') 0);
  let worker_ctxs =
    List.init t.threads (fun _ ->
        let pipe_r, pipe_w = Api.pipe () in
        let sock_a, sock_b = Api.socketpair () in
        { data_fd; pipe_r; pipe_w; sock_a; sock_b })
  in
  let weights = Array.of_list (List.map fst t.mix) in
  let ops = Array.of_list (List.map snd t.mix) in
  let done_count = ref 0 in
  let worker rank ctx () =
    (* identical RNG stream in every replica: keyed by profile + rank
       through the stable mixer ([Hashtbl.hash] varies across OCaml
       releases, which would break byte-identical replay of recordings
       made under a different compiler) *)
    let rng = Rng.make (Rng.stable_seed t.name rank) in
    let issued = ref 0 in
    while !issued < t.total_calls_per_thread do
      let op = ops.(Rng.weighted rng weights) in
      let ncalls = max 1 (op_calls op) in
      let slice = compute_slice_ns t ncalls in
      let jittered =
        let f = 1. +. ((Rng.float rng -. 0.5) *. 2. *. t.jitter) in
        (* replicas contend for cache and memory bandwidth *)
        let pressure = 1. +. (t.mem_pressure *. float_of_int (env.Mvee.nreplicas - 1)) in
        int_of_float (float_of_int slice *. f *. pressure)
      in
      Api.compute jittered;
      run_op env ctx rng op;
      issued := !issued + op_calls op + (if op_calls op = 0 then 1 else 0)
    done;
    incr done_count
  in
  List.iteri
    (fun i ctx -> ignore (env.Mvee.spawn_thread (worker (i + 1) ctx)))
    worker_ctxs;
  (* join: user-space wait on the completion counter (pthread_join-like) *)
  Sched.wait_user (fun () -> !done_count = t.threads);
  Api.close data_fd

(* ------------------------------------------------------------------ *)
(* Mix archetypes *)

let mix_compute = [ (0.6, Op_gettime); (0.25, Op_getpid); (0.15, Op_stat) ]

let mix_file_ro =
  [ (0.65, Op_read_file 512); (0.15, Op_stat); (0.15, Op_gettime); (0.05, Op_write_file 256) ]

let mix_file_rw =
  [
    (0.4, Op_read_file 1024);
    (0.35, Op_write_file 1024);
    (0.1, Op_stat);
    (0.1, Op_gettime);
    (0.05, Op_open_close);
  ]

let mix_pipe =
  [ (0.55, Op_pipe_rw 256); (0.25, Op_read_file 256); (0.2, Op_gettime) ]

let mix_sock =
  [ (0.6, Op_sock_rw 512); (0.2, Op_poll_sock); (0.15, Op_gettime); (0.05, Op_write_file 128) ]

let mix_sync =
  [ (0.35, Op_lock); (0.4, Op_gettime); (0.15, Op_yield); (0.1, Op_read_file 128) ]

(* phpbench-like: dominated by time queries and small file writes *)
let mix_interp =
  [ (0.5, Op_gettime); (0.2, Op_getpid); (0.2, Op_write_file 128); (0.1, Op_read_file 128) ]

(* unpack-linux-like: heavy fd lifecycle (always monitored) + writes *)
let mix_unpack =
  [ (0.35, Op_open_close); (0.4, Op_write_file 2048); (0.2, Op_read_file 2048); (0.05, Op_stat) ]

(* ------------------------------------------------------------------ *)
(* Calibration *)

(* Effective per-call cost of CP monitoring in this simulator (measured by
   test/calibrate.ml at 4 worker threads: 16-18 us/call across densities).
   Suites derive per-benchmark densities from the paper's reported
   no-IP-MON overheads through this constant; the IP-MON columns are then
   *predictions* of the model, not fitted. *)
let c_cp_seconds = 16.5e-6

let density_for ~paper_overhead =
  Float.max 300. ((paper_overhead -. 1.) /. c_cp_seconds)


(* Expected fraction of a mix's syscalls that stay monitored at
   NONSOCKET_RW and above (the fd-lifecycle ops). *)
let monitored_fraction mix =
  let total, monitored =
    List.fold_left
      (fun (total, monitored) (w, op) ->
        let calls = float_of_int (op_calls op) in
        let m = match op with Op_open_close -> calls | _ -> 0. in
        (total +. (w *. calls), monitored +. (w *. m)))
      (0., 0.) mix
  in
  if total <= 0. then 0. else monitored /. total

(* Effective IP-MON-vs-CP residual ratio for a mix: monitored calls still
   pay full CP cost; exempt calls pay the ~12% IP-MON cost ratio. *)
let residual_ratio mix =
  let f = monitored_fraction mix in
  f +. ((1. -. f) *. 0.12)

(* Solves the two-parameter model (density, memory pressure) from the
   paper's two published bars for a benchmark. *)
let fit ~paper_no ~paper_ip ~mix =
  let m = Float.max 0. (paper_ip -. 1. -. (residual_ratio mix *. (paper_no -. 1.))) in
  let density = Float.max 300. ((paper_no -. 1. -. m) /. c_cp_seconds) in
  (density, m)
