(** GHUMVEE: the security-oriented cross-process monitor. Attached to every
    replica via the simulated ptrace API; monitored calls execute in
    lockstep (rendezvous -> deep argument comparison -> master-only I/O with
    result replication), asynchronous signals are deferred to rendezvous
    points, and any divergence shuts the whole replica set down — unless the
    group's recovery policy ([Context.failure_policy]) absorbs the fault by
    quarantining the offending non-master replica, after which the group
    keeps running degraded. Under [Respawn], a fresh replica resynchronizes
    by replaying the master syscall journal through the monitored path. *)

open Remon_kernel
open Remon_sim

type arrival = { variant : int; th : Proc.thread; call : Syscall.call }

type rstate =
  | Idle
  | Collecting of { arrivals : arrival list; count : int }
      (** [count = List.length arrivals]: the per-arrival completeness
          check is O(1) *)
  | Master_running of { slaves : arrival list; nslaves : int }
      (** waiting slaves only, pre-split for the master's exit stop *)
  | Await_slave_exits of { mutable remaining : int }
  | All_running of { mutable remaining : int }

type t = {
  g : Context.group;
  kernel : Kernel.t;
  rendezvous : (int, rstate) Hashtbl.t; (** per thread rank *)
  seqs : (int, int) Hashtbl.t;
  mutable busy_until : Vtime.t;
      (** monitor serialization: concurrent stops queue behind it *)
  deferred_signals : int Queue.t;
  watchdog_ns : Vtime.t;
  max_watchdog_retries : int;
      (** stalled rendezvous grace periods (each doubling the delay) before
          the watchdog escalates *)
  replaying : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (** respawned variant -> per-rank journal replay position *)
  waiting_replay : (int * int, arrival) Hashtbl.t;
      (** (rank, variant) -> replaying arrival parked at the journal head *)
  mutable exits_seen : (int * int) list;
  mutable shutting_down : bool;
  mutable rendezvous_count : int;
  mutable results_copied : int;
  mutable signals_deferred : int;
  mutable signals_injected : int;
  mutable maps_filtered : int;
  mutable shm_rejected : int;
  mutable replayed_records : int;
}

val create :
  Context.group -> ?watchdog_ns:Vtime.t -> ?watchdog_retries:int -> unit -> t

val attach : t -> Proc.process -> unit
(** ptrace-attach to a replica and watch for abnormal death. *)

val shutdown : t -> Divergence.t -> unit
(** Record the verdict and kill every replica. *)

val quiesce : t -> unit
(** Operator-initiated teardown (fleet rolling restarts): stop monitoring
    without recording a divergence verdict; pending watchdogs go quiet.
    The caller kills the replicas. *)

val purge_variant : t -> variant:int -> unit
(** Remove a quarantined variant from all in-flight rendezvous state so the
    survivors are not stranded. Called by the recovery handler after the
    variant's process is killed. *)

val is_replaying : t -> variant:int -> bool
(** The variant is between respawn and journal drain: still consuming the
    master syscall journal, not yet rejoined to lockstep. *)

val begin_replay : t -> variant:int -> unit
(** Start journal replay for a freshly respawned variant: its calls are
    verified against the master syscall journal and satisfied the way the
    original execution went, until it catches up and rejoins the group. *)

val tracer : t -> Proc.tracer
(** The raw stop-event handler (exposed for tests). *)
