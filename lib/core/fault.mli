(** Deterministic fault injection.

    A fault plan names what goes wrong, where and when: replica crash
    signals, corrupted syscall-argument captures, stalled rendezvous
    arrivals, dropped or tampered replication-buffer records, and
    transient socket errors. The plan is installed into the kernel's
    syscall-dispatch hook and the RB's tamper hook; the monitors detect
    the injected failures through their normal code paths, so the
    recovery layer ([Mvee.config.on_failure]) is exercised end to end.

    All injection is deterministic: identical seeds and plans reproduce
    identical outcomes. *)

open Remon_kernel
open Remon_sim

type kind =
  | Crash of int  (** the replica dies as if killed by this signal *)
  | Corrupt_args  (** the kernel captures perturbed syscall arguments *)
  | Delay of Vtime.t  (** the arrival stalls before routing *)
  | Drop_rb  (** the master's RB record loses its payload *)
  | Corrupt_rb  (** the master's RB record is tampered with *)
  | Sock_err of Errno.t  (** transient socket error (ECONNRESET/EAGAIN) *)

type spec = {
  kind : kind;
  variant : int;  (** target replica; ignored for RB faults *)
  at : int;  (** syscall index (kernel faults) / n-th RB record (RB faults) *)
  mutable fired : bool;
}

type plan = spec list

type t

val spec : kind:kind -> variant:int -> at:int -> spec
val make : seed:int -> plan -> t

val injected : t -> int
(** Faults actually fired so far. *)

val install :
  t -> kernel:Kernel.t -> group_id:int -> rb:Replication_buffer.t -> unit
(** Wire the plan into the kernel dispatch hook (scoped to the replica
    group identified by [group_id], so fleet instances in one kernel carry
    independent plans) and the RB tamper hook. *)

val copy_plan : plan -> plan
(** A fresh, unfired copy: fleet respawns reuse a plan across instance
    generations without leaking [fired] flags between them. *)

val random_plan :
  seed:int -> rate:float -> horizon:int -> nreplicas:int -> plan
(** Scatter faults over the first [horizon] syscall indices with
    probability [rate] per index; deterministic in [seed]. Used by the
    resilience bench. Never targets the master when slaves exist. *)

val chaos_plan :
  seed:int -> rate:float -> horizon:int -> nreplicas:int -> plan
(** Fleet chaos variant of {!random_plan}: every variant — the master
    included — is a legitimate target, and the kind mix is biased towards
    crashes, so whole instances go down and the fleet controller's
    eject/respawn path is exercised. Deterministic in [seed]. *)

val to_string : plan -> string

val of_string : string -> (plan, string) result
(** Parse the [--faults] syntax: comma-separated [KIND@AT[:VARIANT][=PARAM]]
    specs, e.g. ["crash@12:1,delay@30:1=5ms,droprb@5"]. Kinds: [crash]
    (SIGSEGV), [kill] (SIGKILL), [args], [delay] (needs [=DURATION] such as
    [5ms]/[200us]), [sockerr] (ECONNRESET), [again] (EAGAIN), [droprb],
    [corruptrb]. *)
