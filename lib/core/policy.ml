(* Monitoring relaxation policies (Section 3.4).

   Spatial exemption selects one of Table 1's cumulative levels; temporal
   exemption stochastically exempts calls that the CP monitor has recently
   approved repeatedly. The temporal policy is deliberately randomized — the
   paper notes that deterministic temporal policies ("exempt after N
   approvals in M ms") are insecure because an attacker can steer the MVEE
   into an unmonitored state. *)

open Remon_kernel
open Remon_util

type temporal = {
  min_approvals : int; (* identical approvals needed before exemption kicks in *)
  exempt_probability : float; (* chance an eligible call is exempted *)
  window_ns : Remon_sim.Vtime.t; (* approvals older than this are forgotten *)
}

type t = {
  spatial : Classification.level option;
      (* [None]: monitor everything (GHUMVEE standalone behaviour) *)
  temporal : temporal option;
}

let monitor_everything = { spatial = None; temporal = None }

let spatial level = { spatial = Some level; temporal = None }

let with_temporal t temporal = { t with temporal = Some temporal }

let default_temporal =
  { min_approvals = 32; exempt_probability = 0.5; window_ns = Remon_sim.Vtime.ms 100 }

let to_string t =
  match (t.spatial, t.temporal) with
  | None, None -> "monitor-all"
  | Some l, None -> Classification.level_to_string l
  | None, Some _ -> "monitor-all+temporal"
  | Some l, Some _ -> Classification.level_to_string l ^ "+temporal"

(* ------------------------------------------------------------------ *)
(* Spatial decision *)

(* Conditional-call argument checks beyond the socket distinction: fd
   control ops are exempt only for the benign op subtypes ("depending on op
   type" in Table 1). *)
let op_type_allowed (call : Syscall.call) =
  match call with
  | Syscall.Fcntl (_, Syscall.F_dupfd _) -> false (* allocates an fd *)
  | Syscall.Fcntl (_, (Syscall.F_getfl | Syscall.F_setfl _)) -> true
  | Syscall.Ioctl (_, (Syscall.Fionread | Syscall.Fionbio _ | Syscall.Tiocgwinsz))
    -> true
  | Syscall.Futex _ -> true
  | _ -> true

(* Spatial verdict for [call] given the fd classification byte from the
   IP-MON file map ([on_socket]). *)
let spatial_allows t (call : Syscall.call) ~on_socket =
  match t.spatial with
  | None -> false
  | Some level -> (
    if not (op_type_allowed call) then false
    else
      match Classification.required_level (Syscall.number call) ~on_socket with
      | None -> false
      | Some needed -> Classification.level_geq level needed)

(* ------------------------------------------------------------------ *)
(* Temporal decision state *)

(* Per-replica-group record of recent monitor approvals, keyed by syscall
   number. The state lives in the broker (kernel side), out of reach of the
   replicas. *)
type temporal_state = {
  rng : Rng.t;
  approvals : (Sysno.t, (Remon_sim.Vtime.t * int) ref) Hashtbl.t;
      (* sysno -> (window start, count within window) *)
  mutable exempted : int;
  mutable considered : int;
}

let make_temporal_state ~seed =
  {
    rng = Rng.make seed;
    approvals = Hashtbl.create 32;
    exempted = 0;
    considered = 0;
  }

(* Called by the broker each time GHUMVEE approves a monitored call. *)
let record_approval st ~now (no : Sysno.t) ~(cfg : temporal) =
  let cell =
    match Hashtbl.find_opt st.approvals no with
    | Some c -> c
    | None ->
      let c = ref (now, 0) in
      Hashtbl.replace st.approvals no c;
      c
  in
  let start, count = !cell in
  if now - start > cfg.window_ns then cell := (now, 1)
  else cell := (start, count + 1)

(* May [no] be stochastically exempted right now? *)
let temporal_exempts st ~now (no : Sysno.t) ~(cfg : temporal) =
  st.considered <- st.considered + 1;
  match Hashtbl.find_opt st.approvals no with
  | None -> false
  | Some cell ->
    let start, count = !cell in
    if now - start > cfg.window_ns then false
    else if count < cfg.min_approvals then false
    else begin
      let exempt = Rng.float st.rng < cfg.exempt_probability in
      if exempt then st.exempted <- st.exempted + 1;
      exempt
    end
