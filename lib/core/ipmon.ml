(* IP-MON: the in-process monitor (Sections 3.2-3.9, Listing 1).

   One instance is loaded into each replica. IK-B forwards policy-exempt
   syscalls here with a one-time token; the instance runs the four handler
   phases of Listing 1:

     MAYBE_CHECKED  - conditional-policy re-check; bounce to GHUMVEE if the
                      call should have been monitored (step 4')
     CALCSIZE       - replication-buffer space accounting; overflow triggers
                      the GHUMVEE-arbitrated buffer reset
     PRECALL        - master logs deep-copied arguments; slaves cross-check
                      their own arguments and crash intentionally on mismatch
     POSTCALL       - master publishes results (waking waiters only when
                      needed); slaves copy them (spin or condvar wait,
                      depending on the file map's blocking prediction)

   The master replica runs ahead of the slaves: it never waits for them
   except when the linear buffer is full. *)

open Remon_kernel
open Remon_sim
module Rb = Replication_buffer

type instance = {
  group : Context.group;
  variant : int;
  proc : Proc.process;
  mutable entry_addr : int64; (* IP-MON's executable region in this replica *)
  mutable rb_addr : int64; (* where the RB is mapped in this replica *)
}

let err e = Syscall.Error e

let charge = Kstate.charge

(* Replica-context IP-MON events (fallbacks, overflow stalls); the
   per-record append/consume traffic is emitted by [Replication_buffer].
   Metric keys are precomputed at module init, and the event payloads are
   only built once a sink is known to be attached, so the disabled-tracing
   path allocates nothing. *)
let key_fallback = "ipmon.fallback"
let key_overflow_wait = "ipmon.overflow_wait"

let obs_emit (o : Remon_obs.Obs.t) (th : Proc.thread) ~name ~key args =
  Remon_obs.Metrics.incr o.Remon_obs.Obs.metrics key;
  Remon_obs.Trace.instant o.Remon_obs.Obs.trace ~ts:th.Proc.clock ~cat:"ipmon"
    ~name ~pid:th.Proc.proc.Proc.pid ~tid:th.Proc.tid args

(* ------------------------------------------------------------------ *)
(* Phase 1: MAYBE_CHECKED *)

(* Re-checks the conditional policy against the (read-only) file map. For
   temporally-exempted calls the spatial check is skipped: the broker's
   stochastic decision is authoritative. *)
let maybe_checked inst (th : Proc.thread) ~token (call : Syscall.call) =
  let g = inst.group in
  if g.Context.ikb.Ikb.route_all then false (* VARAN: no policy filtering *)
  else if Ikb.was_temporal_grant g.Context.ikb th ~token then false
  else begin
    match Callinfo.fd_of call with
    | Some fd
      when File_map.class_of g.Context.file_map ~fd = Some Proc.Fd_special ->
      (* special files (e.g. the maps file) are always monitored *)
      true
    | fd_opt ->
      let on_socket =
        match fd_opt with
        | None -> false
        | Some fd -> File_map.is_socket g.Context.file_map ~fd
      in
      not (Policy.spatial_allows g.Context.policy call ~on_socket)
  end

(* ------------------------------------------------------------------ *)
(* epoll shadow map maintenance (Section 3.9) *)

let note_epoll inst (call : Syscall.call) =
  match call with
  | Syscall.Epoll_ctl { op = Syscall.Epoll_add | Syscall.Epoll_mod; fd; user_data; _ } ->
    Epoll_map.register inst.group.Context.epoll_map ~variant:inst.variant ~fd
      ~user_data
  | Syscall.Epoll_ctl { op = Syscall.Epoll_del; fd; _ } ->
    Epoll_map.unregister inst.group.Context.epoll_map ~variant:inst.variant ~fd
  | _ -> ()

(* Master's raw result -> logical form stored in the RB (encoded into the
   RB's int64 slots; see Epoll_map.encode). *)
let to_logical inst (result : Syscall.result) =
  match result with
  | Syscall.Ok_epoll events ->
    let logical = Epoll_map.to_logical inst.group.Context.epoll_map events in
    Syscall.Ok_epoll
      (List.map (fun (l, ev) -> (Epoll_map.encode l, ev)) logical)
  | r -> r

(* Logical form -> this variant's view. *)
let from_logical inst (result : Syscall.result) =
  match result with
  | Syscall.Ok_epoll encoded ->
    let logical = List.map (fun (v, ev) -> (Epoll_map.decode v, ev)) encoded in
    Syscall.Ok_epoll
      (Epoll_map.to_variant inst.group.Context.epoll_map ~variant:inst.variant
         logical)
  | r -> r

(* ------------------------------------------------------------------ *)
(* The entry point IK-B forwards to (Figure 2, steps 2-4) *)

let rec invoke inst (th : Proc.thread) ~token ~(call : Syscall.call)
    ~(return : Syscall.result -> unit) =
  let g = inst.group in
  g.Context.ipmon_calls <- g.Context.ipmon_calls + 1;
  if g.Context.shutdown then do_fallback inst th ~call ~return
  else if maybe_checked inst th ~token call then do_fallback inst th ~call ~return
  else begin
    (* CALCSIZE *)
    let bytes = Rb.record_bytes call in
    if not (Rb.fits_at_all g.Context.rb ~bytes) then
      do_fallback inst th ~call ~return
    else if inst.variant = 0 then begin
      match g.Context.ring with
      | Some ring -> master_ring_path inst ring th ~token ~call ~return ~bytes
      | None -> master_path inst th ~token ~call ~return ~bytes
    end
    else slave_path inst th ~token ~call ~return
  end

(* Step 4': destroy the token, restart the call as a monitored call. A
   toplevel function (not a per-call closure) so the fast path allocates
   nothing preparing for a fallback that almost never happens. *)
and do_fallback inst th ~call ~return =
  let g = inst.group in
  let k = g.Context.kernel in
  g.Context.ipmon_fallbacks <- g.Context.ipmon_fallbacks + 1;
  (match Kernel.obs k with
  | None -> ()
  | Some o ->
    obs_emit o th ~name:"fallback" ~key:key_fallback
      [ ("call", Remon_obs.Trace.Str (Syscall.to_string call)) ]);
  (* ring mode: the master is about to enter the monitored path, which acts
     as a batch barrier — pending records must reach the RB first so the
     slaves can line up for the rendezvous *)
  (match g.Context.ring with
  | Some ring when inst.variant = 0 ->
    Syscall_ring.flush ~th ring Syscall_ring.Barrier
  | _ -> ());
  Ikb.destroy_token g.Context.ikb th;
  charge th (Kernel.cost k).Cost_model.ipmon_restart_ns;
  Kernel.monitor_path k th call ~return

and master_window_ok g (th : Proc.thread) =
  match g.Context.mode.Context.runahead_window with
  | None -> true
  | Some w -> Rb.lag g.Context.rb ~rank:th.Proc.rank < w

(* Master fast path, per-record publishes (ring off). The common case —
   no overflow, open run-ahead window — runs straight through with no
   intermediate closures; the stall machinery lives in [master_path_slow]. *)
and master_path inst th ~token ~call ~return ~bytes =
  let g = inst.group in
  if
    (not (Rb.would_overflow g.Context.rb ~bytes)) && master_window_ok g th
  then master_proceed inst th ~token ~call ~return ~bytes
  else master_path_slow inst th ~token ~call ~return ~bytes

and master_proceed inst th ~token ~call ~return ~bytes =
  let g = inst.group in
  let k = g.Context.kernel in
  let cost = Kernel.cost k in
  (* PRECALL: deep-copy arguments + metadata into the RB *)
  let expect_block = Callinfo.may_block g.Context.file_map call in
  charge th
    (cost.Cost_model.rb_write_fixed_ns
    + Cost_model.local_copy_ns cost ~bytes:(Syscall.arg_bytes call));
  (Kernel.stats k).Kstate.rb_bytes <- (Kernel.stats k).Kstate.rb_bytes + bytes;
  note_epoll inst call;
  let entry =
    Rb.master_append g.Context.rb ~rank:th.Proc.rank
      ~call:(Callinfo.normalize call) ~expect_block ~forwarded:false
  in
  Kernel.kick k (* slaves may be waiting for this record *);
  (* inlined [Ikb.execute]: verify the one-time token, then run stop-free *)
  charge th cost.Cost_model.token_check_ns;
  if Ikb.verify g.Context.ikb th ~token ~call then
    Kernel.execute_raw k th call ~ret:(fun r ->
        (* POSTCALL: replicate results *)
        let logical = to_logical inst r in
        charge th
          (cost.Cost_model.rb_write_fixed_ns
          + Cost_model.local_copy_ns cost ~bytes:(Syscall.result_bytes r));
        let need_wake = Rb.master_publish g.Context.rb entry logical in
        (* Respawn support: fast-path calls also land in the master syscall
           journal (no-op unless Mvee enabled it) *)
        Record_log.journal_append g.Context.rb.Rb.sync_log ~rank:th.Proc.rank
          ~call:(Callinfo.normalize call) ~result:r;
        (* slaves pulling the record bounce its cache lines back and forth *)
        charge th
          ((g.Context.nreplicas - 1) * cost.Cost_model.cacheline_bounce_ns);
        (* per-record condvars (Section 3.7): skip the wake when nobody
           waits; the ablation mode wakes unconditionally *)
        if need_wake || not g.Context.mode.Context.per_call_condvar then
          charge th cost.Cost_model.futex_wake_ns;
        Kernel.kick k;
        return r)
  else begin
    (Kernel.stats k).Kstate.tokens_rejected <-
      (Kernel.stats k).Kstate.tokens_rejected + 1;
    do_fallback inst th ~call ~return
  end

and master_path_slow inst th ~token ~call ~return ~bytes =
  let g = inst.group in
  let k = g.Context.kernel in
  let cost = Kernel.cost k in
  let proceed () = master_proceed inst th ~token ~call ~return ~bytes in
  let proceed_windowed () =
    if master_window_ok g th then proceed ()
    else
      (* bounded run-ahead: the master stalls until the slowest slave
         catches up to within the window *)
      Kernel.wait_until k th ~what:"ipmon master: run-ahead window full"
        ~poll:(fun () -> if master_window_ok g th then Some () else None)
        ~on_ready:(fun () -> proceed ())
  in
  if Rb.would_overflow g.Context.rb ~bytes then begin
    (* Linear-buffer overflow: signal GHUMVEE, wait for the slaves to
       drain, reset (Section 3.2). The signalling syscall costs the master
       a ptrace round trip. *)
    (match Kernel.obs k with
    | None -> ()
    | Some o ->
      obs_emit o th ~name:"overflow_wait" ~key:key_overflow_wait
        [ ("used_bytes", Remon_obs.Trace.Int g.Context.rb.Rb.used_bytes) ]);
    charge th (Cost_model.ptrace_stop_ns cost);
    Kernel.wait_until k th ~what:"rb overflow: waiting for slaves to drain"
      ~poll:(fun () -> if Rb.fully_drained g.Context.rb then Some () else None)
      ~on_ready:(fun () ->
        Rb.reset g.Context.rb;
        Kernel.kick k;
        proceed_windowed ())
  end
  else proceed_windowed ()

(* Master path with the submission ring (mode.ring_batch > 1): the call
   executes immediately — run-ahead is unchanged — but PRECALL/POSTCALL
   park the record in the ring; the per-record RB fixed costs, the wake
   and the cache-line bounces are paid once per batch drain instead. *)
and master_ring_path inst ring th ~token ~call ~return ~bytes =
  let g = inst.group in
  let k = g.Context.kernel in
  let cost = Kernel.cost k in
  (* CALCSIZE, batch-aware: the RB must keep room for the whole pending
     batch plus this record. Drain first; if that is not enough space the
     arbitrated reset takes over, exactly as in the unbatched path. *)
  if
    Rb.would_overflow g.Context.rb
      ~bytes:(bytes + Syscall_ring.pending_bytes ring)
  then Syscall_ring.flush ~th ring Syscall_ring.Overflow;
  let window_ok () =
    match g.Context.mode.Context.runahead_window with
    | None -> true
    | Some w ->
      (* ring-pending records of this rank are invisible to [Rb.lag] but
         count towards the master's logical run-ahead *)
      Rb.lag g.Context.rb ~rank:th.Proc.rank
      + Syscall_ring.pending_rank ring ~rank:th.Proc.rank
      < w
  in
  let proceed () =
    let expect_block = Callinfo.may_block g.Context.file_map call in
    (* PRECALL: local copy into the ring slot; the RB fixed-cost write is
       deferred to the drain *)
    charge th (Cost_model.local_copy_ns cost ~bytes:(Syscall.arg_bytes call));
    (Kernel.stats k).Kstate.rb_bytes <- (Kernel.stats k).Kstate.rb_bytes + bytes;
    note_epoll inst call;
    charge th cost.Cost_model.token_check_ns;
    if not (Ikb.verify g.Context.ikb th ~token ~call) then begin
      (Kernel.stats k).Kstate.tokens_rejected <-
        (Kernel.stats k).Kstate.tokens_rejected + 1;
      do_fallback inst th ~call ~return
    end
    else begin
      let normalized = Callinfo.normalize call in
      match Callinfo.disposition call with
      | Callinfo.All_call ->
        (* every replica runs this call locally: slaves only need the
           record's *presence*, never its result, so it is published at
           submission — a terminal call (exit_group) or an in-replica
           rendezvous (futex) can therefore never strand the batch *)
        let slot =
          Syscall_ring.submit ring ~th ~call:normalized ~expect_block
        in
        Syscall_ring.complete ~th ring slot Syscall.Ok_unit;
        (* a terminal call never returns: push the batch out now rather
           than leaving the slaves to the flush deadline *)
        (match call with
        | Syscall.Exit _ | Syscall.Exit_group _ ->
          Syscall_ring.flush ~th ring Syscall_ring.Barrier
        | _ -> ());
        Kernel.execute_raw k th call ~ret:return
      | Callinfo.Master_call ->
        let slot =
          Syscall_ring.submit ring ~th ~call:normalized ~expect_block
        in
        Kernel.execute_raw k th call ~ret:(fun r ->
            (* POSTCALL: the result parks next to its arguments; the batch
               publish happens at the drain *)
            let logical = to_logical inst r in
            charge th
              (Cost_model.local_copy_ns cost ~bytes:(Syscall.result_bytes r));
            Syscall_ring.complete ~th ring slot logical;
            return r)
    end
  in
  if Rb.would_overflow g.Context.rb ~bytes then begin
    (match Kernel.obs k with
    | None -> ()
    | Some o ->
      obs_emit o th ~name:"overflow_wait" ~key:key_overflow_wait
        [ ("used_bytes", Remon_obs.Trace.Int g.Context.rb.Rb.used_bytes) ]);
    charge th (Cost_model.ptrace_stop_ns cost);
    Kernel.wait_until k th ~what:"rb overflow: waiting for slaves to drain"
      ~poll:(fun () -> if Rb.fully_drained g.Context.rb then Some () else None)
      ~on_ready:(fun () ->
        Rb.reset g.Context.rb;
        Kernel.kick k;
        if window_ok () then proceed ()
        else
          Kernel.wait_until k th ~what:"ipmon master: run-ahead window full"
            ~poll:(fun () -> if window_ok () then Some () else None)
            ~on_ready:(fun () -> proceed ()))
  end
  else if window_ok () then proceed ()
  else begin
    (* drain so the slaves can actually catch up — ring-pending records
       are invisible to them until flushed *)
    Syscall_ring.flush ~th ring Syscall_ring.Barrier;
    Kernel.wait_until k th ~what:"ipmon master: run-ahead window full"
      ~poll:(fun () -> if window_ok () then Some () else None)
      ~on_ready:(fun () -> proceed ())
  end

and slave_path inst th ~token ~call ~return =
  let g = inst.group in
  let k = g.Context.kernel in
  let cost = Kernel.cost k in
  let rank = th.Proc.rank in
  let variant = inst.variant in
  (* wait for the master's record for this call. In ring mode the record
     may be parked in the master's submission ring: pull it directly out
     of the shared slots ([Syscall_ring.demand]) instead of sleeping
     until the master's flush deadline. *)
  Kernel.wait_until k th ~what:"ipmon slave: waiting for master record"
    ~poll:(fun () ->
      match Rb.slave_lookup g.Context.rb ~rank ~variant with
      | Some e -> Some e
      | None -> (
        match g.Context.ring with
        | Some ring when Syscall_ring.demand ring ~th ~rank ->
          Rb.slave_lookup g.Context.rb ~rank ~variant
        | _ -> None))
    ~on_ready:(fun (entry : Rb.entry) ->
      (* a batch follower's cache lines arrived with the drain's first
         record: its fixed read cost is one spin poll, not a fresh pull *)
      charge th
        ((if entry.Rb.batch_follower then cost.Cost_model.spin_poll_ns
          else cost.Cost_model.rb_read_fixed_ns)
        + Cost_model.compare_ns cost ~bytes:(Syscall.arg_bytes call));
      match entry.Rb.call with
      | None ->
        (* the record carries no payload (lost/dropped): nothing to verify
           against — consume the slot and bounce to the monitored path,
           where GHUMVEE's watchdog catches a master that never shows up *)
        Rb.slave_advance g.Context.rb ~rank ~variant;
        do_fallback inst th ~call ~return
      | Some recorded when entry.Rb.flags.Rb.forwarded_to_monitor ->
        (* master bounced this call to GHUMVEE; follow it *)
        ignore recorded;
        Rb.slave_advance g.Context.rb ~rank ~variant;
        do_fallback inst th ~call ~return
      | Some recorded ->
        if not (Syscall.equal_call (Callinfo.normalize call) recorded) then begin
          (* PRECALL sanity check failed: argument divergence. *)
          let verdict =
            Divergence.Args_mismatch
              {
                rank;
                index = th.Proc.syscall_index;
                expected = Divergence.render_call recorded;
                got = Divergence.render_call call;
                variant;
                detector = Divergence.By_ipmon;
              }
          in
          if Context.replica_fault g ~variant verdict then
            (* the recovery policy quarantined (and killed) this replica:
               the continuation dies with it *)
            ()
          else begin
            (* default: crash intentionally so GHUMVEE observes it via
               ptrace and shuts the MVEE down (Section 3.3) *)
            Context.set_divergence g verdict;
            Kernel.post_signal k inst.proc Sigdefs.sigsegv;
            return (err Errno.EINTR)
          end
        end
        else begin
          note_epoll inst call;
          match Callinfo.disposition call with
          | Callinfo.All_call ->
            (* process-local call: consume the record, execute locally
               (inlined [Ikb.execute]) *)
            Rb.slave_advance g.Context.rb ~rank ~variant;
            Kernel.kick k;
            charge th cost.Cost_model.token_check_ns;
            if Ikb.verify g.Context.ikb th ~token ~call then
              Kernel.execute_raw k th call ~ret:return
            else begin
              (Kernel.stats k).Kstate.tokens_rejected <-
                (Kernel.stats k).Kstate.tokens_rejected + 1;
              do_fallback inst th ~call ~return
            end
          | Callinfo.Master_call ->
            (* abort the original call; the one-time token goes unused *)
            Ikb.consume_token g.Context.ikb th;
            (* ring mode: when a batch drain already published the result
               alongside the record, the slave's first read finds it — one
               spin poll, no sleep. This is the batching win on the slave
               side: one wake services the whole batch. *)
            let immediate =
              g.Context.ring <> None && entry.Rb.result <> None
            in
            let use_futex =
              match g.Context.mode.Context.slave_wait with
              | Context.Wait_auto -> entry.Rb.flags.Rb.expect_block
              | Context.Wait_spin_only -> false
              | Context.Wait_futex_only -> true
            in
            let wait_cost =
              if immediate then cost.Cost_model.spin_poll_ns
              else if use_futex then
                (* optimized per-record condition variable (Section 3.7) *)
                cost.Cost_model.futex_wait_ns
              else (* spin-read loop *) 2 * cost.Cost_model.spin_poll_ns
            in
            entry.Rb.waiters <- entry.Rb.waiters + 1;
            Kernel.wait_until k th ~what:"ipmon slave: waiting for results"
              ~poll:(fun () -> entry.Rb.result)
              ~on_ready:(fun logical ->
                entry.Rb.waiters <- entry.Rb.waiters - 1;
                charge th
                  (wait_cost
                  + Cost_model.local_copy_ns cost
                      ~bytes:(Syscall.result_bytes logical));
                let r = from_logical inst logical in
                (* fd-allocating calls (VARAN handles these in-process):
                   install stub descriptors so numbering stays aligned *)
                List.iter
                  (fun fd ->
                    Hashtbl.replace inst.proc.Proc.fds fd
                      (Proc.make_desc (Proc.Replicated_handle fd)))
                  (Callinfo.fds_created call r);
                List.iter
                  (fun fd -> Hashtbl.remove inst.proc.Proc.fds fd)
                  (Callinfo.fds_closed call r);
                Rb.slave_advance g.Context.rb ~rank ~variant;
                Kernel.kick k (* unblock a master waiting on drain *);
                return r)
        end)

(* ------------------------------------------------------------------ *)
(* Initialization (Section 3.5): runs inside the replica, in program
   context, before the application's main. *)

let rx = { Syscall.pr = true; pw = false; px = true }

let init ?(calls = Classification.ipmon_supported) (g : Context.group) ~variant
    : instance =
  let th = Sched.self () in
  let proc = th.Proc.proc in
  let inst = { group = g; variant; proc; entry_addr = 0L; rb_addr = 0L } in
  (* map IP-MON's executable region (its entry point lives here) *)
  (match
     Vm.map proc.Proc.vm ~len:65536 ~prot:rx ~backing:Vm.Ipmon_code ~tag:"ipmon"
   with
  | Ok r -> inst.entry_addr <- r.Vm.start
  | Error _ -> failwith "ipmon: cannot map code region");
  (* create/attach the replication buffer segment (SysV IPC, arbitrated by
     GHUMVEE: the key marks it as MVEE-internal) *)
  let rb_size = g.Context.rb.Rb.size_bytes in
  let shmid =
    match
      Sched.syscall (Syscall.Shmget { key = g.Context.shm_key; size = rb_size; create = true })
    with
    | Syscall.Ok_int id -> id
    | r -> failwith (Format.asprintf "ipmon: shmget failed: %a" Syscall.pp_result r)
  in
  (match Sched.syscall (Syscall.Shmat { shmid; readonly = false }) with
  | Syscall.Ok_int64 addr ->
    inst.rb_addr <- addr;
    (* attach the RB structure to the segment payload (master only) *)
    (match Shm.find (Kernel.shm_registry g.Context.kernel) shmid with
    | Ok seg ->
      if seg.Shm.payload = None then
        seg.Shm.payload <- Some (Rb.Rb_payload g.Context.rb)
    | Error _ -> ())
  | r -> failwith (Format.asprintf "ipmon: shmat failed: %a" Syscall.pp_result r));
  (* attach the read-only file map (Section 3.6) *)
  let fm_shmid =
    match
      Sched.syscall
        (Syscall.Shmget { key = g.Context.shm_key + 1; size = 4096; create = true })
    with
    | Syscall.Ok_int id -> id
    | _ -> failwith "ipmon: file-map shmget failed"
  in
  (match Sched.syscall (Syscall.Shmat { shmid = fm_shmid; readonly = true }) with
  | Syscall.Ok_int64 _ -> ()
  | _ -> failwith "ipmon: file-map shmat failed");
  (* register with IK-B through the new kernel syscall; the invoke closure
     is staged kernel-side because closures cannot travel through the
     syscall interface *)
  Kernel.prepare_ipmon g.Context.kernel ~pid:proc.Proc.pid
    {
      Proc.unmonitored = Sysno.Set.of_list calls;
      rb_addr = inst.rb_addr;
      entry_addr = inst.entry_addr;
      invoke =
        (fun th ~token ~call ~return -> invoke inst th ~token ~call ~return);
    };
  (match
     Sched.syscall
       (Syscall.Ipmon_register
          { calls; rb_addr = inst.rb_addr; entry_addr = inst.entry_addr })
   with
  | Syscall.Ok_int 0 -> ()
  | Syscall.Error e ->
    failwith ("ipmon: registration rejected: " ^ Errno.to_string e)
  | _ -> failwith "ipmon: registration failed");
  Ikb.(g.Context.ikb.rb <- Some g.Context.rb);
  inst
