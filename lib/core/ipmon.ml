(* IP-MON: the in-process monitor (Sections 3.2-3.9, Listing 1).

   One instance is loaded into each replica. IK-B forwards policy-exempt
   syscalls here with a one-time token; the instance runs the four handler
   phases of Listing 1:

     MAYBE_CHECKED  - conditional-policy re-check; bounce to GHUMVEE if the
                      call should have been monitored (step 4')
     CALCSIZE       - replication-buffer space accounting; overflow triggers
                      the GHUMVEE-arbitrated buffer reset
     PRECALL        - master logs deep-copied arguments; slaves cross-check
                      their own arguments and crash intentionally on mismatch
     POSTCALL       - master publishes results (waking waiters only when
                      needed); slaves copy them (spin or condvar wait,
                      depending on the file map's blocking prediction)

   The master replica runs ahead of the slaves: it never waits for them
   except when the linear buffer is full. *)

open Remon_kernel
open Remon_sim
module Rb = Replication_buffer

type instance = {
  group : Context.group;
  variant : int;
  proc : Proc.process;
  mutable entry_addr : int64; (* IP-MON's executable region in this replica *)
  mutable rb_addr : int64; (* where the RB is mapped in this replica *)
}

let err e = Syscall.Error e

let charge = Kstate.charge

(* Replica-context IP-MON events (fallbacks, overflow stalls); the
   per-record append/consume traffic is emitted by [Replication_buffer]. *)
let obs_instant (k : Kernel.t) (th : Proc.thread) ~name args =
  match Kernel.obs k with
  | None -> ()
  | Some o ->
    Remon_obs.Metrics.incr o.Remon_obs.Obs.metrics ("ipmon." ^ name);
    Remon_obs.Trace.instant o.Remon_obs.Obs.trace ~ts:th.Proc.clock
      ~cat:"ipmon" ~name ~pid:th.Proc.proc.Proc.pid ~tid:th.Proc.tid args

(* ------------------------------------------------------------------ *)
(* Phase 1: MAYBE_CHECKED *)

(* Re-checks the conditional policy against the (read-only) file map. For
   temporally-exempted calls the spatial check is skipped: the broker's
   stochastic decision is authoritative. *)
let maybe_checked inst (th : Proc.thread) ~token (call : Syscall.call) =
  let g = inst.group in
  if g.Context.ikb.Ikb.route_all then false (* VARAN: no policy filtering *)
  else if Ikb.was_temporal_grant g.Context.ikb th ~token then false
  else begin
    match Callinfo.fd_of call with
    | Some fd
      when File_map.class_of g.Context.file_map ~fd = Some Proc.Fd_special ->
      (* special files (e.g. the maps file) are always monitored *)
      true
    | fd_opt ->
      let on_socket =
        match fd_opt with
        | None -> false
        | Some fd -> File_map.is_socket g.Context.file_map ~fd
      in
      not (Policy.spatial_allows g.Context.policy call ~on_socket)
  end

(* ------------------------------------------------------------------ *)
(* epoll shadow map maintenance (Section 3.9) *)

let note_epoll inst (call : Syscall.call) =
  match call with
  | Syscall.Epoll_ctl { op = Syscall.Epoll_add | Syscall.Epoll_mod; fd; user_data; _ } ->
    Epoll_map.register inst.group.Context.epoll_map ~variant:inst.variant ~fd
      ~user_data
  | Syscall.Epoll_ctl { op = Syscall.Epoll_del; fd; _ } ->
    Epoll_map.unregister inst.group.Context.epoll_map ~variant:inst.variant ~fd
  | _ -> ()

(* Master's raw result -> logical form stored in the RB (encoded into the
   RB's int64 slots; see Epoll_map.encode). *)
let to_logical inst (result : Syscall.result) =
  match result with
  | Syscall.Ok_epoll events ->
    let logical = Epoll_map.to_logical inst.group.Context.epoll_map events in
    Syscall.Ok_epoll
      (List.map (fun (l, ev) -> (Epoll_map.encode l, ev)) logical)
  | r -> r

(* Logical form -> this variant's view. *)
let from_logical inst (result : Syscall.result) =
  match result with
  | Syscall.Ok_epoll encoded ->
    let logical = List.map (fun (v, ev) -> (Epoll_map.decode v, ev)) encoded in
    Syscall.Ok_epoll
      (Epoll_map.to_variant inst.group.Context.epoll_map ~variant:inst.variant
         logical)
  | r -> r

(* ------------------------------------------------------------------ *)
(* The entry point IK-B forwards to (Figure 2, steps 2-4) *)

let rec invoke inst (th : Proc.thread) ~token ~(call : Syscall.call)
    ~(return : Syscall.result -> unit) =
  let g = inst.group in
  let k = g.Context.kernel in
  let cost = Kernel.cost k in
  g.Context.ipmon_calls <- g.Context.ipmon_calls + 1;
  let fallback () =
    (* step 4': destroy the token, restart the call as a monitored call *)
    g.Context.ipmon_fallbacks <- g.Context.ipmon_fallbacks + 1;
    obs_instant k th ~name:"fallback"
      [ ("call", Remon_obs.Trace.Str (Syscall.to_string call)) ];
    Ikb.destroy_token g.Context.ikb th;
    charge th cost.Cost_model.ipmon_restart_ns;
    Kernel.monitor_path k th call ~return
  in
  if g.Context.shutdown then fallback ()
  else if maybe_checked inst th ~token call then fallback ()
  else begin
    (* CALCSIZE *)
    let bytes = Rb.record_bytes call in
    if not (Rb.fits_at_all g.Context.rb ~bytes) then fallback ()
    else if inst.variant = 0 then master_path inst th ~token ~call ~return ~fallback ~bytes
    else slave_path inst th ~token ~call ~return ~fallback
  end

and master_path inst th ~token ~call ~return ~fallback ~bytes =
  let g = inst.group in
  let k = g.Context.kernel in
  let cost = Kernel.cost k in
  let proceed () =
    (* PRECALL: deep-copy arguments + metadata into the RB *)
    let expect_block = Callinfo.may_block g.Context.file_map call in
    charge th
      (cost.Cost_model.rb_write_fixed_ns
      + Cost_model.local_copy_ns cost ~bytes:(Syscall.arg_bytes call));
    (Kernel.stats k).Kstate.rb_bytes <- (Kernel.stats k).Kstate.rb_bytes + bytes;
    note_epoll inst call;
    let entry =
      Rb.master_append g.Context.rb ~rank:th.Proc.rank
        ~call:(Callinfo.normalize call) ~expect_block ~forwarded:false
    in
    Kernel.kick k (* slaves may be waiting for this record *);
    let publish r =
      (* POSTCALL: replicate results *)
      let logical = to_logical inst r in
      charge th
        (cost.Cost_model.rb_write_fixed_ns
        + Cost_model.local_copy_ns cost ~bytes:(Syscall.result_bytes r));
      let need_wake = Rb.master_publish g.Context.rb entry logical in
      (* Respawn support: fast-path calls also land in the master syscall
         journal (no-op unless Mvee enabled it) *)
      Record_log.journal_append g.Context.rb.Rb.sync_log ~rank:th.Proc.rank
        ~call:(Callinfo.normalize call) ~result:r;
      (* slaves pulling the record bounce its cache lines back and forth *)
      charge th ((g.Context.nreplicas - 1) * cost.Cost_model.cacheline_bounce_ns);
      (* per-record condvars (Section 3.7): skip the wake when nobody
         waits; the ablation mode wakes unconditionally *)
      if need_wake || not g.Context.mode.Context.per_call_condvar then
        charge th cost.Cost_model.futex_wake_ns;
      Kernel.kick k;
      return r
    in
    Ikb.execute g.Context.ikb th ~token call ~ret:publish ~fallback
  in
  let window_ok () =
    match g.Context.mode.Context.runahead_window with
    | None -> true
    | Some w -> Rb.lag g.Context.rb ~rank:th.Proc.rank < w
  in
  let proceed_windowed () =
    if window_ok () then proceed ()
    else
      (* bounded run-ahead: the master stalls until the slowest slave
         catches up to within the window *)
      Kernel.wait_until k th ~what:"ipmon master: run-ahead window full"
        ~poll:(fun () -> if window_ok () then Some () else None)
        ~on_ready:(fun () -> proceed ())
  in
  if Rb.would_overflow g.Context.rb ~bytes then begin
    (* Linear-buffer overflow: signal GHUMVEE, wait for the slaves to
       drain, reset (Section 3.2). The signalling syscall costs the master
       a ptrace round trip. *)
    obs_instant k th ~name:"overflow_wait"
      [ ("used_bytes", Remon_obs.Trace.Int g.Context.rb.Rb.used_bytes) ];
    charge th (Cost_model.ptrace_stop_ns cost);
    Kernel.wait_until k th ~what:"rb overflow: waiting for slaves to drain"
      ~poll:(fun () -> if Rb.fully_drained g.Context.rb then Some () else None)
      ~on_ready:(fun () ->
        Rb.reset g.Context.rb;
        Kernel.kick k;
        proceed_windowed ())
  end
  else proceed_windowed ()

and slave_path inst th ~token ~call ~return ~fallback =
  let g = inst.group in
  let k = g.Context.kernel in
  let cost = Kernel.cost k in
  let rank = th.Proc.rank in
  let variant = inst.variant in
  (* wait for the master's record for this call *)
  Kernel.wait_until k th ~what:"ipmon slave: waiting for master record"
    ~poll:(fun () -> Rb.slave_lookup g.Context.rb ~rank ~variant)
    ~on_ready:(fun (entry : Rb.entry) ->
      charge th
        (cost.Cost_model.rb_read_fixed_ns
        + Cost_model.compare_ns cost ~bytes:(Syscall.arg_bytes call));
      match entry.Rb.call with
      | None ->
        (* the record carries no payload (lost/dropped): nothing to verify
           against — consume the slot and bounce to the monitored path,
           where GHUMVEE's watchdog catches a master that never shows up *)
        Rb.slave_advance g.Context.rb ~rank ~variant;
        fallback ()
      | Some recorded when entry.Rb.flags.Rb.forwarded_to_monitor ->
        (* master bounced this call to GHUMVEE; follow it *)
        ignore recorded;
        Rb.slave_advance g.Context.rb ~rank ~variant;
        fallback ()
      | Some recorded ->
        if not (Syscall.equal_call (Callinfo.normalize call) recorded) then begin
          (* PRECALL sanity check failed: argument divergence. *)
          let verdict =
            Divergence.Args_mismatch
              {
                rank;
                index = th.Proc.syscall_index;
                expected = Divergence.render_call recorded;
                got = Divergence.render_call call;
                variant;
                detector = Divergence.By_ipmon;
              }
          in
          if Context.replica_fault g ~variant verdict then
            (* the recovery policy quarantined (and killed) this replica:
               the continuation dies with it *)
            ()
          else begin
            (* default: crash intentionally so GHUMVEE observes it via
               ptrace and shuts the MVEE down (Section 3.3) *)
            Context.set_divergence g verdict;
            Kernel.post_signal k inst.proc Sigdefs.sigsegv;
            return (err Errno.EINTR)
          end
        end
        else begin
          note_epoll inst call;
          match Callinfo.disposition call with
          | Callinfo.All_call ->
            (* process-local call: consume the record, execute locally *)
            Rb.slave_advance g.Context.rb ~rank ~variant;
            Kernel.kick k;
            Ikb.execute g.Context.ikb th ~token call ~ret:return ~fallback
          | Callinfo.Master_call ->
            (* abort the original call; the one-time token goes unused *)
            Ikb.consume_token g.Context.ikb th;
            let use_futex =
              match g.Context.mode.Context.slave_wait with
              | Context.Wait_auto -> entry.Rb.flags.Rb.expect_block
              | Context.Wait_spin_only -> false
              | Context.Wait_futex_only -> true
            in
            let wait_cost =
              if use_futex then
                (* optimized per-record condition variable (Section 3.7) *)
                cost.Cost_model.futex_wait_ns
              else (* spin-read loop *) 2 * cost.Cost_model.spin_poll_ns
            in
            entry.Rb.waiters <- entry.Rb.waiters + 1;
            Kernel.wait_until k th ~what:"ipmon slave: waiting for results"
              ~poll:(fun () -> entry.Rb.result)
              ~on_ready:(fun logical ->
                entry.Rb.waiters <- entry.Rb.waiters - 1;
                charge th
                  (wait_cost
                  + Cost_model.local_copy_ns cost
                      ~bytes:(Syscall.result_bytes logical));
                let r = from_logical inst logical in
                (* fd-allocating calls (VARAN handles these in-process):
                   install stub descriptors so numbering stays aligned *)
                List.iter
                  (fun fd ->
                    Hashtbl.replace inst.proc.Proc.fds fd
                      (Proc.make_desc (Proc.Replicated_handle fd)))
                  (Callinfo.fds_created call r);
                List.iter
                  (fun fd -> Hashtbl.remove inst.proc.Proc.fds fd)
                  (Callinfo.fds_closed call r);
                Rb.slave_advance g.Context.rb ~rank ~variant;
                Kernel.kick k (* unblock a master waiting on drain *);
                return r)
        end)

(* ------------------------------------------------------------------ *)
(* Initialization (Section 3.5): runs inside the replica, in program
   context, before the application's main. *)

let rx = { Syscall.pr = true; pw = false; px = true }

let init ?(calls = Classification.ipmon_supported) (g : Context.group) ~variant
    : instance =
  let th = Sched.self () in
  let proc = th.Proc.proc in
  let inst = { group = g; variant; proc; entry_addr = 0L; rb_addr = 0L } in
  (* map IP-MON's executable region (its entry point lives here) *)
  (match
     Vm.map proc.Proc.vm ~len:65536 ~prot:rx ~backing:Vm.Ipmon_code ~tag:"ipmon"
   with
  | Ok r -> inst.entry_addr <- r.Vm.start
  | Error _ -> failwith "ipmon: cannot map code region");
  (* create/attach the replication buffer segment (SysV IPC, arbitrated by
     GHUMVEE: the key marks it as MVEE-internal) *)
  let rb_size = g.Context.rb.Rb.size_bytes in
  let shmid =
    match
      Sched.syscall (Syscall.Shmget { key = g.Context.shm_key; size = rb_size; create = true })
    with
    | Syscall.Ok_int id -> id
    | r -> failwith (Format.asprintf "ipmon: shmget failed: %a" Syscall.pp_result r)
  in
  (match Sched.syscall (Syscall.Shmat { shmid; readonly = false }) with
  | Syscall.Ok_int64 addr ->
    inst.rb_addr <- addr;
    (* attach the RB structure to the segment payload (master only) *)
    (match Shm.find (Kernel.shm_registry g.Context.kernel) shmid with
    | Ok seg ->
      if seg.Shm.payload = None then
        seg.Shm.payload <- Some (Rb.Rb_payload g.Context.rb)
    | Error _ -> ())
  | r -> failwith (Format.asprintf "ipmon: shmat failed: %a" Syscall.pp_result r));
  (* attach the read-only file map (Section 3.6) *)
  let fm_shmid =
    match
      Sched.syscall
        (Syscall.Shmget { key = g.Context.shm_key + 1; size = 4096; create = true })
    with
    | Syscall.Ok_int id -> id
    | _ -> failwith "ipmon: file-map shmget failed"
  in
  (match Sched.syscall (Syscall.Shmat { shmid = fm_shmid; readonly = true }) with
  | Syscall.Ok_int64 _ -> ()
  | _ -> failwith "ipmon: file-map shmat failed");
  (* register with IK-B through the new kernel syscall; the invoke closure
     is staged kernel-side because closures cannot travel through the
     syscall interface *)
  Kernel.prepare_ipmon g.Context.kernel ~pid:proc.Proc.pid
    {
      Proc.unmonitored = Sysno.Set.of_list calls;
      rb_addr = inst.rb_addr;
      entry_addr = inst.entry_addr;
      invoke =
        (fun th ~token ~call ~return -> invoke inst th ~token ~call ~return);
    };
  (match
     Sched.syscall
       (Syscall.Ipmon_register
          { calls; rb_addr = inst.rb_addr; entry_addr = inst.entry_addr })
   with
  | Syscall.Ok_int 0 -> ()
  | Syscall.Error e ->
    failwith ("ipmon: registration rejected: " ^ Errno.to_string e)
  | _ -> failwith "ipmon: registration failed");
  Ikb.(g.Context.ikb.rb <- Some g.Context.rb);
  inst
