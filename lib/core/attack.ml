(* Attack scenarios from the paper's security analysis (Section 4).

   Each scenario stages a memory-corruption-style compromise of one replica
   and reports (i) whether the malicious action ever took effect on the
   host and (ii) whether and how the MVEE detected it. The scenarios map
   one-to-one onto the analysis:

   - [divergent_syscall]: the compromised replica issues a system call the
     others do not — caught by lockstep comparison (GHUMVEE) or the slave
     argument cross-check (IP-MON) before/after execution depending on the
     backend.
   - [forged_token]: unmonitored execution is attempted with a guessed
     authorization token — rejected by the IK-B verifier, and the forced
     monitored restart exposes the divergence.
   - [rb_discovery]: the attacker reads /proc/self/maps hoping to locate
     the replication buffer — GHUMVEE filters the maps file.
   - [rb_guessing]: blind probes for the RB's address — defeated by the
     placement entropy.
   - [payload_spray]: an address-dependent code-reuse payload built for one
     replica's layout — under DCL the address is valid in at most one
     replica, so the behaviours diverge. *)

open Remon_kernel
open Remon_util
open Remon_sim

type report = {
  scenario : string;
  attack_effect : bool; (* malicious externally-visible effect occurred *)
  detected : Divergence.t option;
  notes : string;
}

let pp_report fmt r =
  Format.fprintf fmt "%-18s effect=%-5b detected=%s%s" r.scenario r.attack_effect
    (match r.detected with
    | Some v -> Divergence.to_string v
    | None -> "no")
    (if r.notes = "" then "" else " (" ^ r.notes ^ ")")

let sys = Sched.syscall

(* Benign work every replica performs; the compromised replica injects its
   attack after [iters] rounds. *)
let benign_round () =
  ignore (sys Syscall.Gettimeofday);
  Sched.compute (Vtime.us 20);
  ignore (sys Syscall.Getpid)

let evil_path = "/etc/passwd"

(* The externally visible effect we test for: did the attacker manage to
   append to a sensitive file? *)
let evil_effect_occurred kernel =
  match Vfs.resolve (Kernel.vfs kernel) evil_path with
  | Ok node -> (
    match Vfs.read_at node ~offset:0 ~count:4096 with
    | Ok s ->
      let needle = "pwned" in
      let n = String.length needle and h = String.length s in
      let rec scan i = i + n <= h && (String.sub s i n = needle || scan (i + 1)) in
      h >= n && scan 0
    | Error _ -> false)
  | Error _ -> false

let write_evil () =
  match sys (Syscall.Open (evil_path, { Syscall.o_rdwr with create = true; append = true })) with
  | Syscall.Ok_int fd ->
    ignore (sys (Syscall.Write (fd, "pwned:root::0:0\n")));
    ignore (sys (Syscall.Close fd))
  | _ -> ()

let run_scenario ?(config = Mvee.default_config) ~name kernel ~body =
  let handle = Mvee.launch kernel config ~name ~body in
  Kernel.run kernel;
  (handle, Mvee.finish handle)

(* ------------------------------------------------------------------ *)

(* 1. Compromised replica issues a divergent system call. *)
let divergent_syscall ?(config = Mvee.default_config) ?(compromised = 0) () =
  let kernel = Kernel.create ~seed:config.Mvee.seed () in
  let body (env : Mvee.env) =
    for _ = 1 to 5 do
      benign_round ()
    done;
    if env.Mvee.variant = compromised then write_evil ()
    else ignore (sys (Syscall.Stat "/etc/hostname"));
    for _ = 1 to 3 do
      benign_round ()
    done
  in
  let h, outcome = run_scenario ~config ~name:"attack-divergent" kernel ~body in
  (* how far did the master run ahead of the detection point? Under
     lockstep this is 0; under VARAN it is the attack window the paper
     criticizes, and shrinking the run-ahead window shrinks it. *)
  let gap =
    match outcome.Mvee.verdict with
    | Some (Divergence.Args_mismatch { index; _ }) ->
      let master = h.Mvee.group.Context.replicas.(0) in
      (match Vec.first_opt master.Proc.threads with
      | Some th -> max 0 (th.Proc.syscall_index - index)
      | None -> 0)
    | _ -> 0
  in
  {
    scenario = "divergent-syscall";
    attack_effect = evil_effect_occurred kernel;
    detected = outcome.Mvee.verdict;
    notes =
      Printf.sprintf "compromised variant %d; master ran %d calls past detection"
        compromised gap;
  }

(* 2. Unmonitored execution with a forged authorization token. *)
let forged_token ?(config = Mvee.default_config) () =
  let kernel = Kernel.create ~seed:config.Mvee.seed () in
  let group_ref = ref None in
  let rejected_before = ref 0 in
  let body (env : Mvee.env) =
    for _ = 1 to 5 do
      benign_round ()
    done;
    if env.Mvee.variant = 0 then begin
      match !group_ref with
      | Some (g : Context.group) ->
        (* the attacker loads a guessed value into the token register and
           re-enters the kernel directly, skipping IP-MON's entry point *)
        let th = Sched.self () in
        rejected_before := (Kernel.stats kernel).Kstate.tokens_rejected;
        let guess = Rng.int64 (Rng.make 0xBADF00D) in
        let result = ref None in
        Ikb.execute g.Context.ikb th ~token:guess
          (Syscall.Open (evil_path, { Syscall.o_rdwr with create = true; append = true }))
          ~ret:(fun r -> result := Some r)
          ~fallback:(fun () -> result := None)
        (* verification fails synchronously; the call never completes
           unmonitored. The attacker gives up rather than fall through to
           the monitored path, which would expose it at the rendezvous. *)
      | None -> ()
    end;
    for _ = 1 to 3 do
      benign_round ()
    done
  in
  let h = Mvee.launch kernel config ~name:"attack-token" ~body in
  group_ref := Some h.Mvee.group;
  Kernel.run kernel;
  let outcome = Mvee.finish h in
  let rejected = (Kernel.stats kernel).Kstate.tokens_rejected > !rejected_before in
  {
    scenario = "forged-token";
    attack_effect = evil_effect_occurred kernel;
    detected = outcome.Mvee.verdict;
    notes =
      (if rejected then "IK-B verifier rejected the forged token"
       else "token attempt not observed");
  }

(* 3. RB discovery through /proc/self/maps (Section 3.6). *)
let rb_discovery ?(config = Mvee.default_config) () =
  let kernel = Kernel.create ~seed:config.Mvee.seed () in
  let found = ref false in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
    n > 0 && scan 0
  in
  let body (env : Mvee.env) =
    for _ = 1 to 3 do
      benign_round ()
    done;
    (match sys (Syscall.Open ("/proc/self/maps", Syscall.o_rdonly)) with
    | Syscall.Ok_int fd ->
      let rec read_all acc =
        match sys (Syscall.Read (fd, 4096)) with
        | Syscall.Ok_data "" -> acc
        | Syscall.Ok_data s -> read_all (acc ^ s)
        | _ -> acc
      in
      let maps = read_all "" in
      if env.Mvee.variant = 0 && (contains maps "sysv-shm" || contains maps "ipmon")
      then found := true;
      ignore (sys (Syscall.Close fd))
    | _ -> ());
    benign_round ()
  in
  let _h, outcome = run_scenario ~config ~name:"attack-maps" kernel ~body in
  {
    scenario = "rb-discovery";
    attack_effect = !found;
    detected = outcome.Mvee.verdict;
    notes = "attacker greps /proc/self/maps for the RB / IP-MON regions";
  }

(* 4. Blind guessing of the RB's address (24+ bits of entropy). *)
let rb_guessing ?(config = Mvee.default_config) ?(probes = 50_000) () =
  let kernel = Kernel.create ~seed:config.Mvee.seed () in
  let hits = ref 0 in
  let body (env : Mvee.env) =
    for _ = 1 to 3 do
      benign_round ()
    done;
    if env.Mvee.variant = 0 then begin
      let th = Sched.self () in
      let vm = th.Proc.proc.Proc.vm in
      let rng = Rng.make 0xA77AC4 in
      for _ = 1 to probes do
        (* a probe that faults would crash the replica; we just count how
           many random guesses would have found the hidden buffer *)
        let addr =
          Int64.add 0x0000_2000_0000_0000L
            (Int64.mul (Int64.of_int (Rng.int rng (1 lsl 28))) 4096L)
        in
        (* the attacker needs the RB *pointer*: only a guess of the
           buffer's base page counts (the paper's 24-bits-of-entropy
           argument) *)
        match Vm.find_region vm addr with
        | Some ({ Vm.backing = Vm.Shm_seg _; _ } as r)
          when Int64.equal r.Vm.start addr ->
          incr hits
        | _ -> ()
      done
    end;
    benign_round ()
  in
  let _h, outcome = run_scenario ~config ~name:"attack-guess" kernel ~body in
  {
    scenario = "rb-guessing";
    attack_effect = !hits > 0;
    detected = outcome.Mvee.verdict;
    notes = Printf.sprintf "%d/%d probes hit the RB" !hits probes;
  }

(* 5. Address-dependent payload vs. diversified layouts (DCL). *)
let payload_spray ?(config = Mvee.default_config) () =
  let kernel = Kernel.create ~seed:config.Mvee.seed () in
  let payload_addr = ref None in
  let body (env : Mvee.env) =
    for _ = 1 to 4 do
      benign_round ()
    done;
    let th = Sched.self () in
    let proc = th.Proc.proc in
    (* The exploit carries a hard-coded gadget address harvested from the
       compromised replica (variant 0). *)
    (if env.Mvee.variant = 0 then
       match Diversity.code_base proc with
       | Some base -> payload_addr := Some (Int64.add base 0x1234L)
       | None -> ());
    let addr =
      match !payload_addr with Some a -> a | None -> 0x400000L
    in
    if Diversity.addr_in_code proc addr then
      (* the gadget address is valid here: the payload runs *)
      write_evil ()
    else
      (* invalid address: the replica crashes with SIGSEGV *)
      Kernel.post_signal kernel proc Sigdefs.sigsegv;
    benign_round ()
  in
  let _h, outcome = run_scenario ~config ~name:"attack-spray" kernel ~body in
  {
    scenario = "payload-spray";
    attack_effect = evil_effect_occurred kernel;
    detected = outcome.Mvee.verdict;
    notes =
      (if config.Mvee.diversity.Diversity.dcl then "disjoint code layouts"
       else "identical layouts (diversity disabled)");
  }

let all_scenarios ?(config = Mvee.default_config) () =
  [
    divergent_syscall ~config ();
    forged_token ~config ();
    rb_discovery ~config ();
    rb_guessing ~config ();
    payload_spray ~config ();
  ]
