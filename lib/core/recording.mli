(** Versioned binary recordings of a replicated run (deployable
    record/replay, after rr): the master's full replicated stream —
    syscalls with normalized args and results, lock-order events, signal
    deliveries and ring-flush boundaries — captured live through the
    {!Record_log} sink and serialized with the {!Remon_kernel.Syswire}
    codec.

    File layout (format version 1):
    {v
    magic   "RMRC"                          4 bytes
    version u8 = 1
    header  backend / nreplicas / seed / level / on_failure / faults /
            workload (strings via the CLI's converters)
    events  uint count, then per event: u8 tag + payload
    trailer verdict (class + rendered, optional) then the MD5 of every
            preceding byte; no trailing bytes allowed
    v}

    Versioning policy: the magic never changes; a reader rejects any
    version it does not know with a typed error. Within version 1 the
    syscall tag space is [Sysno.index], which is append-only. *)

open Remon_kernel

val version : int

type header = {
  backend : string;  (** {!Mvee.backend_to_string} *)
  nreplicas : int;
  seed : int;
  level : string;  (** classification level, or ["monitor-all"] *)
  on_failure : string;  (** {!Mvee.on_failure_to_string} *)
  faults : string;  (** fault plan, {!Fault.to_string} *)
  workload : string;  (** registry name; [""] for ad-hoc bodies *)
  shm_key : int;
      (** the group's SysV key — allocated from a process-global counter,
          so it must be pinned for shm traffic to replay byte-identically;
          [0] = unknown *)
}

type event =
  | Call of { rank : int; call : Syscall.call; result : Syscall.result }
      (** one replicated master call on thread [rank] *)
  | Lock of { lock_id : int; thread_rank : int }
      (** user-space lock acquisition order (Section 2.3 agent) *)
  | Signal of { rank : int; signo : int }  (** delivered/injected signal *)
  | Flush of { reason : string; count : int }  (** ring drain boundary *)

type t = { header : header; events : event array; verdict : (string * string) option }
(** [verdict = Some (class, rendered)]; [None] = clean run. *)

val equal_event : event -> event -> bool
val event_to_string : event -> string

(* {1 Serialization} *)

val to_string : t -> string
val of_string : string -> (t, Syswire.error) result
(** Total: malformed input — truncation, bit flips, bad tags, trailing
    bytes, checksum mismatch — yields [Error], never an exception. *)

val to_file : t -> string -> unit
(** Atomic (tmp + rename) write. *)

val of_file : string -> (t, Syswire.error) result

val with_workload : t -> string -> t

(* {1 Digests} *)

val stream_digest : t -> string
(** MD5 (hex) over the serialized event stream alone — header-independent,
    so the same execution recorded under different labels compares equal. *)

val prefix_digests : t -> string array
(** [n+1] chained digests; element [i] covers events [0..i-1]. Element [n]
    distinguishes any two streams that differ anywhere before [n], which
    makes prefix agreement monotone — the property bisection searches. *)

(* {1 Live capture} *)

type builder

val builder : header -> builder
val record : builder -> event -> unit
val event_count : builder -> int

val attach : builder -> Record_log.t -> unit
(** Install the builder as the log's recording sink. *)

val detach : builder -> Record_log.t -> unit

val finish : builder -> verdict:(string * string) option -> t
