(* Shared state of one replica set ("group"): the monitors, the replication
   machinery, the divergence verdict, and the recovery-policy state. Wired
   up by [Mvee]. *)

open Remon_kernel
open Remon_sim

type slave_wait = Wait_auto | Wait_spin_only | Wait_futex_only

(* What happens when a non-master replica diverges, crashes or stalls.
   [Kill_group] is the paper's behavior: any fault is treated as an attack
   and the whole replica set dies. The other two trade some security margin
   for availability: the faulty replica is detached and the group continues
   degraded (the master keeps serving I/O); [Respawn] additionally replays
   the record log to bring a fresh replica back into the group, with
   exponential backoff and a bounded respawn budget. *)
type failure_policy =
  | Kill_group
  | Quarantine
  | Respawn of { max_respawns : int; backoff_ns : Vtime.t }

type mode = {
  use_token : bool; (* IK-B authorization (off in the VARAN baseline) *)
  lockstep : bool; (* CP monitor enforces lockstep for monitored calls *)
  crash_on_mismatch : bool; (* IP-MON slaves crash intentionally on divergence *)
  per_call_condvar : bool;
      (* Section 3.7 optimization: one condition variable per RB record.
         When off (ablation), every publish pays a FUTEX_WAKE. *)
  slave_wait : slave_wait;
      (* Section 3.7: spin for calls predicted non-blocking, condvar
         otherwise. The ablations force one strategy. *)
  runahead_window : int option;
      (* how many unconsumed records the master may be ahead of the
         slowest slave. [None] = unbounded (VARAN's default); the paper
         wonders aloud what shrinking this window costs - the ablation
         bench answers it. *)
  ring_batch : int;
      (* io_uring-style submission ring: how many completed policy-exempt
         records the master accumulates before draining them into the RB
         in one rendezvous. 1 = ring bypassed, per-record publishes (the
         paper's behavior); the ring ablation sweeps this. *)
  ring_flush_ns : Vtime.t;
      (* ring flush deadline: a partial batch drains this long after its
         first record was submitted, bounding slave staleness *)
}

let remon_mode =
  {
    use_token = true;
    lockstep = true;
    crash_on_mismatch = true;
    per_call_condvar = true;
    slave_wait = Wait_auto;
    runahead_window = None;
    ring_batch = 1;
    ring_flush_ns = Vtime.us 50;
  }

(* VARAN-like: everything replicated in-process, no lockstep, no tokens. *)
let varan_mode =
  { remon_mode with use_token = false; lockstep = false }

type group = {
  kernel : Kernel.t;
  nreplicas : int;
  policy : Policy.t;
  mode : mode;
  rb : Replication_buffer.t;
  file_map : File_map.t;
  epoll_map : Epoll_map.t;
  ikb : Ikb.t;
  shm_key : int; (* SysV key GHUMVEE recognizes as the RB segment *)
  mutable ring : Syscall_ring.t option;
      (* batched submission ring; Some iff [mode.ring_batch] > 1 *)
  mutable replicas : Proc.process array; (* index = variant *)
  mutable divergence : Divergence.t option;
  mutable shutdown : bool;
  mutable ipmon_calls : int;
  mutable ipmon_fallbacks : int;
  (* recovery-policy state *)
  quarantined : bool array; (* per variant; index 0 never set *)
  mutable replica_fault_handler : (variant:int -> Divergence.t -> bool) option;
      (* installed by [Mvee]; returns true when the fault was absorbed
         (replica quarantined / respawn scheduled) instead of escalating *)
  mutable quarantines : int;
  mutable respawns : int;
  mutable watchdog_retries : int;
  mutable degraded_since : Vtime.t option; (* start of current degraded span *)
  mutable degraded_ns : Vtime.t; (* completed degraded spans *)
  mutable caught_up_at : Vtime.t option;
      (* instant the last respawned replica drained the journal. The group
         is effectively whole from that point even though [rejoin] only runs
         at the master's next monitored call, so the degraded span closes
         retroactively here, not at rejoin time. *)
}

(* SysV keys at or above this value are treated as MVEE-internal (RB / file
   map) and exempt from GHUMVEE's shared-memory rejection policy. *)
let mvee_shm_key_base = 0x5EC0DE00

(* Every verdict funnels through here (first one wins), so this is also
   the single emission point for divergence events in the trace. [key] is
   the precomputed metric key ("<cat>.<name>"): the concatenation happens
   once at module init, not per event. *)
let obs_instant ?ts g ~cat ~name ~key args =
  match Kernel.obs g.kernel with
  | None -> ()
  | Some o ->
    let ts = match ts with Some t -> t | None -> Kernel.now g.kernel in
    Remon_obs.Trace.instant o.Remon_obs.Obs.trace ~ts ~cat ~name ~pid:0 ~tid:0
      args;
    Remon_obs.Metrics.incr o.Remon_obs.Obs.metrics key

let key_divergence_verdict = "divergence.verdict"
let key_recovery_quarantine = "recovery.quarantine"
let key_recovery_rejoin = "recovery.rejoin"

let set_divergence g v =
  if g.divergence = None then begin
    g.divergence <- Some v;
    obs_instant g ~cat:"divergence" ~name:"verdict" ~key:key_divergence_verdict
      [ ("verdict", Remon_obs.Trace.Str (Divergence.to_string v)) ]
  end

let replica_variant (p : Proc.process) =
  match p.Proc.replica_info with
  | Some { Proc.variant_index; _ } -> Some variant_index
  | None -> None

(* ------------------------------------------------------------------ *)
(* Recovery-policy state *)

let is_quarantined g variant =
  variant >= 0 && variant < Array.length g.quarantined && g.quarantined.(variant)

let active_count g =
  let n = ref 0 in
  Array.iter (fun q -> if not q then incr n) g.quarantined;
  !n

let active_variants g =
  List.filter (fun v -> not g.quarantined.(v)) (List.init g.nreplicas Fun.id)

(* Mark [variant] quarantined and start the degraded clock. The caller is
   responsible for the kernel-side consequences (killing the process,
   purging rendezvous state, deactivating RB streams). *)
let quarantine g ~variant =
  if variant > 0 && not g.quarantined.(variant) then begin
    g.quarantined.(variant) <- true;
    g.quarantines <- g.quarantines + 1;
    obs_instant g ~cat:"recovery" ~name:"quarantine"
      ~key:key_recovery_quarantine
      [ ("variant", Remon_obs.Trace.Int variant) ];
    if g.degraded_since = None then
      g.degraded_since <- Some (Kernel.now g.kernel)
  end

(* A respawned replica drained the record-log journal at [at]: from that
   instant the group computes in full strength again, even though the
   lockstep rejoin only happens at the master's next monitored call. *)
let note_caught_up g ~at =
  match g.caught_up_at with
  | Some t when Vtime.(t >= at) -> ()
  | _ -> g.caught_up_at <- Some at

(* A respawned replica finished its replay and re-entered the group. The
   degraded span closes at the recorded caught-up instant (when one exists
   and is sane), not at rejoin time: the gap between journal drain and the
   master's next monitored call is not degraded service. *)
let rejoin g ~variant =
  if g.quarantined.(variant) then begin
    g.quarantined.(variant) <- false;
    let close_at =
      match g.caught_up_at with
      | Some t when Vtime.(t <= Kernel.now g.kernel) -> t
      | _ -> Kernel.now g.kernel
    in
    obs_instant ~ts:close_at g ~cat:"recovery" ~name:"rejoin"
      ~key:key_recovery_rejoin
      [ ("variant", Remon_obs.Trace.Int variant) ];
    if active_count g = g.nreplicas then begin
      (match g.degraded_since with
      | Some t0 when Vtime.(close_at > t0) ->
        g.degraded_ns <- Vtime.add g.degraded_ns (Vtime.sub close_at t0)
      | _ -> ());
      g.degraded_since <- None;
      g.caught_up_at <- None
    end
  end

(* Total degraded time, closing any still-open span at [until]. *)
let degraded_total g ~until =
  match g.degraded_since with
  | Some t0 when Vtime.(until > t0) -> Vtime.add g.degraded_ns (Vtime.sub until t0)
  | _ -> g.degraded_ns

(* Route a non-master replica fault to the recovery policy. Returns true
   when it was absorbed; false means the caller must escalate (the paper's
   kill-the-group verdict). *)
let replica_fault g ~variant verdict =
  match g.replica_fault_handler with
  | Some f -> f ~variant verdict
  | None -> false
