(* Shadow mapping between fds and epoll user data (Section 3.9).

   Diversified replicas register different pointer values for the same
   logical descriptor. The monitors therefore replicate epoll results in
   terms of fds: the master's (user_data, events) pairs are mapped back to
   fds using the master's registrations, and each slave maps those fds
   forward to its own user data.

   Events whose user data the master never registered cannot be expressed
   as an fd. They travel in logical form as the master's original cookie
   ([Lopaque]) — replicas registered such data identically or not at all —
   instead of a fabricated registration. An event that still cannot be
   translated for a slave (no registration for the fd) is dropped and
   counted in [untranslatable] rather than invented. *)

type logical =
  | Lfd of int (* translated via the master's registrations *)
  | Lopaque of int64 (* master's raw user data, passed through *)

type t = {
  fwd : (int, int64) Hashtbl.t array; (* variant -> (fd -> user_data) *)
  rev : (int64, int) Hashtbl.t array; (* variant -> (user_data -> fd) *)
  mutable untranslatable : int; (* events dropped for lack of a mapping *)
}

let create ~nreplicas =
  {
    fwd = Array.init nreplicas (fun _ -> Hashtbl.create 32);
    rev = Array.init nreplicas (fun _ -> Hashtbl.create 32);
    untranslatable = 0;
  }

let untranslatable t = t.untranslatable

let register t ~variant ~fd ~user_data =
  (* drop any stale reverse binding for this fd *)
  (match Hashtbl.find_opt t.fwd.(variant) fd with
  | Some old -> Hashtbl.remove t.rev.(variant) old
  | None -> ());
  Hashtbl.replace t.fwd.(variant) fd user_data;
  Hashtbl.replace t.rev.(variant) user_data fd

let unregister t ~variant ~fd =
  match Hashtbl.find_opt t.fwd.(variant) fd with
  | Some ud ->
    Hashtbl.remove t.fwd.(variant) fd;
    Hashtbl.remove t.rev.(variant) ud
  | None -> ()

let user_data_of t ~variant ~fd = Hashtbl.find_opt t.fwd.(variant) fd
let fd_of t ~variant ~user_data = Hashtbl.find_opt t.rev.(variant) user_data

(* Master's epoll_wait result -> logical events. Unregistered cookies pass
   through opaquely; a negative cookie (which the int64 wire encoding below
   cannot carry opaquely) is dropped and counted. *)
let to_logical t events =
  List.filter_map
    (fun (user_data, ev) ->
      match fd_of t ~variant:0 ~user_data with
      | Some fd -> Some (Lfd fd, ev)
      | None ->
        if Int64.compare user_data 0L >= 0 then Some (Lopaque user_data, ev)
        else begin
          t.untranslatable <- t.untranslatable + 1;
          None
        end)
    events

(* Logical events -> [variant]'s (user_data, events) list. An [Lfd] the
   variant never registered is dropped (and counted), never fabricated. *)
let to_variant t ~variant logical =
  List.filter_map
    (fun (l, ev) ->
      match l with
      | Lfd fd -> (
        match user_data_of t ~variant ~fd with
        | Some ud -> Some (ud, ev)
        | None ->
          t.untranslatable <- t.untranslatable + 1;
          None)
      | Lopaque raw -> Some (raw, ev))
    logical

(* Wire form for the replication buffer's int64 slots: fds are small
   non-negative ints, so non-negative values carry [Lfd] directly and
   opaque cookies (always >= 0, see [to_logical]) are complemented into
   the negative range. *)
let encode = function
  | Lfd fd -> Int64.of_int fd
  | Lopaque raw -> Int64.lognot raw

let decode v =
  if Int64.compare v 0L >= 0 then Lfd (Int64.to_int v)
  else Lopaque (Int64.lognot v)
