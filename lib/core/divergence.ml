(* Divergence verdicts: why an MVEE run was terminated (or how an attack
   was detected). *)

open Remon_kernel

type detector = By_ghumvee | By_ipmon | By_ikb

type t =
  | Args_mismatch of {
      rank : int; (* thread rank at which the divergence appeared *)
      index : int; (* syscall index on that rank *)
      expected : string; (* rendering of the majority/master call *)
      got : string;
      variant : int;
      detector : detector;
    }
  | Sequence_mismatch of {
      rank : int;
      index : int;
      calls : string list; (* what each variant issued *)
    }
  | Rendezvous_timeout of { rank : int; index : int; missing : int list }
  | Replica_crash of { variant : int; signal : int }
  | Exit_mismatch of { codes : (int * int) list (* variant, code *) }
  | Token_violation of { variant : int; call : string }
  | Shared_memory_rejected of { variant : int }

let detector_to_string = function
  | By_ghumvee -> "GHUMVEE"
  | By_ipmon -> "IP-MON"
  | By_ikb -> "IK-B"

let to_string = function
  | Args_mismatch { rank; index; expected; got; variant; detector } ->
    Printf.sprintf
      "argument divergence on thread rank %d at syscall %d (variant %d): expected %s, got %s [detected by %s]"
      rank index variant expected got
      (detector_to_string detector)
  | Sequence_mismatch { rank; index; calls } ->
    Printf.sprintf "syscall sequence divergence on rank %d at index %d: [%s]"
      rank index (String.concat "; " calls)
  | Rendezvous_timeout { rank; index; missing } ->
    Printf.sprintf
      "rendezvous timeout on rank %d at syscall %d: variants [%s] never arrived"
      rank index
      (String.concat ", " (List.map string_of_int missing))
  | Replica_crash { variant; signal } ->
    Printf.sprintf "replica %d crashed with %s" variant (Sigdefs.to_string signal)
  | Exit_mismatch { codes } ->
    Printf.sprintf "replicas exited with different codes: %s"
      (String.concat ", "
         (List.map (fun (v, c) -> Printf.sprintf "v%d=%d" v c) codes))
  | Token_violation { variant; call } ->
    Printf.sprintf
      "authorization-token violation by variant %d on %s (unmonitored execution denied)"
      variant call
  | Shared_memory_rejected { variant } ->
    Printf.sprintf "bi-directional shared memory request rejected (variant %d)" variant

(* Pretty-printer for syscalls in verdicts. *)
let render_call (c : Syscall.call) = Format.asprintf "%a" Syscall.pp_call c

(* Verdict class: the constructor alone, without its payload. Recordings
   store it next to the rendered verdict so replay-under-a-different-
   backend can check class agreement (payloads legitimately differ across
   detectors). *)
let class_of = function
  | Args_mismatch _ -> "args-mismatch"
  | Sequence_mismatch _ -> "sequence-mismatch"
  | Rendezvous_timeout _ -> "rendezvous-timeout"
  | Replica_crash _ -> "replica-crash"
  | Exit_mismatch _ -> "exit-mismatch"
  | Token_violation _ -> "token-violation"
  | Shared_memory_rejected _ -> "shared-memory-rejected"

(* ------------------------------------------------------------------ *)
(* Replay divergence (time-travel bisection report) *)

type replay_divergence = {
  first_rank : int;  (* first stream index where the digests fork *)
  total_recorded : int;
  total_replayed : int;
  thread_rank : int option;  (* thread rank of the divergent record *)
  syscall : string option;  (* rendered divergent call, when it is one *)
  recorded_ev : string option;  (* rendered events at [first_rank] *)
  replayed_ev : string option;
  context : (int * string option * string option) list;
      (* +/-K window around the fork: index, recorded, replayed *)
}

let replay_divergence_to_string d =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "first divergent record: %d (recorded stream %d records, replayed %d)\n"
    d.first_rank d.total_recorded d.total_replayed;
  (match d.thread_rank with
  | Some r -> Printf.bprintf b "thread rank: %d\n" r
  | None -> ());
  (match d.syscall with
  | Some c -> Printf.bprintf b "syscall: %s\n" c
  | None -> ());
  let cell = function Some s -> s | None -> "<end of stream>" in
  List.iter
    (fun (i, rec_ev, rep_ev) ->
      let marker = if i = d.first_rank then ">" else " " in
      if rec_ev = rep_ev then
        Printf.bprintf b "%s %6d  %s\n" marker i (cell rec_ev)
      else begin
        Printf.bprintf b "%s %6d  recorded: %s\n" marker i (cell rec_ev);
        Printf.bprintf b "%s %6s  replayed: %s\n" marker "" (cell rep_ev)
      end)
    d.context;
  Buffer.contents b
