(** Multi-host world: conservative-parallel (PDES) shard runner.

    Each simulated host owns a whole kernel; hosts interact only through
    typed inter-host links with a fixed positive latency (the lookahead).
    [run] drives all hosts in barrier-synchronous conservative rounds —
    sequentially with [shards = 1], on OCaml 5 domains otherwise — and the
    round structure is identical either way, so every observable outcome
    (digests, recordings, traces) is byte-identical at any shard count. *)

open Remon_kernel
open Remon_sim

type t

val create :
  ?link_latency:Vtime.t -> n:int -> mk:(int -> Kernel.t) -> unit -> t
(** [create ~n ~mk ()] builds [n] hosts with a full mesh of links; host
    [i]'s kernel is [mk i]. [link_latency] defaults to the cost model's
    inter-host latency ({!Cost_model.link_latency} of the default model)
    and must be positive — it is the conservative lookahead. *)

val n_hosts : t -> int
val kernel : t -> int -> Kernel.t
val hostnet : t -> int -> Hostnet.t

val route : t -> port:int -> host:int -> unit
(** Statically declare that [port] is served from [host]; connects from
    every other host are carried over the links. Routing must be set up
    before [run]. *)

val run : ?shards:int -> t -> unit
(** Runs every host to completion. [shards] is clamped to the host count;
    [shards = 1] (default) is the sequential reference execution. *)

val rounds : t -> int
(** Conservative rounds executed so far (a parallelism diagnostic). *)

val link_stats : t -> (int * int * int * int) list
(** Per-link [(src, dst, messages, data_bytes)] tallies. *)
