(** Multi-host world: conservative-parallel (PDES) shard runner.

    Each simulated host owns a whole kernel; hosts interact only through
    typed inter-host links with a fixed positive latency (the lookahead).
    [run] drives all hosts in barrier-synchronous conservative rounds —
    sequentially with [shards = 1], on OCaml 5 domains otherwise — and the
    round structure is identical either way, so every observable outcome
    (digests, recordings, traces) is byte-identical at any shard count,
    and identical between the two lookahead modes. *)

open Remon_kernel
open Remon_sim

type t

type mode =
  | Fixed
      (** single-latency lookahead over all host pairs — the reference
          algorithm and the conservative-safety oracle *)
  | Adaptive
      (** per-pair earliest-output guarantees: bounds advance past a
          single link latency when inbound links are provably idle
          (default) *)

val create :
  ?link_latency:Vtime.t -> n:int -> mk:(int -> Kernel.t) -> unit -> t
(** [create ~n ~mk ()] builds [n] hosts; host [i]'s kernel is [mk i].
    Links are created lazily on first use (no eager n^2 mesh).
    [link_latency] defaults to the cost model's inter-host latency
    ({!Cost_model.link_latency} of the default model) and must be
    positive — it is the conservative lookahead. *)

val n_hosts : t -> int
val kernel : t -> int -> Kernel.t
val hostnet : t -> int -> Hostnet.t

val route : ?initiators:int list -> t -> port:int -> host:int -> unit
(** Statically declare that [port] is served from [host]; connects from
    initiator hosts are carried over the links. [initiators] is the set of
    hosts that may ever connect to the port (default: every host) —
    narrowing it is what lets adaptive lookahead decouple unrelated host
    groups. Routing must be set up before [run]. *)

val run : ?shards:int -> ?mode:mode -> t -> unit
(** Runs every host to completion. [shards] is clamped to the host count;
    [shards = 1] (default) is the sequential reference execution. [mode]
    defaults to [Adaptive]; outcomes are byte-identical in either mode,
    only the round partitioning differs. *)

val rounds : t -> int
(** Conservative rounds executed so far (a parallelism diagnostic). *)

val link_stats : t -> (int * int * int * int) list
(** Per-link [(src, dst, messages, data_bytes)] tallies for every link
    created so far, sorted by [(src, dst)]. *)
