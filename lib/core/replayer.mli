(** Offline replay of {!Recording} files: re-executes the recorded
    configuration in a fresh kernel (optionally under a different backend —
    a first-class mode), compares the replayed stream against the
    recording, and on a fork runs time-travel divergence bisection:
    binary-search over chained prefix digests for the first record where
    the replica's visible stream forks from the recorded master stream. *)

type report = {
  recorded : Recording.t;
  replayed : Recording.t;
  identical : bool;
      (** byte-identical serializations — the same-backend replay oracle *)
  verdict_class_agrees : bool;
      (** verdict-class equality — the cross-backend replay oracle *)
  divergence : Divergence.replay_divergence option;
      (** bisection result when the event streams fork; [None] when the
          streams are identical (even if the verdicts differ) *)
}

val config_of_header :
  ?backend:Mvee.backend -> Recording.header -> (Mvee.config, string) result
(** Reconstruct the run configuration a recording describes. [?backend]
    overrides the recorded backend (replay-under-a-different-backend).
    Recording is re-enabled so the replay captures its own stream. *)

val bisect :
  ?context:int ->
  recorded:Recording.t ->
  replayed:Recording.t ->
  unit ->
  Divergence.replay_divergence option
(** Binary search over the chained prefix digests of both streams for the
    first divergent record; [None] when the streams are identical.
    [?context] is the half-width K of the report's ±K-record window
    (default 3). *)

val replay :
  ?backend:Mvee.backend ->
  ?context:int ->
  ?obs:Remon_obs.Obs.t ->
  Recording.t ->
  body:(Mvee.env -> unit) ->
  (report, string) result
(** Re-execute the recording's configuration with [body] (the workload the
    recording names; the caller resolves it — core cannot depend on the
    workload registry) and compare. [?obs] receives the replay run's
    structured trace plus [replay.*] instants marking begin/verdict/fork. *)
