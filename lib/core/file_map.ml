(* The IP-MON file map (Section 3.6).

   GHUMVEE arbitrates every fd-lifecycle call, so it maintains one byte of
   metadata per file descriptor: the descriptor's type and whether it is in
   non-blocking mode. Replicas map a read-only copy; IP-MON consults it to
   apply conditional policies (socket vs non-socket) and to predict whether
   an unmonitored call can block (spin-wait vs condition variable). *)

open Remon_kernel

type t = {
  classes : Proc.fd_class option array; (* indexed by fd; None = closed *)
  nonblocking : bool array;
  mutable updates : int; (* GHUMVEE write generation, for tests *)
  mutable high_water : int;
      (* highest fd ever populated; bounds the clear in [sync_from_process]
         so a full-table refresh costs O(live fds), not O(max_fds) *)
}

type Shm.payload += File_map_payload of t

let max_fds = 4096 (* one page of one-byte records *)

let create () =
  {
    classes = Array.make max_fds None;
    nonblocking = Array.make max_fds false;
    updates = 0;
    high_water = -1;
  }

let in_range fd = fd >= 0 && fd < max_fds

let set t ~fd ~cls ~nonblocking =
  if in_range fd then begin
    if fd > t.high_water then t.high_water <- fd;
    t.classes.(fd) <- Some cls;
    t.nonblocking.(fd) <- nonblocking;
    t.updates <- t.updates + 1
  end

let clear t ~fd =
  if in_range fd then begin
    t.classes.(fd) <- None;
    t.nonblocking.(fd) <- false;
    t.updates <- t.updates + 1
  end

let set_nonblocking t ~fd v =
  if in_range fd then begin
    t.nonblocking.(fd) <- v;
    t.updates <- t.updates + 1
  end

let class_of t ~fd = if in_range fd then t.classes.(fd) else None

let is_socket t ~fd =
  match class_of t ~fd with Some Proc.Fd_socket -> true | _ -> false

(* Non-blocking descriptors always return immediately; blocking ones may
   block the call (MAYBE_BLOCKING in Listing 1). *)
let may_block t ~fd =
  if in_range fd then
    match t.classes.(fd) with
    | None -> false
    | Some _ -> not t.nonblocking.(fd)
  else false

(* Refreshes the map from the master replica's actual fd table; called by
   GHUMVEE after it arbitrates fd-lifecycle calls. *)
let sync_from_process t (p : Proc.process) =
  if t.high_water >= 0 then begin
    Array.fill t.classes 0 (t.high_water + 1) None;
    Array.fill t.nonblocking 0 (t.high_water + 1) false
  end;
  t.high_water <- -1;
  Hashtbl.iter
    (fun fd (d : Proc.desc) ->
      if in_range fd then begin
        if fd > t.high_water then t.high_water <- fd;
        t.classes.(fd) <- Some (Proc.classify_desc d);
        t.nonblocking.(fd) <- d.nonblock
      end)
    p.fds;
  t.updates <- t.updates + 1
