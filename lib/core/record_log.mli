(** Shared log of user-space synchronization events (Section 2.3): the
    master appends lock-acquisition events; each slave consumes them in
    order to replay the master's acquisition order.

    Under the Respawn recovery policy the log also carries a master-side
    syscall journal — one (normalized call, result) record per replicated
    call per thread rank — that a freshly respawned replica replays to
    resynchronize with the group. *)

open Remon_kernel

type event = { lock_id : int; thread_rank : int }

(** One replicated master call, as the journal stores it. *)
type callrec = { jcall : Syscall.call; jresult : Syscall.result }

(** Live capture sink ({!Recording} installs one): sees every replicated
    master call, lock-order event, injected signal and ring-flush boundary
    as it happens, independent of whether the respawn journal is enabled. *)
type sink = {
  sink_call : rank:int -> call:Syscall.call -> result:Syscall.result -> unit;
  sink_lock : lock_id:int -> thread_rank:int -> unit;
  sink_signal : rank:int -> signo:int -> unit;
  sink_flush : reason:string -> count:int -> unit;
}

type t

val create : nreplicas:int -> t
val length : t -> int
val append : t -> lock_id:int -> thread_rank:int -> unit

val peek : t -> variant:int -> event option
(** Next unconsumed event for [variant], if the master has produced it. *)

val advance : t -> variant:int -> unit

val reset_variant : t -> variant:int -> unit
(** Rewind [variant]'s consumption position to the beginning; a respawned
    replica re-consumes the whole lock-order history. *)

(** {1 Master syscall journal (Respawn replay)} *)

val enable_journal : t -> unit
(** Start journaling replicated master calls. Off by default: the journal
    costs memory proportional to the run, so [Mvee] enables it only under
    the [Respawn] recovery policy. *)

val set_on_journal_append : t -> (rank:int -> unit) -> unit
(** Callback fired after each journal append; GHUMVEE uses it to feed
    fresh records to replaying replicas waiting at the head of a stream. *)

val journal_append :
  t -> rank:int -> call:Syscall.call -> result:Syscall.result -> unit
(** No-op unless journaling is enabled. *)

val journal_length : t -> rank:int -> int
val journal_nth : t -> rank:int -> int -> callrec option

(** {1 Recording sink} *)

val set_recorder : t -> sink -> unit
(** Install the live-capture sink. At most one; the last install wins. *)

val clear_recorder : t -> unit

val note_signal : t -> rank:int -> signo:int -> unit
(** Feed a delivered/injected signal to the recorder. No-op without one. *)

val note_flush : t -> reason:string -> count:int -> unit
(** Feed a ring-flush boundary to the recorder. No-op without one. *)
