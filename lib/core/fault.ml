(* Deterministic fault injection.

   A fault plan is a list of specs: each names a fault kind, a target
   variant and a trigger point — a per-thread syscall index for kernel-path
   faults, or the n-th appended replication-buffer record for RB faults.
   The plan is installed into the kernel's syscall dispatch hook and the
   RB's tamper hook; the monitors (GHUMVEE / IP-MON / IK-B) then detect the
   injected failures through their normal code paths, which is the point:
   the recovery layer is exercised end to end, not short-circuited.

   Everything is deterministic. Explicit plans fire at fixed points; the
   only randomness (argument perturbation, generated plans) flows from a
   seeded SplitMix64 stream, so identical seeds reproduce identical
   outcomes — this is what the determinism tests pin down. *)

open Remon_kernel
open Remon_sim
open Remon_util

type kind =
  | Crash of int (* the replica dies as if killed by this signal *)
  | Corrupt_args (* the kernel captures perturbed syscall arguments *)
  | Delay of Vtime.t (* the arrival stalls before routing (rendezvous stall) *)
  | Drop_rb (* the master's RB record loses its payload *)
  | Corrupt_rb (* the master's RB record is tampered with *)
  | Sock_err of Errno.t (* transient socket error (ECONNRESET/EAGAIN) *)

type spec = {
  kind : kind;
  variant : int; (* target replica; ignored for RB faults (they hit a record) *)
  at : int; (* syscall index (kernel faults) / n-th RB record (RB faults) *)
  mutable fired : bool;
}

type plan = spec list

type t = {
  plan : plan;
  rng : Rng.t;
  mutable injected : int;
  mutable rb_records_seen : int;
  mutable kernel : Kernel.t option;
      (* set by [install]; RB-path injections trace through its obs sink
         (kernel-path injections are traced by the dispatcher itself) *)
}

let spec ~kind ~variant ~at = { kind; variant; at; fired = false }

let make ~seed plan =
  (* split off a private stream so fault perturbations cannot shift any
     other seeded decision in the run *)
  {
    plan;
    rng = Rng.make (seed lxor 0x0FA017);
    injected = 0;
    rb_records_seen = 0;
    kernel = None;
  }

let injected t = t.injected

(* ------------------------------------------------------------------ *)
(* Argument corruption *)

(* A deterministic perturbation that survives [Callinfo.normalize]: the
   monitors must see it as a genuine argument divergence. *)
let corrupt_call rng (call : Syscall.call) =
  let tag = Printf.sprintf "\xde\xad%02x" (Rng.int_in_range rng ~lo:0 ~hi:255) in
  match call with
  | Syscall.Write (fd, data) -> Syscall.Write (fd, data ^ tag)
  | Syscall.Writev (fd, chunks) -> Syscall.Writev (fd, chunks @ [ tag ])
  | Syscall.Sendto (fd, data) -> Syscall.Sendto (fd, data ^ tag)
  | Syscall.Read (fd, len) -> Syscall.Read (fd, len + 1 + Rng.int_in_range rng ~lo:0 ~hi:7)
  | _ -> Syscall.Write (1, tag) (* unrecognized shape: swap the call outright *)

(* ------------------------------------------------------------------ *)
(* Hooks *)

(* Kernel syscall-entry hook: fires kernel-path specs matching this
   thread's variant at its current syscall index. *)
let kernel_decision t (th : Proc.thread) (call : Syscall.call) =
  match th.Proc.proc.Proc.replica_info with
  | None -> Kstate.Fault_none
  | Some { Proc.variant_index = v; _ } ->
    let rec find = function
      | [] -> Kstate.Fault_none
      | s :: rest -> (
        let kernel_kind =
          match s.kind with Drop_rb | Corrupt_rb -> false | _ -> true
        in
        if s.fired || (not kernel_kind) || s.variant <> v
           || s.at <> th.Proc.syscall_index
        then find rest
        else begin
          s.fired <- true;
          t.injected <- t.injected + 1;
          match s.kind with
          | Crash sg -> Kstate.Fault_crash sg
          | Corrupt_args -> Kstate.Fault_rewrite (corrupt_call t.rng call)
          | Delay ns -> Kstate.Fault_delay ns
          | Sock_err e -> Kstate.Fault_result (Syscall.Error e)
          | Drop_rb | Corrupt_rb -> Kstate.Fault_none (* unreachable *)
        end)
    in
    find t.plan

(* RB tamper hook: fires RB specs on the n-th appended record. *)
let obs_rb_fault t ~name (e : Replication_buffer.entry) =
  match t.kernel with
  | None -> ()
  | Some kernel -> (
    match Kernel.obs kernel with
    | None -> ()
    | Some o ->
      Remon_obs.Trace.instant o.Remon_obs.Obs.trace ~ts:(Kernel.now kernel)
        ~cat:"fault" ~name ~pid:0 ~tid:0
        [ ("seq", Remon_obs.Trace.Int e.Replication_buffer.seq) ];
      Remon_obs.Metrics.incr o.Remon_obs.Obs.metrics
        (match name with
        | "droprb" -> "fault.droprb"
        | "corruptrb" -> "fault.corruptrb"
        | n -> "fault." ^ n))

let rb_tamper t (e : Replication_buffer.entry) =
  t.rb_records_seen <- t.rb_records_seen + 1;
  List.iter
    (fun s ->
      if (not s.fired) && s.at = t.rb_records_seen then
        match s.kind with
        | Drop_rb ->
          s.fired <- true;
          t.injected <- t.injected + 1;
          e.Replication_buffer.call <- None;
          obs_rb_fault t ~name:"droprb" e
        | Corrupt_rb ->
          s.fired <- true;
          t.injected <- t.injected + 1;
          e.Replication_buffer.call <-
            Option.map (corrupt_call t.rng) e.Replication_buffer.call;
          obs_rb_fault t ~name:"corruptrb" e
        | Crash _ | Corrupt_args | Delay _ | Sock_err _ -> ())
    t.plan

let install t ~kernel ~group_id ~rb =
  t.kernel <- Some kernel;
  Kernel.register_fault_hook kernel ~group_id (fun th call ->
      kernel_decision t th call);
  rb.Replication_buffer.tamper <- Some (fun e -> rb_tamper t e)

(* A fresh, unfired copy of a plan: fleet respawns reuse the same plan
   across instance generations, and [fired] flags must not leak between
   them. *)
let copy_plan plan = List.map (fun s -> { s with fired = false }) plan

(* ------------------------------------------------------------------ *)
(* Generated plans (the resilience bench) *)

(* Scatter faults over the first [horizon] syscalls of the non-master
   variants with probability [rate] per index. Deterministic in [seed]. *)
let random_plan ~seed ~rate ~horizon ~nreplicas =
  let rng = Rng.make (seed * 0x9E3779B1) in
  let specs = ref [] in
  for at = 1 to horizon do
    if Rng.float rng < rate then begin
      (* with no slaves to pick on, the fault lands on the one process
         there is — the no-redundancy baseline *)
      let variant =
        if nreplicas > 1 then Rng.int_in_range rng ~lo:1 ~hi:(nreplicas - 1)
        else 0
      in
      let kind =
        match Rng.int_in_range rng ~lo:0 ~hi:4 with
        | 0 -> Crash Sigdefs.sigsegv
        | 1 -> Corrupt_args
        | 2 -> Delay (Vtime.ms (Rng.int_in_range rng ~lo:1 ~hi:40))
        | 3 -> Sock_err (if Rng.bool rng then Errno.ECONNRESET else Errno.EAGAIN)
        | _ -> Corrupt_rb
      in
      let s =
        match kind with
        | Corrupt_rb | Drop_rb -> spec ~kind ~variant:0 ~at
        | _ -> spec ~kind ~variant ~at
      in
      specs := s :: !specs
    end
  done;
  List.rev !specs

(* Fleet chaos plans differ from [random_plan] in one crucial way: the
   master is a legitimate target. A master crash takes the whole instance
   down — exactly the event the fleet controller must route around and
   respawn from — so the kind mix is biased towards crashes and every
   variant (0 included) can be hit. Deterministic in [seed]. *)
let chaos_plan ~seed ~rate ~horizon ~nreplicas =
  let rng = Rng.make ((seed * 0x9E3779B1) lxor 0xC0A5) in
  let specs = ref [] in
  for at = 1 to horizon do
    if Rng.float rng < rate then begin
      let variant = Rng.int_in_range rng ~lo:0 ~hi:(max 0 (nreplicas - 1)) in
      let kind =
        match Rng.int_in_range rng ~lo:0 ~hi:3 with
        | 0 | 1 -> Crash Sigdefs.sigsegv
        | 2 -> Delay (Vtime.ms (Rng.int_in_range rng ~lo:1 ~hi:10))
        | _ -> Sock_err Errno.ECONNRESET
      in
      specs := spec ~kind ~variant ~at :: !specs
    end
  done;
  List.rev !specs

(* ------------------------------------------------------------------ *)
(* Plan syntax (the --faults CLI flag)

   Comma-separated specs:  KIND@AT[:VARIANT][=PARAM]

     crash@12:1        replica 1 segfaults at its 12th syscall
     kill@12:1         SIGKILL instead of SIGSEGV
     args@25:1         replica 1's 25th call is captured corrupted
     delay@30:1=5ms    replica 1 stalls 5 ms before its 30th call
     sockerr@40:1      replica 1's 40th call fails with ECONNRESET
     again@40:1        ... with EAGAIN
     droprb@5          the 5th RB record loses its payload
     corruptrb@9       the 9th RB record is tampered with *)

let kind_to_string = function
  | Crash sg when sg = Sigdefs.sigkill -> "kill"
  | Crash _ -> "crash"
  | Corrupt_args -> "args"
  | Delay _ -> "delay"
  | Drop_rb -> "droprb"
  | Corrupt_rb -> "corruptrb"
  | Sock_err Errno.EAGAIN -> "again"
  | Sock_err _ -> "sockerr"

let spec_to_string s =
  let base = Printf.sprintf "%s@%d" (kind_to_string s.kind) s.at in
  let with_variant =
    match s.kind with
    | Drop_rb | Corrupt_rb -> base
    | _ -> Printf.sprintf "%s:%d" base s.variant
  in
  match s.kind with
  | Delay ns ->
    Printf.sprintf "%s=%dus" with_variant (ns / 1_000)
  | _ -> with_variant

let to_string plan = String.concat "," (List.map spec_to_string plan)

let parse_spec str =
  let str = String.trim str in
  let fail msg = Error (Printf.sprintf "fault spec %S: %s" str msg) in
  match String.index_opt str '@' with
  | None -> fail "expected KIND@AT[:VARIANT][=PARAM]"
  | Some i -> (
    let kind_s = String.sub str 0 i in
    let rest = String.sub str (i + 1) (String.length str - i - 1) in
    let rest, param =
      match String.index_opt rest '=' with
      | None -> (rest, None)
      | Some j ->
        ( String.sub rest 0 j,
          Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
    in
    let at_s, variant_s =
      match String.index_opt rest ':' with
      | None -> (rest, None)
      | Some j ->
        ( String.sub rest 0 j,
          Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
    in
    match int_of_string_opt at_s with
    | None -> fail "bad trigger index"
    | Some at -> (
      let variant =
        match variant_s with
        | None -> Ok 1
        | Some v -> (
          match int_of_string_opt v with
          | Some v when v >= 0 -> Ok v
          | _ -> Error "bad variant")
      in
      match variant with
      | Error msg -> fail msg
      | Ok variant -> (
        let delay_of p =
          (* "5ms" / "200us" / plain nanoseconds *)
          let num suffix =
            let n = String.length p and m = String.length suffix in
            if n > m && String.sub p (n - m) m = suffix then
              int_of_string_opt (String.sub p 0 (n - m))
            else None
          in
          match (num "ms", num "us", int_of_string_opt p) with
          | Some v, _, _ -> Some (Vtime.ms v)
          | None, Some v, _ -> Some (Vtime.us v)
          | None, None, Some v -> Some (Vtime.ns v)
          | None, None, None -> None
        in
        match kind_s with
        | "crash" -> Ok (spec ~kind:(Crash Sigdefs.sigsegv) ~variant ~at)
        | "kill" -> Ok (spec ~kind:(Crash Sigdefs.sigkill) ~variant ~at)
        | "args" -> Ok (spec ~kind:Corrupt_args ~variant ~at)
        | "sockerr" -> Ok (spec ~kind:(Sock_err Errno.ECONNRESET) ~variant ~at)
        | "again" -> Ok (spec ~kind:(Sock_err Errno.EAGAIN) ~variant ~at)
        | "droprb" -> Ok (spec ~kind:Drop_rb ~variant:0 ~at)
        | "corruptrb" -> Ok (spec ~kind:Corrupt_rb ~variant:0 ~at)
        | "delay" -> (
          match param with
          | None -> fail "delay needs =DURATION (e.g. delay@30:1=5ms)"
          | Some p -> (
            match delay_of p with
            | Some ns -> Ok (spec ~kind:(Delay ns) ~variant ~at)
            | None -> fail "bad delay duration"))
        | k -> fail (Printf.sprintf "unknown fault kind %S" k))))

let of_string str =
  let parts =
    String.split_on_char ',' str
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
      match parse_spec p with
      | Ok s -> go (s :: acc) rest
      | Error _ as e -> e)
  in
  go [] parts
