(* Shared log of user-space synchronization events (Section 2.3).

   The record/replay agent embedded in each replica forces all replicas to
   acquire user-space locks in the order the master acquired them, removing
   scheduling non-determinism that would otherwise make replicas issue
   different syscall sequences. The master appends (lock, thread-rank)
   events; each slave consumes them in order, gating its own acquisitions.

   Under the Respawn recovery policy the log additionally carries a
   master-side *syscall journal*: one (normalized call, result) record per
   replicated call, per thread rank. A freshly respawned replica replays
   the journal — its calls are verified against the master's stream and
   satisfied from the recorded results — until it has caught up and can
   rejoin the group at the next rendezvous. *)

open Remon_kernel

type event = { lock_id : int; thread_rank : int }

(* One replicated master call, as the journal stores it. *)
type callrec = { jcall : Syscall.call; jresult : Syscall.result }

type jstream = { mutable recs : callrec array; mutable jlen : int }

(* Live capture sink: sees every replicated master call, lock-order event,
   injected signal and ring-flush boundary, independent of whether the
   respawn journal is enabled. *)
type sink = {
  sink_call : rank:int -> call:Syscall.call -> result:Syscall.result -> unit;
  sink_lock : lock_id:int -> thread_rank:int -> unit;
  sink_signal : rank:int -> signo:int -> unit;
  sink_flush : reason:string -> count:int -> unit;
}

type t = {
  mutable events : event array;
  mutable len : int;
  consumed : int array; (* per variant; index 0 unused *)
  journal : (int, jstream) Hashtbl.t; (* thread rank -> master call stream *)
  mutable journal_enabled : bool;
  mutable on_journal_append : (rank:int -> unit) option;
      (* fired after each journal append; GHUMVEE uses it to feed records
         to replaying replicas waiting at the head of the stream *)
  mutable recorder : sink option;
}

let create ~nreplicas =
  {
    events = Array.make 64 { lock_id = 0; thread_rank = 0 };
    len = 0;
    consumed = Array.make nreplicas 0;
    journal = Hashtbl.create 4;
    journal_enabled = false;
    on_journal_append = None;
    recorder = None;
  }

let length t = t.len

let append t ~lock_id ~thread_rank =
  (match t.recorder with
  | Some s -> s.sink_lock ~lock_id ~thread_rank
  | None -> ());
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) t.events.(0) in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- { lock_id; thread_rank };
  t.len <- t.len + 1

(* The next unconsumed event for [variant], if the master has produced it. *)
let peek t ~variant =
  let pos = t.consumed.(variant) in
  if pos < t.len then Some t.events.(pos) else None

let advance t ~variant = t.consumed.(variant) <- t.consumed.(variant) + 1

(* A respawned replica restarts from the beginning: it must re-consume the
   whole lock-order history to reproduce the master's schedule. *)
let reset_variant t ~variant = t.consumed.(variant) <- 0

(* ------------------------------------------------------------------ *)
(* Master syscall journal (Respawn replay) *)

let enable_journal t = t.journal_enabled <- true
let set_on_journal_append t f = t.on_journal_append <- Some f

let jstream t rank =
  match Hashtbl.find_opt t.journal rank with
  | Some s -> s
  | None ->
    let s = { recs = [||]; jlen = 0 } in
    Hashtbl.replace t.journal rank s;
    s

let journal_append t ~rank ~call ~result =
  (* the recorder sees the full replicated stream even when the (memory-
     costly) respawn journal is off *)
  (match t.recorder with
  | Some s -> s.sink_call ~rank ~call ~result
  | None -> ());
  if t.journal_enabled then begin
    let s = jstream t rank in
    if s.jlen = Array.length s.recs then begin
      let cap = max 64 (2 * s.jlen) in
      let bigger = Array.make cap { jcall = call; jresult = result } in
      Array.blit s.recs 0 bigger 0 s.jlen;
      s.recs <- bigger
    end;
    s.recs.(s.jlen) <- { jcall = call; jresult = result };
    s.jlen <- s.jlen + 1;
    match t.on_journal_append with Some f -> f ~rank | None -> ()
  end

let journal_length t ~rank =
  match Hashtbl.find_opt t.journal rank with Some s -> s.jlen | None -> 0

let journal_nth t ~rank n =
  match Hashtbl.find_opt t.journal rank with
  | Some s when n >= 0 && n < s.jlen -> Some s.recs.(n)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Recording sink *)

let set_recorder t sink = t.recorder <- Some sink
let clear_recorder t = t.recorder <- None

let note_signal t ~rank ~signo =
  match t.recorder with Some s -> s.sink_signal ~rank ~signo | None -> ()

let note_flush t ~reason ~count =
  match t.recorder with Some s -> s.sink_flush ~reason ~count | None -> ()
