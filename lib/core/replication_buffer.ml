(* The IP-MON replication buffer (Section 3.2).

   A linear (non-circular) buffer in shared memory. Each replica thread only
   advances its own position; when the master would overflow the buffer it
   signals GHUMVEE, which waits for all replicas to drain and resets the
   buffer — avoiding read-write sharing on head/tail indices.

   Each syscall invocation gets its own record with its own condition
   variable (Section 3.7): slaves wait only on the record they need, and the
   master skips the FUTEX_WAKE entirely when nobody is waiting. *)

open Remon_kernel

type flags = {
  forwarded_to_monitor : bool; (* master bounced this call to GHUMVEE *)
  expect_block : bool; (* file-map prediction: the call may block *)
}

type entry = {
  seq : int;
  bytes : int; (* space this record occupies in the buffer *)
  mutable call : Syscall.call option; (* master's deep-copied arguments *)
  mutable result : Syscall.result option;
  mutable flags : flags;
  mutable waiters : int; (* slaves waiting on this record's condvar *)
  mutable consumed : int; (* slaves that copied the result *)
  mutable batch_follower : bool;
      (* published by a ring drain behind an earlier record of the same
         rank: its cache lines arrived in the same bounce round, so the
         slave's fixed read cost drops to a spin poll *)
}

(* One record stream per thread rank: replica threads are matched by rank,
   and each (master-thread, slave-thread) pair has its own stream, so
   per-thread positions are single-writer. *)
type stream = {
  rank : int;
  entries : (int, entry) Hashtbl.t; (* seq -> record *)
  mutable master_next : int;
  slave_next : int array; (* per variant; index 0 unused *)
}

type t = {
  size_bytes : int;
  nreplicas : int;
  streams : (int, stream) Hashtbl.t;
  mutable used_bytes : int;
  mutable signals_pending : bool; (* set by GHUMVEE (Section 3.8) *)
  mutable generation : int; (* bumped at each reset *)
  active : bool array;
      (* per variant; quarantined replicas stop counting towards drains so
         the master can keep publishing while the group runs degraded *)
  mutable tamper : (entry -> unit) option;
      (* fault-injection hook: may drop (call <- None) or corrupt a freshly
         appended record before the slaves see it *)
  (* statistics *)
  mutable total_records : int;
  mutable resets : int;
  mutable wakes_issued : int;
  mutable wakes_skipped : int;
  (* record/replay sync-event log (Section 2.3) rides in the same segment *)
  sync_log : Record_log.t;
  mutable obs : (Remon_obs.Obs.t * (unit -> int)) option;
      (* structured trace sink + virtual-clock reader, set by [Mvee] when
         observability is on; None = zero-cost disabled path *)
}

(* The RB travels in a System V segment; higher layers find it there. *)
type Shm.payload += Rb_payload of t

let header_bytes = 64

let create ~size_bytes ~nreplicas =
  {
    size_bytes;
    nreplicas;
    streams = Hashtbl.create 8;
    used_bytes = 0;
    signals_pending = false;
    generation = 0;
    active = Array.make nreplicas true;
    tamper = None;
    total_records = 0;
    resets = 0;
    wakes_issued = 0;
    wakes_skipped = 0;
    sync_log = Record_log.create ~nreplicas;
    obs = None;
  }

let default_size = 16 * 1024 * 1024 (* the paper's 16 MiB *)

(* RB events belong to the monitor context, not any replica: pid/tid 0.
   Occupancy rides along as a high-water-mark metric on every event.
   Metric keys for the fixed event vocabulary are interned at module init:
   the per-record tallies do not concatenate strings. *)
let rb_key = function
  | "append" -> "rb.append"
  | "consume" -> "rb.consume"
  | "reset" -> "rb.reset"
  | n -> "rb." ^ n

let obs_event t ~name args =
  match t.obs with
  | None -> ()
  | Some (o, now) ->
    Remon_obs.Trace.instant o.Remon_obs.Obs.trace ~ts:(now ()) ~cat:"rb" ~name
      ~pid:0 ~tid:0 args;
    Remon_obs.Metrics.incr o.Remon_obs.Obs.metrics (rb_key name);
    Remon_obs.Metrics.hwm o.Remon_obs.Obs.metrics "rb.used_bytes" t.used_bytes

(* Perfetto-graphable occupancy track. *)
let obs_occupancy t =
  match t.obs with
  | None -> ()
  | Some (o, now) ->
    Remon_obs.Trace.counter o.Remon_obs.Obs.trace ~ts:(now ()) ~cat:"rb"
      ~name:"rb.used_bytes" ~pid:0 ~tid:0
      [ ("used_bytes", Remon_obs.Trace.Int t.used_bytes) ]

let stream t rank =
  match Hashtbl.find_opt t.streams rank with
  | Some s -> s
  | None ->
    let s =
      {
        rank;
        entries = Hashtbl.create 64;
        master_next = 0;
        slave_next = Array.make t.nreplicas 0;
      }
    in
    Hashtbl.replace t.streams rank s;
    s

let record_bytes (call : Syscall.call) =
  header_bytes + Syscall.arg_bytes call

(* Would appending a record of [bytes] overflow the linear buffer? *)
let would_overflow t ~bytes = t.used_bytes + bytes > t.size_bytes

let fits_at_all t ~bytes = bytes <= t.size_bytes

(* All active slaves have consumed every record: safe to reset. Quarantined
   variants no longer pull records and must not wedge the master. *)
let fully_drained t =
  Hashtbl.fold
    (fun _ s acc ->
      let ok = ref acc in
      for v = 1 to t.nreplicas - 1 do
        if t.active.(v) && s.slave_next.(v) < s.master_next then ok := false
      done;
      !ok)
    t.streams true

(* GHUMVEE-arbitrated reset: clears all records and reclaims the space.
   Caller must have established that the buffer is drained. *)
let reset t =
  Hashtbl.iter (fun _ s -> Hashtbl.reset s.entries) t.streams;
  t.used_bytes <- 0;
  t.generation <- t.generation + 1;
  t.resets <- t.resets + 1;
  obs_event t ~name:"reset" [ ("generation", Remon_obs.Trace.Int t.generation) ];
  obs_occupancy t

(* Master side: append the record for its next call on [rank]'s stream. *)
let master_append t ~rank ~call ~expect_block ~forwarded =
  let s = stream t rank in
  let bytes = record_bytes call in
  let e =
    {
      seq = s.master_next;
      bytes;
      call = Some call;
      result = None;
      flags = { forwarded_to_monitor = forwarded; expect_block };
      waiters = 0;
      consumed = 0;
      batch_follower = false;
    }
  in
  Hashtbl.replace s.entries e.seq e;
  s.master_next <- s.master_next + 1;
  t.used_bytes <- t.used_bytes + bytes;
  t.total_records <- t.total_records + 1;
  obs_event t ~name:"append"
    [
      ("rank", Remon_obs.Trace.Int rank);
      ("seq", Remon_obs.Trace.Int e.seq);
      ("bytes", Remon_obs.Trace.Int bytes);
    ];
  obs_occupancy t;
  (match t.tamper with Some f -> f e | None -> ());
  e

(* Master side: publish the result and decide whether a FUTEX_WAKE is
   needed (only when slaves are already waiting on this record). *)
let master_publish t e result =
  e.result <- Some result;
  t.used_bytes <- t.used_bytes + Syscall.result_bytes result;
  (match t.obs with
  | None -> ()
  | Some (o, _) ->
    Remon_obs.Metrics.hwm o.Remon_obs.Obs.metrics "rb.used_bytes" t.used_bytes);
  if e.waiters > 0 then begin
    t.wakes_issued <- t.wakes_issued + 1;
    true
  end
  else begin
    t.wakes_skipped <- t.wakes_skipped + 1;
    false
  end

(* Slave side: the record this variant must consume next on [rank]. *)
let slave_lookup t ~rank ~variant =
  let s = stream t rank in
  Hashtbl.find_opt s.entries s.slave_next.(variant)

let slave_advance t ~rank ~variant =
  let s = stream t rank in
  let seq = s.slave_next.(variant) in
  (match Hashtbl.find_opt s.entries seq with
  | Some e -> e.consumed <- e.consumed + 1
  | None -> ());
  s.slave_next.(variant) <- seq + 1;
  obs_event t ~name:"consume"
    [
      ("rank", Remon_obs.Trace.Int rank);
      ("variant", Remon_obs.Trace.Int variant);
      ("seq", Remon_obs.Trace.Int seq);
    ];
  (* Drop the record once every active slave has moved past it: lookups
     only ever target [slave_next] positions, so a record behind all of
     them is unreachable and would otherwise pin the simulator's memory
     until the next buffer reset. [used_bytes] is untouched — the record
     still occupies simulated buffer space until GHUMVEE resets it. *)
  let drained = ref true in
  for v = 1 to t.nreplicas - 1 do
    if t.active.(v) && s.slave_next.(v) <= seq then drained := false
  done;
  if !drained then Hashtbl.remove s.entries seq

(* How many records the master is ahead of the slowest slave on [rank]'s
   stream; bounds the run-ahead window ablation. *)
let lag t ~rank =
  let s = stream t rank in
  let slowest = ref s.master_next in
  for v = 1 to t.nreplicas - 1 do
    if t.active.(v) && s.slave_next.(v) < !slowest then slowest := s.slave_next.(v)
  done;
  s.master_next - !slowest

(* ------------------------------------------------------------------ *)
(* Quarantine / rejoin support *)

(* Stop counting [variant] towards drains and run-ahead windows. *)
let deactivate t ~variant = if variant > 0 then t.active.(variant) <- false

(* Re-admit a (respawned) replica: it resumes consumption at the master's
   current position — its backlog was satisfied from the journal, not the
   buffer, so the stale positions are fast-forwarded. *)
let reactivate t ~variant =
  if variant > 0 then begin
    t.active.(variant) <- true;
    Hashtbl.iter (fun _ s -> s.slave_next.(variant) <- s.master_next) t.streams
  end

let is_active t ~variant = t.active.(variant)
