(** Shadow mapping between fds and epoll user data (Section 3.9).
    Diversified replicas register different pointer cookies for the same
    logical descriptor; results are replicated in terms of fds and mapped
    back to each variant's own pointers. Events without a registration are
    carried opaquely (the master's original cookie) or dropped with a
    divergence counter — never fabricated. *)

type t

(** Replicated form of one epoll event's identity. *)
type logical =
  | Lfd of int  (** translated via the master's registrations *)
  | Lopaque of int64  (** master's raw user data, passed through *)

val create : nreplicas:int -> t
val register : t -> variant:int -> fd:int -> user_data:int64 -> unit
val unregister : t -> variant:int -> fd:int -> unit
val user_data_of : t -> variant:int -> fd:int -> int64 option
val fd_of : t -> variant:int -> user_data:int64 -> int option

val untranslatable : t -> int
(** Events dropped because no mapping existed (master-side negative
    unregistered cookies, or slave-side fds with no registration). *)

val to_logical :
  t ->
  (int64 * Remon_kernel.Syscall.poll_events) list ->
  (logical * Remon_kernel.Syscall.poll_events) list
(** Master's (user_data, events) results -> logical events, using variant
    0's registrations. Unregistered cookies pass through as [Lopaque];
    negative unregistered cookies are dropped and counted. *)

val to_variant :
  t ->
  variant:int ->
  (logical * Remon_kernel.Syscall.poll_events) list ->
  (int64 * Remon_kernel.Syscall.poll_events) list
(** Logical events -> the given variant's (user_data, events). An [Lfd]
    the variant never registered is dropped and counted. *)

val encode : logical -> int64
(** Pack for the replication buffer's int64 slots: [Lfd] as the
    non-negative fd, [Lopaque] complemented into the negative range. *)

val decode : int64 -> logical
