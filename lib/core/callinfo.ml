(* Per-call metadata shared by IK-B, IP-MON and GHUMVEE: which fd a call
   operates on, whether both monitors must treat it as potentially blocking,
   and how the MVEE should execute it. *)

open Remon_kernel

(* The primary file descriptor a call operates on, if any. *)
let fd_of (call : Syscall.call) : int option =
  match call with
  | Syscall.Read (fd, _)
  | Syscall.Readv (fd, _)
  | Syscall.Pread64 (fd, _, _)
  | Syscall.Preadv (fd, _, _)
  | Syscall.Write (fd, _)
  | Syscall.Writev (fd, _)
  | Syscall.Pwrite64 (fd, _, _)
  | Syscall.Pwritev (fd, _, _)
  | Syscall.Recvfrom (fd, _)
  | Syscall.Recvmsg (fd, _)
  | Syscall.Recvmmsg (fd, _, _)
  | Syscall.Sendto (fd, _)
  | Syscall.Sendmsg (fd, _)
  | Syscall.Sendmmsg (fd, _)
  | Syscall.Getsockname fd
  | Syscall.Getpeername fd
  | Syscall.Getsockopt (fd, _)
  | Syscall.Setsockopt (fd, _, _)
  | Syscall.Shutdown (fd, _)
  | Syscall.Fstat fd
  | Syscall.Getdents fd
  | Syscall.Fgetxattr (fd, _)
  | Syscall.Lseek (fd, _, _)
  | Syscall.Ioctl (fd, _)
  | Syscall.Fcntl (fd, _)
  | Syscall.Syncfs fd
  | Syscall.Fsync fd
  | Syscall.Fdatasync fd
  | Syscall.Fadvise64 fd
  | Syscall.Timerfd_gettime fd
  | Syscall.Timerfd_settime (fd, _)
  | Syscall.Close fd
  | Syscall.Dup fd
  | Syscall.Accept fd
  | Syscall.Accept4 { fd; _ }
  | Syscall.Connect (fd, _)
  | Syscall.Bind (fd, _)
  | Syscall.Listen (fd, _)
  | Syscall.Ftruncate (fd, _) ->
    Some fd
  | Syscall.Fstatfs fd
  | Syscall.Getdents64 fd
  | Syscall.Readahead fd
  | Syscall.Fchmod (fd, _)
  | Syscall.Flock (fd, _) ->
    Some fd
  | Syscall.Dup3 (fd, _) -> Some fd
  | Syscall.Epoll_wait { epfd; _ } -> Some epfd
  | Syscall.Epoll_ctl { epfd; _ } -> Some epfd
  | Syscall.Sendfile { out_fd; _ } -> Some out_fd
  | Syscall.Dup2 (fd, _) -> Some fd
  | _ -> None

(* Blocking prediction from the file map (Listing 1's MAYBE_BLOCKING):
   read-family calls on blocking descriptors, waits, and sleeps. *)
let may_block (fm : File_map.t) (call : Syscall.call) =
  match call with
  | Syscall.Read (fd, _) | Syscall.Readv (fd, _) | Syscall.Recvfrom (fd, _)
  | Syscall.Recvmsg (fd, _) | Syscall.Recvmmsg (fd, _, _) ->
    File_map.may_block fm ~fd
  | Syscall.Write (fd, _) | Syscall.Writev (fd, _) ->
    File_map.may_block fm ~fd
  | Syscall.Select { timeout_ns; _ } | Syscall.Poll { timeout_ns; _ }
  | Syscall.Pselect6 { timeout_ns; _ } | Syscall.Ppoll { timeout_ns; _ } ->
    timeout_ns <> Some 0
  | Syscall.Epoll_wait { timeout_ns; _ } -> timeout_ns <> Some 0
  | Syscall.Nanosleep _ | Syscall.Pause -> true
  | Syscall.Futex (Syscall.Futex_wait _) -> true
  | _ -> false

(* How the monitors execute a call across replicas. *)
type disposition =
  | Master_call (* master executes; slaves get replicated results *)
  | All_call (* every replica executes its own instance (local state) *)

let disposition (call : Syscall.call) =
  match call with
  (* process-local state every replica must maintain itself *)
  | Syscall.Futex _ | Syscall.Mmap _ | Syscall.Munmap _ | Syscall.Mprotect _
  | Syscall.Mremap _ | Syscall.Brk _ | Syscall.Clone _ | Syscall.Exit _
  | Syscall.Exit_group _ | Syscall.Rt_sigaction _ | Syscall.Rt_sigprocmask _
  | Syscall.Rt_sigreturn | Syscall.Sigaltstack | Syscall.Madvise _
  | Syscall.Shmat _ | Syscall.Shmdt _ | Syscall.Ipmon_register _
  | Syscall.Fcntl (_, Syscall.F_setfl _)
  | Syscall.Ioctl (_, Syscall.Fionbio _)
  | Syscall.Msync _ | Syscall.Mincore _ | Syscall.Mlock _ | Syscall.Munlock _
  | Syscall.Setrlimit _ | Syscall.Prlimit64 _ | Syscall.Sched_setaffinity _
  | Syscall.Umask _ ->
    All_call
  | _ -> Master_call

(* Replica-visible fd results that require installing a stub descriptor in
   slave fd tables so numbering stays aligned. Returns the new fds. *)
let fds_created (call : Syscall.call) (result : Syscall.result) : int list =
  match (call, result) with
  | (Syscall.Open _ | Syscall.Openat _ | Syscall.Creat _ | Syscall.Dup _
    | Syscall.Socket _ | Syscall.Epoll_create | Syscall.Timerfd_create
    | Syscall.Eventfd _
    | Syscall.Fcntl (_, Syscall.F_dupfd _)),
      Syscall.Ok_int fd
    when fd >= 0 ->
    [ fd ]
  | (Syscall.Dup2 (_, newfd) | Syscall.Dup3 (_, newfd)), Syscall.Ok_int fd
    when fd >= 0 ->
    [ newfd ]
  | (Syscall.Pipe | Syscall.Pipe2 _ | Syscall.Socketpair _), Syscall.Ok_pair (a, b)
    ->
    [ a; b ]
  | (Syscall.Accept _ | Syscall.Accept4 _), Syscall.Ok_accept { conn_fd; _ } ->
    [ conn_fd ]
  | _ -> []

let fds_closed (call : Syscall.call) (result : Syscall.result) : int list =
  match (call, result) with
  | Syscall.Close fd, Syscall.Ok_int _ -> [ fd ]
  | _ -> []

(* Normalizes a call for cross-replica comparison: fields that legitimately
   differ between diversified replicas (pointer-valued epoll user data) are
   blanked; everything else must match bit for bit. *)
let normalize (call : Syscall.call) : Syscall.call =
  match call with
  | Syscall.Epoll_ctl e -> Syscall.Epoll_ctl { e with user_data = 0L }
  | Syscall.Futex (Syscall.Futex_wait f) ->
    (* futex words live at diversified addresses *)
    Syscall.Futex (Syscall.Futex_wait { f with addr = 0L })
  | Syscall.Futex (Syscall.Futex_wake f) ->
    Syscall.Futex (Syscall.Futex_wake { f with addr = 0L })
  (* mapping addresses are replica-relative under ASLR: compare lengths and
     protections, not placements *)
  | Syscall.Mmap _ -> call
  | Syscall.Munmap m -> Syscall.Munmap { m with addr = 0L }
  | Syscall.Mprotect m -> Syscall.Mprotect { m with addr = 0L }
  | Syscall.Mremap m -> Syscall.Mremap { m with addr = 0L }
  | Syscall.Madvise m -> Syscall.Madvise { m with addr = 0L }
  | Syscall.Msync m -> Syscall.Msync { m with addr = 0L }
  | Syscall.Mincore m -> Syscall.Mincore { m with addr = 0L }
  | Syscall.Mlock m -> Syscall.Mlock { m with addr = 0L }
  | Syscall.Munlock m -> Syscall.Munlock { m with addr = 0L }
  | Syscall.Shmdt _ -> Syscall.Shmdt { addr = 0L }
  | Syscall.Ipmon_register r ->
    Syscall.Ipmon_register { r with rb_addr = 0L; entry_addr = 0L }
  | _ -> call

let equal_normalized a b =
  Syscall.equal_call (normalize a) (normalize b)
