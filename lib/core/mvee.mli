(** Top-level multi-variant execution environment: wires the kernel hooks,
    monitors and replication machinery for one replica set. *)

open Remon_kernel
open Remon_sim

type backend =
  | Native (** one process, no monitoring (baseline) *)
  | Ghumvee_only (** cross-process lockstep for every call ("no IP-MON") *)
  | Varan (** in-process replication of everything, no lockstep *)
  | Remon (** the paper's hybrid *)

val backend_to_string : backend -> string

val backend_of_string : string -> backend option
(** Inverse of {!backend_to_string}; recordings store the backend by name. *)

(** What happens when a non-master replica diverges, crashes or stalls
    (re-export of {!Context.failure_policy}): [Kill_group] is the paper's
    treat-every-fault-as-an-attack behavior; [Quarantine] detaches the
    faulty replica and continues degraded; [Respawn] additionally replays
    the master syscall journal to bring a fresh replica back, with
    exponential backoff and a bounded respawn budget. *)
type failure_policy = Context.failure_policy =
  | Kill_group
  | Quarantine
  | Respawn of { max_respawns : int; backoff_ns : Vtime.t }

type config = {
  backend : backend;
  nreplicas : int;
  policy : Policy.t;
  diversity : Diversity.config;
  rb_size : int;
  seed : int;
  watchdog_ns : Vtime.t; (** rendezvous-stall detection *)
  watchdog_retries : int;
      (** stalled-rendezvous grace periods (each doubling the delay)
          before the watchdog escalates *)
  record_replay : bool; (** enable the user-space sync agent *)
  mode_override : Context.mode option; (** ablations; [None] = backend default *)
  rb_migration_interval : Vtime.t option;
      (** Section 4 extension: periodically remap the RB to fresh
          randomized addresses *)
  on_failure : failure_policy;
  faults : Fault.plan; (** deterministic fault-injection plan; [[]] = none *)
  record : bool;
      (** capture the master's replicated stream into a {!Recording.t},
          surfaced as [outcome.recording] *)
  shm_key : int option;
      (** pin the group's SysV key instead of drawing from the
          process-global counter; replay sets this so shm traffic is
          byte-identical regardless of how many launches preceded the
          recording run. [None] (the default) allocates normally. *)
}

val on_failure_to_string : failure_policy -> string
(** ["kill-group"], ["quarantine"], or ["respawn:N:BACKOFF_NS"] — the
    fully-parameterized form recordings store. *)

val on_failure_of_string : string -> failure_policy option
(** Accepts the CLI's short forms too ([respawn], [respawn:N]). *)

val default_config : config
(** ReMon, 2 replicas, SOCKET_RW_LEVEL, ASLR + DCL, 16 MiB RB. *)

(** The replica's view of the MVEE runtime, handed to program bodies. *)
type env = {
  variant : int; (** 0 = master *)
  nreplicas : int;
  backend : backend;
  heap_base : int64; (** diversified heap placement *)
  lock : int -> unit; (** user-space mutex, record/replay ordered *)
  unlock : int -> unit;
  spawn_thread : (unit -> unit) -> int; (** clone; returns the tid *)
  diversified_ptr : int -> int64;
      (** a logical object id rendered as this replica's pointer value *)
}

type handle = {
  kernel : Kernel.t;
  config : config;
  group : Context.group;
  ghumvee : Ghumvee.t option;
  agent : Record_replay.t;
  mutable fault : Fault.t option;
  mutable master_exit_ns : Vtime.t option;
  mutable exit_codes : (int * int) list;
  mutable heap_bases : int64 array;
  recorder : Recording.builder option;
}

type outcome = {
  duration : Vtime.t; (** master replica lifetime in virtual time *)
  verdict : Divergence.t option; (** [None] = clean run *)
  exit_codes : (int * int) list; (** (variant, code) *)
  syscalls : int;
  monitored : int;
  ipmon_fastpath : int;
  ptrace_stops : int;
  rendezvous : int;
  ipmon_fallbacks : int;
  rb_resets : int;
  rb_records : int;
  ring_flushes : int; (** ring drains (0 when [ring_batch] = 1) *)
  ring_records : int; (** records that reached the RB through the ring *)
  ring_max_batch : int; (** largest single drain *)
  tokens_granted : int;
  tokens_rejected : int;
  faults_injected : int; (** fault-plan specs that actually fired *)
  quarantines : int; (** replicas detached by the recovery policy *)
  respawns : int; (** replicas relaunched under [Respawn] *)
  degraded_ns : Vtime.t; (** time with at least one replica detached *)
  watchdog_retries : int; (** rendezvous grace periods granted *)
  metrics : (string * string) list;
      (** observability summary (key-sorted name/value rows, see
          {!Remon_obs.Metrics.summary}); [[]] when tracing is off *)
  recording : Recording.t option;
      (** the captured stream, when [config.record] was set *)
}

val header_of_config : config -> workload:string -> Recording.header
(** The recording header describing this configuration. *)

val launch : Kernel.t -> config -> name:string -> body:(env -> unit) -> handle
(** Spawns the replica set; every replica runs [body]. Drive the simulation
    with [Kernel.run], then collect the [outcome] with [finish]. *)

val master_process : handle -> Proc.process
(** The current master process (variant 0). Fleet controllers watch it with
    {!Kernel.on_process_exit} to detect whole-instance failure. *)

val stop : handle -> unit
(** Graceful operator stop: kills every replica with exit code 0, records
    no verdict, and silences pending watchdogs. The instance's descriptors
    (listener port included) are released immediately, so a successor can
    rebind the same port. Used by fleet rolling restarts. *)

val finish : handle -> outcome

val run_program :
  ?cost:Cost_model.t ->
  ?net_latency:Vtime.t ->
  config ->
  name:string ->
  body:(env -> unit) ->
  outcome
(** One-shot convenience: fresh kernel, launch, run to completion. *)
