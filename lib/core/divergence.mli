(** Divergence verdicts: why an MVEE run was terminated, and which
    component detected it. *)

open Remon_kernel

type detector = By_ghumvee | By_ipmon | By_ikb

type t =
  | Args_mismatch of {
      rank : int;
      index : int;
      expected : string;
      got : string;
      variant : int;
      detector : detector;
    }
  | Sequence_mismatch of { rank : int; index : int; calls : string list }
  | Rendezvous_timeout of { rank : int; index : int; missing : int list }
  | Replica_crash of { variant : int; signal : int }
  | Exit_mismatch of { codes : (int * int) list }
  | Token_violation of { variant : int; call : string }
  | Shared_memory_rejected of { variant : int }

val detector_to_string : detector -> string
val to_string : t -> string

val class_of : t -> string
(** The constructor alone, without its payload — what replay-under-a-
    different-backend compares, since payloads legitimately differ across
    detectors. *)

val render_call : Syscall.call -> string
(** Rendering used inside verdicts. *)

(** {1 Replay divergence (time-travel bisection report)} *)

(** Where a replayed stream first forks from a recording, with a ±K-record
    context window. Produced by {!Replayer.bisect}. *)
type replay_divergence = {
  first_rank : int;  (** first stream index where the digests fork *)
  total_recorded : int;
  total_replayed : int;
  thread_rank : int option;  (** thread rank of the divergent record *)
  syscall : string option;  (** rendered divergent call, when it is one *)
  recorded_ev : string option;  (** rendered events at [first_rank] *)
  replayed_ev : string option;
  context : (int * string option * string option) list;
      (** ±K window around the fork: index, recorded, replayed *)
}

val replay_divergence_to_string : replay_divergence -> string
