(** IK-B: the in-kernel broker (Sections 3 and 3.1). Decides, for every
    syscall a replica issues, whether IP-MON may complete it unmonitored
    (granting a single-use 64-bit authorization token) or whether it must
    be reported to GHUMVEE. Enforces the Section 3.1 invariants: one-time
    tokens, same thread + same call + IP-MON entry point, revocation when a
    stray syscall follows a grant, and forced monitoring of calls that
    could tamper with IP-MON or expose the RB. *)

open Remon_kernel
open Remon_util

type token_record = {
  value : int64;
  granted_for : Syscall.call;
  mutable live : bool;
  temporal : bool; (** granted by temporal (not spatial) exemption *)
}

type t = {
  kernel : Kernel.t;
  mutable policy : Policy.t;
  rng : Rng.t;
  tokens : (int, token_record) Hashtbl.t; (** tid -> outstanding token *)
  temporal_state : Policy.temporal_state;
  temporal_decisions : (int * int, bool) Hashtbl.t;
      (** one stochastic draw per logical call, shared by all replicas *)
  mutable rb : Replication_buffer.t option;
  mutable route_all : bool; (** VARAN baseline: forward everything *)
  mutable master_proc : Proc.process option;
      (** authoritative fd table for classification (slaves hold stubs) *)
  replaying : (int, unit) Hashtbl.t;
      (** variants resynchronizing from the journal: forced monitored *)
  mutable revocations : int;
  mutable rejected : int;
  mutable grants : int;
  mutable on_violation : Divergence.t -> unit;
  mutable pre_monitor : (Proc.thread -> unit) option;
      (** ring-drain barrier, installed by [Mvee] in ring mode: runs just
          before a replica thread is routed onto the monitored path, so
          pending batched records reach the RB ahead of the lockstep
          rendezvous *)
}

val create : kernel:Kernel.t -> policy:Policy.t -> seed:int -> t
val fresh_token : t -> int64
val revoke : t -> Proc.thread -> unit

val classify : t -> Proc.thread -> Syscall.call -> Kstate.route
(** The interceptor: one routing decision per syscall entry. *)

val verify : t -> Proc.thread -> token:int64 -> call:Syscall.call -> bool
(** The verifier: single-shot token check. *)

val destroy_token : t -> Proc.thread -> unit
(** IP-MON's fallback: destroy before restarting as a monitored call. *)

val consume_token : t -> Proc.thread -> unit
(** Silent invalidation for calls IP-MON aborts without restarting. *)

val set_replaying : t -> variant:int -> bool -> unit
(** While on, every call from [variant] is routed monitored so GHUMVEE can
    replay-verify it against the journal. *)

val was_temporal_grant : t -> Proc.thread -> token:int64 -> bool
val note_approval : t -> Sysno.t -> unit

val install : t -> group_id:int -> unit
(** Hook this broker into the kernel's syscall path, scoped to the replica
    group identified by [group_id] (the group's shm key): a fleet of MVEE
    instances in one kernel each get their own broker. *)

val execute :
  t ->
  Proc.thread ->
  token:int64 ->
  Syscall.call ->
  ret:(Syscall.result -> unit) ->
  fallback:(unit -> unit) ->
  unit
(** Complete a forwarded call through the verifier, or run [fallback]. *)
