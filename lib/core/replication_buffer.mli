(** The IP-MON replication buffer (Section 3.2): a linear buffer in shared
    memory with one record per syscall invocation and one stream per thread
    rank. The master appends and publishes; slaves look up and consume.
    Overflow is resolved by a GHUMVEE-arbitrated reset once all slaves have
    drained, avoiding read-write sharing on head/tail indices. *)

open Remon_kernel

type flags = {
  forwarded_to_monitor : bool; (** master bounced this call to GHUMVEE *)
  expect_block : bool; (** file-map prediction: the call may block *)
}

type entry = {
  seq : int;
  bytes : int;
  mutable call : Syscall.call option; (** master's deep-copied arguments *)
  mutable result : Syscall.result option;
  mutable flags : flags;
  mutable waiters : int; (** slaves on this record's condition variable *)
  mutable consumed : int;
  mutable batch_follower : bool;
      (** published by a ring drain behind an earlier same-rank record: the
          slave's fixed read cost drops to a spin poll (the cache lines
          arrived in the same bounce round) *)
}

type stream = {
  rank : int;
  entries : (int, entry) Hashtbl.t;
  mutable master_next : int;
  slave_next : int array; (** per variant; index 0 unused *)
}

type t = {
  size_bytes : int;
  nreplicas : int;
  streams : (int, stream) Hashtbl.t;
  mutable used_bytes : int;
  mutable signals_pending : bool; (** set by GHUMVEE (Section 3.8) *)
  mutable generation : int;
  active : bool array;
      (** per variant; quarantined replicas stop counting towards drains *)
  mutable tamper : (entry -> unit) option;
      (** fault-injection hook applied to freshly appended records *)
  mutable total_records : int;
  mutable resets : int;
  mutable wakes_issued : int;
  mutable wakes_skipped : int;
  sync_log : Record_log.t;
      (** the record/replay agent's sync-event log rides along *)
  mutable obs : (Remon_obs.Obs.t * (unit -> int)) option;
      (** structured trace sink + virtual-clock reader, set by [Mvee] when
          observability is on; [None] = the zero-cost disabled path *)
}

type Shm.payload += Rb_payload of t
(** How the buffer travels inside its System V segment. *)

val header_bytes : int
val default_size : int (** the paper's 16 MiB *)

val create : size_bytes:int -> nreplicas:int -> t
val stream : t -> int -> stream

val record_bytes : Syscall.call -> int
(** CALCSIZE: header + register args + maximum buffer payload. *)

val would_overflow : t -> bytes:int -> bool
val fits_at_all : t -> bytes:int -> bool

val fully_drained : t -> bool
(** Every slave has consumed every record: safe to reset. *)

val reset : t -> unit
(** GHUMVEE-arbitrated reset; sequence numbers keep increasing. *)

val master_append :
  t -> rank:int -> call:Syscall.call -> expect_block:bool -> forwarded:bool -> entry
(** PRECALL, master side. *)

val master_publish : t -> entry -> Syscall.result -> bool
(** POSTCALL, master side. Returns whether a FUTEX_WAKE is needed (only
    when slaves are already waiting — the Section 3.7 optimization). *)

val slave_lookup : t -> rank:int -> variant:int -> entry option
(** The record this variant must consume next, if the master produced it. *)

val slave_advance : t -> rank:int -> variant:int -> unit

val lag : t -> rank:int -> int
(** Records the master is ahead of the slowest active slave on this
    stream. *)

val deactivate : t -> variant:int -> unit
(** Quarantine support: stop counting [variant] towards drains and
    run-ahead windows. No-op for the master. *)

val reactivate : t -> variant:int -> unit
(** Re-admit a respawned replica, fast-forwarding its consumption
    positions to the master's current positions (its backlog was satisfied
    from the journal, not the buffer). *)

val is_active : t -> variant:int -> bool
