(* GHUMVEE: the security-oriented cross-process monitor.

   Attached to every replica through the (simulated) ptrace API. All
   monitored calls execute in lockstep:

     1. every replica's matching thread (same rank) must arrive at the
        syscall-entry stop — the rendezvous;
     2. the deep-compared arguments must be equivalent (divergence kills
        the MVEE, unless the recovery policy absorbs it);
     3. for I/O calls only the master executes; results are copied into the
        slaves (transparent I/O replication, Section 2.1);
     4. deferred asynchronous signals are injected while all replicas sit
        at the equivalent rendezvous point (Sections 2.2 and 3.8).

   The monitor is a separate "process": its per-stop work is serialized
   through [busy_until], so heavy multi-threaded syscall traffic queues up
   behind the monitor exactly as it does behind a real ptrace-based MVEE.

   Recovery support. Divergences, crashes and rendezvous stalls of
   non-master replicas are first offered to the group's recovery policy via
   [Context.replica_fault]; only when the policy declines (the default
   [Kill_group]) does the monitor shut the whole set down. A quarantined
   variant's rendezvous state is purged so the remaining replicas keep
   running degraded. Under [Respawn], a fresh replica re-executes from the
   start with every call forced onto the monitored path; GHUMVEE satisfies
   each from the master syscall journal (skip-with-result for I/O calls,
   pass-through for replicated calls) and splices the replica back into the
   group when it catches up with the journal at a live rendezvous point. *)

open Remon_kernel
open Remon_sim

type arrival = { variant : int; th : Proc.thread; call : Syscall.call }

type rstate =
  | Idle
  | Collecting of { arrivals : arrival list; count : int }
      (* [count = List.length arrivals], maintained so the per-arrival
         completeness check is O(1) instead of a list walk per syscall *)
  | Master_running of { slaves : arrival list; nslaves : int }
      (* the master is executing; only the waiting slaves matter at its
         exit stop, so they are pre-split (and pre-counted) here *)
  | Await_slave_exits of { mutable remaining : int }
  | All_running of { mutable remaining : int }

type t = {
  g : Context.group;
  kernel : Kernel.t;
  rendezvous : (int, rstate) Hashtbl.t; (* thread rank -> state *)
  seqs : (int, int) Hashtbl.t; (* rank -> state generation, for the watchdog *)
  mutable busy_until : Vtime.t;
  deferred_signals : int Queue.t;
  watchdog_ns : Vtime.t;
  max_watchdog_retries : int;
  replaying : (int, (int, int) Hashtbl.t) Hashtbl.t;
      (* respawned variant -> per-rank journal replay position *)
  waiting_replay : (int * int, arrival) Hashtbl.t;
      (* (rank, variant) -> replaying arrival parked at the journal head *)
  mutable exits_seen : (int * int) list; (* variant, exit code *)
  mutable shutting_down : bool;
  (* statistics *)
  mutable rendezvous_count : int;
  mutable results_copied : int;
  mutable signals_deferred : int;
  mutable signals_injected : int;
  mutable maps_filtered : int;
  mutable shm_rejected : int;
  mutable replayed_records : int;
}

let create (g : Context.group) ?(watchdog_ns = Vtime.s 10)
    ?(watchdog_retries = 2) () =
  {
    g;
    kernel = g.Context.kernel;
    rendezvous = Hashtbl.create 8;
    seqs = Hashtbl.create 8;
    busy_until = Vtime.zero;
    deferred_signals = Queue.create ();
    watchdog_ns;
    max_watchdog_retries = watchdog_retries;
    replaying = Hashtbl.create 4;
    waiting_replay = Hashtbl.create 4;
    exits_seen = [];
    shutting_down = false;
    rendezvous_count = 0;
    results_copied = 0;
    signals_deferred = 0;
    signals_injected = 0;
    maps_filtered = 0;
    shm_rejected = 0;
    replayed_records = 0;
  }

let rank_state t rank =
  match Hashtbl.find_opt t.rendezvous rank with Some s -> s | None -> Idle

let bump_seq t rank =
  let s = match Hashtbl.find_opt t.seqs rank with Some s -> s | None -> 0 in
  Hashtbl.replace t.seqs rank (s + 1);
  s + 1

let set_state t rank st =
  Hashtbl.replace t.rendezvous rank st;
  ignore (bump_seq t rank)

let variant_of (p : Proc.process) =
  match p.Proc.replica_info with
  | Some { Proc.variant_index; _ } -> variant_index
  | None -> -1

let journal t = t.g.Context.rb.Replication_buffer.sync_log

(* Monitor-context trace events (pid/tid 0): rendezvous lifecycle and the
   watchdog. One match on the sink per site; nothing runs when it's off.
   Metric keys for the fixed event vocabulary are interned at module init:
   the per-rendezvous tallies do not concatenate strings. *)
let rendezvous_key = function
  | "collect" -> "rendezvous.collect"
  | "release" -> "rendezvous.release"
  | "args_mismatch" -> "rendezvous.args_mismatch"
  | "watchdog_retry" -> "rendezvous.watchdog_retry"
  | "watchdog_timeout" -> "rendezvous.watchdog_timeout"
  | "respawn_replay" -> "rendezvous.respawn_replay"
  | n -> "rendezvous." ^ n

let obs_instant t ~ts ~name args =
  match Kernel.obs t.kernel with
  | None -> ()
  | Some o ->
    Remon_obs.Trace.instant o.Remon_obs.Obs.trace ~ts ~cat:"rendezvous" ~name
      ~pid:0 ~tid:0 args;
    Remon_obs.Metrics.incr o.Remon_obs.Obs.metrics (rendezvous_key name)

(* Charges the monitor's serialized processing time starting no earlier
   than [earliest], and returns the completion instant. *)
let monitor_work t ~earliest ~work_ns =
  let t0 = Vtime.max earliest (Vtime.max t.busy_until (Kernel.now t.kernel)) in
  let done_at = Vtime.add t0 (Vtime.ns work_ns) in
  t.busy_until <- done_at;
  done_at

(* ------------------------------------------------------------------ *)
(* Shutdown *)

let shutdown t verdict =
  if not t.shutting_down then begin
    t.shutting_down <- true;
    t.g.Context.shutdown <- true;
    Context.set_divergence t.g verdict;
    Array.iter
      (fun p -> Kernel.kill_process t.kernel p ~code:134)
      t.g.Context.replicas
  end

(* Operator-initiated teardown (fleet rolling restarts): stop monitoring
   without recording a divergence verdict — pending watchdogs go quiet. *)
let quiesce t =
  t.shutting_down <- true;
  t.g.Context.shutdown <- true

(* Offer a non-master replica fault to the recovery policy; escalate to the
   group-killing verdict when the policy declines. *)
let recover_or_shutdown t ~variant verdict =
  if variant = 0 || not (Context.replica_fault t.g ~variant verdict) then
    shutdown t verdict

(* Called via process-exit waiters when a replica dies abnormally (e.g. the
   intentional crash IP-MON uses to signal divergence, or an injected crash
   fault). Quarantined and replaying replicas die under monitor control;
   their exits are not faults. *)
let replica_died t ~variant ~code =
  if
    (not t.shutting_down) && code >= 128
    && not (Context.is_quarantined t.g variant)
  then
    recover_or_shutdown t ~variant
      (Divergence.Replica_crash { variant; signal = code - 128 })

(* ------------------------------------------------------------------ *)
(* Monitored-call handling *)

(* Shared-memory policy (Section 2.1): reject writable segments that could
   form unmonitored bi-directional channels between replicas, except the
   MVEE's own RB / file-map segments. *)
let shm_verdict (call : Syscall.call) =
  match call with
  | Syscall.Shmget { key; _ } when key < Context.mvee_shm_key_base ->
    Some (Syscall.Error Errno.EACCES)
  | Syscall.Shmat _ -> None (* shmat of an approved segment is fine *)
  | _ -> None

(* Translates the master's result for one slave variant and installs any
   descriptor stubs so fd numbering stays aligned. *)
let translate_for_slave t ~(arrival : arrival) ~(call : Syscall.call)
    (result : Syscall.result) =
  let slave_proc = arrival.th.Proc.proc in
  List.iter
    (fun fd ->
      Hashtbl.replace slave_proc.Proc.fds fd
        (Proc.make_desc (Proc.Replicated_handle fd)))
    (Callinfo.fds_created call result);
  List.iter
    (fun fd -> Hashtbl.remove slave_proc.Proc.fds fd)
    (Callinfo.fds_closed call result);
  match result with
  | Syscall.Ok_epoll events ->
    let logical = Epoll_map.to_logical t.g.Context.epoll_map events in
    Syscall.Ok_epoll
      (Epoll_map.to_variant t.g.Context.epoll_map ~variant:arrival.variant logical)
  | r -> r

(* Post-execution bookkeeping on the master's side. *)
let master_side_effects t ~(call : Syscall.call) (result : Syscall.result) =
  let master = t.g.Context.replicas.(0) in
  (* keep the IP-MON file map in sync with fd lifecycle changes *)
  (match call with
  | Syscall.Open _ | Syscall.Openat _ | Syscall.Creat _ | Syscall.Close _
  | Syscall.Dup _ | Syscall.Dup2 _ | Syscall.Pipe | Syscall.Socket _
  | Syscall.Socketpair _ | Syscall.Accept _ | Syscall.Accept4 _
  | Syscall.Connect _ | Syscall.Listen _ | Syscall.Epoll_create
  | Syscall.Timerfd_create | Syscall.Fcntl _ | Syscall.Ioctl _ ->
    File_map.sync_from_process t.g.Context.file_map master
  | _ -> ());
  (* filter the maps file: hide IP-MON and RB regions (Section 3.6) *)
  match (call, result) with
  | (Syscall.Open ("/proc/self/maps", _) | Syscall.Openat ("/proc/self/maps", _)),
    Syscall.Ok_int fd -> (
    match Proc.desc_of_fd master fd with
    | Some ({ kind = Proc.Proc_maps pm; _ } as _d) ->
      let hide (r : Vm.region) =
        match r.Vm.backing with
        | Vm.Ipmon_code | Vm.Shm_seg _ -> true
        | _ -> false
      in
      pm.content <- Vm.maps_text ~hide master.Proc.vm;
      t.maps_filtered <- t.maps_filtered + 1
    | _ -> ())
  | _ -> ()

(* Injects deferred asynchronous signals now that every replica sits at an
   equivalent rendezvous point. *)
let inject_deferred t (arrivals : arrival list) =
  while not (Queue.is_empty t.deferred_signals) do
    let sg = Queue.pop t.deferred_signals in
    t.signals_injected <- t.signals_injected + 1;
    (* every replica receives the injection at the same logical point, so
       the recording carries one event, stamped with the rendezvous rank *)
    (match arrivals with
    | a :: _ -> Record_log.note_signal (journal t) ~rank:a.th.Proc.rank ~signo:sg
    | [] -> ());
    List.iter (fun a -> Kernel.inject_signal_now t.kernel a.th sg) arrivals
  done;
  t.g.Context.rb.Replication_buffer.signals_pending <- false

(* The rendezvous is complete: compare, decide, resume. When a slave's
   arguments diverge, the recovery policy may quarantine it, in which case
   the rendezvous is re-run with the survivors. *)
let rec process_rendezvous t rank (arrivals : arrival list) =
  t.rendezvous_count <- t.rendezvous_count + 1;
  let arrivals =
    List.sort (fun a b -> compare a.variant b.variant) arrivals
  in
  let master_arrival = List.hd arrivals in
  let narrivals = List.length arrivals in
  let call = master_arrival.call in
  let cost = Kernel.cost t.kernel in
  (* serialize through the monitor and charge comparison work *)
  let latest_arrival =
    List.fold_left (fun acc a -> Vtime.max acc a.th.Proc.clock) Vtime.zero arrivals
  in
  let work =
    cost.Cost_model.monitor_work_ns
    + Cost_model.compare_ns cost ~bytes:(Syscall.arg_bytes call * narrivals)
  in
  let done_at = monitor_work t ~earliest:latest_arrival ~work_ns:work in
  List.iter
    (fun a -> a.th.Proc.clock <- Vtime.max a.th.Proc.clock done_at)
    arrivals;
  obs_instant t ~ts:done_at ~name:"release"
    [
      ("rank", Remon_obs.Trace.Int rank);
      ("arrivals", Remon_obs.Trace.Int narrivals);
      ("call", Remon_obs.Trace.Str (Syscall.to_string call));
    ];
  (* deep argument comparison *)
  let mismatch =
    List.find_opt
      (fun a -> not (Callinfo.equal_normalized a.call call))
      (List.tl arrivals)
  in
  match mismatch with
  | Some bad ->
    let verdict =
      Divergence.Args_mismatch
        {
          rank;
          index = bad.th.Proc.syscall_index;
          expected = Divergence.render_call call;
          got = Divergence.render_call bad.call;
          variant = bad.variant;
          detector = Divergence.By_ghumvee;
        }
    in
    obs_instant t ~ts:done_at ~name:"args_mismatch"
      [
        ("rank", Remon_obs.Trace.Int rank);
        ("variant", Remon_obs.Trace.Int bad.variant);
      ];
    if Context.replica_fault t.g ~variant:bad.variant verdict then
      (* the bad replica was quarantined (and killed); the survivors still
         sit at their entry stops — re-run the rendezvous without it *)
      process_rendezvous t rank
        (List.filter (fun a -> a.variant <> bad.variant) arrivals)
    else shutdown t verdict
  | None -> (
    (* equivalent states: temporal-policy feedback + deferred signals *)
    Ikb.note_approval t.g.Context.ikb (Syscall.number call);
    if not (Queue.is_empty t.deferred_signals) then inject_deferred t arrivals;
    (* epoll registrations carry per-variant pointers: record them *)
    List.iter
      (fun a ->
        match a.call with
        | Syscall.Epoll_ctl { op = Syscall.Epoll_add | Syscall.Epoll_mod; fd; user_data; _ } ->
          Epoll_map.register t.g.Context.epoll_map ~variant:a.variant ~fd ~user_data
        | Syscall.Epoll_ctl { op = Syscall.Epoll_del; fd; _ } ->
          Epoll_map.unregister t.g.Context.epoll_map ~variant:a.variant ~fd
        | _ -> ())
      arrivals;
    (* shared-memory policy *)
    match shm_verdict call with
    | Some denial ->
      (* rejection is a policy action, not a divergence: deny in all *)
      t.shm_rejected <- t.shm_rejected + 1;
      Record_log.journal_append (journal t) ~rank
        ~call:(Callinfo.normalize call) ~result:denial;
      set_state t rank Idle;
      List.iter
        (fun a -> Kernel.resume t.kernel a.th (Proc.Resume_skip denial))
        arrivals
    | None -> (
      match Callinfo.disposition call with
      | Callinfo.All_call ->
        set_state t rank (All_running { remaining = narrivals });
        List.iter
          (fun a -> Kernel.resume t.kernel a.th Proc.Resume_continue)
          arrivals
      | Callinfo.Master_call ->
        (* arrivals are sorted by variant, master first *)
        set_state t rank
          (Master_running { slaves = List.tl arrivals; nslaves = narrivals - 1 });
        Kernel.resume t.kernel master_arrival.th Proc.Resume_continue))

(* ------------------------------------------------------------------ *)
(* Quarantine support *)

(* Remove a quarantined variant from all in-flight rendezvous state so the
   surviving replicas are not stranded waiting for it. Called by the
   recovery handler right after the variant's process is killed. *)
let purge_variant t ~variant =
  Hashtbl.remove t.replaying variant;
  let stale =
    Hashtbl.fold
      (fun ((_, v) as key) _ acc -> if v = variant then key :: acc else acc)
      t.waiting_replay []
  in
  List.iter (Hashtbl.remove t.waiting_replay) stale;
  let ranks = Hashtbl.fold (fun r _ acc -> r :: acc) t.rendezvous [] in
  List.iter
    (fun rank ->
      match rank_state t rank with
      | Idle -> ()
      | Collecting { arrivals; _ } -> (
        let arrivals = List.filter (fun a -> a.variant <> variant) arrivals in
        match arrivals with
        | [] -> set_state t rank Idle
        | _ ->
          let count = List.length arrivals in
          if count >= Context.active_count t.g then begin
            set_state t rank Idle;
            process_rendezvous t rank arrivals
          end
          else set_state t rank (Collecting { arrivals; count }))
      | Master_running { slaves; _ } ->
        let slaves = List.filter (fun a -> a.variant <> variant) slaves in
        set_state t rank
          (Master_running { slaves; nslaves = List.length slaves })
      | Await_slave_exits st ->
        st.remaining <- st.remaining - 1;
        if st.remaining <= 0 then set_state t rank Idle
      | All_running st ->
        st.remaining <- st.remaining - 1;
        if st.remaining <= 0 then set_state t rank Idle)
    ranks

(* ------------------------------------------------------------------ *)
(* Stop-event handlers *)

(* Bounded retry with doubled delay: a stalled arrival (e.g. an injected
   rendezvous delay) gets [max_watchdog_retries] grace periods before the
   monitor escalates. Escalation quarantines the missing slaves when the
   policy allows; a missing master (or a declined policy) kills the group. *)
let rec arm_watchdog ?(attempt = 0) t rank =
  let seq = match Hashtbl.find_opt t.seqs rank with Some s -> s | None -> 0 in
  let delay = Vtime.scale t.watchdog_ns (2. ** float_of_int attempt) in
  Kernel.schedule t.kernel
    ~time:(Vtime.add (Kernel.now t.kernel) delay)
    (fun () ->
      let cur = match Hashtbl.find_opt t.seqs rank with Some s -> s | None -> 0 in
      if (not t.shutting_down) && cur = seq then begin
        match rank_state t rank with
        | Collecting { arrivals; _ } ->
          if attempt < t.max_watchdog_retries then begin
            t.g.Context.watchdog_retries <- t.g.Context.watchdog_retries + 1;
            obs_instant t ~ts:(Kernel.now t.kernel) ~name:"watchdog_retry"
              [
                ("rank", Remon_obs.Trace.Int rank);
                ("attempt", Remon_obs.Trace.Int attempt);
              ];
            arm_watchdog ~attempt:(attempt + 1) t rank
          end
          else begin
            obs_instant t ~ts:(Kernel.now t.kernel) ~name:"watchdog_timeout"
              [ ("rank", Remon_obs.Trace.Int rank) ];
            let present = List.map (fun a -> a.variant) arrivals in
            let missing =
              List.filter
                (fun v -> not (List.mem v present))
                (Context.active_variants t.g)
            in
            let a = List.hd arrivals in
            let index = a.th.Proc.syscall_index in
            let verdict =
              Divergence.Rendezvous_timeout { rank; index; missing }
            in
            if List.mem 0 missing then shutdown t verdict
            else if
              not
                (List.for_all
                   (fun v ->
                     Context.replica_fault t.g ~variant:v
                       (Divergence.Rendezvous_timeout
                          { rank; index; missing = [ v ] }))
                   missing)
            then shutdown t verdict
          end
        | _ -> ()
      end)

(* A respawned variant finished its journal replay: splice it back in. *)
let rejoin_variant t ~variant =
  Hashtbl.remove t.replaying variant;
  Ikb.set_replaying t.g.Context.ikb ~variant false;
  Replication_buffer.reactivate t.g.Context.rb ~variant;
  Context.rejoin t.g ~variant

let rec handle_entry t (th : Proc.thread) (call : Syscall.call) =
  if t.shutting_down then () (* replicas are being killed; leave it stopped *)
  else begin
    let rank = th.Proc.rank in
    let variant = variant_of th.Proc.proc in
    match Hashtbl.find_opt t.replaying variant with
    | Some positions -> replay_entry t th call ~variant ~positions
    | None ->
      (* replaying variants parked at the journal head rejoin at the
         master's next monitored entry: their parked call is this very
         rendezvous *)
      if variant = 0 then flush_waiting_rejoin t ~rank;
      obs_instant t ~ts:th.Proc.clock ~name:"collect"
        [
          ("rank", Remon_obs.Trace.Int rank);
          ("variant", Remon_obs.Trace.Int variant);
          ("index", Remon_obs.Trace.Int th.Proc.syscall_index);
        ];
      let arrival = { variant; th; call } in
      (match rank_state t rank with
      | Idle ->
        set_state t rank (Collecting { arrivals = [ arrival ]; count = 1 });
        if Context.active_count t.g = 1 then process_rendezvous t rank [ arrival ]
        else arm_watchdog t rank
      | Collecting { arrivals; count } ->
        let arrivals = arrival :: arrivals in
        let count = count + 1 in
        if count >= Context.active_count t.g then begin
          set_state t rank Idle;
          process_rendezvous t rank arrivals
        end
        else set_state t rank (Collecting { arrivals; count })
      | Master_running _ | Await_slave_exits _ | All_running _ ->
        (* a thread re-entered the kernel while its rank's previous call is
           still being processed: possible under attack; treat as sequence
           divergence *)
        shutdown t
          (Divergence.Sequence_mismatch
             {
               rank;
               index = th.Proc.syscall_index;
               calls = [ Divergence.render_call call ];
             }))
  end

(* One replayed call of a respawned replica: verify it against the journal
   and satisfy it the way the original execution went. *)
and replay_entry t (th : Proc.thread) (call : Syscall.call) ~variant ~positions
    =
  let rank = th.Proc.rank in
  let log = journal t in
  let pos =
    match Hashtbl.find_opt positions rank with Some p -> p | None -> 0
  in
  match Record_log.journal_nth log ~rank pos with
  | Some { Record_log.jcall; jresult } ->
    if not (Callinfo.equal_normalized call jcall) then begin
      (* the replay diverged from the journal: the respawn failed; the
         replica dies and stays quarantined *)
      Hashtbl.remove t.replaying variant;
      Ikb.set_replaying t.g.Context.ikb ~variant false;
      Kernel.kill_process t.kernel th.Proc.proc ~code:134
    end
    else begin
      Hashtbl.replace positions rank (pos + 1);
      t.replayed_records <- t.replayed_records + 1;
      let cost = Kernel.cost t.kernel in
      (* the follower replays in-process from its journal copy — it pays
         no ptrace round trip and does not serialize through the monitor;
         refund the entry-stop charge and bill the cheap replay step, or
         the follower could never outpace the master and catch up *)
      th.Proc.clock <-
        Vtime.add
          (Vtime.sub th.Proc.clock (Vtime.ns (Cost_model.ptrace_stop_ns cost)))
          (Vtime.ns cost.Cost_model.replay_record_ns);
      match Callinfo.disposition jcall with
      | Callinfo.Master_call ->
        let r =
          translate_for_slave t ~arrival:{ variant; th; call } ~call jresult
        in
        Kernel.resume t.kernel th (Proc.Resume_skip r)
      | Callinfo.All_call -> Kernel.resume t.kernel th Proc.Resume_continue
    end
  | None -> (
    (* caught up with everything the master has done; degraded time stops
       accruing here, not at the (possibly much later) lockstep rejoin *)
    Context.note_caught_up t.g ~at:th.Proc.clock;
    match rank_state t rank with
    | Collecting _ ->
      (* a live rendezvous is pending on this rank: this very call is the
         one being collected — rejoin and take part *)
      rejoin_variant t ~variant;
      handle_entry t th call
    | _ ->
      (* park until the journal grows or the master reaches a rendezvous *)
      Hashtbl.replace t.waiting_replay (rank, variant) { variant; th; call })

(* The journal gained a record on [rank]: parked replaying arrivals can
   consume it. Wired to [Record_log.set_on_journal_append]. *)
and feed_waiting t ~rank =
  let parked =
    Hashtbl.fold
      (fun (r, _) a acc -> if r = rank then a :: acc else acc)
      t.waiting_replay []
  in
  List.iter
    (fun (a : arrival) ->
      if Hashtbl.mem t.replaying a.variant then begin
        Hashtbl.remove t.waiting_replay (rank, a.variant);
        handle_entry t a.th a.call
      end)
    parked

(* The master reached a monitored entry on [rank]: parked arrivals that
   drained the journal are synchronized with it — rejoin them first so the
   rendezvous counts them. *)
and flush_waiting_rejoin t ~rank =
  let parked =
    Hashtbl.fold
      (fun (r, _) a acc -> if r = rank then a :: acc else acc)
      t.waiting_replay []
  in
  List.iter
    (fun (a : arrival) ->
      if Hashtbl.mem t.replaying a.variant then begin
        Hashtbl.remove t.waiting_replay (rank, a.variant);
        rejoin_variant t ~variant:a.variant;
        handle_entry t a.th a.call
      end)
    parked

(* Install the journal feed; idempotent, called when Respawn is armed. *)
let enable_replay_feed t =
  Record_log.set_on_journal_append (journal t) (fun ~rank -> feed_waiting t ~rank)

let is_replaying t ~variant = Hashtbl.mem t.replaying variant

(* A respawned variant starts replaying the journal from the beginning. *)
let begin_replay t ~variant =
  enable_replay_feed t;
  obs_instant t ~ts:(Kernel.now t.kernel) ~name:"respawn_replay"
    [ ("variant", Remon_obs.Trace.Int variant) ];
  Hashtbl.replace t.replaying variant (Hashtbl.create 4);
  Ikb.set_replaying t.g.Context.ikb ~variant true

let handle_exit t (th : Proc.thread) (call : Syscall.call)
    (result : Syscall.result) =
  if t.shutting_down then ()
  else begin
    let rank = th.Proc.rank in
    let variant = variant_of th.Proc.proc in
    if Hashtbl.mem t.replaying variant || Context.is_quarantined t.g variant
    then begin
      (* replayed All_calls run to completion outside any rendezvous; the
         exit stop is ptrace-free for the in-process follower too *)
      if Hashtbl.mem t.replaying variant then
        th.Proc.clock <-
          Vtime.sub th.Proc.clock
            (Vtime.ns (Cost_model.ptrace_stop_ns (Kernel.cost t.kernel)));
      Kernel.resume t.kernel th Proc.Resume_continue
    end
    else begin
      let cost = Kernel.cost t.kernel in
      match rank_state t rank with
      | Master_running { slaves; nslaves } when variant = 0 ->
        (* master finished: replicate results to the waiting slaves *)
        master_side_effects t ~call result;
        Record_log.journal_append (journal t) ~rank
          ~call:(Callinfo.normalize call) ~result;
        let bytes = Syscall.result_bytes result in
        let done_at =
          monitor_work t ~earliest:th.Proc.clock
            ~work_ns:(cost.Cost_model.monitor_work_ns + Cost_model.copy_ns cost ~bytes)
        in
        th.Proc.clock <- Vtime.max th.Proc.clock done_at;
        (* transition the rank state *before* resuming anyone: the slaves'
           skip-exit stops arrive synchronously and must find it *)
        (match slaves with
        | [] -> set_state t rank Idle
        | _ -> set_state t rank (Await_slave_exits { remaining = nslaves }));
        List.iter
          (fun a ->
            let r = translate_for_slave t ~arrival:a ~call:a.call result in
            a.th.Proc.clock <-
              Vtime.add
                (Vtime.max a.th.Proc.clock done_at)
                (Vtime.ns (Cost_model.copy_ns cost ~bytes));
            (Kernel.stats t.kernel).Kstate.bytes_copied_xproc <-
              (Kernel.stats t.kernel).Kstate.bytes_copied_xproc + bytes;
            t.results_copied <- t.results_copied + 1;
            Kernel.resume t.kernel a.th (Proc.Resume_skip r))
          slaves;
        Kernel.resume t.kernel th Proc.Resume_continue
      | Await_slave_exits st ->
        st.remaining <- st.remaining - 1;
        if st.remaining = 0 then set_state t rank Idle;
        Kernel.resume t.kernel th Proc.Resume_continue
      | All_running st ->
        if variant = 0 then
          Record_log.journal_append (journal t) ~rank
            ~call:(Callinfo.normalize call) ~result;
        st.remaining <- st.remaining - 1;
        if st.remaining = 0 then set_state t rank Idle;
        Kernel.resume t.kernel th Proc.Resume_continue
      | Idle | Collecting _ | Master_running _ ->
        (* exit stop with no rendezvous in flight (e.g. after a skip/fallback
           path): just let it through *)
        Kernel.resume t.kernel th Proc.Resume_continue
    end
  end

let handle_signal t (th : Proc.thread) sg =
  if t.shutting_down then ()
  else if Sigdefs.synchronous sg then begin
    Record_log.note_signal (journal t) ~rank:th.Proc.rank ~signo:sg;
    Kernel.resume t.kernel th Proc.Resume_deliver
  end
  else begin
    (* defer: take ownership and set the RB flag so replicas restart calls
       as monitored calls until the injection happens (Section 3.8) *)
    t.signals_deferred <- t.signals_deferred + 1;
    Queue.push sg t.deferred_signals;
    t.g.Context.rb.Replication_buffer.signals_pending <- true;
    (* abort the master's blocked unmonitored calls so it reaches a
       rendezvous quickly *)
    Array.iter
      (fun (p : Proc.process) ->
        Remon_util.Vec.iter
          (fun (other : Proc.thread) ->
            if other != th then
              ignore
                (Kernel.interrupt_blocked t.kernel other
                   (Syscall.Error Errno.EINTR)))
          p.Proc.threads)
      t.g.Context.replicas;
    Kernel.resume t.kernel th Proc.Resume_suppress
  end

let handle_death t (th : Proc.thread) code =
  let variant = variant_of th.Proc.proc in
  (* quarantined / replaying replicas die under monitor control: their
     exits don't take part in the exit-code agreement check *)
  if
    not
      (Context.is_quarantined t.g variant || Hashtbl.mem t.replaying variant)
  then begin
    t.exits_seen <- (variant, code) :: t.exits_seen;
    if not t.shutting_down then begin
      (* when all active replicas have exited, verify the exit codes agree *)
      let active = Context.active_variants t.g in
      let seen_active =
        List.filter (fun (v, _) -> List.mem v active) t.exits_seen
      in
      let exited = List.sort_uniq compare (List.map fst seen_active) in
      if List.length exited = Context.active_count t.g then begin
        let codes = List.sort_uniq compare (List.map snd seen_active) in
        if List.length codes > 1 then
          Context.set_divergence t.g
            (Divergence.Exit_mismatch { codes = List.rev seen_active })
      end
    end
  end;
  Kernel.resume t.kernel th Proc.Resume_continue

(* ------------------------------------------------------------------ *)
(* Attachment *)

let tracer t =
  {
    Proc.tracer_name = "ghumvee";
    on_stop =
      (fun th reason ->
        match reason with
        | Proc.Syscall_entry_stop call -> handle_entry t th call
        | Proc.Syscall_exit_stop (call, result) -> handle_exit t th call result
        | Proc.Signal_delivery_stop sg -> handle_signal t th sg
        | Proc.Exit_stop code -> handle_death t th code);
  }

let attach t (p : Proc.process) =
  Kernel.attach_tracer p (tracer t);
  let variant = variant_of p in
  Kernel.on_process_exit p (fun code -> replica_died t ~variant ~code)
