(** The IP-MON file map (Section 3.6): one byte of GHUMVEE-maintained
    metadata per file descriptor (type + blocking mode), mapped read-only
    into every replica. IP-MON consults it for conditional policies and
    blocking prediction. *)

open Remon_kernel

type t = {
  classes : Proc.fd_class option array;
  nonblocking : bool array;
  mutable updates : int; (** write generation, for tests *)
  mutable high_water : int;
      (** highest fd ever populated; bounds full-table refreshes *)
}

type Shm.payload += File_map_payload of t

val max_fds : int (** 4096: a page of one-byte records *)

val create : unit -> t
val set : t -> fd:int -> cls:Proc.fd_class -> nonblocking:bool -> unit
val clear : t -> fd:int -> unit
val set_nonblocking : t -> fd:int -> bool -> unit
val class_of : t -> fd:int -> Proc.fd_class option
val is_socket : t -> fd:int -> bool

val may_block : t -> fd:int -> bool
(** Listing 1's MAYBE_BLOCKING: non-blocking descriptors always return
    immediately; blocking ones may suspend the call. *)

val sync_from_process : t -> Proc.process -> unit
(** Refresh from the master replica's fd table; GHUMVEE calls this after
    arbitrating fd-lifecycle calls. *)
