(* Versioned binary recordings of a replicated run. See the interface for
   the layout; the encoding discipline lives in [Syswire]. *)

open Remon_kernel

let version = 1
let magic = "RMRC"

type header = {
  backend : string;
  nreplicas : int;
  seed : int;
  level : string;
  on_failure : string;
  faults : string;
  workload : string;
  shm_key : int; (* the group's SysV key; 0 = unknown (allocate fresh) *)
}

type event =
  | Call of { rank : int; call : Syscall.call; result : Syscall.result }
  | Lock of { lock_id : int; thread_rank : int }
  | Signal of { rank : int; signo : int }
  | Flush of { reason : string; count : int }

type t = {
  header : header;
  events : event array;
  verdict : (string * string) option;
}

let equal_event a b =
  match (a, b) with
  | Call a, Call b ->
    a.rank = b.rank
    && Syscall.equal_call a.call b.call
    && Syscall.equal_result a.result b.result
  | Lock a, Lock b -> a.lock_id = b.lock_id && a.thread_rank = b.thread_rank
  | Signal a, Signal b -> a.rank = b.rank && a.signo = b.signo
  | Flush a, Flush b -> a.reason = b.reason && a.count = b.count
  | _ -> false

let event_to_string = function
  | Call { rank; call; result } ->
    Printf.sprintf "call  rank=%d %s -> %s" rank (Syscall.to_string call)
      (Format.asprintf "%a" Syscall.pp_result result)
  | Lock { lock_id; thread_rank } ->
    Printf.sprintf "lock  id=%d rank=%d" lock_id thread_rank
  | Signal { rank; signo } -> Printf.sprintf "signal rank=%d signo=%d" rank signo
  | Flush { reason; count } -> Printf.sprintf "flush %s count=%d" reason count

(* ------------------------------------------------------------------ *)
(* Serialization *)

let write_event w = function
  | Call { rank; call; result } ->
    Syswire.W.u8 w 0;
    Syswire.W.uint w rank;
    Syswire.write_call w call;
    Syswire.write_result w result
  | Lock { lock_id; thread_rank } ->
    Syswire.W.u8 w 1;
    Syswire.W.int w lock_id;
    Syswire.W.uint w thread_rank
  | Signal { rank; signo } ->
    Syswire.W.u8 w 2;
    Syswire.W.uint w rank;
    Syswire.W.uint w signo
  | Flush { reason; count } ->
    Syswire.W.u8 w 3;
    Syswire.W.str w reason;
    Syswire.W.uint w count

let read_event r =
  match Syswire.R.u8 r with
  | 0 ->
    let rank = Syswire.R.uint r in
    let call = Syswire.read_call r in
    let result = Syswire.read_result r in
    Call { rank; call; result }
  | 1 ->
    let lock_id = Syswire.R.int r in
    Lock { lock_id; thread_rank = Syswire.R.uint r }
  | 2 ->
    let rank = Syswire.R.uint r in
    Signal { rank; signo = Syswire.R.uint r }
  | 3 ->
    let reason = Syswire.R.str r in
    Flush { reason; count = Syswire.R.uint r }
  | _ -> raise (Syswire.Fail (Syswire.Corrupt "bad event tag"))

let write_header w h =
  Syswire.W.str w h.backend;
  Syswire.W.uint w h.nreplicas;
  Syswire.W.int w h.seed;
  Syswire.W.str w h.level;
  Syswire.W.str w h.on_failure;
  Syswire.W.str w h.faults;
  Syswire.W.str w h.workload;
  Syswire.W.uint w h.shm_key

let read_header r =
  let backend = Syswire.R.str r in
  let nreplicas = Syswire.R.uint r in
  let seed = Syswire.R.int r in
  let level = Syswire.R.str r in
  let on_failure = Syswire.R.str r in
  let faults = Syswire.R.str r in
  let workload = Syswire.R.str r in
  let shm_key = Syswire.R.uint r in
  { backend; nreplicas; seed; level; on_failure; faults; workload; shm_key }

let to_string t =
  let w = Syswire.W.create ~initial:4096 () in
  String.iter (fun c -> Syswire.W.u8 w (Char.code c)) magic;
  Syswire.W.u8 w version;
  write_header w t.header;
  Syswire.W.uint w (Array.length t.events);
  Array.iter (write_event w) t.events;
  (match t.verdict with
  | None -> Syswire.W.bool w false
  | Some (cls, rendered) ->
    Syswire.W.bool w true;
    Syswire.W.str w cls;
    Syswire.W.str w rendered);
  (* checksum over every byte written so far: any bit flip that still
     decodes structurally is caught here *)
  let body = Syswire.W.contents w in
  Syswire.W.str w (Digest.string body);
  Syswire.W.contents w

let of_string s =
  try
    let r = Syswire.R.of_string s in
    for i = 0 to String.length magic - 1 do
      if Syswire.R.u8 r <> Char.code magic.[i] then
        raise (Syswire.Fail (Syswire.Corrupt "bad magic"))
    done;
    let v = Syswire.R.u8 r in
    if v <> version then
      raise
        (Syswire.Fail (Syswire.Corrupt (Printf.sprintf "unsupported version %d" v)));
    let header = read_header r in
    let n = Syswire.R.uint r in
    if n > Syswire.R.remaining r then raise (Syswire.Fail Syswire.Truncated);
    let rec read_events acc i =
      if i = 0 then List.rev acc else read_events (read_event r :: acc) (i - 1)
    in
    let events = Array.of_list (read_events [] n) in
    let verdict =
      if Syswire.R.bool r then begin
        let cls = Syswire.R.str r in
        Some (cls, Syswire.R.str r)
      end
      else None
    in
    let body_len = Syswire.R.pos r in
    let sum = Syswire.R.str r in
    if Syswire.R.remaining r <> 0 then
      raise (Syswire.Fail (Syswire.Corrupt "trailing bytes"));
    if not (String.equal sum (Digest.string (String.sub s 0 body_len))) then
      raise (Syswire.Fail (Syswire.Corrupt "checksum mismatch"));
    Ok { header; events; verdict }
  with Syswire.Fail e -> Error e

let to_file t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (to_string t);
  close_out oc;
  Sys.rename tmp path

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error msg -> Error (Syswire.Corrupt msg)
  | exception End_of_file -> Error Syswire.Truncated

let with_workload t workload = { t with header = { t.header with workload } }

(* ------------------------------------------------------------------ *)
(* Digests *)

let event_bytes ev =
  let w = Syswire.W.create ~initial:64 () in
  write_event w ev;
  Syswire.W.contents w

let stream_digest t =
  let w = Syswire.W.create ~initial:4096 () in
  Array.iter (write_event w) t.events;
  Digest.to_hex (Digest.string (Syswire.W.contents w))

(* Chained prefix digests: d.(0) seeds on the event count alone;
   d.(i+1) = MD5(d.(i) ++ bytes(event i)). Prefix agreement between two
   streams is monotone in the prefix length, which is the invariant the
   bisection driver binary-searches. *)
let prefix_digests t =
  let n = Array.length t.events in
  let d = Array.make (n + 1) "" in
  d.(0) <- Digest.string "rmrc-prefix-0";
  for i = 0 to n - 1 do
    d.(i + 1) <- Digest.string (d.(i) ^ event_bytes t.events.(i))
  done;
  d

(* ------------------------------------------------------------------ *)
(* Live capture *)

type builder = {
  bheader : header;
  mutable bevents : event array;
  mutable blen : int;
}

let builder bheader = { bheader; bevents = [||]; blen = 0 }

let record b ev =
  if b.blen = Array.length b.bevents then begin
    let cap = max 256 (2 * b.blen) in
    let bigger = Array.make cap ev in
    Array.blit b.bevents 0 bigger 0 b.blen;
    b.bevents <- bigger
  end;
  b.bevents.(b.blen) <- ev;
  b.blen <- b.blen + 1

let event_count b = b.blen

let attach b log =
  Record_log.set_recorder log
    {
      Record_log.sink_call =
        (fun ~rank ~call ~result -> record b (Call { rank; call; result }));
      sink_lock =
        (fun ~lock_id ~thread_rank -> record b (Lock { lock_id; thread_rank }));
      sink_signal = (fun ~rank ~signo -> record b (Signal { rank; signo }));
      sink_flush = (fun ~reason ~count -> record b (Flush { reason; count }));
    }

let detach _b log = Record_log.clear_recorder log

let finish b ~verdict =
  { header = b.bheader; events = Array.sub b.bevents 0 b.blen; verdict }
