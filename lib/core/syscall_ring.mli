(** io_uring-style batched syscall submission/completion ring.

    Amortizes IP-MON's per-record replication costs (fixed-cost RB
    writes, FUTEX_WAKE, cache-line bounces) over a batch: the master
    executes each policy-exempt call immediately but parks the completed
    record here; the whole batch drains into the replication buffer in
    one rendezvous. Drain order is submission order, so per-rank RB
    streams — and therefore verdicts, digests, and trace bytes — are
    invariant under the batch size; only virtual time moves.

    Owned by {!Mvee} (one per group) when [Context.mode.ring_batch] > 1;
    the default batch of 1 bypasses the ring entirely. *)

open Remon_kernel
open Remon_sim

type flush_reason =
  | Full  (** a full batch of completions accumulated *)
  | Deadline  (** [flush_ns] elapsed since the batch's first submission *)
  | Barrier  (** a monitored call forces the pending batch out first *)
  | Overflow  (** pending bytes no longer fit the RB's free space *)
  | Demand  (** a slave needed a parked record before the batch filled *)

val flush_reason_to_string : flush_reason -> string

type slot
(** One in-flight record: reserved by {!submit}, finished by {!complete}. *)

type t = {
  rb : Replication_buffer.t;
  kernel : Kernel.t;
  nreplicas : int;
  batch : int;
  flush_ns : Vtime.t;
  wake_always : bool;
  mutable slots : slot array;
  mutable len : int;
  mutable filled_count : int;
  mutable pending_bytes : int;
  mutable epoch : int;
  mutable timer_armed : bool;
  mutable demand : bool;
  mutable submitted : int;
  mutable flushes : int;
  mutable flushes_full : int;
  mutable flushes_deadline : int;
  mutable flushes_barrier : int;
  mutable flushes_overflow : int;
  mutable flushes_demand : int;
  mutable records_flushed : int;
  mutable max_batch : int;
}

val create :
  rb:Replication_buffer.t ->
  kernel:Kernel.t ->
  nreplicas:int ->
  batch:int ->
  flush_ns:Vtime.t ->
  wake_always:bool ->
  t

val pending : t -> int
(** Live (submitted, not yet drained) records. *)

val pending_rank : t -> rank:int -> int
(** Live records submitted by [rank]; the run-ahead window counts these on
    top of {!Replication_buffer.lag}. *)

val pending_bytes : t -> int
(** RB space the live records will occupy when drained; the submitter's
    overflow guard keeps [used_bytes + pending_bytes] within the RB. *)

val submit :
  t -> th:Proc.thread -> call:Syscall.call -> expect_block:bool -> slot
(** Reserve the next slot for [th]'s (normalized) call. The caller
    executes the call and must eventually {!complete} the slot; drains
    skip over it until then. Arms the flush-deadline timer. *)

val complete : ?th:Proc.thread -> t -> slot -> Syscall.result -> unit
(** Record the call's logical result; triggers a [Full] drain once
    [batch] completions have accumulated (charged to [th]). *)

val flush : ?th:Proc.thread -> t -> flush_reason -> unit
(** Drain every completed record into the RB in submission order and
    issue one batch wake. Per-drain fixed costs are charged to [th];
    a deadline drain passes no thread and charges nobody. No-op when
    nothing is completed. *)

val demand : t -> th:Proc.thread -> rank:int -> bool
(** Slave-side pull: [rank]'s next record is parked in the ring, so drain
    the completed prefix directly out of the shared slots (costs the
    demander one ring-tail poll; the master pays nothing and no wake is
    issued). If the wanted record is still in flight, raises the demand
    flag so {!complete} publishes immediately instead of batching on.
    Returns true when records reached the RB. *)
