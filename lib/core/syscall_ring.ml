(* io_uring-style batched syscall submission/completion ring.

   In the paper's IP-MON, every policy-exempt call pays its replication
   overhead record by record: two fixed-cost RB writes (argument append,
   result publish), a cache-line bounce per slave, and — unless the
   per-record condition variable says nobody waits — a FUTEX_WAKE. The
   ring amortizes those fixed costs the way io_uring amortizes syscall
   entry: the master executes each exempt call immediately (run-ahead is
   unchanged) but parks the completed record in a local submission ring
   instead of the shared RB. When the ring drains — on a full batch, a
   flush deadline, a monitored-call barrier, or an imminent RB overflow —
   the whole batch lands in the RB in one rendezvous: one pair of
   fixed-cost RB writes, one wake, one round of cache-line traffic.

   Determinism: slot drain order is submission order, and within one
   thread rank at most one record can be incomplete (a thread cannot
   issue call N+1 before call N returned), so per-rank RB streams see
   exactly the sequence they would have seen unbatched. Verdicts,
   digests, and trace bytes are invariant under the batch size; only
   virtual time moves — which is precisely the ablation variable.

   The ring holds no [Context] reference so it sits below the MVEE
   layers; [Mvee] owns one per group when [Context.mode.ring_batch] > 1. *)

open Remon_kernel
open Remon_sim
module Rb = Replication_buffer

type flush_reason = Full | Deadline | Barrier | Overflow | Demand

let flush_reason_to_string = function
  | Full -> "full"
  | Deadline -> "deadline"
  | Barrier -> "barrier"
  | Overflow -> "overflow"
  | Demand -> "demand"

(* One submission slot; pooled and recycled so steady-state batching
   allocates nothing per call. *)
type slot = {
  mutable rank : int;
  mutable call : Syscall.call; (* normalized by the submitter *)
  mutable result : Syscall.result; (* logical form; valid when [filled] *)
  mutable filled : bool; (* completion arrived; drainable *)
  mutable expect_block : bool;
}

type t = {
  rb : Rb.t;
  kernel : Kernel.t;
  nreplicas : int;
  batch : int; (* filled records that trigger a drain *)
  flush_ns : Vtime.t; (* deadline: drain this long after first submit *)
  wake_always : bool;
      (* single-condvar ablation (mode.per_call_condvar = false): every
         drain pays the FUTEX_WAKE even with no demander, mirroring the
         unbatched path's unconditional per-record wake *)
  mutable slots : slot array; (* indices [0, len): live, submission order *)
  mutable len : int;
  mutable filled_count : int;
  mutable pending_bytes : int; (* RB space the live slots will occupy *)
  mutable epoch : int; (* bumped per drain; stale deadline timers bail *)
  mutable timer_armed : bool;
  mutable demand : bool;
      (* a slave is sleeping on an in-flight slot: publish at completion
         instead of batching further (the ring's analogue of the RB's
         per-record condvar waiter count). Re-asserted by the demanding
         slave on every re-poll, cleared at each drain. *)
  (* statistics *)
  mutable submitted : int;
  mutable flushes : int;
  mutable flushes_full : int;
  mutable flushes_deadline : int;
  mutable flushes_barrier : int;
  mutable flushes_overflow : int;
  mutable flushes_demand : int;
  mutable records_flushed : int;
  mutable max_batch : int; (* largest single drain *)
}

let fresh_slot () =
  {
    rank = 0;
    call = Syscall.Getpid;
    result = Syscall.Ok_unit;
    filled = false;
    expect_block = false;
  }

let create ~rb ~kernel ~nreplicas ~batch ~flush_ns ~wake_always =
  {
    rb;
    kernel;
    nreplicas;
    batch = max 1 batch;
    flush_ns;
    wake_always;
    slots = Array.init (max 8 (batch + 4)) (fun _ -> fresh_slot ());
    len = 0;
    filled_count = 0;
    pending_bytes = 0;
    epoch = 0;
    timer_armed = false;
    demand = false;
    submitted = 0;
    flushes = 0;
    flushes_full = 0;
    flushes_deadline = 0;
    flushes_barrier = 0;
    flushes_overflow = 0;
    flushes_demand = 0;
    records_flushed = 0;
    max_batch = 0;
  }

let pending t = t.len
let pending_bytes t = t.pending_bytes

(* Records of [rank] not yet drained; counts towards the master's logical
   run-ahead even though [Rb.lag] cannot see them. *)
let pending_rank t ~rank =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if t.slots.(i).rank = rank then incr n
  done;
  !n

(* Drain every completed slot into the RB, in submission order; incomplete
   slots (their calls still executing) compact to the front and stay
   pending. Fixed replication costs are charged once per drain, to the
   flushing thread — a deadline drain runs in monitor context and charges
   nobody, which is exactly the batching win the ablation measures. *)
let rec flush ?th t reason =
  if t.filled_count > 0 then begin
    let n = t.len in
    (* Wake-skip, inherited from the per-record condvar optimization
       (Section 3.7): only a drain triggered by a sleeping demander pays
       the FUTEX_WAKE; spinning slaves pick the batch up by polling. *)
    let wake = t.demand || t.wake_always in
    let drained = ref 0 in
    let keep = ref 0 in
    let seen_ranks = ref [] in
    for i = 0 to n - 1 do
      let s = t.slots.(i) in
      if s.filled then begin
        let entry =
          Rb.master_append t.rb ~rank:s.rank ~call:s.call
            ~expect_block:s.expect_block ~forwarded:false
        in
        (* append+publish are atomic from the slaves' view, so no slave can
           have registered on the record's condvar yet: the per-drain batch
           wake below replaces the per-record wake decision *)
        ignore (Rb.master_publish t.rb entry s.result);
        (* records behind an earlier same-rank record of this drain reach
           the slave in the same cache-line bounce round: its fixed read
           cost drops to a spin poll *)
        if List.mem s.rank !seen_ranks then entry.Rb.batch_follower <- true
        else seen_ranks := s.rank :: !seen_ranks;
        Record_log.journal_append t.rb.Rb.sync_log ~rank:s.rank ~call:s.call
          ~result:s.result;
        t.pending_bytes <-
          t.pending_bytes
          - (Rb.record_bytes s.call + Syscall.result_bytes s.result);
        s.filled <- false;
        incr drained
      end
      else begin
        (* swap, not overwrite: the records behind [keep] stay pooled *)
        let tmp = t.slots.(!keep) in
        t.slots.(!keep) <- s;
        t.slots.(i) <- tmp;
        incr keep
      end
    done;
    t.len <- !keep;
    t.filled_count <- 0;
    t.epoch <- t.epoch + 1;
    t.timer_armed <- false;
    t.demand <- false;
    t.flushes <- t.flushes + 1;
    (match reason with
    | Full -> t.flushes_full <- t.flushes_full + 1
    | Deadline -> t.flushes_deadline <- t.flushes_deadline + 1
    | Barrier -> t.flushes_barrier <- t.flushes_barrier + 1
    | Overflow -> t.flushes_overflow <- t.flushes_overflow + 1
    | Demand -> t.flushes_demand <- t.flushes_demand + 1);
    t.records_flushed <- t.records_flushed + !drained;
    if !drained > t.max_batch then t.max_batch <- !drained;
    Record_log.note_flush t.rb.Rb.sync_log
      ~reason:(flush_reason_to_string reason)
      ~count:!drained;
    (* fixed costs, once per drain instead of once per record: the append
       and publish writes, one round of cache-line bounces as the slaves
       pull the fresh records, and — only when someone sleeps — the wake *)
    (match th with
    | None -> ()
    | Some th ->
      let c = Kernel.cost t.kernel in
      Kstate.charge th
        ((2 * c.Cost_model.rb_write_fixed_ns)
        + (if wake then c.Cost_model.futex_wake_ns else 0)
        + ((t.nreplicas - 1) * c.Cost_model.cacheline_bounce_ns)));
    (* parked slaves re-poll and find the whole batch *)
    Kernel.kick t.kernel;
    if t.len > 0 then arm_timer t ~from:(Kernel.now t.kernel)
  end

(* Deadline timer: drains a stale partial batch [flush_ns] after its first
   record was submitted. Runs in monitor context (charges no replica). A
   timer that fires over an epoch with nothing completed simply disarms —
   it does NOT re-arm itself, so a ring wedged by a killed process cannot
   keep the event loop alive; the next submit/complete re-arms. *)
and arm_timer t ~from =
  if not t.timer_armed then begin
    t.timer_armed <- true;
    let epoch = t.epoch in
    Kernel.schedule t.kernel ~time:(Vtime.add from t.flush_ns) (fun () ->
        if t.epoch = epoch then begin
          t.timer_armed <- false;
          if t.filled_count > 0 then flush t Deadline
        end)
  end

let grow t =
  let old = t.slots in
  let n = Array.length old in
  t.slots <-
    Array.init (2 * n) (fun i -> if i < n then old.(i) else fresh_slot ())

(* Reserve the next slot. The caller executes the call and hands the
   logical result to [complete]; until then the slot is in flight and a
   drain skips over it. *)
let submit t ~(th : Proc.thread) ~call ~expect_block =
  if t.len = Array.length t.slots then grow t;
  let s = t.slots.(t.len) in
  t.len <- t.len + 1;
  s.rank <- th.Proc.rank;
  s.call <- call;
  s.filled <- false;
  s.expect_block <- expect_block;
  t.submitted <- t.submitted + 1;
  t.pending_bytes <- t.pending_bytes + Rb.record_bytes call;
  if not t.timer_armed then arm_timer t ~from:th.Proc.clock;
  s

let complete ?th t (s : slot) result =
  s.result <- result;
  s.filled <- true;
  t.filled_count <- t.filled_count + 1;
  t.pending_bytes <- t.pending_bytes + Syscall.result_bytes result;
  if t.filled_count >= t.batch then flush ?th t Full
  else if t.demand then
    (* a slave went to sleep on this in-flight record: publish now and pay
       the wake — batching further would trade its latency for nothing *)
    flush ?th t Demand
  else if not t.timer_armed then
    (* a slot that completed after its batch's deadline already fired
       still needs a bounded wait for company *)
    arm_timer t
      ~from:(match th with Some th -> th.Proc.clock | None -> Kernel.now t.kernel)

(* Slave side: the record [rank] needs next is still in the ring. The
   slots live in the same shared segment as the RB (io_uring-style), so a
   polling slave drains the completed prefix itself: one extra poll of the
   ring tail, no wake (the demander is the one awake), and none of the
   master's per-drain freight — the master keeps computing, which is the
   other half of the batching win. If the wanted record is still in
   flight, leave the demand flag up so [complete] publishes immediately.
   Returns true when records actually reached the RB (the caller's lookup
   will now succeed). *)
let demand t ~(th : Proc.thread) ~rank =
  if pending_rank t ~rank = 0 then false
  else begin
    let drained =
      if t.filled_count > 0 then begin
        Kstate.charge th (Kernel.cost t.kernel).Cost_model.spin_poll_ns;
        flush t Demand;
        true
      end
      else false
    in
    if pending_rank t ~rank > 0 then t.demand <- true;
    drained
  end
