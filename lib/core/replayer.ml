(* Offline replay + time-travel divergence bisection over recordings. *)

open Remon_kernel
open Remon_sim

type report = {
  recorded : Recording.t;
  replayed : Recording.t;
  identical : bool;
  verdict_class_agrees : bool;
  divergence : Divergence.replay_divergence option;
}

let config_of_header ?backend (h : Recording.header) =
  match Mvee.backend_of_string h.Recording.backend with
  | None -> Error (Printf.sprintf "unknown backend %S" h.Recording.backend)
  | Some recorded_backend -> (
    let backend = Option.value backend ~default:recorded_backend in
    match Mvee.on_failure_of_string h.Recording.on_failure with
    | None ->
      Error (Printf.sprintf "unknown failure policy %S" h.Recording.on_failure)
    | Some on_failure -> (
      let policy =
        if h.Recording.level = "monitor-all" then Some Policy.monitor_everything
        else
          Option.map Policy.spatial
            (Classification.level_of_string h.Recording.level)
      in
      match policy with
      | None -> Error (Printf.sprintf "unknown level %S" h.Recording.level)
      | Some policy -> (
        match Fault.of_string h.Recording.faults with
        | Error msg -> Error msg
        | Ok faults ->
          Ok
            {
              Mvee.default_config with
              Mvee.backend;
              nreplicas = h.Recording.nreplicas;
              seed = h.Recording.seed;
              policy;
              on_failure;
              faults;
              record = true;
              shm_key =
                (if h.Recording.shm_key > 0 then Some h.Recording.shm_key
                 else None);
            })))

(* ------------------------------------------------------------------ *)
(* Bisection *)

let render_opt events i =
  if i >= 0 && i < Array.length events then
    Some (Recording.event_to_string events.(i))
  else None

let bisect ?(context = 3) ~(recorded : Recording.t) ~(replayed : Recording.t)
    () =
  let da = Recording.prefix_digests recorded in
  let db = Recording.prefix_digests replayed in
  let na = Array.length recorded.Recording.events in
  let nb = Array.length replayed.Recording.events in
  let n = min na nb in
  let agree i = String.equal da.(i) db.(i) in
  if agree n && na = nb then None
  else begin
    (* chained digests make prefix agreement monotone: find the smallest
       disagreeing prefix by binary search; the fork is the record before
       it. When the common prefix fully agrees, one stream simply ended. *)
    let first =
      if agree n then n
      else begin
        let lo = ref 0 and hi = ref n in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if agree mid then lo := mid else hi := mid
        done;
        !lo
      end
    in
    let rec_evs = recorded.Recording.events in
    let rep_evs = replayed.Recording.events in
    let thread_rank, syscall =
      let of_event = function
        | Recording.Call { rank; call; _ } ->
          (Some rank, Some (Divergence.render_call call))
        | Recording.Lock { thread_rank; _ } -> (Some thread_rank, None)
        | Recording.Signal { rank; _ } -> (Some rank, None)
        | Recording.Flush _ -> (None, None)
      in
      if first < na then of_event rec_evs.(first)
      else if first < nb then of_event rep_evs.(first)
      else (None, None)
    in
    let ctx = ref [] in
    for i = min (max na nb - 1) (first + context) downto max 0 (first - context)
    do
      ctx := (i, render_opt rec_evs i, render_opt rep_evs i) :: !ctx
    done;
    Some
      {
        Divergence.first_rank = first;
        total_recorded = na;
        total_replayed = nb;
        thread_rank;
        syscall;
        recorded_ev = render_opt rec_evs first;
        replayed_ev = render_opt rep_evs first;
        context = !ctx;
      }
  end

(* ------------------------------------------------------------------ *)
(* Replay *)

let obs_instant obs ~ts ~name args =
  match obs with
  | None -> ()
  | Some o ->
    Remon_obs.Trace.instant o.Remon_obs.Obs.trace ~ts ~cat:"replay" ~name
      ~pid:0 ~tid:0 args

let replay ?backend ?context ?obs (recorded : Recording.t) ~body =
  match config_of_header ?backend recorded.Recording.header with
  | Error _ as e -> e
  | Ok config ->
    (* same defaults as [Mvee.run_program] so the replayed kernel's timing
       model matches the recording run's *)
    let kernel =
      Kernel.create ~seed:config.Mvee.seed ~net_latency:(Vtime.us 50) ()
    in
    (match obs with Some o -> Kernel.set_obs kernel o | None -> ());
    obs_instant obs ~ts:Vtime.zero ~name:"replay.begin"
      [
        ( "backend",
          Remon_obs.Trace.Str (Mvee.backend_to_string config.Mvee.backend) );
        ("events", Remon_obs.Trace.Int (Array.length recorded.Recording.events));
      ];
    let h = Mvee.launch kernel config ~name:"replay" ~body in
    Kernel.run kernel;
    let outcome = Mvee.finish h in
    let replayed =
      match outcome.Mvee.recording with
      | Some r -> Recording.with_workload r recorded.Recording.header.Recording.workload
      | None -> assert false (* config.record = true *)
    in
    let same_backend =
      String.equal replayed.Recording.header.Recording.backend
        recorded.Recording.header.Recording.backend
    in
    let identical =
      same_backend
      && String.equal (Recording.to_string recorded) (Recording.to_string replayed)
    in
    let class_of (r : Recording.t) =
      match r.Recording.verdict with Some (cls, _) -> Some cls | None -> None
    in
    let verdict_class_agrees = class_of recorded = class_of replayed in
    let divergence =
      if
        String.equal
          (Recording.stream_digest recorded)
          (Recording.stream_digest replayed)
      then None
      else bisect ?context ~recorded ~replayed ()
    in
    obs_instant obs ~ts:(Kernel.now kernel) ~name:"replay.end"
      [
        ("identical", Remon_obs.Trace.Int (if identical then 1 else 0));
        ( "first_divergent",
          Remon_obs.Trace.Int
            (match divergence with
            | Some d -> d.Divergence.first_rank
            | None -> -1) );
      ];
    Ok { recorded; replayed; identical; verdict_class_agrees; divergence }
