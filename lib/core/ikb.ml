(* IK-B: the in-kernel broker (Sections 3 and 3.1).

   The broker sits on the kernel's syscall path. For every syscall issued by
   a replica it decides whether the call may be completed by IP-MON without
   cross-process monitoring (granting a one-time 64-bit authorization
   token), or must be reported to GHUMVEE over ptrace.

   Security invariants enforced here (Section 3.1):
   - only the interceptor generates tokens, and each is single-use;
   - a forwarded call may only be completed with its token intact, by the
     same thread, for the same call, from within IP-MON's entry point;
   - if the first syscall after a grant does not originate from IP-MON, the
     token is revoked and the call is forcibly monitored;
   - calls that could tamper with IP-MON itself (mprotect/mremap/...) and
     reads of /proc/self/maps are always forwarded to GHUMVEE. *)

open Remon_kernel
open Remon_util
module K = Kstate

type token_record = {
  value : int64;
  granted_for : Syscall.call;
  mutable live : bool;
  temporal : bool; (* granted by temporal (not spatial) exemption *)
}

type t = {
  kernel : Kernel.t;
  mutable policy : Policy.t;
  rng : Rng.t; (* token generator *)
  tokens : (int, token_record) Hashtbl.t; (* tid -> outstanding token *)
  temporal_state : Policy.temporal_state;
  temporal_decisions : (int * int, bool) Hashtbl.t;
      (* (thread rank, syscall index) -> exemption decision. The stochastic
         draw is made once per *logical* call and reused by every replica,
         otherwise replicas would be routed asymmetrically. *)
  mutable rb : Replication_buffer.t option;
      (* set once IP-MON registers; consulted for the signals_pending flag
         (Section 3.8: calls restart as monitored while a signal is pending) *)
  mutable route_all : bool;
      (* VARAN baseline: forward every supported call to the in-process
         agents, with no policy filtering and no lockstep *)
  mutable master_proc : Proc.process option;
      (* the broker lives in the kernel: descriptor classification uses the
         authoritative (master) fd table, since slave tables hold stubs *)
  replaying : (int, unit) Hashtbl.t;
      (* variants resynchronizing from the journal: every call they make is
         forced onto the monitored path so GHUMVEE can replay-verify it *)
  mutable revocations : int;
  mutable rejected : int;
  mutable grants : int;
  mutable on_violation : Divergence.t -> unit;
  mutable pre_monitor : (Proc.thread -> unit) option;
      (* ring-drain barrier (ring mode only): invoked just before a replica
         thread is routed onto the monitored path, so batched records land
         in the RB ahead of the lockstep rendezvous *)
}

let create ~kernel ~policy ~seed =
  {
    kernel;
    policy;
    rng = Rng.make seed;
    tokens = Hashtbl.create 32;
    temporal_state = Policy.make_temporal_state ~seed:(seed lxor 0x5bd1e995);
    temporal_decisions = Hashtbl.create 64;
    rb = None;
    route_all = false;
    master_proc = None;
    replaying = Hashtbl.create 4;
    revocations = 0;
    rejected = 0;
    grants = 0;
    on_violation = (fun _ -> ());
    pre_monitor = None;
  }

(* Token-lifecycle observability: grants/revocations are metrics only (one
   per fast-path call — instants would dwarf the trace); rejections are
   rare and security-relevant, so they also get an instant event. *)
let obs_metric t name =
  match Kernel.obs t.kernel with
  | None -> ()
  | Some o -> Remon_obs.Metrics.incr o.Remon_obs.Obs.metrics name

let obs_rejected t (th : Proc.thread) =
  match Kernel.obs t.kernel with
  | None -> ()
  | Some o ->
    Remon_obs.Metrics.incr o.Remon_obs.Obs.metrics "ikb.tokens_rejected";
    Remon_obs.Trace.instant o.Remon_obs.Obs.trace ~ts:th.Proc.clock ~cat:"ikb"
      ~name:"token_rejected" ~pid:th.Proc.proc.Proc.pid ~tid:th.Proc.tid []

let fresh_token t =
  (* 64 random bits; zero is reserved as "no token" *)
  let rec draw () =
    let v = Rng.int64 t.rng in
    if Int64.equal v 0L then draw () else v
  in
  draw ()

let revoke t (th : Proc.thread) =
  match Hashtbl.find_opt t.tokens th.tid with
  | Some tr when tr.live ->
    tr.live <- false;
    t.revocations <- t.revocations + 1;
    obs_metric t "ikb.revocations"
  | _ -> ()

(* Authoritative descriptor lookup: the broker runs in the kernel and uses
   the master replica's table (slave tables hold replicated stubs). *)
let lookup_desc t (th : Proc.thread) fd =
  match t.master_proc with
  | Some master -> Proc.desc_of_fd master fd
  | None -> Proc.desc_of_fd th.proc fd

(* Calls that could adversely affect IP-MON are forcibly forwarded to
   GHUMVEE even if the spatial level would otherwise allow them. *)
let forced_monitored t (th : Proc.thread) (call : Syscall.call) =
  match call with
  | Syscall.Mprotect _ | Syscall.Mremap _ | Syscall.Munmap _ -> true
  | Syscall.Read (fd, _) | Syscall.Pread64 (fd, _, _) -> (
    (* reads of the maps file are filtered by GHUMVEE (Section 3.6) *)
    match lookup_desc t th fd with
    | Some { kind = Proc.Proc_maps _; _ } -> true
    | _ -> false)
  | _ -> false

(* Is the fd this call touches a socket? *)
let on_socket t (th : Proc.thread) call =
  match Callinfo.fd_of call with
  | None -> false
  | Some fd -> (
    match lookup_desc t th fd with
    | Some d -> Proc.classify_desc d = Proc.Fd_socket
    | None -> false)

(* The interceptor: one decision per syscall entry (Figure 2, step 2). *)
let classify t (th : Proc.thread) (call : Syscall.call) : K.route =
  let p = th.proc in
  let default () =
    if p.Proc.tracer <> None then K.Route_monitor else K.Route_plain
  in
  (* a live token means the previous forwarded call never came back through
     IP-MON: revoke it and force this call onto the monitored path *)
  let had_live_token =
    match Hashtbl.find_opt t.tokens th.tid with
    | Some tr when tr.live ->
      revoke t th;
      true
    | _ -> false
  in
  if had_live_token then default ()
  else
    match p.Proc.replica_info with
    | None -> default () (* not a managed replica: IK-B stays out of the way *)
    | Some { Proc.variant_index = v; _ } when Hashtbl.mem t.replaying v ->
      default () (* resynchronizing: force the monitored (replay) path *)
    | Some _ -> (
      match p.Proc.ipmon_registered with
      | None -> default ()
      | Some reg ->
        let no = Syscall.number call in
        let signal_pending =
          (* Section 3.8: while GHUMVEE holds a deferred signal, replicas
             restart their calls as monitored calls *)
          match t.rb with
          | Some rb -> rb.Replication_buffer.signals_pending
          | None -> false
        in
        if t.route_all then begin
          (* VARAN: everything goes to the in-process agents *)
          let value = fresh_token t in
          Hashtbl.replace t.tokens th.tid
            { value; granted_for = call; live = true; temporal = false };
          t.grants <- t.grants + 1;
          obs_metric t "ikb.tokens_granted";
          K.Route_ipmon value
        end
        else if signal_pending then default ()
        else if not (Sysno.Set.mem no reg.Proc.unmonitored) then default ()
        else if forced_monitored t th call then default ()
        else begin
          let spatially_ok =
            Policy.spatial_allows t.policy call ~on_socket:(on_socket t th call)
          in
          let temporally_ok =
            (not spatially_ok)
            &&
            match t.policy.Policy.temporal with
            | None -> false
            | Some cfg -> (
              (* one stochastic draw per logical call, shared by replicas *)
              let key = (th.Proc.rank, th.Proc.syscall_index) in
              match Hashtbl.find_opt t.temporal_decisions key with
              | Some d -> d
              | None ->
                let d =
                  Policy.temporal_exempts t.temporal_state
                    ~now:(Kernel.now t.kernel) no ~cfg
                in
                Hashtbl.replace t.temporal_decisions key d;
                d)
          in
          if spatially_ok || temporally_ok then begin
            let value = fresh_token t in
            Hashtbl.replace t.tokens th.tid
              { value; granted_for = call; live = true; temporal = temporally_ok };
            t.grants <- t.grants + 1;
            obs_metric t "ikb.tokens_granted";
            K.Route_ipmon value
          end
          else default ()
        end)

(* The verifier: may this (token, call) complete unmonitored? Single shot. *)
let verify t (th : Proc.thread) ~token ~(call : Syscall.call) =
  match Hashtbl.find_opt t.tokens th.tid with
  | Some tr
    when tr.live
         && Int64.equal tr.value token
         && Syscall.equal_call tr.granted_for call
         && th.Proc.in_ipmon ->
    tr.live <- false;
    true
  | Some tr ->
    if tr.live then revoke t th;
    t.rejected <- t.rejected + 1;
    obs_rejected t th;
    false
  | None ->
    t.rejected <- t.rejected + 1;
    obs_rejected t th;
    false

(* Outstanding-token check used by IP-MON's fallback: destroying the token
   before restarting the call as a monitored call (step 4'). *)
let destroy_token t th = revoke t th

(* Silent invalidation for calls IP-MON aborts without restarting (slave
   replicas of a master-executed call): the token was legitimately unused. *)
let consume_token t (th : Proc.thread) =
  match Hashtbl.find_opt t.tokens th.tid with
  | Some tr -> tr.live <- false
  | None -> ()

(* Respawn support: while a variant replays the journal, the broker routes
   all of its calls monitored (see [classify]). *)
let set_replaying t ~variant flag =
  if flag then Hashtbl.replace t.replaying variant ()
  else Hashtbl.remove t.replaying variant

let was_temporal_grant t (th : Proc.thread) ~token =
  match Hashtbl.find_opt t.tokens th.tid with
  | Some tr when Int64.equal tr.value token -> tr.temporal
  | _ -> false

(* GHUMVEE feedback for the temporal policy: a monitored call was approved. *)
let note_approval t (no : Sysno.t) =
  match t.policy.Policy.temporal with
  | None -> ()
  | Some cfg ->
    Policy.record_approval t.temporal_state ~now:(Kernel.now t.kernel) no ~cfg

(* Installs this broker into the kernel, scoped to one replica group so
   several MVEE instances (a fleet) can coexist in a single kernel. *)
let install t ~group_id =
  Kernel.register_broker t.kernel ~group_id
    {
      K.broker_name = "ik-b";
      classify =
        (fun th call ->
          let route = classify t th call in
          (match route, t.pre_monitor with
          | K.Route_monitor, Some barrier -> barrier th
          | _, _ -> ());
          route);
      verify = (fun th ~token ~call -> verify t th ~token ~call);
    }

(* Executes [call] through the verifier, or reports a violation and runs the
   fallback. Used by IP-MON (legitimate) and by attack scenarios (forged
   tokens), which must end up on the monitored path. *)
let execute t (th : Proc.thread) ~token call ~(ret : Syscall.result -> unit)
    ~(fallback : unit -> unit) =
  Kstate.charge th (Kernel.cost t.kernel).Remon_sim.Cost_model.token_check_ns;
  if verify t th ~token ~call then Kernel.execute_raw t.kernel th call ~ret
  else begin
    (Kernel.stats t.kernel).K.tokens_rejected <-
      (Kernel.stats t.kernel).K.tokens_rejected + 1;
    fallback ()
  end
