(* Multi-host world: conservative-parallel (PDES) shard runner.

   Each simulated host is a shard that owns a whole kernel — processes,
   scheduler, event queue, VFS, network — outright. The only cross-host
   state is the set of typed [Link]s between the per-host [Hostnet]
   gateways, and every link carries a fixed positive latency that doubles
   as the conservative synchronizer's lookahead.

   The runner is barrier-synchronous (CMB-style null messages collapsed
   into a coordinator round):

     1. E_i  = min(next local event time, earliest queued inbound message)
     2. F    = the fixed point of  F_i = min(E_i, min over inbound links
               j->i of F_j + latency_ji)  — "host i cannot act, and hence
               cannot send, before F_i"
     3. bound_i = min over inbound links j->i of F_j + latency_ji — no
        message host i has not yet seen can arrive before bound_i
     4. drain every inbound message with at < bound_i, in canonical
        (at, src host, link seq) order, scheduling each as a local event
        at its delivery time
     5. every shard runs its hosts' events strictly below bound_i
        ([Sched.run_before]); barrier; repeat until every E_i is infinite.

   Safety: a message sent by host j during round r is stamped at its send
   event's time t >= F_j (j only runs events below its own bound, but any
   event it runs is >= its frontier at round start), so it is delivered at
   t + latency >= F_j + latency >= bound_i — never inside the window a
   concurrent shard is executing.

   Determinism across shard counts: rounds are identical whether shards
   run sequentially or on domains — bounds depend only on post-barrier
   state, draining is done by the coordinator in canonical order, link
   sequence numbers are assigned by the (single-threaded) sending host in
   its own deterministic event order, and hosts share no other state. The
   [shards = 1] path is the very same round loop with the domain barrier
   elided, so outcome digests, recordings and traces are byte-identical at
   any shard count. *)

open Remon_kernel
open Remon_sim

type host = {
  idx : int;
  kernel : Kernel.t;
  hostnet : Hostnet.t;
  inbound : (int * Link.t) list; (* (src host, link), sorted by src *)
}

type t = {
  hosts : host array;
  frontier : Vtime.t array; (* F_i scratch *)
  bound : Vtime.t array; (* per-round execution bounds *)
  mutable rounds : int;
}

(* Saturating add: [Vtime.infinity] is [max_int], so a plain add would
   wrap around. *)
let ( +! ) a b = if Vtime.is_finite a then Vtime.add a b else Vtime.infinity

let create ?(link_latency = Vtime.ns (Cost_model.link_latency Cost_model.default))
    ~n ~(mk : int -> Kernel.t) () =
  if n < 1 then invalid_arg "World.create: need at least one host";
  let kernels = Array.init n mk in
  let hostnets =
    Array.init n (fun i -> Hostnet.create ~host:i kernels.(i))
  in
  (* full mesh of links; [links.(i).(j)] carries i -> j *)
  let links =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then None
            else Some (Link.create ~src:i ~dst:j ~latency:link_latency)))
  in
  Array.iteri
    (fun i hn ->
      Array.iter
        (function Some l when Link.src l = i -> Hostnet.add_link hn l | _ -> ())
        links.(i))
    hostnets;
  let hosts =
    Array.init n (fun j ->
        let inbound =
          List.filter_map
            (fun i ->
              match links.(i).(j) with Some l -> Some (i, l) | None -> None)
            (List.init n Fun.id)
        in
        { idx = j; kernel = kernels.(j); hostnet = hostnets.(j); inbound })
  in
  {
    hosts;
    frontier = Array.make n Vtime.infinity;
    bound = Array.make n Vtime.infinity;
    rounds = 0;
  }

let n_hosts t = Array.length t.hosts
let kernel t i = t.hosts.(i).kernel
let hostnet t i = t.hosts.(i).hostnet
let rounds t = t.rounds

(* Every host must know the static port map: the owning host falls through
   to its local listener table, everyone else routes via the gateway. *)
let route t ~port ~host =
  Array.iter (fun h -> Hostnet.add_route h.hostnet ~port ~host) t.hosts

let link_stats t =
  Array.to_list t.hosts
  |> List.concat_map (fun h ->
         List.map
           (fun (src, l) ->
             let sent, bytes = Link.stats l in
             (src, h.idx, sent, bytes))
           h.inbound)

(* ------------------------------------------------------------------ *)
(* The synchronizer *)

(* Computes E, F and the per-host bounds; returns [true] while there is
   work left anywhere. *)
let compute_bounds t =
  let n = Array.length t.hosts in
  let live = ref false in
  for i = 0 to n - 1 do
    let h = t.hosts.(i) in
    let local = Sched.next_event_time (Kernel.sched h.kernel) in
    let e =
      List.fold_left
        (fun acc (_, l) -> Vtime.min acc (Link.peek_at l))
        local h.inbound
    in
    t.frontier.(i) <- e;
    if Vtime.is_finite e then live := true
  done;
  if !live then begin
    (* relax F to its fixed point; latencies are positive, so this
       terminates (each pass only lowers values, floored by min E) *)
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 0 to n - 1 do
        let f =
          List.fold_left
            (fun acc (src, l) ->
              Vtime.min acc (t.frontier.(src) +! Link.latency l))
            t.frontier.(i) t.hosts.(i).inbound
        in
        if Vtime.(f < t.frontier.(i)) then begin
          t.frontier.(i) <- f;
          changed := true
        end
      done
    done;
    for i = 0 to n - 1 do
      t.bound.(i) <-
        List.fold_left
          (fun acc (src, l) ->
            Vtime.min acc (t.frontier.(src) +! Link.latency l))
          Vtime.infinity t.hosts.(i).inbound
    done
  end;
  !live

(* Drain every inbound message below the host's bound and schedule it as a
   local event at its delivery time. Canonical (at, src, seq) order makes
   the event queue's insertion-order tie-break deterministic regardless of
   which link delivered first. *)
let drain_round t =
  Array.iter
    (fun h ->
      let msgs =
        List.concat_map
          (fun (src, l) ->
            List.map
              (fun m -> (src, m))
              (Link.drain_before l ~bound:t.bound.(h.idx)))
          h.inbound
      in
      let msgs =
        List.sort
          (fun (s1, (m1 : Link.msg)) (s2, (m2 : Link.msg)) ->
            match Vtime.compare m1.Link.at m2.Link.at with
            | 0 -> (
              match compare (s1 : int) s2 with
              | 0 -> compare m1.Link.seq m2.Link.seq
              | c -> c)
            | c -> c)
          msgs
      in
      List.iter
        (fun (src, (m : Link.msg)) ->
          Sched.schedule (Kernel.sched h.kernel) ~time:m.Link.at (fun () ->
              Hostnet.apply h.hostnet ~src m))
        msgs)
    t.hosts

let run_host t (h : host) =
  Sched.run_before (Kernel.sched h.kernel) ~bound:t.bound.(h.idx)

(* ------------------------------------------------------------------ *)
(* Execution *)

let run_seq t =
  while compute_bounds t do
    t.rounds <- t.rounds + 1;
    drain_round t;
    Array.iter (fun h -> run_host t h) t.hosts
  done

(* Parallel rounds on persistent domains. The barrier is a mutex/condvar
   phase counter rather than a spin loop: shards may outnumber cores (the
   determinism contract must hold on a 1-CPU box too), and a spinning
   coordinator would stall the very workers it waits for. The monitor
   gives the happens-before edges both ways — the coordinator's drain
   writes are visible to workers, worker event processing is visible to
   the next bound computation. Static host -> shard assignment
   ([idx mod shards]) keeps placement deterministic, though determinism
   does not depend on it: hosts only interact through the links. *)
let run_par t ~shards =
  let m = Mutex.create () in
  let cv = Condition.create () in
  let phase = ref 0 in
  let done_count = ref 0 in
  let stop = ref false in
  let failure = ref None in
  let run_shard s =
    Array.iter (fun h -> if h.idx mod shards = s then run_host t h) t.hosts
  in
  let worker s =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock m;
      while !phase = !seen && not !stop do
        Condition.wait cv m
      done;
      seen := !phase;
      let stopping = !stop in
      Mutex.unlock m;
      if stopping then running := false
      else begin
        let err = (try run_shard s; None with e -> Some e) in
        Mutex.lock m;
        (match (err, !failure) with
        | Some e, None -> failure := Some e
        | _ -> ());
        incr done_count;
        Condition.broadcast cv;
        Mutex.unlock m
      end
    done
  in
  let domains =
    List.init (shards - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  let release_and_join () =
    Mutex.lock m;
    stop := true;
    Condition.broadcast cv;
    Mutex.unlock m;
    List.iter Domain.join domains
  in
  (try
     while compute_bounds t do
       t.rounds <- t.rounds + 1;
       drain_round t;
       Mutex.lock m;
       done_count := 0;
       incr phase;
       Condition.broadcast cv;
       Mutex.unlock m;
       run_shard 0;
       Mutex.lock m;
       while !done_count < shards - 1 do
         Condition.wait cv m
       done;
       let err = !failure in
       Mutex.unlock m;
       match err with Some e -> raise e | None -> ()
     done
   with e ->
     release_and_join ();
     raise e);
  release_and_join ()

let run ?(shards = 1) t =
  if shards < 1 then invalid_arg "World.run: shards must be >= 1";
  let shards = min shards (Array.length t.hosts) in
  if shards = 1 then run_seq t else run_par t ~shards
