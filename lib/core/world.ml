(* Multi-host world: conservative-parallel (PDES) shard runner.

   Each simulated host is a shard that owns a whole kernel — processes,
   scheduler, event queue, VFS, network — outright. The only cross-host
   state is the set of typed [Link]s between the per-host [Hostnet]
   gateways, and every link carries a fixed positive latency that doubles
   as the conservative synchronizer's lookahead.

   The runner is barrier-synchronous (CMB-style null messages collapsed
   into a coordinator round):

     1. E_i  = min(next local event time, earliest queued inbound message)
     2. compute per-host frontiers F_i ("host i cannot act, and hence
        cannot send, before F_i") and execution bounds bound_i ("no
        message host i has not yet seen can arrive before bound_i") —
        see the two modes below
     3. drain every inbound message with at < bound_i, in canonical
        (at, src host, link seq) order, scheduling each as a pre-lane
        local event at its delivery time
     4. every shard runs its hosts' events strictly below bound_i
        ([Sched.run_before]); barrier; repeat until every E_i is infinite.

   [Fixed] mode is the single-latency bound: F_i = min(E_i, min_j E_j + L)
   and bound_i = min over j <> i of F_j + L, over all host pairs (the
   closed form of the full-mesh fixed point — with one uniform latency the
   relaxation converges in one pass, so it reduces to the global minimum
   and second minimum of F). It is retained as the reference algorithm and
   as the conservative-safety oracle for the property tests.

   [Adaptive] mode (the default) extends the fixed point with per-pair
   earliest-output guarantees so a bound can advance past a single link
   latency when inbound links are provably idle. For each *active* ordered
   host pair (j, i) — active pairs are tracked lazily, a superset of pairs
   that may ever exchange a message — S_ji is a sound lower bound on the
   next instant j may send a message towards i:

     S_ji = F_j                      if j holds the capability to send to
                                     i spontaneously (a remote route or a
                                     live connection towards i —
                                     [Hostnet.sends_to])
     S_ji = min(peek(link i->j),     otherwise: j can only send to i as a
                S_ij + L)            *reaction* to a message from i, and
                                     the earliest such message arrives at
                                     the earliest queued one or one
                                     latency after i's own next send

     F_i     = min(E_i, min over inbound pairs (S_ji + L))
     bound_i = min over inbound pairs (S_ji + L)   (infinity if no pairs)

   Initialized at infinity and relaxed monotonically downward to the
   greatest fixed point (Bellman-Ford style; every pass only lowers
   values, floored by the E's and queued-message peeks, so it
   terminates).

   Soundness sketch (the full argument is DESIGN.md §16): suppose for
   contradiction some host j sends a message towards i at a virtual time
   tau < S_ji, and take the earliest such violation in the round. Either
   j held the send capability at round start — then S_ji = F_j, and F_j
   <= tau because j cannot execute an event before its frontier — or j
   acquired the capability during the round, which in this kernel happens
   only by *reacting* to an inbound message from i (connection creation
   via SYN arrival; routes are static and pre-run). That message arrived
   at some sigma <= tau, and it was either already queued on link i->j at
   bound time (sigma >= peek(i->j) >= S_ji) or sent by i during the round
   (sigma >= S_ij + L >= S_ji, no earlier violation). Both contradict
   tau < S_ji. The invariant making peek sufficient is that every message
   drained in an earlier round has also been *executed* in that round
   (drained messages satisfy at < bound, and shards run strictly to their
   bound), so un-executed cross-host work lives only on links whenever
   bounds are computed.

   Every drained message is additionally checked against the destination
   kernel's clock — a conservative violation raises immediately instead
   of silently reordering, so the property tests (and every production
   run) have teeth.

   Determinism across shard counts: rounds are identical whether shards
   run sequentially or on domains — bounds depend only on post-barrier
   state, draining is done by the coordinator in canonical order, link
   sequence numbers are assigned by the (single-threaded) sending host in
   its own deterministic event order, and hosts share no other state. The
   [shards = 1] path is the very same round loop with the domain barrier
   elided, so outcome digests, recordings and traces are byte-identical at
   any shard count. Adaptive and fixed mode partition the same event
   executions into different rounds; because drained messages are
   delivered through the scheduler's pre-lane (ahead of any same-instant
   local event, regardless of insertion round), the per-host event order —
   and hence every observable outcome — is also identical across modes.

   Scale: links and pair records are created lazily (first use), under a
   world mutex — a million-connection world touches a few thousand host
   pairs, not an eager n^2 mesh. *)

open Remon_kernel
open Remon_sim

type mode = Fixed | Adaptive

type host = { idx : int; kernel : Kernel.t; hostnet : Hostnet.t }

(* One direction of an active host pair. [p_rev] is the opposite
   direction; both are created together with their links. *)
type pair = {
  p_src : int;
  p_dst : int;
  p_link : Link.t; (* carries p_src -> p_dst *)
  mutable p_s : Vtime.t; (* S_{src,dst} relaxation scratch *)
  p_rev : pair;
}

type t = {
  hosts : host array;
  link_latency : Vtime.t;
  mu : Mutex.t; (* guards pairs/in_pairs mutation (lazy creation) *)
  pairs : (int, pair) Hashtbl.t; (* src * n + dst -> pair *)
  in_pairs : pair list array; (* inbound pairs per destination host *)
  frontier : Vtime.t array; (* F_i scratch *)
  bound : Vtime.t array; (* per-round execution bounds *)
  mutable mode : mode;
  mutable rounds : int;
}

(* Saturating add: [Vtime.infinity] is [max_int], so a plain add would
   wrap around. *)
let ( +! ) a b = if Vtime.is_finite a then Vtime.add a b else Vtime.infinity

let ensure_pair t ~src ~dst =
  let n = Array.length t.hosts in
  let key = (src * n) + dst in
  Mutex.lock t.mu;
  let p =
    match Hashtbl.find_opt t.pairs key with
    | Some p -> p
    | None ->
      let fwd = Link.create ~src ~dst ~latency:t.link_latency in
      let bwd = Link.create ~src:dst ~dst:src ~latency:t.link_latency in
      let rec pa =
        { p_src = src; p_dst = dst; p_link = fwd; p_s = Vtime.infinity; p_rev = pb }
      and pb =
        { p_src = dst; p_dst = src; p_link = bwd; p_s = Vtime.infinity; p_rev = pa }
      in
      Hashtbl.replace t.pairs key pa;
      Hashtbl.replace t.pairs ((dst * n) + src) pb;
      t.in_pairs.(dst) <- pa :: t.in_pairs.(dst);
      t.in_pairs.(src) <- pb :: t.in_pairs.(src);
      pa
  in
  Mutex.unlock t.mu;
  p

let create ?(link_latency = Vtime.ns (Cost_model.link_latency Cost_model.default))
    ~n ~(mk : int -> Kernel.t) () =
  if n < 1 then invalid_arg "World.create: need at least one host";
  let kernels = Array.init n mk in
  let hostnets = Array.init n (fun i -> Hostnet.create ~host:i kernels.(i)) in
  let hosts =
    Array.init n (fun i ->
        { idx = i; kernel = kernels.(i); hostnet = hostnets.(i) })
  in
  let t =
    {
      hosts;
      link_latency;
      mu = Mutex.create ();
      pairs = Hashtbl.create 64;
      in_pairs = Array.make n [];
      frontier = Array.make n Vtime.infinity;
      bound = Array.make n Vtime.infinity;
      mode = Adaptive;
      rounds = 0;
    }
  in
  (* links come into existence on first use; the gateway asks us *)
  Array.iter
    (fun h ->
      Hostnet.set_link_resolver h.hostnet (fun ~dst ->
          (ensure_pair t ~src:h.idx ~dst).p_link))
    hosts;
  t

let n_hosts t = Array.length t.hosts
let kernel t i = t.hosts.(i).kernel
let hostnet t i = t.hosts.(i).hostnet
let rounds t = t.rounds

(* Declare that [port] is served from [host]. [initiators] is the set of
   hosts that may ever *connect* to it (defaults to every host); only
   those get the route entry — the owning host falls through to its local
   listener table either way — and only those become active pairs with the
   owner. Narrowing the initiator set is what lets adaptive lookahead
   decouple unrelated host groups. *)
let route ?initiators t ~port ~host =
  let inits =
    match initiators with
    | Some l -> l
    | None -> List.init (Array.length t.hosts) Fun.id
  in
  List.iter
    (fun i ->
      Hostnet.add_route t.hosts.(i).hostnet ~port ~host;
      if i <> host then ignore (ensure_pair t ~src:i ~dst:host : pair))
    inits

let link_stats t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.pairs []
  |> List.map (fun p ->
         let sent, bytes = Link.stats p.p_link in
         (p.p_src, p.p_dst, sent, bytes))
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* The synchronizer *)

(* E_i: the earliest instant host i could possibly act — its next local
   event or the earliest queued inbound message. *)
let compute_horizons t =
  let n = Array.length t.hosts in
  let live = ref false in
  for i = 0 to n - 1 do
    let h = t.hosts.(i) in
    let local = Sched.next_event_time (Kernel.sched h.kernel) in
    let e =
      List.fold_left
        (fun acc p -> Vtime.min acc (Link.peek_at p.p_link))
        local t.in_pairs.(i)
    in
    t.frontier.(i) <- e;
    if Vtime.is_finite e then live := true
  done;
  !live

(* Fixed (single-latency) bounds over all host pairs: the closed form of
   the uniform-latency full-mesh fixed point. O(n). *)
let fixed_bounds t =
  let n = Array.length t.hosts in
  let l = t.link_latency in
  let gm = ref Vtime.infinity in
  for i = 0 to n - 1 do
    gm := Vtime.min !gm t.frontier.(i)
  done;
  (* F_i = min(E_i, gm + L); then bound_i needs min over j <> i of F_j,
     i.e. the global minimum — or the second minimum at its unique
     argmin. *)
  let m1 = ref Vtime.infinity and m2 = ref Vtime.infinity and arg = ref (-1) in
  for i = 0 to n - 1 do
    let f = Vtime.min t.frontier.(i) (!gm +! l) in
    t.frontier.(i) <- f;
    if Vtime.(f < !m1) then begin
      m2 := !m1;
      m1 := f;
      arg := i
    end
    else if Vtime.(f < !m2) then m2 := f
  done;
  if n = 1 then t.bound.(0) <- Vtime.infinity
  else
    for i = 0 to n - 1 do
      t.bound.(i) <- (if i = !arg then !m2 else !m1) +! l
    done

(* Adaptive bounds: relax per-pair earliest-output guarantees S and the
   frontiers F downward to their (greatest) fixed point. Touches only
   active pairs, so the cost is O(pairs * passes), and hosts with no
   active pairs get an infinite bound — they are provably isolated and
   run to completion in one round. *)
let adaptive_bounds t =
  let n = Array.length t.hosts in
  let l = t.link_latency in
  Hashtbl.iter (fun _ p -> p.p_s <- Vtime.infinity) t.pairs;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      (* S for each inbound pair (j -> i), then F_i from them *)
      let f = ref t.frontier.(i) in
      List.iter
        (fun p ->
          let j = p.p_src in
          let sv =
            if Hostnet.sends_to t.hosts.(j).hostnet i then t.frontier.(j)
            else
              Vtime.min (Link.peek_at p.p_rev.p_link) (p.p_rev.p_s +! l)
          in
          if Vtime.compare sv p.p_s < 0 then begin
            p.p_s <- sv;
            changed := true
          end;
          f := Vtime.min !f (p.p_s +! l))
        t.in_pairs.(i);
      if Vtime.(!f < t.frontier.(i)) then begin
        t.frontier.(i) <- !f;
        changed := true
      end
    done
  done;
  for i = 0 to n - 1 do
    t.bound.(i) <-
      List.fold_left
        (fun acc p -> Vtime.min acc (p.p_s +! l))
        Vtime.infinity t.in_pairs.(i)
  done

(* Computes E, F and the per-host bounds; returns [true] while there is
   work left anywhere. *)
let compute_bounds t =
  let live = compute_horizons t in
  (if live then
     match t.mode with
     | Fixed -> fixed_bounds t
     | Adaptive -> adaptive_bounds t);
  live

(* Drain every inbound message below the host's bound and schedule it as a
   pre-lane local event at its delivery time. Canonical (at, src, seq)
   order plus the pre-lane make delivery order a pure function of the
   message timestamps — independent of which link delivered first and of
   which round performed the drain. *)
let drain_round t =
  Array.iteri
    (fun i h ->
      let msgs =
        List.concat_map
          (fun p ->
            List.map
              (fun m -> (p.p_src, m))
              (Link.drain_before p.p_link ~bound:t.bound.(i)))
          t.in_pairs.(i)
      in
      let msgs =
        List.sort
          (fun (s1, (m1 : Link.msg)) (s2, (m2 : Link.msg)) ->
            match Vtime.compare m1.Link.at m2.Link.at with
            | 0 -> (
              match compare (s1 : int) s2 with
              | 0 -> compare m1.Link.seq m2.Link.seq
              | c -> c)
            | c -> c)
          msgs
      in
      let sched = Kernel.sched h.kernel in
      let now = Sched.now sched in
      List.iter
        (fun (src, (m : Link.msg)) ->
          (* the conservative contract, checked on every delivery: a
             message must never arrive behind the destination's clock *)
          if Vtime.(m.Link.at < now) then
            failwith
              (Printf.sprintf
                 "World: conservative violation: message from host %d at \
                  %dns is behind host %d's clock %dns"
                 src
                 (Vtime.to_int_ns m.Link.at)
                 i (Vtime.to_int_ns now));
          Sched.schedule_pre sched ~time:m.Link.at (fun () ->
              Hostnet.apply h.hostnet ~src m))
        msgs)
    t.hosts

let run_host t (h : host) =
  Sched.run_before (Kernel.sched h.kernel) ~bound:t.bound.(h.idx)

(* ------------------------------------------------------------------ *)
(* Execution *)

let run_seq t =
  while compute_bounds t do
    t.rounds <- t.rounds + 1;
    drain_round t;
    Array.iter (fun h -> run_host t h) t.hosts
  done

(* Parallel rounds on persistent domains. The barrier is a mutex/condvar
   phase counter rather than a spin loop: shards may outnumber cores (the
   determinism contract must hold on a 1-CPU box too), and a spinning
   coordinator would stall the very workers it waits for. The monitor
   gives the happens-before edges both ways — the coordinator's drain
   writes are visible to workers, worker event processing (and lazy pair
   creation, which is additionally guarded by the world mutex) is visible
   to the next bound computation. Static host -> shard assignment
   ([idx mod shards]) keeps placement deterministic, though determinism
   does not depend on it: hosts only interact through the links. *)
let run_par t ~shards =
  let m = Mutex.create () in
  let cv = Condition.create () in
  let phase = ref 0 in
  let done_count = ref 0 in
  let stop = ref false in
  let failure = ref None in
  let run_shard s =
    Array.iter (fun h -> if h.idx mod shards = s then run_host t h) t.hosts
  in
  let worker s =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock m;
      while !phase = !seen && not !stop do
        Condition.wait cv m
      done;
      seen := !phase;
      let stopping = !stop in
      Mutex.unlock m;
      if stopping then running := false
      else begin
        let err = (try run_shard s; None with e -> Some e) in
        Mutex.lock m;
        (match (err, !failure) with
        | Some e, None -> failure := Some e
        | _ -> ());
        incr done_count;
        Condition.broadcast cv;
        Mutex.unlock m
      end
    done
  in
  let domains =
    List.init (shards - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  let release_and_join () =
    Mutex.lock m;
    stop := true;
    Condition.broadcast cv;
    Mutex.unlock m;
    List.iter Domain.join domains
  in
  (try
     while compute_bounds t do
       t.rounds <- t.rounds + 1;
       drain_round t;
       Mutex.lock m;
       done_count := 0;
       incr phase;
       Condition.broadcast cv;
       Mutex.unlock m;
       run_shard 0;
       Mutex.lock m;
       while !done_count < shards - 1 do
         Condition.wait cv m
       done;
       let err = !failure in
       Mutex.unlock m;
       match err with Some e -> raise e | None -> ()
     done
   with e ->
     release_and_join ();
     raise e);
  release_and_join ()

let run ?(shards = 1) ?(mode = Adaptive) t =
  if shards < 1 then invalid_arg "World.run: shards must be >= 1";
  t.mode <- mode;
  let shards = min shards (Array.length t.hosts) in
  if shards = 1 then run_seq t else run_par t ~shards
