(* Top-level multi-variant execution environment.

   Wires together the kernel hooks, monitors and replication machinery for
   one replica set, under one of four backends:

   - [Native]       : one process, no monitoring (the baseline).
   - [Ghumvee_only] : the cross-process monitor alone — every syscall is
                      monitored in lockstep (the paper's "no IP-MON" bars).
   - [Varan]        : in-process replication of *all* calls, no lockstep,
                      no kernel broker protection (the reliability-oriented
                      baseline of Hosek & Cadar).
   - [Remon]        : the paper's hybrid — GHUMVEE for sensitive calls,
                      IP-MON + IK-B for policy-exempt calls. *)

open Remon_kernel
open Remon_sim

type backend = Native | Ghumvee_only | Varan | Remon

let backend_to_string = function
  | Native -> "native"
  | Ghumvee_only -> "ghumvee"
  | Varan -> "varan"
  | Remon -> "remon"

let backend_of_string = function
  | "native" -> Some Native
  | "ghumvee" -> Some Ghumvee_only
  | "varan" -> Some Varan
  | "remon" -> Some Remon
  | _ -> None

(* Re-exported so callers can say [Mvee.Quarantine]. *)
type failure_policy = Context.failure_policy =
  | Kill_group
  | Quarantine
  | Respawn of { max_respawns : int; backoff_ns : Vtime.t }

type config = {
  backend : backend;
  nreplicas : int;
  policy : Policy.t;
  diversity : Diversity.config;
  rb_size : int;
  seed : int;
  watchdog_ns : Vtime.t;
  watchdog_retries : int;
      (* stalled-rendezvous grace periods (each doubling the delay) before
         the watchdog escalates *)
  record_replay : bool;
  mode_override : Context.mode option; (* ablations; None = backend default *)
  rb_migration_interval : Vtime.t option;
      (* Section 4 extension: IK-B periodically moves the RB to a fresh
         virtual address by remapping the replicas' page tables, further
         lowering the odds of a successful guessing attack *)
  on_failure : failure_policy;
  faults : Fault.plan; (* deterministic fault-injection plan; [] = none *)
  record : bool; (* capture the replicated stream into outcome.recording *)
  shm_key : int option;
      (* pin the group's SysV key instead of drawing from the process-global
         counter; replay sets this so shm traffic is byte-identical no
         matter how many launches preceded the recording run *)
}

let on_failure_to_string = function
  | Kill_group -> "kill-group"
  | Quarantine -> "quarantine"
  | Respawn { max_respawns; backoff_ns } ->
    Printf.sprintf "respawn:%d:%d" max_respawns
      (Vtime.to_int_ns backoff_ns)

let on_failure_of_string s =
  match String.split_on_char ':' s with
  | [ "kill-group" ] | [ "kill" ] -> Some Kill_group
  | [ "quarantine" ] -> Some Quarantine
  | [ "respawn" ] -> Some (Respawn { max_respawns = 3; backoff_ns = Vtime.ms 1 })
  | [ "respawn"; n ] -> (
    match int_of_string_opt n with
    | Some max_respawns -> Some (Respawn { max_respawns; backoff_ns = Vtime.ms 1 })
    | None -> None)
  | [ "respawn"; n; ns ] -> (
    match (int_of_string_opt n, int_of_string_opt ns) with
    | Some max_respawns, Some ns ->
      Some (Respawn { max_respawns; backoff_ns = Vtime.ns ns })
    | _ -> None)
  | _ -> None

let default_config =
  {
    backend = Remon;
    nreplicas = 2;
    policy = Policy.spatial Classification.Socket_rw_level;
    diversity = Diversity.default;
    rb_size = Replication_buffer.default_size;
    seed = 42;
    watchdog_ns = Vtime.s 30;
    watchdog_retries = 2;
    record_replay = true;
    mode_override = None;
    rb_migration_interval = None;
    on_failure = Kill_group;
    faults = [];
    record = false;
    shm_key = None;
  }

(* The recording header describing a configuration; [workload] is the
   registry name when the caller knows it (the CLI does), [""] otherwise. *)
let header_of_config (config : config) ~workload =
  {
    Recording.backend = backend_to_string config.backend;
    nreplicas = config.nreplicas;
    seed = config.seed;
    level =
      (match config.policy.Policy.spatial with
      | Some l -> Classification.level_to_string l
      | None -> "monitor-all");
    on_failure = on_failure_to_string config.on_failure;
    faults = Fault.to_string config.faults;
    workload;
    shm_key = Option.value config.shm_key ~default:0;
  }

(* The replica's view of the MVEE runtime, handed to program bodies. *)
type env = {
  variant : int;
  nreplicas : int;
  backend : backend;
  heap_base : int64; (* diversified heap placement: the program's "pointers" *)
  lock : int -> unit; (* user-space mutex, record/replay ordered *)
  unlock : int -> unit;
  spawn_thread : (unit -> unit) -> int;
  diversified_ptr : int -> int64;
      (* a logical object id rendered as this replica's pointer value *)
}

type handle = {
  kernel : Kernel.t;
  config : config;
  group : Context.group;
  ghumvee : Ghumvee.t option;
  agent : Record_replay.t;
  mutable fault : Fault.t option;
  mutable master_exit_ns : Vtime.t option;
  mutable exit_codes : (int * int) list; (* variant, code *)
  mutable heap_bases : int64 array;
  recorder : Recording.builder option;
}

type outcome = {
  duration : Vtime.t; (* master replica lifetime in virtual time *)
  verdict : Divergence.t option;
  exit_codes : (int * int) list;
  syscalls : int;
  monitored : int;
  ipmon_fastpath : int;
  ptrace_stops : int;
  rendezvous : int;
  ipmon_fallbacks : int;
  rb_resets : int;
  rb_records : int;
  ring_flushes : int; (* ring drains (0 when ring_batch = 1) *)
  ring_records : int; (* records that reached the RB through the ring *)
  ring_max_batch : int; (* largest single drain *)
  tokens_granted : int;
  tokens_rejected : int;
  (* resilience telemetry *)
  faults_injected : int;
  quarantines : int;
  respawns : int;
  degraded_ns : Vtime.t; (* time spent with at least one replica detached *)
  watchdog_retries : int;
  metrics : (string * string) list;
      (* the observability summary (key-sorted); [] when tracing is off *)
  recording : Recording.t option; (* the captured stream, when config.record *)
}

(* Atomic: groups are created from concurrently running simulations when
   the experiment harness fans runs out across domains. The key only needs
   to stay above [Context.mvee_shm_key_base], so cross-run numbering does
   not affect simulated behaviour. *)
let shm_key_counter = Atomic.make 0

(* ------------------------------------------------------------------ *)

let make_group kernel (config : config) nreplicas =
  let shm_serial = Atomic.fetch_and_add shm_key_counter 1 + 1 in
  let mode =
    match config.mode_override with
    | Some m -> m
    | None -> (
      match config.backend with
      | Varan -> Context.varan_mode
      | Native | Ghumvee_only | Remon -> Context.remon_mode)
  in
  let ikb = Ikb.create ~kernel ~policy:config.policy ~seed:config.seed in
  if config.backend = Varan then ikb.Ikb.route_all <- true;
  let rb = Replication_buffer.create ~size_bytes:config.rb_size ~nreplicas in
  let ring =
    if mode.Context.ring_batch > 1 then
      Some
        (Syscall_ring.create ~rb ~kernel ~nreplicas
           ~batch:mode.Context.ring_batch
           ~flush_ns:mode.Context.ring_flush_ns
           ~wake_always:(not mode.Context.per_call_condvar))
    else None
  in
  (* monitored-call barrier: before a master thread reaches GHUMVEE, its
     batched records must land in the RB so the slaves can line up *)
  (match ring with
  | None -> ()
  | Some r ->
    ikb.Ikb.pre_monitor <-
      Some
        (fun th ->
          if Proc.is_master th.Proc.proc && Syscall_ring.pending r > 0 then
            Syscall_ring.flush ~th r Syscall_ring.Barrier));
  {
    Context.kernel;
    nreplicas;
    policy = config.policy;
    mode;
    rb;
    file_map = File_map.create ();
    epoll_map = Epoll_map.create ~nreplicas;
    ikb;
    shm_key =
      (match config.shm_key with
      | Some key -> key
      | None -> Context.mvee_shm_key_base + (shm_serial * 16));
    ring;
    replicas = [||];
    divergence = None;
    shutdown = false;
    ipmon_calls = 0;
    ipmon_fallbacks = 0;
    quarantined = Array.make nreplicas false;
    replica_fault_handler = None;
    quarantines = 0;
    respawns = 0;
    watchdog_retries = 0;
    degraded_since = None;
    degraded_ns = Vtime.zero;
    caught_up_at = None;
  }

let make_env (h : handle) ~variant ~nreplicas : env =
  let agent = h.agent in
  (* lock words live past the heap base, at diversified addresses *)
  let word_addr id = Int64.add h.heap_bases.(variant) (Int64.of_int (4096 + (id * 64))) in
  let lock id =
    let th = Sched.self () in
    let proc = th.Proc.proc in
    let addr = word_addr id in
    if variant > 0 then
      Record_replay.slave_gate agent ~variant ~lock_id:id ~thread_rank:th.Proc.rank;
    (* user-space acquire: check-and-set inside the wait condition so at
       most one waiter wins per wakeup *)
    Sched.wait_user (fun () ->
        if Vm.read_word proc.Proc.vm addr = 0 then begin
          Vm.write_word proc.Proc.vm addr 1;
          true
        end
        else false);
    if variant = 0 then
      Record_replay.master_acquired agent ~lock_id:id ~thread_rank:th.Proc.rank;
    Kernel.kick h.kernel
  in
  let unlock id =
    let th = Sched.self () in
    let proc = th.Proc.proc in
    Vm.write_word proc.Proc.vm (word_addr id) 0;
    Kernel.kick h.kernel
  in
  let spawn_thread body =
    let th = Sched.self () in
    let proc = th.Proc.proc in
    let idx = Array.length proc.Proc.entry_table in
    proc.Proc.entry_table <- Array.append proc.Proc.entry_table [| body |];
    match Sched.syscall (Syscall.Clone idx) with
    | Syscall.Ok_int tid -> tid
    | r -> failwith (Format.asprintf "spawn_thread: clone failed: %a" Syscall.pp_result r)
  in
  {
    variant;
    nreplicas;
    backend = h.config.backend;
    heap_base = h.heap_bases.(variant);
    lock;
    unlock;
    spawn_thread;
    diversified_ptr =
      (fun id -> Int64.add h.heap_bases.(variant) (Int64.of_int (65536 + (id * 16))));
  }

(* Launches the replica set. [body] is the program every replica runs. *)
let launch (kernel : Kernel.t) (config : config) ~name
    ~(body : env -> unit) : handle =
  let nreplicas = match config.backend with Native -> 1 | _ -> config.nreplicas in
  let group = make_group kernel config nreplicas in
  let ghumvee =
    match config.backend with
    | Ghumvee_only | Remon ->
      Some
        (Ghumvee.create group ~watchdog_ns:config.watchdog_ns
           ~watchdog_retries:config.watchdog_retries ())
    | Native | Varan -> None
  in
  (match config.backend with
  | Varan | Remon ->
    Ikb.install group.Context.ikb ~group_id:group.Context.shm_key
  | Native | Ghumvee_only -> ());
  let agent =
    Record_replay.create ~kernel ~log:group.Context.rb.Replication_buffer.sync_log
      ~enabled:(config.record_replay && nreplicas > 1)
  in
  (* the Respawn policy needs the master syscall journal to resynchronize a
     fresh replica; the other policies skip its memory cost *)
  (match config.on_failure with
  | Context.Respawn _ ->
    Record_log.enable_journal group.Context.rb.Replication_buffer.sync_log
  | Context.Kill_group | Context.Quarantine -> ());
  let recorder =
    if config.record then begin
      (* the header pins the key the group actually drew, so a replay of
         this recording reproduces the exact same shm traffic *)
      let b =
        Recording.builder
          {
            (header_of_config config ~workload:"") with
            Recording.shm_key = group.Context.shm_key;
          }
      in
      Recording.attach b group.Context.rb.Replication_buffer.sync_log;
      Some b
    end
    else None
  in
  let handle =
    {
      kernel;
      config;
      group;
      ghumvee;
      agent;
      fault = None;
      master_exit_ns = None;
      exit_codes = [];
      heap_bases = Array.make nreplicas 0L;
      recorder;
    }
  in
  (* when the kernel carries an observability sink, the RB reports into it
     too (it holds no kernel reference of its own) *)
  (match Kernel.obs kernel with
  | Some o ->
    group.Context.rb.Replication_buffer.obs <-
      Some (o, fun () -> Kernel.now kernel)
  | None -> ());
  (* wire the deterministic fault plan into the kernel + RB hooks *)
  if config.faults <> [] then begin
    let f = Fault.make ~seed:config.seed config.faults in
    Fault.install f ~kernel ~group_id:group.Context.shm_key
      ~rb:group.Context.rb;
    handle.fault <- Some f
  end;
  (* spawn parameters are factored out so a Respawn can relaunch a variant
     bit-identically: same vm seed, same body *)
  let vm_seed_for variant =
    if config.diversity.Diversity.aslr then
      (config.seed * 7919) + (variant * 104729) + 13
    else config.seed
  in
  let replica_main variant () =
    let th = Sched.self () in
    let proc = th.Proc.proc in
    (match Diversity.apply config.diversity proc ~variant with
    | Ok (_code_base, heap_base) -> handle.heap_bases.(variant) <- heap_base
    | Error e -> failwith ("diversity layout failed: " ^ Errno.to_string e));
    (match config.backend with
    | Varan -> ignore (Ipmon.init ~calls:Sysno.all group ~variant)
    | Remon -> ignore (Ipmon.init group ~variant)
    | Native | Ghumvee_only -> ());
    let env = make_env handle ~variant ~nreplicas in
    body env;
    ignore (Sched.syscall (Syscall.Exit_group 0))
  in
  (* Master-crash containment (all backends, including Native and Varan):
     an abnormal master exit must surface as a [Replica_crash] verdict with
     the rest of the group torn down — not hang until the watchdog. Slave
     crashes are first offered to the recovery policy. *)
  let watch_exit variant (p : Proc.process) =
    Kernel.on_process_exit p (fun code ->
        handle.exit_codes <- (variant, code) :: handle.exit_codes;
        if variant = 0 then handle.master_exit_ns <- Some (Kernel.now kernel);
        if
          code >= 128
          && (not group.Context.shutdown)
          && not (Context.is_quarantined group variant)
        then begin
          let verdict = Divergence.Replica_crash { variant; signal = code - 128 } in
          if variant = 0 then begin
            (* dead master: tear the group down; pending I/O of the other
               replicas is drained by their kills *)
            group.Context.shutdown <- true;
            Context.set_divergence group verdict;
            Array.iter
              (fun (q : Proc.process) ->
                if q != p && q.Proc.alive then
                  Kernel.kill_process kernel q ~code:134)
              group.Context.replicas
          end
          else if not (Context.replica_fault group ~variant verdict) then
            (* slave crash, policy declined: record the fatal verdict.
               GHUMVEE backends additionally kill the group from their own
               exit waiter; lockstep-free backends (VARAN) keep the master
               running — detection without prevention, as the paper says *)
            Context.set_divergence group verdict
        end)
  in
  let replicas =
    Array.init nreplicas (fun variant ->
        Kernel.spawn_process kernel
          ~replica_info:{ Proc.variant_index = variant; group_id = group.Context.shm_key }
          ~name:(Printf.sprintf "%s-v%d" name variant)
          ~vm_seed:(vm_seed_for variant) (replica_main variant))
  in
  group.Context.replicas <- replicas;
  group.Context.ikb.Ikb.master_proc <- Some replicas.(0);
  (* the recovery policy: what [Context.replica_fault] dispatches to *)
  let respawn_attempts = Array.make nreplicas 0 in
  let rec do_respawn variant =
    match ghumvee with
    | None -> ()
    | Some g ->
      if (not group.Context.shutdown) && Context.is_quarantined group variant
      then begin
        group.Context.respawns <- group.Context.respawns + 1;
        (* the replica re-consumes the whole sync-event history *)
        Record_log.reset_variant group.Context.rb.Replication_buffer.sync_log
          ~variant;
        Ghumvee.begin_replay g ~variant;
        (* spawning and re-diversifying a fresh replica is monitor work *)
        g.Ghumvee.busy_until <-
          Vtime.add
            (Vtime.max g.Ghumvee.busy_until (Kernel.now kernel))
            (Vtime.ns (Kernel.cost kernel).Cost_model.respawn_spawn_ns);
        let p =
          Kernel.spawn_process kernel
            ~replica_info:
              { Proc.variant_index = variant; group_id = group.Context.shm_key }
            ~name:
              (Printf.sprintf "%s-v%d-r%d" name variant
                 respawn_attempts.(variant))
            ~vm_seed:(vm_seed_for variant)
            ~start_clock:(Kernel.now kernel) (replica_main variant)
        in
        group.Context.replicas.(variant) <- p;
        Ghumvee.attach g p;
        watch_exit variant p;
        (* A respawn that dies before rejoining lockstep — still replaying
           the journal, e.g. a second injected crash mid-replay — is a
           failed attempt, not a monitor-controlled death. Purge the stale
           replay state (parked [waiting_replay] arrivals of the dead
           incarnation would otherwise be fed into the next incarnation's
           journal positions) so the next attempt re-consumes the journal
           and lock-order log from position zero, then retry within budget.
           Replay-mismatch kills drop the variant from the replaying set
           before killing, so they stay permanently quarantined as designed. *)
        Kernel.on_process_exit p (fun code ->
            if
              code >= 128
              && (not group.Context.shutdown)
              && Ghumvee.is_replaying g ~variant
            then begin
              Ghumvee.purge_variant g ~variant;
              match config.on_failure with
              | Context.Respawn { max_respawns; backoff_ns } ->
                schedule_respawn variant ~max_respawns ~backoff_ns
              | _ -> ()
            end)
      end
  and schedule_respawn variant ~max_respawns ~backoff_ns =
    if respawn_attempts.(variant) < max_respawns then begin
      let attempt = respawn_attempts.(variant) in
      respawn_attempts.(variant) <- attempt + 1;
      (* exponential backoff: 1x, 2x, 4x, ... the configured interval *)
      let delay = Vtime.scale backoff_ns (2. ** float_of_int attempt) in
      Kernel.schedule kernel
        ~time:(Vtime.add (Kernel.now kernel) delay)
        (fun () -> do_respawn variant)
    end
  in
  (match config.on_failure with
  | Context.Kill_group -> () (* the paper's behavior: no handler installed *)
  | Context.Quarantine | Context.Respawn _ ->
    group.Context.replica_fault_handler <-
      Some
        (fun ~variant _verdict ->
          if variant = 0 || group.Context.shutdown then false
          else if Context.is_quarantined group variant then true
          else begin
            Context.quarantine group ~variant;
            Replication_buffer.deactivate group.Context.rb ~variant;
            let p = group.Context.replicas.(variant) in
            if p.Proc.alive then Kernel.kill_process kernel p ~code:134;
            (match ghumvee with
            | Some g -> Ghumvee.purge_variant g ~variant
            | None -> ());
            (match config.on_failure with
            | Context.Respawn { max_respawns; backoff_ns } when ghumvee <> None
              ->
              schedule_respawn variant ~max_respawns ~backoff_ns
            | _ -> ());
            true
          end));
  (* Section 4 extension: periodic RB migration. The broker remaps every
     replica's shared segments to fresh randomized addresses; IP-MON's
     register-held pointer is updated atomically (it never lived in
     user-accessible memory, so nothing else needs patching). *)
  (match config.rb_migration_interval with
  | None -> ()
  | Some interval ->
    let migrations = ref 0 in
    let ticks = ref 0 in
    let rec migrate () =
      incr ticks;
      let alive = Array.exists (fun (p : Proc.process) -> p.Proc.alive) replicas in
      (* the tick cap keeps the event queue finite for perpetual servers *)
      if alive && (not group.Context.shutdown) && !ticks <= 256 then begin
        Array.iter
          (fun (p : Proc.process) ->
            if p.Proc.alive then begin
              let shm_regions =
                List.filter
                  (fun (r : Vm.region) ->
                    match r.Vm.backing with Vm.Shm_seg _ -> true | _ -> false)
                  p.Proc.vm.Vm.regions
              in
              List.iter
                (fun (r : Vm.region) ->
                  let { Vm.len; prot; backing; tag; start } = r in
                  match Vm.unmap p.Proc.vm ~addr:start ~len with
                  | Error _ -> ()
                  | Ok () -> (
                    match Vm.map p.Proc.vm ~len ~prot ~backing ~tag with
                    | Ok r' -> (
                      incr migrations;
                      match p.Proc.ipmon_registered with
                      | Some reg when Int64.equal reg.Proc.rb_addr start ->
                        p.Proc.ipmon_registered <-
                          Some { reg with Proc.rb_addr = r'.Vm.start }
                      | _ -> ())
                    | Error _ -> ()))
                shm_regions
            end)
          replicas;
        Kernel.schedule kernel ~time:(Vtime.add (Kernel.now kernel) interval) migrate
      end
    in
    Kernel.schedule kernel ~time:(Vtime.add (Kernel.now kernel) interval) migrate);
  (match ghumvee with
  | Some g -> Array.iter (fun p -> Ghumvee.attach g p) replicas
  | None -> ());
  Array.iteri watch_exit replicas;
  handle

(* The current master process (variant 0), across respawn generations. *)
let master_process (h : handle) = h.group.Context.replicas.(0)

(* Graceful operator stop: no verdict, exit code 0, pending watchdogs go
   quiet. Used by fleet rolling restarts; the freed descriptors (listener
   port included) are released immediately, so a successor instance can
   rebind the same port. *)
let stop (h : handle) =
  h.group.Context.shutdown <- true;
  (match h.ghumvee with Some g -> Ghumvee.quiesce g | None -> ());
  Array.iter
    (fun (p : Proc.process) ->
      if p.Proc.alive then Kernel.kill_process h.kernel p ~code:0)
    h.group.Context.replicas

(* Collects the outcome after [Kernel.run] has drained the simulation. *)
let finish (h : handle) : outcome =
  let st = Kernel.stats h.kernel in
  let metrics =
    match Kernel.obs h.kernel with
    | None -> []
    | Some o ->
      (* fold the scheduler's event-queue tallies into the summary *)
      let eq =
        Event_queue.stats (Kernel.sched h.kernel).Sched.events
      in
      let m = o.Remon_obs.Obs.metrics in
      Remon_obs.Metrics.add m "eq.adds" eq.Event_queue.adds;
      Remon_obs.Metrics.add m "eq.cancels" eq.Event_queue.cancels;
      Remon_obs.Metrics.add m "eq.pops" eq.Event_queue.pops;
      Remon_obs.Metrics.add m "eq.compactions" eq.Event_queue.compactions;
      Remon_obs.Metrics.add m "eq.lazy_drops" eq.Event_queue.lazy_drops;
      Remon_obs.Metrics.add m "epoll.untranslatable"
        (Epoll_map.untranslatable h.group.Context.epoll_map);
      Remon_obs.Metrics.add m "recovery.quarantines" h.group.Context.quarantines;
      Remon_obs.Metrics.add m "recovery.respawns" h.group.Context.respawns;
      Remon_obs.Metrics.add m "recovery.watchdog_retries"
        h.group.Context.watchdog_retries;
      Remon_obs.Metrics.summary m
  in
  {
    duration = (match h.master_exit_ns with Some t -> t | None -> Kernel.now h.kernel);
    verdict = h.group.Context.divergence;
    exit_codes = List.sort compare h.exit_codes;
    syscalls = st.Kstate.syscalls;
    monitored = st.Kstate.monitored;
    ipmon_fastpath = st.Kstate.ipmon_fastpath;
    ptrace_stops = st.Kstate.ptrace_stops;
    rendezvous = (match h.ghumvee with Some g -> g.Ghumvee.rendezvous_count | None -> 0);
    ipmon_fallbacks = h.group.Context.ipmon_fallbacks;
    rb_resets = h.group.Context.rb.Replication_buffer.resets;
    rb_records = h.group.Context.rb.Replication_buffer.total_records;
    ring_flushes =
      (match h.group.Context.ring with
      | Some r -> r.Syscall_ring.flushes
      | None -> 0);
    ring_records =
      (match h.group.Context.ring with
      | Some r -> r.Syscall_ring.records_flushed
      | None -> 0);
    ring_max_batch =
      (match h.group.Context.ring with
      | Some r -> r.Syscall_ring.max_batch
      | None -> 0);
    tokens_granted = st.Kstate.tokens_granted;
    tokens_rejected = st.Kstate.tokens_rejected;
    faults_injected = (match h.fault with Some f -> Fault.injected f | None -> 0);
    quarantines = h.group.Context.quarantines;
    respawns = h.group.Context.respawns;
    degraded_ns =
      Context.degraded_total h.group
        ~until:
          (match h.master_exit_ns with
          | Some t -> t
          | None -> Kernel.now h.kernel);
    watchdog_retries = h.group.Context.watchdog_retries;
    metrics;
    recording =
      (match h.recorder with
      | None -> None
      | Some b ->
        Recording.detach b h.group.Context.rb.Replication_buffer.sync_log;
        let verdict =
          match h.group.Context.divergence with
          | None -> None
          | Some v -> Some (Divergence.class_of v, Divergence.to_string v)
        in
        Some (Recording.finish b ~verdict));
  }

(* One-shot convenience: fresh kernel, launch, run to completion. *)
let run_program ?cost ?(net_latency = Vtime.us 50) (config : config) ~name
    ~(body : env -> unit) : outcome =
  let kernel = Kernel.create ?cost ~seed:config.seed ~net_latency () in
  let h = launch kernel config ~name ~body in
  Kernel.run kernel;
  finish h
