(** Monitoring relaxation policies (Section 3.4): spatial exemption levels
    plus the stochastic temporal exemption. *)

open Remon_kernel
open Remon_util

type temporal = {
  min_approvals : int;
      (** identical monitor approvals needed before exemption can start *)
  exempt_probability : float; (** chance an eligible call is exempted *)
  window_ns : Remon_sim.Vtime.t; (** approvals older than this are forgotten *)
}

type t = {
  spatial : Classification.level option;
      (** [None]: monitor everything (GHUMVEE standalone) *)
  temporal : temporal option;
}

val monitor_everything : t
val spatial : Classification.level -> t
val with_temporal : t -> temporal -> t
val default_temporal : temporal
val to_string : t -> string

val op_type_allowed : Syscall.call -> bool
(** Table 1's "depending on op type" column: benign fcntl/ioctl subtypes
    only (e.g. F_DUPFD allocates an fd and is never exempt). *)

val spatial_allows : t -> Syscall.call -> on_socket:bool -> bool
(** Does the spatial policy exempt this call from cross-process
    monitoring? *)

(** Broker-side state for the temporal policy. Lives in kernel space, out
    of the replicas' reach. *)
type temporal_state = {
  rng : Rng.t;
  approvals : (Sysno.t, (Remon_sim.Vtime.t * int) ref) Hashtbl.t;
  mutable exempted : int;
  mutable considered : int;
}

val make_temporal_state : seed:int -> temporal_state

val record_approval :
  temporal_state -> now:Remon_sim.Vtime.t -> Sysno.t -> cfg:temporal -> unit
(** Called when GHUMVEE approves a monitored call at a rendezvous. *)

val temporal_exempts :
  temporal_state -> now:Remon_sim.Vtime.t -> Sysno.t -> cfg:temporal -> bool
(** One stochastic draw. The paper requires unpredictability: deterministic
    temporal policies are insecure. *)
