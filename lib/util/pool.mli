(** Domain-based work pool with ordered result collection.

    Simulation runs are self-contained (own kernel, clock, seeded RNG), so
    the experiment harness fans independent runs out across OCaml 5 domains
    and reassembles the results in submission order. *)

val default_domains : unit -> int
(** Worker count used when [map] gets no [?domains]: the [REMON_DOMAINS]
    environment variable when set, otherwise
    [Domain.recommended_domain_count () - 1], floored at 1. A set but
    malformed or non-positive [REMON_DOMAINS] raises [Invalid_argument]
    instead of silently falling back — a misconfigured CI or bench run
    should fail loudly, not quietly change its parallelism. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f jobs] applies [f] to every job and returns the results
    in input order. With [domains = 1] (or a single job) this is exactly
    [List.map f jobs] on the calling domain — the sequential code path.
    With [domains = n > 1], [n] workers (the caller plus [n-1] spawned
    domains) consume jobs from an atomic index. A job's exception is
    captured with its backtrace and re-raised on the calling domain at
    collection time, in job order. *)
