(** Deterministic splittable pseudo-random number generator (SplitMix64).

    All randomness in the simulator flows through explicitly-seeded values of
    type {!t}; [split] yields statistically independent child streams so that
    components do not perturb each other's draws. *)

type t

val make : int -> t
(** [make seed] creates a generator from an integer seed. *)

val of_int64 : int64 -> t
(** [of_int64 seed] creates a generator from a full 64-bit seed. *)

val fnv1a64 : string -> int64
(** FNV-1a hash of the string's bytes. Stable across OCaml versions and
    platforms, unlike [Hashtbl.hash] — use this (plus {!stable_seed}) to
    derive RNG seeds from names. *)

val splitmix64 : int64 -> int64
(** One stateless SplitMix64 finalization round (bijective mixer). *)

val stable_seed : string -> int -> int
(** [stable_seed name rank] derives a non-negative seed from a component
    name and a small integer rank: FNV-1a over the name bytes, rank folded
    in through {!splitmix64}. Stable across OCaml versions, so recorded
    runs replay byte-identically after a compiler upgrade. *)

val split : t -> t
(** [split t] returns an independent child generator, advancing [t]. *)

val bits : t -> int
(** [bits t] returns a uniform non-negative OCaml [int] (62 random bits). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in the inclusive range. *)

val int64 : t -> int64
(** [int64 t] returns a uniform 64-bit value; used for IK-B tokens. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val bool : t -> bool

val weighted : t -> float array -> int
(** [weighted t w] draws an index with probability proportional to [w.(i)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean. *)
