(* Plain-text table rendering for the benchmark harness.

   Columns are sized to their widest cell; numeric cells are right-aligned.
   Output is deliberately dependency-free so that bench output diffs cleanly
   in CI logs. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reverse order *)
}

let create ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length header then
        invalid_arg "Table.create: aligns/header length mismatch";
      a
    | None -> List.map (fun _ -> Left) header
  in
  { title; header; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- cells :: t.rows

let add_separator t =
  (* Encoded as a sentinel row; rendered as a rule line. *)
  t.rows <- [ "\x00sep" ] :: t.rows

let is_sep = function [ "\x00sep" ] -> true | _ -> false

let widths t =
  let n = List.length t.header in
  let w = Array.make n 0 in
  let feed cells =
    List.iteri (fun i c -> w.(i) <- max w.(i) (String.length c)) cells
  in
  feed t.header;
  List.iter (fun r -> if not (is_sep r) then feed r) t.rows;
  w

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let w = widths t in
  let buf = Buffer.create 1024 in
  let rule () =
    Array.iter (fun width -> Buffer.add_string buf ("+" ^ String.make (width + 2) '-')) w;
    Buffer.add_string buf "+\n"
  in
  let row ?(aligns = t.aligns) cells =
    List.iteri
      (fun i c ->
        let a = List.nth aligns i in
        Buffer.add_string buf ("| " ^ pad a w.(i) c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  if t.title <> "" then Buffer.add_string buf (t.title ^ "\n");
  rule ();
  row ~aligns:(List.map (fun _ -> Left) t.header) t.header;
  rule ();
  List.iter
    (fun r -> if is_sep r then rule () else row r)
    (List.rev t.rows);
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

(* Formatting helpers used throughout the bench harness. *)

let fmt_ratio x = Printf.sprintf "%.2f" x

let fmt_pct x = Printf.sprintf "%.1f%%" (x *. 100.)

let fmt_ns ns =
  let ns = float_of_int ns in
  if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns
