(* Domain-based work pool for the experiment harness.

   Every simulation run is a self-contained world — its own kernel, clock,
   event queue and seeded RNG — so independent runs parallelize across
   OCaml 5 domains without shared mutable state. The pool hands out jobs
   by atomic index, collects results into a pre-sized array, and returns
   them in submission order, so callers print tables that are
   byte-identical to a sequential run.

   Determinism contract: [map ~domains:1] takes the exact sequential code
   path (a plain [List.map] on the calling domain, no domain spawned, no
   atomics), so a single-domain run is not merely equivalent to the old
   sequential harness — it *is* the old sequential harness. *)

(* A malformed or non-positive REMON_DOMAINS is a configuration error:
   silently falling back to the core count would mask a misconfigured CI
   or bench invocation (the run would still "work", just not the way the
   operator asked), so fail fast instead. *)
let default_domains () =
  match Sys.getenv_opt "REMON_DOMAINS" with
  | None -> max 1 (Domain.recommended_domain_count () - 1)
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf
           "REMON_DOMAINS=%S: expected a positive integer (number of worker \
            domains)"
           s))

(* Parallel body: [n] workers total (n-1 spawned domains plus the calling
   domain) race down an atomic job index. Per-job exceptions are captured
   with their backtraces and re-raised on the calling domain in job order,
   so the surfaced failure is the same one a sequential run would hit
   first. *)
let map_parallel (type a b) n (f : a -> b) (jobs : a list) : b list =
  let jobs = Array.of_list jobs in
  let njobs = Array.length jobs in
  let results : (b, exn * Printexc.raw_backtrace) result option array =
    Array.make njobs None
  in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < njobs then begin
        let r =
          try Ok (f jobs.(i))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        loop ()
      end
    in
    loop ()
  in
  let spawned =
    Array.init (min (n - 1) (max 0 (njobs - 1))) (fun _ -> Domain.spawn worker)
  in
  worker ();
  Array.iter Domain.join spawned;
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* every index was claimed by a worker *))
       results)

let map ?domains (f : 'a -> 'b) (jobs : 'a list) : 'b list =
  let n =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  (* match on the list shape instead of forcing a full List.length just to
     test "at most one job" *)
  match jobs with
  | [] | [ _ ] -> List.map f jobs
  | _ :: _ :: _ -> if n = 1 then List.map f jobs else map_parallel n f jobs
