(* Deterministic splittable pseudo-random number generator (SplitMix64).

   The whole simulator must be reproducible: every source of randomness is
   drawn from an explicitly-seeded generator, and independent components
   receive independent streams via [split] so that adding draws in one
   component never perturbs another. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let make seed = { state = Int64.of_int seed }

let of_int64 seed = { state = seed }

(* ------------------------------------------------------------------ *)
(* Stable seed derivation.

   [Hashtbl.hash] is explicitly *not* stable across OCaml releases, so a
   seed derived from it silently changes the whole simulation after a
   compiler upgrade — recorded runs stop replaying byte-identically.
   Components that key RNG streams by a name and a small integer rank
   derive their seeds through these fixed, in-repo mixers instead. *)

(* FNV-1a over the bytes of a string (64-bit offset basis / prime). *)
let fnv1a64 s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

(* One SplitMix64 finalization round: a stateless bijective mixer. *)
let splitmix64 z =
  let z = Int64.add z golden_gamma in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Stable (name, rank) -> seed: FNV-1a over the name bytes, then the rank
   folded in through splitmix so that adjacent ranks land far apart. The
   result is a non-negative OCaml int, usable directly with [make]. *)
let stable_seed name rank =
  let h = splitmix64 (Int64.logxor (fnv1a64 name) (Int64.of_int rank)) in
  Int64.to_int (Int64.shift_right_logical h 2)

(* SplitMix64 finalizer: advances the state by the golden-ratio increment and
   scrambles it through two xor-shift-multiply rounds. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: empty range";
  lo + int t (hi - lo + 1)

let int64 t = next_int64 t

let float t =
  let mask53 = (1 lsl 53) - 1 in
  float_of_int (Int64.to_int (next_int64 t) land mask53)
  /. float_of_int (mask53 + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Draws an index according to the given non-negative weights. *)
let weighted t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Rng.weighted: weights must sum to > 0";
  let x = float t *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Exponentially distributed duration with the given mean; used to model
   jitter in compute phases and client think times. *)
let exponential t ~mean =
  let u = float t in
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u
