(* Minimal growable array (Dynarray-style; stdlib's arrives only in 5.2).

   Used for hot-path collections that only ever append — per-process thread
   tables, most prominently — where the previous [xs <- xs @ [x]] idiom
   cost O(n) per append and O(n²) over a run. Iteration order is insertion
   order, matching the list-based code it replaces. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let push t x =
  let cap = Array.length t.data in
  if t.len >= cap then begin
    let bigger = Array.make (max 4 (2 * cap)) x in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let for_all p t =
  let rec go i = i >= t.len || (p t.data.(i) && go (i + 1)) in
  go 0

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let find_opt p t =
  let rec go i =
    if i >= t.len then None
    else if p t.data.(i) then Some t.data.(i)
    else go (i + 1)
  in
  go 0

let first_opt t = if t.len = 0 then None else Some t.data.(0)

let to_list t = List.init t.len (fun i -> t.data.(i))

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t
