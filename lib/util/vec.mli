(** Minimal growable array with O(1) amortized append and insertion-order
    iteration. Replaces list-append ([xs @ [x]]) patterns on hot paths. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val push : 'a t -> 'a -> unit
(** Appends at the end; amortized O(1). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Insertion order. Elements pushed during iteration are not visited. *)

val for_all : ('a -> bool) -> 'a t -> bool

val exists : ('a -> bool) -> 'a t -> bool

val find_opt : ('a -> bool) -> 'a t -> 'a option
(** First match in insertion order. *)

val first_opt : 'a t -> 'a option

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t
