(** Plain-text table rendering for the benchmark harness. *)

type align = Left | Right

type t

val create : title:string -> header:string list -> ?aligns:align list -> unit -> t
(** [create ~title ~header ()] makes an empty table. [aligns] defaults to all
    [Left] and must match [header] in length when given. *)

val add_row : t -> string list -> unit
(** Appends a row; raises [Invalid_argument] on cell-count mismatch. *)

val add_separator : t -> unit
(** Appends a horizontal rule between row groups. *)

val render : t -> string
val print : t -> unit

val fmt_ratio : float -> string
(** Two-decimal ratio, e.g. ["1.09"]. *)

val fmt_pct : float -> string
(** Percentage with one decimal, e.g. [0.112] renders as ["11.2%"]. *)

val fmt_ns : int -> string
(** Human-readable duration from nanoseconds. *)
