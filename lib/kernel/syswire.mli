(** Binary wire codec for syscall values (recordings, reproducer files).

    Varint-based (LEB128, zigzag for signed fields) with one stable tag per
    constructor. Decoding is fully bounds-checked and total: malformed
    input raises {!Fail} with a typed {!error} — never an out-of-bounds
    read, an unbounded allocation, or an escaping generic exception. The
    deliberate non-goal is OCaml's [Marshal], which is none of those
    things on corrupted bytes. *)

type error =
  | Truncated  (** input ended mid-value *)
  | Corrupt of string  (** structurally invalid (bad tag, overlong varint) *)

val error_to_string : error -> string

exception Fail of error
(** Raised by the reading functions below; [Recording.of_bytes] and other
    top-level decoders catch it and return a [result]. *)

(** Append-only byte sink. *)
module W : sig
  type t

  val create : ?initial:int -> unit -> t
  val u8 : t -> int -> unit
  val uint : t -> int -> unit  (** LEB128; the value must be [>= 0] *)

  val int : t -> int -> unit  (** zigzag + LEB128 *)

  val i64 : t -> int64 -> unit  (** zigzag + LEB128, full 64-bit range *)

  val bool : t -> bool -> unit
  val str : t -> string -> unit  (** length-prefixed bytes *)

  val length : t -> int
  val contents : t -> string
end

(** Bounds-checked cursor over immutable bytes. *)
module R : sig
  type t

  val of_string : ?pos:int -> ?len:int -> string -> t
  val pos : t -> int
  val remaining : t -> int
  val u8 : t -> int
  val uint : t -> int
  val int : t -> int
  val i64 : t -> int64
  val bool : t -> bool
  val str : t -> string
end

val write_call : W.t -> Syscall.call -> unit
val read_call : R.t -> Syscall.call

val write_result : W.t -> Syscall.result -> unit
val read_result : R.t -> Syscall.result

val write_errno : W.t -> Errno.t -> unit
val read_errno : R.t -> Errno.t
