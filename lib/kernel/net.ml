(* Simulated stream-socket network.

   Connections are pairs of unidirectional channels. Data "in flight" is
   committed to the peer's receive queue by a kernel event scheduled
   [latency + wire time] after the send — this is how the netem-style link
   latency of the paper's three server scenarios is modeled.

   Each direction is bounded: a stream's receive buffer (committed bytes
   plus bytes still in flight towards it) never exceeds its [rcvbuf] cap.
   [send_start] accepts at most the remaining space, so senders experience
   real backpressure (partial writes, EAGAIN, blocking) exactly where a
   Linux socket would.

   Memory layout: million-connection worlds mean millions of stream
   endpoints, most of them idle at any instant, so the stream record is
   kept flat — seven fields (an 8-word block, 64 bytes on 64-bit) with the
   boolean flags and both ports packed into one int, the buffer caps into a
   second, and the in-flight/high-water counters into a third. The receive
   queue is allocated lazily on the first byte committed: an endpoint that
   never receives (or has not received yet) carries no [Bytestream.t].
   Streams whose lifetime is provably private to the kernel (gateway-side
   endpoints, refused-connection pairs) are recycled through a
   geometrically-grown pool, the same idiom as [Event_queue]'s entry
   pool. *)

(* Default per-direction buffer capacity; mirrors Linux's default
   net.core.{r,w}mem_default of 212992 bytes. *)
let default_bufcap = 212_992

(* SOL_SOCKET option names understood by setsockopt/getsockopt. *)
let so_sndbuf = 7
let so_rcvbuf = 8

(* Floor for configured caps: a cap below one page would deadlock workloads
   whose smallest message cannot fit the buffer. *)
let min_bufcap = 256

(* Field packing.

   flags: bit 0 rd_shut | bit 1 wr_shut | bit 2 connected | bit 3 local
          | bit 4 remote | bits 5-30 local_port | bits 31-56 peer_port
   bufs:  bits 0-30 sndbuf | bits 31-61 rcvbuf
   counts: bits 0-30 in_flight | bits 31-61 buffered high-water mark

   Ports get 26 bits (67M — the ephemeral counter of a single host never
   approaches this), byte counts 31 bits each; everything fits a 63-bit
   OCaml int. *)

let f_rd_shut = 1
let f_wr_shut = 2
let f_connected = 4
let f_local = 8
let f_remote = 16
let port_mask = 0x3FF_FFFF (* 26 bits *)
let lport_shift = 5
let pport_shift = 31
let mask31 = 0x7FFF_FFFF

type stream = {
  mutable sid : int;
  mutable flags : int;
  mutable bufs : int;
  mutable counts : int;
  mutable incoming : Bytestream.t option; (* committed, readable data; lazy *)
  mutable peer : stream option; (* None once the peer endpoint is closed *)
  mutable tag : int; (* gateway connection id, -1 when unset *)
}

type listener = {
  port : int;
  mutable backlog : int;
  pending : stream Queue.t; (* server-side endpoints awaiting accept *)
  mutable closed : bool;
  mutable refused : int; (* connections turned away by a full backlog *)
}

type t = {
  mutable latency : Remon_sim.Vtime.t; (* one-way propagation delay *)
  mutable bufcap : int; (* default snd/rcv cap for fresh streams *)
  listeners : (int, listener) Hashtbl.t;
  mutable next_sid : int;
  mutable next_ephemeral : int;
  (* recycled stream endpoints (kernel-private lifetimes only) *)
  mutable spool : stream array;
  mutable spooled : int;
}

let create ?(latency = Remon_sim.Vtime.us 50) ?(bufcap = default_bufcap) () =
  {
    latency;
    bufcap = min mask31 (max min_bufcap bufcap);
    listeners = Hashtbl.create 8;
    next_sid = 1;
    next_ephemeral = 32_768;
    spool = [||];
    spooled = 0;
  }

let set_latency t l = t.latency <- l
let set_bufcap t cap = t.bufcap <- min mask31 (max min_bufcap cap)

(* ------------------------------------------------------------------ *)
(* Packed-field accessors *)

let sid s = s.sid
let rd_shut s = s.flags land f_rd_shut <> 0
let wr_shut s = s.flags land f_wr_shut <> 0
let shutdown_rd s = s.flags <- s.flags lor f_rd_shut
let shutdown_wr s = s.flags <- s.flags lor f_wr_shut
let connected s = s.flags land f_connected <> 0
let set_connected s = s.flags <- s.flags lor f_connected
let is_local s = s.flags land f_local <> 0
let is_remote s = s.flags land f_remote <> 0
let mark_local s = s.flags <- s.flags lor f_local
let mark_remote s = s.flags <- s.flags lor f_remote
let local_port s = (s.flags lsr lport_shift) land port_mask
let peer_port s = (s.flags lsr pport_shift) land port_mask

let set_local_port s p =
  s.flags <-
    s.flags land lnot (port_mask lsl lport_shift)
    lor ((p land port_mask) lsl lport_shift)

let set_peer_port s p =
  s.flags <-
    s.flags land lnot (port_mask lsl pport_shift)
    lor ((p land port_mask) lsl pport_shift)

let sndbuf s = s.bufs land mask31
let rcvbuf s = s.bufs lsr pport_shift land mask31
let pack_bufs ~sndbuf ~rcvbuf = (sndbuf land mask31) lor (rcvbuf lsl 31)
let in_flight s = s.counts land mask31
let buffered_hwm s = s.counts lsr 31

let set_in_flight s v =
  s.counts <- s.counts land lnot mask31 lor (v land mask31)

let set_hwm s v = s.counts <- s.counts land mask31 lor (v lsl 31)
let tag s = s.tag
let set_tag s v = s.tag <- v

let incoming_length s =
  match s.incoming with None -> 0 | Some b -> Bytestream.length b

(* The receive queue is materialized on first use; idle endpoints carry
   [None]. *)
let get_incoming s =
  match s.incoming with
  | Some b -> b
  | None ->
    let b = Bytestream.create () in
    s.incoming <- Some b;
    b

(* ------------------------------------------------------------------ *)
(* Stream lifecycle *)

let fresh_stream t =
  let sid = t.next_sid in
  t.next_sid <- t.next_sid + 1;
  let bufs = pack_bufs ~sndbuf:t.bufcap ~rcvbuf:t.bufcap in
  if t.spooled > 0 then begin
    t.spooled <- t.spooled - 1;
    let s = t.spool.(t.spooled) in
    s.sid <- sid;
    s.flags <- 0;
    s.bufs <- bufs;
    s.counts <- 0;
    (* s.incoming was left as None or an empty, reusable Bytestream *)
    s.peer <- None;
    s.tag <- -1;
    s
  end
  else
    { sid; flags = 0; bufs; counts = 0; incoming = None; peer = None; tag = -1 }

(* Return an endpoint to the pool. Callers must guarantee no live reference
   remains (no fd, no parked thread, no pending commit event): the gateway
   recycles its private endpoints once their in-flight count is zero, and
   the dispatcher recycles both halves of a pair refused at SYN arrival
   (never exposed to any process). An empty receive queue is kept for
   reuse; a non-empty one is dropped so stale bytes cannot leak into the
   next connection. *)
let release_stream t s =
  (match s.incoming with
  | Some b when Bytestream.length b > 0 -> s.incoming <- None
  | _ -> ());
  s.peer <- None;
  s.flags <- 0;
  s.counts <- 0;
  s.tag <- -1;
  s.sid <- 0;
  let cap = Array.length t.spool in
  if t.spooled >= cap then begin
    let bigger = Array.make (max 16 (2 * cap)) s in
    Array.blit t.spool 0 bigger 0 t.spooled;
    t.spool <- bigger
  end;
  t.spool.(t.spooled) <- s;
  t.spooled <- t.spooled + 1

let pooled_streams t = t.spooled

let listen t ~port ~backlog =
  if Hashtbl.mem t.listeners port then Error Errno.EADDRINUSE
  else begin
    let l =
      { port; backlog; pending = Queue.create (); closed = false; refused = 0 }
    in
    Hashtbl.replace t.listeners port l;
    Ok l
  end

let find_listener t ~port =
  match Hashtbl.find_opt t.listeners port with
  | Some l when not l.closed -> Some l
  | _ -> None

let close_listener t l =
  l.closed <- true;
  Hashtbl.remove t.listeners l.port

(* Backlog enforcement: the dispatcher consults this at SYN-arrival time
   (one link latency after the client's connect). *)
let backlog_full l = Queue.length l.pending >= max 1 l.backlog

(* Enqueue a server-side endpoint for accept, refusing when the listener is
   gone or its backlog is full. Returns false on refusal. *)
let try_enqueue l stream =
  if l.closed || backlog_full l then begin
    l.refused <- l.refused + 1;
    false
  end
  else begin
    Queue.push stream l.pending;
    true
  end

(* Builds the two endpoints of a connection; the caller (dispatcher) is
   responsible for delaying [commit_pending] and the listener enqueue by the
   link latency. *)
let make_pair t ~client_port ~server_port =
  let client = fresh_stream t in
  let server = fresh_stream t in
  client.peer <- Some server;
  server.peer <- Some client;
  set_local_port client client_port;
  set_peer_port client server_port;
  set_local_port server server_port;
  set_peer_port server client_port;
  (client, server)

let ephemeral_port t =
  let p = t.next_ephemeral in
  t.next_ephemeral <- t.next_ephemeral + 1;
  p

(* Bytes a stream is holding: committed plus still-in-flight. This is the
   quantity capped by [rcvbuf]. *)
let buffered stream = incoming_length stream + in_flight stream

let stream_cap stream = rcvbuf stream

let set_sndbuf stream v =
  stream.bufs <-
    pack_bufs ~sndbuf:(min mask31 (max min_bufcap v)) ~rcvbuf:(rcvbuf stream)

(* Shrinking below what is already buffered only takes effect as the peer
   drains; already-accepted bytes are never dropped. *)
let set_rcvbuf stream v =
  stream.bufs <-
    pack_bufs ~sndbuf:(sndbuf stream) ~rcvbuf:(min mask31 (max min_bufcap v))

(* Room the sender may still fill towards [stream]'s peer. *)
let send_space stream =
  match stream.peer with
  | None -> 0
  | Some peer -> max 0 (rcvbuf peer - buffered peer)

(* Sender side: reserve space in the peer's receive buffer and account the
   in-flight bytes; the kernel commits them later. Returns how many bytes
   were accepted (0 = buffer full, the caller must block or report EAGAIN)
   and the peer whose queue the data must be committed to. A single call
   accepts at most [sndbuf] bytes, modeling the sender-side buffer. *)
let send_start stream data =
  match stream.peer with
  | None -> Error Errno.EPIPE
  | Some _ when wr_shut stream -> Error Errno.EPIPE
  | Some peer ->
    let space = max 0 (rcvbuf peer - buffered peer) in
    let accepted = min (String.length data) (min space (sndbuf stream)) in
    set_in_flight peer (in_flight peer + accepted);
    let b = buffered peer in
    if b > buffered_hwm peer then set_hwm peer b;
    Ok (accepted, peer)

(* Receiver side: invoked by the scheduled delivery event. The space was
   reserved at [send_start], so this only moves in-flight bytes into the
   committed queue — the cap cannot be exceeded here. *)
let commit stream data =
  set_in_flight stream (in_flight stream - String.length data);
  Bytestream.push (get_incoming stream) data

let peer_gone stream = stream.peer = None

let readable stream =
  incoming_length stream > 0 || rd_shut stream || peer_gone stream

let at_eof stream =
  incoming_length stream = 0
  && in_flight stream = 0
  && (peer_gone stream || rd_shut stream)

(* Draining the committed queue frees receive-buffer space; the dispatcher
   kicks the scheduler afterwards so blocked senders retry. *)
let recv stream count =
  match stream.incoming with
  | None -> ""
  | Some b -> Bytestream.pull b count

(* Receiver side of a cross-host link: the per-connection credit window
   reserved the space end-to-end, so arriving bytes go straight into the
   committed queue (there is no local in-flight phase). *)
let commit_inbound stream data =
  Bytestream.push (get_incoming stream) data;
  let b = buffered stream in
  if b > buffered_hwm stream then set_hwm stream b

let peer stream = stream.peer

(* Endpoint close: detach from peer so the peer observes EOF / EPIPE. *)
let close_stream stream =
  (match stream.peer with Some p -> p.peer <- None | None -> ());
  stream.peer <- None;
  stream.flags <- stream.flags lor f_rd_shut lor f_wr_shut
