(* Simulated stream-socket network.

   Connections are pairs of unidirectional channels. Data "in flight" is
   committed to the peer's receive queue by a kernel event scheduled
   [latency + wire time] after the send — this is how the netem-style link
   latency of the paper's three server scenarios is modeled.

   Each direction is bounded: a stream's receive buffer (committed bytes
   plus bytes still in flight towards it) never exceeds its [rcvbuf] cap.
   [send_start] accepts at most the remaining space, so senders experience
   real backpressure (partial writes, EAGAIN, blocking) exactly where a
   Linux socket would. *)

(* Default per-direction buffer capacity; mirrors Linux's default
   net.core.{r,w}mem_default of 212992 bytes. *)
let default_bufcap = 212_992

(* SOL_SOCKET option names understood by setsockopt/getsockopt. *)
let so_sndbuf = 7
let so_rcvbuf = 8

(* Floor for configured caps: a cap below one page would deadlock workloads
   whose smallest message cannot fit the buffer. *)
let min_bufcap = 256

type stream = {
  sid : int;
  mutable local_port : int;
  mutable peer_port : int;
  incoming : Bytestream.t; (* committed, readable data *)
  mutable peer : stream option; (* None once the peer endpoint is closed *)
  mutable rd_shut : bool;
  mutable wr_shut : bool;
  mutable in_flight : int; (* bytes sent but not yet committed *)
  mutable connected : bool;
  mutable local : bool; (* same-host pair (socketpair): no link latency *)
  mutable remote : bool;
      (* application endpoint of a cross-host connection: the local "pair"
         only models the host's socket buffer, the real latency lives on
         the inter-host link behind the gateway *)
  mutable sndbuf : int; (* max bytes one send may accept (SO_SNDBUF) *)
  mutable rcvbuf : int; (* cap on incoming + in_flight (SO_RCVBUF) *)
  mutable buffered_hwm : int; (* high-water mark of incoming + in_flight *)
}

type listener = {
  port : int;
  mutable backlog : int;
  pending : stream Queue.t; (* server-side endpoints awaiting accept *)
  mutable closed : bool;
  mutable refused : int; (* connections turned away by a full backlog *)
}

type t = {
  mutable latency : Remon_sim.Vtime.t; (* one-way propagation delay *)
  mutable bufcap : int; (* default snd/rcv cap for fresh streams *)
  listeners : (int, listener) Hashtbl.t;
  mutable next_sid : int;
  mutable next_ephemeral : int;
}

let create ?(latency = Remon_sim.Vtime.us 50) ?(bufcap = default_bufcap) () =
  {
    latency;
    bufcap = max min_bufcap bufcap;
    listeners = Hashtbl.create 8;
    next_sid = 1;
    next_ephemeral = 32_768;
  }

let set_latency t l = t.latency <- l
let set_bufcap t cap = t.bufcap <- max min_bufcap cap

let fresh_stream t =
  let sid = t.next_sid in
  t.next_sid <- t.next_sid + 1;
  {
    sid;
    local_port = 0;
    peer_port = 0;
    incoming = Bytestream.create ();
    peer = None;
    rd_shut = false;
    wr_shut = false;
    in_flight = 0;
    connected = false;
    local = false;
    remote = false;
    sndbuf = t.bufcap;
    rcvbuf = t.bufcap;
    buffered_hwm = 0;
  }

let listen t ~port ~backlog =
  if Hashtbl.mem t.listeners port then Error Errno.EADDRINUSE
  else begin
    let l =
      { port; backlog; pending = Queue.create (); closed = false; refused = 0 }
    in
    Hashtbl.replace t.listeners port l;
    Ok l
  end

let find_listener t ~port =
  match Hashtbl.find_opt t.listeners port with
  | Some l when not l.closed -> Some l
  | _ -> None

let close_listener t l =
  l.closed <- true;
  Hashtbl.remove t.listeners l.port

(* Backlog enforcement: the dispatcher consults this at SYN-arrival time
   (one link latency after the client's connect). *)
let backlog_full l = Queue.length l.pending >= max 1 l.backlog

(* Enqueue a server-side endpoint for accept, refusing when the listener is
   gone or its backlog is full. Returns false on refusal. *)
let try_enqueue l stream =
  if l.closed || backlog_full l then begin
    l.refused <- l.refused + 1;
    false
  end
  else begin
    Queue.push stream l.pending;
    true
  end

(* Builds the two endpoints of a connection; the caller (dispatcher) is
   responsible for delaying [commit_pending] and the listener enqueue by the
   link latency. *)
let make_pair t ~client_port ~server_port =
  let client = fresh_stream t in
  let server = fresh_stream t in
  client.peer <- Some server;
  server.peer <- Some client;
  client.local_port <- client_port;
  client.peer_port <- server_port;
  server.local_port <- server_port;
  server.peer_port <- client_port;
  (client, server)

let ephemeral_port t =
  let p = t.next_ephemeral in
  t.next_ephemeral <- t.next_ephemeral + 1;
  p

(* Bytes a stream is holding: committed plus still-in-flight. This is the
   quantity capped by [rcvbuf]. *)
let buffered stream = Bytestream.length stream.incoming + stream.in_flight

let buffered_hwm stream = stream.buffered_hwm
let stream_cap stream = stream.rcvbuf

let set_sndbuf stream v = stream.sndbuf <- max min_bufcap v

(* Shrinking below what is already buffered only takes effect as the peer
   drains; already-accepted bytes are never dropped. *)
let set_rcvbuf stream v = stream.rcvbuf <- max min_bufcap v

(* Room the sender may still fill towards [stream]'s peer. *)
let send_space stream =
  match stream.peer with
  | None -> 0
  | Some peer -> max 0 (peer.rcvbuf - buffered peer)

(* Sender side: reserve space in the peer's receive buffer and account the
   in-flight bytes; the kernel commits them later. Returns how many bytes
   were accepted (0 = buffer full, the caller must block or report EAGAIN)
   and the peer whose queue the data must be committed to. A single call
   accepts at most [sndbuf] bytes, modeling the sender-side buffer. *)
let send_start stream data =
  match stream.peer with
  | None -> Error Errno.EPIPE
  | Some _ when stream.wr_shut -> Error Errno.EPIPE
  | Some peer ->
    let space = max 0 (peer.rcvbuf - buffered peer) in
    let accepted = min (String.length data) (min space stream.sndbuf) in
    peer.in_flight <- peer.in_flight + accepted;
    let b = buffered peer in
    if b > peer.buffered_hwm then peer.buffered_hwm <- b;
    Ok (accepted, peer)

(* Receiver side: invoked by the scheduled delivery event. The space was
   reserved at [send_start], so this only moves in-flight bytes into the
   committed queue — the cap cannot be exceeded here. *)
let commit stream data =
  stream.in_flight <- stream.in_flight - String.length data;
  Bytestream.push stream.incoming data

let peer_gone stream = stream.peer = None

let readable stream =
  Bytestream.length stream.incoming > 0 || stream.rd_shut || peer_gone stream

let at_eof stream =
  Bytestream.length stream.incoming = 0
  && stream.in_flight = 0
  && (peer_gone stream || stream.rd_shut)

(* Draining the committed queue frees receive-buffer space; the dispatcher
   kicks the scheduler afterwards so blocked senders retry. *)
let recv stream count = Bytestream.pull stream.incoming count

(* Receiver side of a cross-host link: the per-connection credit window
   reserved the space end-to-end, so arriving bytes go straight into the
   committed queue (there is no local in-flight phase). *)
let commit_inbound stream data =
  Bytestream.push stream.incoming data;
  let b = buffered stream in
  if b > stream.buffered_hwm then stream.buffered_hwm <- b

(* Endpoint close: detach from peer so the peer observes EOF / EPIPE. *)
let close_stream stream =
  (match stream.peer with Some p -> p.peer <- None | None -> ());
  stream.peer <- None;
  stream.rd_shut <- true;
  stream.wr_shut <- true
