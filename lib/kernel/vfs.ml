(* In-memory filesystem: a tree of inodes with regular files, directories,
   symlinks and special (generated-content) nodes.

   The tree is shared by every process in a kernel instance — it models the
   host filesystem, which is why MVEE transparency matters: only the master
   replica may mutate it. *)

(* Regular-file backing store: a growable byte array with an explicit
   size. Appends are amortized O(1) (capacity doubles); [Buffer.t] was
   unusable here because random-offset writes forced a full copy of the
   file per write, which made append-heavy workloads quadratic. *)
type filebuf = { mutable bytes : Bytes.t; mutable size : int }

type node = {
  ino : int;
  mutable kind : kind;
  mutable mtime_ns : int;
  mutable xattrs : (string * string) list;
}

and kind =
  | Reg of filebuf
  | Dir of (string, node) Hashtbl.t
  | Symlink of string
  | Special of (unit -> string)
      (* content generated on open; used for /proc files *)

let filebuf_create () = { bytes = Bytes.create 256; size = 0 }

(* Grow capacity to hold [n] bytes; newly exposed bytes beyond the old
   size are zeroed by the callers that create a gap. *)
let filebuf_reserve fb n =
  let cap = Bytes.length fb.bytes in
  if n > cap then begin
    let bigger = Bytes.create (max n (2 * cap)) in
    Bytes.blit fb.bytes 0 bigger 0 fb.size;
    fb.bytes <- bigger
  end

type t = { root : node; mutable next_ino : int }

let mk_node t kind =
  let ino = t.next_ino in
  t.next_ino <- t.next_ino + 1;
  { ino; kind; mtime_ns = 0; xattrs = [] }

let create () =
  let root =
    { ino = 1; kind = Dir (Hashtbl.create 16); mtime_ns = 0; xattrs = [] }
  in
  { root; next_ino = 2 }

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

(* Resolves [path] to a node, following symlinks (bounded depth). *)
let rec resolve_from t node components depth =
  if depth > 16 then Error Errno.ELOOP
  else
    match components with
    | [] -> Ok node
    | name :: rest -> (
      match node.kind with
      | Dir entries -> (
        match Hashtbl.find_opt entries name with
        | None -> Error Errno.ENOENT
        | Some child -> (
          match child.kind with
          | Symlink target -> (
            match resolve_from t t.root (split_path target) (depth + 1) with
            | Ok n -> resolve_from t n rest (depth + 1)
            | Error _ as e -> e)
          | Reg _ | Dir _ | Special _ -> resolve_from t child rest depth))
      | Reg _ | Special _ | Symlink _ -> Error Errno.ENOTDIR)

let resolve t path = resolve_from t t.root (split_path path) 0

(* Like [resolve] but does not follow a symlink in the final component. *)
let resolve_nofollow t path =
  match List.rev (split_path path) with
  | [] -> Ok t.root
  | last :: rev_prefix -> (
    let prefix = List.rev rev_prefix in
    match resolve_from t t.root prefix 0 with
    | Error _ as e -> e
    | Ok parent -> (
      match parent.kind with
      | Dir entries -> (
        match Hashtbl.find_opt entries last with
        | None -> Error Errno.ENOENT
        | Some child -> Ok child)
      | _ -> Error Errno.ENOTDIR))

let parent_and_name t path =
  match List.rev (split_path path) with
  | [] -> Error Errno.EINVAL
  | last :: rev_prefix -> (
    match resolve_from t t.root (List.rev rev_prefix) 0 with
    | Error _ as e -> e
    | Ok parent -> (
      match parent.kind with
      | Dir _ -> Ok (parent, last)
      | _ -> Error Errno.ENOTDIR))

let exists t path = Result.is_ok (resolve t path)

let mkdir t path =
  match parent_and_name t path with
  | Error _ as e -> e
  | Ok (parent, name) -> (
    match parent.kind with
    | Dir entries ->
      if Hashtbl.mem entries name then Error Errno.EEXIST
      else begin
        let node = mk_node t (Dir (Hashtbl.create 8)) in
        Hashtbl.replace entries name node;
        Ok node
      end
    | _ -> Error Errno.ENOTDIR)

(* Creates intermediate directories as needed; used for test fixtures. *)
let rec mkdir_p t path =
  match resolve t path with
  | Ok node -> (
    match node.kind with Dir _ -> Ok node | _ -> Error Errno.ENOTDIR)
  | Error _ -> (
    match List.rev (split_path path) with
    | [] -> Ok t.root
    | _ :: rev_prefix -> (
      let parent_path = String.concat "/" (List.rev rev_prefix) in
      match mkdir_p t ("/" ^ parent_path) with
      | Error _ as e -> e
      | Ok _ -> mkdir t path))

let create_file t path =
  match parent_and_name t path with
  | Error _ as e -> e
  | Ok (parent, name) -> (
    match parent.kind with
    | Dir entries -> (
      match Hashtbl.find_opt entries name with
      | Some existing -> (
        match existing.kind with
        | Reg _ -> Ok existing
        | Dir _ -> Error Errno.EISDIR
        | _ -> Error Errno.EEXIST)
      | None ->
        let node = mk_node t (Reg (filebuf_create ())) in
        Hashtbl.replace entries name node;
        Ok node)
    | _ -> Error Errno.ENOTDIR)

let add_special t path gen =
  match parent_and_name t path with
  | Error _ as e -> e
  | Ok (parent, name) -> (
    match parent.kind with
    | Dir entries ->
      let node = mk_node t (Special gen) in
      Hashtbl.replace entries name node;
      Ok node
    | _ -> Error Errno.ENOTDIR)

let symlink t ~target ~path =
  match parent_and_name t path with
  | Error _ as e -> e
  | Ok (parent, name) -> (
    match parent.kind with
    | Dir entries ->
      if Hashtbl.mem entries name then Error Errno.EEXIST
      else begin
        let node = mk_node t (Symlink target) in
        Hashtbl.replace entries name node;
        Ok node
      end
    | _ -> Error Errno.ENOTDIR)

let unlink t path =
  match parent_and_name t path with
  | Error _ as e -> e
  | Ok (parent, name) -> (
    match parent.kind with
    | Dir entries -> (
      match Hashtbl.find_opt entries name with
      | None -> Error Errno.ENOENT
      | Some node -> (
        match node.kind with
        | Dir _ -> Error Errno.EISDIR
        | _ ->
          Hashtbl.remove entries name;
          Ok ()))
    | _ -> Error Errno.ENOTDIR)

let rmdir t path =
  match parent_and_name t path with
  | Error _ as e -> e
  | Ok (parent, name) -> (
    match parent.kind with
    | Dir entries -> (
      match Hashtbl.find_opt entries name with
      | None -> Error Errno.ENOENT
      | Some node -> (
        match node.kind with
        | Dir children ->
          if Hashtbl.length children > 0 then Error Errno.ENOTEMPTY
          else begin
            Hashtbl.remove entries name;
            Ok ()
          end
        | _ -> Error Errno.ENOTDIR))
    | _ -> Error Errno.ENOTDIR)

let rename t ~src ~dst =
  match (parent_and_name t src, parent_and_name t dst) with
  | Error e, _ | _, Error e -> Error e
  | Ok (sp, sname), Ok (dp, dname) -> (
    match (sp.kind, dp.kind) with
    | Dir sentries, Dir dentries -> (
      match Hashtbl.find_opt sentries sname with
      | None -> Error Errno.ENOENT
      | Some node ->
        Hashtbl.remove sentries sname;
        Hashtbl.replace dentries dname node;
        Ok ())
    | _ -> Error Errno.ENOTDIR)

let list_dir node =
  match node.kind with
  | Dir entries ->
    let names = Hashtbl.fold (fun name _ acc -> name :: acc) entries [] in
    Ok (List.sort String.compare names)
  | _ -> Error Errno.ENOTDIR

let file_size node =
  match node.kind with
  | Reg fb -> fb.size
  | Symlink s -> String.length s
  | Dir _ -> 4096
  | Special _ -> 0

let stat_kind node =
  match node.kind with
  | Reg _ -> `Reg
  | Dir _ -> `Dir
  | Symlink _ -> `Reg
  | Special _ -> `Special

(* Reads up to [count] bytes at [offset] from a regular file. *)
let read_at node ~offset ~count =
  match node.kind with
  | Reg fb ->
    if offset >= fb.size then Ok ""
    else begin
      let n = min count (fb.size - offset) in
      Ok (Bytes.sub_string fb.bytes offset n)
    end
  | Dir _ -> Error Errno.EISDIR
  | Symlink _ | Special _ -> Error Errno.EINVAL

(* Writes [data] at [offset]; extends (zero-filling any gap) as needed.
   Amortized O(|data|): only the written range is touched, plus a
   capacity-doubling copy when the file outgrows its backing array. *)
let write_at node ~offset ~data ~now_ns =
  match node.kind with
  | Reg fb ->
    let dlen = String.length data in
    let new_size = max fb.size (offset + dlen) in
    filebuf_reserve fb new_size;
    if offset > fb.size then
      Bytes.fill fb.bytes fb.size (offset - fb.size) '\000';
    Bytes.blit_string data 0 fb.bytes offset dlen;
    fb.size <- new_size;
    node.mtime_ns <- now_ns;
    Ok dlen
  | Dir _ -> Error Errno.EISDIR
  | Symlink _ | Special _ -> Error Errno.EINVAL

let truncate node ~size ~now_ns =
  match node.kind with
  | Reg fb ->
    if size > fb.size then begin
      filebuf_reserve fb size;
      Bytes.fill fb.bytes fb.size (size - fb.size) '\000'
    end;
    fb.size <- size;
    node.mtime_ns <- now_ns;
    Ok ()
  | Dir _ -> Error Errno.EISDIR
  | Symlink _ | Special _ -> Error Errno.EINVAL
