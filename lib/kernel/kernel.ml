(* Kernel facade: construction, process management, tracing, and the run
   loop. This is the only module MVEE layers and workloads need besides the
   shared types in [Proc] and [Syscall]. *)

open Remon_sim
open Remon_util
module K = Kstate

type t = K.t

let create ?cost ?seed ?net_latency ?sock_buf () =
  let k = K.create ?cost ?seed ?net_latency ?sock_buf () in
  Dispatch.install k;
  (* standard filesystem fixture *)
  List.iter
    (fun d -> ignore (Vfs.mkdir_p k.K.vfs d))
    [ "/tmp"; "/etc"; "/dev"; "/proc"; "/var/www"; "/home/user" ];
  ignore (Vfs.create_file k.K.vfs "/etc/hostname");
  (match Vfs.resolve k.K.vfs "/etc/hostname" with
  | Ok node -> ignore (Vfs.write_at node ~offset:0 ~data:"remon-sim\n" ~now_ns:0)
  | Error _ -> ());
  k.K.sched.Sched.on_thread_exit <-
    (fun th ->
      let p = th.Proc.proc in
      if p.alive && Vec.for_all (fun (t : Proc.thread) -> t.tstate = Proc.Dead) p.threads
      then begin
        p.alive <- false;
        (* a fully-exited process gives back its descriptors before the
           exit waiters run: listeners unbind, peers observe EOF *)
        Dispatch.release_all_fds k p;
        let waiters = p.exit_waiters in
        p.exit_waiters <- [];
        List.iter (fun f -> f p.exit_code) waiters
      end;
      (* user-space joins poll thread liveness: wake parked waiters *)
      Sched.kick k.K.sched);
  k

let state (k : t) = k
let sched (k : t) = k.K.sched
let vfs (k : t) = k.K.vfs
let net (k : t) = k.K.net
let shm_registry (k : t) = k.K.shm
let cost (k : t) = k.K.cost
let stats (k : t) = k.K.stats
let now (k : t) = K.now k
let rng (k : t) = k.K.rng

(* ------------------------------------------------------------------ *)
(* Process management *)

let make_process (k : t) ?replica_info ?(parent = 1) ~name ~vm_seed () =
  let pid = K.fresh_pid k in
  let p =
    {
      Proc.pid;
      parent_pid = parent;
      name;
      fds = Hashtbl.create 16;
      vm = Vm.create ~rng:(Rng.make vm_seed);
      cwd = "/home/user";
      sig_actions = Hashtbl.create 8;
      sig_mask = Proc.IntSet.empty;
      pending_signals = Queue.create ();
      threads = Vec.create ();
      next_tid_rank = 0;
      alive = true;
      reaped = false;
      exit_code = 0;
      tracer = None;
      entry_table = [||];
      ipmon_registered = None;
      alarm_deadline = None;
      itimer = None;
      itimer_next = None;
      replica_info;
      exit_waiters = [];
    }
  in
  Hashtbl.replace k.K.procs pid p;
  p

let add_thread (k : t) (p : Proc.process) ~start_clock =
  let tid = K.fresh_tid k in
  let rank = p.Proc.next_tid_rank in
  p.Proc.next_tid_rank <- rank + 1;
  let th =
    {
      Proc.tid;
      proc = p;
      rank;
      clock = start_clock;
      tstate = Proc.Ready;
      syscall_index = 0;
      current_call = None;
      pending_delivery = Queue.create ();
      in_ipmon = false;
      last_result = None;
      resume_kind = 0;
      resume_k = Obj.repr 0;
      resume_r = Syscall.Ok_unit;
      resume_thunk = (fun () -> ());
      return_fn = (fun _ -> ());
      finish_fn = Proc.fn_unset;
      ipmon_finish_fn = Proc.fn_unset;
    }
  in
  Vec.push p.Proc.threads th;
  th

(* Spawns a process whose main thread runs [main]. [entries] become the
   Clone entry table (index 0 conventionally unused by main). *)
let spawn_process (k : t) ?replica_info ?(entries = [||]) ?(start_clock = Vtime.zero)
    ~name ~vm_seed (main : unit -> unit) =
  let p = make_process k ?replica_info ~name ~vm_seed () in
  p.Proc.entry_table <- entries;
  let th = add_thread k p ~start_clock in
  Sched.spawn k.K.sched th main;
  p

let on_process_exit (p : Proc.process) f =
  if p.Proc.alive then p.Proc.exit_waiters <- p.Proc.exit_waiters @ [ f ]
  else f p.Proc.exit_code

(* ------------------------------------------------------------------ *)
(* Tracing (ptrace) *)

let attach_tracer (p : Proc.process) tracer = p.Proc.tracer <- Some tracer
let detach_tracer (p : Proc.process) = p.Proc.tracer <- None

let resume (_k : t) (th : Proc.thread) (action : Proc.resume_action) =
  match th.Proc.tstate with
  | Proc.Trace_stopped { resume; _ } -> resume action
  | Proc.Dead -> ()
  | Proc.Ready | Proc.Blocked _ ->
    invalid_arg "Kernel.resume: thread is not trace-stopped"

let interrupt_blocked (k : t) th result = Dispatch.interrupt_blocked k th result
let inject_signal_now (k : t) th sg = Dispatch.inject_signal_now k th sg
let post_signal (k : t) p sg = Dispatch.post_signal k p sg
let kill_process (k : t) p ~code = Dispatch.kill_process k p ~code

(* ------------------------------------------------------------------ *)
(* Broker / IP-MON hookup *)

let set_broker (k : t) broker = k.K.broker <- Some broker
let clear_broker (k : t) = k.K.broker <- None
let set_fault_hook (k : t) f = k.K.fault_hook <- Some f
let clear_fault_hook (k : t) = k.K.fault_hook <- None

(* Group-scoped registrations: one kernel can host several replica sets (a
   fleet), each with its own broker and fault plan, resolved per thread
   through [Proc.replica_info.group_id]. *)
let register_broker (k : t) ~group_id broker =
  Hashtbl.replace k.K.brokers group_id broker

let unregister_broker (k : t) ~group_id = Hashtbl.remove k.K.brokers group_id

let register_fault_hook (k : t) ~group_id f =
  Hashtbl.replace k.K.fault_hooks group_id f

let unregister_fault_hook (k : t) ~group_id =
  Hashtbl.remove k.K.fault_hooks group_id

let prepare_ipmon (k : t) ~pid (reg : Proc.ipmon_registration) =
  Hashtbl.replace k.K.pending_ipmon pid reg

(* Raw execution used by IP-MON after token verification. *)
let execute_raw (k : t) th call ~ret = Dispatch.execute_raw k th call ~ret

(* Parks [th] until [poll] succeeds; for monitor-internal waits (IP-MON
   slaves waiting on the replication buffer). *)
let wait_until (k : t) th ~what ~(poll : unit -> 'a option) ~(on_ready : 'a -> unit) =
  Dispatch.block k th ~what ~intr:false ~poll ~on_ready
    ~complete:(fun _ -> on_ready (Option.get (poll ())))
    ()

let kick (k : t) = Sched.kick k.K.sched

let schedule (k : t) ~time f = Sched.schedule k.K.sched ~time f

(* ------------------------------------------------------------------ *)
(* Running *)

let run ?until (k : t) = Sched.run ?until k.K.sched

let blocked_report (k : t) =
  List.map
    (fun (th : Proc.thread) ->
      match th.tstate with
      | Proc.Blocked b -> Printf.sprintf "%s: %s" (Proc.thread_name th) b.what
      | _ -> Proc.thread_name th)
    (Sched.blocked_threads k.K.sched)

(* Re-enters the monitored (ptrace) path for a call IP-MON declined to
   handle (Figure 2's step 4': token destroyed, call forwarded to the CP
   monitor). *)
let monitor_path (k : t) th call ~return = Dispatch.monitor_path k th call ~return


(* ------------------------------------------------------------------ *)
(* Tracing of syscall routing (diagnostics) *)

let enable_tracing (k : t) = k.K.log_enabled <- true

let set_obs (k : t) o = k.K.obs <- Some o
let clear_obs (k : t) = k.K.obs <- None
let obs (k : t) = k.K.obs

let trace (k : t) =
  List.rev_map
    (fun (time, line) -> Printf.sprintf "[%s] %s" (Remon_sim.Vtime.to_string time) line)
    k.K.log
