(* Typed inter-host link: the one and only shard boundary.

   In a sharded (PDES) run every simulated host owns its processes,
   scheduler and event queue outright; the sole way state crosses hosts is
   a message on one of these links. A link is unidirectional, FIFO, and
   carries a fixed propagation latency: a message sent at virtual time [t]
   becomes visible to the destination host at [t + latency], never
   earlier. That latency is the conservative synchronizer's lookahead —
   the destination may safely simulate up to (but excluding) the earliest
   time a not-yet-seen message could still arrive.

   Thread safety: the queue is mutex-protected because the sending and
   receiving shards may run on different domains. Everything else about a
   link is immutable after construction. Determinism does not depend on
   domain scheduling: messages are stamped with a per-link sequence number
   at send time (sender-deterministic), and receivers drain strictly below
   a bound that the synchronizer derives from published frontiers, so the
   set and order of messages an advance observes is a pure function of
   virtual time. *)

open Remon_sim

type payload =
  | Syn of { conn : int; src_port : int; dst_port : int; window : int }
      (* open a connection to [dst_port]; [window] is how many bytes the
         initiator can buffer on the return direction before window
         updates (its receive buffer size) *)
  | Syn_ok of { conn : int; window : int }
      (* accepted; [window] is the acceptor's receive buffer size *)
  | Syn_refused of { conn : int }
      (* no listener / backlog full: the initiator observes ECONNREFUSED *)
  | Data of { conn : int; data : string }
  | Window of { conn : int; bytes : int }
      (* receiver drained [bytes]: sender may push that much more *)
  | Fin of { conn : int }
      (* sender's write side is done (close or SHUT_WR) and all data for
         [conn] has been flushed: the peer observes EOF after draining *)
  | Rst of { conn : int }
      (* data arrived for a connection whose application endpoint is
         closed: both ends tear down, writers observe EPIPE *)

type msg = {
  at : Vtime.t; (* delivery instant at the destination: send + latency *)
  seq : int; (* per-link send order; ties at equal [at] break by this *)
  payload : payload;
}

type t = {
  src : int;
  dst : int;
  latency : Vtime.t;
  mu : Mutex.t;
  q : msg Queue.t;
  mutable next_seq : int;
  (* lifetime tallies for the observability scrape *)
  mutable sent : int;
  mutable data_bytes : int;
}

let create ~src ~dst ~latency =
  if Vtime.(latency <= Vtime.zero) then
    invalid_arg "Link.create: latency must be positive (it is the lookahead)";
  {
    src;
    dst;
    latency;
    mu = Mutex.create ();
    q = Queue.create ();
    next_seq = 0;
    sent = 0;
    data_bytes = 0;
  }

let src t = t.src
let dst t = t.dst
let latency t = t.latency

(* Called by the source shard only (single-threaded per shard), while the
   destination may concurrently drain: only the queue needs the lock. *)
let send t ~now payload =
  let at = Vtime.add now t.latency in
  Mutex.lock t.mu;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Queue.push { at; seq; payload } t.q;
  t.sent <- t.sent + 1;
  (match payload with
  | Data { data; _ } -> t.data_bytes <- t.data_bytes + String.length data
  | _ -> ());
  Mutex.unlock t.mu

(* Earliest queued delivery time, [Vtime.infinity] when empty. Sends are
   stamped with the sender's nondecreasing clock, so the head is the
   minimum. *)
let peek_at t =
  Mutex.lock t.mu;
  let r = match Queue.peek_opt t.q with Some m -> m.at | None -> Vtime.infinity in
  Mutex.unlock t.mu;
  r

(* Pops every message with [at < bound], in send order. The conservative
   bound guarantees the sender can no longer produce messages below
   [bound], so the returned list is complete and final for that window. *)
let drain_before t ~bound =
  Mutex.lock t.mu;
  let rec take acc =
    match Queue.peek_opt t.q with
    | Some m when Vtime.(m.at < bound) ->
      ignore (Queue.pop t.q);
      take (m :: acc)
    | _ -> List.rev acc
  in
  let msgs = take [] in
  Mutex.unlock t.mu;
  msgs

let is_empty t =
  Mutex.lock t.mu;
  let r = Queue.is_empty t.q in
  Mutex.unlock t.mu;
  r

let stats t =
  Mutex.lock t.mu;
  let r = (t.sent, t.data_bytes) in
  Mutex.unlock t.mu;
  r
