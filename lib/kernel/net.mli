(** Simulated stream-socket network. Connections are pairs of
    unidirectional channels; data in flight is committed to the peer's
    receive queue by a kernel event scheduled one link latency after the
    send (the netem-style latency of the server scenarios).

    Both directions are bounded: a stream never holds more than its
    [rcvbuf] cap (committed plus in-flight bytes), so senders experience
    backpressure — partial writes, EAGAIN, or blocking — at the same
    boundary a Linux socket would.

    The stream type is abstract and memory-flat: seven fields (one 8-word
    block, 64 bytes) with flags and ports packed into ints and the receive
    queue allocated lazily, so a million idle connections cost tens of
    bytes each rather than a pointer-rich record apiece. *)

val default_bufcap : int
(** Default per-direction buffer cap (Linux's 212992-byte default). *)

val so_sndbuf : int
(** SOL_SOCKET option name for the send-buffer cap (Linux SO_SNDBUF = 7). *)

val so_rcvbuf : int
(** SOL_SOCKET option name for the receive-buffer cap (SO_RCVBUF = 8). *)

val min_bufcap : int
(** Floor applied to configured caps so tiny values cannot deadlock. *)

type stream
(** One endpoint of a connection. Packed representation; use the accessors
    below. *)

type listener = {
  port : int;
  mutable backlog : int;
  pending : stream Queue.t;
  mutable closed : bool;
  mutable refused : int;  (** connections refused by a full backlog *)
}

type t = {
  mutable latency : Remon_sim.Vtime.t;  (** one-way propagation delay *)
  mutable bufcap : int;  (** default snd/rcv cap for fresh streams *)
  listeners : (int, listener) Hashtbl.t;
  mutable next_sid : int;
  mutable next_ephemeral : int;
  mutable spool : stream array;  (** recycled endpoints (kernel-private) *)
  mutable spooled : int;
}

val create : ?latency:Remon_sim.Vtime.t -> ?bufcap:int -> unit -> t
val set_latency : t -> Remon_sim.Vtime.t -> unit
val set_bufcap : t -> int -> unit
val fresh_stream : t -> stream

val release_stream : t -> stream -> unit
(** Return an endpoint to the recycle pool. The caller must guarantee no
    live reference remains: no fd maps to it, no thread is parked on it,
    and no scheduled commit event captures it. Used by the gateway for its
    private endpoints (once in-flight is zero) and for pairs refused at SYN
    arrival. *)

val pooled_streams : t -> int
(** Endpoints currently waiting in the recycle pool (observability). *)

(** {1 Stream accessors} *)

val sid : stream -> int
val local_port : stream -> int
val set_local_port : stream -> int -> unit
val peer_port : stream -> int
val set_peer_port : stream -> int -> unit

val peer : stream -> stream option
(** [None] once the peer endpoint closed. *)

val rd_shut : stream -> bool
val wr_shut : stream -> bool
val shutdown_rd : stream -> unit
val shutdown_wr : stream -> unit
val connected : stream -> bool
val set_connected : stream -> unit

val is_local : stream -> bool
(** Same-host pair (socketpair / loopback): memcpy cost, ~no latency. *)

val is_remote : stream -> bool
(** Endpoint of a cross-host connection: the local pair only models the
    host's socket buffer; the real latency lives on the inter-host link
    behind the gateway. *)

val mark_local : stream -> unit
val mark_remote : stream -> unit

val in_flight : stream -> int
(** Bytes sent towards this stream but not yet committed. *)

val incoming_length : stream -> int
(** Committed, readable bytes. O(1); does not materialize the lazy queue. *)

val sndbuf : stream -> int
val rcvbuf : stream -> int

val tag : stream -> int
(** Scratch int for the owning subsystem — the cross-host gateway stores
    its connection id here ([-1] when unset), replacing a side table. *)

val set_tag : stream -> int -> unit
val listen : t -> port:int -> backlog:int -> (listener, Errno.t) result
val find_listener : t -> port:int -> listener option
val close_listener : t -> listener -> unit

val backlog_full : listener -> bool
(** True when the pending-accept queue has reached the listener backlog. *)

val try_enqueue : listener -> stream -> bool
(** Enqueue a server endpoint for accept; false (and bumps [refused]) when
    the listener is closed or its backlog is full. *)

val make_pair : t -> client_port:int -> server_port:int -> stream * stream
val ephemeral_port : t -> int

val buffered : stream -> int
(** Bytes the stream currently holds: committed plus in-flight. *)

val buffered_hwm : stream -> int
(** Highest value [buffered] ever reached — the cap invariant is
    [buffered_hwm s <= stream_cap s] at all times. *)

val stream_cap : stream -> int
val set_sndbuf : stream -> int -> unit
val set_rcvbuf : stream -> int -> unit

val send_space : stream -> int
(** Receive-buffer space left on the peer; 0 when full or peer gone. *)

val send_start : stream -> string -> (int * stream, Errno.t) result
(** Accepts at most [min (send_space) sndbuf] bytes, accounting them as
    in-flight on the peer; returns [(accepted, peer)] — the dispatcher must
    commit exactly the accepted prefix after the propagation delay.
    [accepted = 0] means the buffer is full: block or return EAGAIN. *)

val commit : stream -> string -> unit

val commit_inbound : stream -> string -> unit
(** Push bytes straight into the committed queue with no in-flight
    accounting — the cross-host gateway's entry point, where flow control
    is the link-level credit window rather than in-flight bytes. Maintains
    [buffered_hwm]. *)

val peer_gone : stream -> bool
val readable : stream -> bool
val at_eof : stream -> bool
val recv : stream -> int -> string
val close_stream : stream -> unit
