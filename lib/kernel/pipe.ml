(* Anonymous pipe: bounded FIFO with reader/writer reference counting.

   Blocking behaviour (readers waiting on an empty pipe, writers on a full
   one) is implemented by the dispatcher's park/retry mechanism; this module
   is pure state. *)

type t = {
  id : int;
  capacity : int;
  data : Bytestream.t;
  mutable readers : int; (* open read descriptors *)
  mutable writers : int; (* open write descriptors *)
}

let default_capacity = 65_536

(* Atomic: pipes are created from concurrently running simulations when the
   experiment harness fans runs out across domains. The id is only a debug
   label, so cross-run numbering does not affect simulated behaviour. *)
let counter = Atomic.make 0

let create ?(capacity = default_capacity) () =
  let id = Atomic.fetch_and_add counter 1 + 1 in
  { id; capacity; data = Bytestream.create (); readers = 1; writers = 1 }

let bytes_available t = Bytestream.length t.data

let space_available t = t.capacity - Bytestream.length t.data

let write_closed t = t.writers = 0

let read_closed t = t.readers = 0

(* Returns the number of bytes accepted (short writes when nearly full). *)
let write t data =
  let room = space_available t in
  let n = min room (String.length data) in
  if n > 0 then Bytestream.push t.data (String.sub data 0 n);
  n

let read t count = Bytestream.pull t.data count
