(* System-call dispatcher: semantics of every supported call, the ptrace
   stop machinery, IK-B broker routing, blocking, and signal delivery.

   Control flow for one syscall (mirrors Figure 2 of the paper):

     handle --(broker route)--> ipmon invoke --> execute_raw ...... finish
         \--(Route_monitor)---> entry stop --> proceed --> exit stop --> finish
         \--(Route_plain)-----> proceed ------------------------------> finish

   Every stage is CPS: a stage either completes synchronously or parks the
   thread with a retry thunk and completes later. *)

open Remon_sim
open Remon_util
module K = Kstate

let src = Logs.Src.create "remon.kernel" ~doc:"simulated kernel"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Small helpers *)

let err e = Syscall.Error e

let charge = K.charge

let proc_of (th : Proc.thread) = th.proc

(* First pending signal not blocked by the process mask. *)
let next_deliverable (p : Proc.process) =
  if Queue.is_empty p.pending_signals then None
  else begin
    let found = ref None in
    Queue.iter
      (fun sg ->
        if !found = None && not (Proc.IntSet.mem sg p.sig_mask) then
          found := Some sg)
      p.pending_signals;
    !found
  end

let remove_pending (p : Proc.process) sg =
  let keep = Queue.create () in
  let removed = ref false in
  Queue.iter
    (fun s ->
      if s = sg && not !removed then removed := true else Queue.push s keep)
    p.pending_signals;
  Queue.clear p.pending_signals;
  Queue.transfer keep p.pending_signals

let signal_action (p : Proc.process) sg =
  match Hashtbl.find_opt p.sig_actions sg with
  | Some a -> a
  | None -> Syscall.Sig_default

(* ------------------------------------------------------------------ *)
(* Readiness polling *)

let timer_fires (tf : Proc.timerfd_state) now =
  match tf.spec with
  | None -> 0
  | Some { value_ns; interval_ns } ->
    let first = Vtime.add tf.armed_at value_ns in
    if Vtime.(now < first) then 0
    else if interval_ns <= 0 then 1
    else
      1 + (Vtime.sub now first / interval_ns)

let timer_available tf now = max 0 (timer_fires tf now - tf.Proc.expirations)

let stream_eof (s : Net.stream) =
  Net.incoming_length s = 0
  && Net.in_flight s = 0
  && (Net.peer_gone s || Net.rd_shut s
     || match Net.peer s with Some p -> Net.wr_shut p | None -> true)

let poll_desc k (d : Proc.desc) : Syscall.poll_events =
  let now = K.now k in
  match d.kind with
  | Proc.Regular _ | Proc.Directory _ | Proc.Dev_null ->
    { Syscall.ev_none with pollin = true; pollout = true }
  | Proc.Proc_maps _ -> { Syscall.ev_none with pollin = true }
  | Proc.Pipe_read p ->
    {
      Syscall.ev_none with
      pollin = Pipe.bytes_available p > 0 || Pipe.write_closed p;
      pollhup = Pipe.write_closed p && Pipe.bytes_available p = 0;
    }
  | Proc.Pipe_write p ->
    {
      Syscall.ev_none with
      pollout = Pipe.space_available p > 0 && not (Pipe.read_closed p);
      pollerr = Pipe.read_closed p;
    }
  | Proc.Listener l -> { Syscall.ev_none with pollin = not (Queue.is_empty l.pending) }
  | Proc.Stream s ->
    {
      Syscall.ev_none with
      pollin = Net.incoming_length s > 0 || stream_eof s;
      pollout =
        Net.connected s
        && (not (Net.peer_gone s))
        && (not (Net.wr_shut s))
        && Net.send_space s > 0;
      pollhup = Net.peer_gone s;
    }
  | Proc.Epoll_fd _ -> Syscall.ev_none
  | Proc.Timer_fd tf -> { Syscall.ev_none with pollin = timer_available tf now > 0 }
  | Proc.Event_fd e ->
    { Syscall.ev_none with pollin = e.Proc.count > 0; pollout = true }
  | Proc.Replicated_handle _ -> Syscall.ev_none

let events_intersect (want : Syscall.poll_events) (have : Syscall.poll_events) =
  (want.pollin && have.pollin)
  || (want.pollout && have.pollout)
  || have.pollhup || have.pollerr

(* ------------------------------------------------------------------ *)
(* Blocking *)

(* Parks [th] until [poll] yields a value, a timeout fires, a signal
   arrives (when [intr]), or someone force-completes the call. Exactly one
   of [on_ready]/[complete] is eventually invoked. *)
let block k (th : Proc.thread) ~what ?timeout_ns ?(intr = true)
    ~(poll : unit -> 'a option) ~(on_ready : 'a -> unit)
    ~(complete : Syscall.result -> unit) () =
  match poll () with
  | Some v -> on_ready v
  | None ->
    let finished = ref false in
    let b = Sched.park k.K.sched th ~what ~retry:(fun () -> false) in
    let settle () =
      finished := true;
      (match b.Proc.timeout with Some h -> Event_queue.cancel h | None -> ());
      th.Proc.clock <- Vtime.max th.Proc.clock (K.now k)
    in
    let force result =
      if not !finished then begin
        settle ();
        Sched.unpark k.K.sched th;
        complete result
      end
    in
    b.Proc.interrupt <- Some force;
    b.Proc.retry <-
      (fun () ->
        if !finished then true
        else
          match th.Proc.tstate with
          | Proc.Dead ->
            finished := true;
            true
          | _ ->
            if intr && next_deliverable (proc_of th) <> None then begin
              settle ();
              complete (err Errno.EINTR);
              true
            end
            else begin
              match poll () with
              | Some v ->
                settle ();
                on_ready v;
                true
              | None -> false
            end);
    (match timeout_ns with
    | None -> ()
    | Some ns ->
      let handle =
        Sched.schedule_at k.K.sched
          ~time:(Vtime.add (K.now k) ns)
          (fun () ->
            if not !finished then begin
              match th.Proc.tstate with
              | Proc.Blocked b' when b' == b ->
                settle ();
                Sched.unpark k.K.sched th;
                complete (err Errno.ETIMEDOUT)
              | _ -> ()
            end)
      in
      b.Proc.timeout <- Some handle)

(* ------------------------------------------------------------------ *)
(* Descriptor release *)

let release_desc k (p : Proc.process) (d : Proc.desc) =
  d.refs <- d.refs - 1;
  if d.refs <= 0 then begin
    (match d.kind with
    | Proc.Pipe_read pi ->
      pi.readers <- pi.readers - 1;
      if Pipe.read_closed pi then
        (* writers blocked on a reader-less pipe get SIGPIPE/EPIPE on retry *)
        ()
    | Proc.Pipe_write pi -> pi.writers <- pi.writers - 1
    | Proc.Stream s ->
      Net.close_stream s;
      (* a cross-host endpoint: let the gateway flush and send FIN *)
      if Net.is_remote s then K.gw_poke k s
    | Proc.Listener l -> Net.close_listener k.K.net l
    | Proc.Epoll_fd _ | Proc.Timer_fd _ | Proc.Event_fd _ | Proc.Regular _
    | Proc.Directory _ | Proc.Dev_null | Proc.Proc_maps _
    | Proc.Replicated_handle _ -> ());
    (* epoll instances watching this process's fds learn on close *)
    Hashtbl.iter
      (fun _ (other : Proc.desc) ->
        match other.kind with
        | Proc.Epoll_fd _ -> () (* interest keyed by fd number; stale entries
                                    are skipped at wait time *)
        | _ -> ())
      p.fds
  end;
  Sched.kick k.K.sched

(* Process death closes every descriptor the way a real kernel does:
   listeners unbind (the port becomes reusable, connects start getting
   ECONNREFUSED) and stream peers observe EOF/EPIPE. Iteration is in fd
   order so release side effects are deterministic. *)
let release_all_fds k (p : Proc.process) =
  let descs = Hashtbl.fold (fun fd d acc -> (fd, d) :: acc) p.fds [] in
  let descs = List.sort (fun (a, _) (b, _) -> compare (a : int) b) descs in
  Hashtbl.reset p.fds;
  List.iter (fun (_, d) -> release_desc k p d) descs

(* ------------------------------------------------------------------ *)
(* Signals *)

let rec post_signal k (p : Proc.process) sg =
  if p.alive && sg > 0 then begin
    k.K.stats.signals_posted <- k.K.stats.signals_posted + 1;
    (match signal_action p sg with
    | Syscall.Sig_ignore when Sigdefs.catchable sg -> ()
    | _ -> Queue.push sg p.pending_signals);
    if sg = Sigdefs.sigkill then kill_process k p ~code:(128 + sg);
    Sched.kick k.K.sched
  end

(* Terminates every thread of [p]. Threads parked or trace-stopped simply
   never resume; their continuations are dropped. *)
and kill_process k (p : Proc.process) ~code =
  if p.alive then begin
    p.alive <- false;
    p.exit_code <- code;
    Vec.iter
      (fun (t : Proc.thread) ->
        (match t.tstate with
        | Proc.Blocked b -> (
          match b.timeout with Some h -> Event_queue.cancel h | None -> ())
        | _ -> ());
        t.tstate <- Proc.Dead;
        Sched.unpark k.K.sched t)
      p.threads;
    release_all_fds k p;
    let waiters = p.exit_waiters in
    p.exit_waiters <- [];
    List.iter (fun f -> f code) waiters;
    Sched.kick k.K.sched
  end

(* Applies the disposition of [sg] to [p], in the context of thread [th]
   which is crossing a syscall boundary. Returns [false] when the signal
   killed the process (the caller must not resume the thread). *)
let deliver_signal k (th : Proc.thread) sg =
  let p = proc_of th in
  remove_pending p sg;
  k.K.stats.signals_delivered <- k.K.stats.signals_delivered + 1;
  charge th k.K.cost.signal_delivery_ns;
  match signal_action p sg with
  | Syscall.Sig_handler _ ->
    Queue.push sg th.pending_delivery;
    true
  | Syscall.Sig_ignore -> true
  | Syscall.Sig_default -> (
    match Sigdefs.default_of sg with
    | Sigdefs.Ignore_sig -> true
    | Sigdefs.Terminate | Sigdefs.Core_dump ->
      kill_process k p ~code:(128 + sg);
      false)

(* ------------------------------------------------------------------ *)
(* Call execution *)

let encode_flags (d : Proc.desc) = if d.nonblock then 0x800 else 0

(* Reads [count] bytes from a descriptor; blocks according to [d.nonblock]
   unless the caller is the kernel itself. *)
let rec do_read k (th : Proc.thread) (d : Proc.desc) ~count ~(ret : Syscall.result -> unit) =
  let p = proc_of th in
  let data_done s =
    charge th (Cost_model.local_copy_ns k.K.cost ~bytes:(String.length s));
    ret (Syscall.Ok_data s)
  in
  if not d.can_read then ret (err Errno.EBADF)
  else
    match d.kind with
    | Proc.Regular node -> (
      match Vfs.read_at node ~offset:d.offset ~count with
      | Ok s ->
        d.offset <- d.offset + String.length s;
        data_done s
      | Error e -> ret (err e))
    | Proc.Directory _ -> ret (err Errno.EISDIR)
    | Proc.Dev_null -> data_done ""
    | Proc.Proc_maps pm ->
      let size = String.length pm.content in
      let n = if d.offset >= size then 0 else min count (size - d.offset) in
      let s = String.sub pm.content d.offset n in
      d.offset <- d.offset + n;
      data_done s
    | Proc.Pipe_read pi ->
      let attempt () =
        if Pipe.bytes_available pi > 0 then begin
          Sched.kick k.K.sched;
          Some (Pipe.read pi count)
        end
        else if Pipe.write_closed pi then Some ""
        else None
      in
      if d.nonblock then (
        match attempt () with
        | Some s -> data_done s
        | None -> ret (err Errno.EAGAIN))
      else
        block k th ~what:"read(pipe)" ~poll:attempt ~on_ready:data_done
          ~complete:ret ()
    | Proc.Pipe_write _ -> ret (err Errno.EBADF)
    | Proc.Stream s ->
      let attempt () =
        if Net.incoming_length s > 0 then begin
          let data = Net.recv s count in
          (* cross-host streams return the freed space as link credit *)
          if Net.is_remote s then K.gw_drained k s (String.length data);
          (* draining frees receive-buffer space: wake blocked senders *)
          Sched.kick k.K.sched;
          Some data
        end
        else if stream_eof s then Some ""
        else None
      in
      if d.nonblock then (
        match attempt () with
        | Some data -> data_done data
        | None -> ret (err Errno.EAGAIN))
      else
        block k th ~what:"read(socket)" ~poll:attempt ~on_ready:data_done
          ~complete:ret ()
    | Proc.Timer_fd tf ->
      let attempt () =
        let avail = timer_available tf (K.now k) in
        if avail > 0 then begin
          tf.expirations <- tf.expirations + avail;
          Some (Syscall.Ok_int64 (Int64.of_int avail))
        end
        else None
      in
      if d.nonblock then (
        match attempt () with
        | Some r -> ret r
        | None -> ret (err Errno.EAGAIN))
      else
        block k th ~what:"read(timerfd)" ~poll:attempt ~on_ready:ret
          ~complete:ret ()
    | Proc.Event_fd e ->
      (* eventfd semantics: read returns the counter and resets it,
         blocking while it is zero *)
      let attempt () =
        if e.Proc.count > 0 then begin
          let v = e.Proc.count in
          e.Proc.count <- 0;
          Sched.kick k.K.sched;
          Some (Syscall.Ok_int64 (Int64.of_int v))
        end
        else None
      in
      if d.nonblock then (
        match attempt () with
        | Some r -> ret r
        | None -> ret (err Errno.EAGAIN))
      else
        block k th ~what:"read(eventfd)" ~poll:attempt ~on_ready:ret
          ~complete:ret ()
    | Proc.Listener _ | Proc.Epoll_fd _ -> ret (err Errno.EINVAL)
    | Proc.Replicated_handle _ ->
      (* A slave replica's stub descriptor reached the kernel: under a
         correctly-functioning MVEE this never happens, because slave I/O
         is aborted and satisfied from replicated results. *)
      ignore p;
      ret (err Errno.EREMOTEIO)

and do_write k (th : Proc.thread) (d : Proc.desc) ~data ~(ret : Syscall.result -> unit) =
  let p = proc_of th in
  let len = String.length data in
  charge th (Cost_model.local_copy_ns k.K.cost ~bytes:len);
  if not d.can_write then ret (err Errno.EBADF)
  else
    match d.kind with
    | Proc.Regular node ->
      let offset = if d.append then Vfs.file_size node else d.offset in
      (match Vfs.write_at node ~offset ~data ~now_ns:(K.now k) with
      | Ok n ->
        d.offset <- offset + n;
        Sched.kick k.K.sched;
        ret (Syscall.Ok_int n)
      | Error e -> ret (err e))
    | Proc.Dev_null -> ret (Syscall.Ok_int len)
    | Proc.Pipe_write pi ->
      if Pipe.read_closed pi then begin
        post_signal k p Sigdefs.sigpipe;
        ret (err Errno.EPIPE)
      end
      else begin
        let attempt () =
          if Pipe.read_closed pi then Some (err Errno.EPIPE)
          else
            let n = Pipe.write pi data in
            if n > 0 then begin
              Sched.kick k.K.sched;
              Some (Syscall.Ok_int n)
            end
            else None
        in
        if d.nonblock then (
          match attempt () with
          | Some r -> ret r
          | None -> ret (err Errno.EAGAIN))
        else
          block k th ~what:"write(pipe)" ~poll:attempt ~on_ready:ret
            ~complete:ret ()
      end
    | Proc.Stream s ->
      (* Bounded socket buffers: each send accepts at most the peer's free
         receive space. A blocking sender parks until the peer drains; a
         nonblocking one sees a partial write or EAGAIN. *)
      let deliver chunk peer =
        let bytes = String.length chunk in
        (* local pairs (socketpair/loopback) skip the NIC: memcpy only.
           Cross-host endpoints pay the NIC/wire cost here, but the hop to
           the local gateway is near-free: the propagation delay lives on
           the inter-host link behind it. *)
        if Net.is_remote s || not (Net.is_local s) then
          charge th (Cost_model.wire_ns k.K.cost ~bytes)
        else charge th (Cost_model.local_copy_ns k.K.cost ~bytes);
        let latency =
          if Net.is_local s then Vtime.us 2 else k.K.net.Net.latency
        in
        let arrival = Vtime.add (Vtime.max th.clock (K.now k)) latency in
        Sched.schedule k.K.sched ~time:arrival (fun () ->
            Net.commit peer chunk;
            (* the peer of a cross-host app endpoint is gateway-held *)
            if Net.is_remote peer then K.gw_poke k peer;
            Sched.kick k.K.sched)
      in
      (* Everything before [offset] has been accepted already, so an error
         or full buffer past that point reports a partial write. *)
      let rec push offset =
        if offset >= len then ret (Syscall.Ok_int len)
        else
          match Net.send_start s (String.sub data offset (len - offset)) with
          | Error e ->
            if offset > 0 then ret (Syscall.Ok_int offset)
            else begin
              if e = Errno.EPIPE then post_signal k p Sigdefs.sigpipe;
              ret (err e)
            end
          | Ok (0, _) ->
            if d.nonblock then
              if offset > 0 then ret (Syscall.Ok_int offset)
              else ret (err Errno.EAGAIN)
            else
              block k th ~what:"write(socket)"
                ~poll:(fun () ->
                  if Net.peer_gone s || Net.wr_shut s then Some ()
                  else if Net.send_space s > 0 then Some ()
                  else None)
                ~on_ready:(fun () -> push offset)
                ~complete:ret ()
          | Ok (n, peer) ->
            deliver (String.sub data offset n) peer;
            push (offset + n)
      in
      push 0
    | Proc.Event_fd e ->
      (* eventfd write adds the encoded value; we use the payload length *)
      e.Proc.count <- e.Proc.count + len;
      Sched.kick k.K.sched;
      ret (Syscall.Ok_int len)
    | Proc.Pipe_read _ | Proc.Listener _ | Proc.Epoll_fd _ | Proc.Timer_fd _
    | Proc.Directory _ | Proc.Proc_maps _ ->
      ret (err Errno.EBADF)
    | Proc.Replicated_handle _ -> ret (err Errno.EREMOTEIO)

(* Builds the stat result for a node-backed or anonymous descriptor. *)
and stat_of_node (node : Vfs.node) =
  Syscall.Ok_stat
    {
      Syscall.st_ino = node.ino;
      st_size = Vfs.file_size node;
      st_kind = Vfs.stat_kind node;
      st_mtime_ns = node.mtime_ns;
    }

and stat_of_desc (d : Proc.desc) =
  match d.kind with
  | Proc.Regular node | Proc.Directory node -> stat_of_node node
  | Proc.Pipe_read _ | Proc.Pipe_write _ ->
    Syscall.Ok_stat { st_ino = 0; st_size = 0; st_kind = `Fifo; st_mtime_ns = 0 }
  | Proc.Listener _ | Proc.Stream _ ->
    Syscall.Ok_stat { st_ino = 0; st_size = 0; st_kind = `Sock; st_mtime_ns = 0 }
  | Proc.Epoll_fd _ | Proc.Timer_fd _ | Proc.Event_fd _ | Proc.Dev_null
  | Proc.Proc_maps _ | Proc.Replicated_handle _ ->
    Syscall.Ok_stat
      { st_ino = 0; st_size = 0; st_kind = `Special; st_mtime_ns = 0 }

(* ------------------------------------------------------------------ *)
(* Thread termination *)

(* Ends the calling thread. The thread's continuation is never resumed, so
   this function must be the last thing the dispatcher does for it. *)
let exit_current k (th : Proc.thread) ~code ~group =
  let p = proc_of th in
  let die () =
    if group then begin
      p.exit_code <- code;
      Vec.iter
        (fun (t : Proc.thread) ->
          if t != th then begin
            (match t.tstate with
            | Proc.Blocked b -> (
              match b.timeout with Some h -> Event_queue.cancel h | None -> ())
            | _ -> ());
            t.tstate <- Proc.Dead;
            Sched.unpark k.K.sched t;
            k.K.sched.Sched.on_thread_exit t
          end)
        p.threads
    end
    else if Vec.for_all (fun (t : Proc.thread) -> t == th || t.tstate = Proc.Dead) p.threads
    then p.exit_code <- code;
    th.tstate <- Proc.Dead;
    Sched.unpark k.K.sched th;
    k.K.sched.Sched.on_thread_exit th
  in
  match p.tracer with
  | Some tracer ->
    k.K.stats.ptrace_stops <- k.K.stats.ptrace_stops + 1;
    th.tstate <-
      Proc.Trace_stopped
        { reason = Proc.Exit_stop code; resume = (fun _ -> die ()) };
    tracer.on_stop th (Proc.Exit_stop code)
  | None -> die ()

(* ------------------------------------------------------------------ *)
(* The big call-semantics match *)

let exec k (th : Proc.thread) (call : Syscall.call) ~(ret : Syscall.result -> unit) =
  let p = proc_of th in
  let now () = K.now k in
  let with_fd fd f =
    match Proc.desc_of_fd p fd with
    | None -> ret (err Errno.EBADF)
    | Some d -> f d
  in
  let install_fd desc =
    let fd = Proc.alloc_fd p in
    Hashtbl.replace p.fds fd desc;
    fd
  in
  let wall_ns () = Int64.add k.K.epoch_offset_ns (Int64.of_int (now ())) in
  let gather_poll fds =
    List.filter_map
      (fun (fd, want) ->
        match Proc.desc_of_fd p fd with
        | None -> Some (fd, { Syscall.ev_none with pollerr = true })
        | Some d ->
          let have = poll_desc k d in
          if events_intersect want have then Some (fd, have) else None)
      fds
  in
  match call with
  (* ---- identity / time ---- *)
  | Syscall.Gettimeofday | Syscall.Time -> ret (Syscall.Ok_int64 (wall_ns ()))
  | Syscall.Clock_gettime `Realtime -> ret (Syscall.Ok_int64 (wall_ns ()))
  | Syscall.Clock_gettime `Monotonic -> ret (Syscall.Ok_int64 (Int64.of_int (now ())))
  | Syscall.Getpid -> ret (Syscall.Ok_int p.pid)
  | Syscall.Gettid -> ret (Syscall.Ok_int th.tid)
  | Syscall.Getpgrp -> ret (Syscall.Ok_int p.pid)
  | Syscall.Getppid -> ret (Syscall.Ok_int p.parent_pid)
  | Syscall.Getgid | Syscall.Getegid -> ret (Syscall.Ok_int 1000)
  | Syscall.Getuid | Syscall.Geteuid -> ret (Syscall.Ok_int 1000)
  | Syscall.Getcwd -> ret (Syscall.Ok_str p.cwd)
  | Syscall.Getpriority -> ret (Syscall.Ok_int 20)
  | Syscall.Getrusage -> ret (Syscall.Ok_int64 (Int64.of_int th.clock))
  | Syscall.Times -> ret (Syscall.Ok_int64 (Int64.of_int (now ())))
  | Syscall.Capget -> ret (Syscall.Ok_int 0)
  | Syscall.Getitimer -> (
    match p.itimer with
    | Some spec -> ret (Syscall.Ok_itimer spec)
    | None -> ret (Syscall.Ok_itimer { interval_ns = 0; value_ns = 0 }))
  | Syscall.Sysinfo -> ret (Syscall.Ok_int64 (Int64.of_int (now ())))
  | Syscall.Uname -> ret (Syscall.Ok_str "Linux remon-sim 3.13.11 x86_64")
  | Syscall.Sched_yield -> ret (Syscall.Ok_int 0)
  | Syscall.Nanosleep ns ->
    block k th ~what:"nanosleep" ~timeout_ns:ns
      ~poll:(fun () -> None)
      ~on_ready:(fun (r : Syscall.result) -> ret r)
      ~complete:(fun r ->
        if r = err Errno.ETIMEDOUT then ret Syscall.Ok_unit else ret r)
      ()
  (* ---- futex ---- *)
  | Syscall.Futex (Syscall.Futex_wait { addr; expected; timeout_ns }) ->
    k.K.stats.futex_waits <- k.K.stats.futex_waits + 1;
    charge th k.K.cost.futex_wait_ns;
    if Vm.read_word p.vm addr <> expected then ret (err Errno.EAGAIN)
    else begin
      let key = Vm.futex_key p.vm ~space_id:p.pid addr in
      let q = K.futex_queue k key in
      let w = { K.ft = th; woken = false; cancelled = false } in
      Queue.push w q;
      block k th ~what:"futex_wait" ?timeout_ns
        ~poll:(fun () -> if w.K.woken then Some () else None)
        ~on_ready:(fun () -> ret (Syscall.Ok_int 0))
        ~complete:(fun r ->
          w.K.cancelled <- true;
          ret r)
        ()
    end
  | Syscall.Futex (Syscall.Futex_wake { addr; count }) ->
    k.K.stats.futex_wakes <- k.K.stats.futex_wakes + 1;
    charge th k.K.cost.futex_wake_ns;
    let key = Vm.futex_key p.vm ~space_id:p.pid addr in
    let q = K.futex_queue k key in
    let n = ref 0 in
    while !n < count && not (Queue.is_empty q) do
      let w = Queue.pop q in
      if (not w.K.cancelled) && not w.K.woken then begin
        w.K.woken <- true;
        incr n
      end
    done;
    Sched.kick k.K.sched;
    ret (Syscall.Ok_int !n)
  (* ---- fd control ---- *)
  | Syscall.Ioctl (fd, op) ->
    with_fd fd (fun d ->
        match op with
        | Syscall.Fionread -> (
          match d.kind with
          | Proc.Pipe_read pi -> ret (Syscall.Ok_int (Pipe.bytes_available pi))
          | Proc.Stream s -> ret (Syscall.Ok_int (Net.incoming_length s))
          | _ -> ret (Syscall.Ok_int 0))
        | Syscall.Fionbio v ->
          d.nonblock <- v;
          ret (Syscall.Ok_int 0)
        | Syscall.Tiocgwinsz -> ret (Syscall.Ok_int ((24 lsl 16) lor 80)))
  | Syscall.Fcntl (fd, op) ->
    with_fd fd (fun d ->
        match op with
        | Syscall.F_getfl -> ret (Syscall.Ok_int (encode_flags d))
        | Syscall.F_setfl { nonblock } ->
          d.nonblock <- nonblock;
          ret (Syscall.Ok_int 0)
        | Syscall.F_dupfd _ ->
          d.refs <- d.refs + 1;
          ret (Syscall.Ok_int (install_fd d)))
  (* ---- filesystem queries ---- *)
  | Syscall.Access path | Syscall.Faccessat path ->
    if Vfs.exists k.K.vfs path then ret (Syscall.Ok_int 0)
    else ret (err Errno.ENOENT)
  | Syscall.Lseek (fd, offset, whence) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Regular node ->
          let base =
            match whence with
            | Syscall.Seek_set -> 0
            | Syscall.Seek_cur -> d.offset
            | Syscall.Seek_end -> Vfs.file_size node
          in
          let pos = base + offset in
          if pos < 0 then ret (err Errno.EINVAL)
          else begin
            d.offset <- pos;
            ret (Syscall.Ok_int pos)
          end
        | Proc.Proc_maps pm ->
          let base =
            match whence with
            | Syscall.Seek_set -> 0
            | Syscall.Seek_cur -> d.offset
            | Syscall.Seek_end -> String.length pm.content
          in
          d.offset <- max 0 (base + offset);
          ret (Syscall.Ok_int d.offset)
        | Proc.Pipe_read _ | Proc.Pipe_write _ | Proc.Stream _
        | Proc.Listener _ ->
          ret (err Errno.ESPIPE)
        | _ -> ret (err Errno.EINVAL))
  | Syscall.Stat path | Syscall.Fstatat path -> (
    match Vfs.resolve k.K.vfs path with
    | Ok node -> ret (stat_of_node node)
    | Error e -> ret (err e))
  | Syscall.Lstat path -> (
    match Vfs.resolve_nofollow k.K.vfs path with
    | Ok node -> ret (stat_of_node node)
    | Error e -> ret (err e))
  | Syscall.Fstat fd -> with_fd fd (fun d -> ret (stat_of_desc d))
  | Syscall.Getdents fd | Syscall.Getdents64 fd ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Directory node -> (
          match Vfs.list_dir node with
          | Ok names ->
            if d.offset > 0 then ret (Syscall.Ok_dents [])
            else begin
              d.offset <- 1;
              ret (Syscall.Ok_dents names)
            end
          | Error e -> ret (err e))
        | _ -> ret (err Errno.ENOTDIR))
  | Syscall.Readlink path | Syscall.Readlinkat path -> (
    match Vfs.resolve_nofollow k.K.vfs path with
    | Ok { kind = Vfs.Symlink target; _ } -> ret (Syscall.Ok_str target)
    | Ok _ -> ret (err Errno.EINVAL)
    | Error e -> ret (err e))
  | Syscall.Getxattr (path, name) | Syscall.Lgetxattr (path, name) -> (
    match Vfs.resolve k.K.vfs path with
    | Ok node -> (
      match List.assoc_opt name node.xattrs with
      | Some v -> ret (Syscall.Ok_str v)
      | None -> ret (err Errno.ENOENT))
    | Error e -> ret (err e))
  | Syscall.Fgetxattr (fd, name) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Regular node | Proc.Directory node -> (
          match List.assoc_opt name node.xattrs with
          | Some v -> ret (Syscall.Ok_str v)
          | None -> ret (err Errno.ENOENT))
        | _ -> ret (err Errno.EBADF))
  (* ---- timers ---- *)
  | Syscall.Alarm seconds ->
    let prev =
      match p.alarm_deadline with
      | Some d when Vtime.(d > now ()) ->
        Vtime.sub d (now ()) / 1_000_000_000
      | _ -> 0
    in
    if seconds = 0 then begin
      p.alarm_deadline <- None;
      ret (Syscall.Ok_int prev)
    end
    else begin
      let deadline = Vtime.add (now ()) (Vtime.s seconds) in
      p.alarm_deadline <- Some deadline;
      Sched.schedule k.K.sched ~time:deadline (fun () ->
          match p.alarm_deadline with
          | Some d when Vtime.compare d deadline = 0 ->
            p.alarm_deadline <- None;
            post_signal k p Sigdefs.sigalrm
          | _ -> ());
      ret (Syscall.Ok_int prev)
    end
  | Syscall.Setitimer spec ->
    let armed = spec.value_ns > 0 in
    p.itimer <- (if armed then Some spec else None);
    if armed then begin
      let first = Vtime.add (now ()) spec.value_ns in
      p.itimer_next <- Some first;
      let rec fire deadline =
        Sched.schedule k.K.sched ~time:deadline (fun () ->
            match p.itimer_next with
            | Some d when Vtime.compare d deadline = 0 && p.alive ->
              post_signal k p Sigdefs.sigalrm;
              if spec.interval_ns > 0 then begin
                let next = Vtime.add deadline spec.interval_ns in
                p.itimer_next <- Some next;
                fire next
              end
              else p.itimer_next <- None
            | _ -> ())
      in
      fire first
    end
    else p.itimer_next <- None;
    ret (Syscall.Ok_int 0)
  | Syscall.Timerfd_create ->
    let tf = { Proc.spec = None; armed_at = now (); expirations = 0 } in
    ret (Syscall.Ok_int (install_fd (Proc.make_desc (Proc.Timer_fd tf))))
  | Syscall.Timerfd_gettime fd ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Timer_fd tf -> (
          match tf.spec with
          | Some spec -> ret (Syscall.Ok_itimer spec)
          | None -> ret (Syscall.Ok_itimer { interval_ns = 0; value_ns = 0 }))
        | _ -> ret (err Errno.EINVAL))
  | Syscall.Timerfd_settime (fd, spec) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Timer_fd tf ->
          let armed = spec.value_ns > 0 in
          tf.spec <- (if armed then Some spec else None);
          tf.armed_at <- now ();
          tf.expirations <- 0;
          if armed then begin
            (* chain kicks at each expiration so poll/epoll waiters wake *)
            let rec chain t =
              Sched.schedule k.K.sched ~time:t (fun () ->
                  match tf.spec with
                  | Some s when p.alive ->
                    Sched.kick k.K.sched;
                    if s.interval_ns > 0 then
                      chain (Vtime.add t s.interval_ns)
                  | _ -> ())
            in
            chain (Vtime.add (now ()) spec.value_ns)
          end;
          ret (Syscall.Ok_int 0)
        | _ -> ret (err Errno.EINVAL))
  | Syscall.Madvise _ | Syscall.Fadvise64 _ -> ret (Syscall.Ok_int 0)
  (* ---- read family ---- *)
  | Syscall.Read (fd, count) | Syscall.Recvfrom (fd, count)
  | Syscall.Recvmsg (fd, count) ->
    with_fd fd (fun d -> do_read k th d ~count ~ret)
  | Syscall.Recvmmsg (fd, msgs, each) ->
    with_fd fd (fun d -> do_read k th d ~count:(msgs * each) ~ret)
  | Syscall.Readv (fd, lens) ->
    with_fd fd (fun d -> do_read k th d ~count:(List.fold_left ( + ) 0 lens) ~ret)
  | Syscall.Pread64 (fd, count, offset) | Syscall.Preadv (fd, [ count ], offset)
    ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Regular node -> (
          match Vfs.read_at node ~offset ~count with
          | Ok s -> ret (Syscall.Ok_data s)
          | Error e -> ret (err e))
        | _ -> ret (err Errno.ESPIPE))
  | Syscall.Preadv (fd, lens, offset) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Regular node -> (
          let count = List.fold_left ( + ) 0 lens in
          match Vfs.read_at node ~offset ~count with
          | Ok s -> ret (Syscall.Ok_data s)
          | Error e -> ret (err e))
        | _ -> ret (err Errno.ESPIPE))
  | Syscall.Select { readfds; writefds; timeout_ns }
  | Syscall.Pselect6 { readfds; writefds; timeout_ns } ->
    let want_read = List.map (fun fd -> (fd, Syscall.ev_in)) readfds in
    let want_write = List.map (fun fd -> (fd, Syscall.ev_out)) writefds in
    let fds = want_read @ want_write in
    let attempt () =
      match gather_poll fds with [] -> None | ready -> Some ready
    in
    if timeout_ns = Some 0 then (
      match attempt () with
      | Some ready -> ret (Syscall.Ok_poll ready)
      | None -> ret (Syscall.Ok_poll []))
    else
      block k th ~what:"select" ?timeout_ns ~poll:attempt
        ~on_ready:(fun ready -> ret (Syscall.Ok_poll ready))
        ~complete:(fun r ->
          if r = err Errno.ETIMEDOUT then ret (Syscall.Ok_poll []) else ret r)
        ()
  | Syscall.Poll { fds; timeout_ns } | Syscall.Ppoll { fds; timeout_ns } ->
    let attempt () =
      match gather_poll fds with [] -> None | ready -> Some ready
    in
    if timeout_ns = Some 0 then (
      match attempt () with
      | Some ready -> ret (Syscall.Ok_poll ready)
      | None -> ret (Syscall.Ok_poll []))
    else
      block k th ~what:"poll" ?timeout_ns ~poll:attempt
        ~on_ready:(fun ready -> ret (Syscall.Ok_poll ready))
        ~complete:(fun r ->
          if r = err Errno.ETIMEDOUT then ret (Syscall.Ok_poll []) else ret r)
        ()
  (* ---- sync family ---- *)
  | Syscall.Sync | Syscall.Syncfs _ | Syscall.Fsync _ | Syscall.Fdatasync _ ->
    ret (Syscall.Ok_int 0)
  (* ---- write family ---- *)
  | Syscall.Write (fd, data) | Syscall.Sendto (fd, data)
  | Syscall.Sendmsg (fd, data) ->
    with_fd fd (fun d -> do_write k th d ~data ~ret)
  | Syscall.Writev (fd, chunks) | Syscall.Sendmmsg (fd, chunks) ->
    with_fd fd (fun d -> do_write k th d ~data:(String.concat "" chunks) ~ret)
  | Syscall.Pwrite64 (fd, data, offset) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Regular node -> (
          match Vfs.write_at node ~offset ~data ~now_ns:(now ()) with
          | Ok n -> ret (Syscall.Ok_int n)
          | Error e -> ret (err e))
        | _ -> ret (err Errno.ESPIPE))
  | Syscall.Pwritev (fd, chunks, offset) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Regular node -> (
          let data = String.concat "" chunks in
          match Vfs.write_at node ~offset ~data ~now_ns:(now ()) with
          | Ok n -> ret (Syscall.Ok_int n)
          | Error e -> ret (err e))
        | _ -> ret (err Errno.ESPIPE))
  | Syscall.Sendfile { out_fd; in_fd; count } ->
    with_fd in_fd (fun din ->
        match din.kind with
        | Proc.Regular node -> (
          match Vfs.read_at node ~offset:din.offset ~count with
          | Ok data ->
            din.offset <- din.offset + String.length data;
            with_fd out_fd (fun dout -> do_write k th dout ~data ~ret)
          | Error e -> ret (err e))
        | _ -> ret (err Errno.EINVAL))
  (* ---- epoll ---- *)
  | Syscall.Epoll_create ->
    ret (Syscall.Ok_int (install_fd (Proc.make_desc (Proc.Epoll_fd (Epoll.create ())))))
  | Syscall.Epoll_ctl { epfd; op; fd; events; user_data } ->
    with_fd epfd (fun d ->
        match d.kind with
        | Proc.Epoll_fd ep ->
          if not (Hashtbl.mem p.fds fd) then ret (err Errno.EBADF)
          else (
            match Epoll.ctl ep ~op ~fd ~events ~user_data with
            | Ok () -> ret (Syscall.Ok_int 0)
            | Error e -> ret (err e))
        | _ -> ret (err Errno.EINVAL))
  | Syscall.Epoll_wait { epfd; max_events; timeout_ns } ->
    with_fd epfd (fun d ->
        match d.kind with
        | Proc.Epoll_fd ep ->
          let attempt () =
            let ready =
              List.filter_map
                (fun (fd, (entry : Epoll.entry)) ->
                  match Proc.desc_of_fd p fd with
                  | None -> None (* stale interest entry: fd closed *)
                  | Some watched ->
                    let have = poll_desc k watched in
                    if events_intersect entry.events have then
                      Some (entry.user_data, have)
                    else None)
                (Epoll.interest_list ep)
            in
            match ready with
            | [] -> None
            | _ ->
              let rec take n = function
                | [] -> []
                | _ when n = 0 -> []
                | x :: tl -> x :: take (n - 1) tl
              in
              Some (take max_events ready)
          in
          if timeout_ns = Some 0 then (
            match attempt () with
            | Some ready -> ret (Syscall.Ok_epoll ready)
            | None -> ret (Syscall.Ok_epoll []))
          else
            block k th ~what:"epoll_wait" ?timeout_ns ~poll:attempt
              ~on_ready:(fun ready -> ret (Syscall.Ok_epoll ready))
              ~complete:(fun r ->
                if r = err Errno.ETIMEDOUT then ret (Syscall.Ok_epoll [])
                else ret r)
              ()
        | _ -> ret (err Errno.EINVAL))
  (* ---- sockets ---- *)
  | Syscall.Socket (_, _) ->
    let s = Net.fresh_stream k.K.net in
    ret (Syscall.Ok_int (install_fd (Proc.make_desc (Proc.Stream s))))
  | Syscall.Socketpair (_, _) ->
    let a, b = Net.make_pair k.K.net ~client_port:0 ~server_port:0 in
    Net.set_connected a;
    Net.set_connected b;
    Net.mark_local a;
    Net.mark_local b;
    let fd1 = install_fd (Proc.make_desc (Proc.Stream a)) in
    let fd2 = install_fd (Proc.make_desc (Proc.Stream b)) in
    ret (Syscall.Ok_pair (fd1, fd2))
  | Syscall.Bind (fd, port) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Stream s ->
          Net.set_local_port s port;
          ret (Syscall.Ok_int 0)
        | _ -> ret (err Errno.ENOTSOCK))
  | Syscall.Listen (fd, backlog) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Stream s -> (
          match Net.listen k.K.net ~port:(Net.local_port s) ~backlog with
          | Ok l ->
            d.kind <- Proc.Listener l;
            ret (Syscall.Ok_int 0)
          | Error e -> ret (err e))
        | Proc.Listener _ -> ret (Syscall.Ok_int 0)
        | _ -> ret (err Errno.ENOTSOCK))
  | Syscall.Accept fd | Syscall.Accept4 { fd; _ } ->
    let nonblock_result =
      match call with
      | Syscall.Accept4 { nonblock; _ } -> nonblock
      | _ -> false
    in
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Listener l ->
          let attempt () =
            if Queue.is_empty l.pending then None else Some (Queue.pop l.pending)
          in
          let deliver (s : Net.stream) =
            Net.set_connected s;
            let desc = Proc.make_desc ~nonblock:nonblock_result (Proc.Stream s) in
            let conn_fd = install_fd desc in
            Sched.kick k.K.sched;
            ret (Syscall.Ok_accept { conn_fd; peer_port = Net.peer_port s })
          in
          if d.nonblock then (
            match attempt () with
            | Some s -> deliver s
            | None -> ret (err Errno.EAGAIN))
          else
            block k th ~what:"accept" ~poll:attempt ~on_ready:deliver
              ~complete:ret ()
        | _ -> ret (err Errno.EINVAL))
  | Syscall.Connect (fd, port) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Stream placeholder -> (
          match Net.find_listener k.K.net ~port with
          | None -> (
            match k.K.gateway with
            | Some g when g.K.gw_has_port port ->
              (* port statically routed to another host: the gateway runs
                 the SYN handshake over the inter-host link, and whether a
                 listener exists there is resolved at SYN-arrival virtual
                 time (deterministically, like the local backlog check) *)
              let local_port =
                if Net.local_port placeholder <> 0 then
                  Net.local_port placeholder
                else Net.ephemeral_port k.K.net
              in
              let client, progress = g.K.gw_connect ~local_port ~port in
              d.kind <- Proc.Stream client;
              if d.nonblock then ret (err Errno.EINPROGRESS)
              else
                block k th ~what:"connect(remote)"
                  ~poll:(fun () ->
                    match !progress with
                    | K.Gw_connecting -> None
                    | (K.Gw_connected | K.Gw_refused) as st -> Some st)
                  ~on_ready:(fun st ->
                    match st with
                    | K.Gw_connected -> ret (Syscall.Ok_int 0)
                    | _ -> ret (err Errno.ECONNREFUSED))
                  ~complete:ret ()
            | _ ->
              (* RST arrives one round trip later *)
              block k th ~what:"connect(refused)"
                ~timeout_ns:(Vtime.scale k.K.net.Net.latency 2.)
                ~poll:(fun () -> None)
                ~on_ready:(fun (r : Syscall.result) -> ret r)
                ~complete:(fun r ->
                  if r = err Errno.ETIMEDOUT then ret (err Errno.ECONNREFUSED)
                  else ret r)
                ())
          | Some l ->
            let client_port =
              if Net.local_port placeholder <> 0 then
                Net.local_port placeholder
              else Net.ephemeral_port k.K.net
            in
            let client, server =
              Net.make_pair k.K.net ~client_port ~server_port:port
            in
            Net.set_connected client;
            d.kind <- Proc.Stream client;
            let latency = k.K.net.Net.latency in
            (* Backlog enforcement happens at SYN arrival: a full pending
               queue refuses the connection, which the client observes one
               round trip after connect (ECONNREFUSED when blocking,
               POLLHUP on the in-progress socket when nonblocking). *)
            let refused = ref false in
            Sched.schedule k.K.sched
              ~time:(Vtime.add (now ()) latency)
              (fun () ->
                if not (Net.try_enqueue l server) then begin
                  refused := true;
                  Net.close_stream server;
                  Net.close_stream client
                end;
                Sched.kick k.K.sched);
            if d.nonblock then ret (err Errno.EINPROGRESS)
            else
              block k th ~what:"connect"
                ~timeout_ns:(Vtime.scale latency 2.)
                ~poll:(fun () -> None)
                ~on_ready:(fun (r : Syscall.result) -> ret r)
                ~complete:(fun r ->
                  if r = err Errno.ETIMEDOUT then
                    if !refused then ret (err Errno.ECONNREFUSED)
                    else ret (Syscall.Ok_int 0)
                  else ret r)
                ())
        | _ -> ret (err Errno.ENOTSOCK))
  | Syscall.Getsockname fd ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Stream s -> ret (Syscall.Ok_int (Net.local_port s))
        | Proc.Listener l -> ret (Syscall.Ok_int l.port)
        | _ -> ret (err Errno.ENOTSOCK))
  | Syscall.Getpeername fd ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Stream s ->
          if Net.connected s then ret (Syscall.Ok_int (Net.peer_port s))
          else ret (err Errno.ENOTCONN)
        | _ -> ret (err Errno.ENOTSOCK))
  | Syscall.Getsockopt (fd, opt) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Stream s ->
          if opt = Net.so_sndbuf then ret (Syscall.Ok_int (Net.sndbuf s))
          else if opt = Net.so_rcvbuf then ret (Syscall.Ok_int (Net.rcvbuf s))
          else ret (Syscall.Ok_int 0)
        | Proc.Listener _ -> ret (Syscall.Ok_int 0)
        | _ -> ret (err Errno.ENOTSOCK))
  | Syscall.Setsockopt (fd, opt, value) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Stream s ->
          if opt = Net.so_sndbuf then Net.set_sndbuf s value
          else if opt = Net.so_rcvbuf then begin
            Net.set_rcvbuf s value;
            (* a larger buffer may unblock a parked sender *)
            Sched.kick k.K.sched
          end;
          ret (Syscall.Ok_int 0)
        | Proc.Listener _ -> ret (Syscall.Ok_int 0)
        | _ -> ret (err Errno.ENOTSOCK))
  | Syscall.Shutdown (fd, how) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Stream s ->
          (match how with
          | Syscall.Shut_rd -> Net.shutdown_rd s
          | Syscall.Shut_wr -> Net.shutdown_wr s
          | Syscall.Shut_rdwr ->
            Net.shutdown_rd s;
            Net.shutdown_wr s);
          if Net.is_remote s then K.gw_poke k s;
          Sched.kick k.K.sched;
          ret (Syscall.Ok_int 0)
        | _ -> ret (err Errno.ENOTSOCK))
  (* ---- fd lifecycle ---- *)
  | Syscall.Open (path, flags) | Syscall.Openat (path, flags) ->
    if path = "/dev/null" then
      ret
        (Syscall.Ok_int
           (install_fd
              (Proc.make_desc ~nonblock:flags.nonblock ~can_read:flags.read
                 ~can_write:flags.write ~path (Proc.Dev_null))))
    else if path = "/proc/self/maps" then begin
      let content = Vm.maps_text p.vm in
      ret
        (Syscall.Ok_int
           (install_fd
              (Proc.make_desc ~can_read:true ~can_write:false ~path
                 (Proc.Proc_maps { content }))))
    end
    else begin
      let node =
        if flags.create then Vfs.create_file k.K.vfs path
        else Vfs.resolve k.K.vfs path
      in
      match node with
      | Error e -> ret (err e)
      | Ok node -> (
        match node.kind with
        | Vfs.Dir _ ->
          if flags.write then ret (err Errno.EISDIR)
          else
            ret
              (Syscall.Ok_int
                 (install_fd
                    (Proc.make_desc ~can_read:true ~can_write:false ~path
                       (Proc.Directory node))))
        | Vfs.Reg _ ->
          if flags.trunc && flags.write then
            ignore (Vfs.truncate node ~size:0 ~now_ns:(now ()));
          ret
            (Syscall.Ok_int
               (install_fd
                  (Proc.make_desc ~nonblock:flags.nonblock
                     ~can_read:flags.read ~can_write:flags.write
                     ~append:flags.append ~path (Proc.Regular node))))
        | Vfs.Special gen ->
          let content = gen () in
          ret
            (Syscall.Ok_int
               (install_fd
                  (Proc.make_desc ~can_read:true ~can_write:false ~path
                     (Proc.Proc_maps { content }))))
        | Vfs.Symlink _ -> ret (err Errno.ELOOP))
    end
  | Syscall.Creat path -> (
    match Vfs.create_file k.K.vfs path with
    | Ok node ->
      ignore (Vfs.truncate node ~size:0 ~now_ns:(now ()));
      ret
        (Syscall.Ok_int
           (install_fd
              (Proc.make_desc ~can_read:false ~can_write:true ~path
                 (Proc.Regular node))))
    | Error e -> ret (err e))
  | Syscall.Close fd ->
    with_fd fd (fun d ->
        Hashtbl.remove p.fds fd;
        release_desc k p d;
        ret (Syscall.Ok_int 0))
  | Syscall.Dup fd ->
    with_fd fd (fun d ->
        d.refs <- d.refs + 1;
        ret (Syscall.Ok_int (install_fd d)))
  | Syscall.Dup2 (fd, newfd) | Syscall.Dup3 (fd, newfd) ->
    with_fd fd (fun d ->
        if fd = newfd then ret (Syscall.Ok_int newfd)
        else begin
          (match Proc.desc_of_fd p newfd with
          | Some old ->
            Hashtbl.remove p.fds newfd;
            release_desc k p old
          | None -> ());
          d.refs <- d.refs + 1;
          Hashtbl.replace p.fds newfd d;
          ret (Syscall.Ok_int newfd)
        end)
  | Syscall.Pipe ->
    let pi = Pipe.create () in
    let rfd = install_fd (Proc.make_desc ~can_write:false (Proc.Pipe_read pi)) in
    let wfd = install_fd (Proc.make_desc ~can_read:false (Proc.Pipe_write pi)) in
    ret (Syscall.Ok_pair (rfd, wfd))
  | Syscall.Unlink path | Syscall.Unlinkat path -> (
    match Vfs.unlink k.K.vfs path with
    | Ok () -> ret (Syscall.Ok_int 0)
    | Error e -> ret (err e))
  | Syscall.Rename (src, dst) | Syscall.Renameat (src, dst) -> (
    match Vfs.rename k.K.vfs ~src ~dst with
    | Ok () -> ret (Syscall.Ok_int 0)
    | Error e -> ret (err e))
  | Syscall.Mkdir path | Syscall.Mkdirat path -> (
    match Vfs.mkdir k.K.vfs path with
    | Ok _ -> ret (Syscall.Ok_int 0)
    | Error e -> ret (err e))
  | Syscall.Rmdir path -> (
    match Vfs.rmdir k.K.vfs path with
    | Ok () -> ret (Syscall.Ok_int 0)
    | Error e -> ret (err e))
  | Syscall.Truncate (path, size) -> (
    match Vfs.resolve k.K.vfs path with
    | Ok node -> (
      match Vfs.truncate node ~size ~now_ns:(now ()) with
      | Ok () -> ret (Syscall.Ok_int 0)
      | Error e -> ret (err e))
    | Error e -> ret (err e))
  | Syscall.Ftruncate (fd, size) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Regular node -> (
          match Vfs.truncate node ~size ~now_ns:(now ()) with
          | Ok () -> ret (Syscall.Ok_int 0)
          | Error e -> ret (err e))
        | _ -> ret (err Errno.EINVAL))
  (* ---- memory ---- *)
  | Syscall.Mmap { len; prot; kind } -> (
    let backing =
      match kind with
      | Syscall.Map_anon -> Ok Vm.Anon
      | Syscall.Map_shared_anon -> Ok (Vm.Shared_anon (K.fresh_share_group k))
      | Syscall.Map_file fd -> (
        match Proc.desc_of_fd p fd with
        | Some { kind = Proc.Regular node; _ } -> Ok (Vm.File_backed node)
        | Some _ -> Error Errno.EINVAL
        | None -> Error Errno.EBADF)
    in
    match backing with
    | Error e -> ret (err e)
    | Ok backing -> (
      match Vm.map p.vm ~len ~prot ~backing ~tag:"anon" with
      | Ok r -> ret (Syscall.Ok_int64 r.Vm.start)
      | Error e -> ret (err e)))
  | Syscall.Munmap { addr; len } -> (
    match Vm.unmap p.vm ~addr ~len with
    | Ok () -> ret (Syscall.Ok_int 0)
    | Error e -> ret (err e))
  | Syscall.Mprotect { addr; len; prot } -> (
    match Vm.protect p.vm ~addr ~len ~prot with
    | Ok () -> ret (Syscall.Ok_int 0)
    | Error e -> ret (err e))
  | Syscall.Mremap { addr; old_len; new_len } -> (
    match Vm.find_region p.vm addr with
    | Some r when Int64.equal r.Vm.start addr && r.Vm.len = old_len -> (
      let prot = r.Vm.prot and backing = r.Vm.backing and tag = r.Vm.tag in
      match Vm.unmap p.vm ~addr ~len:old_len with
      | Error e -> ret (err e)
      | Ok () -> (
        match Vm.map p.vm ~len:new_len ~prot ~backing ~tag with
        | Ok r' -> ret (Syscall.Ok_int64 r'.Vm.start)
        | Error e -> ret (err e)))
    | _ -> ret (err Errno.EINVAL))
  | Syscall.Brk n -> ret (Syscall.Ok_int (Vm.set_brk p.vm n))
  (* ---- shared memory ---- *)
  | Syscall.Shmget { key; size; create } -> (
    match Shm.get k.K.shm ~key ~size ~create with
    | Ok seg -> ret (Syscall.Ok_int seg.Shm.shmid)
    | Error e -> ret (err e))
  | Syscall.Shmat { shmid; readonly } -> (
    match Shm.find k.K.shm shmid with
    | Error e -> ret (err e)
    | Ok seg -> (
      let prot = { Syscall.pr = true; pw = not readonly; px = false } in
      match
        Vm.map p.vm ~len:seg.Shm.size ~prot ~backing:(Vm.Shm_seg seg)
          ~tag:"sysv-shm"
      with
      | Ok r ->
        Shm.attach seg;
        ret (Syscall.Ok_int64 r.Vm.start)
      | Error e -> ret (err e)))
  | Syscall.Shmdt { addr } -> (
    match Vm.find_region p.vm addr with
    | Some { Vm.backing = Vm.Shm_seg seg; start; _ } when Int64.equal start addr
      -> (
      match Vm.unmap p.vm ~addr ~len:0 with
      | Ok () ->
        Shm.detach k.K.shm seg;
        ret (Syscall.Ok_int 0)
      | Error e -> ret (err e))
    | _ -> ret (err Errno.EINVAL))
  | Syscall.Shmctl { shmid; rmid } -> (
    match Shm.find k.K.shm shmid with
    | Error e -> ret (err e)
    | Ok seg ->
      if rmid then Shm.remove k.K.shm seg;
      ret (Syscall.Ok_int 0))
  (* ---- process / thread lifecycle ---- *)
  | Syscall.Clone entry_idx ->
    if entry_idx < 0 || entry_idx >= Array.length p.entry_table then
      ret (err Errno.EINVAL)
    else begin
      let tid = K.fresh_tid k in
      let rank = p.next_tid_rank in
      p.next_tid_rank <- rank + 1;
      let nt =
        {
          Proc.tid;
          proc = p;
          rank;
          clock = th.clock;
          tstate = Proc.Ready;
          syscall_index = 0;
          current_call = None;
          pending_delivery = Queue.create ();
          in_ipmon = false;
          last_result = None;
          resume_kind = 0;
          resume_k = Obj.repr 0;
          resume_r = Syscall.Ok_unit;
          resume_thunk = (fun () -> ());
          return_fn = (fun _ -> ());
          finish_fn = Proc.fn_unset;
          ipmon_finish_fn = Proc.fn_unset;
        }
      in
      Vec.push p.threads nt;
      Sched.spawn k.K.sched nt p.entry_table.(entry_idx);
      ret (Syscall.Ok_int tid)
    end
  | Syscall.Fork | Syscall.Execve _ ->
    (* Documented limitation: one-shot continuations cannot be duplicated,
       so multi-process programs model workers as threads or pre-spawned
       processes instead. *)
    ret (err Errno.ENOSYS)
  | Syscall.Exit code -> exit_current k th ~code ~group:false
  | Syscall.Exit_group code -> exit_current k th ~code ~group:true
  | Syscall.Wait4 pid ->
    let find_dead () =
      Hashtbl.fold
        (fun _ (child : Proc.process) acc ->
          if
            acc = None && child.parent_pid = p.pid && (not child.alive)
            && (not child.reaped)
            && (pid = -1 || pid = child.pid)
          then Some child
          else acc)
        k.K.procs None
    in
    let has_children () =
      Hashtbl.fold
        (fun _ (child : Proc.process) acc ->
          acc || (child.parent_pid = p.pid && not child.reaped))
        k.K.procs false
    in
    if not (has_children ()) then ret (err Errno.ECHILD)
    else
      block k th ~what:"wait4" ~poll:find_dead
        ~on_ready:(fun child ->
          child.Proc.reaped <- true;
          ret (Syscall.Ok_int child.Proc.pid))
        ~complete:ret ()
  | Syscall.Kill (pid, sg) -> (
    match K.find_proc k pid with
    | Some target ->
      post_signal k target sg;
      ret (Syscall.Ok_int 0)
    | None -> ret (err Errno.ESRCH))
  | Syscall.Tgkill (pid, _tid, sg) -> (
    match K.find_proc k pid with
    | Some target ->
      post_signal k target sg;
      ret (Syscall.Ok_int 0)
    | None -> ret (err Errno.ESRCH))
  (* ---- signals ---- *)
  | Syscall.Rt_sigaction (sg, action) ->
    if not (Sigdefs.catchable sg) then ret (err Errno.EINVAL)
    else begin
      Hashtbl.replace p.sig_actions sg action;
      ret (Syscall.Ok_int 0)
    end
  | Syscall.Rt_sigprocmask (how, sigs) ->
    let set = Proc.IntSet.of_list sigs in
    (match how with
    | Syscall.Sig_block -> p.sig_mask <- Proc.IntSet.union p.sig_mask set
    | Syscall.Sig_unblock -> p.sig_mask <- Proc.IntSet.diff p.sig_mask set
    | Syscall.Sig_setmask -> p.sig_mask <- set);
    Sched.kick k.K.sched;
    ret (Syscall.Ok_int 0)
  | Syscall.Rt_sigreturn -> ret Syscall.Ok_unit
  | Syscall.Sigaltstack -> ret (Syscall.Ok_int 0)
  | Syscall.Pause ->
    block k th ~what:"pause"
      ~poll:(fun () -> None)
      ~on_ready:(fun (r : Syscall.result) -> ret r)
      ~complete:ret ()
  (* ---- identity / limits / misc (extended surface) ---- *)
  | Syscall.Getpgid | Syscall.Getsid -> ret (Syscall.Ok_int p.pid)
  | Syscall.Setsid -> ret (Syscall.Ok_int p.pid)
  | Syscall.Getrlimit _ -> ret (Syscall.Ok_int64 Int64.max_int)
  | Syscall.Setrlimit _ | Syscall.Prlimit64 _ -> ret (Syscall.Ok_int 0)
  | Syscall.Sched_getaffinity -> ret (Syscall.Ok_int 0xFFFF)
  | Syscall.Sched_setaffinity _ -> ret (Syscall.Ok_int 0)
  | Syscall.Clock_getres -> ret (Syscall.Ok_int64 1L)
  | Syscall.Getrandom n ->
    (* kernel entropy: replicas must receive identical bytes, which is why
       the MVEE replicates this call's results verbatim *)
    let buf = Bytes.create (min n 4096) in
    for i = 0 to Bytes.length buf - 1 do
      Bytes.set buf i (Char.chr (Remon_util.Rng.int k.K.rng 256))
    done;
    ret (Syscall.Ok_data (Bytes.to_string buf))
  | Syscall.Statfs _ | Syscall.Fstatfs _ ->
    ret (Syscall.Ok_int64 (Int64.of_int (64 * 1024 * 1024 * 1024)))
  | Syscall.Readahead _ | Syscall.Mincore _ | Syscall.Msync _
  | Syscall.Mlock _ | Syscall.Munlock _ ->
    ret (Syscall.Ok_int 0)
  | Syscall.Umask _ -> ret (Syscall.Ok_int 0o022)
  (* ---- file metadata writes ---- *)
  | Syscall.Chmod (path, _) | Syscall.Chown (path, _, _) | Syscall.Utimensat path -> (
    match Vfs.resolve k.K.vfs path with
    | Ok node ->
      node.Vfs.mtime_ns <- now ();
      ret (Syscall.Ok_int 0)
    | Error e -> ret (err e))
  | Syscall.Fchmod (fd, _) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Regular node | Proc.Directory node ->
          node.Vfs.mtime_ns <- now ();
          ret (Syscall.Ok_int 0)
        | _ -> ret (err Errno.EBADF))
  (* ---- advisory file locks ---- *)
  | Syscall.Flock (fd, op) ->
    with_fd fd (fun d ->
        match d.kind with
        | Proc.Regular node -> (
          let ino = node.Vfs.ino in
          match op with
          | Syscall.Lock_un ->
            (match Hashtbl.find_opt k.K.flocks ino with
            | Some holder when holder = p.pid -> Hashtbl.remove k.K.flocks ino
            | _ -> ());
            Sched.kick k.K.sched;
            ret (Syscall.Ok_int 0)
          | Syscall.Lock_sh | Syscall.Lock_ex ->
            let attempt () =
              match Hashtbl.find_opt k.K.flocks ino with
              | None ->
                Hashtbl.replace k.K.flocks ino p.pid;
                Some (Syscall.Ok_int 0)
              | Some holder when holder = p.pid -> Some (Syscall.Ok_int 0)
              | Some _ -> None
            in
            if d.nonblock then (
              match attempt () with
              | Some r -> ret r
              | None -> ret (err Errno.EAGAIN))
            else
              block k th ~what:"flock" ~poll:attempt ~on_ready:ret ~complete:ret ())
        | _ -> ret (err Errno.EBADF))
  (* ---- hard and symbolic links ---- *)
  | Syscall.Link (target, path) | Syscall.Linkat (target, path) -> (
    match Vfs.resolve k.K.vfs target with
    | Error e -> ret (err e)
    | Ok node -> (
      match Vfs.parent_and_name k.K.vfs path with
      | Error e -> ret (err e)
      | Ok (parent, name) -> (
        match parent.Vfs.kind with
        | Vfs.Dir entries ->
          if Hashtbl.mem entries name then ret (err Errno.EEXIST)
          else begin
            Hashtbl.replace entries name node;
            ret (Syscall.Ok_int 0)
          end
        | _ -> ret (err Errno.ENOTDIR))))
  | Syscall.Symlink (target, path) | Syscall.Symlinkat (target, path) -> (
    match Vfs.symlink k.K.vfs ~target ~path with
    | Ok _ -> ret (Syscall.Ok_int 0)
    | Error e -> ret (err e))
  (* ---- new fd factories ---- *)
  | Syscall.Pipe2 { nonblock } ->
    let pi = Pipe.create () in
    let rfd =
      install_fd (Proc.make_desc ~nonblock ~can_write:false (Proc.Pipe_read pi))
    in
    let wfd =
      install_fd (Proc.make_desc ~nonblock ~can_read:false (Proc.Pipe_write pi))
    in
    ret (Syscall.Ok_pair (rfd, wfd))
  | Syscall.Eventfd initial ->
    let e = { Proc.count = max 0 initial } in
    ret (Syscall.Ok_int (install_fd (Proc.make_desc (Proc.Event_fd e))))
  (* ---- ReMon registration ---- *)
  | Syscall.Ipmon_register { calls; rb_addr; entry_addr } -> (
    match Hashtbl.find_opt k.K.pending_ipmon p.pid with
    | None -> ret (err Errno.EINVAL)
    | Some reg ->
      (* The syscall's argument list is authoritative: GHUMVEE may have
         trimmed it by rewriting the call at the entry stop. *)
      let reg =
        { reg with Proc.unmonitored = Sysno.Set.of_list calls; rb_addr; entry_addr }
      in
      p.ipmon_registered <- Some reg;
      Hashtbl.remove k.K.pending_ipmon p.pid;
      ret (Syscall.Ok_int 0))

(* ------------------------------------------------------------------ *)
(* Structured observability emission (lib/obs).

   Every site pays exactly one match on [k.K.obs] when the sink is absent.
   Events are stamped with the thread's virtual clock and identify
   replicas by variant index — never by group id or shm key, which come
   from process-global counters and would break the byte-identical-trace
   guarantee across runs in the same process. *)

module Tr = Remon_obs.Trace
module Ob = Remon_obs.Obs

let variant_of (th : Proc.thread) =
  match th.Proc.proc.Proc.replica_info with
  | Some ri -> ri.Proc.variant_index
  | None -> -1

let obs_instant k (th : Proc.thread) ~cat ~name args =
  match k.K.obs with
  | None -> ()
  | Some o ->
    Tr.instant o.Ob.trace ~ts:th.Proc.clock ~cat ~name
      ~pid:th.Proc.proc.Proc.pid ~tid:th.Proc.tid
      (("variant", Tr.Int (variant_of th))
      :: ("index", Tr.Int th.Proc.syscall_index)
      :: args)

(* A ptrace stop is one monitor round-trip: record the instant and bump
   the round-trip tally. *)
let obs_ptrace_stop k (th : Proc.thread) ~kind =
  match k.K.obs with
  | None -> ()
  | Some o ->
    Remon_obs.Metrics.incr o.Ob.metrics "ptrace.round_trips";
    Tr.instant o.Ob.trace ~ts:th.Proc.clock ~cat:"ptrace" ~name:kind
      ~pid:th.Proc.proc.Proc.pid ~tid:th.Proc.tid
      [
        ("variant", Tr.Int (variant_of th));
        ("index", Tr.Int th.Proc.syscall_index);
      ]

(* ------------------------------------------------------------------ *)
(* Routing pipeline *)

(* Final stage: deliver pending signals at the syscall boundary, then hand
   the result back to user code. Mirrors the kernel's return-to-user path,
   including ptrace signal-delivery stops. *)
let rec finish k (th : Proc.thread) (result : Syscall.result) ~return =
  let p = proc_of th in
  if th.tstate = Proc.Dead then ()
  else
    match next_deliverable p with
    | None ->
      th.last_result <- Some result;
      return result
    | Some sg -> (
      match p.tracer with
      | Some tracer when not (Sigdefs.synchronous sg) ->
        k.K.stats.ptrace_stops <- k.K.stats.ptrace_stops + 1;
        k.K.stats.context_switches <- k.K.stats.context_switches + 2;
        charge th (Cost_model.ptrace_stop_ns k.K.cost);
        obs_ptrace_stop k th ~kind:"signal_delivery_stop";
        th.tstate <-
          Proc.Trace_stopped
            {
              reason = Proc.Signal_delivery_stop sg;
              resume =
                (fun action ->
                  th.tstate <- Proc.Ready;
                  match action with
                  | Proc.Resume_deliver ->
                    if deliver_signal k th sg then finish k th result ~return
                  | Proc.Resume_suppress ->
                    (* the tracer takes ownership of the signal *)
                    remove_pending p sg;
                    finish k th result ~return
                  | Proc.Resume_kill -> kill_process k p ~code:137
                  | Proc.Resume_continue | Proc.Resume_rewrite _
                  | Proc.Resume_skip _ | Proc.Resume_set_result _ ->
                    if deliver_signal k th sg then finish k th result ~return);
            };
        tracer.on_stop th (Proc.Signal_delivery_stop sg)
      | _ ->
        if deliver_signal k th sg then finish k th result ~return)

(* Executes a call without any monitor interposition; used for the plain
   path and, via [execute_raw], by IP-MON for token-authorized calls. *)
let plain_exec k th call ~done_ =
  exec k th call ~ret:done_

(* Syscall-exit ptrace stop (when the entry was stopped too). *)
let exit_phase k (th : Proc.thread) call result ~return =
  let p = proc_of th in
  match p.tracer with
  | Some tracer ->
    k.K.stats.ptrace_stops <- k.K.stats.ptrace_stops + 1;
    k.K.stats.context_switches <- k.K.stats.context_switches + 2;
    charge th (Cost_model.ptrace_stop_ns k.K.cost);
    obs_ptrace_stop k th ~kind:"syscall_exit_stop";
    th.tstate <-
      Proc.Trace_stopped
        {
          reason = Proc.Syscall_exit_stop (call, result);
          resume =
            (fun action ->
              th.tstate <- Proc.Ready;
              match action with
              | Proc.Resume_continue -> finish k th result ~return
              | Proc.Resume_set_result r -> finish k th r ~return
              | Proc.Resume_kill -> kill_process k p ~code:137
              | Proc.Resume_rewrite _ | Proc.Resume_skip _
              | Proc.Resume_deliver | Proc.Resume_suppress ->
                finish k th result ~return);
        };
    tracer.on_stop th (Proc.Syscall_exit_stop (call, result))
  | None -> finish k th result ~return

(* Syscall-entry ptrace stop: report to the CP monitor and act on its
   decision. This is the path every monitored call takes. *)
let monitor_path k (th : Proc.thread) call ~return =
  let p = proc_of th in
  match p.tracer with
  | None ->
    (* no monitor attached: execute directly *)
    k.K.stats.plain <- k.K.stats.plain + 1;
    plain_exec k th call ~done_:(fun r -> finish k th r ~return)
  | Some tracer ->
    k.K.stats.monitored <- k.K.stats.monitored + 1;
    k.K.stats.ptrace_stops <- k.K.stats.ptrace_stops + 1;
    k.K.stats.context_switches <- k.K.stats.context_switches + 2;
    charge th (Cost_model.ptrace_stop_ns k.K.cost);
    obs_ptrace_stop k th ~kind:"syscall_entry_stop";
    th.tstate <-
      Proc.Trace_stopped
        {
          reason = Proc.Syscall_entry_stop call;
          resume =
            (fun action ->
              th.tstate <- Proc.Ready;
              match action with
              | Proc.Resume_continue ->
                plain_exec k th call ~done_:(fun r ->
                    exit_phase k th call r ~return)
              | Proc.Resume_rewrite call' ->
                th.current_call <- Some call';
                plain_exec k th call' ~done_:(fun r ->
                    exit_phase k th call' r ~return)
              | Proc.Resume_skip r ->
                (* call aborted by the monitor; go straight to exit stop so
                   the monitor can inject replicated results *)
                exit_phase k th call r ~return
              | Proc.Resume_kill -> kill_process k p ~code:137
              | Proc.Resume_set_result r -> exit_phase k th call r ~return
              | Proc.Resume_deliver | Proc.Resume_suppress ->
                plain_exec k th call ~done_:(fun r ->
                    exit_phase k th call r ~return));
        };
    tracer.on_stop th (Proc.Syscall_entry_stop call)

(* Raw, stop-free execution used by IP-MON once IK-B's verifier has
   accepted the authorization token (steps 3-4 of Figure 2). *)
let execute_raw k th call ~(ret : Syscall.result -> unit) =
  charge th k.K.cost.ipmon_restart_ns;
  exec k th call ~ret

(* Trace hook: records one line per syscall with its route when tracing is
   enabled (Kstate.log_enabled), and a routing instant + per-route tally
   in the structured sink when one is attached. Metric keys for the fixed
   route vocabulary are interned at module init so the per-call tally
   does not concatenate strings. *)
let route_key = function
  | "plain" -> "route.plain"
  | "monitored" -> "route.monitored"
  | "ipmon" -> "route.ipmon"
  | "fault:rewrite" -> "route.fault:rewrite"
  | "fault:result" -> "route.fault:result"
  | "fault:crash" -> "route.fault:crash"
  | "fault:delay" -> "route.fault:delay"
  | r -> "route." ^ r

let trace_route k (th : Proc.thread) call route =
  (match k.K.obs with
  | None -> ()
  | Some o ->
    Remon_obs.Metrics.incr o.Ob.metrics (route_key route);
    Tr.instant o.Ob.trace ~ts:th.Proc.clock ~cat:"route" ~name:route
      ~pid:th.Proc.proc.Proc.pid ~tid:th.Proc.tid
      [
        ("call", Tr.Str (Syscall.to_string call));
        ("variant", Tr.Int (variant_of th));
        ("index", Tr.Int th.Proc.syscall_index);
      ]);
  if k.K.log_enabled then
    K.logf k "pid=%d tid=%d #%d %s -> %s" th.Proc.proc.Proc.pid th.Proc.tid
      th.Proc.syscall_index (Syscall.to_string call) route

(* Tracing-off, fault-free routing: completion goes through the thread's
   preallocated finish functions, so no per-call closure is built. The
   caller guarantees [return] is the thread's own [return_fn] (true for
   every trap arriving through the scheduler's syscall handler). *)
let route_fast k (th : Proc.thread) call =
  let p = proc_of th in
  match K.broker_for k th with
  | None -> (
    match p.Proc.tracer with
    | None ->
      k.K.stats.plain <- k.K.stats.plain + 1;
      plain_exec k th call ~done_:th.Proc.finish_fn
    | Some _ -> monitor_path k th call ~return:th.Proc.return_fn)
  | Some broker -> (
    match broker.K.classify th call with
    | K.Route_plain ->
      k.K.stats.plain <- k.K.stats.plain + 1;
      plain_exec k th call ~done_:th.Proc.finish_fn
    | K.Route_monitor -> monitor_path k th call ~return:th.Proc.return_fn
    | K.Route_ipmon token -> (
      match p.Proc.ipmon_registered with
      | None -> monitor_path k th call ~return:th.Proc.return_fn
      | Some reg ->
        k.K.stats.ipmon_fastpath <- k.K.stats.ipmon_fastpath + 1;
        k.K.stats.tokens_granted <- k.K.stats.tokens_granted + 1;
        charge th k.K.cost.ipmon_forward_ns;
        th.Proc.in_ipmon <- true;
        reg.Proc.invoke th ~token ~call ~return:th.Proc.ipmon_finish_fn))

(* Per-syscall latency-metric keys ("syscall.<name>"), interned at module
   init and indexed by [Sysno.index]: the per-call histogram update does
   not concatenate strings. *)
let syscall_metric_keys =
  let a = Array.make Sysno.slots "syscall.?" in
  List.iter
    (fun no -> a.(Sysno.index no) <- "syscall." ^ Sysno.to_string no)
    Sysno.all;
  a

(* Top-level syscall entry: Figure 2's step 1. *)
let handle k (th : Proc.thread) call ~return =
  let p = proc_of th in
  if not p.alive || th.tstate = Proc.Dead then ()
  else begin
    th.syscall_index <- th.syscall_index + 1;
    th.current_call <- Some call;
    k.K.stats.syscalls <- k.K.stats.syscalls + 1;
    k.K.stats.traps <- k.K.stats.traps + 1;
    K.count_sysno k.K.stats (Syscall.number call);
    charge th k.K.cost.syscall_trap_ns;
    let fast =
      (match k.K.obs with None -> not k.K.log_enabled | Some _ -> false)
      && (match K.fault_hook_for k th with None -> true | Some _ -> false)
    in
    if fast then begin
      if th.Proc.finish_fn == Proc.fn_unset then begin
        th.Proc.finish_fn <- (fun r -> finish k th r ~return:th.Proc.return_fn);
        th.Proc.ipmon_finish_fn <-
          (fun r ->
            th.Proc.in_ipmon <- false;
            finish k th r ~return:th.Proc.return_fn)
      end;
      route_fast k th call
    end
    else begin
    (* With a sink attached the whole call becomes one B/E span (even
       across blocking and monitor stops) and feeds the per-syscall
       latency histogram. A replica killed mid-call leaves an unclosed
       span, which trace viewers render as running-to-end-of-trace. *)
    let return =
      match k.K.obs with
      | None -> return
      | Some o ->
        let name = Syscall.to_string call in
        let pid = p.Proc.pid and tid = th.Proc.tid in
        let entry_clock = th.Proc.clock in
        Tr.span_begin o.Ob.trace ~ts:entry_clock ~cat:"syscall" ~name ~pid
          ~tid
          [
            ("variant", Tr.Int (variant_of th));
            ("rank", Tr.Int th.Proc.rank);
            ("index", Tr.Int th.Proc.syscall_index);
          ];
        fun r ->
          Tr.span_end o.Ob.trace ~ts:th.Proc.clock ~cat:"syscall" ~name ~pid
            ~tid [];
          Remon_obs.Metrics.observe_ns o.Ob.metrics
            syscall_metric_keys.(Sysno.index (Syscall.number call))
            (Vtime.sub th.Proc.clock entry_clock);
          return r
    in
    let route call =
      match K.broker_for k th with
      | None -> (
        match p.tracer with
        | None ->
          k.K.stats.plain <- k.K.stats.plain + 1;
          trace_route k th call "plain";
          plain_exec k th call ~done_:(fun r -> finish k th r ~return)
        | Some _ ->
          trace_route k th call "monitored";
          monitor_path k th call ~return)
      | Some broker -> (
        match broker.classify th call with
        | K.Route_plain ->
          k.K.stats.plain <- k.K.stats.plain + 1;
          trace_route k th call "plain";
          plain_exec k th call ~done_:(fun r -> finish k th r ~return)
        | K.Route_monitor ->
          trace_route k th call "monitored";
          monitor_path k th call ~return
        | K.Route_ipmon token -> (
          match p.ipmon_registered with
          | None ->
            (* broker misconfiguration: fall back to the monitored path *)
            monitor_path k th call ~return
          | Some reg ->
            k.K.stats.ipmon_fastpath <- k.K.stats.ipmon_fastpath + 1;
            k.K.stats.tokens_granted <- k.K.stats.tokens_granted + 1;
            trace_route k th call "ipmon";
            charge th k.K.cost.ipmon_forward_ns;
            th.in_ipmon <- true;
            reg.Proc.invoke th ~token ~call ~return:(fun r ->
                th.in_ipmon <- false;
                finish k th r ~return)))
    in
    match (match K.fault_hook_for k th with Some f -> f th call | None -> K.Fault_none) with
    | K.Fault_none -> route call
    | K.Fault_rewrite call' ->
      (* the corrupted capture flows through the normal routing/detection
         paths; the monitors see it as an argument divergence *)
      th.current_call <- Some call';
      trace_route k th call' "fault:rewrite";
      obs_instant k th ~cat:"fault" ~name:"rewrite"
        [ ("call", Tr.Str (Syscall.to_string call')) ];
      route call'
    | K.Fault_result r ->
      (* transient kernel-level failure (e.g. ECONNRESET): complete now *)
      trace_route k th call "fault:result";
      obs_instant k th ~cat:"fault" ~name:"result"
        [ ("call", Tr.Str (Syscall.to_string call)) ];
      finish k th r ~return
    | K.Fault_crash sg ->
      trace_route k th call "fault:crash";
      obs_instant k th ~cat:"fault" ~name:"crash" [ ("signal", Tr.Int sg) ];
      kill_process k p ~code:(128 + sg)
    | K.Fault_delay ns ->
      (* stall the arrival: the rendezvous watchdog can observe it *)
      trace_route k th call "fault:delay";
      obs_instant k th ~cat:"fault" ~name:"delay"
        [ ("ns", Tr.Int ns) ];
      block k th ~what:"fault: injected stall" ~timeout_ns:ns ~intr:false
        ~poll:(fun () -> (None : unit option))
        ~on_ready:(fun () -> ())
        ~complete:(fun (_ : Syscall.result) -> route call)
        ()
    end
  end

(* ------------------------------------------------------------------ *)
(* Kernel services for monitors *)

(* Force-completes a blocked call (GHUMVEE's blocked-call abort, §3.8). *)
let interrupt_blocked k (th : Proc.thread) result =
  ignore k;
  match th.tstate with
  | Proc.Blocked ({ interrupt = Some force; _ } : Proc.blocked) ->
    force result;
    true
  | _ -> false

(* Re-initiates a deferred signal at a rendezvous point: runs the handler
   registration machinery directly, without further stops. *)
let inject_signal_now k (th : Proc.thread) sg =
  ignore (deliver_signal k th sg)

let install k =
  k.K.sched.Sched.syscall_handler <- (fun th call ~return -> handle k th call ~return)
