(** Typed system-call requests and results.

    The simulator dispatches on these values, the MVEE monitors compare
    them for divergence (structural equality plays the role of GHUMVEE's
    deep argument comparison), and the replication buffer serializes them.
    Raw userspace pointers never appear except as opaque [int64] cookies
    (epoll user data, futex words) — exactly the fields the paper calls out
    as needing special treatment under diversification. *)

type fd = int

type open_flags = {
  read : bool;
  write : bool;
  create : bool;
  trunc : bool;
  append : bool;
  nonblock : bool;
}

val o_rdonly : open_flags
val o_wronly : open_flags
val o_rdwr : open_flags

type whence = Seek_set | Seek_cur | Seek_end

type prot = { pr : bool; pw : bool; px : bool }

type map_kind = Map_anon | Map_shared_anon | Map_file of fd

type futex_op =
  | Futex_wait of { addr : int64; expected : int; timeout_ns : int option }
  | Futex_wake of { addr : int64; count : int }

type fcntl_op = F_getfl | F_setfl of { nonblock : bool } | F_dupfd of int

type ioctl_op = Fionread | Fionbio of bool | Tiocgwinsz

type poll_events = { pollin : bool; pollout : bool; pollhup : bool; pollerr : bool }

val ev_none : poll_events
val ev_in : poll_events
val ev_out : poll_events

type epoll_op = Epoll_add | Epoll_mod | Epoll_del

type flock_op = Lock_sh | Lock_ex | Lock_un

type sock_domain = Af_inet | Af_unix

type sock_type = Sock_stream | Sock_dgram

type shutdown_how = Shut_rd | Shut_wr | Shut_rdwr

type sig_action = Sig_default | Sig_ignore | Sig_handler of int
(* [Sig_handler id]: logical handler identity; the actual closure lives in
   the program's handler table. Diversified replicas would have different
   handler addresses but the same logical id. *)

type sigmask_how = Sig_block | Sig_unblock | Sig_setmask

type stat_info = {
  st_ino : int;
  st_size : int;
  st_kind : [ `Reg | `Dir | `Fifo | `Sock | `Special ];
  st_mtime_ns : int;
}

type itimer_spec = { interval_ns : int; value_ns : int }

type call =
  (* identity / time queries *)
  | Gettimeofday
  | Clock_gettime of [ `Realtime | `Monotonic ]
  | Time
  | Getpid
  | Gettid
  | Getpgrp
  | Getppid
  | Getgid
  | Getegid
  | Getuid
  | Geteuid
  | Getcwd
  | Getpriority
  | Getrusage
  | Times
  | Capget
  | Getitimer
  | Sysinfo
  | Uname
  | Sched_yield
  | Nanosleep of int
  | Getpgid
  | Getsid
  | Getrlimit of int (* resource id *)
  | Sched_getaffinity
  | Clock_getres
  | Getrandom of int (* byte count; results must be replicated verbatim *)
  (* synchronization / fd control *)
  | Futex of futex_op
  | Ioctl of fd * ioctl_op
  | Fcntl of fd * fcntl_op
  (* filesystem queries *)
  | Access of string
  | Faccessat of string
  | Lseek of fd * int * whence
  | Stat of string
  | Lstat of string
  | Fstat of fd
  | Fstatat of string
  | Getdents of fd
  | Readlink of string
  | Readlinkat of string
  | Getxattr of string * string
  | Lgetxattr of string * string
  | Fgetxattr of fd * string
  | Alarm of int (* seconds; 0 cancels *)
  | Setitimer of itimer_spec
  | Timerfd_gettime of fd
  | Madvise of { addr : int64; len : int }
  | Fadvise64 of fd
  | Statfs of string
  | Fstatfs of fd
  | Getdents64 of fd
  | Readahead of fd
  | Mincore of { addr : int64; len : int }
  (* read family *)
  | Read of fd * int
  | Readv of fd * int list (* iovec lengths *)
  | Pread64 of fd * int * int (* fd, count, offset *)
  | Preadv of fd * int list * int
  | Select of { readfds : fd list; writefds : fd list; timeout_ns : int option }
  | Poll of { fds : (fd * poll_events) list; timeout_ns : int option }
  | Pselect6 of { readfds : fd list; writefds : fd list; timeout_ns : int option }
  | Ppoll of { fds : (fd * poll_events) list; timeout_ns : int option }
  (* sync family *)
  | Sync
  | Syncfs of fd
  | Fsync of fd
  | Fdatasync of fd
  | Timerfd_settime of fd * itimer_spec
  | Msync of { addr : int64; len : int }
  | Flock of fd * flock_op
  | Chmod of string * int
  | Fchmod of fd * int
  | Chown of string * int * int
  | Utimensat of string
  (* write family *)
  | Write of fd * string
  | Writev of fd * string list
  | Pwrite64 of fd * string * int
  | Pwritev of fd * string list * int
  (* socket read family *)
  | Epoll_wait of { epfd : fd; max_events : int; timeout_ns : int option }
  | Recvfrom of fd * int
  | Recvmsg of fd * int
  | Recvmmsg of fd * int * int (* fd, msgs, bytes each *)
  | Getsockname of fd
  | Getpeername of fd
  | Getsockopt of fd * int
  (* socket write family *)
  | Sendto of fd * string
  | Sendmsg of fd * string
  | Sendmmsg of fd * string list
  | Sendfile of { out_fd : fd; in_fd : fd; count : int }
  | Epoll_ctl of { epfd : fd; op : epoll_op; fd : fd; events : poll_events; user_data : int64 }
  | Setsockopt of fd * int * int
  | Shutdown of fd * shutdown_how
  (* fd lifecycle *)
  | Open of string * open_flags
  | Openat of string * open_flags
  | Creat of string
  | Close of fd
  | Dup of fd
  | Dup2 of fd * fd
  | Dup3 of fd * fd
  | Pipe
  | Pipe2 of { nonblock : bool }
  | Eventfd of int (* initial counter *)
  | Socket of sock_domain * sock_type
  | Socketpair of sock_domain * sock_type
  | Bind of fd * int (* port *)
  | Listen of fd * int (* backlog *)
  | Accept of fd
  | Accept4 of { fd : fd; nonblock : bool }
  | Connect of fd * int (* port on the simulated network *)
  | Epoll_create
  | Timerfd_create
  | Unlink of string
  | Rename of string * string
  | Mkdir of string
  | Rmdir of string
  | Truncate of string * int
  | Ftruncate of fd * int
  | Mkdirat of string
  | Unlinkat of string
  | Renameat of string * string
  | Link of string * string
  | Linkat of string * string
  | Symlink of string * string
  | Symlinkat of string * string
  | Umask of int
  (* memory management *)
  | Mmap of { len : int; prot : prot; kind : map_kind }
  | Munmap of { addr : int64; len : int }
  | Mprotect of { addr : int64; len : int; prot : prot }
  | Mremap of { addr : int64; old_len : int; new_len : int }
  | Brk of int
  | Mlock of { addr : int64; len : int }
  | Munlock of { addr : int64; len : int }
  (* process / thread lifecycle *)
  | Clone of int (* entry index into the program's thread table *)
  | Fork
  | Execve of string
  | Exit of int
  | Exit_group of int
  | Wait4 of int (* pid, -1 for any *)
  | Kill of int * int (* pid, signal *)
  | Tgkill of int * int * int (* pid, tid, signal *)
  | Setrlimit of int * int
  | Prlimit64 of int * int
  | Sched_setaffinity of int (* cpu mask *)
  | Setsid
  (* signal handling *)
  | Rt_sigaction of int * sig_action
  | Rt_sigprocmask of sigmask_how * int list
  | Rt_sigreturn
  | Sigaltstack
  | Pause
  (* System V shared memory *)
  | Shmget of { key : int; size : int; create : bool }
  | Shmat of { shmid : int; readonly : bool }
  | Shmdt of { addr : int64 }
  | Shmctl of { shmid : int; rmid : bool }
  (* ReMon registration (Section 3.5) *)
  | Ipmon_register of { calls : Sysno.t list; rb_addr : int64; entry_addr : int64 }

type accept_info = { conn_fd : fd; peer_port : int }

type result =
  | Ok_unit
  | Ok_int of int
  | Ok_int64 of int64
  | Ok_data of string (* read-like results carry the bytes *)
  | Ok_str of string (* getcwd, readlink, uname ... *)
  | Ok_stat of stat_info
  | Ok_pair of fd * fd (* pipe, socketpair *)
  | Ok_poll of (fd * poll_events) list
  | Ok_epoll of (int64 * poll_events) list (* (user_data, events) *)
  | Ok_accept of accept_info
  | Ok_dents of string list
  | Ok_itimer of itimer_spec
  | Error of Errno.t

val number : call -> Sysno.t
(** The symbolic syscall number of a request. *)

val arg_bytes : call -> int
(** Maximum bytes the call's arguments (and reserved result buffers) occupy
    in the replication buffer — IP-MON's CALCSIZE step. *)

val result_bytes : result -> int
(** Bytes a result occupies in the replication buffer (REPLICATEBUFFER). *)

val equal_call : call -> call -> bool
(** Structural deep equality: the simulated analogue of GHUMVEE's
    CHECKREG/CHECKPOINTER/CHECKBUFFER comparison. *)

val equal_result : result -> result -> bool
val is_error : result -> bool
val pp_call : Format.formatter -> call -> unit
val pp_result : Format.formatter -> result -> unit
val to_string : call -> string
